// Failover: demonstrate Abstract switching end to end. An AZyzzyva cluster
// commits requests through ZLight (the Zyzzyva common case); when a replica
// crashes, the speculative instance aborts and the composition switches to
// Backup (PBFT), which keeps the replicated counter live; when the replica
// recovers, the composition works its way back to ZLight.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func main() {
	// AZyzzyva is the declarative schedule "zlight,backup".
	cluster, err := deploy.New(deploy.Config{
		F:            1,
		NewApp:       func() app.Application { return app.NewCounter() },
		Composition:  compose.MustNew("azyzzyva", compose.Options{ViewChangeTimeout: 300 * time.Millisecond}),
		Delta:        20 * time.Millisecond,
		TickInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient(0)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	ts := uint64(0)
	run := func(phase string, n int) {
		for i := 0; i < n; i++ {
			ts++
			req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("inc")}
			start := time.Now()
			if _, err := client.Invoke(ctx, req); err != nil {
				log.Fatalf("%s: invoke %d: %v", phase, ts, err)
			}
			fmt.Printf("[%s] request %3d committed in %6.2f ms (active instance %d, switches %d)\n",
				phase, ts, float64(time.Since(start).Microseconds())/1000, client.ActiveInstance(), client.Switches())
		}
	}

	run("common case / ZLight ", 5)

	fmt.Println("\n--- crashing replica r3: ZLight can no longer gather 3f+1 matching replies ---")
	cluster.Host(3).SetCrashed(true)
	run("degraded / Backup    ", 8)

	fmt.Println("\n--- recovering replica r3 ---")
	cluster.Host(3).SetCrashed(false)
	run("recovered            ", 8)

	fmt.Printf("\ntotal instance switches: %d\n", client.Switches())
}
