// Robust: run R-Aliph under the processing-delay attack of §6.1. A Byzantine
// head/primary delays every message by several milliseconds; R-Aliph's
// replica monitors detect that the speculative instance no longer sustains
// the expected throughput and switch to the Aardvark-backed Backup without
// any help from clients.
//
//	go run ./examples/robust
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/raliph"
	"abstractbft/internal/workload"
)

func main() {
	cluster, registry, err := raliph.Deploy(deploy.Config{
		F:      1,
		NewApp: func() app.Application { return app.NewNull(8) },
		Delta:  20 * time.Millisecond,
	}, raliph.Options{})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	newInvoker := func(i int) (workload.Invoker, ids.ProcessID, error) {
		client, err := registry.NewClient(cluster.ClientEnv(i))
		if err != nil {
			return nil, 0, err
		}
		return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
			return client.Invoke(ctx, req)
		}), ids.Client(i), nil
	}

	fmt.Println("phase 1: attack-free run (4 closed-loop clients)")
	res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{Clients: 4, RequestsPerClient: 30, RequestSize: 8}, newInvoker)
	if err != nil {
		log.Fatalf("phase 1: %v", err)
	}
	fmt.Printf("  %.0f req/s, mean latency %.2f ms\n\n", res.ThroughputOps(), float64(res.Latency.Mean().Microseconds())/1000)

	fmt.Println("phase 2: the head replica (r0) delays every message by 5 ms")
	cluster.Host(0).SetProcessingDelay(5 * time.Millisecond)
	res2, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{Clients: 4, RequestsPerClient: 30, RequestSize: 8},
		func(i int) (workload.Invoker, ids.ProcessID, error) { return newInvoker(i + 10) })
	if err != nil {
		log.Fatalf("phase 2: %v", err)
	}
	fmt.Printf("  %.0f req/s under attack, mean latency %.2f ms\n", res2.ThroughputOps(), float64(res2.Latency.Mean().Microseconds())/1000)

	switches := uint64(0)
	for i := 0; i < cluster.Cluster.N; i++ {
		if m := registry.MonitorFor(ids.Replica(i)); m != nil {
			switches += m.Switches()
		}
	}
	fmt.Printf("  replica-initiated switches: %d\n", switches)
	for rep, d := range registry.SwitchDurations() {
		if d > 0 {
			fmt.Printf("  %v last switch took %.2f ms\n", rep, float64(d.Microseconds())/1000)
		}
	}
	fmt.Println("\nThe service keeps committing under the attack; the monitors abandon the slow head and fall back to the Aardvark-backed Backup.")
}
