// Sharded: start an in-process 4-replica cluster running the sharded
// multi-leader ordering plane — four parallel ZLight compositions, one per
// shard, each led by a different replica — replicate a key-value store
// partitioned by key, and watch the asynchronous execution stage merge the
// shards' ordered spans into one deterministic global sequence.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

func main() {
	const shards = 4
	cluster, err := deploy.NewSharded(deploy.Config{
		F:            1,
		NewApp:       func() app.Application { return app.NewKVStore() },
		Composition:  compose.MustNew("azyzzyva", compose.Options{}),
		Delta:        20 * time.Millisecond,
		Shards:       shards,
		KeyExtractor: shard.KVKeyExtractor,
		ShardEpoch:   1,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer cluster.Stop()

	fmt.Printf("sharded plane: %d shards over 4 replicas (f=1); leaders:", shards)
	for s := 0; s < shards; s++ {
		fmt.Printf(" shard%d→%v", s, cluster.Lead(s))
	}
	fmt.Println()

	client, err := cluster.NextClient(nil)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	keys := []string{"lang", "paper", "plane", "merge", "quorum", "chain", "backup", "leader"}
	var ts uint64
	for i, k := range keys {
		ts++
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, fmt.Sprintf("value-%d", i))}
		start := time.Now()
		if _, err := client.Invoke(ctx, req); err != nil {
			log.Fatalf("put %s: %v", k, err)
		}
		fmt.Printf("PUT %-7s -> shard %d (leader %v, %.2f ms)\n",
			k, client.ShardFor(req), cluster.Lead(client.ShardFor(req)),
			float64(time.Since(start).Microseconds())/1000)
	}
	for _, k := range keys {
		ts++
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVGet(k)}
		reply, err := client.Invoke(ctx, req)
		if err != nil {
			log.Fatalf("get %s: %v", k, err)
		}
		fmt.Printf("GET %-7s -> %-9q (shard %d)\n", k, reply, client.ShardFor(req))
	}

	// The execution stage merges every shard's ordered span off the ordering
	// critical path; give the last rounds a moment to drain, then show that
	// all replicas converged to one global sequence.
	time.Sleep(100 * time.Millisecond)
	fmt.Println("asynchronous execution stage (per replica):")
	for i, n := range cluster.Nodes {
		fmt.Printf("  replica %d: merged %d requests in %d epoch rounds, digest %v\n",
			i, n.Exec.MergedSeq(), n.Exec.Rounds(), n.Exec.MergedDigest())
	}
	fmt.Println("note: the merged sequence advances in full epoch rounds, so it trails")
	fmt.Println("the per-key replies (which are served by per-shard speculative execution)")
	fmt.Println("until every shard has filled its epoch.")
}
