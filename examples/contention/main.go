// Contention: drive an Aliph cluster through the paper's intro scenario —
// a contention-free phase served by Quorum, a contended phase that makes
// Quorum abort and Chain take over, and a return to a single client that
// triggers the low-load optimization and brings the composition back to
// Quorum.
//
//	go run ./examples/contention
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/workload"
)

func main() {
	// Batching is on by default (MaxBatch 16, MaxDelay 1ms): under the
	// contended phase, Chain's head coalesces concurrent client requests
	// into multi-request batches that cross the pipeline as one message.
	batch := host.BatchPolicy{MaxBatch: host.DefaultMaxBatch, MaxDelay: host.DefaultMaxDelay}
	// Aliph is the declarative schedule "quorum,chain,backup"; its low-load
	// optimization is one option on the composition.
	cluster, err := deploy.New(deploy.Config{
		F:            1,
		NewApp:       func() app.Application { return app.NewNull(0) },
		Composition:  compose.MustNew("aliph", compose.Options{LowLoadAfter: 400 * time.Millisecond}),
		Delta:        20 * time.Millisecond,
		TickInterval: 10 * time.Millisecond,
		Batch:        batch,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer cluster.Stop()
	fmt.Printf("batching: MaxBatch=%d MaxDelay=%v (set MaxBatch=1 for the per-request path)\n\n", batch.MaxBatch, batch.MaxDelay)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Println("phase 1: a single client — Quorum commits in one round trip")
	solo, err := cluster.NewClient(0)
	if err != nil {
		log.Fatal(err)
	}
	ts := uint64(0)
	for i := 0; i < 10; i++ {
		ts++
		if _, err := solo.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("q")}); err != nil {
			log.Fatalf("phase 1: %v", err)
		}
	}
	spec := compose.MustParse("aliph")
	fmt.Printf("  active instance: %d (%s), switches: %d\n\n", solo.ActiveInstance(), spec.ProtocolAt(solo.ActiveInstance()), solo.Switches())

	fmt.Println("phase 2: 6 concurrent clients — contention aborts Quorum, Chain takes over")
	res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{Clients: 6, RequestsPerClient: 20}, func(i int) (workload.Invoker, ids.ProcessID, error) {
		client, err := cluster.NewClient(i + 1)
		if err != nil {
			return nil, 0, err
		}
		return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
			return client.Invoke(ctx, req)
		}), ids.Client(i + 1), nil
	})
	if err != nil {
		log.Fatalf("phase 2: %v", err)
	}
	fmt.Printf("  committed %d requests at %.0f req/s, mean latency %.2f ms\n\n",
		res.Committed, res.ThroughputOps(), float64(res.Latency.Mean().Microseconds())/1000)

	fmt.Println("phase 3: back to a single client — the low-load optimization returns to Quorum")
	var lastRole string
	var mu sync.Mutex
	for i := 0; i < 300; i++ {
		ts++
		if _, err := solo.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("q")}); err != nil {
			log.Fatalf("phase 3: %v", err)
		}
		mu.Lock()
		lastRole = spec.ProtocolAt(solo.ActiveInstance())
		mu.Unlock()
		if lastRole == "quorum" && solo.Switches() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("  active instance: %d (%s), total switches by this client: %d\n",
		solo.ActiveInstance(), spec.ProtocolAt(solo.ActiveInstance()), solo.Switches())
}
