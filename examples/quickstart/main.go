// Quickstart: start an in-process Aliph cluster tolerating one Byzantine
// replica, replicate a key-value store, and issue a few requests.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func main() {
	// Request batching is on by default: ordering replicas coalesce up to
	// MaxBatch requests (or whatever arrives within MaxDelay) into one
	// protocol step. Set MaxBatch to 1 to reproduce the per-request path.
	batch := host.BatchPolicy{MaxBatch: host.DefaultMaxBatch, MaxDelay: host.DefaultMaxDelay}
	// The protocol is a declarative value: Aliph is the registered schedule
	// "quorum,chain,backup", and any other registered-protocol sequence
	// (e.g. "zlight,chain,backup") is an equally valid composition.
	cluster, err := deploy.New(deploy.Config{
		F:           1,
		NewApp:      func() app.Application { return app.NewKVStore() },
		Composition: compose.MustNew("quorum,chain,backup", compose.Options{}),
		Delta:       20 * time.Millisecond,
		Batch:       batch,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer cluster.Stop()

	client, err := cluster.NewClient(0)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Printf("Aliph cluster with 4 replicas (f=1) is running; batching MaxBatch=%d MaxDelay=%v.\n", batch.MaxBatch, batch.MaxDelay)
	commands := []struct {
		desc string
		cmd  []byte
	}{
		{`PUT lang = "go"`, app.EncodeKVPut("lang", "go")},
		{`PUT paper = "the next 700 BFT protocols"`, app.EncodeKVPut("paper", "the next 700 BFT protocols")},
		{`GET lang`, app.EncodeKVGet("lang")},
		{`GET paper`, app.EncodeKVGet("paper")},
	}
	for i, c := range commands {
		req := msg.Request{Client: ids.Client(0), Timestamp: uint64(i + 1), Command: c.cmd}
		start := time.Now()
		reply, err := client.Invoke(ctx, req)
		if err != nil {
			log.Fatalf("invoke %q: %v", c.desc, err)
		}
		fmt.Printf("%-45s -> %-35q (%.2f ms, instance %d)\n", c.desc, reply, float64(time.Since(start).Microseconds())/1000, client.ActiveInstance())
	}
	fmt.Printf("instance switches performed: %d (0 expected in the failure-free, contention-free case)\n", client.Switches())
}
