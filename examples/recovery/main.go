// Recovery: start an in-process 4-replica ZLight (AZyzzyva) cluster over a
// replicated KV store, push enough traffic that the replicas take stable
// checkpoints and garbage-collect the history below them, then crash-restart
// one replica with all of its in-memory state gone. The request bodies below
// the stable checkpoint no longer exist anywhere in the cluster, so the only
// way back is the checkpoint state-transfer plane (internal/statesync): the
// restarted replica FETCH-STATEs its peers, accepts the snapshot f+1 of them
// agree on, replays the suffix, and rejoins — proven by the post-restart
// requests, which ZLight only commits with matching RESPs from all 3f+1
// replicas.
//
//	go run ./examples/recovery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func main() {
	cluster, err := deploy.New(deploy.Config{
		F:                  1,
		NewApp:             func() app.Application { return app.NewKVStore() },
		Composition:        compose.MustNew("azyzzyva", compose.Options{}),
		Delta:              50 * time.Millisecond,
		CheckpointInterval: 16,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer cluster.Stop()

	client, err := cluster.NextClient()
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ts uint64
	put := func(k, v string) {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, v)}); err != nil {
			log.Fatalf("put %s: %v", k, err)
		}
	}

	fmt.Println("phase 1: 64 puts across 4 live replicas (CHK = 16)")
	for i := 0; i < 64; i++ {
		put(fmt.Sprintf("key-%d", i%24), fmt.Sprintf("v%d", i))
	}
	stable, trimmed := cluster.Host(0).CheckpointStatus()
	hist, _, bodies, snaps := cluster.Host(0).GCStats()
	fmt.Printf("  stable checkpoint at %d; replica 0 garbage-collected %d history entries\n", stable, trimmed)
	fmt.Printf("  retained: %d history digests, %d request bodies, %d snapshots\n", hist, bodies, snaps)
	fmt.Println("  (the bodies below the stable checkpoint are gone cluster-wide —")
	fmt.Println("   without state transfer a restarted replica could never rebuild)")

	fmt.Println("\ncrash-restart: replica 3 comes back empty and FETCH-STATEs its peers")
	start := time.Now()
	restarted := cluster.RestartReplica(3)
	for {
		seq, dig := restarted.AppliedState()
		refSeq, refDig := cluster.Host(0).AppliedState()
		if !restarted.Syncing() && seq == refSeq && dig == refDig {
			break
		}
		if time.Since(start) > 10*time.Second {
			log.Fatal("restarted replica did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	seq, _ := restarted.AppliedState()
	_, suffix, _, _ := restarted.GCStats()
	fmt.Printf("  caught up in %.1f ms: adopted the f+1-agreed snapshot at %d, replayed %d suffix requests\n",
		float64(time.Since(start).Microseconds())/1000, seq-uint64(suffix), suffix)
	fmt.Printf("  restored KV store: key-3 = %q (applied state digest matches replica 0)\n",
		restarted.Application().(*app.KVStore).Get("key-3"))

	fmt.Println("\nphase 2: 16 more puts — ZLight commits need RESPs from all 3f+1 replicas,")
	fmt.Println("so these commits certify the restarted replica serves consistent state:")
	for i := 0; i < 16; i++ {
		put(fmt.Sprintf("after-%d", i), "committed")
	}
	fmt.Printf("  done; replica 3 now stores after-15 = %q\n",
		restarted.Application().(*app.KVStore).Get("after-15"))
}
