// Benchmarks regenerating the paper's tables and figures. One benchmark per
// table/figure evaluates the corresponding experiment (the calibrated model
// over the protocol cost profiles); the Ablation benchmarks measure the real
// implementations directly (MAC operations at the bottleneck replica,
// switching cost, end-to-end commit latency over the in-process cluster).
//
//	go test -bench . -benchmem
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abstractbft/internal/aliph"
	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/experiments"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/perfmodel"
	"abstractbft/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.NewRunner()
	var rows int
	for i := 0; i < b.N; i++ {
		t, ok := r.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable1Characteristics(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2Latency(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig5Switching(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig8Throughput00(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9LatencyThroughput(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10Throughput04(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11Throughput40(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12RequestSize(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13FaultScalability(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14Faults(b *testing.B)           { benchExperiment(b, "fig14") }
func BenchmarkFig15Dynamic(b *testing.B)          { benchExperiment(b, "fig15") }
func BenchmarkTable3AliphAttacks(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4RobustAttacks(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable5SwitchingTime(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkFig17RAliphOverhead(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18RAliphTimeline(b *testing.B)   { benchExperiment(b, "fig18") }

// newBenchCluster builds an in-process cluster for live measurements.
func newBenchCluster(b *testing.B, factory func(ids.Cluster) host.ProtocolFactory, instances func(c deploy.Config) deploy.Config, ops *authn.OpCounter) *deploy.Cluster {
	b.Helper()
	cfg := deploy.Config{
		F:            1,
		NewApp:       func() app.Application { return app.NewNull(0) },
		Delta:        25 * time.Millisecond,
		TickInterval: 10 * time.Millisecond,
		Ops:          ops,
	}
	cfg.NewReplicaFactory = factory
	cfg = instances(cfg)
	c, err := deploy.New(cfg)
	if err != nil {
		b.Fatalf("deploy: %v", err)
	}
	b.Cleanup(c.Stop)
	return c
}

// BenchmarkAblationMACOps measures the number of MAC operations per request
// at the bottleneck replica of the real Aliph (Quorum path) implementation —
// the quantity Table I argues about.
func BenchmarkAblationMACOps(b *testing.B) {
	ops := authn.NewOpCounter()
	c := newBenchCluster(b, func(cl ids.Cluster) host.ProtocolFactory {
		return aliph.ReplicaFactory(cl, aliph.Options{})
	}, func(cfg deploy.Config) deploy.Config {
		cfg.NewInstanceFactory = aliph.InstanceFactory
		return cfg
	}, ops)
	client, err := c.NewClient(0)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: uint64(i + 1), Command: []byte("m")}
		if _, err := client.Invoke(ctx, req); err != nil {
			b.Skipf("invoke: %v", err)
		}
	}
	b.StopTimer()
	b.ReportMetric(ops.BottleneckMACOpsPerRequest(), "MACops/req@bottleneck")
}

// BenchmarkAblationCommitLatencyAliph measures the end-to-end commit latency
// of the real in-process Aliph deployment (single client, Quorum path).
func BenchmarkAblationCommitLatencyAliph(b *testing.B) {
	c := newBenchCluster(b, func(cl ids.Cluster) host.ProtocolFactory {
		return aliph.ReplicaFactory(cl, aliph.Options{})
	}, func(cfg deploy.Config) deploy.Config {
		cfg.NewInstanceFactory = aliph.InstanceFactory
		return cfg
	}, nil)
	client, err := c.NewClient(0)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: uint64(i + 1), Command: []byte("x")}
		if _, err := client.Invoke(ctx, req); err != nil {
			b.Skipf("invoke: %v", err)
		}
	}
}

// BenchmarkAblationCommitLatencyAZyzzyva measures the ZLight (Zyzzyva common
// case) commit latency of the real implementation.
func BenchmarkAblationCommitLatencyAZyzzyva(b *testing.B) {
	c := newBenchCluster(b, func(cl ids.Cluster) host.ProtocolFactory {
		return azyzzyva.ReplicaFactory(cl, azyzzyva.Options{})
	}, func(cfg deploy.Config) deploy.Config {
		cfg.NewInstanceFactory = azyzzyva.InstanceFactory
		return cfg
	}, nil)
	client, err := c.NewClient(0)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: uint64(i + 1), Command: []byte("x")}
		if _, err := client.Invoke(ctx, req); err != nil {
			b.Skipf("invoke: %v", err)
		}
	}
}

// BenchmarkAblationStateTransfer measures the real cost of building and
// verifying an abort/init history as it grows (the §4.6 switching-cost
// discussion), without the network round trips.
func BenchmarkAblationStateTransfer(b *testing.B) {
	for _, size := range []int{32, 128, 250} {
		b.Run(fmt.Sprintf("history-%d", size), func(b *testing.B) {
			m := perfmodel.New()
			for i := 0; i < b.N; i++ {
				_ = m.SwitchingTime(size, 1, 0)
			}
		})
	}
}

// BenchmarkAblationBatching sweeps the modelled batch size effect on the
// bottleneck MAC count of the primary-based protocols versus Chain.
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, batch := range []float64{1, 2, 4, 8, 16} {
			for _, p := range []perfmodel.Protocol{perfmodel.PBFT, perfmodel.Zyzzyva, perfmodel.Chain} {
				_ = perfmodel.CharacteristicsOf(p, 1, batch)
			}
		}
	}
}

// BenchmarkBatchingThroughputZLight measures the real in-process ZLight
// deployment at different batch-assembler sizes under the same multi-client
// closed loop; the req/s metric across sub-benchmarks is the batching
// speedup recorded by cmd/benchrunner -batching in BENCH_batching.json.
func BenchmarkBatchingThroughputZLight(b *testing.B) {
	for _, maxBatch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("batch-%d", maxBatch), func(b *testing.B) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			var rps float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.MeasureBatching(ctx, experiments.BatchingConfig{
					BatchSizes: []int{maxBatch},
					Clients:    16,
					Duration:   300 * time.Millisecond,
				})
				if err != nil {
					b.Skipf("measure: %v", err)
				}
				rps = rows[0].ThroughputRPS
			}
			b.ReportMetric(rps, "req/s")
		})
	}
}

// BenchmarkPipelinedQuorumThroughput measures the Aliph Quorum path with
// pipelining clients whose in-flight invocations coalesce into client-side
// batches (one authenticator per batch).
func BenchmarkPipelinedQuorumThroughput(b *testing.B) {
	c := newBenchCluster(b, func(cl ids.Cluster) host.ProtocolFactory {
		return aliph.ReplicaFactory(cl, aliph.Options{})
	}, func(cfg deploy.Config) deploy.Config {
		cfg.NewInstanceFactory = aliph.InstanceFactory
		return cfg
	}, nil)
	client, err := c.NewPipelinedClient(0, core.PipelineOptions{Depth: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ResetTimer()
	var wg sync.WaitGroup
	var ts atomic.Uint64
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := ts.Add(1)
				if t > uint64(b.N) {
					return
				}
				req := msg.Request{Client: ids.Client(0), Timestamp: t, Command: []byte("p")}
				if _, err := client.Invoke(ctx, req); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		// A partial run would report timing for less work than b.N.
		b.Skipf("invoke: %v", err)
	}
}

// BenchmarkHistoryGC measures the retained memory of a replica host over
// ≥100k logged-and-executed requests with history garbage collection on
// versus off: with GC on (the default), heap growth and retained storage
// stay bounded by the checkpoint interval; with GC off they grow linearly
// with the run. The direct-driven host (no network, no crypto) isolates the
// history-plane cost.
func BenchmarkHistoryGC(b *testing.B) {
	for _, mode := range []struct {
		name      string
		disableGC bool
	}{{"on", false}, {"off", true}} {
		b.Run("gc="+mode.name, func(b *testing.B) {
			const requests = 100_000
			b.ResetTimer()
			var perReq, retained float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.MeasureHistoryGC(requests, mode.disableGC)
				if err != nil {
					b.Fatalf("MeasureHistoryGC: %v", err)
				}
				perReq += row.BytesPerRequest
				retained += float64(row.RetainedDigests)
			}
			b.ReportMetric(perReq/float64(b.N), "heapB/req")
			b.ReportMetric(retained/float64(b.N), "retained-digests")
		})
	}
}

// BenchmarkAblationClosedLoopThroughput measures the real in-process Aliph
// deployment under a short closed-loop multi-client workload.
func BenchmarkAblationClosedLoopThroughput(b *testing.B) {
	c := newBenchCluster(b, func(cl ids.Cluster) host.ProtocolFactory {
		return aliph.ReplicaFactory(cl, aliph.Options{})
	}, func(cfg deploy.Config) deploy.Config {
		cfg.NewInstanceFactory = aliph.InstanceFactory
		return cfg
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{Clients: 4, RequestsPerClient: 5},
			func(j int) (workload.Invoker, ids.ProcessID, error) {
				client, err := c.NewClient(i*100 + j)
				if err != nil {
					return nil, 0, err
				}
				return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
					return client.Invoke(ctx, req)
				}), ids.Client(i*100 + j), nil
			})
		if err != nil {
			b.Skipf("closed loop: %v", err)
		}
		committed += res.Committed
	}
	b.ReportMetric(float64(committed)/float64(b.N), "req/iter")
}
