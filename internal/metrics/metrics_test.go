package metrics

import (
	"math"
	"testing"
	"time"
)

func TestLatencyRecorder(t *testing.T) {
	l := NewLatencyRecorder()
	if l.Mean() != 0 || l.Percentile(99) != 0 || l.Count() != 0 {
		t.Fatalf("empty recorder should report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if got := l.Mean(); got < 50*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestLatencyRecorderBounded(t *testing.T) {
	l := NewLatencyRecorder()
	// 10x the reservoir capacity of a uniform 1..n ms ramp: memory must stay
	// at the cap, the mean must remain exact, and the reservoir percentiles
	// must land within a few percent of the true ranks.
	n := reservoirCap * 10
	for i := 1; i <= n; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != n {
		t.Fatalf("count = %d, want %d", l.Count(), n)
	}
	l.mu.Lock()
	kept := len(l.samples)
	l.mu.Unlock()
	if kept != reservoirCap {
		t.Fatalf("reservoir holds %d samples, want the cap %d", kept, reservoirCap)
	}
	wantMean := time.Duration(n+1) * time.Millisecond / 2
	if got := l.Mean(); got != wantMean {
		t.Fatalf("mean = %v, want the exact %v", got, wantMean)
	}
	for _, p := range []float64{50, 90, 99} {
		got := float64(l.Percentile(p) / time.Millisecond)
		want := p / 100 * float64(n)
		if math.Abs(got-want) > 0.03*float64(n) {
			t.Fatalf("p%v = %vms, want within 3%% of %vms", p, got, want)
		}
	}
}

func TestThroughputSeries(t *testing.T) {
	tp := NewThroughput(100 * time.Millisecond)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tp.RecordAt(base.Add(time.Duration(i) * 20 * time.Millisecond))
	}
	if tp.Total() != 10 {
		t.Fatalf("total = %d", tp.Total())
	}
	series := tp.Series()
	if len(series) == 0 {
		t.Fatalf("empty series")
	}
	if tp.Peak() <= 0 {
		t.Fatalf("peak = %v", tp.Peak())
	}
	if tp.Rate(200*time.Millisecond) != 50 {
		t.Fatalf("rate = %v, want 50 ops/s", tp.Rate(200*time.Millisecond))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestFormatOps(t *testing.T) {
	cases := map[float64]string{
		999:      "999",
		1000:     "1,000",
		55575:    "55,575",
		1234567:  "1,234,567",
		55574.6:  "55,575",
		0:        "0",
		31510.49: "31,510",
	}
	for in, want := range cases {
		if got := FormatOps(in); got != want {
			t.Errorf("FormatOps(%v) = %q, want %q", in, got, want)
		}
	}
}
