// Package metrics provides the measurement utilities used by the benchmark
// harness: latency recorders with percentiles, throughput-over-time series,
// and simple counters.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// reservoirCap bounds the sample set a LatencyRecorder keeps. Up to the cap
// every sample is retained and the percentiles are exact; beyond it the
// recorder switches to reservoir sampling (Vitter's Algorithm R), keeping a
// uniform random subset so memory stays constant over unbounded runs while
// percentiles remain unbiased estimates (8192 points place even the p99.9
// within a fraction of a percentile rank).
const reservoirCap = 8192

// LatencyRecorder accumulates request latencies and reports summary
// statistics. Memory is bounded: the mean is exact over all samples (running
// count and sum), while percentiles are computed over a uniform reservoir of
// at most reservoirCap samples — exact until the cap is exceeded.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	count   uint64
	sum     time.Duration
	rng     *rand.Rand
}

// NewLatencyRecorder returns an empty recorder. The reservoir's replacement
// choices use a fixed seed, so identical sample streams reproduce identical
// summaries.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{rng: rand.New(rand.NewSource(1))}
}

// Record adds one latency sample.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.mu.Lock()
	l.count++
	l.sum += d
	if len(l.samples) < reservoirCap {
		l.samples = append(l.samples, d)
	} else if j := l.rng.Int63n(int64(l.count)); j < reservoirCap {
		// Algorithm R: the i-th sample replaces a uniformly chosen reservoir
		// slot with probability cap/i, keeping the reservoir a uniform subset.
		l.samples[j] = d
	}
	l.mu.Unlock()
}

// Count returns the number of samples recorded.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.count)
}

// Mean returns the mean latency over every recorded sample, or 0 when no
// samples were recorded.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Percentile returns the p-th percentile latency (p in [0,100]), computed
// over the retained reservoir (exact while at most reservoirCap samples have
// been recorded).
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Throughput is a throughput-over-time series: committed operations bucketed
// into fixed-size time windows.
type Throughput struct {
	mu      sync.Mutex
	start   time.Time
	bucket  time.Duration
	buckets []uint64
	total   uint64
}

// NewThroughput returns a series with the given bucket width, starting now.
func NewThroughput(bucket time.Duration) *Throughput {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Throughput{start: time.Now(), bucket: bucket}
}

// RecordAt records one committed operation at time t.
func (t *Throughput) RecordAt(at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := int(at.Sub(t.start) / t.bucket)
	if idx < 0 {
		idx = 0
	}
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[idx]++
	t.total++
}

// Record records one committed operation now.
func (t *Throughput) Record() { t.RecordAt(time.Now()) }

// Total returns the total number of operations recorded.
func (t *Throughput) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Series returns the per-bucket operation counts converted to ops/sec.
func (t *Throughput) Series() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.buckets))
	scale := float64(time.Second) / float64(t.bucket)
	for i, b := range t.buckets {
		out[i] = float64(b) * scale
	}
	return out
}

// Peak returns the highest ops/sec over all buckets.
func (t *Throughput) Peak() float64 {
	var peak float64
	for _, v := range t.Series() {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Rate returns the average ops/sec between the start of the series and the
// given duration (or the full series when d <= 0).
func (t *Throughput) Rate(d time.Duration) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d <= 0 {
		d = time.Duration(len(t.buckets)) * t.bucket
	}
	if d <= 0 {
		return 0
	}
	return float64(t.total) / d.Seconds()
}

// Counter is a concurrency-safe counter.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// FormatOps renders an operations-per-second value the way the paper's tables
// do (integer with thousands grouping).
func FormatOps(v float64) string {
	n := int64(math.Round(v))
	s := fmt.Sprintf("%d", n)
	if n < 1000 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
