package quorum

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

type testCluster struct {
	cluster ids.Cluster
	keys    *authn.KeyStore
	net     *transport.Local
	hosts   []*host.Host
	checker *core.SpecChecker
}

func newTestCluster(t *testing.T, f int) *testCluster {
	t.Helper()
	tc := &testCluster{
		cluster: ids.NewCluster(f),
		keys:    authn.NewKeyStore("quorum-test"),
		net:     transport.NewLocal(transport.Options{}),
		checker: core.NewSpecChecker(),
	}
	for i := 0; i < tc.cluster.N; i++ {
		r := ids.Replica(i)
		h := host.New(host.Config{
			Cluster:             tc.cluster,
			Replica:             r,
			Keys:                tc.keys,
			App:                 app.NewCounter(),
			Endpoint:            tc.net.Endpoint(r),
			FirstInstance:       1,
			NewProtocol:         NewReplica(nil),
			InstrumentHistories: true,
		})
		h.Start()
		tc.hosts = append(tc.hosts, h)
	}
	t.Cleanup(func() {
		for _, h := range tc.hosts {
			h.Stop()
		}
		tc.net.Close()
	})
	return tc
}

func (tc *testCluster) clientEnv(i int) core.ClientEnv {
	id := ids.Client(i)
	return core.ClientEnv{
		Cluster:       tc.cluster,
		Keys:          tc.keys,
		ID:            id,
		Endpoint:      tc.net.Endpoint(id),
		Delta:         20 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
		Checker:       tc.checker,
	}
}

func TestQuorumCommitsInCommonCase(t *testing.T) {
	tc := newTestCluster(t, 1)
	env := tc.clientEnv(0)
	client := NewClient(env, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for ts := uint64(1); ts <= 10; ts++ {
		req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("q-%d", ts))}
		out, err := client.Invoke(ctx, req, nil)
		if err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
		if !out.Committed {
			t.Fatalf("request %d aborted without contention", ts)
		}
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

func TestQuorumInvokeBatchCommitsWholeBatch(t *testing.T) {
	tc := newTestCluster(t, 1)
	env := tc.clientEnv(0)
	client := NewClient(env, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const batchLen = 5
	reqs := make([]msg.Request, 0, batchLen)
	for ts := uint64(1); ts <= batchLen; ts++ {
		reqs = append(reqs, msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("b-%d", ts))})
	}
	outs, err := client.InvokeBatch(ctx, reqs, nil)
	if err != nil {
		t.Fatalf("invoke batch: %v", err)
	}
	if len(outs) != batchLen {
		t.Fatalf("got %d outcomes, want %d", len(outs), batchLen)
	}
	for i, out := range outs {
		if !out.Committed {
			t.Fatalf("batched request %d did not commit", i+1)
		}
		if len(out.Reply) == 0 {
			t.Fatalf("batched request %d committed with empty reply", i+1)
		}
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
	// Every replica logged the batch as one history append span.
	deadline := time.Now().Add(2 * time.Second)
	for _, h := range tc.hosts {
		for h.AppliedRequests() < batchLen && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := h.AppliedRequests(); got != batchLen {
			t.Errorf("replica %v applied %d requests, want %d", h.ID(), got, batchLen)
		}
	}
}

func TestQuorumInvokeBatchDuplicateTimestamps(t *testing.T) {
	tc := newTestCluster(t, 1)
	env := tc.clientEnv(0)
	client := NewClient(env, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	first := msg.Request{Client: env.ID, Timestamp: 1, Command: []byte("once")}
	if outs, err := client.InvokeBatch(ctx, []msg.Request{first}, nil); err != nil || !outs[0].Committed {
		t.Fatalf("setup batch failed: %v", err)
	}
	// Re-invoking the committed timestamp alongside a fresh request must
	// commit the fresh one and answer the duplicate from the reply cache
	// without re-executing it.
	second := msg.Request{Client: env.ID, Timestamp: 2, Command: []byte("fresh")}
	outs, err := client.InvokeBatch(ctx, []msg.Request{first, second}, nil)
	if err != nil {
		t.Fatalf("batch with duplicate: %v", err)
	}
	for i, out := range outs {
		if !out.Committed {
			t.Fatalf("outcome %d did not commit", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, h := range tc.hosts {
		for h.AppliedRequests() < 2 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := h.AppliedRequests(); got != 2 {
			t.Errorf("replica %v applied %d requests, want 2 (duplicate re-executed?)", h.ID(), got)
		}
	}
}
