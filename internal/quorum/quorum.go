// Package quorum implements Quorum, the contention-free Abstract instance
// used by Aliph (§5.2): clients send requests directly to all replicas, which
// speculatively execute them and reply in a single round trip (two one-way
// message delays with only 3f+1 replicas). Quorum guarantees progress only
// when there are no server/link failures, no Byzantine clients, and no
// contention; concurrent requests executed in different orders make replica
// histories diverge and the instance aborts through the shared panicking
// subprotocol.
package quorum

import (
	"context"
	"encoding/binary"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// RequestMessage is the REQ message a client multicasts to every replica
// (Step Q1).
type RequestMessage struct {
	Instance core.InstanceID
	Req      msg.Request
	// Init carries the init history on the client's first invocation of the
	// instance.
	Init *core.InitHistory
	// Auth is the client's MAC authenticator over the request and instance.
	Auth authn.Authenticator
	// Feedback optionally piggybacks R-Aliph commit feedback: the timestamps
	// of requests this client recently committed (Principle P2, §6.3).
	Feedback []uint64
}

// AbstractInstance implements core.InstanceMessage.
func (m *RequestMessage) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *RequestMessage) CarriedInit() *core.InitHistory { return m.Init }

// BatchRequestMessage is the batched REQ message a pipelining client
// multicasts to every replica: several of its own in-flight requests ordered
// by timestamp, covered by a single MAC authenticator over the batch digest
// (Step Q1 amortized over the batch).
type BatchRequestMessage struct {
	Instance core.InstanceID
	Batch    msg.Batch
	// Init carries the init history on the client's first invocation of the
	// instance.
	Init *core.InitHistory
	// Auth is the client's MAC authenticator over the batch and instance.
	Auth authn.Authenticator
	// Feedback optionally piggybacks R-Aliph commit feedback.
	Feedback []uint64
}

// AbstractInstance implements core.InstanceMessage.
func (m *BatchRequestMessage) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *BatchRequestMessage) CarriedInit() *core.InitHistory { return m.Init }

// AuthBytes returns the bytes a client authenticates: instance number and
// request digest.
func AuthBytes(instance core.InstanceID, req msg.Request) []byte {
	var buf [8 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	d := req.Digest()
	copy(buf[8:], d[:])
	return buf[:]
}

// BatchAuthBytes returns the bytes a client authenticates for a batched
// invocation: the instance number and the batch digest (one authenticator
// for the whole batch).
func BatchAuthBytes(instance core.InstanceID, batch msg.Batch) []byte {
	var buf [8 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	d := batch.Digest()
	copy(buf[8:], d[:])
	return buf[:]
}

func init() {
	transport.RegisterWireType(&RequestMessage{})
	transport.RegisterWireType(&BatchRequestMessage{})
}

// Replica implements Step Q2 on one replica for one Abstract instance.
type Replica struct {
	h        *host.Host
	st       *host.InstanceState
	feedback host.FeedbackSink
}

// NewReplica returns a host.ProtocolFactory creating Quorum replicas. The
// optional feedback sink receives R-Aliph client feedback.
func NewReplica(feedback host.FeedbackSink) host.ProtocolFactory {
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		return &Replica{h: h, st: st, feedback: feedback}
	}
}

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	switch t := m.(type) {
	case *RequestMessage:
		r.onRequest(from, t)
	case *BatchRequestMessage:
		r.onBatchRequest(from, t)
	}
}

// MaxClientBatch bounds the size of a client-side batch a replica accepts:
// one authenticated message must not buy a Byzantine client an unbounded
// logging/execution span on the host event loop.
const MaxClientBatch = 128

// onBatchRequest implements Step Q2 for a client-side batch: verify the
// single batch authenticator, log the whole batch as one history append
// span, speculatively execute it in one loop, and fan the per-request RESP
// messages back to the client as one coalesced envelope.
func (r *Replica) onBatchRequest(from ids.ProcessID, m *BatchRequestMessage) {
	if m.Batch.Len() == 0 || m.Batch.Len() > MaxClientBatch {
		return
	}
	client := m.Batch.Requests[0].Client
	if r.feedback != nil && len(m.Feedback) > 0 {
		issued := make([]uint64, 0, m.Batch.Len())
		for _, req := range m.Batch.Requests {
			issued = append(issued, req.Timestamp)
		}
		r.feedback.ClientFeedback(r.h.ID(), client, m.Feedback, issued)
	}
	if r.st.Stopped {
		return
	}
	// All requests of a batch belong to the invoking client; a batch mixing
	// clients cannot be covered by one authenticator and is dropped. The
	// authenticator must also be generated BY that client — its Sender field
	// is attacker-chosen, so without this binding a Byzantine process could
	// have forged requests verified under its own keys.
	if m.Auth.Sender != client {
		return
	}
	for _, req := range m.Batch.Requests {
		if req.Client != client || (from.IsClient() && req.Client != from) {
			return
		}
	}
	if err := r.h.VerifyClientAuth(m.Auth, BatchAuthBytes(r.st.ID, m.Batch)); err != nil {
		return
	}
	designated := r.h.ID() == r.h.Cluster().Head()
	resps := make([]any, 0, m.Batch.Len())
	fresh, stale := r.st.FilterFreshBatch(m.Batch)
	// The cross-instance at-most-once gate applies to batched retransmissions
	// too: a request committed before this instance's init history reaches
	// (e.g. below a restarted replica's adopted snapshot) looks fresh to the
	// instance window but must be served from cache, not re-executed.
	if fresh.Len() > 0 {
		kept := make([]msg.Request, 0, len(fresh.Requests))
		for _, req := range fresh.Requests {
			if r.h.AppliedStale(req.Client, req.Timestamp) {
				stale = append(stale, req)
				continue
			}
			kept = append(kept, req)
		}
		fresh.Requests = kept
	}
	for _, req := range stale {
		if reply, ok := r.h.CachedReply(req.Client, req.Timestamp); ok {
			resps = append(resps, r.h.BuildResp(r.st, req, reply, designated))
		}
	}
	if fresh.Len() > 0 {
		if _, ok := r.h.LogBatch(r.st, fresh); ok {
			replies := r.h.ExecuteBatch(r.st, fresh)
			for i, req := range fresh.Requests {
				resps = append(resps, r.h.BuildResp(r.st, req, replies[i], designated))
			}
			if designated {
				for range fresh.Requests {
					r.h.Ops().CountRequest()
				}
			}
		}
	}
	r.h.SendBatch(client, resps)
}

// onRequest implements Step Q2: verify the client MAC, log and speculatively
// execute the request, and reply.
func (r *Replica) onRequest(from ids.ProcessID, m *RequestMessage) {
	if r.feedback != nil && len(m.Feedback) > 0 {
		r.feedback.ClientFeedback(r.h.ID(), m.Req.Client, m.Feedback, []uint64{m.Req.Timestamp})
	}
	if r.st.Stopped {
		return
	}
	// The authenticator must be the invoking client's own (Sender is
	// attacker-chosen otherwise).
	if m.Auth.Sender != m.Req.Client {
		return
	}
	if err := r.h.VerifyClientAuth(m.Auth, AuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) || r.h.AppliedStale(m.Req.Client, m.Req.Timestamp) {
		// Stale per the instance window or the host's applied window (the
		// cross-instance at-most-once gate): serve the cached reply.
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, r.h.ID() == r.h.Cluster().Head())
			r.h.Send(m.Req.Client, resp)
		}
		return
	}
	if _, ok := r.h.Log(r.st, m.Req); !ok {
		return
	}
	reply := r.h.Execute(r.st, m.Req)
	resp := r.h.BuildResp(r.st, m.Req, reply, r.h.ID() == r.h.Cluster().Head())
	r.h.Send(m.Req.Client, resp)
	if r.h.ID() == r.h.Cluster().Head() {
		r.h.Ops().CountRequest()
	}
}

// Client is the client-side handle of one Quorum instance.
type Client struct {
	env core.ClientEnv
	id  core.InstanceID
	// PendingFeedback is attached to the next request's REQ messages and
	// then cleared; R-Aliph's client wrapper populates it.
	PendingFeedback []uint64
}

// NewClient creates a Quorum instance client.
func NewClient(env core.ClientEnv, id core.InstanceID) *Client {
	return &Client{env: env, id: id}
}

// ID implements core.Instance.
func (c *Client) ID() core.InstanceID { return c.id }

// SetPendingFeedback implements core.FeedbackCarrier.
func (c *Client) SetPendingFeedback(committed []uint64) { c.PendingFeedback = committed }

// Invoke implements core.Instance: Step Q1 (multicast to all replicas, arm a
// 2Δ timer), Step Q3 (identical to Step Z4), and the panicking mechanism.
func (c *Client) Invoke(ctx context.Context, req msg.Request, init *core.InitHistory) (core.Outcome, error) {
	if c.env.Checker != nil {
		c.env.Checker.RecordInvoke(req)
		c.env.Checker.RecordInit(c.id, init)
	}
	auth := c.env.Keys.NewAuthenticator(c.env.ID, c.env.Cluster.Replicas(), AuthBytes(c.id, req))
	c.env.Ops.CountMACGen(c.env.ID, auth.NumMACs())
	m := &RequestMessage{Instance: c.id, Req: req, Init: init, Auth: auth, Feedback: c.PendingFeedback}
	c.PendingFeedback = nil
	transport.Multicast(c.env.Endpoint, c.env.Cluster.Replicas(), m)

	out, committed, err := core.AwaitSpeculativeCommit(ctx, c.env, c.id, req, c.env.Timer(2))
	if err != nil {
		return core.Outcome{}, err
	}
	if committed {
		return out, nil
	}
	return core.PanicAndAbort(ctx, c.env, c.id, req, init)
}

// InvokeBatch implements core.BatchInstance: it multicasts several of the
// client's in-flight requests as one BatchRequestMessage covered by a single
// authenticator, and runs the speculative commit rule for all of them in one
// receive loop. It is an optimistic fast path: uncommitted requests are
// returned with Committed=false and the caller falls back to per-request
// Invoke (and its panicking machinery).
func (c *Client) InvokeBatch(ctx context.Context, reqs []msg.Request, init *core.InitHistory) ([]core.Outcome, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	batch := msg.BatchOf(reqs...)
	if c.env.Checker != nil {
		for _, req := range reqs {
			c.env.Checker.RecordInvoke(req)
		}
		c.env.Checker.RecordInit(c.id, init)
	}
	auth := c.env.Keys.NewAuthenticator(c.env.ID, c.env.Cluster.Replicas(), BatchAuthBytes(c.id, batch))
	c.env.Ops.CountMACGen(c.env.ID, auth.NumMACs())
	m := &BatchRequestMessage{Instance: c.id, Batch: batch, Init: init, Auth: auth, Feedback: c.PendingFeedback}
	c.PendingFeedback = nil
	transport.Multicast(c.env.Endpoint, c.env.Cluster.Replicas(), m)

	outs, _, err := core.AwaitBatchSpeculativeCommit(ctx, c.env, c.id, reqs, c.env.Timer(2))
	if err != nil {
		return nil, err
	}
	return outs, nil
}

var _ core.Instance = (*Client)(nil)
var _ core.BatchInstance = (*Client)(nil)
var _ host.ProtocolReplica = (*Replica)(nil)
