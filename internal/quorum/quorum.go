// Package quorum implements Quorum, the contention-free Abstract instance
// used by Aliph (§5.2): clients send requests directly to all replicas, which
// speculatively execute them and reply in a single round trip (two one-way
// message delays with only 3f+1 replicas). Quorum guarantees progress only
// when there are no server/link failures, no Byzantine clients, and no
// contention; concurrent requests executed in different orders make replica
// histories diverge and the instance aborts through the shared panicking
// subprotocol.
package quorum

import (
	"context"
	"encoding/binary"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// RequestMessage is the REQ message a client multicasts to every replica
// (Step Q1).
type RequestMessage struct {
	Instance core.InstanceID
	Req      msg.Request
	// Init carries the init history on the client's first invocation of the
	// instance.
	Init *core.InitHistory
	// Auth is the client's MAC authenticator over the request and instance.
	Auth authn.Authenticator
	// Feedback optionally piggybacks R-Aliph commit feedback: the timestamps
	// of requests this client recently committed (Principle P2, §6.3).
	Feedback []uint64
}

// AbstractInstance implements core.InstanceMessage.
func (m *RequestMessage) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *RequestMessage) CarriedInit() *core.InitHistory { return m.Init }

// AuthBytes returns the bytes a client authenticates: instance number and
// request digest.
func AuthBytes(instance core.InstanceID, req msg.Request) []byte {
	var buf [8 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	d := req.Digest()
	copy(buf[8:], d[:])
	return buf[:]
}

func init() {
	transport.RegisterWireType(&RequestMessage{})
}

// Replica implements Step Q2 on one replica for one Abstract instance.
type Replica struct {
	h        *host.Host
	st       *host.InstanceState
	feedback host.FeedbackSink
}

// NewReplica returns a host.ProtocolFactory creating Quorum replicas. The
// optional feedback sink receives R-Aliph client feedback.
func NewReplica(feedback host.FeedbackSink) host.ProtocolFactory {
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		return &Replica{h: h, st: st, feedback: feedback}
	}
}

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	req, ok := m.(*RequestMessage)
	if !ok {
		return
	}
	r.onRequest(from, req)
}

// onRequest implements Step Q2: verify the client MAC, log and speculatively
// execute the request, and reply.
func (r *Replica) onRequest(from ids.ProcessID, m *RequestMessage) {
	if r.feedback != nil && len(m.Feedback) > 0 {
		r.feedback.ClientFeedback(r.h.ID(), m.Req.Client, m.Feedback, []uint64{m.Req.Timestamp})
	}
	if r.st.Stopped {
		return
	}
	if err := r.h.VerifyClientAuth(m.Auth, AuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) {
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, r.h.ID() == r.h.Cluster().Head())
			r.h.Send(m.Req.Client, resp)
		}
		return
	}
	if _, ok := r.h.Log(r.st, m.Req); !ok {
		return
	}
	reply := r.h.Execute(r.st, m.Req)
	resp := r.h.BuildResp(r.st, m.Req, reply, r.h.ID() == r.h.Cluster().Head())
	r.h.Send(m.Req.Client, resp)
	if r.h.ID() == r.h.Cluster().Head() {
		r.h.Ops().CountRequest()
	}
}

// Client is the client-side handle of one Quorum instance.
type Client struct {
	env core.ClientEnv
	id  core.InstanceID
	// PendingFeedback is attached to the next request's REQ messages and
	// then cleared; R-Aliph's client wrapper populates it.
	PendingFeedback []uint64
}

// NewClient creates a Quorum instance client.
func NewClient(env core.ClientEnv, id core.InstanceID) *Client {
	return &Client{env: env, id: id}
}

// ID implements core.Instance.
func (c *Client) ID() core.InstanceID { return c.id }

// Invoke implements core.Instance: Step Q1 (multicast to all replicas, arm a
// 2Δ timer), Step Q3 (identical to Step Z4), and the panicking mechanism.
func (c *Client) Invoke(ctx context.Context, req msg.Request, init *core.InitHistory) (core.Outcome, error) {
	if c.env.Checker != nil {
		c.env.Checker.RecordInvoke(req)
		c.env.Checker.RecordInit(c.id, init)
	}
	auth := c.env.Keys.NewAuthenticator(c.env.ID, c.env.Cluster.Replicas(), AuthBytes(c.id, req))
	c.env.Ops.CountMACGen(c.env.ID, auth.NumMACs())
	m := &RequestMessage{Instance: c.id, Req: req, Init: init, Auth: auth, Feedback: c.PendingFeedback}
	c.PendingFeedback = nil
	transport.Multicast(c.env.Endpoint, c.env.Cluster.Replicas(), m)

	out, committed, err := core.AwaitSpeculativeCommit(ctx, c.env, c.id, req, c.env.Timer(2))
	if err != nil {
		return core.Outcome{}, err
	}
	if committed {
		return out, nil
	}
	return core.PanicAndAbort(ctx, c.env, c.id, req, init)
}

var _ core.Instance = (*Client)(nil)
var _ host.ProtocolReplica = (*Replica)(nil)
