package history

import (
	"fmt"
	"testing"
	"testing/quick"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func req(client int, ts uint64) msg.Request {
	return msg.Request{Client: ids.Client(client), Timestamp: ts, Command: []byte(fmt.Sprintf("c%d-%d", client, ts))}
}

func TestHistoryBasics(t *testing.T) {
	h := New(req(0, 1), req(0, 2))
	if h.Len() != 2 {
		t.Fatalf("len = %d, want 2", h.Len())
	}
	if !h.Contains(req(0, 1).ID()) || h.Contains(req(1, 1).ID()) {
		t.Fatalf("Contains misbehaves")
	}
	clone := h.Clone()
	clone.Append(req(0, 3))
	if h.Len() != 2 {
		t.Fatalf("Clone is not independent")
	}
	if !h.IsPrefixOf(clone) {
		t.Fatalf("history should be a prefix of its extension")
	}
	if clone.IsPrefixOf(h) {
		t.Fatalf("longer history cannot be a prefix of a shorter one")
	}
	if h.Digest() == clone.Digest() {
		t.Fatalf("different histories share a digest")
	}
	h.Truncate(1)
	if h.Len() != 1 || !h.At(0).Equal(req(0, 2)) {
		t.Fatalf("Truncate removed the wrong entries")
	}
}

func TestDigestHistoryPrefixAndLCP(t *testing.T) {
	a := New(req(0, 1), req(0, 2), req(0, 3)).Digests()
	b := New(req(0, 1), req(0, 2)).Digests()
	c := New(req(0, 1), req(1, 9)).Digests()

	if !b.IsPrefixOf(a) || a.IsPrefixOf(b) {
		t.Fatalf("prefix relation wrong")
	}
	lcp := LongestCommonPrefix(a, b, c)
	if len(lcp) != 1 {
		t.Fatalf("LCP length = %d, want 1", len(lcp))
	}
	if len(LongestCommonPrefix()) != 0 {
		t.Fatalf("LCP of nothing should be empty")
	}
	if got := LongestCommonPrefix(a); len(got) != len(a) {
		t.Fatalf("LCP of a single history should be itself")
	}
}

func TestDedupPrefix(t *testing.T) {
	r1, r2 := req(0, 1), req(0, 2)
	d := DigestHistory{r1.Digest(), r2.Digest(), r1.Digest(), r2.Digest()}
	out := DedupPrefix(d)
	if len(out) != 2 {
		t.Fatalf("dedup prefix length = %d, want 2", len(out))
	}
}

func TestExtractAgreement(t *testing.T) {
	// 2f+1 = 3 reports, f = 1. Two reports agree on [a b c]; the third has
	// diverged at position 2. Extraction must return [a b c]: positions 0 and
	// 1 have 3 votes, position 2 has 2 votes (f+1).
	a, b, c, x := req(0, 1), req(0, 2), req(0, 3), req(9, 9)
	full := DigestHistory{a.Digest(), b.Digest(), c.Digest()}
	div := DigestHistory{a.Digest(), b.Digest(), x.Digest()}
	reports := []ReplicaReport{{Suffix: full}, {Suffix: full}, {Suffix: div}}
	res, err := Extract(reports, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suffix) != 3 {
		t.Fatalf("extracted %d entries, want 3", len(res.Suffix))
	}
	for i, want := range full {
		if res.Suffix[i] != want {
			t.Fatalf("position %d extracted wrong digest", i)
		}
	}
}

func TestExtractStopsWithoutAgreement(t *testing.T) {
	a, x, y, z := req(0, 1), req(7, 7), req(8, 8), req(9, 9)
	reports := []ReplicaReport{
		{Suffix: DigestHistory{a.Digest(), x.Digest()}},
		{Suffix: DigestHistory{a.Digest(), y.Digest()}},
		{Suffix: DigestHistory{a.Digest(), z.Digest()}},
	}
	res, err := Extract(reports, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suffix) != 1 {
		t.Fatalf("extracted %d entries, want 1 (no agreement beyond position 0)", len(res.Suffix))
	}
}

func TestExtractNeedsQuorum(t *testing.T) {
	if _, err := Extract([]ReplicaReport{{}, {}}, 1); err == nil {
		t.Fatalf("extraction with fewer than 2f+1 reports must fail")
	}
}

func TestExtractWithCheckpoints(t *testing.T) {
	// Two reports have checkpointed up to position 2; one lags with an
	// explicit suffix from position 0. The extracted history must start at
	// the agreed checkpoint and keep the common suffix.
	a, b, c, d := req(0, 1), req(0, 2), req(0, 3), req(0, 4)
	ckptDigest := authn.Hash([]byte("state-after-2"))
	lag := ReplicaReport{Suffix: DigestHistory{a.Digest(), b.Digest(), c.Digest(), d.Digest()}}
	fast := ReplicaReport{CheckpointSeq: 2, CheckpointDigest: ckptDigest, Suffix: DigestHistory{c.Digest(), d.Digest()}}
	res, err := Extract([]ReplicaReport{lag, fast, fast}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseSeq != 2 || res.BaseDigest != ckptDigest {
		t.Fatalf("base checkpoint not adopted: seq=%d", res.BaseSeq)
	}
	if len(res.Suffix) != 2 || res.Suffix[0] != c.Digest() || res.Suffix[1] != d.Digest() {
		t.Fatalf("suffix after checkpoint wrong: %d entries", len(res.Suffix))
	}
	if res.TotalLen() != 4 {
		t.Fatalf("total length = %d, want 4", res.TotalLen())
	}
}

// Property: every commit-history-like prefix of the reports that f+1 agree on
// survives extraction (abort histories contain committed requests).
func TestExtractContainsAgreedPrefixQuick(t *testing.T) {
	f := 1
	prop := func(nCommon uint8, tails [3]uint8) bool {
		common := int(nCommon % 20)
		var reports []ReplicaReport
		var prefix DigestHistory
		for i := 0; i < common; i++ {
			prefix = append(prefix, req(0, uint64(i+1)).Digest())
		}
		for r := 0; r < 3; r++ {
			suffix := prefix.Clone()
			for j := 0; j < int(tails[r]%4); j++ {
				suffix = append(suffix, req(10+r, uint64(100+j)).Digest())
			}
			reports = append(reports, ReplicaReport{Suffix: suffix})
		}
		res, err := Extract(reports, f)
		if err != nil {
			return false
		}
		return prefix.IsPrefixOf(res.Suffix)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointStateStability(t *testing.T) {
	cs := NewCheckpointState(4, 10)
	if _, ok := cs.ShouldCheckpoint(9); ok {
		t.Fatalf("checkpoint should not trigger below the interval")
	}
	cc, ok := cs.ShouldCheckpoint(10)
	if !ok || cc != 1 {
		t.Fatalf("checkpoint at 10 requests: cc=%d ok=%v", cc, ok)
	}
	d := authn.Hash([]byte("state"))
	for i := 0; i < 3; i++ {
		if cs.Record(ids.Replica(i), 1, d) {
			t.Fatalf("checkpoint stable before all replicas reported")
		}
	}
	if !cs.Record(ids.Replica(3), 1, d) {
		t.Fatalf("checkpoint not stable after all replicas reported")
	}
	if cs.StableSeq() != 10 || cs.StableDigest() != d || cs.StableCounter() != 1 {
		t.Fatalf("stable checkpoint state wrong")
	}
	// A divergent digest prevents stability.
	cs2 := NewCheckpointState(2, 10)
	cs2.Record(ids.Replica(0), 1, d)
	if cs2.Record(ids.Replica(1), 1, authn.Hash([]byte("other"))) {
		t.Fatalf("checkpoint became stable despite divergent digests")
	}
	cs.Reset()
	if cs.StableSeq() != 0 || cs.StableCounter() != 0 {
		t.Fatalf("reset did not clear state")
	}
}
