package history

import (
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
)

// DefaultCheckpointInterval is CHK, the number of requests between
// checkpoints used in the paper's evaluation (§4.2.4).
const DefaultCheckpointInterval = 128

// CheckpointState tracks the lightweight checkpoint subprotocol (LCS) state
// of one replica: the last stable checkpoint (agreed by all replicas) and the
// pending checkpoint exchange.
type CheckpointState struct {
	// Interval is CHK, the number of requests between checkpoints.
	Interval int
	// cluster size used to decide stability (LCS requires the same digest
	// from all replicas).
	n int

	// lastStableSeq is cc*CHK of the last stable checkpoint.
	lastStableSeq uint64
	// lastStableDigest is st_cc of the last stable checkpoint.
	lastStableDigest authn.Digest
	// lastCounter is lastcc.
	lastCounter uint64

	// pending holds, per checkpoint counter, the state digests received from
	// each replica (including this one).
	pending map[uint64]map[ids.ProcessID]authn.Digest
}

// NewCheckpointState returns checkpoint state for a cluster of n replicas
// using the given interval (DefaultCheckpointInterval when interval <= 0).
func NewCheckpointState(n, interval int) *CheckpointState {
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	return &CheckpointState{
		Interval: interval,
		n:        n,
		pending:  make(map[uint64]map[ids.ProcessID]authn.Digest),
	}
}

// StableSeq returns the absolute position covered by the last stable
// checkpoint.
func (c *CheckpointState) StableSeq() uint64 { return c.lastStableSeq }

// StableDigest returns the digest of the last stable checkpoint state.
func (c *CheckpointState) StableDigest() authn.Digest { return c.lastStableDigest }

// StableCounter returns lastcc, the counter of the last stable checkpoint.
func (c *CheckpointState) StableCounter() uint64 { return c.lastCounter }

// ShouldCheckpoint reports whether a replica whose local history has reached
// histLen requests (absolute position) should initiate checkpoint exchange,
// and the checkpoint counter to use.
func (c *CheckpointState) ShouldCheckpoint(histLen uint64) (uint64, bool) {
	if c.Interval <= 0 {
		return 0, false
	}
	counter := histLen / uint64(c.Interval)
	if counter > c.lastCounter && histLen >= uint64(c.Interval) {
		return counter, true
	}
	return 0, false
}

// Record registers a CHECKPOINT message from replica r carrying the digest of
// state st_cc for checkpoint counter cc. It returns true when the checkpoint
// became stable as a result (the same digest has been received from all n
// replicas and cc is newer than the last stable one).
func (c *CheckpointState) Record(r ids.ProcessID, cc uint64, digest authn.Digest) bool {
	if cc <= c.lastCounter {
		return false
	}
	m, ok := c.pending[cc]
	if !ok {
		m = make(map[ids.ProcessID]authn.Digest)
		c.pending[cc] = m
	}
	m[r] = digest

	if len(m) < c.n {
		return false
	}
	// All replicas reported; stable only if the digests all match.
	first := true
	var want authn.Digest
	for _, d := range m {
		if first {
			want = d
			first = false
			continue
		}
		if d != want {
			return false
		}
	}
	c.lastCounter = cc
	c.lastStableSeq = cc * uint64(c.Interval)
	c.lastStableDigest = want
	// Prune every pending exchange at or below the new stable counter: a
	// boundary crossed while a replica was down never completes (its vote is
	// gone for good) and would otherwise linger forever.
	for k := range c.pending {
		if k <= cc {
			delete(c.pending, k)
		}
	}
	return true
}

// AdoptStable installs a transferred stable checkpoint (checkpoint state
// transfer, internal/statesync): a recovering replica that accepted an
// f+1-agreed snapshot at counter cc adopts it as its last stable checkpoint
// so garbage collection and abort reports line up with the live replicas.
// Older adoptions than the current stable checkpoint are ignored.
func (c *CheckpointState) AdoptStable(cc uint64, digest authn.Digest) {
	if cc <= c.lastCounter {
		return
	}
	c.lastCounter = cc
	c.lastStableSeq = cc * uint64(c.Interval)
	c.lastStableDigest = digest
	for k := range c.pending {
		if k <= cc {
			delete(c.pending, k)
		}
	}
}

// Reset clears all checkpoint state; used when a new Abstract instance is
// initialized from an init history.
func (c *CheckpointState) Reset() {
	c.lastStableSeq = 0
	c.lastStableDigest = authn.Digest{}
	c.lastCounter = 0
	c.pending = make(map[uint64]map[ids.ProcessID]authn.Digest)
}
