// Package history implements request histories, digest histories, the
// abort-history extraction algorithm of the panicking subprotocol (Step P3 of
// §4.2.2), and the lightweight checkpoint subprotocol (LCS, §4.2.4) state kept
// by replicas.
//
// Two representations are used throughout the repository:
//
//   - History: a sequence of full requests, the replica-local history LH_j.
//   - DigestHistory: a sequence of request digests, used by the state-transfer
//     optimization (§4.4) in which ABORT messages and init histories carry
//     digests rather than request bodies.
package history

import (
	"fmt"

	"abstractbft/internal/authn"
	"abstractbft/internal/msg"
)

// History is an ordered sequence of requests (a value of type H = REQ* in the
// Abstract specification).
type History struct {
	reqs []msg.Request
}

// New returns a history containing the given requests.
func New(reqs ...msg.Request) *History {
	h := &History{}
	for _, r := range reqs {
		h.Append(r)
	}
	return h
}

// Append adds a request at the end of the history.
func (h *History) Append(r msg.Request) { h.reqs = append(h.reqs, r) }

// Len returns the number of requests in the history.
func (h *History) Len() int { return len(h.reqs) }

// At returns the i-th request (0-based).
func (h *History) At(i int) msg.Request { return h.reqs[i] }

// Requests returns a copy of the underlying request slice.
func (h *History) Requests() []msg.Request {
	return append([]msg.Request(nil), h.reqs...)
}

// Clone returns a deep copy of the history.
func (h *History) Clone() *History {
	c := &History{reqs: make([]msg.Request, len(h.reqs))}
	copy(c.reqs, h.reqs)
	return c
}

// Contains reports whether the history contains a request with the given
// identifier.
func (h *History) Contains(id msg.RequestID) bool {
	for _, r := range h.reqs {
		if r.ID() == id {
			return true
		}
	}
	return false
}

// Digests returns the digest history corresponding to h.
func (h *History) Digests() DigestHistory {
	out := make(DigestHistory, len(h.reqs))
	for i, r := range h.reqs {
		out[i] = r.Digest()
	}
	return out
}

// Digest returns a digest of the whole history (D(LH_j) in the paper),
// computed incrementally over the request digests.
func (h *History) Digest() authn.Digest { return h.Digests().Digest() }

// IsPrefixOf reports whether h is a (non-strict) prefix of other.
func (h *History) IsPrefixOf(other *History) bool {
	if h.Len() > other.Len() {
		return false
	}
	for i, r := range h.reqs {
		if !r.Equal(other.reqs[i]) {
			return false
		}
	}
	return true
}

// Truncate removes the first n requests; used when a checkpoint covers them.
func (h *History) Truncate(n int) {
	if n <= 0 {
		return
	}
	if n > len(h.reqs) {
		n = len(h.reqs)
	}
	h.reqs = append([]msg.Request(nil), h.reqs[n:]...)
}

// DigestHistory is a sequence of request digests.
type DigestHistory []authn.Digest

// DigestStep extends a running history digest chain by one entry: the digest
// of a history is the left fold of DigestStep over its entries starting from
// the zero digest. The chained structure lets holders of an append-only
// history (InstanceState) maintain the digest incrementally — one step per
// appended request instead of re-folding the whole history per batch.
func DigestStep(acc, next authn.Digest) authn.Digest {
	return authn.HashAll(acc[:], next[:])
}

// Digest folds the digest history into a single digest (the DigestStep
// chain). The empty history has the zero digest.
func (d DigestHistory) Digest() authn.Digest {
	var acc authn.Digest
	for _, x := range d {
		acc = DigestStep(acc, x)
	}
	return acc
}

// IsPrefixOf reports whether d is a (non-strict) prefix of other.
func (d DigestHistory) IsPrefixOf(other DigestHistory) bool {
	if len(d) > len(other) {
		return false
	}
	for i := range d {
		if d[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the digest history.
func (d DigestHistory) Clone() DigestHistory { return append(DigestHistory(nil), d...) }

// Contains reports whether the digest history contains dg.
func (d DigestHistory) Contains(dg authn.Digest) bool {
	for _, x := range d {
		if x == dg {
			return true
		}
	}
	return false
}

// LongestCommonPrefix returns the longest common prefix of the given digest
// histories. The common prefix of zero histories is empty.
func LongestCommonPrefix(hs ...DigestHistory) DigestHistory {
	if len(hs) == 0 {
		return nil
	}
	prefix := hs[0].Clone()
	for _, h := range hs[1:] {
		n := len(prefix)
		if len(h) < n {
			n = len(h)
		}
		i := 0
		for i < n && prefix[i] == h[i] {
			i++
		}
		prefix = prefix[:i]
	}
	return prefix
}

// DedupPrefix returns the longest prefix of d in which no digest appears
// twice (the final step of abort-history extraction).
func DedupPrefix(d DigestHistory) DigestHistory {
	seen := make(map[authn.Digest]struct{}, len(d))
	for i, x := range d {
		if _, dup := seen[x]; dup {
			return d[:i].Clone()
		}
		seen[x] = struct{}{}
	}
	return d.Clone()
}

// ReplicaReport is the history-bearing content of one replica's ABORT
// message: the replica's last stable checkpoint and the digests of the
// requests logged after that checkpoint.
type ReplicaReport struct {
	// CheckpointSeq is the number of requests covered by the replica's last
	// stable checkpoint (cc * CHK in the paper); 0 when no checkpoint has
	// been taken.
	CheckpointSeq uint64
	// CheckpointDigest is the digest of the checkpointed state.
	CheckpointDigest authn.Digest
	// Suffix holds the digests of the requests logged after CheckpointSeq,
	// in log order; the request at absolute position CheckpointSeq+i is
	// Suffix[i].
	Suffix DigestHistory
}

// Len returns the absolute length of the reported history.
func (r ReplicaReport) Len() uint64 { return r.CheckpointSeq + uint64(len(r.Suffix)) }

// At returns the digest at absolute position pos and whether the report
// vouches for that position explicitly. Positions below the checkpoint are
// covered by the checkpoint ("histories of length at most cc*CHK are
// considered prefixes of st_cc", §4.2.4) and are reported as implicit.
func (r ReplicaReport) At(pos uint64) (dg authn.Digest, explicit bool, covered bool) {
	if pos < r.CheckpointSeq {
		return authn.Digest{}, false, true
	}
	idx := pos - r.CheckpointSeq
	if idx < uint64(len(r.Suffix)) {
		return r.Suffix[idx], true, true
	}
	return authn.Digest{}, false, false
}

// ExtractResult is the outcome of abort-history extraction.
type ExtractResult struct {
	// BaseSeq is the checkpoint position the extracted history starts from:
	// the highest checkpoint sequence vouched for by at least f+1 reports
	// with the same checkpoint digest.
	BaseSeq uint64
	// BaseDigest is the digest of the checkpointed state at BaseSeq.
	BaseDigest authn.Digest
	// Suffix contains the extracted digests for positions BaseSeq, BaseSeq+1,
	// ... with duplicates removed per the dedup rule.
	Suffix DigestHistory
}

// TotalLen returns the absolute length of the extracted abort history.
func (e ExtractResult) TotalLen() uint64 { return e.BaseSeq + uint64(len(e.Suffix)) }

// Extract implements Step P3 of the panicking subprotocol: given at least
// 2f+1 replica reports, it builds the history AH such that AH[j] equals the
// value appearing at position j in at least f+1 reports, stops at the first
// position where no such value exists, and finally removes duplicate requests
// by taking the longest duplicate-free prefix.
func Extract(reports []ReplicaReport, f int) (ExtractResult, error) {
	if len(reports) < 2*f+1 {
		return ExtractResult{}, fmt.Errorf("history: need at least %d reports, have %d", 2*f+1, len(reports))
	}

	// Determine the base checkpoint: the highest checkpoint sequence that at
	// least f+1 reports agree on (same sequence and digest). Sequence 0 (no
	// checkpoint) is always agreed upon vacuously.
	var base ExtractResult
	type ckpt struct {
		seq uint64
		dg  authn.Digest
	}
	counts := make(map[ckpt]int)
	for _, r := range reports {
		counts[ckpt{r.CheckpointSeq, r.CheckpointDigest}]++
	}
	for c, n := range counts {
		if n >= f+1 && c.seq > base.BaseSeq {
			base.BaseSeq = c.seq
			base.BaseDigest = c.dg
		}
	}

	// Extract suffix positions by f+1 agreement. A report whose checkpoint
	// covers a position (pos < report.CheckpointSeq) counts as agreeing with
	// any candidate value for that position.
	var suffix DigestHistory
	for pos := base.BaseSeq; ; pos++ {
		votes := make(map[authn.Digest]int)
		implicit := 0
		for _, r := range reports {
			dg, explicit, covered := r.At(pos)
			if !covered {
				continue
			}
			if explicit {
				votes[dg]++
			} else {
				implicit++
			}
		}
		var winner authn.Digest
		found := false
		best := 0
		for dg, n := range votes {
			if n+implicit >= f+1 && n > best {
				winner = dg
				best = n
				found = true
			}
		}
		if !found {
			break
		}
		suffix = append(suffix, winner)
	}
	base.Suffix = DedupPrefix(suffix)
	return base, nil
}
