// Package ids defines process identities and cluster configuration for the
// Abstract BFT framework.
//
// A cluster consists of n replicas (n = 3f+1 for most protocols, 5f+1 for
// Q/U) and an arbitrary number of clients. Replicas occupy the identifier
// range [0, n); clients occupy [ClientBase, ∞).
package ids

import "fmt"

// ProcessID identifies a process (replica or client) in the system.
type ProcessID int32

// ClientBase is the first identifier used for clients. All identifiers below
// ClientBase name replicas.
const ClientBase ProcessID = 1 << 20

// IsClient reports whether p names a client process.
func (p ProcessID) IsClient() bool { return p >= ClientBase }

// IsReplica reports whether p names a replica process.
func (p ProcessID) IsReplica() bool { return p >= 0 && p < ClientBase }

// NullOp is the reserved identity under which shard leaders order
// Mencius-style null operations: fillers that advance an idle shard's
// history (so cross-shard merge rounds complete without waiting on it)
// while executing nothing. It is neither a client nor a replica; null
// requests carry no authenticator and receive no reply.
const NullOp ProcessID = -1

// String renders the identifier as "r<i>" for replicas and "c<i>" for clients.
func (p ProcessID) String() string {
	if p == NullOp {
		return "null"
	}
	if p.IsClient() {
		return fmt.Sprintf("c%d", int32(p-ClientBase))
	}
	return fmt.Sprintf("r%d", int32(p))
}

// Replica returns the ProcessID of the i-th replica (0-based).
func Replica(i int) ProcessID { return ProcessID(i) }

// Client returns the ProcessID of the i-th client (0-based).
func Client(i int) ProcessID { return ClientBase + ProcessID(i) }

// Cluster describes a replica group tolerating up to F Byzantine replicas.
type Cluster struct {
	// F is the maximum number of Byzantine replicas tolerated.
	F int
	// N is the total number of replicas. For the protocols in this
	// repository N is 3F+1, except Q/U which uses 5F+1.
	N int
	// Lead rotates the logical chain/leader order: position i in chain order
	// is replica (Lead+i) mod N, so the head (ZLight's primary, Chain's head,
	// PBFT's view-0 primary) is replica Lead instead of replica 0. The sharded
	// ordering plane gives every shard a different Lead so the S leaders
	// spread across the replica group. Zero is the classic order.
	Lead int
}

// WithLead returns the cluster with its chain/leader order rotated so that
// replica (lead mod N) occupies position 0.
func (c Cluster) WithLead(lead int) Cluster {
	c.Lead = ((lead % c.N) + c.N) % c.N
	return c
}

// Pos returns replica r's position in the rotated chain order.
func (c Cluster) Pos(r ProcessID) int { return (int(r) - c.Lead + c.N) % c.N }

// AtPos returns the replica occupying position i of the rotated chain order.
func (c Cluster) AtPos(i int) ProcessID { return Replica((c.Lead + i) % c.N) }

// NewCluster returns the standard 3f+1 cluster configuration.
func NewCluster(f int) Cluster {
	if f < 0 {
		panic("ids: negative f")
	}
	return Cluster{F: f, N: 3*f + 1}
}

// NewQUCluster returns the 5f+1 cluster configuration used by Q/U.
func NewQUCluster(f int) Cluster {
	if f < 0 {
		panic("ids: negative f")
	}
	return Cluster{F: f, N: 5*f + 1}
}

// Replicas returns the ProcessIDs of all replicas in the cluster, in chain
// order (ascending replica index).
func (c Cluster) Replicas() []ProcessID {
	out := make([]ProcessID, c.N)
	for i := range out {
		out[i] = Replica(i)
	}
	return out
}

// Quorum returns the size of a Byzantine quorum (2f+1) for the cluster.
func (c Cluster) Quorum() int { return 2*c.F + 1 }

// WeakQuorum returns f+1, the number of matching replies that guarantees at
// least one correct replica vouches for a value.
func (c Cluster) WeakQuorum() int { return c.F + 1 }

// Primary returns the primary replica for the given view number
// (position view mod N of the rotated order), as used by PBFT-style
// protocols.
func (c Cluster) Primary(view uint64) ProcessID {
	return c.AtPos(int(view % uint64(c.N)))
}

// Head returns the head of the chain order (position 0).
func (c Cluster) Head() ProcessID { return c.AtPos(0) }

// Tail returns the tail of the chain order (position N-1).
func (c Cluster) Tail() ProcessID { return c.AtPos(c.N - 1) }

// ChainSuccessor returns the successor of replica r in chain order, and
// whether r is the tail (in which case the successor is the client).
func (c Cluster) ChainSuccessor(r ProcessID) (ProcessID, bool) {
	i := c.Pos(r)
	if i >= c.N-1 {
		return -1, false
	}
	return c.AtPos(i + 1), true
}

// ChainPredecessor returns the predecessor of replica r in chain order, and
// whether r is the head (in which case the predecessor is the client).
func (c Cluster) ChainPredecessor(r ProcessID) (ProcessID, bool) {
	i := c.Pos(r)
	if i <= 0 {
		return -1, false
	}
	return c.AtPos(i - 1), true
}

// ChainSuccessorSet returns the successor set of process p as defined by the
// Chain protocol (§5.3): for clients it is the first f+1 replicas; for the
// first 2f replicas it is the next f+1 replicas in the chain; for later
// replicas it is all subsequent replicas (the client is handled separately by
// callers, because the client is not a replica identifier).
func (c Cluster) ChainSuccessorSet(p ProcessID) []ProcessID {
	if p.IsClient() {
		out := make([]ProcessID, 0, c.F+1)
		for i := 0; i < c.F+1 && i < c.N; i++ {
			out = append(out, c.AtPos(i))
		}
		return out
	}
	i := c.Pos(p)
	var out []ProcessID
	if i < 2*c.F {
		for j := i + 1; j <= i+c.F+1 && j < c.N; j++ {
			out = append(out, c.AtPos(j))
		}
		return out
	}
	for j := i + 1; j < c.N; j++ {
		out = append(out, c.AtPos(j))
	}
	return out
}

// ChainPredecessorSet returns the set of processes q such that p belongs to
// q's successor set. For the head the client is part of the predecessor set;
// the client is represented by the provided client identifier when non-zero.
func (c Cluster) ChainPredecessorSet(p ProcessID) []ProcessID {
	var out []ProcessID
	for j := 0; j < c.N; j++ {
		q := c.AtPos(j)
		if q == p {
			continue
		}
		for _, s := range c.ChainSuccessorSet(q) {
			if s == p {
				out = append(out, q)
				break
			}
		}
	}
	return out
}

// LastReplicas returns the last f+1 replicas in chain order; these are the
// replicas that execute requests and authenticate replies in Chain.
func (c Cluster) LastReplicas() []ProcessID {
	out := make([]ProcessID, 0, c.F+1)
	for i := 2 * c.F; i < c.N; i++ {
		out = append(out, c.AtPos(i))
	}
	return out
}

// Validate reports an error when the cluster configuration is inconsistent.
func (c Cluster) Validate() error {
	if c.F < 0 {
		return fmt.Errorf("ids: cluster has negative f=%d", c.F)
	}
	if c.N < 3*c.F+1 {
		return fmt.Errorf("ids: cluster too small: n=%d < 3f+1=%d", c.N, 3*c.F+1)
	}
	return nil
}
