package ids

import "testing"

func TestProcessIDKinds(t *testing.T) {
	if !Replica(0).IsReplica() || Replica(3).IsClient() {
		t.Fatalf("replica ids misclassified")
	}
	if !Client(0).IsClient() || Client(5).IsReplica() {
		t.Fatalf("client ids misclassified")
	}
	if Replica(2).String() != "r2" || Client(7).String() != "c7" {
		t.Fatalf("string rendering wrong: %s %s", Replica(2), Client(7))
	}
}

func TestClusterSizes(t *testing.T) {
	for f := 1; f <= 3; f++ {
		c := NewCluster(f)
		if c.N != 3*f+1 || c.Quorum() != 2*f+1 || c.WeakQuorum() != f+1 {
			t.Fatalf("f=%d: cluster sizes wrong: %+v", f, c)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("valid cluster rejected: %v", err)
		}
		if len(c.Replicas()) != c.N {
			t.Fatalf("Replicas() length wrong")
		}
		q := NewQUCluster(f)
		if q.N != 5*f+1 {
			t.Fatalf("Q/U cluster size wrong: %d", q.N)
		}
	}
	if err := (Cluster{F: 1, N: 3}).Validate(); err == nil {
		t.Fatalf("undersized cluster accepted")
	}
}

func TestPrimaryRotation(t *testing.T) {
	c := NewCluster(1)
	seen := map[ProcessID]bool{}
	for v := uint64(0); v < 8; v++ {
		seen[c.Primary(v)] = true
	}
	if len(seen) != c.N {
		t.Fatalf("primary rotation does not cover all replicas: %d", len(seen))
	}
}

func TestChainOrder(t *testing.T) {
	c := NewCluster(1) // replicas r0..r3
	if c.Head() != Replica(0) || c.Tail() != Replica(3) {
		t.Fatalf("head/tail wrong")
	}
	succ, ok := c.ChainSuccessor(Replica(1))
	if !ok || succ != Replica(2) {
		t.Fatalf("successor of r1 wrong")
	}
	if _, ok := c.ChainSuccessor(c.Tail()); ok {
		t.Fatalf("tail should have no replica successor")
	}
	pred, ok := c.ChainPredecessor(Replica(2))
	if !ok || pred != Replica(1) {
		t.Fatalf("predecessor of r2 wrong")
	}
	if _, ok := c.ChainPredecessor(c.Head()); ok {
		t.Fatalf("head should have no replica predecessor")
	}

	// Client successor set: first f+1 replicas.
	cs := c.ChainSuccessorSet(Client(0))
	if len(cs) != 2 || cs[0] != Replica(0) || cs[1] != Replica(1) {
		t.Fatalf("client successor set wrong: %v", cs)
	}
	// First 2f replicas: next f+1 replicas.
	s0 := c.ChainSuccessorSet(Replica(0))
	if len(s0) != 2 || s0[0] != Replica(1) || s0[1] != Replica(2) {
		t.Fatalf("successor set of r0 wrong: %v", s0)
	}
	// Later replicas: all subsequent replicas.
	s2 := c.ChainSuccessorSet(Replica(2))
	if len(s2) != 1 || s2[0] != Replica(3) {
		t.Fatalf("successor set of r2 wrong: %v", s2)
	}
	// Predecessor sets are consistent with successor sets.
	for _, p := range c.Replicas() {
		for _, q := range c.ChainPredecessorSet(p) {
			found := false
			for _, s := range c.ChainSuccessorSet(q) {
				if s == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v is not in the successor set of its predecessor %v", p, q)
			}
		}
	}
	last := c.LastReplicas()
	if len(last) != 2 || last[0] != Replica(2) || last[1] != Replica(3) {
		t.Fatalf("last f+1 replicas wrong: %v", last)
	}
}
