// Package workload implements the paper's workloads: the closed-loop x/y
// microbenchmarks (request payload of x kB, reply payload of y kB) used by
// all throughput and latency experiments, the dynamic (fluctuating) workload
// of Fig. 15, and the fault schedule of Fig. 14.
package workload

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/ids"
	"abstractbft/internal/metrics"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

// Invoker abstracts a closed-loop client of any protocol in the repository:
// composed Abstract protocols (core.Composer), baselines (pbft.Client,
// zyzzyva.Client, qu.Client), and R-Aliph clients all satisfy it through
// small adapters.
type Invoker interface {
	Invoke(ctx context.Context, req msg.Request) ([]byte, error)
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(ctx context.Context, req msg.Request) ([]byte, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(ctx context.Context, req msg.Request) ([]byte, error) { return f(ctx, req) }

// KVPutCommandOf returns a CommandOf generator issuing encoded KV puts over
// a bounded key set (round-robin, offset per client): the keyed workload of
// deployments routed by shard.KVKeyExtractor. Every put is readable back for
// end-to-end verification. cmd/client and the TCP sharding benchmark share
// it, so the CLI workload and the recorded rows cannot drift apart.
func KVPutCommandOf(baseClient, keySpace int) func(client int, ts uint64) []byte {
	if keySpace <= 0 {
		keySpace = 1
	}
	return func(client int, ts uint64) []byte {
		c := baseClient + client
		k := (uint64(c) + ts) % uint64(keySpace)
		return app.EncodeKVPut(fmt.Sprintf("key-%d", k), fmt.Sprintf("c%d-t%d", c, ts))
	}
}

// Benchmark describes an x/y microbenchmark.
type Benchmark struct {
	// Name is the paper's designation, e.g. "0/0", "4/0", "0/4".
	Name string
	// RequestSize is the request payload in bytes.
	RequestSize int
	// ReplySize is the reply payload in bytes (configured on the Null
	// application of the deployment).
	ReplySize int
}

// Standard microbenchmarks of the paper.
var (
	Benchmark00 = Benchmark{Name: "0/0", RequestSize: 0, ReplySize: 0}
	Benchmark40 = Benchmark{Name: "4/0", RequestSize: 4 * 1024, ReplySize: 0}
	Benchmark04 = Benchmark{Name: "0/4", RequestSize: 0, ReplySize: 4 * 1024}
)

// ClosedLoopConfig drives a set of closed-loop clients.
type ClosedLoopConfig struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// RequestsPerClient bounds the number of requests each client issues
	// (0 = until Duration elapses).
	RequestsPerClient int
	// Duration bounds the run when RequestsPerClient is 0.
	Duration time.Duration
	// RequestSize is the request payload size in bytes.
	RequestSize int
	// Think is an optional delay between consecutive requests of a client.
	Think time.Duration
	// Pipeline is the number of invocations each client keeps in flight
	// concurrently (0 or 1 = strict invoke-then-wait). Values above 1
	// require a pipelining-capable invoker (core.PipelinedComposer): the
	// goroutines of one client share its identity and draw timestamps from
	// one counter.
	Pipeline int
	// KeySpace, when positive, makes the generators keyed: every command
	// carries an 8-byte big-endian key prefix (shard.KeyedCommand) drawn
	// from [0, KeySpace), so the sharded plane can partition the requests by
	// key. KeyOf picks the key per request; 0 leaves commands unkeyed.
	KeySpace int
	// KeyOf selects the key of client i's request with timestamp ts; nil
	// selects round-robin over the key space, offset per client.
	KeyOf func(client int, ts uint64) uint64
	// CommandOf, when non-nil, builds the whole command of client i's request
	// with timestamp ts, overriding the RequestSize/KeySpace generation —
	// application-format workloads (e.g. encoded KV operations routed by
	// shard.KVKeyExtractor) plug in here.
	CommandOf func(client int, ts uint64) []byte
}

// Result aggregates the outcome of a closed-loop run.
type Result struct {
	// Committed is the number of requests that committed.
	Committed uint64
	// Errors is the number of invocation errors (timeouts/cancellations).
	Errors uint64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Latency collects per-request latencies.
	Latency *metrics.LatencyRecorder
	// Throughput is the committed-requests time series.
	Throughput *metrics.Throughput
}

// ThroughputOps returns the average committed operations per second.
func (r Result) ThroughputOps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// RunClosedLoop runs the closed-loop clients returned by newInvoker (one per
// client index) until each issues its request budget or the duration
// elapses.
func RunClosedLoop(ctx context.Context, cfg ClosedLoopConfig, newInvoker func(i int) (Invoker, ids.ProcessID, error)) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.RequestsPerClient <= 0 && cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	res := Result{
		Latency:    metrics.NewLatencyRecorder(),
		Throughput: metrics.NewThroughput(100 * time.Millisecond),
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	pipeline := cfg.Pipeline
	if pipeline <= 0 {
		pipeline = 1
	}
	keyOf := cfg.KeyOf
	if keyOf == nil && cfg.KeySpace > 0 {
		keyOf = func(client int, ts uint64) uint64 {
			return (uint64(client) + ts) % uint64(cfg.KeySpace)
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	start := time.Now()
	errs := make([]error, 0)
	for i := 0; i < cfg.Clients; i++ {
		inv, clientID, err := newInvoker(i)
		if err != nil {
			return res, fmt.Errorf("workload: building client %d: %w", i, err)
		}
		// All pipeline streams of one client share its identity and draw
		// timestamps from one counter, keeping them unique and increasing.
		var nextTS atomic.Uint64
		for s := 0; s < pipeline; s++ {
			wg.Add(1)
			clientIndex := i
			go func(inv Invoker, clientID ids.ProcessID) {
				defer wg.Done()
				payload := make([]byte, cfg.RequestSize)
				for {
					ts := nextTS.Add(1)
					if cfg.RequestsPerClient > 0 && ts > uint64(cfg.RequestsPerClient) {
						return
					}
					if runCtx.Err() != nil {
						return
					}
					command := payload
					if cfg.CommandOf != nil {
						command = cfg.CommandOf(clientIndex, ts)
					} else if keyOf != nil {
						command = shard.KeyedCommand(keyOf(clientIndex, ts), payload)
					}
					req := msg.Request{Client: clientID, Timestamp: ts, Command: command}
					t0 := time.Now()
					_, err := inv.Invoke(runCtx, req)
					if err != nil {
						// End-of-window cancellations are how duration-bounded
						// runs stop; only genuine failures count as errors.
						if runCtx.Err() == nil {
							mu.Lock()
							res.Errors++
							errs = append(errs, err)
							mu.Unlock()
						}
						return
					}
					res.Latency.Record(time.Since(t0))
					res.Throughput.Record()
					mu.Lock()
					res.Committed++
					mu.Unlock()
					if cfg.Think > 0 {
						time.Sleep(cfg.Think)
					}
				}
			}(inv, clientID)
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if len(errs) > 0 {
		return res, errs[0]
	}
	return res, nil
}

// Phase is one step of a dynamic workload: a number of concurrent clients
// issuing requests of a given size for a duration.
type Phase struct {
	Name        string
	Clients     int
	RequestSize int
	Duration    time.Duration
}

// DynamicWorkload is the fluctuating-contention workload of Fig. 15: a ramp
// from 1 to 10 clients, a spike of 30 clients, and a ramp back down to 1.
func DynamicWorkload(scale time.Duration) []Phase {
	if scale <= 0 {
		scale = 500 * time.Millisecond
	}
	phases := []Phase{}
	for _, n := range []int{1, 2, 5, 10} {
		phases = append(phases, Phase{Name: fmt.Sprintf("ramp-up-%d", n), Clients: n, RequestSize: 512, Duration: scale})
	}
	phases = append(phases, Phase{Name: "spike-30", Clients: 30, RequestSize: 1024, Duration: 2 * scale})
	for _, n := range []int{10, 5, 2, 1} {
		phases = append(phases, Phase{Name: fmt.Sprintf("ramp-down-%d", n), Clients: n, RequestSize: 512, Duration: scale})
	}
	return phases
}

// RunPhases runs a sequence of phases against a single protocol deployment,
// reusing client identities across phases (timestamps keep increasing).
func RunPhases(ctx context.Context, phases []Phase, newInvoker func(i int) (Invoker, ids.ProcessID, error)) ([]Result, error) {
	type clientState struct {
		inv    Invoker
		id     ids.ProcessID
		nextTS uint64
	}
	clients := make(map[int]*clientState)
	getClient := func(i int) (*clientState, error) {
		if c, ok := clients[i]; ok {
			return c, nil
		}
		inv, id, err := newInvoker(i)
		if err != nil {
			return nil, err
		}
		c := &clientState{inv: inv, id: id, nextTS: 1}
		clients[i] = c
		return c, nil
	}

	var results []Result
	for _, phase := range phases {
		res := Result{
			Latency:    metrics.NewLatencyRecorder(),
			Throughput: metrics.NewThroughput(100 * time.Millisecond),
		}
		phaseCtx, cancel := context.WithTimeout(ctx, phase.Duration)
		var wg sync.WaitGroup
		var mu sync.Mutex
		start := time.Now()
		for i := 0; i < phase.Clients; i++ {
			c, err := getClient(i)
			if err != nil {
				cancel()
				return results, err
			}
			wg.Add(1)
			go func(c *clientState) {
				defer wg.Done()
				payload := make([]byte, phase.RequestSize)
				for phaseCtx.Err() == nil {
					mu.Lock()
					ts := c.nextTS
					c.nextTS++
					mu.Unlock()
					req := msg.Request{Client: c.id, Timestamp: ts, Command: payload}
					t0 := time.Now()
					if _, err := c.inv.Invoke(phaseCtx, req); err != nil {
						return
					}
					res.Latency.Record(time.Since(t0))
					res.Throughput.Record()
					mu.Lock()
					res.Committed++
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		cancel()
		res.Elapsed = time.Since(start)
		results = append(results, res)
		if ctx.Err() != nil {
			return results, ctx.Err()
		}
	}
	return results, nil
}
