package workload

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// fakeService is a trivially linearizable in-memory service used to exercise
// the workload drivers without a cluster.
type fakeService struct {
	mu        sync.Mutex
	committed map[msg.RequestID]bool
	delay     time.Duration
}

func (s *fakeService) invoker(i int) (Invoker, ids.ProcessID, error) {
	id := ids.Client(i)
	return InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
		if s.delay > 0 {
			select {
			case <-time.After(s.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.committed == nil {
			s.committed = make(map[msg.RequestID]bool)
		}
		if s.committed[req.ID()] {
			return nil, fmt.Errorf("duplicate request %v", req.ID())
		}
		s.committed[req.ID()] = true
		return []byte("ok"), nil
	}), id, nil
}

func TestRunClosedLoopFixedRequests(t *testing.T) {
	svc := &fakeService{}
	res, err := RunClosedLoop(context.Background(), ClosedLoopConfig{Clients: 3, RequestsPerClient: 10}, svc.invoker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 30 {
		t.Fatalf("committed %d, want 30", res.Committed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors %d", res.Errors)
	}
	if res.Latency.Count() != 30 {
		t.Fatalf("latency samples %d", res.Latency.Count())
	}
	if res.ThroughputOps() <= 0 {
		t.Fatalf("throughput not positive")
	}
}

func TestRunClosedLoopDuration(t *testing.T) {
	svc := &fakeService{delay: time.Millisecond}
	res, err := RunClosedLoop(context.Background(), ClosedLoopConfig{Clients: 2, Duration: 150 * time.Millisecond}, svc.invoker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatalf("no requests committed within the duration")
	}
}

func TestStandardBenchmarks(t *testing.T) {
	if Benchmark40.RequestSize != 4096 || Benchmark40.ReplySize != 0 {
		t.Fatalf("4/0 benchmark misdefined: %+v", Benchmark40)
	}
	if Benchmark04.RequestSize != 0 || Benchmark04.ReplySize != 4096 {
		t.Fatalf("0/4 benchmark misdefined: %+v", Benchmark04)
	}
	if Benchmark00.RequestSize != 0 || Benchmark00.ReplySize != 0 {
		t.Fatalf("0/0 benchmark misdefined: %+v", Benchmark00)
	}
}

func TestDynamicWorkloadShape(t *testing.T) {
	phases := DynamicWorkload(100 * time.Millisecond)
	if len(phases) != 9 {
		t.Fatalf("expected 9 phases, got %d", len(phases))
	}
	peak := 0
	for _, p := range phases {
		if p.Clients > peak {
			peak = p.Clients
		}
	}
	if peak != 30 {
		t.Fatalf("spike should reach 30 clients, got %d", peak)
	}
	if phases[0].Clients != 1 || phases[len(phases)-1].Clients != 1 {
		t.Fatalf("workload should ramp from and back to a single client")
	}
}

func TestRunPhasesKeepsTimestampsUnique(t *testing.T) {
	svc := &fakeService{}
	phases := []Phase{
		{Name: "a", Clients: 2, RequestSize: 8, Duration: 80 * time.Millisecond},
		{Name: "b", Clients: 3, RequestSize: 8, Duration: 80 * time.Millisecond},
	}
	results, err := RunPhases(context.Background(), phases, svc.invoker)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 phase results, got %d", len(results))
	}
	total := results[0].Committed + results[1].Committed
	if total == 0 {
		t.Fatalf("no requests committed across phases")
	}
	// The fake service rejects duplicate request IDs, so reaching here means
	// client timestamps stayed unique across phases.
}
