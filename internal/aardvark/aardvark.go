// Package aardvark implements the Aardvark robust BFT baseline (Clement et
// al.) used in §6: PBFT hardened against Byzantine clients and replicas by
// (1) validating and blacklisting misbehaving clients, (2) isolating and
// policing per-client traffic so floods cannot starve replica-to-replica
// communication, and (3) monitoring the primary's ordering throughput against
// an adaptive expectation and changing views when the primary underperforms.
//
// The package provides both a standalone replica/client pair (the Table IV
// baseline) and an ordering-engine factory that R-Aliph plugs into Backup
// (Principle P1 of §6.3). The physical NIC-per-replica isolation of the
// original system is modelled by per-client rate policing, which preserves
// the property the paper relies on: a flooding client or replica cannot
// prevent correct replicas from making progress.
package aardvark

import (
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/backup"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/pbft"
	"abstractbft/internal/transport"
)

// MonitorConfig tunes the primary throughput monitoring.
type MonitorConfig struct {
	// Window is the observation window over which throughput is computed.
	Window time.Duration
	// ExpectationFactor is the fraction of the best observed throughput the
	// current primary must sustain (0.9 in the paper).
	ExpectationFactor float64
	// RaiseFactor periodically raises the expectation (0.01 in the paper).
	RaiseFactor float64
	// GraceWindows is the number of windows after a view change during which
	// the new primary is not judged.
	GraceWindows int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.ExpectationFactor <= 0 {
		c.ExpectationFactor = 0.9
	}
	if c.RaiseFactor < 0 {
		c.RaiseFactor = 0.01
	}
	if c.GraceWindows <= 0 {
		c.GraceWindows = 2
	}
	return c
}

// Monitor tracks the primary's ordering throughput and decides when to change
// views; it also exposes the throughput expectation R-Aliph reuses when it
// runs Quorum or Chain (Principle P2 of §6.3).
type Monitor struct {
	cfg MonitorConfig

	windowStart time.Time
	windowCount uint64
	bestRate    float64
	expectation float64
	grace       int
	lastView    uint64
	now         func() time.Time
}

// NewMonitor creates a throughput monitor.
func NewMonitor(cfg MonitorConfig) *Monitor {
	c := cfg.withDefaults()
	return &Monitor{cfg: c, now: time.Now, grace: c.GraceWindows}
}

// RecordDelivery registers n delivered requests.
func (m *Monitor) RecordDelivery(n int) { m.windowCount += uint64(n) }

// Expectation returns the current throughput expectation in requests/second.
func (m *Monitor) Expectation() float64 { return m.expectation }

// Observe closes the current window if it elapsed and reports whether the
// primary should be replaced: the window's rate was below the expectation
// while requests were pending.
func (m *Monitor) Observe(e *pbft.Engine) bool {
	now := m.now()
	if m.windowStart.IsZero() {
		m.windowStart = now
		return false
	}
	if e.View() != m.lastView {
		m.lastView = e.View()
		m.grace = m.cfg.GraceWindows
		m.windowStart = now
		m.windowCount = 0
		return false
	}
	if now.Sub(m.windowStart) < m.cfg.Window {
		return false
	}
	rate := float64(m.windowCount) / now.Sub(m.windowStart).Seconds()
	m.windowStart = now
	m.windowCount = 0
	if rate > m.bestRate {
		m.bestRate = rate
	}
	m.expectation = m.cfg.ExpectationFactor * m.bestRate
	// Periodically raise the expectation so a slowly degrading primary is
	// eventually replaced.
	m.bestRate *= 1 + m.cfg.RaiseFactor
	if m.grace > 0 {
		m.grace--
		return false
	}
	if rate < m.expectation && e.PendingKnown() > 0 {
		return true
	}
	return false
}

// ClientPolicer implements Aardvark's client-facing defenses: it blacklists
// clients that send malformed (unauthenticable) requests and rate-limits
// flooding clients.
type ClientPolicer struct {
	// MaxInvalid is the number of malformed requests after which a client is
	// blacklisted.
	MaxInvalid int
	// MaxPerWindow caps the requests accepted per client per window.
	MaxPerWindow int
	// Window is the policing window.
	Window time.Duration

	invalid  map[ids.ProcessID]int
	count    map[ids.ProcessID]int
	windowAt time.Time
	now      func() time.Time
}

// NewClientPolicer creates a policer with sensible defaults.
func NewClientPolicer() *ClientPolicer {
	return &ClientPolicer{
		MaxInvalid:   3,
		MaxPerWindow: 2000,
		Window:       100 * time.Millisecond,
		invalid:      make(map[ids.ProcessID]int),
		count:        make(map[ids.ProcessID]int),
		now:          time.Now,
	}
}

// Admit reports whether a request from the client should be processed.
func (p *ClientPolicer) Admit(client ids.ProcessID) bool {
	now := p.now()
	if p.windowAt.IsZero() || now.Sub(p.windowAt) > p.Window {
		p.windowAt = now
		p.count = make(map[ids.ProcessID]int)
	}
	if p.invalid[client] >= p.MaxInvalid {
		return false
	}
	p.count[client]++
	return p.count[client] <= p.MaxPerWindow
}

// RecordInvalid notes that the client sent a malformed request.
func (p *ClientPolicer) RecordInvalid(client ids.ProcessID) { p.invalid[client]++ }

// ReplicaConfig configures a standalone Aardvark replica.
type ReplicaConfig struct {
	Cluster           ids.Cluster
	Replica           ids.ProcessID
	Keys              *authn.KeyStore
	App               app.Application
	Endpoint          transport.Endpoint
	BatchSize         int
	ViewChangeTimeout time.Duration
	Monitor           MonitorConfig
	Ops               *authn.OpCounter
}

// NewReplica builds a standalone Aardvark replica: a PBFT replica with the
// robust policies installed.
func NewReplica(cfg ReplicaConfig) *pbft.Replica {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.ViewChangeTimeout <= 0 {
		cfg.ViewChangeTimeout = 500 * time.Millisecond
	}
	monitor := NewMonitor(cfg.Monitor)
	policer := NewClientPolicer()
	keys := cfg.Keys
	self := cfg.Replica
	ops := cfg.Ops
	pcfg := pbft.ReplicaConfig{
		Cluster:           cfg.Cluster,
		Replica:           cfg.Replica,
		Keys:              cfg.Keys,
		App:               cfg.App,
		Endpoint:          cfg.Endpoint,
		BatchSize:         cfg.BatchSize,
		ViewChangeTimeout: cfg.ViewChangeTimeout,
		Ops:               cfg.Ops,
		RequestFilter: func(from ids.ProcessID, req *pbft.Request) bool {
			if !policer.Admit(req.Req.Client) {
				return false
			}
			// Aardvark verifies the client's credentials before the request
			// enters the ordering path and blacklists clients whose
			// authentication fails.
			ops.CountMACVerify(self, 1)
			if err := keys.Verify(req.Auth, self, requestAuthBytes(req.Req)); err != nil {
				policer.RecordInvalid(req.Req.Client)
				return false
			}
			return true
		},
		AfterDeliver: func(e *pbft.Engine, batch []msg.Request) {
			monitor.RecordDelivery(len(batch))
		},
		OnTick: func(e *pbft.Engine) {
			if monitor.Observe(e) {
				e.StartViewChange(e.View() + 1)
			}
		},
	}
	return pbft.NewReplica(pcfg)
}

// requestAuthBytes mirrors the standalone PBFT client authentication data.
func requestAuthBytes(req msg.Request) []byte {
	d := req.Digest()
	return d[:]
}

// NewClient creates a client for the standalone Aardvark deployment (the
// request/reply protocol is PBFT's).
func NewClient(cfg pbft.ClientConfig) *pbft.Client { return pbft.NewClient(cfg) }

// orderer adapts a monitored PBFT engine to backup.Orderer for R-Aliph.
type orderer struct {
	engine  *pbft.Engine
	monitor *Monitor
}

// SubmitRequest implements backup.Orderer.
func (o *orderer) SubmitRequest(req msg.Request) { o.engine.SubmitRequest(req) }

// HandleMessage implements backup.Orderer.
func (o *orderer) HandleMessage(from ids.ProcessID, m any) { o.engine.HandleMessage(from, m) }

// Tick implements backup.Orderer: it drives PBFT's view-change timers and the
// Aardvark throughput monitoring.
func (o *orderer) Tick() {
	o.engine.Tick()
	if o.monitor.Observe(o.engine) {
		o.engine.StartViewChange(o.engine.View() + 1)
	}
}

// Expectation exposes the monitor's throughput expectation.
func (o *orderer) Expectation() float64 { return o.monitor.Expectation() }

// ExpectationSource is implemented by orderers that expose a throughput
// expectation (R-Aliph reads it to set the expectations of Quorum and Chain).
type ExpectationSource interface {
	Expectation() float64
}

// Orderer returns a backup.OrdererFactory that builds Aardvark-monitored PBFT
// engines; R-Aliph uses it as Backup's ordering protocol (Principle P1).
func Orderer(batchSize int, viewChangeTimeout time.Duration, mcfg MonitorConfig, register func(inst core.InstanceID, src ExpectationSource)) backup.OrdererFactory {
	if batchSize <= 0 {
		batchSize = 8
	}
	if viewChangeTimeout <= 0 {
		viewChangeTimeout = 500 * time.Millisecond
	}
	return func(h *host.Host, inst core.InstanceID, send func(to ids.ProcessID, m any), deliver func([]msg.Request)) backup.Orderer {
		monitor := NewMonitor(mcfg)
		var o *orderer
		engine := pbft.NewEngine(pbft.EngineConfig{
			Cluster:           h.Cluster(),
			Replica:           h.ID(),
			Keys:              h.Keys(),
			Send:              send,
			Deliver:           func(batch []msg.Request) { monitor.RecordDelivery(len(batch)); deliver(batch) },
			BatchSize:         batchSize,
			ViewChangeTimeout: viewChangeTimeout,
			Ops:               h.Ops(),
		})
		o = &orderer{engine: engine, monitor: monitor}
		if register != nil {
			register(inst, o)
		}
		return o
	}
}
