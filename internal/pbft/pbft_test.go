package pbft

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

type pbftCluster struct {
	cluster  ids.Cluster
	keys     *authn.KeyStore
	net      *transport.Local
	replicas []*Replica
}

func newPBFTCluster(t *testing.T, f int, vcTimeout time.Duration) *pbftCluster {
	t.Helper()
	c := &pbftCluster{
		cluster: ids.NewCluster(f),
		keys:    authn.NewKeyStore("pbft-test"),
		net:     transport.NewLocal(transport.Options{}),
	}
	for i := 0; i < c.cluster.N; i++ {
		r := NewReplica(ReplicaConfig{
			Cluster:           c.cluster,
			Replica:           ids.Replica(i),
			Keys:              c.keys,
			App:               app.NewCounter(),
			Endpoint:          c.net.Endpoint(ids.Replica(i)),
			BatchSize:         4,
			ViewChangeTimeout: vcTimeout,
		})
		r.Start()
		c.replicas = append(c.replicas, r)
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			r.Stop()
		}
		c.net.Close()
	})
	return c
}

func (c *pbftCluster) client(i int) *Client {
	id := ids.Client(i)
	return NewClient(ClientConfig{
		Cluster:  c.cluster,
		Keys:     c.keys,
		ID:       id,
		Endpoint: c.net.Endpoint(id),
		Timeout:  150 * time.Millisecond,
	})
}

func TestPBFTOrdersRequests(t *testing.T) {
	c := newPBFTCluster(t, 1, 0)
	client := c.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for ts := uint64(1); ts <= 20; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("x")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
	}
	// Every replica executes the same number of requests eventually.
	deadline := time.Now().Add(3 * time.Second)
	for _, r := range c.replicas {
		for r.Executed() < 20 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if r.Executed() != 20 {
			t.Errorf("replica executed %d requests, want 20", r.Executed())
		}
	}
}

func TestPBFTToleratesCrashedBackup(t *testing.T) {
	c := newPBFTCluster(t, 1, 300*time.Millisecond)
	c.replicas[2].SetCrashed(true)
	client := c.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for ts := uint64(1); ts <= 10; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("y")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d with a crashed backup: %v", ts, err)
		}
	}
}

func TestPBFTViewChangeOnCrashedPrimary(t *testing.T) {
	c := newPBFTCluster(t, 1, 200*time.Millisecond)
	// Crash the view-0 primary (replica 0); backups must change views and
	// keep ordering.
	c.replicas[0].SetCrashed(true)
	client := c.client(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for ts := uint64(1); ts <= 5; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("z")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d with a crashed primary: %v", ts, err)
		}
	}
	changed := false
	for i := 1; i < c.cluster.N; i++ {
		if c.replicas[i].ViewChanges() > 0 {
			changed = true
		}
	}
	if !changed {
		t.Errorf("no replica completed a view change despite a crashed primary")
	}
}

func TestBatchDigestDeterministic(t *testing.T) {
	batch := []msg.Request{
		{Client: ids.Client(0), Timestamp: 1, Command: []byte("a")},
		{Client: ids.Client(1), Timestamp: 1, Command: []byte("b")},
	}
	if BatchDigest(batch) != BatchDigest(batch) {
		t.Fatalf("batch digest not deterministic")
	}
	other := []msg.Request{batch[1], batch[0]}
	if BatchDigest(batch) == BatchDigest(other) {
		t.Fatalf("batch digest ignores order")
	}
}

func TestEngineDeliversInOrder(t *testing.T) {
	// Four engines wired directly to each other (no network) must deliver
	// identical sequences.
	cluster := ids.NewCluster(1)
	keys := authn.NewKeyStore("engine-test")
	engines := make([]*Engine, cluster.N)
	delivered := make([][]string, cluster.N)
	var deliverTo func(i int) func([]msg.Request)
	deliverTo = func(i int) func([]msg.Request) {
		return func(batch []msg.Request) {
			for _, r := range batch {
				delivered[i] = append(delivered[i], fmt.Sprintf("%v", r.ID()))
			}
		}
	}
	// Queue of in-flight messages to simulate synchronous delivery.
	type envelope struct {
		from, to ids.ProcessID
		m        any
	}
	var queue []envelope
	for i := 0; i < cluster.N; i++ {
		i := i
		engines[i] = NewEngine(EngineConfig{
			Cluster: cluster,
			Replica: ids.Replica(i),
			Keys:    keys,
			Send: func(to ids.ProcessID, m any) {
				queue = append(queue, envelope{from: ids.Replica(i), to: to, m: m})
			},
			Deliver:   deliverTo(i),
			BatchSize: 2,
		})
	}
	for ts := uint64(1); ts <= 6; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("c")}
		for _, e := range engines {
			e.SubmitRequest(req)
		}
		// Drain the message queue to quiescence.
		for len(queue) > 0 {
			env := queue[0]
			queue = queue[1:]
			engines[int(env.to)].HandleMessage(env.from, env.m)
		}
	}
	for i := 1; i < cluster.N; i++ {
		if len(delivered[i]) != len(delivered[0]) {
			t.Fatalf("replica %d delivered %d requests, replica 0 delivered %d", i, len(delivered[i]), len(delivered[0]))
		}
		for j := range delivered[i] {
			if delivered[i][j] != delivered[0][j] {
				t.Fatalf("replica %d delivered %q at position %d, replica 0 delivered %q", i, delivered[i][j], j, delivered[0][j])
			}
		}
	}
	if len(delivered[0]) != 6 {
		t.Fatalf("delivered %d requests, want 6", len(delivered[0]))
	}
}
