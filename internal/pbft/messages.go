// Package pbft implements the PBFT (Castro & Liskov) three-phase ordering
// protocol used throughout the repository: as the standalone baseline the
// paper compares against, as the total-order substrate wrapped by Backup
// (§4.3), and — with different primary-rotation policies — as the core of the
// robust baselines Aardvark and Spinning.
//
// The Engine type implements the replica-side protocol state machine
// (pre-prepare/prepare/commit, batching, a simplified view change) and is
// driven by its embedder: the embedder feeds it client requests and protocol
// messages and provides the send and deliver callbacks. The package also
// provides a standalone replica/client pair used by the baseline benchmarks.
//
// Simplification relative to the original protocol (documented in DESIGN.md):
// the view-change message carries each replica's prepared entries and the new
// primary re-proposes the highest prepared batch per sequence number; the
// stable-checkpoint/watermark machinery is omitted because compositions bound
// instance lifetimes through switching.
package pbft

import (
	"encoding/binary"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// Request is the client request message of the standalone PBFT deployment.
type Request struct {
	Req  msg.Request
	Auth authn.Authenticator
}

// PrePrepare is the primary's ordering proposal for one batch.
type PrePrepare struct {
	View  uint64
	Seq   uint64
	Batch []msg.Request
	// Digest is the digest of the batch.
	Digest authn.Digest
	// MAC authenticates the message from the primary to the destination.
	MAC authn.MAC
}

// Prepare is a backup's agreement to the primary's proposal.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  authn.Digest
	Replica ids.ProcessID
	MAC     authn.MAC
}

// Commit is the final-phase vote.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  authn.Digest
	Replica ids.ProcessID
	MAC     authn.MAC
}

// Reply is the standalone deployment's reply to the client.
type Reply struct {
	View      uint64
	Replica   ids.ProcessID
	Client    ids.ProcessID
	Timestamp uint64
	Result    []byte
	MAC       authn.MAC
}

// PreparedEntry summarizes one prepared-but-possibly-undelivered batch inside
// a view-change message.
type PreparedEntry struct {
	Seq    uint64
	Digest authn.Digest
	Batch  []msg.Request
}

// ViewChange announces that a replica wants to move to a new view. It is
// signed so the new primary can prove the view change to the other replicas.
type ViewChange struct {
	NewView       uint64
	Replica       ids.ProcessID
	LastDelivered uint64
	Prepared      []PreparedEntry
	Sig           authn.Signature
}

// SignedBytes returns the bytes covered by the view-change signature.
func (vc *ViewChange) SignedBytes() []byte {
	buf := make([]byte, 20, 20+len(vc.Prepared)*(8+authn.DigestSize))
	binary.BigEndian.PutUint64(buf[0:8], vc.NewView)
	binary.BigEndian.PutUint32(buf[8:12], uint32(vc.Replica))
	binary.BigEndian.PutUint64(buf[12:20], vc.LastDelivered)
	for _, p := range vc.Prepared {
		var seq [8]byte
		binary.BigEndian.PutUint64(seq[:], p.Seq)
		buf = append(buf, seq[:]...)
		buf = append(buf, p.Digest[:]...)
	}
	return buf
}

// NewView is the new primary's proof that 2f+1 replicas agreed to change
// views, together with the re-proposals for prepared batches.
type NewView struct {
	View        uint64
	ViewChanges []ViewChange
	// Proposals are the pre-prepares re-issued in the new view.
	Proposals []PrePrepare
}

// BatchDigest computes the digest identifying an ordered batch.
func BatchDigest(batch []msg.Request) authn.Digest {
	parts := make([][]byte, len(batch))
	for i, r := range batch {
		d := r.Digest()
		parts[i] = append([]byte(nil), d[:]...)
	}
	return authn.HashAll(parts...)
}

// phaseBytes returns the bytes MAC'd for pre-prepare/prepare/commit messages.
func phaseBytes(tag byte, view, seq uint64, digest authn.Digest) []byte {
	buf := make([]byte, 17+authn.DigestSize)
	buf[0] = tag
	binary.BigEndian.PutUint64(buf[1:9], view)
	binary.BigEndian.PutUint64(buf[9:17], seq)
	copy(buf[17:], digest[:])
	return buf
}

func init() {
	transport.RegisterWireType(&Request{})
	transport.RegisterWireType(&PrePrepare{})
	transport.RegisterWireType(&Prepare{})
	transport.RegisterWireType(&Commit{})
	transport.RegisterWireType(&Reply{})
	transport.RegisterWireType(&ViewChange{})
	transport.RegisterWireType(&NewView{})
}
