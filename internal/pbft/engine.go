package pbft

import (
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// EngineConfig configures a PBFT ordering engine.
type EngineConfig struct {
	// Cluster describes the replica group.
	Cluster ids.Cluster
	// Replica is the identity of the replica running this engine.
	Replica ids.ProcessID
	// Keys is the cryptographic key store.
	Keys *authn.KeyStore
	// Send transmits a protocol message to another replica.
	Send func(to ids.ProcessID, m any)
	// Deliver is called, in total order, for every ordered batch.
	Deliver func(batch []msg.Request)
	// BatchSize is the maximum number of requests per pre-prepare; 0 means 1.
	BatchSize int
	// ViewChangeTimeout is how long a replica waits for a known request to be
	// delivered before initiating a view change; 0 disables view changes.
	ViewChangeTimeout time.Duration
	// Ops optionally counts cryptographic operations.
	Ops *authn.OpCounter
	// Now returns the current time; nil selects time.Now (tests may inject a
	// fake clock).
	Now func() time.Time
}

// knownRequest tracks a client request a replica has learned about but that
// has not yet been ordered; the timestamp drives view-change timeouts and the
// body allows a new primary to re-propose it.
type knownRequest struct {
	req  msg.Request
	seen time.Time
}

type entry struct {
	view       uint64
	digest     authn.Digest
	batch      []msg.Request
	prePrep    bool
	prepares   map[ids.ProcessID]bool
	commits    map[ids.ProcessID]bool
	committed  bool
	delivered  bool
	commitSent bool
}

// Engine is the replica-side PBFT protocol state machine. It is not
// goroutine-safe: the embedder serializes calls (replica hosts already run a
// single event loop).
type Engine struct {
	cfg EngineConfig

	view          uint64
	nextSeq       uint64
	lastDelivered uint64
	entries       map[uint64]*entry
	pendingReqs   []msg.Request
	knownReqs     map[msg.RequestID]*knownRequest
	orderedReqs   map[msg.RequestID]bool

	// view change state
	viewChanging bool
	targetView   uint64
	viewChanges  map[uint64]map[ids.ProcessID]*ViewChange
	// viewChangeCount counts completed view changes (observability, used by
	// Aardvark/Spinning wrappers and tests).
	viewChangeCount uint64
}

// NewEngine creates a PBFT engine.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{
		cfg:         cfg,
		entries:     make(map[uint64]*entry),
		knownReqs:   make(map[msg.RequestID]*knownRequest),
		orderedReqs: make(map[msg.RequestID]bool),
		viewChanges: make(map[uint64]map[ids.ProcessID]*ViewChange),
	}
}

// View returns the current view number.
func (e *Engine) View() uint64 { return e.view }

// ViewChanges returns the number of completed view changes.
func (e *Engine) ViewChanges() uint64 { return e.viewChangeCount }

// LastDelivered returns the sequence number of the last delivered batch.
func (e *Engine) LastDelivered() uint64 { return e.lastDelivered }

// PendingKnown returns the number of client requests this replica knows about
// that have not yet been ordered; the robust primary-rotation policies use it
// to distinguish "no demand" from "primary not ordering".
func (e *Engine) PendingKnown() int { return len(e.knownReqs) }

// Primary returns the primary of the current view.
func (e *Engine) Primary() ids.ProcessID { return e.cfg.Cluster.Primary(e.view) }

// IsPrimary reports whether this replica is the current primary.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.cfg.Replica }

func (e *Engine) others() []ids.ProcessID {
	var out []ids.ProcessID
	for _, r := range e.cfg.Cluster.Replicas() {
		if r != e.cfg.Replica {
			out = append(out, r)
		}
	}
	return out
}

// SubmitRequest hands a client request to the engine. The primary batches and
// proposes it; backups remember it so they can trigger a view change if the
// primary never orders it.
func (e *Engine) SubmitRequest(req msg.Request) {
	id := req.ID()
	if e.orderedReqs[id] {
		return
	}
	if _, known := e.knownReqs[id]; !known {
		e.knownReqs[id] = &knownRequest{req: req, seen: e.cfg.Now()}
	}
	if e.IsPrimary() && !e.viewChanging {
		e.pendingReqs = append(e.pendingReqs, req)
		e.proposePending()
	}
}

// proposePending issues pre-prepares for pending requests in batches.
func (e *Engine) proposePending() {
	for len(e.pendingReqs) > 0 {
		n := len(e.pendingReqs)
		if n > e.cfg.BatchSize {
			n = e.cfg.BatchSize
		}
		batch := make([]msg.Request, n)
		copy(batch, e.pendingReqs[:n])
		e.pendingReqs = append([]msg.Request(nil), e.pendingReqs[n:]...)

		seq := e.nextSeq + 1
		e.nextSeq = seq
		digest := BatchDigest(batch)
		ent := e.getEntry(seq)
		ent.view = e.view
		ent.digest = digest
		ent.batch = batch
		ent.prePrep = true
		ent.prepares[e.cfg.Replica] = true
		for _, to := range e.others() {
			mac := e.cfg.Keys.MAC(e.cfg.Replica, to, phaseBytes('P', e.view, seq, digest))
			e.cfg.Ops.CountMACGen(e.cfg.Replica, 1)
			e.cfg.Send(to, &PrePrepare{View: e.view, Seq: seq, Batch: batch, Digest: digest, MAC: mac})
		}
		e.maybeCommitPhase(seq)
	}
}

func (e *Engine) getEntry(seq uint64) *entry {
	ent, ok := e.entries[seq]
	if !ok {
		ent = &entry{prepares: make(map[ids.ProcessID]bool), commits: make(map[ids.ProcessID]bool)}
		e.entries[seq] = ent
	}
	return ent
}

// HandleMessage processes one PBFT protocol message from another replica.
func (e *Engine) HandleMessage(from ids.ProcessID, m any) {
	switch t := m.(type) {
	case *PrePrepare:
		e.onPrePrepare(from, t)
	case *Prepare:
		e.onPrepare(from, t)
	case *Commit:
		e.onCommit(from, t)
	case *ViewChange:
		e.onViewChange(from, t)
	case *NewView:
		e.onNewView(from, t)
	}
}

func (e *Engine) onPrePrepare(from ids.ProcessID, m *PrePrepare) {
	if m.View != e.view || from != e.Primary() || e.viewChanging {
		return
	}
	e.cfg.Ops.CountMACVerify(e.cfg.Replica, 1)
	if err := e.cfg.Keys.VerifyMAC(from, e.cfg.Replica, phaseBytes('P', m.View, m.Seq, m.Digest), m.MAC); err != nil {
		return
	}
	if BatchDigest(m.Batch) != m.Digest {
		return
	}
	ent := e.getEntry(m.Seq)
	if ent.prePrep && ent.digest != m.Digest {
		// Conflicting proposal from the primary: ignore; the timeout will
		// trigger a view change.
		return
	}
	ent.view = m.View
	ent.digest = m.Digest
	ent.batch = m.Batch
	ent.prePrep = true
	for _, r := range m.Batch {
		if _, known := e.knownReqs[r.ID()]; !known {
			e.knownReqs[r.ID()] = &knownRequest{req: r, seen: e.cfg.Now()}
		}
	}
	// The pre-prepare counts as the primary's prepare vote.
	ent.prepares[from] = true
	ent.prepares[e.cfg.Replica] = true
	for _, to := range e.others() {
		mac := e.cfg.Keys.MAC(e.cfg.Replica, to, phaseBytes('p', m.View, m.Seq, m.Digest))
		e.cfg.Ops.CountMACGen(e.cfg.Replica, 1)
		e.cfg.Send(to, &Prepare{View: m.View, Seq: m.Seq, Digest: m.Digest, Replica: e.cfg.Replica, MAC: mac})
	}
	e.maybeCommitPhase(m.Seq)
}

func (e *Engine) onPrepare(from ids.ProcessID, m *Prepare) {
	if m.View != e.view || e.viewChanging {
		return
	}
	e.cfg.Ops.CountMACVerify(e.cfg.Replica, 1)
	if err := e.cfg.Keys.VerifyMAC(from, e.cfg.Replica, phaseBytes('p', m.View, m.Seq, m.Digest), m.MAC); err != nil {
		return
	}
	ent := e.getEntry(m.Seq)
	if ent.prePrep && ent.digest != m.Digest {
		return
	}
	ent.prepares[from] = true
	e.maybeCommitPhase(m.Seq)
}

// maybeCommitPhase sends a COMMIT once the entry is prepared (pre-prepare
// plus 2f matching prepares).
func (e *Engine) maybeCommitPhase(seq uint64) {
	ent := e.entries[seq]
	if ent == nil || !ent.prePrep || ent.commitSent {
		return
	}
	if len(ent.prepares) < e.cfg.Cluster.Quorum() {
		return
	}
	ent.commitSent = true
	ent.commits[e.cfg.Replica] = true
	for _, to := range e.others() {
		mac := e.cfg.Keys.MAC(e.cfg.Replica, to, phaseBytes('c', ent.view, seq, ent.digest))
		e.cfg.Ops.CountMACGen(e.cfg.Replica, 1)
		e.cfg.Send(to, &Commit{View: ent.view, Seq: seq, Digest: ent.digest, Replica: e.cfg.Replica, MAC: mac})
	}
	e.maybeDeliver()
}

func (e *Engine) onCommit(from ids.ProcessID, m *Commit) {
	e.cfg.Ops.CountMACVerify(e.cfg.Replica, 1)
	if err := e.cfg.Keys.VerifyMAC(from, e.cfg.Replica, phaseBytes('c', m.View, m.Seq, m.Digest), m.MAC); err != nil {
		return
	}
	ent := e.getEntry(m.Seq)
	if ent.prePrep && ent.digest != m.Digest {
		return
	}
	ent.commits[from] = true
	e.maybeDeliver()
}

// maybeDeliver delivers committed batches in sequence order.
func (e *Engine) maybeDeliver() {
	for {
		seq := e.lastDelivered + 1
		ent := e.entries[seq]
		if ent == nil || !ent.prePrep || ent.delivered {
			return
		}
		if len(ent.commits) < e.cfg.Cluster.Quorum() || len(ent.prepares) < e.cfg.Cluster.Quorum() {
			return
		}
		ent.committed = true
		ent.delivered = true
		e.lastDelivered = seq
		for _, r := range ent.batch {
			e.orderedReqs[r.ID()] = true
			delete(e.knownReqs, r.ID())
		}
		if e.cfg.Deliver != nil {
			e.cfg.Deliver(ent.batch)
		}
	}
}

// Tick drives time-based behaviour: a replica that has known, unordered
// requests older than the view-change timeout initiates a view change.
func (e *Engine) Tick() {
	if e.cfg.ViewChangeTimeout <= 0 {
		return
	}
	now := e.cfg.Now()
	stale := false
	for _, k := range e.knownReqs {
		if now.Sub(k.seen) > e.cfg.ViewChangeTimeout {
			stale = true
			break
		}
	}
	if stale {
		e.StartViewChange(e.view + 1)
	}
}

// StartViewChange initiates (or joins) a view change to the target view. It
// is also called directly by the Aardvark and Spinning wrappers, which rotate
// the primary on their own policies.
func (e *Engine) StartViewChange(target uint64) {
	if target <= e.view {
		return
	}
	if e.viewChanging && target <= e.targetView {
		return
	}
	e.viewChanging = true
	e.targetView = target
	vc := e.buildViewChange(target)
	e.recordViewChange(vc)
	for _, to := range e.others() {
		e.cfg.Send(to, vc)
	}
	e.maybeEnterNewView(target)
}

func (e *Engine) buildViewChange(target uint64) *ViewChange {
	vc := &ViewChange{NewView: target, Replica: e.cfg.Replica, LastDelivered: e.lastDelivered}
	for seq, ent := range e.entries {
		if seq <= e.lastDelivered || !ent.prePrep {
			continue
		}
		if len(ent.prepares) >= e.cfg.Cluster.Quorum() {
			vc.Prepared = append(vc.Prepared, PreparedEntry{Seq: seq, Digest: ent.digest, Batch: ent.batch})
		}
	}
	vc.Sig = e.cfg.Keys.Sign(e.cfg.Replica, vc.SignedBytes())
	e.cfg.Ops.CountSigGen(e.cfg.Replica)
	return vc
}

func (e *Engine) recordViewChange(vc *ViewChange) {
	m, ok := e.viewChanges[vc.NewView]
	if !ok {
		m = make(map[ids.ProcessID]*ViewChange)
		e.viewChanges[vc.NewView] = m
	}
	m[vc.Replica] = vc
}

func (e *Engine) onViewChange(from ids.ProcessID, vc *ViewChange) {
	if vc.Replica != from || vc.NewView <= e.view {
		return
	}
	e.cfg.Ops.CountSigVerify(e.cfg.Replica)
	if err := e.cfg.Keys.VerifySignature(vc.Replica, vc.SignedBytes(), vc.Sig); err != nil {
		return
	}
	e.recordViewChange(vc)
	// Join the view change once f+1 replicas ask for it (liveness rule).
	if len(e.viewChanges[vc.NewView]) >= e.cfg.Cluster.WeakQuorum() && (!e.viewChanging || e.targetView < vc.NewView) {
		e.StartViewChange(vc.NewView)
		return
	}
	e.maybeEnterNewView(vc.NewView)
}

// maybeEnterNewView lets the new primary assemble and broadcast the NEW-VIEW
// message once 2f+1 view changes are available.
func (e *Engine) maybeEnterNewView(target uint64) {
	if e.cfg.Cluster.Primary(target) != e.cfg.Replica {
		return
	}
	vcs := e.viewChanges[target]
	if len(vcs) < e.cfg.Cluster.Quorum() {
		return
	}
	if e.view >= target {
		return
	}
	// Re-propose the highest prepared batch per sequence number.
	reproposals := make(map[uint64]PreparedEntry)
	maxSeq := e.lastDelivered
	var list []ViewChange
	for _, vc := range vcs {
		list = append(list, *vc)
		for _, p := range vc.Prepared {
			if existing, ok := reproposals[p.Seq]; !ok || existing.Digest != p.Digest {
				reproposals[p.Seq] = p
			}
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
		if vc.LastDelivered > maxSeq {
			maxSeq = vc.LastDelivered
		}
	}
	nv := &NewView{View: target, ViewChanges: list}
	for seq := e.lastDelivered + 1; seq <= maxSeq; seq++ {
		batch := []msg.Request{}
		digest := BatchDigest(batch)
		if p, ok := reproposals[seq]; ok {
			batch = p.Batch
			digest = p.Digest
		}
		nv.Proposals = append(nv.Proposals, PrePrepare{View: target, Seq: seq, Batch: batch, Digest: digest})
	}
	e.enterView(target)
	e.nextSeq = maxSeq
	for _, to := range e.others() {
		e.cfg.Send(to, nv)
	}
	e.applyNewViewProposals(nv)
	// Re-propose any requests the old views never ordered.
	e.reproposeKnown()
}

func (e *Engine) onNewView(from ids.ProcessID, nv *NewView) {
	if nv.View <= e.view || e.cfg.Cluster.Primary(nv.View) != from {
		return
	}
	// Validate the 2f+1 signed view changes.
	valid := 0
	seen := make(map[ids.ProcessID]bool)
	for i := range nv.ViewChanges {
		vc := &nv.ViewChanges[i]
		if vc.NewView != nv.View || seen[vc.Replica] {
			continue
		}
		e.cfg.Ops.CountSigVerify(e.cfg.Replica)
		if err := e.cfg.Keys.VerifySignature(vc.Replica, vc.SignedBytes(), vc.Sig); err != nil {
			continue
		}
		seen[vc.Replica] = true
		valid++
	}
	if valid < e.cfg.Cluster.Quorum() {
		return
	}
	e.enterView(nv.View)
	e.applyNewViewProposals(nv)
}

// enterView switches the engine into the given view.
func (e *Engine) enterView(view uint64) {
	e.view = view
	e.viewChanging = false
	e.viewChangeCount++
	// Reset timers for known-but-unordered requests so the new primary gets
	// a full timeout to order them.
	now := e.cfg.Now()
	for _, k := range e.knownReqs {
		k.seen = now
	}
}

// applyNewViewProposals treats the new-view proposals as pre-prepares in the
// new view.
func (e *Engine) applyNewViewProposals(nv *NewView) {
	for i := range nv.Proposals {
		p := nv.Proposals[i]
		if p.Seq <= e.lastDelivered {
			continue
		}
		ent := e.getEntry(p.Seq)
		ent.view = nv.View
		ent.digest = p.Digest
		ent.batch = p.Batch
		ent.prePrep = true
		ent.commitSent = false
		ent.prepares = map[ids.ProcessID]bool{e.cfg.Replica: true}
		ent.commits = map[ids.ProcessID]bool{}
		if e.cfg.Cluster.Primary(nv.View) != e.cfg.Replica {
			for _, to := range e.others() {
				mac := e.cfg.Keys.MAC(e.cfg.Replica, to, phaseBytes('p', nv.View, p.Seq, p.Digest))
				e.cfg.Ops.CountMACGen(e.cfg.Replica, 1)
				e.cfg.Send(to, &Prepare{View: nv.View, Seq: p.Seq, Digest: p.Digest, Replica: e.cfg.Replica, MAC: mac})
			}
		}
		if p.Seq > e.nextSeq {
			e.nextSeq = p.Seq
		}
	}
	if e.IsPrimary() {
		e.reproposeKnown()
	}
}

// reproposeKnown re-queues requests this replica knows about but that were
// never ordered (used by a new primary after a view change).
func (e *Engine) reproposeKnown() {
	if !e.IsPrimary() {
		return
	}
	inFlight := make(map[msg.RequestID]bool)
	for seq, ent := range e.entries {
		if seq <= e.lastDelivered {
			continue
		}
		for _, r := range ent.batch {
			inFlight[r.ID()] = true
		}
	}
	for id, k := range e.knownReqs {
		if e.orderedReqs[id] || inFlight[id] {
			continue
		}
		e.pendingReqs = append(e.pendingReqs, k.req)
	}
	e.proposePending()
}
