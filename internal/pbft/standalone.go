package pbft

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// ReplicaConfig configures a standalone PBFT replica used as the baseline in
// the paper's evaluation.
type ReplicaConfig struct {
	Cluster           ids.Cluster
	Replica           ids.ProcessID
	Keys              *authn.KeyStore
	App               app.Application
	Endpoint          transport.Endpoint
	BatchSize         int
	ViewChangeTimeout time.Duration
	Ops               *authn.OpCounter
	// RequestFilter, when non-nil, is consulted before accepting a client
	// request; returning false drops it. The robust baselines (Aardvark,
	// Spinning, Prime) install client-blacklisting filters here.
	RequestFilter func(from ids.ProcessID, req *Request) bool
	// AfterDeliver, when non-nil, runs after each delivered batch with
	// access to the ordering engine; the robust baselines install their
	// primary-rotation policies here (Spinning rotates after every batch,
	// Aardvark rotates when the primary underperforms its throughput
	// expectation).
	AfterDeliver func(e *Engine, batch []msg.Request)
	// OnTick, when non-nil, runs on every timer tick with access to the
	// engine (used by Aardvark's throughput monitoring and Prime's
	// expected-ordering-rate checks).
	OnTick func(e *Engine)
}

// Replica is a standalone PBFT replica: it wires the ordering engine to the
// network and executes delivered requests against the application.
type Replica struct {
	cfg    ReplicaConfig
	mu     sync.Mutex
	engine *Engine
	app    app.Application
	// lastReply caches the last reply per client for retransmissions.
	lastReply map[ids.ProcessID]Reply
	executed  uint64
	// processingDelay models the "processing delay" attack when the replica
	// is the primary.
	processingDelay time.Duration
	crashed         bool

	stopCh chan struct{}
	doneCh chan struct{}
}

// NewReplica creates a standalone PBFT replica; Start launches it.
func NewReplica(cfg ReplicaConfig) *Replica {
	r := &Replica{
		cfg:       cfg,
		app:       cfg.App,
		lastReply: make(map[ids.ProcessID]Reply),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	r.engine = NewEngine(EngineConfig{
		Cluster:           cfg.Cluster,
		Replica:           cfg.Replica,
		Keys:              cfg.Keys,
		Send:              func(to ids.ProcessID, m any) { cfg.Endpoint.Send(to, m) },
		Deliver:           r.deliver,
		BatchSize:         cfg.BatchSize,
		ViewChangeTimeout: cfg.ViewChangeTimeout,
		Ops:               cfg.Ops,
	})
	return r
}

// Start launches the replica's event loop.
func (r *Replica) Start() { go r.run() }

// Stop terminates the replica.
func (r *Replica) Stop() {
	close(r.stopCh)
	<-r.doneCh
}

// SetProcessingDelay injects a per-message processing delay (attack model).
func (r *Replica) SetProcessingDelay(d time.Duration) {
	r.mu.Lock()
	r.processingDelay = d
	r.mu.Unlock()
}

// SetCrashed makes the replica drop all messages (true) or resume (false).
func (r *Replica) SetCrashed(c bool) {
	r.mu.Lock()
	r.crashed = c
	r.mu.Unlock()
}

// Executed returns the number of requests executed by this replica.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// ViewChanges returns the number of view changes completed by this replica.
func (r *Replica) ViewChanges() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.ViewChanges()
}

func (r *Replica) run() {
	defer close(r.doneCh)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-ticker.C:
			r.mu.Lock()
			if !r.crashed {
				r.engine.Tick()
				if r.cfg.OnTick != nil {
					r.cfg.OnTick(r.engine)
				}
			}
			r.mu.Unlock()
		case env, ok := <-r.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			r.handle(env.From, env.Payload)
		}
	}
}

func (r *Replica) handle(from ids.ProcessID, payload any) {
	r.mu.Lock()
	crashed := r.crashed
	delay := r.processingDelay
	r.mu.Unlock()
	if crashed {
		return
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch m := payload.(type) {
	case *Request:
		r.onRequest(from, m)
	default:
		r.engine.HandleMessage(from, payload)
	}
}

func (r *Replica) onRequest(from ids.ProcessID, m *Request) {
	if r.cfg.RequestFilter != nil && !r.cfg.RequestFilter(from, m) {
		return
	}
	r.cfg.Ops.CountMACVerify(r.cfg.Replica, 1)
	if err := r.cfg.Keys.Verify(m.Auth, r.cfg.Replica, requestAuthBytes(m.Req)); err != nil {
		return
	}
	if last, ok := r.lastReply[m.Req.Client]; ok && last.Timestamp == m.Req.Timestamp {
		out := last
		out.MAC = r.cfg.Keys.MAC(r.cfg.Replica, m.Req.Client, replyMACBytes(&out))
		r.cfg.Ops.CountMACGen(r.cfg.Replica, 1)
		r.cfg.Endpoint.Send(m.Req.Client, &out)
		return
	}
	r.engine.SubmitRequest(m.Req)
}

// Engine exposes the ordering engine; the caller must only use it from the
// replica's own callbacks (AfterDeliver, OnTick) or while the replica is
// stopped.
func (r *Replica) Engine() *Engine { return r.engine }

// deliver executes an ordered batch and replies to the clients.
func (r *Replica) deliver(batch []msg.Request) {
	defer func() {
		if r.cfg.AfterDeliver != nil {
			r.cfg.AfterDeliver(r.engine, batch)
		}
	}()
	for _, req := range batch {
		if last, ok := r.lastReply[req.Client]; ok && last.Timestamp >= req.Timestamp {
			continue
		}
		result := r.app.Execute(req.Command)
		r.executed++
		rep := Reply{
			View:      r.engine.View(),
			Replica:   r.cfg.Replica,
			Client:    req.Client,
			Timestamp: req.Timestamp,
			Result:    result,
		}
		rep.MAC = r.cfg.Keys.MAC(r.cfg.Replica, req.Client, replyMACBytes(&rep))
		r.cfg.Ops.CountMACGen(r.cfg.Replica, 1)
		r.lastReply[req.Client] = rep
		r.cfg.Endpoint.Send(req.Client, &rep)
		if r.engine.IsPrimary() {
			r.cfg.Ops.CountRequest()
		}
	}
}

// requestAuthBytes is the data clients authenticate in standalone PBFT.
func requestAuthBytes(req msg.Request) []byte {
	d := req.Digest()
	return d[:]
}

// replyMACBytes is the data covered by a reply MAC.
func replyMACBytes(rep *Reply) []byte {
	buf := make([]byte, 20+authn.DigestSize)
	binary.BigEndian.PutUint64(buf[0:8], rep.View)
	binary.BigEndian.PutUint32(buf[8:12], uint32(rep.Replica))
	binary.BigEndian.PutUint64(buf[12:20], rep.Timestamp)
	d := authn.Hash(rep.Result)
	copy(buf[20:], d[:])
	return buf
}

// ClientConfig configures a standalone PBFT client.
type ClientConfig struct {
	Cluster ids.Cluster
	Keys    *authn.KeyStore
	ID      ids.ProcessID
	// Endpoint attaches the client to the network.
	Endpoint transport.Endpoint
	// Timeout is the retransmission timeout.
	Timeout time.Duration
	Ops     *authn.OpCounter
}

// Client is a standalone PBFT client issuing requests in closed loop.
type Client struct {
	cfg ClientConfig
}

// NewClient creates a standalone PBFT client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 200 * time.Millisecond
	}
	return &Client{cfg: cfg}
}

// Invoke submits a request and blocks until f+1 matching replies arrive.
func (c *Client) Invoke(ctx context.Context, req msg.Request) ([]byte, error) {
	auth := c.cfg.Keys.NewAuthenticator(c.cfg.ID, c.cfg.Cluster.Replicas(), requestAuthBytes(req))
	c.cfg.Ops.CountMACGen(c.cfg.ID, auth.NumMACs())
	m := &Request{Req: req, Auth: auth}
	// Client multicast: send the request to every replica so the backups can
	// trigger a view change if the primary drops it.
	transport.Multicast(c.cfg.Endpoint, c.cfg.Cluster.Replicas(), m)

	votes := make(map[authn.Digest]map[ids.ProcessID]bool)
	var results = make(map[authn.Digest][]byte)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			transport.Multicast(c.cfg.Endpoint, c.cfg.Cluster.Replicas(), m)
			timer.Reset(c.cfg.Timeout)
		case env, ok := <-c.cfg.Endpoint.Inbox():
			if !ok {
				return nil, fmt.Errorf("pbft: client endpoint closed")
			}
			rep, isReply := env.Payload.(*Reply)
			if !isReply || rep.Timestamp != req.Timestamp || rep.Client != c.cfg.ID {
				continue
			}
			c.cfg.Ops.CountMACVerify(c.cfg.ID, 1)
			if err := c.cfg.Keys.VerifyMAC(rep.Replica, c.cfg.ID, replyMACBytes(rep), rep.MAC); err != nil {
				continue
			}
			d := authn.Hash(rep.Result)
			if votes[d] == nil {
				votes[d] = make(map[ids.ProcessID]bool)
			}
			votes[d][rep.Replica] = true
			results[d] = rep.Result
			if len(votes[d]) >= c.cfg.Cluster.WeakQuorum() {
				return results[d], nil
			}
		}
	}
}
