package msg

import (
	"testing"

	"abstractbft/internal/ids"
)

func TestBatchDigestDependsOnOrder(t *testing.T) {
	r1 := Request{Client: ids.Client(0), Timestamp: 1, Command: []byte("a")}
	r2 := Request{Client: ids.Client(0), Timestamp: 2, Command: []byte("b")}
	if BatchOf(r1, r2).Digest() == BatchOf(r2, r1).Digest() {
		t.Fatal("batch digest must be order-sensitive")
	}
	if BatchOf(r1).Digest() == BatchOf(r2).Digest() {
		t.Fatal("distinct batches must have distinct digests")
	}
	if BatchOf(r1, r2).Digest() == BatchOf(r1).Digest() {
		t.Fatal("batch digest must cover every request")
	}
}

func TestBatchDigestDeterministic(t *testing.T) {
	r1 := Request{Client: ids.Client(3), Timestamp: 9, Command: []byte("cmd"), ReadOnly: true}
	r2 := Request{Client: ids.Client(4), Timestamp: 1, Command: nil}
	a := BatchOf(r1, r2)
	b := BatchOf(r1.Clone(), r2.Clone())
	if a.Digest() != b.Digest() {
		t.Fatal("equal batches must have equal digests")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}
