package msg

import (
	"abstractbft/internal/authn"
)

// Batch is an ordered sequence of client requests treated as one unit of the
// request plane: protocols order, authenticate, log, and speculatively
// execute a whole batch in a single protocol step, fanning per-request
// replies back out to the invoking clients. A batch of one request is the
// degenerate case and is semantically identical to the unbatched path.
type Batch struct {
	Requests []Request
}

// BatchOf builds a batch from the given requests.
func BatchOf(reqs ...Request) Batch { return Batch{Requests: reqs} }

// Len returns the number of requests in the batch.
func (b Batch) Len() int { return len(b.Requests) }

// Digest returns the collision-resistant digest of the batch: the fold of the
// per-request digests. It is the value covered by batch-level MACs (one
// authenticator per batch rather than one per request).
func (b Batch) Digest() authn.Digest {
	parts := make([][]byte, len(b.Requests))
	for i := range b.Requests {
		d := b.Requests[i].Digest()
		parts[i] = d[:]
	}
	return authn.HashAll(parts...)
}
