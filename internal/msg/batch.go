package msg

import (
	"abstractbft/internal/authn"
	"abstractbft/internal/obs"
)

// Batch is an ordered sequence of client requests treated as one unit of the
// request plane: protocols order, authenticate, log, and speculatively
// execute a whole batch in a single protocol step, fanning per-request
// replies back out to the invoking clients. A batch of one request is the
// degenerate case and is semantically identical to the unbatched path.
type Batch struct {
	Requests []Request
	// Trace is the batch-level tracing context: the context of the first
	// sampled member (BatchOf hoists it so batch-granular trace hooks need no
	// member scan). Like Request.Trace it is excluded from Digest — tracing
	// never changes agreement identity.
	//
	//wire:nodigest
	Trace obs.TraceContext
}

// BatchOf builds a batch from the given requests, hoisting the first sampled
// member's trace context to the batch level.
func BatchOf(reqs ...Request) Batch {
	b := Batch{Requests: reqs}
	for i := range reqs {
		if reqs[i].Trace.Sampled() {
			b.Trace = reqs[i].Trace
			break
		}
	}
	return b
}

// TraceCtx returns the batch's effective tracing context: the hoisted
// batch-level one when set, otherwise the first sampled member's (batches
// reassembled on the receiving side of a wire may carry the context only on
// their members). The zero context means the batch is untraced.
func (b Batch) TraceCtx() obs.TraceContext {
	if b.Trace.Sampled() {
		return b.Trace
	}
	for i := range b.Requests {
		if b.Requests[i].Trace.Sampled() {
			return b.Requests[i].Trace
		}
	}
	return obs.TraceContext{}
}

// Len returns the number of requests in the batch.
func (b Batch) Len() int { return len(b.Requests) }

// Digest returns the collision-resistant digest of the batch: the fold of the
// per-request digests. It is the value covered by batch-level MACs (one
// authenticator per batch rather than one per request).
func (b Batch) Digest() authn.Digest {
	parts := make([][]byte, len(b.Requests))
	for i := range b.Requests {
		d := b.Requests[i].Digest()
		parts[i] = d[:]
	}
	return authn.HashAll(parts...)
}
