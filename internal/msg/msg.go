// Package msg defines the request/reply model shared by every protocol in the
// repository: client requests, request identifiers, and application replies.
package msg

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/obs"
)

// Request is a client request to the replicated state machine. Requests are
// elements of REQ = C x CMD x N in the Abstract specification: a client
// identifier, a command, and a client-local request identifier (Timestamp).
type Request struct {
	// Client is the identifier of the invoking client.
	Client ids.ProcessID
	// Timestamp is the client's unique, monotonically increasing request
	// identifier (t_c in the paper).
	Timestamp uint64
	// Command is the opaque state machine command (o in the paper).
	Command []byte
	// ReadOnly marks requests that do not modify the state machine and may
	// be executed using read-only optimizations.
	ReadOnly bool
	// Trace is the wire-propagated distributed-tracing context: zero (the
	// common case) for unsampled requests, a head-sampled trace ID plus parent
	// span otherwise. It rides on the request through every protocol message,
	// batch, and retransmission, so one sampled request's spans share a trace
	// ID across processes. Trace is deliberately EXCLUDED from Marshal,
	// Digest, and Equal: tracing is an observability overlay and must never
	// change a request's agreement identity (digests, MACs, signatures, and
	// duplicate detection are all computed over the Marshal bytes).
	//
	//wire:nodigest
	Trace obs.TraceContext
}

// RequestID uniquely identifies a request: well-formed clients never reuse a
// timestamp.
type RequestID struct {
	Client    ids.ProcessID
	Timestamp uint64
}

// ID returns the request's identifier.
func (r Request) ID() RequestID { return RequestID{Client: r.Client, Timestamp: r.Timestamp} }

// String renders the identifier for logs and test failures.
func (id RequestID) String() string { return fmt.Sprintf("%v/%d", id.Client, id.Timestamp) }

// Marshal encodes the request deterministically; the encoding is the input of
// digests, MACs, and signatures computed over requests.
func (r Request) Marshal() []byte {
	var buf bytes.Buffer
	var hdr [21]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(r.Client))
	binary.BigEndian.PutUint64(hdr[4:12], r.Timestamp)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(r.Command)))
	if r.ReadOnly {
		hdr[20] = 1
	}
	buf.Write(hdr[:])
	buf.Write(r.Command)
	return buf.Bytes()
}

// UnmarshalRequest decodes a request encoded with Marshal.
func UnmarshalRequest(data []byte) (Request, error) {
	if len(data) < 21 {
		return Request{}, fmt.Errorf("msg: request too short: %d bytes", len(data))
	}
	var r Request
	r.Client = ids.ProcessID(binary.BigEndian.Uint32(data[0:4]))
	r.Timestamp = binary.BigEndian.Uint64(data[4:12])
	n := binary.BigEndian.Uint64(data[12:20])
	r.ReadOnly = data[20] == 1
	if uint64(len(data)-21) != n {
		return Request{}, fmt.Errorf("msg: request body length mismatch: have %d want %d", len(data)-21, n)
	}
	r.Command = append([]byte(nil), data[21:]...)
	return r, nil
}

// Digest returns the collision-resistant digest of the request.
func (r Request) Digest() authn.Digest { return authn.Hash(r.Marshal()) }

// Equal reports whether two requests are identical (same identifier and same
// command bytes).
func (r Request) Equal(o Request) bool {
	return r.Client == o.Client && r.Timestamp == o.Timestamp && r.ReadOnly == o.ReadOnly &&
		bytes.Equal(r.Command, o.Command)
}

// Clone returns a deep copy of the request.
func (r Request) Clone() Request {
	c := r
	c.Command = append([]byte(nil), r.Command...)
	return c
}

// Reply is the application-level reply returned to a client for a committed
// request.
type Reply struct {
	// Replica identifies the replica producing the reply. Excluded from the
	// digest: reply digests must agree across the replicas producing them
	// (§4.2's footnote on lightweight replies), so only Result is hashed.
	//
	//wire:nodigest
	Replica ids.ProcessID
	// Client and Timestamp identify the request being answered; like Replica
	// they are routing metadata, not part of the agreed reply value.
	//
	//wire:nodigest
	Client ids.ProcessID
	//wire:nodigest
	Timestamp uint64
	// Result is the application-level reply payload (rep(h_req)).
	Result []byte
}

// Digest returns the digest of the reply payload; replicas other than a
// designated one may send only this digest (§4.2 footnote 7).
func (r Reply) Digest() authn.Digest { return authn.Hash(r.Result) }
