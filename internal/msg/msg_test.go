package msg

import (
	"bytes"
	"testing"
	"testing/quick"

	"abstractbft/internal/ids"
)

func TestRequestMarshalRoundTrip(t *testing.T) {
	r := Request{Client: ids.Client(3), Timestamp: 42, Command: []byte("hello"), ReadOnly: true}
	out, err := UnmarshalRequest(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, r)
	}
	if _, err := UnmarshalRequest([]byte("short")); err == nil {
		t.Fatalf("short input accepted")
	}
	bad := r.Marshal()
	bad = bad[:len(bad)-1]
	if _, err := UnmarshalRequest(bad); err == nil {
		t.Fatalf("truncated command accepted")
	}
}

func TestRequestMarshalQuick(t *testing.T) {
	f := func(client uint16, ts uint64, cmd []byte, ro bool) bool {
		r := Request{Client: ids.Client(int(client)), Timestamp: ts, Command: cmd, ReadOnly: ro}
		out, err := UnmarshalRequest(r.Marshal())
		if err != nil {
			return false
		}
		return out.Client == r.Client && out.Timestamp == r.Timestamp && out.ReadOnly == r.ReadOnly && bytes.Equal(out.Command, r.Command)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestDistinguishesRequests(t *testing.T) {
	a := Request{Client: ids.Client(0), Timestamp: 1, Command: []byte("x")}
	b := Request{Client: ids.Client(0), Timestamp: 2, Command: []byte("x")}
	c := Request{Client: ids.Client(1), Timestamp: 1, Command: []byte("x")}
	if a.Digest() == b.Digest() || a.Digest() == c.Digest() {
		t.Fatalf("distinct requests share a digest")
	}
	if a.ID() == b.ID() {
		t.Fatalf("distinct requests share an ID")
	}
	clone := a.Clone()
	clone.Command[0] = 'y'
	if a.Command[0] != 'x' {
		t.Fatalf("Clone shares the command buffer")
	}
}

func TestReplyDigest(t *testing.T) {
	r1 := Reply{Replica: ids.Replica(0), Client: ids.Client(0), Timestamp: 1, Result: []byte("a")}
	r2 := Reply{Replica: ids.Replica(1), Client: ids.Client(0), Timestamp: 1, Result: []byte("a")}
	if r1.Digest() != r2.Digest() {
		t.Fatalf("reply digests should depend only on the payload")
	}
}
