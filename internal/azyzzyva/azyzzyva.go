// Package azyzzyva implements AZyzzyva (§4), the first composed protocol of
// the paper: the static alternation of ZLight (which mimics Zyzzyva's
// speculative common case) and Backup (a thin wrapper over PBFT that handles
// the periods with asynchrony or failures). Odd Abstract instances run
// ZLight, even instances run Backup; every abort switches to the next
// instance, so the composition commits every request eventually while
// matching Zyzzyva's performance in the common case.
//
// Since the declarative composition API landed, AZyzzyva is nothing but the
// registered schedule "zlight,backup" (internal/compose); this package is a
// thin veneer keeping the paper's vocabulary.
package azyzzyva

import (
	"time"

	"abstractbft/internal/backup"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
)

// SpecName is AZyzzyva's registered schedule name; compose.MustParse(SpecName)
// yields the "zlight,backup" cycle.
const SpecName = "azyzzyva"

// Spec returns AZyzzyva's switching schedule.
func Spec() compose.Spec { return compose.MustParse(SpecName) }

// Options tunes the composition.
type Options struct {
	// BackupK is Backup's commit-count policy; nil selects the paper's
	// exponential policy starting at 1.
	BackupK backup.KPolicy
	// BatchSize is the PBFT batch size inside Backup.
	BatchSize int
	// ViewChangeTimeout is PBFT's view-change timeout inside Backup.
	ViewChangeTimeout time.Duration
}

// composeOptions maps AZyzzyva options onto the composition API's options.
func (o Options) composeOptions() compose.Options {
	return compose.Options{
		BackupK:           o.BackupK,
		BatchSize:         o.BatchSize,
		ViewChangeTimeout: o.ViewChangeTimeout,
	}
}

// Composition compiles AZyzzyva's schedule with the given options; pass the
// result to deploy.Config.Composition.
func Composition(opts Options) *compose.Composition {
	return compose.MustNew(SpecName, opts.composeOptions())
}

// IsZLight reports whether instance id runs ZLight (odd instances), derived
// from the schedule.
func IsZLight(id core.InstanceID) bool { return Spec().ProtocolAt(id) == "zlight" }

// BackupIndex returns the 0-based index of a Backup instance within the
// composition (instance 2 is Backup #0, instance 4 is Backup #1, ...).
func BackupIndex(id core.InstanceID) int { return Spec().StrongIndex(id) }

// ReplicaFactory returns the per-instance protocol factory replicas use: odd
// instances are ZLight, even instances are Backup over PBFT.
func ReplicaFactory(cluster ids.Cluster, opts Options) host.ProtocolFactory {
	return Composition(opts).ReplicaFactory(cluster)
}

// InstanceFactory returns the client-side factory of the composition.
func InstanceFactory(env core.ClientEnv) core.InstanceFactory {
	return Composition(Options{}).InstanceFactory(env)
}

// NewClient creates an AZyzzyva client: a composer over the instance factory,
// starting at instance 1 (ZLight).
func NewClient(env core.ClientEnv) (*core.Composer, error) {
	return Composition(Options{}).NewClient(env)
}
