// Package azyzzyva implements AZyzzyva (§4), the first composed protocol of
// the paper: the static alternation of ZLight (which mimics Zyzzyva's
// speculative common case) and Backup (a thin wrapper over PBFT that handles
// the periods with asynchrony or failures). Odd Abstract instances run
// ZLight, even instances run Backup; every abort switches to the next
// instance, so the composition commits every request eventually while
// matching Zyzzyva's performance in the common case.
package azyzzyva

import (
	"time"

	"abstractbft/internal/backup"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/zlight"
)

// Options tunes the composition.
type Options struct {
	// BackupK is Backup's commit-count policy; nil selects the paper's
	// exponential policy starting at 1.
	BackupK backup.KPolicy
	// BatchSize is the PBFT batch size inside Backup.
	BatchSize int
	// ViewChangeTimeout is PBFT's view-change timeout inside Backup.
	ViewChangeTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.BackupK == nil {
		o.BackupK = backup.ExponentialK(1, 1<<16)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.ViewChangeTimeout <= 0 {
		o.ViewChangeTimeout = 500 * time.Millisecond
	}
	return o
}

// IsZLight reports whether instance id runs ZLight (odd instances).
func IsZLight(id core.InstanceID) bool { return id%2 == 1 }

// BackupIndex returns the 0-based index of a Backup instance within the
// composition (instance 2 is Backup #0, instance 4 is Backup #1, ...).
func BackupIndex(id core.InstanceID) int {
	if id < 2 {
		return 0
	}
	return int(id/2) - 1
}

// ReplicaFactory returns the per-instance protocol factory replicas use: odd
// instances are ZLight, even instances are Backup over PBFT.
func ReplicaFactory(cluster ids.Cluster, opts Options) host.ProtocolFactory {
	opts = opts.withDefaults()
	zl := zlight.NewReplica()
	bu := backup.NewReplica(backup.ReplicaConfig{
		K:           opts.BackupK,
		BackupIndex: BackupIndex,
		Orderer:     backup.PBFTOrderer(opts.BatchSize, opts.ViewChangeTimeout),
	})
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		if IsZLight(st.ID) {
			return zl(h, st)
		}
		return bu(h, st)
	}
}

// InstanceFactory returns the client-side factory of the composition.
func InstanceFactory(env core.ClientEnv) core.InstanceFactory {
	return func(id core.InstanceID) (core.Instance, error) {
		if IsZLight(id) {
			return zlight.NewClient(env, id), nil
		}
		return backup.NewClient(env, id), nil
	}
}

// NewClient creates an AZyzzyva client: a composer over the instance factory,
// starting at instance 1 (ZLight).
func NewClient(env core.ClientEnv) (*core.Composer, error) {
	return core.NewComposer(InstanceFactory(env), 1)
}
