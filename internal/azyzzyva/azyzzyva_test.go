package azyzzyva_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func newCluster(t *testing.T, f int, checker *core.SpecChecker) *deploy.Cluster {
	t.Helper()
	c, err := deploy.New(deploy.Config{
		F:      f,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(cluster ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(cluster, azyzzyva.Options{ViewChangeTimeout: 300 * time.Millisecond})
		},
		NewInstanceFactory:  azyzzyva.InstanceFactory,
		Delta:               25 * time.Millisecond,
		InstrumentHistories: true,
		Checker:             checker,
		TickInterval:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestAZyzzyvaCommonCase(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker)
	client, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for ts := uint64(1); ts <= 30; ts++ {
		key := fmt.Sprintf("k%d", ts)
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(key, "v")}
		reply, err := client.Invoke(ctx, req)
		if err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
		if string(reply) != "OK" {
			t.Fatalf("invoke %d: unexpected reply %q", ts, reply)
		}
	}
	if client.Switches() != 0 {
		t.Errorf("common case performed %d switches, want 0", client.Switches())
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

// TestAZyzzyvaSwitchesToBackupOnCrash crashes one replica so ZLight can no
// longer gather 3f+1 speculative replies; the composition must switch to
// Backup (PBFT), which commits with only 2f+1 live replicas.
func TestAZyzzyvaSwitchesToBackupOnCrash(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker)
	client, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A few common-case commits first.
	for ts := uint64(1); ts <= 5; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(fmt.Sprintf("pre%d", ts), "v")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
	}

	// Crash one replica. ZLight aborts, Backup takes over.
	c.Host(3).SetCrashed(true)

	for ts := uint64(6); ts <= 15; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(fmt.Sprintf("post%d", ts), "v")}
		reply, err := client.Invoke(ctx, req)
		if err != nil {
			t.Fatalf("invoke %d under crash: %v", ts, err)
		}
		if string(reply) != "OK" {
			t.Fatalf("invoke %d: unexpected reply %q", ts, reply)
		}
	}
	if client.Switches() == 0 {
		t.Errorf("expected at least one switch after a replica crash")
	}
	if client.ActiveInstance() < 2 {
		t.Errorf("active instance is %d, expected to have moved past instance 1", client.ActiveInstance())
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}

	// The surviving replicas' key-value stores must contain all committed keys.
	deadline := time.Now().Add(3 * time.Second)
	for i := 0; i < 3; i++ {
		h := c.Host(i)
		for time.Now().Before(deadline) {
			kv := h.Application().(*app.KVStore)
			if kv.Get("post15") == "v" {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		kv := h.Application().(*app.KVStore)
		if kv.Get("pre1") != "v" || kv.Get("post15") != "v" {
			t.Errorf("replica %d state incomplete: pre1=%q post15=%q", i, kv.Get("pre1"), kv.Get("post15"))
		}
	}
}

// TestAZyzzyvaRecoversBackToZLight checks that after Backup commits its k
// requests the composition switches onward (Backup -> ZLight -> ...) and
// keeps committing.
func TestAZyzzyvaRecoversBackToZLight(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker)
	client, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Crash and later recover a replica.
	c.Host(2).SetCrashed(true)
	for ts := uint64(1); ts <= 8; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(fmt.Sprintf("a%d", ts), "v")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
	}
	c.Host(2).SetCrashed(false)
	for ts := uint64(9); ts <= 40; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(fmt.Sprintf("b%d", ts), "v")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
	}
	if got := client.Switches(); got < 2 {
		t.Errorf("expected the composition to keep switching (got %d switches)", got)
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

func TestBackupIndex(t *testing.T) {
	cases := map[core.InstanceID]int{2: 0, 4: 1, 6: 2, 8: 3}
	for id, want := range cases {
		if got := azyzzyva.BackupIndex(id); got != want {
			t.Errorf("BackupIndex(%d) = %d, want %d", id, got, want)
		}
	}
	for _, id := range []core.InstanceID{1, 3, 5, 7} {
		if !azyzzyva.IsZLight(id) {
			t.Errorf("instance %d should be ZLight", id)
		}
	}
	for _, id := range []core.InstanceID{2, 4, 6} {
		if azyzzyva.IsZLight(id) {
			t.Errorf("instance %d should be Backup", id)
		}
	}
}
