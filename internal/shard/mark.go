package shard

import (
	"sync"

	"abstractbft/internal/ids"
	"abstractbft/internal/transport"
)

// Mark is the wire wrapper of the sharded plane: every message of shard s
// crosses the network as Mark{Shard: s, Payload: m}, so one physical
// endpoint per process carries the traffic of all S shards and the receiving
// side demultiplexes by shard instead of by message type.
type Mark struct {
	Shard   int32
	Payload any
}

func init() {
	transport.RegisterWireType(&Mark{})
}

// routerQueueLen is the per-shard inbox length; a full shard inbox drops
// messages, preserving the fair-loss model exactly like a full endpoint
// inbox.
const routerQueueLen = 8192

// controlShard is the reserved mark of the node-level control channel: the
// recovery plane's merged-boundary collection (MergedQuery/MergedState)
// shares the one physical endpoint with the S shards without belonging to
// any of them.
const controlShard int32 = -1

// Router demultiplexes one process's endpoint into S per-shard virtual
// endpoints: incoming Mark envelopes are routed to the inbox of their shard
// (write-coalesced Packed payloads are expanded first), and sends through a
// shard endpoint are wrapped with that shard's Mark. Unmarked traffic is
// delivered to shard 0, so a one-shard plane interoperates with unsharded
// peers.
type Router struct {
	ep     transport.Endpoint
	shards int
	subs   []*routerEndpoint
	ctrl   *routerEndpoint

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRouter starts routing the endpoint's inbox across shards virtual
// endpoints. The caller must not read ep.Inbox directly afterwards.
func NewRouter(ep transport.Endpoint, shards int) *Router {
	if shards < 1 {
		shards = 1
	}
	r := &Router{
		ep:     ep,
		shards: shards,
		subs:   make([]*routerEndpoint, shards),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for s := range r.subs {
		r.subs[s] = &routerEndpoint{r: r, shard: int32(s), in: make(chan transport.Envelope, routerQueueLen)}
	}
	r.ctrl = &routerEndpoint{r: r, shard: controlShard, in: make(chan transport.Envelope, routerQueueLen)}
	go r.run()
	return r
}

// Shards returns the number of shard endpoints.
func (r *Router) Shards() int { return r.shards }

// Endpoint returns shard s's virtual endpoint.
func (r *Router) Endpoint(s int) transport.Endpoint { return r.subs[s] }

// Control returns the node-level control endpoint: its traffic crosses the
// wire marked with the reserved control shard, so it never collides with any
// shard's protocol messages.
func (r *Router) Control() transport.Endpoint { return r.ctrl }

// Close detaches the router: the fan-out goroutine exits and every shard
// inbox is closed. The underlying endpoint stays open for other users.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Router) run() {
	defer close(r.done)
	defer func() {
		for _, sub := range r.subs {
			sub.closeInbox()
		}
		r.ctrl.closeInbox()
	}()
	for {
		select {
		case env, ok := <-r.ep.Inbox():
			if !ok {
				return
			}
			shard := int32(0)
			payload := env.Payload
			if mk, ok := payload.(*Mark); ok {
				shard = mk.Shard
				payload = mk.Payload
			}
			var sub *routerEndpoint
			switch {
			case shard == controlShard:
				sub = r.ctrl
			case shard >= 0 && int(shard) < r.shards:
				sub = r.subs[shard]
			default:
				continue
			}
			// Expand write-coalesced packs so shard inboxes only ever see
			// protocol payloads (the mark wraps the pack as a whole).
			if p, ok := payload.(*transport.Packed); ok {
				for _, inner := range p.Payloads {
					sub.deliver(transport.Envelope{From: env.From, To: env.To, Payload: inner})
				}
				continue
			}
			sub.deliver(transport.Envelope{From: env.From, To: env.To, Payload: payload})
		case <-r.stop:
			return
		}
	}
}

// routerEndpoint is one shard's virtual endpoint: sends are wrapped with the
// shard's mark, receives come from the router's per-shard inbox.
type routerEndpoint struct {
	r     *Router
	shard int32

	mu     sync.Mutex
	in     chan transport.Envelope
	closed bool
}

func (e *routerEndpoint) ID() ids.ProcessID { return e.r.ep.ID() }

func (e *routerEndpoint) Send(to ids.ProcessID, payload any) {
	e.r.ep.Send(to, &Mark{Shard: e.shard, Payload: payload})
}

func (e *routerEndpoint) Inbox() <-chan transport.Envelope { return e.in }

// Close stops delivery into this shard's inbox; the router and the other
// shards stay attached.
func (e *routerEndpoint) Close() { e.closeInbox() }

func (e *routerEndpoint) deliver(env transport.Envelope) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.in <- env:
	default:
		// Shard inbox full: drop (fair-loss links).
	}
}

func (e *routerEndpoint) closeInbox() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	close(e.in)
}

var _ transport.Endpoint = (*routerEndpoint)(nil)
