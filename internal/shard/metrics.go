package shard

import (
	"strconv"

	"abstractbft/internal/obs"
)

// execMetrics bundles the execution-stage series: merged-sequence progress,
// per-shard merged throughput, Mencius null-op fills, and (via scrape-time
// gauges registered in newExecMetrics) each shard's merge lag and
// out-of-order backlog. All fields are nil obs metrics when the plane is
// uninstrumented, so the merge loop records unconditionally.
type execMetrics struct {
	mergedSeq *obs.Gauge     // shard_merged_seq
	rounds    *obs.Counter   // shard_merge_rounds_total
	nullOps   *obs.Counter   // shard_nullops_merged_total
	merged    []*obs.Counter // shard_merged_requests_total{shard="s"}
	reagreed  *obs.Counter   // shard_reagreements_total
}

// shardLabel renders the per-shard label pair once, at registration time.
func shardLabel(s int) []string { return []string{"shard", strconv.Itoa(s)} }

// newExecMetrics registers the execution-stage series and the scrape-time
// progress gauges over e's published (stateMu-guarded) views.
func newExecMetrics(r *obs.Registry, e *Executor) *execMetrics {
	m := &execMetrics{}
	if r == nil {
		return m
	}
	m.mergedSeq = r.Gauge("shard_merged_seq")
	m.rounds = r.Counter("shard_merge_rounds_total")
	m.nullOps = r.Counter("shard_nullops_merged_total")
	m.reagreed = r.Counter("shard_reagreements_total")
	for s := 0; s < e.shards; s++ {
		s := s
		m.merged = append(m.merged, r.Counter("shard_merged_requests_total", shardLabel(s)...))
		// Merge lag: in-order ordered positions of the shard not yet merged
		// (waiting on slower shards' epochs).
		r.GaugeFunc("shard_merge_lag", func() float64 {
			e.stateMu.Lock()
			defer e.stateMu.Unlock()
			return float64(e.inOrder[s] - e.poppedView[s])
		}, shardLabel(s)...)
		// Epoch backlog: buffered out-of-order entries awaiting their
		// predecessors.
		r.GaugeFunc("shard_ooo_backlog", func() float64 {
			e.stateMu.Lock()
			defer e.stateMu.Unlock()
			return float64(e.oooView[s])
		}, shardLabel(s)...)
	}
	return m
}
