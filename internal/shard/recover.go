package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/transport"
)

// This file implements the node-level recovery control plane: the messages
// and vote collection a freshly restarted replica process uses to rejoin a
// live sharded plane over any transport.Endpoint (TCP included), and the
// automatic re-agreement retry that keeps a pinned per-shard state sync from
// stalling when live peers' GC floors prune the pinned boundary under
// continuous traffic.
//
// The in-process crash-restart harness used to collect the merged boundary
// by calling Exec.MergedSnapshot on its peers directly — impossible across a
// process boundary. MergedQuery/MergedState move that collection onto the
// wire (the router's control channel, so it shares the one physical endpoint
// with all S shards), and Node.RecoverFromPeers drives the whole rejoin:
// collect an f+1-agreed merged boundary, restore the merged mirror, start
// the sub-hosts, and pin each shard's FETCH-STATE at the restored boundary.

// MergedQuery asks a peer node for its merged-mirror state: the recovering
// replica multicasts it on the control channel and accumulates the answers
// until f+1 distinct peers vouch for the same boundary.
type MergedQuery struct {
	// From is the querying replica.
	From ids.ProcessID
	// StateFrom designates the one peer asked to include the serialized
	// merged application; every other responder answers with digests only,
	// so a collection round costs one state transfer instead of 3f (the
	// digest-first rule statesync.FetchState.BodiesFrom established). The
	// querier rotates the designation across rounds, so a crashed or lying
	// designated peer only delays the collection.
	StateFrom ids.ProcessID
}

// MergedState answers a MergedQuery: the responder's merged sequence length,
// merged digest chain, and — when the responder was designated — the
// serialized merged application. Votes are keyed by (Seq, Digest, AppHash),
// so a peer agreeing on the identity but shipping different bytes forms its
// own group and cannot sneak a forged application state into an honest
// agreement. Like statesync.State, the claimed sender is pinned to the
// transport-level sender, so one Byzantine peer contributes at most one
// vote.
type MergedState struct {
	// From is the responding replica.
	From ids.ProcessID
	// Seq is the responder's merged global sequence length (a round-boundary
	// multiple of shards*epoch).
	Seq uint64
	// Digest is the digest chain fold over the merged sequence.
	Digest authn.Digest
	// AppHash is the hash of the serialized merged application at Seq.
	AppHash authn.Digest
	// HasApp marks responses carrying the serialized application (the
	// designated peer); an explicit flag because an application may
	// legitimately serialize to zero bytes.
	HasApp bool
	// App is the serialized merged application (designated responses only).
	App []byte
}

func init() {
	transport.RegisterWireType(&MergedQuery{})
	transport.RegisterWireType(&MergedState{})
}

// mergedKey is the agreement identity of one merged boundary. The merged
// state is a pure function of the agreed per-shard histories, so equal keys
// across f+1 distinct replicas pin it to at least one correct replica.
type mergedKey struct {
	seq     uint64
	dig     authn.Digest
	appHash authn.Digest
}

// mergedCollector accumulates MergedState votes across collection rounds.
// Votes are cumulative on purpose: under continuous traffic the peers'
// mirrors advance between polls, so a single instantaneous sample rarely
// catches f+1 peers at the same boundary — but every peer passes through
// every round boundary, so distinct peers' reports of the same (seq, digest,
// app-hash) accumulate into an agreement even when they were observed at
// different times.
type mergedCollector struct {
	mu     sync.Mutex
	need   int
	votes  map[mergedKey]map[ids.ProcessID]bool
	states map[mergedKey][]byte
	has    map[mergedKey]bool
}

func newMergedCollector(f int) *mergedCollector {
	return &mergedCollector{
		need:   f + 1,
		votes:  make(map[mergedKey]map[ids.ProcessID]bool),
		states: make(map[mergedKey][]byte),
		has:    make(map[mergedKey]bool),
	}
}

// add records one peer's vote; application bytes are kept only when they
// hash to the claimed identity.
func (c *mergedCollector) add(m *MergedState) {
	key := mergedKey{seq: m.Seq, dig: m.Digest, appHash: m.AppHash}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.votes[key] == nil {
		c.votes[key] = make(map[ids.ProcessID]bool)
	}
	c.votes[key][m.From] = true
	if m.HasApp && !c.has[key] && authn.Hash(m.App) == m.AppHash {
		c.states[key] = m.App
		c.has[key] = true
	}
}

// best returns the highest boundary at or above minSeq that f+1 distinct
// peers agree on and whose application bytes have arrived and verified.
func (c *mergedCollector) best(minSeq uint64) (mergedKey, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var bestKey mergedKey
	found := false
	for key, vs := range c.votes {
		if len(vs) < c.need || key.seq < minSeq || !c.has[key] {
			continue
		}
		if !found || key.seq > bestKey.seq {
			bestKey = key
			found = true
		}
	}
	if !found {
		return mergedKey{}, nil, false
	}
	return bestKey, c.states[bestKey], true
}

// startControl launches the node's control loop (idempotent): it answers
// peers' MergedQuery messages from the live merged mirror and feeds
// MergedState responses into the collector of an in-flight recovery.
func (n *Node) startControl() {
	n.ctrlOnce.Do(func() {
		n.ctrlDone = make(chan struct{})
		go n.runControl()
	})
}

func (n *Node) runControl() {
	defer close(n.ctrlDone)
	ep := n.Router.Control()
	for env := range ep.Inbox() {
		switch m := env.Payload.(type) {
		case *MergedQuery:
			// Pin the claimed sender to the transport sender (one vote per
			// distinct peer at the querier) and never answer clients.
			if !m.From.IsReplica() || m.From != env.From || m.From == n.cfg.Replica {
				continue
			}
			seq, dig, app := n.Exec.MergedSnapshot()
			resp := &MergedState{From: n.cfg.Replica, Seq: seq, Digest: dig, AppHash: authn.Hash(app)}
			if m.StateFrom == n.cfg.Replica {
				resp.HasApp = true
				resp.App = app
			}
			ep.Send(m.From, resp)
		case *MergedState:
			if !m.From.IsReplica() || m.From != env.From {
				continue
			}
			n.recMu.Lock()
			if n.rec != nil {
				n.rec.add(m)
			}
			n.recMu.Unlock()
		}
	}
}

// peers returns the other replicas of the plane.
func (n *Node) peers() []ids.ProcessID {
	out := make([]ids.ProcessID, 0, n.cfg.Cluster.N-1)
	for _, r := range n.cfg.Cluster.Replicas() {
		if r != n.cfg.Replica {
			out = append(out, r)
		}
	}
	return out
}

// askMerged multicasts one MergedQuery round, designating the next peer in
// rotation to ship the serialized merged application.
func (n *Node) askMerged() {
	peers := n.peers()
	if len(peers) == 0 {
		return
	}
	n.recMu.Lock()
	designated := peers[n.recAsks%len(peers)]
	n.recAsks++
	n.recMu.Unlock()
	ep := n.Router.Control()
	q := &MergedQuery{From: n.cfg.Replica, StateFrom: designated}
	for _, p := range peers {
		ep.Send(p, q)
	}
}

// recoverInterval is the collection/re-agreement poll period.
func (n *Node) recoverInterval() time.Duration {
	if n.cfg.RecoverRetryInterval > 0 {
		return n.cfg.RecoverRetryInterval
	}
	return DefaultRecoverRetryInterval
}

// RecoverFromPeers drives a crash-restarted node's whole rejoin over the
// network, and must be called instead of Start: it multicasts MergedQuery
// rounds until f+1 distinct peers vouch for one merged boundary (votes
// accumulate across rounds, so peers observed at different instants of a
// moving plane still converge on an agreement), then adopts that boundary
// via Recover — restoring the merged mirror, starting the sub-hosts, and
// pinning every shard's state sync at the boundary. The per-shard transfers
// complete asynchronously under the re-agreement monitor Recover starts
// (poll Syncing). It fails only when the context expires before any f+1
// agreement forms (fewer than f+1 live peers).
func (n *Node) RecoverFromPeers(ctx context.Context) error {
	n.startControl()
	col := newMergedCollector(n.cfg.Cluster.F)
	n.recMu.Lock()
	n.rec = col
	n.recMu.Unlock()

	interval := n.recoverInterval()
	n.askMerged()
	nextAsk := time.Now().Add(interval)
	check := time.NewTicker(interval / 8)
	defer check.Stop()
	for {
		select {
		case <-ctx.Done():
			n.recMu.Lock()
			n.rec = nil
			n.recMu.Unlock()
			return fmt.Errorf("shard: no f+1-agreed merged boundary among live peers: %w", ctx.Err())
		case <-check.C:
			if key, app, ok := col.best(0); ok {
				return n.Recover(key.seq, key.dig, app)
			}
			if time.Now().After(nextAsk) {
				n.askMerged()
				nextAsk = time.Now().Add(interval)
			}
		}
	}
}

// pinShardSyncs pins every sub-host's state transfer at (or below) the
// per-shard position of the merged boundary, so the transferred suffix feeds
// seamlessly into the restored mirror.
func (n *Node) pinShardSyncs(mergedSeq uint64) {
	perShard := mergedSeq / uint64(len(n.Hosts))
	if perShard == 0 {
		// Nothing merged yet: pin the per-shard snapshots to boundary 0 (a
		// maxSeq of 0 would mean "the peers' stable checkpoint", which could
		// lie beyond the restored merge boundary and leave the mirror a
		// permanent gap).
		perShard = 1
	}
	for _, h := range n.Hosts {
		h.SyncState(perShard)
	}
}

// Syncing reports whether any sub-host's pinned state transfer is still in
// flight (the recovery is complete once it returns false).
func (n *Node) Syncing() bool {
	for _, h := range n.Hosts {
		if h.Syncing() {
			return true
		}
	}
	return false
}

// startReagreement launches the re-agreement monitor (idempotent): while any
// sub-host's pinned sync is still in flight, it keeps collecting the peers'
// merged boundaries, and whenever a newer f+1-agreed boundary appears it
// re-restores the merged mirror there and re-pins every shard's sync. A
// pinned boundary that live peers pruned under continuous traffic (their GC
// retention floors advance with their own mirrors) therefore re-collects and
// re-pins instead of stalling forever.
func (n *Node) startReagreement() {
	n.recMu.Lock()
	defer n.recMu.Unlock()
	if n.rec == nil {
		n.rec = newMergedCollector(n.cfg.Cluster.F)
	}
	if n.recStop != nil {
		return
	}
	n.recStop = make(chan struct{})
	n.recDone = make(chan struct{})
	go n.runReagreement(n.recStop, n.recDone)
}

func (n *Node) runReagreement(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(n.recoverInterval())
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if !n.Syncing() {
				// Recovery complete: stop collecting votes.
				n.recMu.Lock()
				n.rec = nil
				n.recMu.Unlock()
				return
			}
			n.recMu.Lock()
			col := n.rec
			pinned := n.recPinned
			n.recMu.Unlock()
			if col == nil {
				return
			}
			if key, app, ok := col.best(pinned + 1); ok {
				// A newer agreed boundary: re-restore and re-pin. RestoreMerged
				// rejects boundaries behind the already-merged sequence; that
				// only means this node advanced past the collected sample, so
				// the next round collects a fresher one.
				if err := n.Exec.RestoreMerged(key.seq, key.dig, app); err == nil {
					n.recMu.Lock()
					n.recPinned = key.seq
					n.recMu.Unlock()
					n.pinShardSyncs(key.seq)
					n.Exec.met.reagreed.Inc()
					n.cfg.Flight.Record("reagree", -1,
						"re-agreed merged boundary %d (pinned %d was stalled)", key.seq, pinned)
					if n.cfg.Logger != nil {
						n.cfg.Logger.Printf("shard: re-agreed merged boundary %d (pinned %d was stalled)", key.seq, pinned)
					}
				}
			}
			// Ask after checking so this round's responses are in by the next
			// tick.
			n.askMerged()
		}
	}
}
