package shard

import (
	"sync"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/msg"
)

// DefaultEpoch is the default number of per-shard positions merged per shard
// epoch round.
const DefaultEpoch = 8

// ExecutorConfig configures the asynchronous execution stage of one replica.
type ExecutorConfig struct {
	// Shards is the number of shards merged.
	Shards int
	// Epoch is E, the number of positions each shard contributes per merge
	// round; 0 selects DefaultEpoch. Smaller epochs reduce merge latency,
	// larger ones amortize the round bookkeeping.
	Epoch int
	// NewApp builds the merged application the global sequence is applied
	// to; nil skips application execution (the merged digest chain is still
	// maintained).
	NewApp func() app.Application
}

// Executor is the asynchronous execution stage: it consumes the ordered
// spans of every shard off the ordering critical path (fed by the host
// observer on each sub-host, see Node) and merges them into one
// deterministic global sequence using shard epoch rounds. Round r emits
// positions [r*E, (r+1)*E) of shard 0, then shard 1, …, then shard S-1, so
// the merged sequence — and the merged application state and digest chain
// built from it — is a pure function of the per-shard ordered histories:
// every replica converges to the same global order with no cross-shard
// coordination.
//
// A round is emitted once every shard has ordered its E positions, so the
// merged sequence trails an idle shard (Mencius-style null-op filling is a
// recorded follow-on); per-key replies never wait for it, because they are
// served by the per-shard speculative execution.
type Executor struct {
	shards, epoch int

	// intake decouples the ordering hot path from the merge loop: observers
	// append under a lock held only for the append.
	mu     sync.Mutex
	intake []loggedRequest
	wake   chan struct{}
	stop   chan struct{}
	done   chan struct{}

	// merge-loop-owned per-shard sequencer state.
	pending [][]msg.Request          // in-order spans awaiting their round
	popped  []uint64                 // positions already merged per shard
	ooo     []map[uint64]msg.Request // out-of-order buffer per shard

	// merged state, guarded by stateMu.
	stateMu      sync.Mutex
	mergedSeq    uint64
	mergedDigest authn.Digest
	mergedApp    app.Application
	rounds       uint64
}

type loggedRequest struct {
	shard int
	pos   uint64
	req   msg.Request
}

// NewExecutor creates and starts the execution stage.
func NewExecutor(cfg ExecutorConfig) *Executor {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	e := &Executor{
		shards:  cfg.Shards,
		epoch:   cfg.Epoch,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make([][]msg.Request, cfg.Shards),
		popped:  make([]uint64, cfg.Shards),
		ooo:     make([]map[uint64]msg.Request, cfg.Shards),
	}
	for s := range e.ooo {
		e.ooo[s] = make(map[uint64]msg.Request)
	}
	if cfg.NewApp != nil {
		e.mergedApp = cfg.NewApp()
	}
	go e.run()
	return e
}

// Stop terminates the merge loop after draining any completed rounds.
func (e *Executor) Stop() {
	close(e.stop)
	<-e.done
}

// OnLogged feeds one ordered request at its absolute per-shard position. It
// is called from the host event loop (under the host lock) and only appends
// to the intake, keeping the ordering critical path free of execution work.
func (e *Executor) OnLogged(shard int, pos uint64, req msg.Request) {
	if shard < 0 || shard >= e.shards {
		return
	}
	e.mu.Lock()
	e.intake = append(e.intake, loggedRequest{shard: shard, pos: pos, req: req})
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// MergedSeq returns the number of requests merged into the global sequence.
func (e *Executor) MergedSeq() uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.mergedSeq
}

// MergedDigest returns the digest chain over the merged global sequence; two
// replicas that merged the same rounds report equal digests.
func (e *Executor) MergedDigest() authn.Digest {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.mergedDigest
}

// Rounds returns the number of completed shard epoch rounds.
func (e *Executor) Rounds() uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.rounds
}

// MergedApp returns a snapshot of the merged application (nil when the
// executor was configured without one).
func (e *Executor) MergedApp() app.Application {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if e.mergedApp == nil {
		return nil
	}
	return e.mergedApp.Clone()
}

func (e *Executor) run() {
	defer close(e.done)
	for {
		select {
		case <-e.wake:
			e.drainIntake()
			e.mergeRounds()
		case <-e.stop:
			e.drainIntake()
			e.mergeRounds()
			return
		}
	}
}

// drainIntake moves fed requests into the per-shard sequencers, restoring
// per-shard position order: a request logged at the next expected position
// extends the in-order span (and unblocks buffered successors); positions
// already consumed or already buffered are ignored (duplicate deliveries, or
// a post-switch re-log of a speculative tail — the merge keeps the first
// value it saw; re-syncing the mirror after an instance switch is a recorded
// follow-on).
func (e *Executor) drainIntake() {
	e.mu.Lock()
	batch := e.intake
	e.intake = nil
	e.mu.Unlock()
	for _, lr := range batch {
		s := lr.shard
		next := e.popped[s] + uint64(len(e.pending[s]))
		switch {
		case lr.pos < next:
			continue
		case lr.pos > next:
			if _, ok := e.ooo[s][lr.pos]; !ok && len(e.ooo[s]) < 4096 {
				e.ooo[s][lr.pos] = lr.req
			}
			continue
		}
		e.pending[s] = append(e.pending[s], lr.req)
		for {
			next = e.popped[s] + uint64(len(e.pending[s]))
			req, ok := e.ooo[s][next]
			if !ok {
				break
			}
			delete(e.ooo[s], next)
			e.pending[s] = append(e.pending[s], req)
		}
	}
}

// mergeRounds emits every complete shard epoch round: E requests of each
// shard in shard order, executed against the merged application and folded
// into the merged digest chain.
func (e *Executor) mergeRounds() {
	for {
		ready := true
		for s := 0; s < e.shards; s++ {
			if len(e.pending[s]) < e.epoch {
				ready = false
				break
			}
		}
		if !ready {
			return
		}
		round := make([]msg.Request, 0, e.shards*e.epoch)
		for s := 0; s < e.shards; s++ {
			round = append(round, e.pending[s][:e.epoch]...)
			e.pending[s] = e.pending[s][e.epoch:]
			e.popped[s] += uint64(e.epoch)
		}
		// Execute and fold outside any lock contended by the ordering path;
		// stateMu only serializes against snapshot readers.
		e.stateMu.Lock()
		for _, req := range round {
			d := req.Digest()
			e.mergedDigest = authn.HashAll(e.mergedDigest[:], d[:])
			if e.mergedApp != nil {
				e.mergedApp.Execute(req.Command)
			}
			e.mergedSeq++
		}
		e.rounds++
		e.stateMu.Unlock()
	}
}
