package shard

import (
	"fmt"
	"sync"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
)

// DefaultEpoch is the default number of per-shard positions merged per shard
// epoch round.
const DefaultEpoch = 8

// ExecutorConfig configures the asynchronous execution stage of one replica.
type ExecutorConfig struct {
	// Shards is the number of shards merged.
	Shards int
	// Epoch is E, the number of positions each shard contributes per merge
	// round; 0 selects DefaultEpoch. Smaller epochs reduce merge latency,
	// larger ones amortize the round bookkeeping.
	Epoch int
	// NewApp builds the merged application the global sequence is applied
	// to; nil skips application execution (the merged digest chain is still
	// maintained).
	NewApp func() app.Application
	// Metrics, when non-nil, receives the execution-stage series (merged
	// progress, per-shard throughput, null-op fills, lag/backlog gauges).
	Metrics *obs.Registry
	// Tracer, when non-nil, samples logged→merged latencies (the merge stage
	// of the request lifecycle).
	Tracer *obs.Tracer
}

// Executor is the asynchronous execution stage: it consumes the ordered
// spans of every shard off the ordering critical path (fed by the host
// observer on each sub-host, see Node) and merges them into one
// deterministic global sequence using shard epoch rounds. Round r emits
// positions [r*E, (r+1)*E) of shard 0, then shard 1, …, then shard S-1, so
// the merged sequence — and the merged application state and digest chain
// built from it — is a pure function of the per-shard ordered histories:
// every replica converges to the same global order with no cross-shard
// coordination.
//
// A round is emitted once every shard has ordered its E positions. An idle
// shard no longer stalls the merge indefinitely: LaggingShards exposes the
// demand signal, and the node asks the idle shard's leader to order
// Mencius-style null operations (ids.NullOp) that fill its epoch through the
// ordinary ordering path — deterministic on every replica because the
// null-ops are part of the shard's agreed history. Per-key replies never
// wait for the merge either way; they are served by the per-shard
// speculative execution.
type Executor struct {
	shards, epoch int

	// intake decouples the ordering hot path from the merge loop: observers
	// append under a lock held only for the append.
	mu     sync.Mutex
	intake []loggedRequest
	wake   chan struct{}
	stop   chan struct{}
	done   chan struct{}
	// ctrl carries whole-executor control actions (merged-state restore)
	// into the merge loop, which owns the sequencer state.
	ctrl chan func()

	// merge-loop-owned per-shard sequencer state.
	pending [][]msg.Request          // in-order spans awaiting their round
	popped  []uint64                 // positions already merged per shard
	ooo     []map[uint64]msg.Request // out-of-order buffer per shard

	// merged state, guarded by stateMu. inOrder mirrors each shard's next
	// in-order position (popped + pending) for the idle-shard demand probe.
	stateMu      sync.Mutex
	mergedSeq    uint64
	mergedDigest authn.Digest
	mergedApp    app.Application
	rounds       uint64
	inOrder      []uint64
	poppedView   []uint64
	oooView      []uint64

	// observability: met is always non-nil (no-op metrics without a
	// registry); tracer samples logged→merged latencies through a single
	// trace slot owned by the merge loop.
	met        *execMetrics
	tracer     *obs.Tracer
	traceSet   bool
	traceShard int
	tracePos   uint64
	traceT     time.Time
	traceCtx   obs.TraceContext
}

// loggedRequest is one intake entry: an ordered request at its per-shard
// position, or (reset) a history-reset marker telling the sequencer to drop
// buffered entries at positions >= pos. Resets travel the same stream as
// feeds so a reset is processed before the adopted entries re-fed after it.
type loggedRequest struct {
	shard int
	pos   uint64
	req   msg.Request
	reset bool
}

// NewExecutor creates and starts the execution stage.
func NewExecutor(cfg ExecutorConfig) *Executor {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	e := &Executor{
		shards:     cfg.Shards,
		epoch:      cfg.Epoch,
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		ctrl:       make(chan func()),
		pending:    make([][]msg.Request, cfg.Shards),
		popped:     make([]uint64, cfg.Shards),
		ooo:        make([]map[uint64]msg.Request, cfg.Shards),
		inOrder:    make([]uint64, cfg.Shards),
		poppedView: make([]uint64, cfg.Shards),
		oooView:    make([]uint64, cfg.Shards),
		tracer:     cfg.Tracer,
	}
	for s := range e.ooo {
		e.ooo[s] = make(map[uint64]msg.Request)
	}
	if cfg.NewApp != nil {
		e.mergedApp = cfg.NewApp()
	}
	e.met = newExecMetrics(cfg.Metrics, e)
	go e.run()
	return e
}

// Stop terminates the merge loop after draining any completed rounds.
func (e *Executor) Stop() {
	close(e.stop)
	<-e.done
}

// OnLogged feeds one ordered request at its absolute per-shard position. It
// is called from the host event loop (under the host lock) and only appends
// to the intake, keeping the ordering critical path free of execution work.
func (e *Executor) OnLogged(shard int, pos uint64, req msg.Request) {
	e.feed(loggedRequest{shard: shard, pos: pos, req: req})
}

// OnReset tells the shard's sequencer that the sub-host's history was
// replaced from position `from` on (an adopted init history at an instance
// switch): buffered speculative entries at or beyond it are dropped, so the
// adopted values re-fed right after take their place instead of losing the
// first-win race to a rolled-back tail. Positions already merged are beyond
// repair here — they were merged identically on every replica that merged
// them — so only the un-merged buffered tail is replaced.
func (e *Executor) OnReset(shard int, from uint64) {
	e.feed(loggedRequest{shard: shard, pos: from, reset: true})
}

func (e *Executor) feed(lr loggedRequest) {
	if lr.shard < 0 || lr.shard >= e.shards {
		return
	}
	e.mu.Lock()
	e.intake = append(e.intake, lr)
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// MergedSeq returns the number of requests merged into the global sequence.
func (e *Executor) MergedSeq() uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.mergedSeq
}

// MergedDigest returns the digest chain over the merged global sequence; two
// replicas that merged the same rounds report equal digests.
func (e *Executor) MergedDigest() authn.Digest {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.mergedDigest
}

// Rounds returns the number of completed shard epoch rounds.
func (e *Executor) Rounds() uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.rounds
}

// MergedApp returns a snapshot of the merged application (nil when the
// executor was configured without one).
func (e *Executor) MergedApp() app.Application {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if e.mergedApp == nil {
		return nil
	}
	return e.mergedApp.Clone()
}

// MergedSnapshot returns the merged mirror's state at its current round
// boundary: the merged sequence length, its digest chain, and the serialized
// merged application (nil without one). Rounds commit atomically under
// stateMu, so the snapshot always sits on a round boundary — the alignment
// RestoreMerged requires.
func (e *Executor) MergedSnapshot() (seq uint64, digest authn.Digest, appState []byte) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	var state []byte
	if e.mergedApp != nil {
		state = e.mergedApp.Snapshot()
	}
	return e.mergedSeq, e.mergedDigest, state
}

// RestoreMerged initializes the merged mirror from a peer's MergedSnapshot:
// a recovering replica adopts the merged sequence, digest chain, and merged
// application at a round boundary (its per-shard sub-hosts then catch up via
// statesync and feed the suffix). The caller is responsible for the f+1
// digest-agreement check across peers; seq must be a round-boundary multiple
// of shards*epoch and at or beyond the current merged sequence. The restore
// runs inside the merge loop, so it is also safe while feeds are live: the
// re-agreement retry uses it to move a stalled recovery to a newer boundary
// (buffered un-merged entries are dropped and entries below the new boundary
// are ignored — the re-pinned state transfers refill everything below it).
func (e *Executor) RestoreMerged(seq uint64, digest authn.Digest, appState []byte) error {
	errc := make(chan error, 1)
	fn := func() {
		errc <- e.applyRestore(seq, digest, appState)
	}
	select {
	case e.ctrl <- fn:
	case <-e.done:
		return fmt.Errorf("shard: executor stopped")
	}
	select {
	case err := <-errc:
		return err
	case <-e.done:
		return fmt.Errorf("shard: executor stopped")
	}
}

// applyRestore runs in the merge loop, which owns the sequencer state.
func (e *Executor) applyRestore(seq uint64, digest authn.Digest, appState []byte) error {
	round := uint64(e.shards) * uint64(e.epoch)
	if seq%round != 0 {
		return fmt.Errorf("shard: restore seq %d not on a round boundary (%d)", seq, round)
	}
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if seq < e.mergedSeq {
		return fmt.Errorf("shard: restore seq %d behind merged %d", seq, e.mergedSeq)
	}
	if e.mergedApp != nil && len(appState) > 0 {
		if err := e.mergedApp.Restore(appState); err != nil {
			return err
		}
	}
	perShard := seq / uint64(e.shards)
	for s := 0; s < e.shards; s++ {
		e.pending[s] = nil
		e.ooo[s] = make(map[uint64]msg.Request)
		e.popped[s] = perShard
		e.inOrder[s] = perShard
		e.poppedView[s] = perShard
		e.oooView[s] = 0
	}
	e.traceSet = false
	e.mergedSeq = seq
	e.mergedDigest = digest
	e.rounds = seq / round
	return nil
}

// LaggingShards returns the shards whose in-order position is behind the
// next merge round's requirement while at least one shard has un-merged
// progress: the demand signal for Mencius-style null-ops. A single ordered
// request anywhere is demand — the whole round fills (the busy shard's
// remaining epoch positions included) so the request reaches the merged
// mirror promptly instead of waiting for a full epoch of real traffic. An
// all-idle plane reports nothing and once the round merges the signal goes
// quiet, so null-ops never chain on their own.
func (e *Executor) LaggingShards() []int {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	merged := e.rounds * uint64(e.epoch)
	progressed := false
	for s := 0; s < e.shards; s++ {
		if e.inOrder[s] > merged {
			progressed = true
			break
		}
	}
	if !progressed {
		return nil
	}
	target := merged + uint64(e.epoch)
	var out []int
	for s := 0; s < e.shards; s++ {
		if e.inOrder[s] < target {
			out = append(out, s)
		}
	}
	return out
}

func (e *Executor) run() {
	defer close(e.done)
	for {
		select {
		case <-e.wake:
			e.drainIntake()
			e.mergeRounds()
			e.publishProgress()
		case fn := <-e.ctrl:
			fn()
		case <-e.stop:
			e.drainIntake()
			e.mergeRounds()
			e.publishProgress()
			return
		}
	}
}

// publishProgress mirrors each shard's next in-order position into the
// stateMu-guarded view the idle-shard demand probe reads.
func (e *Executor) publishProgress() {
	e.stateMu.Lock()
	for s := 0; s < e.shards; s++ {
		e.inOrder[s] = e.popped[s] + uint64(len(e.pending[s]))
		e.poppedView[s] = e.popped[s]
		e.oooView[s] = uint64(len(e.ooo[s]))
	}
	e.stateMu.Unlock()
}

// MergedFloor returns the per-shard position the merged mirror has consumed
// up to: the garbage-collection retention floor of shard s's sub-host. A
// replica must keep snapshots and bodies back to this point, or a peer
// recovering its mirror at the same boundary could never refill the gap.
func (e *Executor) MergedFloor(s int) uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if s < 0 || s >= e.shards {
		return 0
	}
	return e.poppedView[s]
}

// drainIntake moves fed requests into the per-shard sequencers, restoring
// per-shard position order: a request logged at the next expected position
// extends the in-order span (and unblocks buffered successors); positions
// already consumed or already buffered are ignored (duplicate deliveries, or
// a post-switch re-log of a speculative tail — the merge keeps the first
// value it saw; re-syncing the mirror after an instance switch is a recorded
// follow-on).
func (e *Executor) drainIntake() {
	e.mu.Lock()
	batch := e.intake
	e.intake = nil
	e.mu.Unlock()
	for _, lr := range batch {
		s := lr.shard
		if lr.reset {
			// Drop buffered (un-merged) entries at or beyond the reset point;
			// the adopted values re-fed after this marker replace them.
			if lr.pos > e.popped[s] {
				if keep := lr.pos - e.popped[s]; keep < uint64(len(e.pending[s])) {
					e.pending[s] = e.pending[s][:keep]
				}
			} else {
				e.pending[s] = nil
			}
			for pos := range e.ooo[s] {
				if pos >= lr.pos {
					delete(e.ooo[s], pos)
				}
			}
			continue
		}
		next := e.popped[s] + uint64(len(e.pending[s]))
		switch {
		case lr.pos < next:
			continue
		case lr.pos > next:
			if _, ok := e.ooo[s][lr.pos]; !ok && len(e.ooo[s]) < 4096 {
				e.ooo[s][lr.pos] = lr.req
			}
			continue
		}
		if e.tracer != nil && !e.traceSet && lr.req.Trace.Sampled() {
			// Trace this entry through to its merge (single slot: at most one
			// sampled entry in flight keeps the loop allocation-free). The
			// sampling decision is the client's, carried on the request.
			e.traceSet, e.traceShard, e.tracePos, e.traceT = true, s, lr.pos, time.Now()
			e.traceCtx = lr.req.Trace
		}
		e.pending[s] = append(e.pending[s], lr.req)
		for {
			next = e.popped[s] + uint64(len(e.pending[s]))
			req, ok := e.ooo[s][next]
			if !ok {
				break
			}
			delete(e.ooo[s], next)
			e.pending[s] = append(e.pending[s], req)
		}
	}
}

// mergeRounds emits every complete shard epoch round: E requests of each
// shard in shard order, executed against the merged application and folded
// into the merged digest chain.
func (e *Executor) mergeRounds() {
	for {
		ready := true
		for s := 0; s < e.shards; s++ {
			if len(e.pending[s]) < e.epoch {
				ready = false
				break
			}
		}
		if !ready {
			return
		}
		round := make([]msg.Request, 0, e.shards*e.epoch)
		for s := 0; s < e.shards; s++ {
			round = append(round, e.pending[s][:e.epoch]...)
			e.pending[s] = e.pending[s][e.epoch:]
			e.popped[s] += uint64(e.epoch)
			if e.met.merged != nil {
				e.met.merged[s].Add(uint64(e.epoch))
			}
		}
		if e.traceSet && e.tracePos < e.popped[e.traceShard] {
			e.tracer.Record(e.traceCtx, obs.StageMerge, e.traceShard, e.traceT, time.Since(e.traceT))
			e.traceSet = false
			e.traceCtx = obs.TraceContext{}
		}
		// Execute and fold outside any lock contended by the ordering path;
		// stateMu only serializes against snapshot readers.
		e.stateMu.Lock()
		for _, req := range round {
			d := req.Digest()
			e.mergedDigest = authn.HashAll(e.mergedDigest[:], d[:])
			// Null operations advance the sequence and the digest chain but
			// execute nothing (they exist only to fill idle shards' epochs).
			if e.mergedApp != nil && req.Client != ids.NullOp {
				e.mergedApp.Execute(req.Command)
			}
			if req.Client == ids.NullOp {
				e.met.nullOps.Inc()
			}
			e.mergedSeq++
		}
		e.rounds++
		e.met.mergedSeq.Set(int64(e.mergedSeq))
		e.met.rounds.Inc()
		e.stateMu.Unlock()
	}
}
