package shard

import (
	"log"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// NodeConfig configures one physical replica of the sharded ordering plane.
type NodeConfig struct {
	// Shards is the number of parallel shards (S).
	Shards int
	// Cluster describes the replica group (unrotated; every shard rotates
	// its own lead from it).
	Cluster ids.Cluster
	// Replica is this replica's identifier.
	Replica ids.ProcessID
	// Keys is the cryptographic key store.
	Keys *authn.KeyStore
	// Endpoint attaches the replica to the network; the node's router owns
	// its inbox.
	Endpoint transport.Endpoint
	// NewApp builds one application partition per shard plus the merged
	// application of the execution stage; nil selects a null application.
	NewApp func() app.Application
	// NewProtocol builds the per-instance protocol factory of one shard,
	// given the shard's rotated cluster (composition packages provide it,
	// e.g. azyzzyva.ReplicaFactory).
	NewProtocol func(shard int, cluster ids.Cluster) host.ProtocolFactory
	// Batch is the per-shard batch assembler policy.
	Batch host.BatchPolicy
	// TimestampWindow is the per-client timestamp window width per shard.
	TimestampWindow int
	// Epoch is the execution stage's merge round length (0 = DefaultEpoch).
	Epoch int
	// CheckpointInterval, MaxUncheckpointed, InstrumentHistories,
	// TickInterval, Ops, and Logger are forwarded to every sub-host.
	CheckpointInterval  int
	MaxUncheckpointed   int
	InstrumentHistories bool
	TickInterval        time.Duration
	Ops                 *authn.OpCounter
	Logger              *log.Logger
}

// Node is one physical replica of the sharded plane: S sub-hosts (one
// complete Abstract composition replica per shard, each with a different
// leader assignment) over one network endpoint, plus the asynchronous
// execution stage merging the shards' ordered spans.
type Node struct {
	cfg    NodeConfig
	Router *Router
	// Hosts holds the per-shard replica hosts (index = shard).
	Hosts []*host.Host
	// Exec is the node's asynchronous execution stage.
	Exec *Executor
}

// Lead returns the replica leading shard s (position 0 of the shard's
// rotated chain order): replica s mod N.
func Lead(cluster ids.Cluster, s int) ids.ProcessID {
	return cluster.WithLead(s % cluster.N).Head()
}

// NewNode builds a sharded replica. Start must be called to begin
// processing.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NewApp == nil {
		cfg.NewApp = func() app.Application { return app.NewNull(0) }
	}
	n := &Node{
		cfg:    cfg,
		Router: NewRouter(cfg.Endpoint, cfg.Shards),
		Exec: NewExecutor(ExecutorConfig{
			Shards: cfg.Shards,
			Epoch:  cfg.Epoch,
			NewApp: cfg.NewApp,
		}),
	}
	for s := 0; s < cfg.Shards; s++ {
		cl := cfg.Cluster.WithLead(s % cfg.Cluster.N)
		h := host.New(host.Config{
			Cluster:             cl,
			Replica:             cfg.Replica,
			Keys:                cfg.Keys,
			App:                 cfg.NewApp(),
			Endpoint:            n.Router.Endpoint(s),
			FirstInstance:       1,
			NewProtocol:         cfg.NewProtocol(s, cl),
			Batch:               cfg.Batch,
			TimestampWindow:     cfg.TimestampWindow,
			CheckpointInterval:  cfg.CheckpointInterval,
			MaxUncheckpointed:   cfg.MaxUncheckpointed,
			InstrumentHistories: cfg.InstrumentHistories,
			TickInterval:        cfg.TickInterval,
			Ops:                 cfg.Ops,
			Logger:              cfg.Logger,
		})
		h.SetObserver(&execFeed{exec: n.Exec, shard: s})
		n.Hosts = append(n.Hosts, h)
	}
	return n
}

// Start launches every sub-host's event loop.
func (n *Node) Start() {
	for _, h := range n.Hosts {
		h.Start()
	}
}

// Stop terminates the sub-hosts, the router, and the execution stage.
func (n *Node) Stop() {
	for _, h := range n.Hosts {
		h.Stop()
	}
	n.Router.Close()
	n.Exec.Stop()
}

// Host returns the sub-host of shard s.
func (n *Node) Host(s int) *host.Host { return n.Hosts[s] }

// execFeed adapts the host observer to the execution stage: every logged
// request is handed to the executor at its absolute per-shard position.
type execFeed struct {
	exec  *Executor
	shard int
}

func (f *execFeed) RequestLogged(inst core.InstanceID, req msg.Request, pos uint64) {
	f.exec.OnLogged(f.shard, pos, req)
}

// RequestAdopted implements host.HistoryAdopter: entries adopted from an
// init history during an instance switch fill any per-shard sequencer gap
// left by ORDERs this replica never received (positions already merged are
// ignored by the executor's first-win rule).
func (f *execFeed) RequestAdopted(inst core.InstanceID, req msg.Request, pos uint64) {
	f.exec.OnLogged(f.shard, pos, req)
}

func (f *execFeed) InstanceStopped(inst core.InstanceID)   {}
func (f *execFeed) InstanceActivated(inst core.InstanceID) {}

var (
	_ host.Observer       = (*execFeed)(nil)
	_ host.HistoryAdopter = (*execFeed)(nil)
)
