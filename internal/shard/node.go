package shard

import (
	"fmt"
	"log"
	"sync"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
	"abstractbft/internal/transport"
)

// NodeConfig configures one physical replica of the sharded ordering plane.
type NodeConfig struct {
	// Shards is the number of parallel shards (S).
	Shards int
	// Cluster describes the replica group (unrotated; every shard rotates
	// its own lead from it).
	Cluster ids.Cluster
	// Replica is this replica's identifier.
	Replica ids.ProcessID
	// Keys is the cryptographic key store.
	Keys *authn.KeyStore
	// Endpoint attaches the replica to the network; the node's router owns
	// its inbox.
	Endpoint transport.Endpoint
	// NewApp builds one application partition per shard plus the merged
	// application of the execution stage; nil selects a null application.
	NewApp func() app.Application
	// NewProtocol builds the per-instance protocol factory of one shard,
	// given the shard's rotated cluster (composition packages provide it,
	// e.g. azyzzyva.ReplicaFactory).
	NewProtocol func(shard int, cluster ids.Cluster) host.ProtocolFactory
	// Batch is the per-shard batch assembler policy.
	Batch host.BatchPolicy
	// TimestampWindow is the per-client timestamp window width per shard.
	TimestampWindow int
	// Epoch is the execution stage's merge round length (0 = DefaultEpoch).
	Epoch int
	// NullOpInterval is how often the node probes the execution stage for
	// lagging shards and asks the leaders it runs to order Mencius-style
	// null-ops (one per lagging led shard per probe). 0 selects
	// DefaultNullOpInterval; negative disables null-ops (an idle shard then
	// stalls the merge, the pre-statesync behaviour).
	NullOpInterval time.Duration
	// RecoverRetryInterval is the poll period of the recovery control plane:
	// the boundary-collection rounds of RecoverFromPeers and the
	// re-agreement monitor that re-pins a stalled sync at a newer boundary.
	// 0 selects DefaultRecoverRetryInterval.
	RecoverRetryInterval time.Duration
	// CheckpointInterval, MaxUncheckpointed, DisableGC, InstrumentHistories,
	// TickInterval, Ops, and Logger are forwarded to every sub-host.
	CheckpointInterval  int
	MaxUncheckpointed   int
	DisableGC           bool
	InstrumentHistories bool
	TickInterval        time.Duration
	Ops                 *authn.OpCounter
	Logger              *log.Logger
	// Metrics, when non-nil, instruments the node: every sub-host registers
	// its series labeled by shard, and the execution stage adds merge
	// progress, lag, and backlog series.
	Metrics *obs.Registry
	// Tracer, when non-nil, records lifecycle stages of client-sampled
	// requests across the sub-hosts and the execution stage.
	Tracer *obs.Tracer
	// Flight, when non-nil, receives the node's protocol flight-recorder
	// events: every sub-host's switches/aborts/checkpoints/statesync phases
	// (shard-labelled) plus the recovery plane's re-agreements.
	Flight *obs.Flight
	// ProtocolName, when non-nil, names the protocol of an instance for the
	// compose_active_protocol gauge of every sub-host.
	ProtocolName func(core.InstanceID) string
}

// DefaultNullOpInterval is the default idle-shard probe period: fast enough
// that an idle shard delays a waiting merge round by a few milliseconds per
// epoch position, slow enough to stay negligible next to real traffic.
const DefaultNullOpInterval = 2 * time.Millisecond

// DefaultRecoverRetryInterval is the default recovery-plane poll period:
// short enough that a pruned pinned boundary re-pins within a few checkpoint
// intervals of live traffic, long enough that collection rounds stay
// negligible next to the transfers themselves.
const DefaultRecoverRetryInterval = 100 * time.Millisecond

// Node is one physical replica of the sharded plane: S sub-hosts (one
// complete Abstract composition replica per shard, each with a different
// leader assignment) over one network endpoint, plus the asynchronous
// execution stage merging the shards' ordered spans.
type Node struct {
	cfg    NodeConfig
	Router *Router
	// Hosts holds the per-shard replica hosts (index = shard).
	Hosts []*host.Host
	// Exec is the node's asynchronous execution stage.
	Exec *Executor

	nullStop chan struct{}
	nullDone chan struct{}

	// Recovery control plane (recover.go): the control loop answering
	// MergedQuery messages, the collector of an in-flight recovery, and the
	// re-agreement monitor re-pinning stalled syncs.
	ctrlOnce sync.Once
	ctrlDone chan struct{}
	recMu    sync.Mutex
	rec      *mergedCollector
	recAsks  int
	// recPinned is the merged boundary the shard syncs are currently pinned
	// at (guarded by recMu).
	recPinned uint64
	recStop   chan struct{}
	recDone   chan struct{}
}

// Lead returns the replica leading shard s (position 0 of the shard's
// rotated chain order): replica s mod N.
func Lead(cluster ids.Cluster, s int) ids.ProcessID {
	return cluster.WithLead(s % cluster.N).Head()
}

// NewNode builds a sharded replica. Start must be called to begin
// processing.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NewApp == nil {
		cfg.NewApp = func() app.Application { return app.NewNull(0) }
	}
	n := &Node{
		cfg:    cfg,
		Router: NewRouter(cfg.Endpoint, cfg.Shards),
		Exec: NewExecutor(ExecutorConfig{
			Shards:  cfg.Shards,
			Epoch:   cfg.Epoch,
			NewApp:  cfg.NewApp,
			Metrics: cfg.Metrics,
			Tracer:  cfg.Tracer,
		}),
	}
	for s := 0; s < cfg.Shards; s++ {
		s := s
		cl := cfg.Cluster.WithLead(s % cfg.Cluster.N)
		// Each sub-host logs under a shard-tagged prefix so multi-shard logs
		// stay attributable to the shard that emitted them.
		logger := cfg.Logger
		if logger != nil && cfg.Shards > 1 {
			logger = log.New(logger.Writer(), logger.Prefix()+fmt.Sprintf("[s%d] ", s), logger.Flags())
		}
		h := host.New(host.Config{
			Cluster:            cl,
			Replica:            cfg.Replica,
			Keys:               cfg.Keys,
			App:                cfg.NewApp(),
			Endpoint:           n.Router.Endpoint(s),
			FirstInstance:      1,
			NewProtocol:        cfg.NewProtocol(s, cl),
			Batch:              cfg.Batch,
			TimestampWindow:    cfg.TimestampWindow,
			CheckpointInterval: cfg.CheckpointInterval,
			MaxUncheckpointed:  cfg.MaxUncheckpointed,
			DisableGC:          cfg.DisableGC,
			// GC must not outrun the merged mirror: a recovering peer
			// restores its mirror at this node's merge boundary and needs a
			// snapshot (and bodies) reaching back to it.
			RetainFloor:         func() uint64 { return n.Exec.MergedFloor(s) },
			InstrumentHistories: cfg.InstrumentHistories,
			TickInterval:        cfg.TickInterval,
			Ops:                 cfg.Ops,
			Logger:              logger,
			Metrics:             cfg.Metrics,
			MetricsLabels:       shardLabel(s),
			Tracer:              cfg.Tracer,
			Shard:               s,
			Flight:              cfg.Flight,
			ProtocolName:        cfg.ProtocolName,
		})
		h.SetObserver(&execFeed{exec: n.Exec, shard: s})
		n.Hosts = append(n.Hosts, h)
	}
	return n
}

// Start launches every sub-host's event loop, the recovery control loop
// (answering peers' merged-boundary queries), and the idle-shard null-op
// probe.
func (n *Node) Start() {
	n.startControl()
	for _, h := range n.Hosts {
		h.Start()
	}
	interval := n.cfg.NullOpInterval
	if interval == 0 {
		interval = DefaultNullOpInterval
	}
	if interval > 0 {
		n.nullStop = make(chan struct{})
		n.nullDone = make(chan struct{})
		go n.runNullOps(interval)
	}
}

// runNullOps periodically asks the leaders this replica runs to fill lagging
// shards' epochs with null operations, so an idle shard does not stall the
// cross-shard merge rounds other shards are waiting to complete.
func (n *Node) runNullOps(interval time.Duration) {
	defer close(n.nullDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.nullStop:
			return
		case <-ticker.C:
			for _, s := range n.Exec.LaggingShards() {
				if Lead(n.cfg.Cluster, s) == n.cfg.Replica {
					n.Hosts[s].OrderNullOp()
				}
			}
		}
	}
}

// Stop terminates the sub-hosts, the re-agreement monitor, the router (which
// ends the control loop), the null-op probe, and the execution stage.
func (n *Node) Stop() {
	for _, h := range n.Hosts {
		h.Stop()
	}
	n.recMu.Lock()
	recStop, recDone := n.recStop, n.recDone
	n.recStop, n.recDone = nil, nil
	n.recMu.Unlock()
	if recStop != nil {
		close(recStop)
		<-recDone
	}
	if n.nullStop != nil {
		close(n.nullStop)
		<-n.nullDone
	}
	n.Router.Close()
	if n.ctrlDone != nil {
		<-n.ctrlDone
	}
	n.Exec.Stop()
}

// Host returns the sub-host of shard s.
func (n *Node) Host(s int) *host.Host { return n.Hosts[s] }

// Recover catches a freshly restarted node up to the live plane: it adopts a
// peer's merged-mirror snapshot (the caller must have verified it against
// f+1 peers — merged state is a pure function of the agreed per-shard
// histories, so equal (seq, digest) across f+1 nodes pins it; RecoverFromPeers
// performs that collection over the network), then starts the node and
// state-syncs every sub-host from its peers, pinning each shard's snapshot
// at or below the restored merge boundary so the suffix feeds seamlessly
// into the restored mirror. It must be called instead of Start, before any
// traffic reaches the node.
//
// The pinned boundary is fixed at call time, while the peers' GC retention
// floor advances with their own merged mirrors; under heavy concurrent
// traffic a peer can prune the pinned snapshot before f+1 responses land.
// Recover therefore starts the re-agreement monitor: while any sub-host's
// pinned sync is still in flight, the node keeps collecting the peers'
// merged boundaries and, whenever a newer f+1-agreed one appears, restores
// the mirror there and re-pins the syncs — a pruned pin re-collects and
// re-pins instead of stalling.
func (n *Node) Recover(mergedSeq uint64, mergedDigest authn.Digest, mergedApp []byte) error {
	if err := n.Exec.RestoreMerged(mergedSeq, mergedDigest, mergedApp); err != nil {
		return err
	}
	n.recMu.Lock()
	n.recPinned = mergedSeq
	n.recMu.Unlock()
	n.Start()
	n.pinShardSyncs(mergedSeq)
	n.startReagreement()
	return nil
}

// execFeed adapts the host observer to the execution stage: every logged
// request is handed to the executor at its absolute per-shard position.
type execFeed struct {
	exec  *Executor
	shard int
}

func (f *execFeed) RequestLogged(inst core.InstanceID, req msg.Request, pos uint64) {
	f.exec.OnLogged(f.shard, pos, req)
}

// RequestAdopted implements host.HistoryAdopter: entries adopted from an
// init history during an instance switch fill any per-shard sequencer gap
// left by ORDERs this replica never received (positions already merged are
// ignored by the executor's first-win rule).
func (f *execFeed) RequestAdopted(inst core.InstanceID, req msg.Request, pos uint64) {
	f.exec.OnLogged(f.shard, pos, req)
}

// HistoryReset implements host.HistoryResetter: when an instance switch
// adopts an init history, buffered speculative entries the adoption rolled
// back are dropped before the adopted values are re-fed, so the merged
// mirror takes the agreed values instead of keeping first-logged stale ones.
func (f *execFeed) HistoryReset(inst core.InstanceID, baseSeq uint64) {
	f.exec.OnReset(f.shard, baseSeq)
}

func (f *execFeed) InstanceStopped(inst core.InstanceID)   {}
func (f *execFeed) InstanceActivated(inst core.InstanceID) {}

var (
	_ host.Observer        = (*execFeed)(nil)
	_ host.HistoryAdopter  = (*execFeed)(nil)
	_ host.HistoryResetter = (*execFeed)(nil)
)
