package shard

import (
	"context"
	"fmt"
	"time"

	"abstractbft/internal/core"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
)

// ClientConfig configures a sharded client.
type ClientConfig struct {
	// Shards is the number of shards (must match the replica plane).
	Shards int
	// Extract maps requests to their application key; nil selects
	// FullCommandKey.
	Extract KeyExtractor
	// Env is the client environment bound to the client's real endpoint;
	// the client's router takes the endpoint's inbox over.
	Env core.ClientEnv
	// NewInstanceFactory builds the client-side instance factory of one
	// shard from its (rotated) environment — the same factory the unsharded
	// plane uses (e.g. azyzzyva.InstanceFactory).
	NewInstanceFactory func(env core.ClientEnv) core.InstanceFactory
	// Pipeline, when non-nil, makes every per-shard composer a pipelining
	// one with these options (invocations of one shard proceed
	// concurrently up to Depth).
	Pipeline *core.PipelineOptions
}

// shardInvoker is the per-shard client handle (a Composer or a
// PipelinedComposer).
type shardInvoker interface {
	Invoke(ctx context.Context, req msg.Request) ([]byte, error)
	ActiveInstance() core.InstanceID
	Switches() uint64
}

// Client is a sharded-plane client: it routes every request to the shard
// owning the request's key and invokes that shard's composer. Per-shard
// composers run the unmodified client-side composition protocol (ACP), so
// aborts and instance switches are handled independently per shard. One
// client identity spans all shards; the caller's timestamps must be unique
// and increasing across the whole client (each shard then sees an increasing
// subsequence, and the replica-side timestamp window absorbs in-flight
// reordering).
type Client struct {
	cfg       ClientConfig
	router    *Router
	invokers  []shardInvoker
	pipelined []*core.PipelinedComposer
	tracer    *obs.Tracer
}

// NewClient builds a sharded client over the environment's endpoint.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Extract == nil {
		cfg.Extract = FullCommandKey
	}
	if cfg.NewInstanceFactory == nil {
		return nil, fmt.Errorf("shard: missing instance factory")
	}
	c := &Client{cfg: cfg, router: NewRouter(cfg.Env.Endpoint, cfg.Shards)}
	for s := 0; s < cfg.Shards; s++ {
		env := cfg.Env
		env.Cluster = env.Cluster.WithLead(s % env.Cluster.N)
		env.Endpoint = c.router.Endpoint(s)
		if cfg.Pipeline != nil {
			pc, err := core.NewPipelinedComposer(env, cfg.NewInstanceFactory, 1, *cfg.Pipeline)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("shard: client for shard %d: %w", s, err)
			}
			c.invokers = append(c.invokers, pc)
			c.pipelined = append(c.pipelined, pc)
			continue
		}
		comp, err := core.NewComposer(cfg.NewInstanceFactory(env), 1)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard: client for shard %d: %w", s, err)
		}
		c.invokers = append(c.invokers, comp)
	}
	return c, nil
}

// Shards returns the number of shards.
func (c *Client) Shards() int { return c.cfg.Shards }

// ShardFor returns the shard the request routes to.
func (c *Client) ShardFor(req msg.Request) int {
	return ShardOf(c.cfg.Extract(req), c.cfg.Shards)
}

// SetTracer installs the client-side tracer that makes the cluster's head
// sampling decision: one in every N invocations gets a fresh trace ID stamped
// onto the request, which then rides the wire through batches, protocol
// messages, and retransmissions, so every process downstream records spans
// under the same trace. Call before traffic flows.
func (c *Client) SetTracer(t *obs.Tracer) { c.tracer = t }

// Invoke routes the request to its key's shard and blocks until it commits
// there (or ctx is cancelled).
func (c *Client) Invoke(ctx context.Context, req msg.Request) ([]byte, error) {
	shard := c.ShardFor(req)
	if tc := c.tracer.NewTrace(); tc.Sampled() {
		// Stamp the request so downstream spans parent under the root span
		// (span ID = trace ID), then record the root covering the whole
		// send→commit round trip.
		req.Trace = obs.TraceContext{TraceID: tc.TraceID, Parent: tc.TraceID}
		start := time.Now()
		reply, err := c.invokers[shard].Invoke(ctx, req)
		c.tracer.Record(tc, obs.StageSend, shard, start, time.Since(start))
		return reply, err
	}
	return c.invokers[shard].Invoke(ctx, req)
}

// ActiveInstance returns the active instance of shard s's composition.
func (c *Client) ActiveInstance(s int) core.InstanceID { return c.invokers[s].ActiveInstance() }

// Switches returns the instance switches performed on shard s.
func (c *Client) Switches(s int) uint64 { return c.invokers[s].Switches() }

// Close stops the per-shard composers and the router.
func (c *Client) Close() {
	for _, pc := range c.pipelined {
		pc.Close()
	}
	if c.router != nil {
		c.router.Close()
	}
}
