package shard

import (
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func execReq(ts uint64, key, value string) msg.Request {
	return msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(key, value)}
}

func waitMerged(t *testing.T, e *Executor, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.MergedSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("merged %d, want %d", e.MergedSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExecutorResyncReplacesSpeculativeTail: an un-merged speculative entry
// buffered for a shard is replaced — not kept under the first-win rule —
// when the shard's history is reset (instance switch adopting an init
// history) and the agreed value is re-fed. The merged mirror then matches a
// reference executor that only ever saw the agreed sequence.
func TestExecutorResyncReplacesSpeculativeTail(t *testing.T) {
	newExec := func() *Executor {
		return NewExecutor(ExecutorConfig{Shards: 2, Epoch: 1, NewApp: func() app.Application { return app.NewKVStore() }})
	}
	e := newExec()
	defer e.Stop()
	ref := newExec()
	defer ref.Stop()

	// Round 0 merges on both.
	for _, x := range []*Executor{e, ref} {
		x.OnLogged(0, 0, execReq(1, "a", "r0"))
		x.OnLogged(1, 0, execReq(2, "b", "r0"))
	}
	waitMerged(t, e, 2)
	waitMerged(t, ref, 2)

	// Shard 0 position 1: e sees a speculative value that will be rolled
	// back; the reference only ever sees the agreed one.
	e.OnLogged(0, 1, execReq(3, "a", "SPECULATIVE"))
	// An out-of-order speculative entry beyond it must be dropped too.
	e.OnLogged(0, 3, execReq(5, "a", "SPEC-OOO"))
	// The switch adopts a history that replaces position 1 onward.
	e.OnReset(0, 1)
	e.OnLogged(0, 1, execReq(7, "a", "AGREED"))
	ref.OnLogged(0, 1, execReq(7, "a", "AGREED"))

	e.OnLogged(1, 1, execReq(8, "b", "r1"))
	ref.OnLogged(1, 1, execReq(8, "b", "r1"))
	waitMerged(t, e, 4)
	waitMerged(t, ref, 4)

	if e.MergedDigest() != ref.MergedDigest() {
		t.Fatal("merged digest kept the rolled-back speculative value")
	}
	kv := e.MergedApp().(*app.KVStore)
	if got := kv.Get("a"); got != "AGREED" {
		t.Fatalf("merged mirror kept stale value %q", got)
	}
}

// TestExecutorResetBelowPopped: a reset below the already-merged prefix
// clears all buffered entries for the shard (the merged prefix itself is
// final) and the shard resumes from its merged position.
func TestExecutorResetBelowPopped(t *testing.T) {
	e := NewExecutor(ExecutorConfig{Shards: 1, Epoch: 1, NewApp: func() app.Application { return app.NewKVStore() }})
	defer e.Stop()
	e.OnLogged(0, 0, execReq(1, "k", "v0"))
	waitMerged(t, e, 1)
	e.OnLogged(0, 1, execReq(2, "k", "spec"))
	e.OnReset(0, 0)
	e.OnLogged(0, 1, execReq(3, "k", "agreed"))
	waitMerged(t, e, 2)
	if got := e.MergedApp().(*app.KVStore).Get("k"); got != "agreed" {
		t.Fatalf("merged value %q after reset below popped", got)
	}
}

// TestExecutorMergedSnapshotRestore: a fresh executor restored from a peer's
// merged snapshot continues the digest chain and application state exactly,
// with its per-shard sequencers aligned to the restored boundary.
func TestExecutorMergedSnapshotRestore(t *testing.T) {
	newExec := func() *Executor {
		return NewExecutor(ExecutorConfig{Shards: 2, Epoch: 2, NewApp: func() app.Application { return app.NewKVStore() }})
	}
	live := newExec()
	defer live.Stop()
	var ts uint64
	feedRound := func(e *Executor, round uint64) {
		for s := 0; s < 2; s++ {
			for i := uint64(0); i < 2; i++ {
				ts++
				e.OnLogged(s, round*2+i, execReq(ts, "k", "v"))
			}
		}
	}
	feedRound(live, 0)
	feedRound(live, 1)
	waitMerged(t, live, 8)

	seq, dig, appState := live.MergedSnapshot()
	if seq != 8 {
		t.Fatalf("snapshot at %d, want 8", seq)
	}
	fresh := newExec()
	defer fresh.Stop()
	if err := fresh.RestoreMerged(seq, dig, appState); err != nil {
		t.Fatalf("RestoreMerged: %v", err)
	}
	if err := fresh.RestoreMerged(seq+1, dig, appState); err == nil {
		t.Fatal("off-boundary restore accepted")
	}

	// Both continue with the same suffix and stay identical.
	saved := ts
	feedRound(live, 2)
	ts = saved
	feedRound(fresh, 2)
	waitMerged(t, live, 12)
	waitMerged(t, fresh, 12)
	if live.MergedDigest() != fresh.MergedDigest() {
		t.Fatal("restored executor diverged from the live one")
	}
	a, b := live.MergedApp().Snapshot(), fresh.MergedApp().Snapshot()
	if string(a) != string(b) {
		t.Fatal("restored merged application diverged")
	}
}

// TestExecutorLaggingShards: the demand probe reports a shard only when
// another shard has filled the next round; an all-idle plane reports
// nothing.
func TestExecutorLaggingShards(t *testing.T) {
	e := NewExecutor(ExecutorConfig{Shards: 2, Epoch: 2})
	defer e.Stop()
	if lag := e.LaggingShards(); len(lag) != 0 {
		t.Fatalf("idle plane reported lagging shards %v", lag)
	}
	// A single ordered request is demand: the whole round must fill (the
	// busy shard's remaining epoch position included), or the request never
	// reaches the merged mirror.
	e.OnLogged(0, 0, execReq(1, "a", "v"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		lag := e.LaggingShards()
		if len(lag) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lagging shards = %v, want both (partial epoch is demand)", lag)
		}
		time.Sleep(time.Millisecond)
	}
	// Once the busy shard fills its epoch, only the idle one lags.
	e.OnLogged(0, 1, execReq(2, "a", "v"))
	for {
		lag := e.LaggingShards()
		if len(lag) == 1 && lag[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lagging shards = %v, want [1]", lag)
		}
		time.Sleep(time.Millisecond)
	}
}
