package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// Key partitioning must be a pure function of the key: stable across calls,
// independent of who computes it, and every shard reachable.
func TestShardOfDeterministicAndCovering(t *testing.T) {
	const shards = 4
	hit := make([]int, shards)
	for i := 0; i < 1024; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		s := ShardOf(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf out of range: %d", s)
		}
		if again := ShardOf(key, shards); again != s {
			t.Fatalf("ShardOf not deterministic: %d then %d", s, again)
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d unreachable over 1024 distinct keys", s)
		}
	}
	if ShardOf([]byte("anything"), 1) != 0 {
		t.Fatal("single-shard planes must route everything to shard 0")
	}
}

// Operations of one KV key must land on one shard regardless of the
// operation type, or per-key linearizability breaks.
func TestKVKeyExtractorRoutesOperationsTogether(t *testing.T) {
	put := msg.Request{Command: app.EncodeKVPut("lang", "go")}
	get := msg.Request{Command: app.EncodeKVGet("lang")}
	del := msg.Request{Command: app.EncodeKVDelete("lang")}
	const shards = 7
	want := ShardOf(KVKeyExtractor(put), shards)
	for _, req := range []msg.Request{get, del} {
		if got := ShardOf(KVKeyExtractor(req), shards); got != want {
			t.Fatalf("operation routed to shard %d, put went to %d", got, want)
		}
	}
}

func TestKeyedCommandRoundTrip(t *testing.T) {
	cmd := KeyedCommand(42, []byte("payload"))
	extract := PrefixKeyExtractor(8)
	key := extract(msg.Request{Command: cmd})
	if len(key) != 8 {
		t.Fatalf("prefix key has %d bytes, want 8", len(key))
	}
	other := extract(msg.Request{Command: KeyedCommand(42, []byte("different"))})
	if string(key) != string(other) {
		t.Fatal("same key must extract identically regardless of payload")
	}
}

func reqOf(client, ts uint64, payload string) msg.Request {
	return msg.Request{Client: ids.Client(int(client)), Timestamp: ts, Command: []byte(payload)}
}

// referenceMerge computes the documented merge: round r carries positions
// [r*E, (r+1)*E) of shard 0, then shard 1, ….
func referenceMerge(perShard [][]msg.Request, epoch int) (uint64, authn.Digest) {
	rounds := -1
	for _, h := range perShard {
		r := len(h) / epoch
		if rounds < 0 || r < rounds {
			rounds = r
		}
	}
	var acc authn.Digest
	var n uint64
	for r := 0; r < rounds; r++ {
		for _, h := range perShard {
			for _, req := range h[r*epoch : (r+1)*epoch] {
				d := req.Digest()
				acc = authn.HashAll(acc[:], d[:])
				n++
			}
		}
	}
	return n, acc
}

// The cross-shard merge must be a pure function of the per-shard histories:
// whatever order spans arrive in (even per-shard out of order), the merged
// sequence and digest chain converge to the epoch-round reference.
func TestExecutorCrossShardMergeOrdering(t *testing.T) {
	const shards, epoch = 3, 2
	perShard := make([][]msg.Request, shards)
	for s := 0; s < shards; s++ {
		for p := 0; p < 6; p++ {
			perShard[s] = append(perShard[s], reqOf(uint64(s), uint64(p+1), fmt.Sprintf("s%dp%d", s, p)))
		}
	}
	wantSeq, wantDigest := referenceMerge(perShard, epoch)
	if wantSeq != shards*6 {
		t.Fatalf("reference covers %d, want %d", wantSeq, shards*6)
	}

	feedOrders := [][3]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	for _, order := range feedOrders {
		e := NewExecutor(ExecutorConfig{Shards: shards, Epoch: epoch})
		for _, s := range order {
			// Feed this shard's span with its tail first (out of order), so
			// the per-shard sequencer has to restore position order.
			for p := len(perShard[s]) - 1; p >= 0; p-- {
				e.OnLogged(s, uint64(p), perShard[s][p])
			}
		}
		deadline := time.Now().Add(2 * time.Second)
		for e.MergedSeq() < wantSeq && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := e.MergedSeq(); got != wantSeq {
			t.Fatalf("order %v: merged %d requests, want %d", order, got, wantSeq)
		}
		if got := e.MergedDigest(); got != wantDigest {
			t.Fatalf("order %v: merged digest diverged from the epoch-round reference", order)
		}
		e.Stop()
	}
}

// Duplicate deliveries of a position must not advance the merge twice.
func TestExecutorIgnoresDuplicatePositions(t *testing.T) {
	e := NewExecutor(ExecutorConfig{Shards: 1, Epoch: 1})
	defer e.Stop()
	r := reqOf(0, 1, "once")
	e.OnLogged(0, 0, r)
	e.OnLogged(0, 0, r)
	e.OnLogged(0, 1, reqOf(0, 2, "two"))
	deadline := time.Now().Add(2 * time.Second)
	for e.MergedSeq() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := e.MergedSeq(); got != 2 {
		t.Fatalf("merged %d, want 2", got)
	}
	want := history.DigestHistory{r.Digest(), reqOf(0, 2, "two").Digest()}.Digest()
	if e.MergedDigest() != want {
		t.Fatal("duplicate delivery changed the merged sequence")
	}
}

// The router must deliver each shard's traffic only to that shard's
// endpoint, wrap outgoing sends, and expand coalesced packs.
func TestRouterShardIsolation(t *testing.T) {
	// Executor/merge not involved: pure routing.
	netw := newLoopEndpoint()
	r := NewRouter(netw, 2)
	defer r.Close()
	netw.inject(&Mark{Shard: 1, Payload: "for-one"})
	netw.inject("unmarked-goes-to-zero")
	select {
	case env := <-r.Endpoint(1).Inbox():
		if env.Payload != "for-one" {
			t.Fatalf("shard 1 received %v", env.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("shard 1 message not routed")
	}
	select {
	case env := <-r.Endpoint(0).Inbox():
		if env.Payload != "unmarked-goes-to-zero" {
			t.Fatalf("shard 0 received %v", env.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("unmarked message not routed to shard 0")
	}
	r.Endpoint(1).Send(ids.Replica(0), "out")
	sent := netw.lastSent()
	mk, ok := sent.(*Mark)
	if !ok || mk.Shard != 1 || mk.Payload != "out" {
		t.Fatalf("outgoing send not wrapped with the shard mark: %#v", sent)
	}
}

// loopEndpoint is a minimal transport.Endpoint test double: inject feeds the
// inbox, lastSent records the most recent outgoing payload.
type loopEndpoint struct {
	mu   sync.Mutex
	in   chan transport.Envelope
	sent []any
}

func newLoopEndpoint() *loopEndpoint {
	return &loopEndpoint{in: make(chan transport.Envelope, 64)}
}

func (l *loopEndpoint) ID() ids.ProcessID { return ids.Replica(0) }

func (l *loopEndpoint) Send(to ids.ProcessID, payload any) {
	l.mu.Lock()
	l.sent = append(l.sent, payload)
	l.mu.Unlock()
}

func (l *loopEndpoint) Inbox() <-chan transport.Envelope { return l.in }

func (l *loopEndpoint) Close() {}

func (l *loopEndpoint) inject(payload any) {
	l.in <- transport.Envelope{From: ids.Client(0), To: ids.Replica(0), Payload: payload}
}

func (l *loopEndpoint) lastSent() any {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.sent) == 0 {
		return nil
	}
	return l.sent[len(l.sent)-1]
}
