// Package shard implements the sharded multi-leader ordering plane: client
// requests are partitioned by application key across S parallel Abstract
// compositions (one per shard, each with its own leader assignment, batch
// assembler, and instance switching), multiplying the batched request plane
// by S leaders instead of one.
//
// Each shard is a complete composed protocol over the same replica group:
// shard s's chain/leader order is rotated so that replica (s mod N) is its
// head (ids.Cluster.WithLead), spreading the S ordering bottlenecks across
// the cluster. Requests are routed to shards by a deterministic hash of an
// application-defined key, so all requests touching one key are ordered and
// executed by the same shard — replies are linearizable per key.
//
// An asynchronous execution stage (Executor) consumes the ordered spans of
// every shard off the ordering critical path and merges them into one
// deterministic global sequence using shard epoch rounds: round r carries
// positions [r*E, (r+1)*E) of shard 0, then of shard 1, …, then of shard
// S-1. The merged sequence (and the merged application built from it) is a
// pure function of the per-shard histories, so all replicas converge to the
// same global order without any cross-shard coordination messages.
package shard

import (
	"encoding/binary"
	"hash/fnv"

	"abstractbft/internal/app"
	"abstractbft/internal/msg"
)

// KeyExtractor maps a request to its application key; requests with equal
// keys are routed to the same shard. Extractors must be deterministic.
type KeyExtractor func(req msg.Request) []byte

// FullCommandKey keys every request by its whole command (the default): two
// identical commands collide, everything else spreads uniformly.
func FullCommandKey(req msg.Request) []byte { return req.Command }

// PrefixKeyExtractor keys requests by the first n bytes of the command, the
// convention used by the keyed workload generators (an 8-byte big-endian key
// prefix).
func PrefixKeyExtractor(n int) KeyExtractor {
	return func(req msg.Request) []byte {
		if len(req.Command) < n {
			return req.Command
		}
		return req.Command[:n]
	}
}

// KeyedCommand builds a command carrying an 8-byte big-endian key prefix
// followed by the payload; PrefixKeyExtractor(8) recovers the key.
func KeyedCommand(key uint64, payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(out[:8], key)
	copy(out[8:], payload)
	return out
}

// KVKeyExtractor keys requests by the key of their encoded KV command
// (app.EncodeKVPut/Get/Delete), so every operation on one key routes to the
// same shard regardless of the operation type; malformed commands fall back
// to the full command.
func KVKeyExtractor(req msg.Request) []byte {
	if key, ok := app.KVKey(req.Command); ok {
		return []byte(key)
	}
	return req.Command
}

// ShardOf returns the shard a key belongs to: a deterministic FNV-1a hash of
// the key modulo the shard count.
func ShardOf(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(shards))
}
