// Package attack implements the four attacks of §6.1 used to evaluate the
// robustness of Aliph, the robust baselines, and R-Aliph:
//
//   - Client flooding: a Byzantine client repeatedly sends large garbage
//     messages to the replicas.
//   - Malformed client requests: a Byzantine client sends requests whose
//     authenticator only verifies at a subset of the replicas.
//   - Processing delay: a Byzantine replica (the primary/head) delays the
//     ordering of every request it handles by a fixed amount.
//   - Replica flooding: a Byzantine replica stops processing the protocol and
//     floods the other replicas with large garbage messages.
//
// Attacks run against the in-process transport: flooding is injected by
// dedicated goroutines, delays through the replica hosts' processing-delay
// hook, and malformed requests through clients that corrupt their
// authenticators.
package attack

import (
	"sync"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// FloodMessage is the garbage payload used by flooding attacks (9 kB in the
// paper).
type FloodMessage struct {
	Payload []byte
}

// The flooder runs on in-process endpoints (the attack experiments); the
// binary TCP codec deliberately does not carry it.
func init() { transport.RegisterWireType(&FloodMessage{}) } //wire:gobonly

// Flooder periodically sends large garbage messages from one process to a set
// of targets, modelling both the client-flooding and replica-flooding
// attacks.
type Flooder struct {
	endpoint transport.Endpoint
	targets  []ids.ProcessID
	size     int
	interval time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}
	sent     uint64
	mu       sync.Mutex
}

// NewFlooder creates a flooder sending size-byte messages to every target at
// the given interval (defaults: 9 kB every 200µs).
func NewFlooder(endpoint transport.Endpoint, targets []ids.ProcessID, size int, interval time.Duration) *Flooder {
	if size <= 0 {
		size = 9 * 1024
	}
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}
	return &Flooder{
		endpoint: endpoint,
		targets:  targets,
		size:     size,
		interval: interval,
		stopCh:   make(chan struct{}),
	}
}

// Start launches the flood.
func (f *Flooder) Start() {
	go func() {
		payload := &FloodMessage{Payload: make([]byte, f.size)}
		ticker := time.NewTicker(f.interval)
		defer ticker.Stop()
		for {
			select {
			case <-f.stopCh:
				return
			case <-ticker.C:
				for _, t := range f.targets {
					f.endpoint.Send(t, payload)
				}
				f.mu.Lock()
				f.sent += uint64(len(f.targets))
				f.mu.Unlock()
			}
		}
	}()
}

// Stop ends the flood.
func (f *Flooder) Stop() { f.stopOnce.Do(func() { close(f.stopCh) }) }

// Sent returns the number of flood messages sent.
func (f *Flooder) Sent() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sent
}

// CorruptAuthenticator returns a copy of the authenticator in which the
// entries for every replica outside `validFor` are corrupted; it models the
// malformed-client-request attack in which only a subset of the replicas
// (including the primary or head) can authenticate the request.
func CorruptAuthenticator(a authn.Authenticator, validFor map[ids.ProcessID]bool) authn.Authenticator {
	out := authn.Authenticator{Sender: a.Sender, Entries: make([]authn.AuthEntry, len(a.Entries))}
	copy(out.Entries, a.Entries)
	for i := range out.Entries {
		if !validFor[out.Entries[i].Receiver] {
			out.Entries[i].MAC[0] ^= 0xFF
		}
	}
	return out
}

// MalformedRequestSender repeatedly sends requests with corrupted
// authenticators to a set of replicas, modelling the malformed-client attack
// against protocols whose request messages carry MAC authenticators. The
// build function constructs the concrete protocol message given the corrupted
// authenticator and a fresh timestamp.
type MalformedRequestSender struct {
	endpoint transport.Endpoint
	targets  []ids.ProcessID
	build    func(ts uint64) any
	interval time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}
}

// NewMalformedRequestSender creates the attacker.
func NewMalformedRequestSender(endpoint transport.Endpoint, targets []ids.ProcessID, interval time.Duration, build func(ts uint64) any) *MalformedRequestSender {
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &MalformedRequestSender{
		endpoint: endpoint,
		targets:  targets,
		build:    build,
		interval: interval,
		stopCh:   make(chan struct{}),
	}
}

// Start launches the attack.
func (m *MalformedRequestSender) Start() {
	go func() {
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		ts := uint64(1)
		for {
			select {
			case <-m.stopCh:
				return
			case <-ticker.C:
				payload := m.build(ts)
				ts++
				for _, t := range m.targets {
					m.endpoint.Send(t, payload)
				}
			}
		}
	}()
}

// Stop ends the attack.
func (m *MalformedRequestSender) Stop() { m.stopOnce.Do(func() { close(m.stopCh) }) }

// DelayAttack describes the processing-delay attack: the target replica adds
// the given delay to the handling of every message.
type DelayAttack struct {
	// Target is the Byzantine replica (the primary in Backup/PBFT, the head
	// in Chain, an arbitrary replica in Quorum).
	Target ids.ProcessID
	// Delay is the added processing delay (10ms in the paper).
	Delay time.Duration
}

// Scenario names an attack scenario of Table III/IV/V.
type Scenario string

// The attack scenarios of §6.1.
const (
	ScenarioNone             Scenario = "none"
	ScenarioClientFlooding   Scenario = "client-flooding"
	ScenarioMalformedRequest Scenario = "malformed-requests"
	ScenarioProcessingDelay  Scenario = "processing-delay"
	ScenarioReplicaFlooding  Scenario = "replica-flooding"
)

// AllScenarios lists the scenarios in the order the paper's tables report
// them.
func AllScenarios() []Scenario {
	return []Scenario{
		ScenarioNone,
		ScenarioClientFlooding,
		ScenarioMalformedRequest,
		ScenarioProcessingDelay,
		ScenarioReplicaFlooding,
	}
}

// NoiseRequest builds a well-formed but useless request used by flooding
// clients that also want to exercise the protocol path.
func NoiseRequest(client ids.ProcessID, ts uint64, size int) msg.Request {
	return msg.Request{Client: client, Timestamp: ts, Command: make([]byte, size)}
}
