package attack

import (
	"testing"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/transport"
)

func TestFlooderSendsTraffic(t *testing.T) {
	net := transport.NewLocal(transport.Options{})
	defer net.Close()
	attacker := net.Endpoint(ids.Client(99))
	victim := net.Endpoint(ids.Replica(0))

	f := NewFlooder(attacker, []ids.ProcessID{ids.Replica(0)}, 1024, time.Millisecond)
	f.Start()
	defer f.Stop()

	deadline := time.After(2 * time.Second)
	received := 0
	for received < 5 {
		select {
		case env := <-victim.Inbox():
			if fm, ok := env.Payload.(*FloodMessage); ok {
				if len(fm.Payload) != 1024 {
					t.Fatalf("flood payload size %d", len(fm.Payload))
				}
				received++
			}
		case <-deadline:
			t.Fatalf("flood traffic not observed (received %d)", received)
		}
	}
	f.Stop()
	if f.Sent() == 0 {
		t.Fatalf("flooder reports zero sent messages")
	}
}

func TestCorruptAuthenticator(t *testing.T) {
	ks := authn.NewKeyStore("attack-test")
	cluster := ids.NewCluster(1)
	data := []byte("request")
	auth := ks.NewAuthenticator(ids.Client(0), cluster.Replicas(), data)
	// Only the primary (r0) keeps a valid entry.
	corrupted := CorruptAuthenticator(auth, map[ids.ProcessID]bool{ids.Replica(0): true})
	if err := ks.Verify(corrupted, ids.Replica(0), data); err != nil {
		t.Fatalf("entry for the primary should remain valid: %v", err)
	}
	for i := 1; i < cluster.N; i++ {
		if err := ks.Verify(corrupted, ids.Replica(i), data); err == nil {
			t.Fatalf("entry for replica %d should be corrupted", i)
		}
	}
	// The original must not be modified.
	for _, r := range cluster.Replicas() {
		if err := ks.Verify(auth, r, data); err != nil {
			t.Fatalf("original authenticator modified for %v: %v", r, err)
		}
	}
}

func TestScenarios(t *testing.T) {
	all := AllScenarios()
	if len(all) != 5 || all[0] != ScenarioNone {
		t.Fatalf("unexpected scenarios: %v", all)
	}
	req := NoiseRequest(ids.Client(1), 7, 9*1024)
	if len(req.Command) != 9*1024 || req.Timestamp != 7 {
		t.Fatalf("noise request malformed")
	}
}
