package obsctl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"abstractbft/internal/obs"
)

func span(trace, id, parent uint64, process, stage string, start int64) obs.Span {
	return obs.Span{TraceID: trace, SpanID: id, Parent: parent,
		Process: process, Stage: stage, Start: start, DurationNs: 1000}
}

func TestParseKey(t *testing.T) {
	for _, tc := range []struct {
		key, name string
		labels    map[string]string
	}{
		{"host_applied_seq", "host_applied_seq", nil},
		{`host_applied_seq{shard="2"}`, "host_applied_seq", map[string]string{"shard": "2"}},
		{`compose_active_protocol{shard="0",proto="quorum"}`, "compose_active_protocol",
			map[string]string{"shard": "0", "proto": "quorum"}},
	} {
		name, labels := ParseKey(tc.key)
		if name != tc.name {
			t.Errorf("ParseKey(%q) name = %q, want %q", tc.key, name, tc.name)
		}
		if len(labels) != len(tc.labels) {
			t.Fatalf("ParseKey(%q) labels = %v, want %v", tc.key, labels, tc.labels)
		}
		for k, v := range tc.labels {
			if labels[k] != v {
				t.Errorf("ParseKey(%q)[%s] = %q, want %q", tc.key, k, labels[k], v)
			}
		}
	}
}

// TestStitch checks that spans scattered across process dumps reassemble into
// one tree per trace ID, rooted at the client's root span, with orphans
// retained when a parent was evicted.
func TestStitch(t *testing.T) {
	dumps := []ProcessDump{
		{Traces: obs.TraceDump{Process: "client-0", Spans: []obs.Span{
			span(7, 7, 0, "client-0", "send", 100),
			span(9, 9, 0, "client-0", "send", 500),
		}}},
		{Traces: obs.TraceDump{Process: "replica-0", Spans: []obs.Span{
			span(7, 21, 7, "replica-0", "order", 110),
			span(7, 22, 7, "replica-0", "execute", 120),
		}}},
		{Traces: obs.TraceDump{Process: "replica-1", Spans: []obs.Span{
			span(7, 31, 7, "replica-1", "execute", 125),
			// Parent 999 was evicted from its ring: must surface as orphan.
			span(7, 32, 999, "replica-1", "merge", 130),
		}}},
	}
	traces := Stitch(dumps)
	if len(traces) != 2 {
		t.Fatalf("Stitch: got %d traces, want 2", len(traces))
	}
	// Newest first: trace 9 starts at 500.
	if traces[0].TraceID != 9 || traces[1].TraceID != 7 {
		t.Fatalf("Stitch order: got %d,%d want 9,7", traces[0].TraceID, traces[1].TraceID)
	}
	tr := traces[1]
	if tr.Spans != 5 {
		t.Errorf("trace 7: %d spans, want 5", tr.Spans)
	}
	if tr.Root == nil || tr.Root.Span.SpanID != 7 {
		t.Fatalf("trace 7: root = %+v, want span 7", tr.Root)
	}
	if len(tr.Root.Children) != 3 {
		t.Errorf("trace 7: root has %d children, want 3", len(tr.Root.Children))
	}
	if len(tr.Orphans) != 1 || tr.Orphans[0].Span.SpanID != 32 {
		t.Errorf("trace 7: orphans = %+v, want span 32", tr.Orphans)
	}
	if !tr.Covers(3) {
		t.Errorf("trace 7: processes %v, want 3 distinct", tr.Processes)
	}
	for _, stage := range []string{"send", "order", "execute", "merge"} {
		if !tr.HasStage(stage) {
			t.Errorf("trace 7: missing stage %q in %v", stage, tr.Stages)
		}
	}

	var b strings.Builder
	WriteTraces(&b, traces, 0)
	out := b.String()
	for _, want := range []string{"trace 0000000000000007", "client-0", "orphan"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTraces output missing %q:\n%s", want, out)
		}
	}
}

func TestHealthAndDivergence(t *testing.T) {
	mkDump := func(process string, applied0, applied1 float64, proto string) ProcessDump {
		return ProcessDump{
			Addr:    process + ":0",
			Process: process,
			Metrics: obs.Snapshot{
				Gauges: map[string]float64{
					`host_applied_seq{shard="0"}`:                              applied0,
					`host_applied_seq{shard="1"}`:                              applied1,
					"shard_merged_seq":                                         applied0 + applied1,
					`shard_merge_lag{shard="0"}`:                               2,
					`compose_active_protocol{shard="0",proto="` + proto + `"}`: 1,
					`compose_active_protocol{shard="0",proto="zlight"}`:        0,
				},
				Counters: map[string]uint64{
					`compose_switches_total{shard="0"}`: 1,
					`compose_switches_total{shard="1"}`: 2,
					`compose_aborts_total{shard="0"}`:   1,
					"shard_reagreements_total":          0,
				},
			},
			Traces: obs.TraceDump{Process: process, Total: 10},
			Flight: obs.FlightDump{Process: process, Total: 3},
		}
	}
	dumps := []ProcessDump{
		mkDump("replica-0", 100, 50, "quorum"),
		mkDump("replica-1", 100, 50, "quorum"),
		mkDump("replica-2", 100, 48, "quorum"),
		mkDump("replica-3", 10, 5, "chain"), // lagging AND on the wrong protocol
		{Addr: "replica-4:0", Process: "replica-4", Err: errors.New("connection refused")},
		// A client front door: counters and spans but no per-shard state. It
		// must ride in the health table yet stay out of the divergence checks
		// (its applied seq of 0 would otherwise trail every watermark).
		{
			Addr:    "client-0:0",
			Process: "client-0",
			Metrics: obs.Snapshot{Counters: map[string]uint64{"client_requests_total": 500}},
			Traces:  obs.TraceDump{Process: "client-0", Total: 4},
		},
	}
	healths := HealthAll(dumps)
	h := healths[0]
	if h.SumAppliedSeq() != 150 || h.MaxAppliedSeq() != 100 {
		t.Errorf("replica-0: sum=%v max=%v, want 150/100", h.SumAppliedSeq(), h.MaxAppliedSeq())
	}
	if h.Switches != 3 || h.Aborts != 1 {
		t.Errorf("replica-0: switches=%d aborts=%d, want 3/1", h.Switches, h.Aborts)
	}
	if h.Shards[0].ActiveProto != "quorum" {
		t.Errorf("replica-0 shard 0 proto = %q, want quorum", h.Shards[0].ActiveProto)
	}
	if h.SpanCount != 10 || h.FlightCount != 3 {
		t.Errorf("replica-0: spans=%d events=%d, want 10/3", h.SpanCount, h.FlightCount)
	}

	flags := Divergence(healths, 1, 16)
	if len(flags) != 3 {
		t.Fatalf("Divergence: got %d flags, want 3:\n%s", len(flags), strings.Join(flags, "\n"))
	}
	joined := strings.Join(flags, "\n")
	for _, want := range []string{"replica-4: unreachable", `"chain" disagrees`, "trails the f+1 watermark"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Divergence flags missing %q:\n%s", want, joined)
		}
	}
	// Within slack: replica-2 (2 behind) must not be flagged.
	if strings.Contains(joined, "replica-2") {
		t.Errorf("replica-2 within slack flagged:\n%s", joined)
	}
	// Observer process (no shard state): never flagged.
	if strings.Contains(joined, "client-0") {
		t.Errorf("shard-less client flagged as divergent:\n%s", joined)
	}

	var b strings.Builder
	WriteHealthTable(&b, healths)
	out := b.String()
	for _, want := range []string{"PROCESS", "replica-0", "150", "UNREACHABLE"} {
		if !strings.Contains(out, want) {
			t.Errorf("health table missing %q:\n%s", want, out)
		}
	}
}

// TestScrapeLive round-trips the scraper against a real observability server:
// the JSON documents served by obs.ServeObs must decode back into the same
// structures obsctl stitches and summarizes.
func TestScrapeLive(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("host_applied_seq", "shard", "0").Set(42)
	reg.Counter("compose_switches_total").Add(2)
	spans := obs.NewSpanRing("proc-under-test", 8)
	tr := obs.NewTracerRing(reg, 1, spans)
	tc := tr.NewTrace()
	tr.Record(tc, obs.StageExecute, 0, time.Now(), time.Millisecond)
	flight := obs.NewFlight("proc-under-test", 8)
	flight.Record("switch", 0, "instance %d -> %d", 1, 2)

	srv, err := obs.ServeObs("127.0.0.1:0", obs.ServeConfig{Registry: reg, Spans: spans, Flight: flight})
	if err != nil {
		t.Fatalf("ServeObs: %v", err)
	}
	defer srv.Close()

	dumps := ScrapeAll([]string{srv.Addr()}, time.Second)
	d := dumps[0]
	if d.Err != nil {
		t.Fatalf("scrape: %v", d.Err)
	}
	if d.Process != "proc-under-test" {
		t.Errorf("process = %q, want proc-under-test", d.Process)
	}
	h := HealthOf(d)
	if h.SumAppliedSeq() != 42 || h.Switches != 2 {
		t.Errorf("health: applied=%v switches=%d, want 42/2", h.SumAppliedSeq(), h.Switches)
	}
	if h.SpanCount != 1 || h.FlightCount != 1 {
		t.Errorf("health: spans=%d events=%d, want 1/1", h.SpanCount, h.FlightCount)
	}
	traces := Stitch(dumps)
	if len(traces) != 1 || traces[0].TraceID != tc.TraceID {
		t.Fatalf("stitched %d traces, want the recorded one", len(traces))
	}
	if !traces[0].HasStage("execute") {
		t.Errorf("stitched trace stages = %v, want execute", traces[0].Stages)
	}
}
