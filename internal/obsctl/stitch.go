package obsctl

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"abstractbft/internal/obs"
)

// SpanNode is one span in a stitched trace tree.
type SpanNode struct {
	Span     obs.Span
	Children []*SpanNode
}

// Trace is one cluster-wide stitched trace: every span that any scraped
// process retained under one trace ID, arranged into a tree by span
// parentage. The client's root span (Parent == 0, span ID == trace ID) is the
// root when its process was scraped; spans whose parent was evicted from its
// ring (or whose process was not scraped) surface as orphans rather than
// disappearing.
type Trace struct {
	TraceID uint64
	Root    *SpanNode
	Orphans []*SpanNode

	// Processes and Stages are the distinct process tags and lifecycle
	// stages covered by the trace, sorted — the cross-process coverage the
	// smoke tests assert on.
	Processes []string
	Stages    []string

	// Start is the earliest span start; Spans the flat span count.
	Start int64
	Spans int
}

// Covers reports whether the trace includes at least n distinct processes.
func (t *Trace) Covers(n int) bool { return len(t.Processes) >= n }

// HasStage reports whether any span of the trace recorded the stage.
func (t *Trace) HasStage(stage string) bool {
	for _, s := range t.Stages {
		if s == stage {
			return true
		}
	}
	return false
}

// Stitch groups every scraped span by trace ID and builds the trace trees,
// newest trace first. Duplicate spans (one process scraped twice) collapse by
// span ID.
func Stitch(dumps []ProcessDump) []*Trace {
	byTrace := map[uint64]map[uint64]obs.Span{} // trace ID -> span ID -> span
	for _, d := range dumps {
		for _, sp := range d.Traces.Spans {
			if sp.TraceID == 0 {
				continue
			}
			m := byTrace[sp.TraceID]
			if m == nil {
				m = map[uint64]obs.Span{}
				byTrace[sp.TraceID] = m
			}
			m[sp.SpanID] = sp
		}
	}
	traces := make([]*Trace, 0, len(byTrace))
	for id, spans := range byTrace {
		traces = append(traces, buildTrace(id, spans))
	}
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].Start != traces[j].Start {
			return traces[i].Start > traces[j].Start
		}
		return traces[i].TraceID < traces[j].TraceID
	})
	return traces
}

func buildTrace(id uint64, spans map[uint64]obs.Span) *Trace {
	t := &Trace{TraceID: id, Spans: len(spans)}
	nodes := make(map[uint64]*SpanNode, len(spans))
	procs := map[string]bool{}
	stages := map[string]bool{}
	for sid, sp := range spans {
		nodes[sid] = &SpanNode{Span: sp}
		procs[sp.Process] = true
		stages[sp.Stage] = true
		if t.Start == 0 || sp.Start < t.Start {
			t.Start = sp.Start
		}
	}
	for _, n := range nodes {
		if n.Span.Parent == 0 {
			if t.Root == nil {
				t.Root = n
			} else {
				t.Orphans = append(t.Orphans, n)
			}
			continue
		}
		parent := nodes[n.Span.Parent]
		if parent == nil || parent == n {
			t.Orphans = append(t.Orphans, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	ordered := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Span.Start != ns[j].Span.Start {
				return ns[i].Span.Start < ns[j].Span.Start
			}
			return ns[i].Span.SpanID < ns[j].Span.SpanID
		})
	}
	for _, n := range nodes {
		ordered(n.Children)
	}
	ordered(t.Orphans)
	for p := range procs {
		t.Processes = append(t.Processes, p)
	}
	for s := range stages {
		t.Stages = append(t.Stages, s)
	}
	sort.Strings(t.Processes)
	sort.Strings(t.Stages)
	return t
}

// WriteTraces renders up to limit stitched traces (0 = all) as indented
// trees, one line per span.
func WriteTraces(w io.Writer, traces []*Trace, limit int) {
	if limit <= 0 || limit > len(traces) {
		limit = len(traces)
	}
	for _, t := range traces[:limit] {
		fmt.Fprintf(w, "trace %016x: %d spans, %d processes (%s), stages %s\n",
			t.TraceID, t.Spans, len(t.Processes),
			strings.Join(t.Processes, ","), strings.Join(t.Stages, ","))
		if t.Root != nil {
			writeNode(w, t.Root, 1)
		}
		for _, o := range t.Orphans {
			fmt.Fprintf(w, "  (orphan, parent %016x evicted or unscraped)\n", o.Span.Parent)
			writeNode(w, o, 1)
		}
	}
}

func writeNode(w io.Writer, n *SpanNode, depth int) {
	d := time.Duration(n.Span.DurationNs)
	fmt.Fprintf(w, "%s%-8s %s shard=%d %s span=%016x\n",
		strings.Repeat("  ", depth), n.Span.Stage, n.Span.Process, n.Span.Shard,
		d.Round(time.Microsecond), n.Span.SpanID)
	for _, c := range n.Children {
		writeNode(w, c, depth+1)
	}
}

// WriteFlight renders every process's flight events, oldest first per
// process.
func WriteFlight(w io.Writer, dumps []ProcessDump) {
	for _, d := range dumps {
		if d.Err != nil || len(d.Flight.Events) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s: %d events (%d retained)\n", d.Process, d.Flight.Total, len(d.Flight.Events))
		for _, e := range d.Flight.Events {
			ts := time.Unix(0, e.TimeNs).Format("15:04:05.000")
			fmt.Fprintf(w, "  %6d %s %-14s shard=%-2d %s\n", e.Seq, ts, e.Kind, e.Shard, e.Detail)
		}
	}
}
