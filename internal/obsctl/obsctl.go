// Package obsctl implements cluster-wide introspection over the per-process
// observability front doors: it scrapes every process's /metrics.json,
// /debug/traces.json, and /debug/flight.json, stitches the per-process span
// rings into cluster-wide trace trees, and condenses the metric snapshots
// into a replica health table with divergence flags (a replica disagreeing
// with an f+1 majority on applied sequence or active protocol). cmd/obsctl is
// the thin CLI over this package; the e2e harness drives it in-process.
package obsctl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"abstractbft/internal/obs"
)

// DefaultTimeout bounds one process scrape (three small JSON documents).
const DefaultTimeout = 5 * time.Second

// ProcessDump is everything scraped from one process's observability server.
type ProcessDump struct {
	// Addr is the scraped observability address (host:port).
	Addr string
	// Process is the process tag from the trace dump (falls back to the
	// flight dump's tag, then to Addr when the process serves neither).
	Process string
	// Err is the scrape error, if any; the remaining fields are zero then.
	Err error

	Metrics obs.Snapshot
	Traces  obs.TraceDump
	Flight  obs.FlightDump
}

// Scrape fetches one process's observability documents. Endpoints a process
// does not serve (older builds) degrade to zero documents, not errors, as
// long as /metrics.json responds.
func Scrape(client *http.Client, addr string) ProcessDump {
	if client == nil {
		client = &http.Client{Timeout: DefaultTimeout}
	}
	d := ProcessDump{Addr: addr}
	if err := getJSON(client, addr, "/metrics.json", &d.Metrics); err != nil {
		d.Err = err
		return d
	}
	// Trace and flight endpoints are best-effort: a scrape error there keeps
	// the health row alive on metrics alone.
	getJSON(client, addr, "/debug/traces.json", &d.Traces)
	getJSON(client, addr, "/debug/flight.json", &d.Flight)
	d.Process = d.Traces.Process
	if d.Process == "" {
		d.Process = d.Flight.Process
	}
	if d.Process == "" {
		d.Process = addr
	}
	return d
}

// ScrapeAll scrapes every address concurrently, preserving input order.
func ScrapeAll(addrs []string, timeout time.Duration) []ProcessDump {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	client := &http.Client{Timeout: timeout}
	dumps := make([]ProcessDump, len(addrs))
	var wg sync.WaitGroup
	for i, a := range addrs {
		wg.Add(1)
		go func(i int, a string) {
			defer wg.Done()
			dumps[i] = Scrape(client, a)
		}(i, a)
	}
	wg.Wait()
	return dumps
}

func getJSON(client *http.Client, addr, path string, out any) error {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ParseKey splits a snapshot series key ("family{k="v",k2="v2"}") into the
// family name and its label map (nil when unlabelled).
func ParseKey(key string) (string, map[string]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key, nil
	}
	name := key[:open]
	body := strings.TrimSuffix(key[open+1:], "}")
	labels := make(map[string]string)
	for _, pair := range strings.Split(body, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
	}
	return name, labels
}

// ShardStatus is the per-shard slice of one replica's health.
type ShardStatus struct {
	AppliedSeq  float64
	StableSeq   float64
	MergeLag    float64
	OooBacklog  float64
	ActiveProto string
}

// ProcessHealth condenses one process's metric snapshot into the health-table
// row: per-shard ordering state plus process-wide counters.
type ProcessHealth struct {
	Addr    string
	Process string
	Err     string

	Shards        map[int]*ShardStatus
	MergedSeq     float64
	Switches      uint64
	Aborts        uint64
	Reagreements  uint64
	QueueDepthMax float64

	StatesyncStarted uint64
	StatesyncAdopted uint64
	StatesyncServed  uint64
	StatesyncRetries uint64

	SpanCount   uint64
	FlightCount uint64
}

func (h *ProcessHealth) shard(labels map[string]string) *ShardStatus {
	s, err := strconv.Atoi(labels["shard"])
	if err != nil {
		s = 0
	}
	if h.Shards == nil {
		h.Shards = make(map[int]*ShardStatus)
	}
	st := h.Shards[s]
	if st == nil {
		st = &ShardStatus{}
		h.Shards[s] = st
	}
	return st
}

// MaxAppliedSeq returns the highest per-shard applied sequence (the ordering
// high-water mark of the replica).
func (h *ProcessHealth) MaxAppliedSeq() float64 {
	var max float64
	for _, st := range h.Shards {
		if st.AppliedSeq > max {
			max = st.AppliedSeq
		}
	}
	return max
}

// SumAppliedSeq returns the total applied sequence across shards: the value
// replicas are compared on for divergence (per-shard seqs move independently,
// but the sum tracks overall ordering progress).
func (h *ProcessHealth) SumAppliedSeq() float64 {
	var sum float64
	for _, st := range h.Shards {
		sum += st.AppliedSeq
	}
	return sum
}

// HealthOf condenses one scraped dump into its health row.
func HealthOf(d ProcessDump) ProcessHealth {
	h := ProcessHealth{Addr: d.Addr, Process: d.Process}
	if d.Err != nil {
		h.Err = d.Err.Error()
		return h
	}
	for key, v := range d.Metrics.Gauges {
		name, labels := ParseKey(key)
		switch name {
		case "host_applied_seq":
			h.shard(labels).AppliedSeq = v
		case "host_stable_checkpoint_seq":
			h.shard(labels).StableSeq = v
		case "shard_merge_lag":
			h.shard(labels).MergeLag = v
		case "shard_ooo_backlog":
			h.shard(labels).OooBacklog = v
		case "shard_merged_seq":
			h.MergedSeq = v
		case "transport_send_queue_depth_max":
			h.QueueDepthMax = v
		case "compose_active_protocol":
			if v >= 1 {
				h.shard(labels).ActiveProto = labels["proto"]
			}
		}
	}
	for key, v := range d.Metrics.Counters {
		name, _ := ParseKey(key)
		switch name {
		case "compose_switches_total":
			h.Switches += v
		case "compose_aborts_total":
			h.Aborts += v
		case "shard_reagreements_total":
			h.Reagreements += v
		case "statesync_transfers_started_total":
			h.StatesyncStarted += v
		case "statesync_transfers_adopted_total":
			h.StatesyncAdopted += v
		case "statesync_transfers_served_total":
			h.StatesyncServed += v
		case "statesync_retries_total":
			h.StatesyncRetries += v
		}
	}
	h.SpanCount = d.Traces.Total
	h.FlightCount = d.Flight.Total
	return h
}

// HealthAll condenses every dump.
func HealthAll(dumps []ProcessDump) []ProcessHealth {
	out := make([]ProcessHealth, len(dumps))
	for i, d := range dumps {
		out[i] = HealthOf(d)
	}
	return out
}

// Divergence flags replicas that disagree with an f+1 majority of their
// peers, in two dimensions:
//
//   - active protocol: per shard, if at least f+1 replicas agree on the
//     active protocol, any replica running a different one is flagged (a
//     replica stuck on an aborted instance while the cluster switched on).
//   - applied sequence: a replica whose summed applied sequence trails the
//     f+1-majority watermark (the highest total that at least f+1 replicas
//     have reached) by more than seqSlack is flagged as lagging. Slack
//     absorbs scrape skew on a moving cluster; 0 demands exact agreement.
//
// Unreachable replicas are flagged as such and excluded from majorities.
// Reachable processes that report no per-shard state at all (client front
// doors scraped via -addrs) are observers, not replicas: they join the trace
// stitch and the health table but are excluded from both consistency checks.
func Divergence(healths []ProcessHealth, f int, seqSlack float64) []string {
	var flags []string
	quorum := f + 1
	var live []ProcessHealth
	for _, h := range healths {
		if h.Err != "" {
			flags = append(flags, fmt.Sprintf("%s: unreachable (%s)", h.Process, h.Err))
			continue
		}
		if len(h.Shards) == 0 {
			continue
		}
		live = append(live, h)
	}
	if len(live) == 0 {
		return flags
	}

	// Active protocol: per shard, find the f+1-majority protocol.
	shards := map[int]bool{}
	for _, h := range live {
		for s := range h.Shards {
			shards[s] = true
		}
	}
	ordered := make([]int, 0, len(shards))
	for s := range shards {
		ordered = append(ordered, s)
	}
	sort.Ints(ordered)
	for _, s := range ordered {
		votes := map[string]int{}
		for _, h := range live {
			if st := h.Shards[s]; st != nil && st.ActiveProto != "" {
				votes[st.ActiveProto]++
			}
		}
		majority := ""
		for proto, n := range votes {
			if n >= quorum {
				majority = proto
			}
		}
		if majority == "" {
			continue
		}
		for _, h := range live {
			if st := h.Shards[s]; st != nil && st.ActiveProto != "" && st.ActiveProto != majority {
				flags = append(flags, fmt.Sprintf("%s: shard %d active protocol %q disagrees with f+1 majority %q",
					h.Process, s, st.ActiveProto, majority))
			}
		}
	}

	// Applied sequence: the f+1-majority watermark is the quorum-th highest
	// total — at least f+1 replicas (hence at least one correct replica)
	// have applied that far, so a replica trailing it by more than the slack
	// is genuinely behind, not just ahead-of-the-pack skew.
	if len(live) >= quorum {
		totals := make([]float64, len(live))
		for i, h := range live {
			totals[i] = h.SumAppliedSeq()
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
		watermark := totals[quorum-1]
		for _, h := range live {
			if got := h.SumAppliedSeq(); got < watermark-seqSlack {
				flags = append(flags, fmt.Sprintf("%s: applied seq %.0f trails the f+1 watermark %.0f by %.0f",
					h.Process, got, watermark, watermark-got))
			}
		}
	}
	return flags
}

// WriteHealthTable renders the health rows as an aligned text table.
func WriteHealthTable(w io.Writer, healths []ProcessHealth) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROCESS\tADDR\tAPPLIED\tMERGED\tLAG\tSWITCH\tABORT\tREAGREE\tQDEPTH\tSYNC(s/a/v/r)\tSPANS\tEVENTS\tSTATUS")
	for _, h := range healths {
		if h.Err != "" {
			fmt.Fprintf(tw, "%s\t%s\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\tUNREACHABLE: %s\n", h.Process, h.Addr, h.Err)
			continue
		}
		var lag float64
		for _, st := range h.Shards {
			if st.MergeLag > lag {
				lag = st.MergeLag
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\t%.0f\t%d/%d/%d/%d\t%d\t%d\tok\n",
			h.Process, h.Addr, h.SumAppliedSeq(), h.MergedSeq, lag,
			h.Switches, h.Aborts, h.Reagreements, h.QueueDepthMax,
			h.StatesyncStarted, h.StatesyncAdopted, h.StatesyncServed, h.StatesyncRetries,
			h.SpanCount, h.FlightCount)
	}
	tw.Flush()
}
