package host

import (
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// handlePanic implements Steps P2/P2+ of the panicking subprotocol: the
// replica stops executing requests of the instance and returns a signed
// ABORT message carrying its history report. When the instance was never
// initialized and the PANIC carries an init history, the replica initializes
// first (Step P2+).
func (h *Host) handlePanic(from ids.ProcessID, m *core.PanicMessage) {
	st := h.instances[m.Instance]
	if st == nil {
		st = h.activate(m.Instance, m.Init)
		if st == nil {
			return
		}
	}
	if !st.Initialized {
		if m.Init != nil {
			h.tryCompleteInit(st, m.Init)
		}
		if !st.Initialized {
			return
		}
	}
	if proto, ok := h.protocols[st.ID].(PanicResistant); ok && !proto.StopOnPanic() {
		// Instances with strong progress (Backup) ignore panics until they
		// decide to stop on their own; once stopped they answer with their
		// signed abort.
		if st.Stopped {
			signed := h.signedAbort(st)
			h.Send(m.Client, &core.AbortReply{Instance: st.ID, Timestamp: m.Timestamp, Signed: *signed})
		}
		return
	}
	if !st.Stopped {
		st.Stopped = true
		h.met.aborts.Inc()
		h.cfg.Flight.Record("abort", h.cfg.Shard,
			"instance %d stopped on PANIC from %v (t=%d)", st.ID, m.Client, m.Timestamp)
		if h.observer != nil {
			h.observer.InstanceStopped(st.ID)
		}
	}
	signed := h.signedAbort(st)
	h.Send(m.Client, &core.AbortReply{Instance: st.ID, Timestamp: m.Timestamp, Signed: *signed})
}

// PanicResistant is implemented by protocol replicas whose progress property
// does not allow clients to stop them through PANIC messages (Backup commits
// exactly k requests regardless of panics).
type PanicResistant interface {
	StopOnPanic() bool
}

// signedAbort builds (or returns the cached) signed ABORT message of the
// instance. The report contains the replica's last stable checkpoint and the
// digests of the requests logged after it.
func (h *Host) signedAbort(st *InstanceState) *core.SignedAbort {
	if st.cachedAbort != nil {
		return st.cachedAbort
	}
	report := history.ReplicaReport{
		CheckpointSeq:    st.Checkpoint.StableSeq(),
		CheckpointDigest: st.Checkpoint.StableDigest(),
	}
	if report.CheckpointSeq < st.BaseSeq {
		report.CheckpointSeq = st.BaseSeq
		report.CheckpointDigest = st.BaseDigest
	}
	// Suffix holds the digests from the reported checkpoint onward. GC only
	// ever trims below the stable checkpoint, so the materialized history
	// always covers the reported suffix.
	start := report.CheckpointSeq - st.BaseSeq
	if idx := start - st.Trimmed(); start >= st.Trimmed() && idx <= uint64(len(st.Digests)) {
		report.Suffix = st.Digests[idx:].Clone()
	}
	abort := core.AbortMessage{
		Instance: st.ID,
		Replica:  h.id,
		Next:     st.ID.Next(),
		Flags:    st.AbortFlags,
		Report:   report,
	}
	sig := h.keys.Sign(h.id, abort.SignedBytes())
	h.cfg.Ops.CountSigGen(h.id)
	st.cachedAbort = &core.SignedAbort{Abort: abort, Sig: sig}
	return st.cachedAbort
}

// StopInstance marks an instance stopped; exposed for protocols that stop on
// their own initiative (Backup after k requests, Chain's low-load abort,
// R-Aliph's replica-initiated switching).
func (h *Host) StopInstance(st *InstanceState) {
	if !st.Stopped {
		st.Stopped = true
		h.met.aborts.Inc()
		h.cfg.Flight.Record("abort", h.cfg.Shard, "instance %d stopped by replica", st.ID)
		if h.observer != nil {
			h.observer.InstanceStopped(st.ID)
		}
	}
}

// StopInstanceByID stops an instance by number, taking the host lock itself;
// it is the entry point for external goroutines (R-Aliph's switcher), which
// must not nest it inside Locked.
func (h *Host) StopInstanceByID(id core.InstanceID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st := h.instances[id]; st != nil {
		h.StopInstance(st)
	}
}

// SignedAbortFor exposes the replica's signed abort message for protocols
// that deliver abort indications through their own messages (Backup) or for
// replica-initiated switching (R-Aliph).
func (h *Host) SignedAbortFor(st *InstanceState) core.SignedAbort { return *h.signedAbort(st) }

// maybeCheckpoint runs the LCS when the local history crossed a checkpoint
// boundary: the replica broadcasts the digest of its state at the boundary.
func (h *Host) maybeCheckpoint(st *InstanceState) {
	cc, ok := st.Checkpoint.ShouldCheckpoint(st.AbsLen())
	if !ok {
		return
	}
	digest := h.checkpointDigest(st, cc)
	m := &core.CheckpointMessage{From: h.id, AbstractID: st.ID, Counter: cc, StateDigest: digest}
	// Record our own contribution, then broadcast to the other replicas.
	if st.Checkpoint.Record(h.id, cc, digest) {
		h.onStableCheckpoint(st)
	}
	h.Multicast(h.OtherReplicas(), m)
}

// checkpointDigest computes the digest of the replica state after cc*CHK
// requests: the digest of the history prefix up to that position (folded with
// the base digest when present). Deterministic applications make this
// equivalent to a state digest.
func (h *Host) checkpointDigest(st *InstanceState, cc uint64) authn.Digest {
	pos := cc * uint64(st.Checkpoint.Interval)
	if pos < st.BaseSeq {
		return st.BaseDigest
	}
	idx := pos - st.BaseSeq
	prefix := st.PrefixDigest(idx)
	if st.BaseSeq == 0 {
		return prefix
	}
	return authn.HashAll(st.BaseDigest[:], prefix[:])
}

// handleCheckpoint records another replica's CHECKPOINT message.
func (h *Host) handleCheckpoint(m *core.CheckpointMessage) {
	st := h.instances[m.AbstractID]
	if st == nil || !st.Initialized {
		return
	}
	if st.Checkpoint.Record(m.From, m.Counter, m.StateDigest) {
		h.onStableCheckpoint(st)
	}
}

// handleFetchRequest returns the request bodies this replica knows for the
// requested digests (inter-replica state transfer of missing requests, §4.4).
func (h *Host) handleFetchRequest(m *core.FetchRequest) {
	var out []msg.Request
	for _, d := range m.Digests {
		if r, ok := h.requestStore[d]; ok {
			out = append(out, r.Clone())
		}
	}
	if len(out) == 0 {
		return
	}
	h.Send(m.From, &core.FetchResponse{Instance: m.Instance, From: h.id, Requests: out})
}

// handleFetchResponse stores fetched request bodies and completes any pending
// initialization that was waiting for them.
func (h *Host) handleFetchResponse(m *core.FetchResponse) {
	for _, r := range m.Requests {
		h.requestStore[r.Digest()] = r.Clone()
	}
	st := h.instances[m.Instance]
	if st == nil || st.Initialized || st.pendingInit == nil {
		return
	}
	for d := range st.missing {
		if _, ok := h.requestStore[d]; ok {
			delete(st.missing, d)
		}
	}
	if len(st.missing) == 0 {
		h.finishInit(st)
	}
}
