package host

import "abstractbft/internal/ids"

// FeedbackSink consumes the client feedback messages R-Aliph piggybacks on
// Quorum and Chain requests (Principles P2 and P3 of §6.3): the timestamps of
// requests the client recently committed and issued. R-Aliph's replica
// monitor implements it to compute the sustained throughput and to track
// fairness; plain Aliph runs without a sink.
type FeedbackSink interface {
	// ClientFeedback reports the feedback a client attached to a request
	// received by the given replica. Committed holds timestamps of requests
	// the client committed since its previous feedback; issued holds
	// timestamps of requests it issued. Protocol replicas deliver feedback
	// from inside Handle, so implementations run under the host lock.
	//
	//abstractbft:lockheld
	ClientFeedback(replica ids.ProcessID, client ids.ProcessID, committed []uint64, issued []uint64)
}
