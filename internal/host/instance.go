package host

import (
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
)

// DefaultTimestampWindow is the default per-client timestamp window width: a
// replica accepts a request whose timestamp lies up to this far below the
// client's high-water mark, provided that exact timestamp was never logged.
// Width 1 restores the strict high-water rule (only increasing timestamps).
const DefaultTimestampWindow = 64

// tsState is one client's timestamp window: the high-water mark (the highest
// timestamp logged) plus a bitmask of which recent lower timestamps were also
// logged (bit d set means high-d was logged). Pipelined clients race their
// in-flight timestamps across the network, so a replica can see t=5 before
// t=3; the window logs both instead of rejecting the late-arriving one, while
// still rejecting every duplicate (PBFT-style at-most-once).
type tsState struct {
	high, mask uint64
}

// fresh reports whether ts may still be logged under a window of the given
// width. The high-water mark itself is always logged by construction, so
// ts == high is stale even when the mask bit is unset (states built before
// the window machinery carry an empty mask).
func (w tsState) fresh(width int, ts uint64) bool {
	if ts > w.high {
		return true
	}
	if ts == w.high || w.high-ts >= uint64(width) {
		return false
	}
	return w.mask&(1<<(w.high-ts)) == 0
}

// merge folds another window into this one: the higher high-water mark wins
// and both mask's logged timestamps are kept (where they still fall inside
// the 64-bit window).
func (w tsState) merge(o tsState) tsState {
	if o.high > w.high {
		w, o = o, w
	}
	if d := w.high - o.high; d < 64 {
		w.mask |= o.mask << d
	}
	return w
}

// mark records ts as logged and returns the updated window.
func (w tsState) mark(ts uint64) tsState {
	if ts > w.high {
		if shift := ts - w.high; shift >= 64 {
			w.mask = 1
		} else {
			w.mask = w.mask<<shift | 1
		}
		w.high = ts
		return w
	}
	if d := w.high - ts; d < 64 {
		w.mask |= 1 << d
	}
	return w
}

// InstanceState is the per-Abstract-instance replica state shared by every
// protocol implementation: the local history LH_j (as digests, with bodies
// kept in the host's request store), the per-client timestamps t_j[c], the
// sequence number sn_j, the stopped flag set by the panicking subprotocol,
// and the checkpoint state.
type InstanceState struct {
	// ID is the instance number.
	ID core.InstanceID
	// BaseSeq is the absolute position the instance's explicit history
	// starts at: the base checkpoint carried by the init history (0 for the
	// first instance).
	BaseSeq uint64
	// BaseDigest is the state digest of the base checkpoint.
	BaseDigest authn.Digest
	// Digests is the materialized part of the local history from BaseSeq on
	// (digest per request). Garbage collection trims entries below the last
	// stable checkpoint: the first `trimmed` entries after BaseSeq are then
	// represented only by their running digest fold (trimAcc), so Digests[i]
	// holds the digest of the request at absolute position
	// BaseSeq+trimmed+i. HistoryDigest is unaffected by trimming — the
	// digest chain is a left fold, so dropping the storage of an
	// already-folded prefix changes nothing observable.
	Digests history.DigestHistory
	// LastTimestamp is t_j[c]: the highest request timestamp logged per
	// client (the window high-water mark; tsMask tracks which timestamps
	// within the window below it were also logged).
	LastTimestamp map[ids.ProcessID]uint64
	// tsMask holds, per client, the logged-timestamp bitmask of the window
	// below LastTimestamp (bit d set means LastTimestamp-d was logged).
	tsMask map[ids.ProcessID]uint64
	// tsWidth is the configured window width (0 selects
	// DefaultTimestampWindow; 1 is the strict high-water rule).
	tsWidth int
	// Stopped is set when the instance aborts (stops executing requests).
	Stopped bool
	// Initialized is true once the instance adopted its init history (or is
	// the first instance).
	Initialized bool
	// Checkpoint is the LCS state.
	Checkpoint *history.CheckpointState
	// AbortFlags are included in this replica's signed ABORT message
	// (e.g. core.AbortFlagLowLoad set by Chain's low-load optimization).
	AbortFlags uint32
	// InitLowLoad records whether the init history that initialized this
	// instance carried the low-load abort flag from at least f+1 replicas of
	// the previous instance (Backup then commits a single request).
	InitLowLoad bool

	// digestCache memoizes HistoryDigest between history appends; chainAcc
	// and chainLen hold the running DigestStep fold of the first chainLen
	// history entries after BaseSeq (trimmed entries included), so a batch
	// of appends costs one chain step per new request instead of a re-fold
	// of the whole history (which would make replying O(n²) over a run).
	digestCache authn.Digest
	digestDirty bool
	chainAcc    authn.Digest
	chainLen    uint64
	// ckptAcc/ckptLen memoize the checkpoint-prefix chain fold the same
	// way: checkpoint boundaries only move forward, so each LCS round
	// advances the fold instead of re-folding the whole prefix.
	ckptAcc authn.Digest
	ckptLen uint64
	// trimmed is the number of history entries after BaseSeq whose storage
	// was garbage-collected; trimAcc is the digest fold over exactly those
	// entries, the re-fold base for prefix queries above the trim boundary.
	trimmed uint64
	trimAcc authn.Digest

	// pendingInit holds the init history awaiting missing request bodies.
	pendingInit *core.InitHistory
	// missing tracks digests whose bodies are not yet known locally.
	missing map[authn.Digest]bool
	// cachedAbort caches the signed ABORT message once the instance stops.
	cachedAbort *core.SignedAbort
	// staleCtr / readmitCtr count timestamp-window rejections and window
	// re-admissions during batch filtering (wired from the host's metrics at
	// activation; nil no-ops otherwise). They live on the instance because
	// FilterFreshBatch has no host receiver.
	staleCtr   *obs.Counter
	readmitCtr *obs.Counter
	// proto-specific sequence counter (sn_j for the primary/head).
	NextSeq uint64
}

// AbsLen returns the absolute length of the local history (trimmed entries
// included).
func (st *InstanceState) AbsLen() uint64 {
	return st.BaseSeq + st.trimmed + uint64(len(st.Digests))
}

// Trimmed returns the number of history entries after BaseSeq whose storage
// was garbage-collected.
func (st *InstanceState) Trimmed() uint64 { return st.trimmed }

// relLen returns the number of history entries after BaseSeq (trimmed
// included).
func (st *InstanceState) relLen() uint64 { return st.trimmed + uint64(len(st.Digests)) }

// HistoryDigest returns D(LH_j): the digest of the local history, folding in
// the base checkpoint when present. The underlying DigestStep chain is
// advanced only over entries appended since the last call, so a batch of
// appends costs one chain step per request regardless of history length.
func (st *InstanceState) HistoryDigest() authn.Digest {
	if !st.digestDirty {
		return st.digestCache
	}
	for st.chainLen < st.relLen() {
		st.chainAcc = history.DigestStep(st.chainAcc, st.Digests[st.chainLen-st.trimmed])
		st.chainLen++
	}
	suffix := st.chainAcc
	if st.BaseSeq != 0 {
		suffix = authn.HashAll(st.BaseDigest[:], suffix[:])
	}
	st.digestCache = suffix
	st.digestDirty = false
	return suffix
}

// Contains reports whether the instance's materialized history contains the
// request digest (trimmed entries, all below the last stable checkpoint, are
// not consulted).
func (st *InstanceState) Contains(d authn.Digest) bool { return st.Digests.Contains(d) }

// PrefixDigest returns the chain digest of the first idx history entries
// after BaseSeq, advancing the memoized checkpoint fold when the prefix
// moved forward (the common case — checkpoint boundaries are monotone) and
// re-folding from the trim boundary only on a backward move (which only
// instance re-initialization can cause; prefixes inside the trimmed region
// are no longer materialized and report the trim fold).
func (st *InstanceState) PrefixDigest(idx uint64) authn.Digest {
	if idx > st.relLen() {
		idx = st.relLen()
	}
	if idx <= st.trimmed {
		return st.trimAcc
	}
	if idx < st.ckptLen {
		acc := st.trimAcc
		for j := st.trimmed; j < idx; j++ {
			acc = history.DigestStep(acc, st.Digests[j-st.trimmed])
		}
		return acc
	}
	for st.ckptLen < idx {
		st.ckptAcc = history.DigestStep(st.ckptAcc, st.Digests[st.ckptLen-st.trimmed])
		st.ckptLen++
	}
	return st.ckptAcc
}

// TrimTo garbage-collects the materialized history below absolute position
// seq (exclusive), which must be covered by a stable checkpoint: the dropped
// entries stay represented by their digest fold, so HistoryDigest, AbsLen,
// and abort reports from the stable checkpoint onward are unchanged. It
// returns the dropped digests so the host can release the request bodies
// they name.
func (st *InstanceState) TrimTo(seq uint64) history.DigestHistory {
	if seq <= st.BaseSeq {
		return nil
	}
	rel := seq - st.BaseSeq
	if rel > st.relLen() {
		rel = st.relLen()
	}
	if rel <= st.trimmed {
		return nil
	}
	// Advance both memoized folds past the new boundary so the dropped
	// entries remain represented. HistoryDigest advances the chain fold to
	// the full history; PrefixDigest advances the checkpoint fold to rel and
	// returns it — the new trim fold.
	st.HistoryDigest()
	st.trimAcc = st.PrefixDigest(rel)
	k := rel - st.trimmed
	dropped := st.Digests[:k].Clone()
	st.Digests = append(history.DigestHistory(nil), st.Digests[k:]...)
	st.trimmed = rel
	if st.ckptLen < rel {
		st.ckptLen = rel
		st.ckptAcc = st.trimAcc
	}
	return dropped
}

// normalizeWindow returns the effective per-client timestamp window width
// for a configured value: 0 selects DefaultTimestampWindow, the bitmask
// implementation caps it at 64. The instance timestamp windows and the
// per-client reply rings must use the same normalization — the ring serves
// exactly the retransmissions the window can re-admit.
func normalizeWindow(w int) int {
	if w <= 0 {
		w = DefaultTimestampWindow
	}
	if w > 64 {
		w = 64
	}
	return w
}

// width returns the effective window width.
func (st *InstanceState) width() int { return normalizeWindow(st.tsWidth) }

// windowOf returns client c's current timestamp window.
func (st *InstanceState) windowOf(c ids.ProcessID) tsState {
	return tsState{high: st.LastTimestamp[c], mask: st.tsMask[c]}
}

// markLogged records a logged request timestamp in client c's window.
func (st *InstanceState) markLogged(c ids.ProcessID, ts uint64) {
	st.setWindow(c, st.windowOf(c).mark(ts))
}

// AdoptWindow merges a transferred timestamp window (carried by an adopted
// checkpoint snapshot) into client c's window, so requests from below the
// adopted boundary are rejected as duplicates instead of re-executed.
func (st *InstanceState) AdoptWindow(c ids.ProcessID, high, mask uint64) {
	st.setWindow(c, st.windowOf(c).merge(tsState{high: high, mask: mask}))
}

func (st *InstanceState) setWindow(c ids.ProcessID, w tsState) {
	st.LastTimestamp[c] = w.high
	if st.tsMask == nil {
		st.tsMask = make(map[ids.ProcessID]uint64)
	}
	st.tsMask[c] = w.mask
}

// TimestampFresh reports whether a request timestamp may still be logged for
// the client: newer than the high-water mark, or within the window below it
// and never logged. A correct client keeps at most its pipeline depth (which
// is bounded by the window width) requests in flight, so every duplicate it
// can produce is caught; a Byzantine client skipping far ahead can only get
// its own old requests re-executed, harming no one else (the PBFT window
// argument).
func (st *InstanceState) TimestampFresh(c ids.ProcessID, ts uint64) bool {
	return st.windowOf(c).fresh(st.width(), ts)
}

// FilterFreshBatch splits a received batch into the requests that may be
// logged — fresh against the instance state AND against the requests already
// accepted from this batch — and the stale remainder. The intra-batch rule is
// the at-most-once invariant of batched ordering: without it, a Byzantine
// orderer (or client, for client-side batches) repeating a request inside
// one batch would get it logged and executed twice, since per-request
// freshness alone only checks against already-logged history.
func (st *InstanceState) FilterFreshBatch(batch msg.Batch) (fresh msg.Batch, stale []msg.Request) {
	width := st.width()
	var sim map[ids.ProcessID]tsState
	for _, req := range batch.Requests {
		w, ok := sim[req.Client]
		if !ok {
			w = st.windowOf(req.Client)
		}
		if !w.fresh(width, req.Timestamp) {
			stale = append(stale, req)
			st.staleCtr.Inc()
			continue
		}
		if req.Timestamp < w.high {
			// Logged only thanks to the window: a strict high-water rule
			// would have rejected this overtaken pipelined request.
			st.readmitCtr.Inc()
		}
		if sim == nil {
			sim = make(map[ids.ProcessID]tsState, batch.Len())
		}
		sim[req.Client] = w.mark(req.Timestamp)
		fresh.Requests = append(fresh.Requests, req)
	}
	return fresh, stale
}

// activate creates (and initializes, when possible) the state of instance id.
// Callers hold the host lock. It returns nil when the activation is not
// allowed (missing or invalid init history).
func (h *Host) activate(id core.InstanceID, init *core.InitHistory) *InstanceState {
	if st, ok := h.instances[id]; ok {
		return st
	}
	ckptInterval := h.cfg.CheckpointInterval
	if ckptInterval < 0 {
		ckptInterval = 1 << 62 // effectively disabled
	}
	st := &InstanceState{
		ID:            id,
		LastTimestamp: make(map[ids.ProcessID]uint64),
		tsMask:        make(map[ids.ProcessID]uint64),
		tsWidth:       h.cfg.TimestampWindow,
		Checkpoint:    history.NewCheckpointState(h.cluster.N, ckptInterval),
		digestDirty:   true,
		staleCtr:      h.met.windowStale,
		readmitCtr:    h.met.windowHits,
	}

	switch {
	case id == h.cfg.FirstInstance && init == nil:
		st.Initialized = true
	case init == nil:
		h.logf("cannot activate instance %d without init history", id)
		return nil
	default:
		if err := core.VerifyInitHistory(h.keys, h.cluster, id, init); err != nil {
			h.logf("rejecting init history for instance %d: %v", id, err)
			return nil
		}
		h.adoptInit(st, init)
	}

	h.instances[id] = st
	if id > h.active {
		// Stop all lower instances: at most one instance commits at a time.
		for lower, ls := range h.instances {
			if lower < id && !ls.Stopped {
				ls.Stopped = true
			}
		}
		if h.active != 0 {
			h.met.switches.Inc()
			if h.cfg.Flight != nil {
				// Record the switch with the abort reporter set of the init
				// proof: which replicas' signed aborts justified it.
				var reporters []ids.ProcessID
				if init != nil {
					for _, s := range init.Proof {
						reporters = append(reporters, s.Abort.Replica)
					}
				}
				h.cfg.Flight.Record("switch", h.cfg.Shard,
					"instance %d -> %d, reporters %v", h.active, id, reporters)
			}
		}
		h.active = id
	}
	h.protocols[id] = h.cfg.NewProtocol(h, st)
	if st.Initialized {
		h.takeActivationSnapshot()
		h.noteActivated(id)
		if h.observer != nil {
			h.observer.InstanceActivated(id)
		}
	}
	return st
}

// adoptInit installs the init history into the instance state: it verifies
// which request bodies are available, fetches the missing ones from other
// replicas, and (when complete) reconciles the application state with the
// adopted history.
func (h *Host) adoptInit(st *InstanceState, init *core.InitHistory) {
	if resetter, ok := h.observer.(HistoryResetter); ok {
		resetter.HistoryReset(st.ID, init.Extract.BaseSeq)
	}
	st.BaseSeq = init.Extract.BaseSeq
	st.BaseDigest = init.Extract.BaseDigest
	st.Digests = init.Extract.Suffix.Clone()
	st.digestDirty = true
	// The history was replaced wholesale: restart the digest chains.
	st.chainAcc = authn.Digest{}
	st.chainLen = 0
	st.ckptAcc = authn.Digest{}
	st.ckptLen = 0
	st.trimmed = 0
	st.trimAcc = authn.Digest{}
	st.Checkpoint.Reset()
	st.NextSeq = uint64(len(st.Digests))
	st.InitLowLoad = core.InitHasFlag(init, h.cluster.F, core.AbortFlagLowLoad)

	for _, r := range init.Requests {
		h.requestStore[r.Digest()] = r.Clone()
	}
	st.missing = make(map[authn.Digest]bool)
	for _, d := range st.Digests {
		if _, ok := h.requestStore[d]; !ok {
			st.missing[d] = true
		}
	}
	if len(st.missing) > 0 {
		st.pendingInit = init
		var want []authn.Digest
		for d := range st.missing {
			want = append(want, d)
		}
		h.Multicast(h.OtherReplicas(), &core.FetchRequest{Instance: st.ID, From: h.id, Digests: want})
		return
	}
	h.finishInit(st)
}

// tryCompleteInit re-examines a pending initialization when new information
// (a retransmitted init history) arrives.
func (h *Host) tryCompleteInit(st *InstanceState, init *core.InitHistory) {
	if st.Initialized || st.pendingInit == nil {
		return
	}
	for _, r := range init.Requests {
		d := r.Digest()
		if st.missing[d] {
			h.requestStore[d] = r.Clone()
			delete(st.missing, d)
		}
	}
	if len(st.missing) == 0 {
		h.finishInit(st)
	}
}

// finishInit completes initialization once every request body referenced by
// the init history is available locally.
func (h *Host) finishInit(st *InstanceState) {
	st.pendingInit = nil
	st.missing = nil
	st.Initialized = true

	// Update per-client timestamp windows from the adopted history so
	// duplicate requests are rejected.
	adopter, _ := h.observer.(HistoryAdopter)
	for i, d := range st.Digests {
		if r, ok := h.requestStore[d]; ok {
			st.markLogged(r.Client, r.Timestamp)
			if adopter != nil {
				adopter.RequestAdopted(st.ID, r, st.BaseSeq+uint64(i))
			}
		}
	}

	h.reconcileApplication(st)
	if h.appliedSeq < st.BaseSeq {
		// The adopted init history starts at a base checkpoint this replica
		// never executed up to (it missed the ORDERs below it, and their
		// bodies are unknown cluster-wide — the init carries only digests
		// above the base). Fetch the checkpoint state from the peers; until
		// the transfer completes, the instance logs and replies but the
		// application stalls at the gap.
		h.startStateSync(st.ID, st.BaseSeq)
	}
	h.takeActivationSnapshot()
	h.noteActivated(st.ID)
	if h.observer != nil {
		h.observer.InstanceActivated(st.ID)
	}
}

// takeActivationSnapshot records the application state at instance
// activation so that speculative execution of a later-aborted tail can be
// rolled back when the next instance's init history diverges.
func (h *Host) takeActivationSnapshot() {
	h.snapApp = h.application.Clone()
	h.snapSeq = h.appliedSeq
	h.snapDigs = h.appliedDigs.Clone()
	h.snapTrim = h.appliedTrim
	h.snapAcc = h.appliedAcc
	h.snapWindows = cloneWindows(h.appliedWindows)
	h.snapRings = cloneRings(h.lastReply)
}

// cloneWindows copies a per-client window map.
func cloneWindows(ws map[ids.ProcessID]tsState) map[ids.ProcessID]tsState {
	out := make(map[ids.ProcessID]tsState, len(ws))
	for c, w := range ws {
		out[c] = w
	}
	return out
}

// reconcileApplication brings the replica's application state in line with
// the adopted history of st: it rolls back to the last activation snapshot
// when the locally applied tail diverges from the adopted history, then
// applies any missing suffix.
func (h *Host) reconcileApplication(st *InstanceState) {
	base, target := h.globalTarget(st)

	// Find the longest absolute common prefix between what has been applied
	// and the target; positions below base are covered by a stable
	// checkpoint and agree by construction.
	common := base
	for common-base < uint64(len(h.appliedDigs)) && common-base < uint64(len(target)) &&
		h.appliedDigs[common-h.appliedTrim] == target[common-base] {
		common++
	}
	if common < h.appliedSeq && h.snapApp != nil && h.snapSeq <= common {
		// Divergence within the speculative tail: roll back to the snapshot.
		// The applied windows roll back too — they must stay a pure function
		// of the applied prefix, or checkpoint snapshots would disagree
		// across replicas whose speculative tails differed.
		h.application = h.snapApp.Clone()
		h.appliedSeq = h.snapSeq
		h.appliedDigs = h.snapDigs.Clone()
		h.appliedTrim = h.snapTrim
		h.appliedAcc = h.snapAcc
		h.appliedWindows = cloneWindows(h.snapWindows)
		h.lastReply = cloneRings(h.snapRings)
		// Checkpoint-boundary snapshots taken inside the rolled-back tail
		// describe state that never committed.
		h.snaps.DropAbove(h.appliedSeq)
		// The rollback moved the applied trim point back to the activation
		// snapshot's, so the target computed against the pre-rollback trim no
		// longer lines up with the applied sequence (if garbage collection
		// advanced the trim since the snapshot was taken, applying against
		// the stale base would index below it). Recompute against the
		// restored state.
		base, target = h.globalTarget(st)
	}
	// Apply the remaining target suffix for which bodies are known.
	for h.appliedSeq < base+uint64(len(target)) {
		d := target[h.appliedSeq-base]
		r, ok := h.requestStore[d]
		if !ok {
			break
		}
		h.applyRequest(r)
	}
}

// globalTarget reconstructs the digest sequence the instance's history
// denotes as a suffix starting at the absolute position base (the host's
// applied-history trim point — everything below it is covered by a stable
// checkpoint and already applied): target[i] is the digest at absolute
// position base+i. Positions the instance no longer materializes (below its
// base checkpoint, or trimmed by GC) are reused from the host's applied
// sequence; positions below an adopted base checkpoint that were never
// applied locally cannot be reconstructed and are left zero — execution
// stalls there until checkpoint state transfer (statesync) fills the gap.
func (h *Host) globalTarget(st *InstanceState) (uint64, history.DigestHistory) {
	base := h.appliedTrim
	var target history.DigestHistory
	instStart := st.BaseSeq + st.Trimmed()
	if instStart > base {
		for p := base; p < instStart; p++ {
			if p-h.appliedTrim < uint64(len(h.appliedDigs)) {
				target = append(target, h.appliedDigs[p-h.appliedTrim])
			} else {
				target = append(target, authn.Digest{})
			}
		}
	}
	if instStart < base {
		// The instance materializes history below the host's trim point (an
		// old instance not garbage-collected with the active one): skip the
		// already-covered prefix.
		skip := base - instStart
		if skip > uint64(len(st.Digests)) {
			skip = uint64(len(st.Digests))
		}
		target = append(target, st.Digests[skip:]...)
		return base, target
	}
	target = append(target, st.Digests...)
	return base, target
}

// applyRequest applies one request to the application and records it. Null
// operations (Mencius-style fillers ordered by idle shard leaders) advance
// the sequence and the digest chain but execute nothing and leave no reply.
// Crossing a checkpoint boundary captures a serialized application snapshot
// for the state-transfer plane.
func (h *Host) applyRequest(r msg.Request) []byte {
	var reply []byte
	if r.Client != ids.NullOp {
		reply = h.application.Execute(r.Command)
		h.replyRingFor(r.Client).add(r.Timestamp, reply)
		h.appliedWindows[r.Client] = h.appliedWindows[r.Client].mark(r.Timestamp)
	}
	h.appliedDigs = append(h.appliedDigs, r.Digest())
	h.appliedSeq++
	h.appliedAcc = history.DigestStep(h.appliedAcc, r.Digest())
	h.met.appliedSeq.Set(int64(h.appliedSeq))
	if h.traceExecOn && h.appliedSeq >= h.traceExecPos {
		h.cfg.Tracer.Record(h.traceExecCtx, obs.StageExecute, h.cfg.Shard, h.traceExecT, time.Since(h.traceExecT))
		h.traceExecOn = false
		h.traceExecCtx = obs.TraceContext{}
	}
	h.maybeSnapshot()
	return reply
}

// Log appends a request to the instance's local history (Step Z3/Q2/C3
// logging): the degenerate one-request batch. It returns the absolute
// position and false when the instance cannot log (stopped, uninitialized,
// or checkpoint backlog limit reached).
func (h *Host) Log(st *InstanceState, req msg.Request) (uint64, bool) {
	return h.LogBatch(st, msg.BatchOf(req))
}

// LogBatch appends every request of a batch to the instance's local history
// as one append span: the digests are appended in batch order, the checkpoint
// trigger runs once at the end, and the observer sees each request at its
// assigned position. It returns the absolute position of the batch's first
// request and false when the instance cannot log (stopped, uninitialized, or
// checkpoint backlog limit reached).
func (h *Host) LogBatch(st *InstanceState, batch msg.Batch) (uint64, bool) {
	if st.Stopped || !st.Initialized || batch.Len() == 0 {
		return 0, false
	}
	if h.cfg.MaxUncheckpointed > 0 {
		backlog := st.AbsLen() - st.Checkpoint.StableSeq()
		if backlog+uint64(batch.Len()) > uint64(h.cfg.MaxUncheckpointed) {
			return 0, false
		}
	}
	start := st.AbsLen()
	for _, req := range batch.Requests {
		d := req.Digest()
		h.requestStore[d] = req.Clone()
		st.Digests = append(st.Digests, d)
		st.markLogged(req.Client, req.Timestamp)
		if h.observer != nil {
			h.observer.RequestLogged(st.ID, req, st.AbsLen()-1)
		}
	}
	st.digestDirty = true
	h.met.logged.Add(uint64(batch.Len()))
	if h.cfg.Tracer != nil {
		ctx := batch.TraceCtx()
		var now time.Time
		if !h.traceFlushT.IsZero() && ctx.TraceID == h.traceCtx.TraceID {
			// This batch was flushed carrying a sampled context (the orderer's
			// assembler armed the slot): the flush→log gap is the ordering
			// stage (one protocol round trip on the orderer).
			now = time.Now()
			h.cfg.Tracer.Record(h.traceCtx, obs.StageOrder, h.cfg.Shard, h.traceFlushT, now.Sub(h.traceFlushT))
			h.traceCtx = obs.TraceContext{}
			h.traceFlushT = time.Time{}
		}
		if !h.traceExecOn && ctx.Sampled() {
			if now.IsZero() {
				now = time.Now()
			}
			h.traceExecOn = true
			h.traceExecCtx = ctx
			h.traceExecPos = st.AbsLen()
			h.traceExecT = now
		}
	}
	h.maybeCheckpoint(st)
	return start, true
}

// Execute applies a just-logged request to the application, provided the
// application is up to date with the instance history (the normal case for
// protocols whose replicas execute every request). It returns the
// application reply.
func (h *Host) Execute(st *InstanceState, req msg.Request) []byte {
	// Replay any logged-but-unapplied prefix first (e.g. after adopting an
	// init history whose bodies arrived late, or for Chain replicas that
	// start executing mid-stream).
	base, target := h.globalTarget(st)
	for h.appliedSeq < base+uint64(len(target)) {
		d := target[h.appliedSeq-base]
		r, ok := h.requestStore[d]
		if !ok {
			// A body is missing at the applied position (a gap below an
			// adopted base checkpoint awaiting state transfer, or a body
			// still being fetched): the application must NOT execute past
			// it. Applying newly ordered requests at the gap position would
			// diverge the applied mirror from the agreed sequence — and a
			// diverged mirror can never be repaired, because the pending
			// transfer restores only above the current applied position.
			// Serve from cache when possible; reply empty otherwise (the
			// client cannot commit against this replica until the transfer
			// fills the gap, which is the honest state of affairs).
			if reply, ok := h.CachedReply(req.Client, req.Timestamp); ok {
				return reply
			}
			return nil
		}
		if r.ID() == req.ID() {
			return h.applyRequest(r)
		}
		h.applyRequest(r)
	}
	// Already applied (duplicate execution request): return the cached
	// reply when the client's reply ring still holds it.
	if reply, ok := h.CachedReply(req.Client, req.Timestamp); ok {
		return reply
	}
	return h.applyRequest(req)
}

// ExecuteBatch applies a just-logged batch to the application in one
// speculative-execution span: the logged-but-unapplied prefix is replayed
// once (instead of once per request) and every request of the batch is
// applied in order. It returns the application replies in batch order.
func (h *Host) ExecuteBatch(st *InstanceState, batch msg.Batch) [][]byte {
	replies := make([][]byte, 0, batch.Len())
	base, target := h.globalTarget(st)
	// Replay any unapplied prefix, collecting replies for batch requests as
	// they are reached (the batch occupies the tail of the target).
	pending := 0
	for h.appliedSeq < base+uint64(len(target)) && pending < batch.Len() {
		d := target[h.appliedSeq-base]
		r, ok := h.requestStore[d]
		if !ok {
			break
		}
		reply := h.applyRequest(r)
		if r.ID() == batch.Requests[pending].ID() {
			replies = append(replies, reply)
			pending++
		}
	}
	// Any batch requests not reached through the target (duplicates already
	// applied, or a target gap) fall back to the per-request path.
	for ; pending < batch.Len(); pending++ {
		req := batch.Requests[pending]
		if reply, ok := h.CachedReply(req.Client, req.Timestamp); ok {
			replies = append(replies, reply)
			continue
		}
		replies = append(replies, h.Execute(st, req))
	}
	return replies
}

// CachedReply returns the reply sent to the given client at the given
// timestamp, as long as the client's reply ring (of timestamp-window width)
// still holds it — so a retransmission of a request that was overtaken by
// later pipelined requests of the same client is still served from cache.
func (h *Host) CachedReply(client ids.ProcessID, ts uint64) ([]byte, bool) {
	if ring, ok := h.lastReply[client]; ok {
		return ring.get(ts)
	}
	return nil, false
}

// AppliedStale reports whether the request at (client, ts) already executed
// in the host's applied prefix — the instance-independent at-most-once gate.
// Instance timestamp windows are rebuilt from init histories at every
// switch, and an init history only reaches back to its base checkpoint, so a
// retransmission of a request committed before that base looks fresh to a
// newly activated instance and would re-execute. Client-request entry gates
// consult this alongside the instance window and serve the (host-level)
// cached reply instead. Entry gates only — ORDER-log filtering stays
// governed by the agreed instance windows, so replicas whose applied
// prefixes transiently differ cannot diverge their histories through this
// check.
func (h *Host) AppliedStale(client ids.ProcessID, ts uint64) bool {
	w, ok := h.appliedWindows[client]
	if !ok {
		return false
	}
	return !w.fresh(normalizeWindow(h.cfg.TimestampWindow), ts)
}

// RequestByDigest returns a request body from the host's store.
func (h *Host) RequestByDigest(d authn.Digest) (msg.Request, bool) {
	r, ok := h.requestStore[d]
	return r, ok
}

// StoreRequest records a request body without logging it (used by protocols
// that learn bodies before ordering them).
func (h *Host) StoreRequest(r msg.Request) { h.requestStore[r.Digest()] = r.Clone() }
