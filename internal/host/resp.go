package host

import (
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
)

// BuildResp assembles the speculative RESP message sent to a client by
// ZLight and Quorum replicas (Step Z3 / Q2): the application reply (full
// payload only from the designated replica, digest otherwise), the digest of
// the replica's local history, and a MAC for the client.
func (h *Host) BuildResp(st *InstanceState, req msg.Request, reply []byte, designated bool) *core.RespMessage {
	resp := &core.RespMessage{
		Instance:      st.ID,
		Replica:       h.id,
		Client:        req.Client,
		Timestamp:     req.Timestamp,
		ReplyDigest:   authn.Hash(reply),
		HistoryDigest: st.HistoryDigest(),
		HistoryLen:    st.AbsLen(),
	}
	if designated {
		resp.Reply = reply
	}
	if h.cfg.InstrumentHistories {
		resp.HistoryDigests = st.Digests.Clone()
	}
	resp.MAC = h.keys.MAC(h.id, req.Client, resp.MACBytes())
	h.cfg.Ops.CountMACGen(h.id, 1)
	// A traced request marks the speculative reply leaving the replica as a
	// zero-duration point event (span only; no histogram sample).
	if req.Trace.Sampled() {
		h.cfg.Tracer.Record(req.Trace, obs.StageReply, h.cfg.Shard, time.Now(), 0)
	}
	return resp
}

// VerifyClientAuth verifies the client's authenticator entry addressed to
// this replica over the given bytes, counting the MAC operation.
func (h *Host) VerifyClientAuth(a authn.Authenticator, data []byte) error {
	h.cfg.Ops.CountMACVerify(h.id, 1)
	return h.keys.Verify(a, h.id, data)
}

// MACFor computes a MAC from this replica to the given process, counting the
// operation.
func (h *Host) MACFor(to ids.ProcessID, data []byte) authn.MAC {
	h.cfg.Ops.CountMACGen(h.id, 1)
	return h.keys.MAC(h.id, to, data)
}

// VerifyMACFrom verifies a MAC from another process to this replica,
// counting the operation.
func (h *Host) VerifyMACFrom(from ids.ProcessID, data []byte, m authn.MAC) error {
	h.cfg.Ops.CountMACVerify(h.id, 1)
	return h.keys.VerifyMAC(from, h.id, data, m)
}
