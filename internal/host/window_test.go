package host

import (
	"testing"

	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// A pipelined client's in-flight timestamps can overtake each other on the
// network; the window must accept the late-arriving lower timestamp while
// rejecting every duplicate.
func TestTimestampWindowOutOfOrderAcceptance(t *testing.T) {
	st := &InstanceState{LastTimestamp: map[ids.ProcessID]uint64{}}
	c := ids.Client(0)

	st.markLogged(c, 5)
	if !st.TimestampFresh(c, 3) {
		t.Fatalf("ts=3 below high-water 5 but never logged: want fresh")
	}
	st.markLogged(c, 3)
	if st.TimestampFresh(c, 3) {
		t.Fatalf("ts=3 logged: want stale")
	}
	if st.TimestampFresh(c, 5) {
		t.Fatalf("ts=5 (high-water) logged: want stale")
	}
	if !st.TimestampFresh(c, 4) {
		t.Fatalf("ts=4 within window, never logged: want fresh")
	}
	if !st.TimestampFresh(c, 6) {
		t.Fatalf("ts=6 above high-water: want fresh")
	}
}

func TestTimestampWindowStrictWidthOne(t *testing.T) {
	st := &InstanceState{LastTimestamp: map[ids.ProcessID]uint64{}, tsWidth: 1}
	c := ids.Client(0)
	st.markLogged(c, 5)
	if st.TimestampFresh(c, 3) {
		t.Fatalf("width=1 must reject every timestamp below the high-water mark")
	}
	if !st.TimestampFresh(c, 6) {
		t.Fatalf("width=1 must accept increasing timestamps")
	}
}

func TestTimestampWindowFarBelowIsStale(t *testing.T) {
	st := &InstanceState{LastTimestamp: map[ids.ProcessID]uint64{}}
	c := ids.Client(0)
	st.markLogged(c, 1000)
	if st.TimestampFresh(c, 1000-uint64(DefaultTimestampWindow)) {
		t.Fatalf("timestamps at or beyond the window edge must be stale")
	}
	if !st.TimestampFresh(c, 1000-uint64(DefaultTimestampWindow)+1) {
		t.Fatalf("timestamps just inside the window must be fresh")
	}
}

// The window must survive a large high-water jump (mask shift >= 64) without
// forgetting that the new high-water itself is logged.
func TestTimestampWindowLargeJump(t *testing.T) {
	st := &InstanceState{LastTimestamp: map[ids.ProcessID]uint64{}}
	c := ids.Client(0)
	st.markLogged(c, 1)
	st.markLogged(c, 1_000_000)
	if st.TimestampFresh(c, 1_000_000) {
		t.Fatalf("new high-water must be stale")
	}
	if !st.TimestampFresh(c, 999_999) {
		t.Fatalf("window below the new high-water must be fresh")
	}
}

// FilterFreshBatch must apply the same window intra-batch: out-of-order
// timestamps of one client are both logged, duplicates are not.
func TestFilterFreshBatchWindowIntraBatch(t *testing.T) {
	st := &InstanceState{LastTimestamp: map[ids.ProcessID]uint64{}}
	batch := msg.BatchOf(
		req(0, 5), // fresh
		req(0, 3), // fresh: within window, out of order
		req(0, 5), // duplicate within batch
		req(0, 4), // fresh
	)
	fresh, stale := st.FilterFreshBatch(batch)
	if fresh.Len() != 3 || len(stale) != 1 {
		t.Fatalf("fresh=%d stale=%d, want 3/1", fresh.Len(), len(stale))
	}
	if stale[0].Timestamp != 5 {
		t.Fatalf("stale request is ts=%d, want the duplicated ts=5", stale[0].Timestamp)
	}
}
