package host

// NullOpOrderer is implemented by protocol replicas whose orderer can inject
// a Mencius-style null operation into the instance's history: a request from
// the reserved ids.NullOp identity with an empty command, ordered like any
// other request but executed by nobody and answered to nobody. The sharded
// plane's per-replica node asks an idle shard's leader to order null-ops
// when the other shards have completed a merge round, so the deterministic
// cross-shard merge advances without waiting on shards that have no traffic.
type NullOpOrderer interface {
	// OrderNullOp orders one null operation if the replica currently can
	// (it is the orderer, the instance is live, and no real traffic is
	// waiting); it reports whether a null-op was ordered.
	OrderNullOp() bool
}

// OrderNullOp asks the active instance's protocol replica to order one null
// operation. It is safe to call from any goroutine and reports whether a
// null-op was ordered.
func (h *Host) OrderNullOp() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.crashed {
		return false
	}
	st := h.instances[h.active]
	if st == nil {
		// A fully idle shard never received a message, so its first instance
		// was never activated; the leader bootstraps it (backups activate on
		// the first null-op ORDER, like on any first instance message).
		st = h.activate(h.cfg.FirstInstance, nil)
	}
	if st == nil || st.Stopped || !st.Initialized {
		return false
	}
	if p, ok := h.protocols[h.active].(NullOpOrderer); ok {
		return p.OrderNullOp()
	}
	return false
}
