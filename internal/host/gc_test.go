package host

import (
	"fmt"
	"testing"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// gcHost builds a single-replica host (checkpoints stabilize on the spot)
// whose instance can be driven directly.
func gcHost(t *testing.T, interval int, disableGC bool) (*Host, *InstanceState) {
	t.Helper()
	net := transport.NewLocal(transport.Options{})
	t.Cleanup(net.Close)
	h := New(Config{
		Cluster:  ids.NewCluster(0),
		Replica:  ids.Replica(0),
		Keys:     authn.NewKeyStore("gc-test"),
		App:      app.NewKVStore(),
		Endpoint: net.Endpoint(ids.Replica(0)),
		NewProtocol: func(h *Host, st *InstanceState) ProtocolReplica {
			return nopReplica{}
		},
		CheckpointInterval: interval,
		DisableGC:          disableGC,
	})
	st := h.Bootstrap()
	if st == nil {
		t.Fatal("bootstrap failed")
	}
	return h, st
}

type nopReplica struct{}

func (nopReplica) Handle(from ids.ProcessID, m any) {}

func kvReq(ts uint64) msg.Request {
	return msg.Request{
		Client:    ids.Client(0),
		Timestamp: ts,
		Command:   app.EncodeKVPut(fmt.Sprintf("k%d", ts), fmt.Sprintf("v%d", ts)),
	}
}

func drive(t *testing.T, h *Host, st *InstanceState, from, to uint64) {
	t.Helper()
	for ts := from; ts <= to; ts++ {
		req := kvReq(ts)
		ok := false
		h.Locked(func() {
			if _, logged := h.LogBatch(st, msg.BatchOf(req)); logged {
				h.ExecuteBatch(st, msg.BatchOf(req))
				ok = true
			}
		})
		if !ok {
			t.Fatalf("log rejected at ts %d", ts)
		}
	}
}

// TestGCTrimPreservesDigests drives a host across several checkpoint
// boundaries and checks the GC boundary conditions: storage below the stable
// checkpoint is trimmed, while the history digest, the absolute length, the
// prefix digests at and above the boundary, and the abort report suffix are
// bit-identical to the untrimmed run.
func TestGCTrimPreservesDigests(t *testing.T) {
	const interval, n = 8, 29
	h, st := gcHost(t, interval, false)
	ref, refSt := gcHost(t, interval, true)

	drive(t, h, st, 1, n)
	drive(t, ref, refSt, 1, n)

	stable := st.Checkpoint.StableSeq()
	if want := uint64(n/interval) * interval; stable != want {
		t.Fatalf("stable checkpoint at %d, want %d", stable, want)
	}
	if st.Trimmed() != stable {
		t.Fatalf("trimmed %d, want the stable seq %d", st.Trimmed(), stable)
	}
	if got := len(st.Digests); uint64(got) != uint64(n)-stable {
		t.Fatalf("retained %d digests, want %d", got, uint64(n)-stable)
	}
	if refSt.Trimmed() != 0 || len(refSt.Digests) != n {
		t.Fatalf("GC-off host trimmed anyway (%d, %d)", refSt.Trimmed(), len(refSt.Digests))
	}

	// Observable digests must be unchanged by trimming.
	if st.AbsLen() != refSt.AbsLen() {
		t.Fatalf("AbsLen %d diverged from untrimmed %d", st.AbsLen(), refSt.AbsLen())
	}
	if st.HistoryDigest() != refSt.HistoryDigest() {
		t.Fatal("history digest changed by trimming")
	}
	for idx := stable; idx <= uint64(n); idx++ {
		if st.PrefixDigest(idx) != refSt.PrefixDigest(idx) {
			t.Fatalf("prefix digest at %d changed by trimming", idx)
		}
	}
	// A prefix query inside the trimmed region reports the trim fold (it is
	// unreachable through checkpointing, which only moves forward).
	if st.PrefixDigest(stable-1) != st.trimAcc {
		t.Fatal("prefix digest below the trim boundary should report the trim fold")
	}

	// The abort report carries the suffix from the stable checkpoint, which
	// trimming must retain exactly.
	rep := h.signedAbort(st).Abort.Report
	refRep := ref.signedAbort(refSt).Abort.Report
	if rep.CheckpointSeq != stable || refRep.CheckpointSeq != stable {
		t.Fatalf("report checkpoints %d/%d, want %d", rep.CheckpointSeq, refRep.CheckpointSeq, stable)
	}
	if len(rep.Suffix) != len(refRep.Suffix) {
		t.Fatalf("report suffix %d entries, untrimmed %d", len(rep.Suffix), len(refRep.Suffix))
	}
	for i := range rep.Suffix {
		if rep.Suffix[i] != refRep.Suffix[i] {
			t.Fatalf("report suffix diverges at %d", i)
		}
	}
}

// TestGCReleasesBodiesAndSnapshots checks that request bodies below the
// stable checkpoint are released, snapshots below it are pruned, and both
// stay bounded as the run grows — while the GC-off host grows linearly.
func TestGCReleasesBodiesAndSnapshots(t *testing.T) {
	const interval = 8
	h, st := gcHost(t, interval, false)
	ref, refSt := gcHost(t, interval, true)
	drive(t, h, st, 1, 100)
	drive(t, ref, refSt, 1, 100)

	histDigests, appliedDigests, bodies, snaps := h.GCStats()
	if histDigests > 2*interval || appliedDigests > 2*interval || bodies > 2*interval {
		t.Fatalf("GC-on storage grew: digests %d/%d, bodies %d", histDigests, appliedDigests, bodies)
	}
	if snaps < 1 {
		t.Fatal("no snapshot retained at the stable checkpoint")
	}
	refHist, _, refBodies, _ := ref.GCStats()
	if refHist != 100 || refBodies != 100 {
		t.Fatalf("GC-off storage should be linear (digests %d, bodies %d)", refHist, refBodies)
	}
	// The retained snapshot must still cover the stable point.
	if _, ok := h.snaps.LatestAtOrBelow(st.Checkpoint.StableSeq()); !ok {
		t.Fatal("no snapshot at or below the stable checkpoint")
	}
	// Bodies at and above the stable checkpoint stay fetchable (abort-time
	// state transfer needs them).
	for _, d := range st.Digests {
		if _, ok := h.RequestByDigest(d); !ok {
			t.Fatal("retained suffix body was released")
		}
	}
}

// TestExecuteStallsAtGap: when the applied position sits at a gap (a body
// missing below an adopted base checkpoint, awaiting state transfer), newly
// ordered requests must NOT execute past it — applying them at the gap
// position would diverge the applied mirror from the agreed sequence, and
// the pending transfer (which restores only above the applied position)
// could then never repair it.
func TestExecuteStallsAtGap(t *testing.T) {
	h, st := gcHost(t, -1, false) // checkpointing off: pure execution test
	// Simulate an adopted init history starting at a base checkpoint this
	// replica never executed up to: position 0..3 unknown, explicit history
	// from 4 on.
	gapReq := kvReq(100)
	h.Locked(func() {
		st.BaseSeq = 4
		st.Digests = nil
		st.digestDirty = true
	})
	before, _ := h.AppliedState()
	var reply []byte
	h.Locked(func() {
		if _, ok := h.LogBatch(st, msg.BatchOf(gapReq)); !ok {
			t.Fatal("log rejected")
		}
		reply = h.Execute(st, gapReq)
	})
	after, afterDig := h.AppliedState()
	if reply != nil {
		t.Fatalf("executed across the gap: reply %q", reply)
	}
	if after != before {
		t.Fatalf("applied position advanced %d -> %d across the gap", before, after)
	}
	if afterDig != (authn.Digest{}) {
		t.Fatal("applied digest chain diverged across the gap")
	}
}

// TestGCReleasesSupersededInstances: after an instance switch, the stopped
// instance's history storage and the request bodies only it names must be
// released at the next stable checkpoint — with its signed abort frozen
// first, so late panickers still receive the full report.
func TestGCReleasesSupersededInstances(t *testing.T) {
	const interval = 8
	h, st1 := gcHost(t, interval, false)
	drive(t, h, st1, 1, 20)

	frozen := h.signedAbort(st1) // reference report before the switch
	var st2 *InstanceState
	h.Locked(func() {
		// Switch: stop instance 1 and install instance 2 continuing from the
		// same point (white-box — a real switch would carry an init history).
		h.StopInstance(st1)
		st2 = &InstanceState{
			ID:            2,
			BaseSeq:       st1.AbsLen(),
			BaseDigest:    st1.HistoryDigest(),
			LastTimestamp: make(map[ids.ProcessID]uint64),
			Checkpoint:    history.NewCheckpointState(1, interval),
			Initialized:   true,
			digestDirty:   true,
		}
		h.instances[2] = st2
		h.protocols[2] = nopReplica{}
		h.active = 2
		h.takeActivationSnapshot()
	})
	drive(t, h, st2, 21, 60)

	if got := len(st1.Digests); got != 0 {
		t.Fatalf("superseded instance still materializes %d digests", got)
	}
	if st1.cachedAbort == nil {
		t.Fatal("superseded instance's abort was not frozen before trimming")
	}
	if got := h.signedAbort(st1); len(got.Abort.Report.Suffix) != len(frozen.Abort.Report.Suffix) {
		t.Fatalf("frozen abort report lost its suffix (%d vs %d)",
			len(got.Abort.Report.Suffix), len(frozen.Abort.Report.Suffix))
	}
	// Bodies named only by the pre-switch history are released; retained
	// storage stays bounded by the interval, not the total run.
	_, _, bodies, _ := h.GCStats()
	if bodies >= 60 {
		t.Fatalf("pre-switch bodies pinned: %d stored", bodies)
	}
}

// TestReplyRingServesOvertakenRetransmissions exercises the reply cache of
// timestamp-window width: replies to requests that were overtaken by later
// pipelined requests of the same client — including replies at and below the
// stable checkpoint — are still served from cache instead of falling through
// to the panicking machinery.
func TestReplyRingServesOvertakenRetransmissions(t *testing.T) {
	const interval = 8
	h, st := gcHost(t, interval, false)
	drive(t, h, st, 1, 20)

	stable := st.Checkpoint.StableSeq()
	if stable == 0 {
		t.Fatal("no stable checkpoint")
	}
	h.Locked(func() {
		// Replies at and below the stable checkpoint: the ring is wider than
		// this run, so every reply is still cached even though the history
		// below the checkpoint was garbage-collected.
		for _, ts := range []uint64{stable - 1, stable, stable + 1, 20} {
			reply, ok := h.CachedReply(ids.Client(0), ts)
			if !ok {
				t.Fatalf("reply at ts %d not cached", ts)
			}
			if string(reply) != "OK" {
				t.Fatalf("cached reply at ts %d = %q", ts, reply)
			}
		}
		if _, ok := h.CachedReply(ids.Client(0), 999); ok {
			t.Fatal("cache invented a reply for an unseen timestamp")
		}
	})
}

// TestReplyRingOverwritesSameTimestamp: re-executing a request (speculative
// rollback + re-apply under an adopted prefix) must replace the cached
// reply, never leave two entries where the stale one can win the scan.
func TestReplyRingOverwritesSameTimestamp(t *testing.T) {
	ring := newReplyRing(4)
	ring.add(7, []byte("stale"))
	ring.add(8, []byte("other"))
	ring.add(7, []byte("fresh"))
	if got, ok := ring.get(7); !ok || string(got) != "fresh" {
		t.Fatalf("get(7) = %q, %v; want the re-executed reply", got, ok)
	}
	// The overwrite must not have consumed a second slot.
	ring.add(9, nil)
	ring.add(10, nil)
	if _, ok := ring.get(7); !ok {
		t.Fatal("overwrite consumed an extra slot and evicted ts 7 early")
	}
}

// TestReplyRingEviction checks the ring's width bound: only the last `width`
// replies of a client are retained, oldest evicted first.
func TestReplyRingEviction(t *testing.T) {
	ring := newReplyRing(4)
	for ts := uint64(1); ts <= 6; ts++ {
		ring.add(ts, []byte{byte(ts)})
	}
	for ts := uint64(1); ts <= 2; ts++ {
		if _, ok := ring.get(ts); ok {
			t.Fatalf("ts %d should have been evicted", ts)
		}
	}
	for ts := uint64(3); ts <= 6; ts++ {
		reply, ok := ring.get(ts)
		if !ok || reply[0] != byte(ts) {
			t.Fatalf("ts %d not retained correctly", ts)
		}
	}
}
