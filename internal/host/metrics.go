package host

import (
	"abstractbft/internal/core"
	"abstractbft/internal/obs"
)

// hostMetrics bundles the host-layer series of the observability plane. It is
// always allocated; without a registry every field is a nil obs metric, whose
// record methods no-op, so the instrumented code paths never branch on
// "observability enabled". Registration is idempotent in the registry, so
// several hosts sharing one registry (the in-process multi-replica deploys)
// aggregate into the same series unless they bake in distinguishing labels
// (the sharded plane labels each sub-host by shard).
type hostMetrics struct {
	reg    *obs.Registry
	labels []string

	// ordering and execution.
	logged      *obs.Counter   // host_logged_requests_total
	batches     *obs.Counter   // host_batches_total
	batchFill   *obs.Histogram // host_batch_fill (requests per flushed batch)
	appliedSeq  *obs.Gauge     // host_applied_seq
	windowStale *obs.Counter   // host_window_stale_total
	windowHits  *obs.Counter   // host_window_readmits_total

	// checkpoint / GC plane.
	checkpoints *obs.Counter // host_checkpoints_total
	stableSeq   *obs.Gauge   // host_stable_checkpoint_seq
	gcRuns      *obs.Counter // host_gc_runs_total
	gcBodies    *obs.Counter // host_gc_released_bodies_total

	// composition plane.
	switches    *obs.Counter // compose_switches_total
	aborts      *obs.Counter // compose_aborts_total
	activeProto *obs.Gauge   // compose_active_protocol{proto="..."} (1 = active)

	// statesync plane.
	ssStarted  *obs.Counter // statesync_transfers_started_total
	ssAdopted  *obs.Counter // statesync_transfers_adopted_total
	ssRetries  *obs.Counter // statesync_retries_total
	ssServed   *obs.Counter // statesync_transfers_served_total
	ssBytesOut *obs.Counter // statesync_bytes_shipped_total
	ssBytesIn  *obs.Counter // statesync_bytes_adopted_total
}

// newHostMetrics registers the host series (no-op metrics when r is nil).
func newHostMetrics(r *obs.Registry, labels []string) *hostMetrics {
	m := &hostMetrics{reg: r, labels: labels}
	if r == nil {
		return m
	}
	l := labels
	m.logged = r.Counter("host_logged_requests_total", l...)
	m.batches = r.Counter("host_batches_total", l...)
	m.batchFill = r.Histogram("host_batch_fill", obs.CountBuckets, l...)
	m.appliedSeq = r.Gauge("host_applied_seq", l...)
	m.windowStale = r.Counter("host_window_stale_total", l...)
	m.windowHits = r.Counter("host_window_readmits_total", l...)
	m.checkpoints = r.Counter("host_checkpoints_total", l...)
	m.stableSeq = r.Gauge("host_stable_checkpoint_seq", l...)
	m.gcRuns = r.Counter("host_gc_runs_total", l...)
	m.gcBodies = r.Counter("host_gc_released_bodies_total", l...)
	m.switches = r.Counter("compose_switches_total", l...)
	m.aborts = r.Counter("compose_aborts_total", l...)
	m.ssStarted = r.Counter("statesync_transfers_started_total", l...)
	m.ssAdopted = r.Counter("statesync_transfers_adopted_total", l...)
	m.ssRetries = r.Counter("statesync_retries_total", l...)
	m.ssServed = r.Counter("statesync_transfers_served_total", l...)
	m.ssBytesOut = r.Counter("statesync_bytes_shipped_total", l...)
	m.ssBytesIn = r.Counter("statesync_bytes_adopted_total", l...)
	return m
}

// noteActivated flips the compose_active_protocol gauge to the protocol of
// the newly activated instance: the old protocol's series drops to 0, the new
// one rises to 1 (registered lazily per protocol name — switches are rare, so
// the registry lock here costs nothing on the hot path). Called under the
// host lock at instance activation.
func (h *Host) noteActivated(id core.InstanceID) {
	if h.met.reg == nil || h.cfg.ProtocolName == nil {
		return
	}
	name := h.cfg.ProtocolName(id)
	if name == "" {
		return
	}
	labels := append(append([]string(nil), h.met.labels...), "proto", name)
	g := h.met.reg.Gauge("compose_active_protocol", labels...)
	if h.met.activeProto != nil && h.met.activeProto != g {
		h.met.activeProto.Set(0)
	}
	g.Set(1)
	h.met.activeProto = g
}
