package host

import "abstractbft/internal/ids"

// replyRing is one client's reply cache: a ring of the last `width` replies,
// keyed by request timestamp. The per-client timestamp window
// (Config.TimestampWindow) accepts out-of-order timestamps from pipelining
// clients, so a retransmission may name a request that was overtaken by up to
// width-1 later requests of the same client; a single last-reply slot would
// miss it and push the client into the panicking machinery. The ring is as
// wide as the timestamp window, so every retransmission the window can admit
// is served from cache. It also bounds reply memory per client, which the
// history garbage collector relies on for long runs.
type replyRing struct {
	ts      []uint64
	replies [][]byte
	filled  []bool
	next    int
}

func newReplyRing(width int) *replyRing {
	if width < 1 {
		width = 1
	}
	return &replyRing{
		ts:      make([]uint64, width),
		replies: make([][]byte, width),
		filled:  make([]bool, width),
	}
}

// add records the reply for the request at timestamp ts, evicting the oldest
// cached reply. An existing entry for the same timestamp is overwritten in
// place: a speculative rollback can re-execute a request after an adopted
// prefix changed, and serving the stale pre-rollback reply to a
// retransmission would leave the client unable to assemble matching RESPs.
func (r *replyRing) add(ts uint64, reply []byte) {
	for i, ok := range r.filled {
		if ok && r.ts[i] == ts {
			r.replies[i] = reply
			return
		}
	}
	r.ts[r.next] = ts
	r.replies[r.next] = reply
	r.filled[r.next] = true
	r.next = (r.next + 1) % len(r.ts)
}

// get returns the cached reply for timestamp ts.
func (r *replyRing) get(ts uint64) ([]byte, bool) {
	for i, ok := range r.filled {
		if ok && r.ts[i] == ts {
			return r.replies[i], true
		}
	}
	return nil, false
}

// replyRingFor returns (creating on first use) the reply ring of one client,
// sized to the effective timestamp window width — the same normalization the
// instance timestamp windows use, so every retransmission the window can
// admit has a cached reply.
func (h *Host) replyRingFor(c ids.ProcessID) *replyRing {
	ring, ok := h.lastReply[c]
	if !ok {
		ring = newReplyRing(normalizeWindow(h.cfg.TimestampWindow))
		h.lastReply[c] = ring
	}
	return ring
}
