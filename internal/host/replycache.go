package host

import "abstractbft/internal/ids"

// replyRing is one client's reply cache: the `width` highest-timestamped
// replies, keyed by request timestamp. The per-client timestamp window
// (Config.TimestampWindow) accepts out-of-order timestamps from pipelining
// clients, so a retransmission may name a request that was overtaken by up to
// width-1 later requests of the same client; a single last-reply slot would
// miss it and push the client into the panicking machinery. The ring is as
// wide as the timestamp window, so every retransmission the window can admit
// is served from cache. It also bounds reply memory per client, which the
// history garbage collector relies on for long runs.
//
// Eviction is by smallest timestamp, NOT insertion order: the cached set is
// then a pure function of the applied prefix (the top-width timestamps with
// their latest replies), identical across replicas that executed the same
// prefix regardless of arrival interleavings or rollback re-executions.
// Checkpoint snapshots fold the rings into the f+1-agreed payload digest, so
// any layout-dependent eviction would make equal replicas disagree.
type replyRing struct {
	ts      []uint64
	replies [][]byte
	filled  []bool
}

func newReplyRing(width int) *replyRing {
	if width < 1 {
		width = 1
	}
	return &replyRing{
		ts:      make([]uint64, width),
		replies: make([][]byte, width),
		filled:  make([]bool, width),
	}
}

// add records the reply for the request at timestamp ts, evicting the
// smallest cached timestamp when full (a ts older than everything cached is
// dropped). An existing entry for the same timestamp is overwritten in
// place: a speculative rollback can re-execute a request after an adopted
// prefix changed, and serving the stale pre-rollback reply to a
// retransmission would leave the client unable to assemble matching RESPs.
func (r *replyRing) add(ts uint64, reply []byte) {
	minIdx, free := -1, -1
	for i, ok := range r.filled {
		if !ok {
			free = i
			continue
		}
		if r.ts[i] == ts {
			r.replies[i] = reply
			return
		}
		if minIdx < 0 || r.ts[i] < r.ts[minIdx] {
			minIdx = i
		}
	}
	slot := free
	if slot < 0 {
		if r.ts[minIdx] > ts {
			// Older than everything cached: the set of top-width timestamps
			// is unchanged.
			return
		}
		slot = minIdx
	}
	r.ts[slot] = ts
	r.replies[slot] = reply
	r.filled[slot] = true
}

// entries returns the cached (timestamp, reply) pairs sorted by timestamp —
// the canonical form checkpoint snapshots carry so a restarted replica can
// restore its reply caches. Runs at every checkpoint boundary, so it sorts
// with a plain insertion sort over the (small, width-bounded) ring instead
// of a reflection-based sort.
func (r *replyRing) entries() ([]uint64, [][]byte) {
	n := 0
	for _, ok := range r.filled {
		if ok {
			n++
		}
	}
	ts := make([]uint64, 0, n)
	replies := make([][]byte, 0, n)
	for i, ok := range r.filled {
		if !ok {
			continue
		}
		j := len(ts)
		ts = append(ts, r.ts[i])
		replies = append(replies, r.replies[i])
		for j > 0 && ts[j-1] > ts[j] {
			ts[j-1], ts[j] = ts[j], ts[j-1]
			replies[j-1], replies[j] = replies[j], replies[j-1]
			j--
		}
	}
	return ts, replies
}

// clone deep-copies the ring (reply slices are shared; they are never
// mutated in place).
func (r *replyRing) clone() *replyRing {
	return &replyRing{
		ts:      append([]uint64(nil), r.ts...),
		replies: append([][]byte(nil), r.replies...),
		filled:  append([]bool(nil), r.filled...),
	}
}

// cloneRings copies a per-client ring map (activation snapshots, so rolled
// back speculative tails restore the rings along with the windows — ring
// contents must stay a pure function of the applied prefix, or checkpoint
// snapshot digests would disagree across replicas whose speculative tails
// differed).
func cloneRings(rs map[ids.ProcessID]*replyRing) map[ids.ProcessID]*replyRing {
	out := make(map[ids.ProcessID]*replyRing, len(rs))
	for c, r := range rs {
		out[c] = r.clone()
	}
	return out
}

// get returns the cached reply for timestamp ts.
func (r *replyRing) get(ts uint64) ([]byte, bool) {
	for i, ok := range r.filled {
		if ok && r.ts[i] == ts {
			return r.replies[i], true
		}
	}
	return nil, false
}

// replyRingFor returns (creating on first use) the reply ring of one client,
// sized to the effective timestamp window width — the same normalization the
// instance timestamp windows use, so every retransmission the window can
// admit has a cached reply.
func (h *Host) replyRingFor(c ids.ProcessID) *replyRing {
	ring, ok := h.lastReply[c]
	if !ok {
		ring = newReplyRing(normalizeWindow(h.cfg.TimestampWindow))
		h.lastReply[c] = ring
	}
	return ring
}
