// Package host implements the replica-side runtime shared by all Abstract
// instance implementations (ZLight, Quorum, Chain, Backup): per-instance
// replica state (local histories, client timestamps, sequence numbers), the
// panicking/aborting subprotocol (§4.2.2), instance initialization from init
// histories (§4.2.3), the lightweight checkpoint subprotocol (§4.2.4), and
// the state-transfer optimization with inter-replica fetching of missing
// requests (§4.4).
//
// A Host runs one replica of a composed protocol. Protocol packages plug in a
// ProtocolFactory that creates, per Abstract instance, the message handler
// implementing that instance's common-case steps; the Host handles everything
// the instances share.
package host

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
	"abstractbft/internal/statesync"
	"abstractbft/internal/transport"
)

// ProtocolReplica is the per-instance message handler provided by a protocol
// package (the common-case steps of ZLight, Quorum, Chain, or Backup).
type ProtocolReplica interface {
	// Handle processes one protocol-specific message addressed to this
	// instance. It is called from the host's single event loop, so
	// implementations need no internal locking for instance state.
	//
	//abstractbft:lockheld
	Handle(from ids.ProcessID, m any)
}

// ProtocolFactory creates the protocol replica for a newly activated
// instance. The returned value handles all messages that are not part of the
// shared Abstract machinery.
type ProtocolFactory func(h *Host, st *InstanceState) ProtocolReplica

// Ticker is implemented by protocol replicas that need periodic time-based
// processing (for example Backup's view-change timers); the host calls
// ProtocolTick from its event loop at the configured tick interval.
type Ticker interface {
	//abstractbft:lockheld
	ProtocolTick()
}

// Observer receives notifications about replica-side events; it is used by
// R-Aliph's monitoring (progress, fairness) and by tests.
type Observer interface {
	// RequestLogged is called when a request is appended to the local
	// history of an instance.
	//
	//abstractbft:lockheld
	RequestLogged(inst core.InstanceID, req msg.Request, pos uint64)
	// InstanceStopped is called when an instance stops (first abort).
	//
	//abstractbft:lockheld
	InstanceStopped(inst core.InstanceID)
	// InstanceActivated is called when an instance becomes active.
	//
	//abstractbft:lockheld
	InstanceActivated(inst core.InstanceID)
}

// HistoryAdopter is an optional Observer extension: when an instance
// initializes from an adopted init history, the observer receives every
// adopted request body at its absolute position. The sharded plane's
// execution feed needs this — a replica that adopts entries it never logged
// (missed ORDERs before a switch) would otherwise leave a permanent gap in
// its per-shard sequencer and stall its merged mirror forever. RequestLogged
// deliberately does not fire for adopted entries, so R-Aliph's
// progress/fairness monitoring keeps counting only locally ordered requests.
type HistoryAdopter interface {
	// RequestAdopted is called under the host lock for each adopted request
	// whose body is known, in history order; pos is the absolute position.
	//
	//abstractbft:lockheld
	RequestAdopted(inst core.InstanceID, req msg.Request, pos uint64)
}

// HistoryResetter is an optional Observer extension: when an instance
// replaces its history wholesale (adopting an init history at a switch), the
// observer learns the position the adopted history starts from before the
// adopted entries are replayed. The sharded plane's execution feed uses it
// to drop buffered speculative entries the adoption rolled back, so the
// merged mirror adopts the agreed values instead of keeping first-logged
// stale ones.
type HistoryResetter interface {
	// HistoryReset is called under the host lock when instance inst adopts
	// a history starting at absolute position baseSeq.
	//
	//abstractbft:lockheld
	HistoryReset(inst core.InstanceID, baseSeq uint64)
}

// Config configures a replica host.
type Config struct {
	// Cluster describes the replica group.
	Cluster ids.Cluster
	// Replica is this replica's identifier.
	Replica ids.ProcessID
	// Keys is the cryptographic key store.
	Keys *authn.KeyStore
	// App is the replicated application executed by this replica.
	App app.Application
	// Endpoint attaches the replica to the network.
	Endpoint transport.Endpoint
	// FirstInstance is the identifier of the first Abstract instance
	// (normally 1).
	FirstInstance core.InstanceID
	// NewProtocol creates protocol replicas per instance.
	NewProtocol ProtocolFactory
	// Batch configures the request batch assembler used by ordering replicas
	// (ZLight's primary, Chain's head). The zero value selects the defaults
	// (MaxBatch 16, MaxDelay 1ms); MaxBatch=1 disables batching and restores
	// the per-request path.
	Batch BatchPolicy
	// TimestampWindow is the per-client timestamp window width (PBFT-style):
	// a replica logs a request whose timestamp lies up to this far below the
	// client's high-water mark when that timestamp was never logged, so
	// pipelined clients whose in-flight requests overtake each other on the
	// network are not spuriously rejected as stale. 0 selects
	// DefaultTimestampWindow (64, also the cap); 1 restores the strict
	// increasing-timestamp rule.
	TimestampWindow int
	// CheckpointInterval is CHK; 0 selects the default (128), negative
	// disables checkpointing.
	CheckpointInterval int
	// DisableGC keeps the pre-statesync behaviour of retaining the whole
	// logged history and every request body for the lifetime of the replica.
	// With GC enabled (the default), the host trims digest storage and
	// request bodies below the last stable checkpoint once a snapshot covers
	// them, bounding memory for long runs; InstrumentHistories implies
	// DisableGC because the specification checker needs full histories.
	DisableGC bool
	// RetainFloor, when non-nil, bounds garbage collection from below: the
	// host never trims storage (or prunes snapshots) at or above the
	// returned position even when a stable checkpoint covers it. The sharded
	// plane points it at the merged mirror's consumed position, so a
	// recovering node can always fetch a snapshot aligned with the mirror it
	// restores — the mirror legitimately trails the per-shard checkpoints.
	// Called under the host lock; it must not call back into the host.
	//
	//abstractbft:lockheld
	RetainFloor func() uint64
	// SnapshotRetain is the number of checkpoint-boundary application
	// snapshots the replica retains for state transfer
	// (statesync.DefaultStoreCapacity when 0).
	SnapshotRetain int
	// MaxUncheckpointed bounds the number of requests a replica logs beyond
	// its last stable checkpoint (R-Aliph uses 384); 0 means unbounded.
	MaxUncheckpointed int
	// InstrumentHistories makes RESP messages carry full digest histories so
	// the specification checker can validate runs (tests only).
	InstrumentHistories bool
	// TickInterval is the period of the host's protocol tick (driving
	// time-based protocol behaviour such as view-change timers); 0 selects
	// 20ms.
	TickInterval time.Duration
	// Ops optionally counts cryptographic operations.
	Ops *authn.OpCounter
	// Logger, when non-nil, receives debug output.
	Logger *log.Logger
	// Metrics, when non-nil, receives the host's runtime metrics (ordering,
	// execution, checkpoint/GC, statesync, and composition series). Nil keeps
	// every record a no-op.
	Metrics *obs.Registry
	// MetricsLabels are label pairs baked into every host-registered series;
	// the sharded plane labels each sub-host by shard so their series stay
	// distinguishable in a shared registry.
	MetricsLabels []string
	// Tracer, when non-nil, records per-stage durations (batch assembly,
	// ordering, execution) for requests carrying a wire-propagated trace
	// context — and, when the tracer has a span ring, the spans themselves.
	// The sampling decision is the client's (head sampling); the host never
	// samples on its own.
	Tracer *obs.Tracer
	// Shard labels this host's spans and flight events in the sharded plane
	// (0 for unsharded deployments).
	Shard int
	// Flight, when non-nil, receives the host's protocol flight-recorder
	// events: instance switches with the abort reporter set, aborts,
	// checkpoints, GC runs, and state-transfer phases.
	Flight *obs.Flight
	// ProtocolName, when non-nil, names the protocol of an instance for the
	// compose_active_protocol gauge (wired from the composition's schedule;
	// called under the host lock).
	//
	//abstractbft:lockheld
	ProtocolName func(core.InstanceID) string
}

// Host is one replica of a composed Abstract protocol.
type Host struct {
	cfg     Config
	cluster ids.Cluster
	id      ids.ProcessID
	keys    *authn.KeyStore
	ep      transport.Endpoint

	mu sync.Mutex
	// instances holds the state of every instance this replica has
	// participated in, keyed by instance number.
	instances map[core.InstanceID]*InstanceState
	protocols map[core.InstanceID]ProtocolReplica
	// active is the highest activated instance.
	active core.InstanceID

	// application execution state. appliedDigs stores the digests of the
	// applied requests from position appliedTrim on (the prefix below it was
	// garbage-collected once a stable checkpoint covered it); appliedAcc is
	// the digest chain fold over the whole applied sequence, which snapshots
	// record as their history digest.
	application app.Application
	appliedSeq  uint64
	appliedDigs history.DigestHistory
	appliedTrim uint64
	appliedAcc  authn.Digest
	// appliedWindows are the per-client timestamp windows of the applied
	// request sequence — a deterministic function of the applied prefix
	// (unlike the per-instance logging windows, which logging order can
	// skew), so the checkpoint snapshots that carry them agree across
	// replicas.
	appliedWindows map[ids.ProcessID]tsState
	lastReply      map[ids.ProcessID]*replyRing
	// snapshot taken at the last instance activation, for speculative
	// rollback.
	snapApp     app.Application
	snapSeq     uint64
	snapDigs    history.DigestHistory
	snapTrim    uint64
	snapAcc     authn.Digest
	snapWindows map[ids.ProcessID]tsState
	snapRings   map[ids.ProcessID]*replyRing

	// requestStore maps request digests to bodies across instances.
	requestStore map[authn.Digest]msg.Request

	// snaps retains recent application snapshots taken at checkpoint
	// boundaries; sync tracks an in-flight state transfer (statesync plane).
	snaps *statesync.Store
	sync  *syncState

	observer Observer

	// met holds the host's metric series (always non-nil; no-op without a
	// registry). The trace* fields are the single-slot lifecycle trace state:
	// at most one sampled batch/request is in flight per stage, which keeps
	// tracing allocation-free. All are event-loop state under h.mu.
	met          *hostMetrics
	traceCtx     obs.TraceContext // context of the flushed sampled batch
	traceFlushT  time.Time        // a sampled batch was flushed, awaiting LogBatch
	traceExecCtx obs.TraceContext // context of the logged sampled batch
	traceExecT   time.Time        // a sampled request was logged, awaiting apply
	traceExecPos uint64           // applied seq at which the sampled request is applied
	traceExecOn  bool

	// fault/attack injection knobs.
	processingDelay time.Duration
	crashed         bool

	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
}

// New creates a replica host. Start must be called to begin processing.
func New(cfg Config) *Host {
	if cfg.FirstInstance == 0 {
		cfg.FirstInstance = 1
	}
	h := &Host{
		cfg:            cfg,
		cluster:        cfg.Cluster,
		id:             cfg.Replica,
		keys:           cfg.Keys,
		ep:             cfg.Endpoint,
		instances:      make(map[core.InstanceID]*InstanceState),
		protocols:      make(map[core.InstanceID]ProtocolReplica),
		application:    cfg.App,
		appliedWindows: make(map[ids.ProcessID]tsState),
		lastReply:      make(map[ids.ProcessID]*replyRing),
		requestStore:   make(map[authn.Digest]msg.Request),
		snaps:          statesync.NewStore(cfg.SnapshotRetain),
		met:            newHostMetrics(cfg.Metrics, cfg.MetricsLabels),
		stopCh:         make(chan struct{}),
		doneCh:         make(chan struct{}),
	}
	return h
}

// Start launches the host's event loop.
func (h *Host) Start() {
	h.started.Store(true)
	go h.run()
}

// Stop terminates the event loop. It is safe on a host that was never
// started (a crash-restart rejoin can fail before Start, and the node
// teardown must not block on an event loop that never ran) and on one
// already stopped.
func (h *Host) Stop() {
	h.stopOnce.Do(func() { close(h.stopCh) })
	if h.started.Load() {
		<-h.doneCh
	}
}

// ID returns the replica identifier.
func (h *Host) ID() ids.ProcessID { return h.id }

// Cluster returns the cluster configuration.
func (h *Host) Cluster() ids.Cluster { return h.cluster }

// Keys returns the key store.
func (h *Host) Keys() *authn.KeyStore { return h.keys }

// Ops returns the crypto operation counter (possibly nil).
func (h *Host) Ops() *authn.OpCounter { return h.cfg.Ops }

// InstrumentHistories reports whether RESP messages should carry full digest
// histories.
func (h *Host) InstrumentHistories() bool { return h.cfg.InstrumentHistories }

// SetObserver installs an observer; it must be called before Start.
func (h *Host) SetObserver(o Observer) { h.observer = o }

// SetProcessingDelay injects an artificial delay before handling each
// message; used by the "processing delay" attack.
func (h *Host) SetProcessingDelay(d time.Duration) {
	h.mu.Lock()
	h.processingDelay = d
	h.mu.Unlock()
}

// SetCrashed makes the replica drop every message (true) or resume (false);
// used by crash/recovery experiments.
func (h *Host) SetCrashed(c bool) {
	h.mu.Lock()
	h.crashed = c
	h.mu.Unlock()
}

// Send transmits a protocol message to another process.
func (h *Host) Send(to ids.ProcessID, m any) { h.ep.Send(to, m) }

// Multicast transmits a protocol message to several processes.
func (h *Host) Multicast(tos []ids.ProcessID, m any) { transport.Multicast(h.ep, tos, m) }

// SendBatch transmits several protocol messages to one process as a single
// coalesced wire envelope (for example the per-request replies of a batch).
func (h *Host) SendBatch(to ids.ProcessID, ms []any) { transport.SendBatch(h.ep, to, ms) }

// OtherReplicas returns the identifiers of all replicas except this one.
func (h *Host) OtherReplicas() []ids.ProcessID {
	var out []ids.ProcessID
	for _, r := range h.cluster.Replicas() {
		if r != h.id {
			out = append(out, r)
		}
	}
	return out
}

func (h *Host) logf(format string, args ...any) {
	if h.cfg.Logger != nil {
		h.cfg.Logger.Printf("replica %v: "+format, append([]any{h.id}, args...)...)
	}
}

func (h *Host) run() {
	defer close(h.doneCh)
	interval := h.cfg.TickInterval
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stopCh:
			return
		case <-ticker.C:
			h.tickProtocols()
		case env, ok := <-h.ep.Inbox():
			if !ok {
				return
			}
			h.dispatch(env)
		}
	}
}

// tickProtocols drives time-based behaviour of active protocol replicas.
func (h *Host) tickProtocols() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.crashed {
		return
	}
	for id, proto := range h.protocols {
		st := h.instances[id]
		if st == nil || st.Stopped {
			continue
		}
		if t, ok := proto.(Ticker); ok {
			t.ProtocolTick()
		}
	}
	h.tickSync()
}

func (h *Host) dispatch(env transport.Envelope) {
	h.mu.Lock()
	crashed := h.crashed
	delay := h.processingDelay
	h.mu.Unlock()
	if crashed {
		return
	}
	if delay > 0 {
		time.Sleep(delay)
	}

	h.mu.Lock()
	defer h.mu.Unlock()

	switch m := env.Payload.(type) {
	case *core.PanicMessage:
		h.handlePanic(env.From, m)
	case *core.CheckpointMessage:
		h.handleCheckpoint(m)
	case *core.FetchRequest:
		h.handleFetchRequest(m)
	case *core.FetchResponse:
		h.handleFetchResponse(m)
	case *statesync.FetchState:
		h.handleFetchState(env.From, m)
	case *statesync.State:
		h.handleState(env.From, m)
	default:
		h.routeProtocol(env.From, env.Payload)
	}
}

// routeProtocol delivers a protocol-specific message to the replica of the
// instance it belongs to, activating the instance first when the message
// carries a verifiable init history.
func (h *Host) routeProtocol(from ids.ProcessID, payload any) {
	im, ok := payload.(core.InstanceMessage)
	if !ok {
		h.logf("dropping unknown message %T", payload)
		return
	}
	inst := im.AbstractInstance()
	st := h.instances[inst]
	if st == nil {
		var init *core.InitHistory
		if carrier, ok := payload.(core.InitCarrier); ok {
			init = carrier.CarriedInit()
		}
		st = h.activate(inst, init)
		if st == nil {
			return
		}
	}
	if !st.Initialized {
		// Still waiting for missing request bodies; buffer nothing, the
		// client retries.
		if carrier, ok := payload.(core.InitCarrier); ok && carrier.CarriedInit() != nil {
			// A retransmission carrying init may help complete bodies.
			h.tryCompleteInit(st, carrier.CarriedInit())
		}
		if !st.Initialized {
			return
		}
	}
	proto := h.protocols[inst]
	if proto == nil {
		return
	}
	proto.Handle(from, payload)
}

// ActiveInstance returns the highest instance this replica has activated.
func (h *Host) ActiveInstance() core.InstanceID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.active
}

// Application returns a point-in-time snapshot of the replica's application
// (for test inspection): the clone is taken under the host lock so readers
// never race with the event loop's request execution.
func (h *Host) Application() app.Application {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.application.Clone()
}

// AppliedRequests returns the number of requests applied to the application.
func (h *Host) AppliedRequests() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.appliedSeq
}

// Bootstrap activates the host's first instance without any network traffic
// and returns its state: direct-drive benchmarks and tests log and execute
// against the instance through Locked without standing up a protocol.
func (h *Host) Bootstrap() *InstanceState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.activate(h.cfg.FirstInstance, nil)
}

// InstanceStateFor returns the state of the given instance (nil when the
// replica never activated it); exposed for tests and monitoring.
func (h *Host) InstanceStateFor(id core.InstanceID) *InstanceState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.instances[id]
}

// Locked runs fn while holding the host lock; protocol replicas handle
// messages under this lock already, but external components (such as
// R-Aliph's monitor, which initiates switching from a timer goroutine) use
// Locked to interact with instance state safely.
func (h *Host) Locked(fn func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fn()
}
