package host

import (
	"sort"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
)

// Batching defaults: a flush is triggered by the first of MaxBatch buffered
// requests or MaxDelay elapsed since the first buffered request.
const (
	DefaultMaxBatch = 16
	DefaultMaxDelay = time.Millisecond
)

// BatchPolicy configures the request batch assembler used by ordering
// replicas (the ZLight primary and the Chain head). The zero value selects
// the defaults; MaxBatch=1 disables batching entirely and reproduces the
// unbatched per-request path.
type BatchPolicy struct {
	// MaxBatch is the maximum number of requests coalesced into one batch; a
	// full buffer flushes immediately. 0 selects DefaultMaxBatch, 1 disables
	// batching (every request is its own batch, flushed inline).
	MaxBatch int
	// MaxDelay bounds how long the first buffered request may wait for
	// companions before the batch is flushed. 0 selects DefaultMaxDelay;
	// negative disables the timer (size-only flushing, for tests).
	MaxDelay time.Duration
}

// normalized returns the policy with defaults applied.
func (p BatchPolicy) normalized() BatchPolicy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = DefaultMaxBatch
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	return p
}

// BatchItem is one client request buffered by the batch assembler, together
// with the client-supplied credentials the protocol needs to forward.
type BatchItem struct {
	// Req is the client request.
	Req msg.Request
	// Auth is the client's MAC authenticator (ZLight, Quorum).
	Auth authn.Authenticator
	// CA is the client's chain authenticator (Chain).
	CA authn.ChainAuthenticator
	// Init is the init history carried by the client's first invocation.
	Init *core.InitHistory
}

// Batcher coalesces incoming client requests into batches under a size/delay
// policy. Add and Flush are called with the host lock held (from the host's
// event loop); the delay timer re-acquires the lock through Host.Locked, so
// flush callbacks always run under the same lock as protocol handlers and
// need no extra synchronization.
type Batcher struct {
	h      *Host
	policy BatchPolicy
	flush  func(items []BatchItem)

	buf   []BatchItem
	timer *time.Timer
	// gen invalidates pending timers when the buffer they were armed for has
	// already been flushed by size.
	gen uint64
	// firstAdd is the arrival time of the oldest buffered request, taken only
	// when lifecycle tracing is on: flush-time minus firstAdd is the batch
	// assembly stage of a sampled request.
	firstAdd time.Time
}

// NewBatcher creates a batch assembler bound to this host's batch policy.
// The flush callback is invoked with the host lock held.
func (h *Host) NewBatcher(flush func(items []BatchItem)) *Batcher {
	return &Batcher{h: h, policy: h.cfg.Batch.normalized(), flush: flush}
}

// Policy returns the effective (normalized) batch policy.
func (b *Batcher) Policy() BatchPolicy { return b.policy }

// Pending returns the number of buffered requests (host lock held).
func (b *Batcher) Pending() int { return len(b.buf) }

// Add buffers one request, flushing when the size trigger fires. It must be
// called with the host lock held. Exact duplicates of an already-buffered
// request (same client and timestamp) are dropped so a retransmission inside
// the delay window cannot order a request twice within one batch.
func (b *Batcher) Add(it BatchItem) {
	id := it.Req.ID()
	for _, have := range b.buf {
		if have.Req.ID() == id {
			return
		}
	}
	b.buf = append(b.buf, it)
	if len(b.buf) == 1 && b.h.cfg.Tracer != nil {
		b.firstAdd = time.Now()
	}
	if len(b.buf) >= b.policy.MaxBatch {
		b.Flush()
		return
	}
	if b.timer == nil && b.policy.MaxDelay > 0 {
		gen := b.gen
		b.timer = time.AfterFunc(b.policy.MaxDelay, func() {
			b.h.Locked(func() {
				if b.gen != gen {
					return
				}
				b.timer = nil
				b.Flush()
			})
		})
	}
}

// Flush emits the buffered requests as one batch (host lock held). The items
// are ordered by (client, timestamp) so that pipelined requests of one client
// are logged in issue order regardless of arrival interleaving.
func (b *Batcher) Flush() {
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.buf) == 0 {
		return
	}
	items := b.buf
	b.buf = nil
	b.h.met.batches.Inc()
	b.h.met.batchFill.Observe(float64(len(items)))
	if !b.firstAdd.IsZero() {
		// The batch is traced iff a member carries a client-stamped trace
		// context (head sampling happens at the client, not here).
		var ctx obs.TraceContext
		for i := range items {
			if items[i].Req.Trace.Sampled() {
				ctx = items[i].Req.Trace
				break
			}
		}
		if ctx.Sampled() {
			now := time.Now()
			b.h.cfg.Tracer.Record(ctx, obs.StageAssemble, b.h.cfg.Shard, b.firstAdd, now.Sub(b.firstAdd))
			// Hand the sampled batch to LogBatch for the ordering stage.
			b.h.traceCtx = ctx
			b.h.traceFlushT = now
		}
		b.firstAdd = time.Time{}
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].Req.Client != items[j].Req.Client {
			return items[i].Req.Client < items[j].Req.Client
		}
		return items[i].Req.Timestamp < items[j].Req.Timestamp
	})
	b.flush(items)
}

// FilterFreshItems applies the instance's batch freshness rule
// (InstanceState.FilterFreshBatch) to flushed assembler items: it returns
// the loggable items together with their batch, and the stale remainder
// (already ordered while the item waited in the assembler). Keeping orderers
// and verifiers on the same rule lives here, next to the assembler.
func FilterFreshItems(st *InstanceState, items []BatchItem) (fresh []BatchItem, batch msg.Batch, stale []BatchItem) {
	var all msg.Batch
	for _, it := range items {
		all.Requests = append(all.Requests, it.Req)
	}
	freshBatch, _ := st.FilterFreshBatch(all)
	keep := make(map[msg.RequestID]bool, freshBatch.Len())
	for _, req := range freshBatch.Requests {
		keep[req.ID()] = true
	}
	for _, it := range items {
		if keep[it.Req.ID()] {
			fresh = append(fresh, it)
		} else {
			stale = append(stale, it)
		}
	}
	return fresh, freshBatch, stale
}
