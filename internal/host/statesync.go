package host

import (
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/statesync"
)

// This file wires the checkpoint state-transfer and recovery plane
// (internal/statesync) into the replica host:
//
//   - applyRequest captures a serialized application snapshot whenever the
//     applied sequence crosses a checkpoint boundary (maybeSnapshot);
//   - a checkpoint becoming stable garbage-collects history storage and
//     request bodies below it (onStableCheckpoint), bounding memory;
//   - FETCH-STATE requests are answered with the snapshot plus the applied
//     history suffix (handleFetchState);
//   - a lagging or restarted replica runs one state transfer at a time
//     (startStateSync / handleState), accepting a snapshot only under the
//     collector's f+1 digest-agreement rule, then adopting it
//     (adoptSyncedState).

// syncState is one in-flight state transfer.
type syncState struct {
	// inst is the instance the transfer was started for (the suffix is
	// installed into its state when the replica's own history is behind).
	inst core.InstanceID
	// seq pins the accepted snapshot to boundaries at or below it; 0 asks
	// for the peers' last stable checkpoint.
	seq uint64
	col *statesync.Collector
	// ticksSinceAsk drives periodic re-multicast of the FETCH-STATE until
	// enough peers answered.
	ticksSinceAsk int
	// payloadIdx indexes OtherReplicas for the designated payload shipper of
	// the digest-first handshake; it rotates on every retry and immediately
	// when f+1 digests agree but the payload is missing or fails its hash.
	payloadIdx int
	// sawDesignated records that the currently designated peer has answered
	// this designation round: once it has, an agreed-but-unsupplied payload
	// can only mean the peer is behind or lying, so the fetcher re-asks at
	// once instead of waiting out the retry timer (regardless of whether
	// the designated response or the f+1th digest vote arrived last).
	sawDesignated bool
}

// syncRetryTicks is how many protocol ticks pass between FETCH-STATE
// retransmissions of an unfinished transfer.
const syncRetryTicks = 10

// checkpointEvery returns the effective checkpoint interval (0 when
// checkpointing is disabled).
func (h *Host) checkpointEvery() uint64 {
	iv := h.cfg.CheckpointInterval
	if iv == 0 {
		iv = history.DefaultCheckpointInterval
	}
	if iv < 0 {
		return 0
	}
	return uint64(iv)
}

// maybeSnapshot captures a serialized application snapshot when the applied
// sequence sits on a checkpoint boundary. The snapshot records the applied
// digest chain fold as its history digest, so two replicas that executed the
// same prefix produce snapshots agreeing on (Seq, HistDigest, AppDigest) —
// the identity the transfer protocol requires f+1 matching votes on.
func (h *Host) maybeSnapshot() {
	iv := h.checkpointEvery()
	if iv == 0 || h.appliedSeq == 0 || h.appliedSeq%iv != 0 {
		return
	}
	if h.cfg.RetainFloor != nil {
		h.snaps.SetFloor(h.cfg.RetainFloor())
	}
	// The snapshot carries the per-client timestamp windows of the applied
	// prefix (under the agreed payload digest): a restarted replica restores
	// them so a client retransmitting a request from below the adopted
	// boundary cannot get it re-executed.
	windows := make([]statesync.ClientWindow, 0, len(h.appliedWindows))
	for c, w := range h.appliedWindows {
		windows = append(windows, statesync.ClientWindow{Client: c, High: w.high, Mask: w.mask})
	}
	// The per-client reply rings ride along (deterministic contents of the
	// applied prefix, digest-covered like the windows): a restarted replica
	// must serve retransmissions of pre-snapshot requests from cache like
	// its live peers, or it starves the all-replica commit rule.
	rings := make([]statesync.ClientRing, 0, len(h.lastReply))
	for c, ring := range h.lastReply {
		ts, replies := ring.entries()
		if len(ts) == 0 {
			continue
		}
		rings = append(rings, statesync.ClientRing{Client: c, Timestamps: ts, Replies: replies})
	}
	h.snaps.Add(statesync.NewSnapshot(h.appliedSeq, h.appliedAcc, h.application.Snapshot(), windows, rings))
	h.met.checkpoints.Inc()
	h.cfg.Flight.Record("checkpoint", h.cfg.Shard, "snapshot at seq %d", h.appliedSeq)
	// A checkpoint can stabilize before the application executes up to it
	// (logging runs ahead of execution within a batch): garbage collection
	// deferred then runs now that the application crossed the boundary.
	if st := h.instances[h.active]; st != nil {
		h.onStableCheckpoint(st)
	}
}

// onStableCheckpoint garbage-collects replica state below a newly stable
// checkpoint: the active instance's materialized digest prefix, the host's
// applied digest prefix, the request bodies only that prefix named, and
// snapshots older than the stable one. The digest chains are left folds, so
// trimming storage changes no observable digest; abort reports only ever
// carry the suffix from the stable checkpoint, which is retained.
func (h *Host) onStableCheckpoint(st *InstanceState) {
	if h.cfg.DisableGC || h.cfg.InstrumentHistories {
		return
	}
	s := st.Checkpoint.StableSeq()
	if h.cfg.RetainFloor != nil {
		if floor := h.cfg.RetainFloor(); floor < s {
			s = floor
		}
	}
	// Quantize the trim point down to a retained snapshot boundary: a
	// FETCH-STATE pinned anywhere at or above the trim point must always be
	// answerable with a snapshot plus a complete suffix, so storage may only
	// ever be released below a boundary that is still served.
	if sn, ok := h.snaps.LatestAtOrBelow(s); ok {
		s = sn.Seq
	} else {
		return
	}
	if st.ID != h.active || h.appliedSeq < s {
		// The application has not yet executed up to the stable point
		// (bodies missing below an adopted base checkpoint): keep storage
		// until it catches up; the next stable checkpoint retries.
		return
	}
	dropped := st.TrimTo(s)
	var appliedDropped history.DigestHistory
	if s > h.appliedTrim {
		k := s - h.appliedTrim
		if k > uint64(len(h.appliedDigs)) {
			k = uint64(len(h.appliedDigs))
		}
		appliedDropped = h.appliedDigs[:k]
		h.appliedDigs = append(history.DigestHistory(nil), h.appliedDigs[k:]...)
		h.appliedTrim += k
	}
	// Superseded (stopped, non-active) instances would otherwise pin their
	// whole pre-switch history and every body it names for the life of the
	// replica. Freeze each one's signed abort first — late panickers still
	// get the full report, whose suffix the cached abort holds its own copy
	// of — then release the storage entirely.
	for id, inst := range h.instances {
		if id == h.active || !inst.Stopped || !inst.Initialized {
			continue
		}
		if inst.cachedAbort == nil {
			h.signedAbort(inst)
		}
		dropped = append(dropped, inst.TrimTo(inst.AbsLen())...)
	}
	if len(dropped) == 0 && len(appliedDropped) == 0 {
		return
	}
	h.met.gcRuns.Inc()
	h.met.stableSeq.Set(int64(s))
	h.cfg.Flight.Record("gc", h.cfg.Shard,
		"trimmed below stable seq %d (%d instance digests, %d applied digests)",
		s, len(dropped), len(appliedDropped))
	// Release request bodies named only by the dropped prefixes.
	retained := make(map[authn.Digest]bool)
	for _, inst := range h.instances {
		for _, d := range inst.Digests {
			retained[d] = true
		}
	}
	for _, d := range h.appliedDigs {
		retained[d] = true
	}
	release := func(ds history.DigestHistory) {
		for _, d := range ds {
			if !retained[d] {
				if _, ok := h.requestStore[d]; ok {
					delete(h.requestStore, d)
					h.met.gcBodies.Inc()
				}
			}
		}
	}
	release(dropped)
	release(appliedDropped)
	h.snaps.PruneBelow(s)
}

// handleFetchState answers a peer's FETCH-STATE: the snapshot the request
// selects plus the applied history suffix (digests and known bodies) beyond
// it. A replica that garbage-collected past the requested boundary cannot
// serve the suffix and stays silent; the fetcher's f+1 rule tolerates that.
// The claimed sender must match the transport-level sender, so a Byzantine
// process cannot direct responses at an uninvolved replica.
func (h *Host) handleFetchState(from ids.ProcessID, m *statesync.FetchState) {
	if !m.From.IsReplica() || m.From == h.id || m.From != from {
		return
	}
	inst := m.Instance
	if inst == 0 {
		inst = h.active
	}
	st := h.instances[inst]
	if st == nil || !st.Initialized {
		return
	}
	resp := &statesync.State{Instance: inst, From: h.id, BodiesFrom: m.BodiesFrom}
	var suffixFrom uint64
	switch {
	case m.Seq > 0:
		if sn, ok := h.snaps.LatestAtOrBelow(m.Seq); ok {
			resp.Snap = sn
			suffixFrom = sn.Seq
		}
	default:
		if s := st.Checkpoint.StableSeq(); s > 0 {
			if sn, ok := h.snaps.LatestAtOrBelow(s); ok {
				resp.Snap = sn
				suffixFrom = sn.Seq
			}
		}
	}
	if suffixFrom < h.appliedTrim {
		return
	}
	// Digest-first handshake: only the designated replica ships the snapshot
	// payload (serialized application state + timestamp windows); everyone
	// else vouches for its identity with digests alone. Suffix bodies are
	// bounded by the uncheckpointed backlog — small compared to the state —
	// and still come from everyone, so body completeness keeps its old f+1
	// redundancy.
	if m.BodiesFrom != h.id {
		resp.Snap = resp.Snap.StripPayload()
	}
	for p := suffixFrom; p < h.appliedSeq; p++ {
		d := h.appliedDigs[p-h.appliedTrim]
		resp.SuffixDigests = append(resp.SuffixDigests, d)
		if r, ok := h.requestStore[d]; ok {
			resp.SuffixRequests = append(resp.SuffixRequests, r.Clone())
		}
	}
	h.met.ssServed.Inc()
	h.met.ssBytesOut.Add(uint64(len(resp.Snap.AppState)))
	h.Send(m.From, resp)
}

// startStateSync begins (or retargets) the host's state transfer. Callers
// hold the host lock.
func (h *Host) startStateSync(inst core.InstanceID, seq uint64) {
	if h.sync != nil && h.sync.inst == inst && h.sync.seq == seq {
		return
	}
	col := statesync.NewCollector(h.cluster.F)
	if seq > 0 {
		col.ExpectAtOrBelow(seq)
	}
	h.sync = &syncState{inst: inst, seq: seq, col: col}
	h.met.ssStarted.Inc()
	h.cfg.Flight.Record("statesync-start", h.cfg.Shard, "instance %d, max seq %d", inst, seq)
	h.logf("statesync: fetching state (instance %d, max seq %d)", inst, seq)
	h.sendFetchState()
}

// sendFetchState multicasts the transfer's FETCH-STATE, designating one peer
// to ship the snapshot payload (digest-first handshake: everyone else
// answers with digests only, so a fetch costs one payload transfer, not 3f).
func (h *Host) sendFetchState() {
	others := h.OtherReplicas()
	if len(others) == 0 {
		return
	}
	designated := others[h.sync.payloadIdx%len(others)]
	h.Multicast(others, &statesync.FetchState{
		Instance:   h.sync.inst,
		From:       h.id,
		Seq:        h.sync.seq,
		BodiesFrom: designated,
	})
}

// SyncState asks the peers for their checkpoint state and catches this
// replica up to it: the crash-restart path. maxSeq, when non-zero, pins the
// accepted snapshot to checkpoint boundaries at or below it (a recovering
// sharded replica aligns each shard with its restored merge boundary); 0
// accepts the peers' last stable checkpoint. The transfer completes
// asynchronously, retrying until f+1 peers agree.
func (h *Host) SyncState(maxSeq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.instances[h.active]
	if st == nil {
		st = h.activate(h.cfg.FirstInstance, nil)
		if st == nil {
			return
		}
	}
	h.startStateSync(st.ID, maxSeq)
}

// Syncing reports whether a state transfer is still in flight.
func (h *Host) Syncing() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sync != nil
}

// tickSync retransmits the FETCH-STATE of an unfinished transfer. Called
// from the protocol tick under the host lock.
func (h *Host) tickSync() {
	if h.sync == nil {
		return
	}
	h.sync.ticksSinceAsk++
	if h.sync.ticksSinceAsk < syncRetryTicks {
		return
	}
	h.sync.ticksSinceAsk = 0
	// Rotate the designated payload shipper: if the previous one crashed or
	// lied, another peer of the agreed group serves the next round.
	h.sync.payloadIdx++
	h.sync.sawDesignated = false
	h.met.ssRetries.Inc()
	h.cfg.Flight.Record("statesync-retry", h.cfg.Shard,
		"instance %d, max seq %d", h.sync.inst, h.sync.seq)
	h.sendFetchState()
}

// handleState feeds one peer's STATE response to the in-flight transfer and
// adopts the result once f+1 peers agree. The response's claimed sender must
// match the transport-level sender: the collector counts one vote per
// distinct replica, and a Byzantine peer forging distinct From fields could
// otherwise stuff the f+1 agreement by itself.
func (h *Host) handleState(from ids.ProcessID, m *statesync.State) {
	if h.sync == nil || m.From != from {
		return
	}
	if err := h.sync.col.Add(m); err != nil {
		return
	}
	// Count the designated peer as heard only when the response was produced
	// for a fetch that designated it (BodiesFrom echo): a stale digest-only
	// answer from a just-designated peer must not trigger rotation past it.
	others := h.OtherReplicas()
	if len(others) > 0 && m.From == others[h.sync.payloadIdx%len(others)] && m.BodiesFrom == m.From {
		h.sync.sawDesignated = true
	}
	a, ok := h.sync.col.Result()
	if !ok {
		// f+1 digests agree but the payload is missing or failed its hash,
		// and the designated peer has already answered (so waiting cannot
		// help): re-ask at once with the next peer designated instead of
		// waiting out the retry timer. The sawDesignated flag resets with
		// each designation, bounding the extra multicasts to one per round.
		if h.sync.col.NeedPayload() && h.sync.sawDesignated {
			h.sync.payloadIdx++
			h.sync.sawDesignated = false
			h.sync.ticksSinceAsk = 0
			h.sendFetchState()
		}
		return
	}
	inst := h.sync.inst
	h.sync = nil
	h.adoptSyncedState(a, inst)
}

// adoptSyncedState installs an accepted state transfer: the application is
// restored to the snapshot when it is behind it, the transferred bodies are
// stored, and — when this replica's own explicit history is behind the
// snapshot (a fresh restart rather than a below-base fill) — the agreed
// suffix becomes the instance's history, with the covered prefix represented
// by its digest fold exactly as garbage collection would leave it.
func (h *Host) adoptSyncedState(a *statesync.Adopted, inst core.InstanceID) {
	h.met.ssAdopted.Inc()
	h.met.ssBytesIn.Add(uint64(len(a.Snap.AppState)))
	h.cfg.Flight.Record("statesync-adopt", h.cfg.Shard,
		"instance %d adopted snapshot seq %d (%d bodies)", inst, a.Snap.Seq, len(a.Bodies))
	for _, r := range a.Bodies {
		h.requestStore[r.Digest()] = r
	}
	restored := false
	if a.Snap.Seq > h.appliedSeq {
		if !a.Snap.IsZero() {
			if err := h.application.Restore(a.Snap.AppState); err != nil {
				h.logf("statesync: snapshot restore failed: %v", err)
				return
			}
		}
		h.appliedSeq = a.Snap.Seq
		h.appliedTrim = a.Snap.Seq
		h.appliedDigs = nil
		h.appliedAcc = a.Snap.HistDigest
		restored = true
	}
	st := h.instances[inst]
	if st == nil {
		return
	}
	// Restore the transferred per-client timestamp windows into the host's
	// applied windows and the instance's logging windows: the suffix bodies
	// below rebuild only the marks above the snapshot, so without these a
	// retransmission from below the adopted boundary would be accepted as
	// fresh and re-executed.
	for _, w := range a.Snap.Windows {
		h.appliedWindows[w.Client] = h.appliedWindows[w.Client].merge(tsState{high: w.High, mask: w.Mask})
		st.AdoptWindow(w.Client, w.High, w.Mask)
	}
	// Restore the transferred reply rings (oldest first, so eviction keeps
	// the newest entries): retransmissions of requests from below the
	// adopted boundary are served from cache exactly as on the live peers.
	for _, ring := range a.Snap.Rings {
		r := h.replyRingFor(ring.Client)
		for i, ts := range ring.Timestamps {
			if i < len(ring.Replies) {
				r.add(ts, ring.Replies[i])
			}
		}
	}
	if st.BaseSeq == 0 && st.AbsLen() <= a.Snap.Seq && a.End() > st.AbsLen() {
		st.trimmed = a.Snap.Seq
		st.trimAcc = a.Snap.HistDigest
		st.chainAcc = a.Snap.HistDigest
		st.chainLen = a.Snap.Seq
		st.ckptAcc = a.Snap.HistDigest
		st.ckptLen = a.Snap.Seq
		st.Digests = a.Suffix.Clone()
		st.digestDirty = true
		if iv := uint64(st.Checkpoint.Interval); iv > 0 && a.Snap.Seq > 0 && a.Snap.Seq%iv == 0 {
			st.Checkpoint.AdoptStable(a.Snap.Seq/iv, a.Snap.HistDigest)
		}
		adopter, _ := h.observer.(HistoryAdopter)
		for i, d := range st.Digests {
			if r, ok := h.requestStore[d]; ok {
				st.markLogged(r.Client, r.Timestamp)
				if adopter != nil {
					adopter.RequestAdopted(st.ID, r, st.BaseSeq+st.trimmed+uint64(i))
				}
			}
		}
		if end := st.AbsLen(); st.NextSeq < end {
			st.NextSeq = end
		}
	}
	// Apply the agreed suffix bodies that extend the applied sequence
	// directly: in the below-base fill they cover the gap between the
	// snapshot and the instance's base checkpoint, which the instance's own
	// history (digests from the base onward) cannot reconstruct.
	for h.appliedSeq >= a.Snap.Seq && h.appliedSeq < a.End() {
		r, ok := h.requestStore[a.Suffix[h.appliedSeq-a.Snap.Seq]]
		if !ok {
			break
		}
		h.applyRequest(r)
	}
	h.reconcileApplication(st)
	if restored {
		h.takeActivationSnapshot()
	}
	h.logf("statesync: adopted snapshot at %d (+%d suffix entries)", a.Snap.Seq, len(a.Suffix))
}

// TimestampFreshFor reports whether the active instance would still log a
// request with the given client timestamp, under the host lock. Recovery
// tests use it to assert that adopted snapshots carry the per-client
// timestamp windows (a fresh verdict for a below-boundary timestamp means a
// retransmission would be re-executed).
func (h *Host) TimestampFreshFor(client ids.ProcessID, ts uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.instances[h.active]
	if st == nil {
		return true
	}
	return st.TimestampFresh(client, ts)
}

// AppliedState returns the applied sequence length and the digest chain fold
// over it — the convergence identity recovery tests and harnesses compare
// across replicas.
func (h *Host) AppliedState() (uint64, authn.Digest) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.appliedSeq, h.appliedAcc
}

// CheckpointStatus reports the active instance's stable checkpoint position
// and how many history entries were garbage-collected, under the host lock
// (safe against the running event loop, unlike reading the instance state
// directly).
func (h *Host) CheckpointStatus() (stableSeq, trimmed uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.instances[h.active]
	if st == nil {
		return 0, 0
	}
	return st.Checkpoint.StableSeq(), st.Trimmed()
}

// GCStats reports the retained storage of the replica: materialized history
// digests of the active instance, applied digests, stored request bodies,
// and retained snapshots. The memory bench asserts these stay flat over long
// runs with GC on.
func (h *Host) GCStats() (histDigests, appliedDigests, storedRequests, snapshots int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st := h.instances[h.active]; st != nil {
		histDigests = len(st.Digests)
	}
	return histDigests, len(h.appliedDigs), len(h.requestStore), h.snaps.Len()
}
