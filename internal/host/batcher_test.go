package host

import (
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// newBatcherHost builds a minimal host for batch-assembler tests; the host's
// event loop is not started, so tests drive the batcher directly under
// Locked (as protocol handlers do).
func newBatcherHost(t *testing.T, policy BatchPolicy) *Host {
	t.Helper()
	net := transport.NewLocal(transport.Options{})
	t.Cleanup(net.Close)
	cluster := ids.NewCluster(1)
	return New(Config{
		Cluster:  cluster,
		Replica:  ids.Replica(0),
		Keys:     authn.NewKeyStore("batcher-test"),
		App:      app.NewNull(0),
		Endpoint: net.Endpoint(ids.Replica(0)),
		Batch:    policy,
	})
}

func req(client int, ts uint64) msg.Request {
	return msg.Request{Client: ids.Client(client), Timestamp: ts, Command: []byte{byte(ts)}}
}

func TestBatcherSizeTriggeredFlush(t *testing.T) {
	h := newBatcherHost(t, BatchPolicy{MaxBatch: 3, MaxDelay: -1})
	var flushes [][]BatchItem
	b := h.NewBatcher(func(items []BatchItem) {
		flushes = append(flushes, append([]BatchItem(nil), items...))
	})
	h.Locked(func() {
		b.Add(BatchItem{Req: req(0, 1)})
		b.Add(BatchItem{Req: req(1, 1)})
		if len(flushes) != 0 {
			t.Fatalf("flushed before the size trigger: %d flushes", len(flushes))
		}
		b.Add(BatchItem{Req: req(2, 1)})
	})
	if len(flushes) != 1 || len(flushes[0]) != 3 {
		t.Fatalf("want one flush of 3 requests, got %d flushes %v", len(flushes), flushes)
	}
}

func TestBatcherDelayTriggeredFlush(t *testing.T) {
	h := newBatcherHost(t, BatchPolicy{MaxBatch: 100, MaxDelay: 5 * time.Millisecond})
	flushed := make(chan int, 1)
	b := h.NewBatcher(func(items []BatchItem) { flushed <- len(items) })
	h.Locked(func() {
		b.Add(BatchItem{Req: req(0, 1)})
		b.Add(BatchItem{Req: req(1, 1)})
	})
	select {
	case n := <-flushed:
		if n != 2 {
			t.Fatalf("delay flush delivered %d requests, want 2", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delay trigger never flushed")
	}
	h.Locked(func() {
		if b.Pending() != 0 {
			t.Fatalf("%d requests still pending after delay flush", b.Pending())
		}
	})
}

func TestBatcherSingleRequestDegenerate(t *testing.T) {
	// MaxBatch=1 must flush every request inline (the wire-compatible
	// per-request path) without ever arming the delay timer.
	h := newBatcherHost(t, BatchPolicy{MaxBatch: 1, MaxDelay: time.Hour})
	var flushes [][]BatchItem
	b := h.NewBatcher(func(items []BatchItem) {
		flushes = append(flushes, append([]BatchItem(nil), items...))
	})
	h.Locked(func() {
		b.Add(BatchItem{Req: req(0, 1)})
		b.Add(BatchItem{Req: req(0, 2)})
	})
	if len(flushes) != 2 {
		t.Fatalf("want 2 inline flushes, got %d", len(flushes))
	}
	for i, f := range flushes {
		if len(f) != 1 {
			t.Fatalf("flush %d has %d requests, want 1", i, len(f))
		}
	}
}

func TestBatcherDuplicateTimestampInOneBatch(t *testing.T) {
	h := newBatcherHost(t, BatchPolicy{MaxBatch: 3, MaxDelay: -1})
	var flushes [][]BatchItem
	b := h.NewBatcher(func(items []BatchItem) {
		flushes = append(flushes, append([]BatchItem(nil), items...))
	})
	h.Locked(func() {
		b.Add(BatchItem{Req: req(0, 7)})
		b.Add(BatchItem{Req: req(0, 7)}) // retransmission inside the window
		b.Add(BatchItem{Req: req(1, 7)})
		b.Add(BatchItem{Req: req(2, 7)})
	})
	if len(flushes) != 1 {
		t.Fatalf("want one flush, got %d", len(flushes))
	}
	got := flushes[0]
	if len(got) != 3 {
		t.Fatalf("duplicate timestamp not deduplicated: %d requests in batch", len(got))
	}
	seen := map[msg.RequestID]bool{}
	for _, it := range got {
		if seen[it.Req.ID()] {
			t.Fatalf("request %v ordered twice within one batch", it.Req.ID())
		}
		seen[it.Req.ID()] = true
	}
}

func TestFilterFreshBatchEnforcesAtMostOnce(t *testing.T) {
	st := &InstanceState{
		ID:            1,
		LastTimestamp: map[ids.ProcessID]uint64{ids.Client(0): 2},
	}

	batch := msg.BatchOf(
		req(0, 2), // stale: already logged
		req(0, 3), // fresh
		req(0, 3), // duplicate within the batch (Byzantine repetition)
		req(1, 1), // fresh, other client
		req(0, 4), // fresh, increasing
	)
	fresh, stale := st.FilterFreshBatch(batch)
	wantFresh := []msg.RequestID{req(0, 3).ID(), req(1, 1).ID(), req(0, 4).ID()}
	if fresh.Len() != len(wantFresh) {
		t.Fatalf("fresh has %d requests, want %d (stale=%d)", fresh.Len(), len(wantFresh), len(stale))
	}
	for i, want := range wantFresh {
		if fresh.Requests[i].ID() != want {
			t.Fatalf("fresh[%d] = %v, want %v", i, fresh.Requests[i].ID(), want)
		}
	}
	if len(stale) != 2 {
		t.Fatalf("stale has %d requests, want 2 (already-logged + intra-batch duplicate)", len(stale))
	}
}

func TestBatcherFlushOrderedByClientAndTimestamp(t *testing.T) {
	h := newBatcherHost(t, BatchPolicy{MaxBatch: 4, MaxDelay: -1})
	var got []BatchItem
	b := h.NewBatcher(func(items []BatchItem) { got = append([]BatchItem(nil), items...) })
	h.Locked(func() {
		b.Add(BatchItem{Req: req(1, 2)})
		b.Add(BatchItem{Req: req(0, 9)})
		b.Add(BatchItem{Req: req(1, 1)})
		b.Add(BatchItem{Req: req(0, 3)})
	})
	want := []msg.RequestID{req(0, 3).ID(), req(0, 9).ID(), req(1, 1).ID(), req(1, 2).ID()}
	if len(got) != len(want) {
		t.Fatalf("flush has %d requests, want %d", len(got), len(want))
	}
	for i, it := range got {
		if it.Req.ID() != want[i] {
			t.Fatalf("position %d: got %v want %v", i, it.Req.ID(), want[i])
		}
	}
}
