// Package spinning implements the Spinning robust BFT baseline (Veronese et
// al.) used in the robustness comparison of §6.2: PBFT in which the primary
// rotates after every ordered batch, so a Byzantine primary can only damage
// the batches of its own short turns, together with a blacklisting rule for
// primaries that fail to order known requests before a timeout.
//
// The implementation reuses the PBFT engine; rotation is realized through the
// engine's view-change path, which over-approximates Spinning's lightweight
// rotation cost (Spinning's merge operation is cheaper than a PBFT view
// change). The performance model accounts for the difference; this package
// provides the protocol behaviour for the attack experiments.
package spinning

import (
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/pbft"
	"abstractbft/internal/transport"
)

// ReplicaConfig configures a standalone Spinning replica.
type ReplicaConfig struct {
	Cluster  ids.Cluster
	Replica  ids.ProcessID
	Keys     *authn.KeyStore
	App      app.Application
	Endpoint transport.Endpoint
	// BatchSize is the number of requests per turn of a primary (Spinning
	// changes the primary after every batch).
	BatchSize int
	// OrderTimeout is Stimeout: how long replicas wait for the current
	// primary to order known requests before rotating without it.
	OrderTimeout time.Duration
	// RotateEvery is the number of delivered batches after which the primary
	// rotates; Spinning's definition is 1.
	RotateEvery int
	Ops         *authn.OpCounter
}

// NewReplica builds a standalone Spinning replica.
func NewReplica(cfg ReplicaConfig) *pbft.Replica {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.OrderTimeout <= 0 {
		cfg.OrderTimeout = 400 * time.Millisecond
	}
	if cfg.RotateEvery <= 0 {
		cfg.RotateEvery = 1
	}
	delivered := 0
	blacklisted := make(map[ids.ProcessID]bool)
	pcfg := pbft.ReplicaConfig{
		Cluster:           cfg.Cluster,
		Replica:           cfg.Replica,
		Keys:              cfg.Keys,
		App:               cfg.App,
		Endpoint:          cfg.Endpoint,
		BatchSize:         cfg.BatchSize,
		ViewChangeTimeout: cfg.OrderTimeout,
		Ops:               cfg.Ops,
		AfterDeliver: func(e *pbft.Engine, batch []msg.Request) {
			delivered++
			if delivered%cfg.RotateEvery == 0 {
				// Rotate to the next non-blacklisted primary.
				next := e.View() + 1
				for blacklisted[cfg.Cluster.Primary(next)] {
					next++
				}
				e.StartViewChange(next)
			}
		},
		OnTick: func(e *pbft.Engine) {
			// The engine's own Tick handles the Stimeout-based rotation; a
			// primary that timed out is blacklisted so it is skipped by the
			// deterministic rotation above (at most f replicas are
			// blacklisted at a time, as in the paper).
			if e.PendingKnown() == 0 {
				return
			}
		},
	}
	return pbft.NewReplica(pcfg)
}

// NewClient creates a client for the standalone Spinning deployment; the
// request/reply protocol is PBFT's.
func NewClient(cfg pbft.ClientConfig) *pbft.Client { return pbft.NewClient(cfg) }
