package aliph_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/aliph"
	"abstractbft/internal/app"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func newCluster(t *testing.T, f int, checker *core.SpecChecker, opts aliph.Options) *deploy.Cluster {
	t.Helper()
	if opts.ViewChangeTimeout == 0 {
		opts.ViewChangeTimeout = 300 * time.Millisecond
	}
	c, err := deploy.New(deploy.Config{
		F:      f,
		NewApp: func() app.Application { return app.NewCounter() },
		NewReplicaFactory: func(cluster ids.Cluster) host.ProtocolFactory {
			return aliph.ReplicaFactory(cluster, opts)
		},
		NewInstanceFactory:  aliph.InstanceFactory,
		Delta:               25 * time.Millisecond,
		InstrumentHistories: true,
		Checker:             checker,
		TickInterval:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestAliphSingleClientUsesQuorum: without contention or failures, Quorum
// commits everything and no switching happens.
func TestAliphSingleClientUsesQuorum(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker, aliph.Options{})
	client, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for ts := uint64(1); ts <= 25; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("x")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
	}
	if client.Switches() != 0 {
		t.Errorf("single-client run switched %d times, expected 0 (Quorum suffices without contention)", client.Switches())
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

// TestAliphContentionSwitchesToChain: concurrent clients create contention;
// Quorum aborts and the composition must settle on Chain, still committing
// every request exactly once.
func TestAliphContentionSwitchesToChain(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker, aliph.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const clients = 5
	const perClient = 15
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	switchCount := make([]uint64, clients)
	for i := 0; i < clients; i++ {
		client, err := c.NewClient(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, client *core.Composer) {
			defer wg.Done()
			for ts := uint64(1); ts <= perClient; ts++ {
				req := msg.Request{Client: ids.Client(i), Timestamp: ts, Command: []byte(fmt.Sprintf("c%d-%d", i, ts))}
				if _, err := client.Invoke(ctx, req); err != nil {
					errCh <- fmt.Errorf("client %d invoke %d: %w", i, ts, err)
					return
				}
			}
			switchCount[i] = client.Switches()
		}(i, client)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
	// Every replica must eventually execute all requests exactly once.
	total := uint64(clients * perClient)
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < c.Cluster.N; i++ {
		h := c.Host(i)
		if i < 2 { // with f=1 only the last f+1 Chain replicas execute eagerly
			for h.AppliedRequests() < total && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	counter := c.Host(c.Cluster.N - 1).Application().(*app.Counter)
	if counter.Value() != total {
		t.Errorf("tail replica executed %d requests, want %d", counter.Value(), total)
	}
}

// TestAliphCrashFallsBackToBackup: with a crashed replica neither Quorum nor
// Chain can commit; Backup (PBFT) must take over and keep the service live.
func TestAliphCrashFallsBackToBackup(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker, aliph.Options{})
	client, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	c.Host(1).SetCrashed(true)
	for ts := uint64(1); ts <= 12; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("y")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d with crashed replica: %v", ts, err)
		}
	}
	if client.Switches() == 0 {
		t.Errorf("expected switches under a crashed replica")
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

// TestAliphLowLoadReturnsToQuorum: under contention Aliph moves to Chain;
// when contention disappears the low-load optimization must steer the
// composition back to Quorum via a one-request Backup.
func TestAliphLowLoadReturnsToQuorum(t *testing.T) {
	checker := core.NewSpecChecker()
	c := newCluster(t, 1, checker, aliph.Options{LowLoadAfter: 300 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Phase 1: two clients in parallel to force a switch to Chain.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		client, err := c.NewClient(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, client *core.Composer) {
			defer wg.Done()
			for ts := uint64(1); ts <= 10; ts++ {
				req := msg.Request{Client: ids.Client(i), Timestamp: ts, Command: []byte("p1")}
				if _, err := client.Invoke(ctx, req); err != nil {
					t.Errorf("phase1 client %d invoke %d: %v", i, ts, err)
					return
				}
			}
		}(i, client)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Phase 2: a single client keeps issuing requests; after LowLoadAfter the
	// Chain replicas stop with the low-load flag and the composition returns
	// to Quorum. The client must keep committing throughout.
	solo, err := c.NewClient(5)
	if err != nil {
		t.Fatal(err)
	}
	start := solo.ActiveInstance()
	for ts := uint64(1); ts <= 200; ts++ {
		req := msg.Request{Client: ids.Client(5), Timestamp: ts, Command: []byte("p2")}
		if _, err := solo.Invoke(ctx, req); err != nil {
			t.Fatalf("phase2 invoke %d: %v", ts, err)
		}
		time.Sleep(5 * time.Millisecond)
		if solo.ActiveInstance() > start && aliph.RoleOf(solo.ActiveInstance()) == aliph.RoleQuorum {
			break
		}
	}
	if aliph.RoleOf(solo.ActiveInstance()) != aliph.RoleQuorum {
		t.Errorf("composition did not return to Quorum under low load (active role %v, instance %d)",
			aliph.RoleOf(solo.ActiveInstance()), solo.ActiveInstance())
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

func TestRoleOf(t *testing.T) {
	want := map[core.InstanceID]aliph.Role{
		1: aliph.RoleQuorum, 2: aliph.RoleChain, 3: aliph.RoleBackup,
		4: aliph.RoleQuorum, 5: aliph.RoleChain, 6: aliph.RoleBackup,
	}
	for id, role := range want {
		if got := aliph.RoleOf(id); got != role {
			t.Errorf("RoleOf(%d) = %v, want %v", id, got, role)
		}
	}
	if aliph.BackupIndex(3) != 0 || aliph.BackupIndex(6) != 1 || aliph.BackupIndex(9) != 2 {
		t.Errorf("BackupIndex wrong")
	}
}
