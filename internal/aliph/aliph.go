// Package aliph implements Aliph (§5), the paper's new BFT protocol built as
// the static composition Quorum → Chain → Backup → Quorum → ...: Quorum
// serves contention-free periods with two-message-delay latency, Chain serves
// contended periods with a pipelined pattern whose MAC cost at the bottleneck
// replica tends to one operation per request, and Backup (PBFT) guarantees
// progress under asynchrony and failures, committing an exponentially growing
// number of requests before handing control back to Quorum.
package aliph

import (
	"time"

	"abstractbft/internal/backup"
	"abstractbft/internal/chain"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/quorum"
)

// Role identifies which Abstract implementation an instance number runs.
type Role int

// Roles of the Aliph composition, in switching order.
const (
	RoleQuorum Role = iota
	RoleChain
	RoleBackup
)

// RoleOf returns the role of instance id: 1 is Quorum, 2 is Chain, 3 is
// Backup, 4 is Quorum again, and so on.
func RoleOf(id core.InstanceID) Role {
	switch id % 3 {
	case 1:
		return RoleQuorum
	case 2:
		return RoleChain
	default:
		return RoleBackup
	}
}

// BackupIndex returns the 0-based index of a Backup instance within the
// composition (instance 3 is Backup #0, instance 6 is Backup #1, ...).
func BackupIndex(id core.InstanceID) int {
	if id < 3 {
		return 0
	}
	return int(id/3) - 1
}

// Options tunes the composition.
type Options struct {
	// BackupK is Backup's commit-count policy; nil selects the exponential
	// policy starting at 1.
	BackupK backup.KPolicy
	// BatchSize is the PBFT batch size inside Backup.
	BatchSize int
	// ViewChangeTimeout is PBFT's view-change timeout inside Backup.
	ViewChangeTimeout time.Duration
	// LowLoadAfter enables Chain's low-load optimization: when only one
	// client has been active for this long, Chain aborts so the composition
	// returns to Quorum (0 disables it).
	LowLoadAfter time.Duration
	// Feedback optionally receives R-Aliph client feedback at Quorum and
	// Chain replicas.
	Feedback host.FeedbackSink
}

func (o Options) withDefaults() Options {
	if o.BackupK == nil {
		o.BackupK = backup.ExponentialK(1, 1<<16)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.ViewChangeTimeout <= 0 {
		o.ViewChangeTimeout = 500 * time.Millisecond
	}
	return o
}

// ReplicaFactory returns the per-instance protocol factory for Aliph
// replicas.
func ReplicaFactory(cluster ids.Cluster, opts Options) host.ProtocolFactory {
	opts = opts.withDefaults()
	qu := quorum.NewReplica(opts.Feedback)
	ch := chain.NewReplica(chain.ReplicaConfig{LowLoadAfter: opts.LowLoadAfter, Feedback: opts.Feedback})
	bu := backup.NewReplica(backup.ReplicaConfig{
		K:           opts.BackupK,
		BackupIndex: BackupIndex,
		Orderer:     backup.PBFTOrderer(opts.BatchSize, opts.ViewChangeTimeout),
	})
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		switch RoleOf(st.ID) {
		case RoleQuorum:
			return qu(h, st)
		case RoleChain:
			return ch(h, st)
		default:
			return bu(h, st)
		}
	}
}

// InstanceFactory returns the client-side factory of the composition.
func InstanceFactory(env core.ClientEnv) core.InstanceFactory {
	return func(id core.InstanceID) (core.Instance, error) {
		switch RoleOf(id) {
		case RoleQuorum:
			return quorum.NewClient(env, id), nil
		case RoleChain:
			return chain.NewClient(env, id), nil
		default:
			return backup.NewClient(env, id), nil
		}
	}
}

// NewClient creates an Aliph client: a composer starting at instance 1
// (Quorum).
func NewClient(env core.ClientEnv) (*core.Composer, error) {
	return core.NewComposer(InstanceFactory(env), 1)
}
