// Package aliph implements Aliph (§5), the paper's new BFT protocol built as
// the static composition Quorum → Chain → Backup → Quorum → ...: Quorum
// serves contention-free periods with two-message-delay latency, Chain serves
// contended periods with a pipelined pattern whose MAC cost at the bottleneck
// replica tends to one operation per request, and Backup (PBFT) guarantees
// progress under asynchrony and failures, committing an exponentially growing
// number of requests before handing control back to Quorum.
//
// Since the declarative composition API landed, Aliph is nothing but the
// registered schedule "quorum,chain,backup" (internal/compose); this package
// is a thin veneer keeping the paper's vocabulary (roles, Aliph options) and
// remains the home of the composition's documentation.
package aliph

import (
	"time"

	"abstractbft/internal/backup"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
)

// SpecName is Aliph's registered schedule name; compose.MustParse(SpecName)
// yields the "quorum,chain,backup" cycle.
const SpecName = "aliph"

// Spec returns Aliph's switching schedule.
func Spec() compose.Spec { return compose.MustParse(SpecName) }

// Role identifies which Abstract implementation an instance number runs.
type Role int

// Roles of the Aliph composition, in switching order.
const (
	RoleQuorum Role = iota
	RoleChain
	RoleBackup
)

// RoleOf returns the role of instance id, derived from the schedule: 1 is
// Quorum, 2 is Chain, 3 is Backup, 4 is Quorum again, and so on.
func RoleOf(id core.InstanceID) Role {
	switch Spec().ProtocolAt(id) {
	case "quorum":
		return RoleQuorum
	case "chain":
		return RoleChain
	default:
		return RoleBackup
	}
}

// BackupIndex returns the 0-based index of a Backup instance within the
// composition (instance 3 is Backup #0, instance 6 is Backup #1, ...).
func BackupIndex(id core.InstanceID) int { return Spec().StrongIndex(id) }

// Options tunes the composition.
type Options struct {
	// BackupK is Backup's commit-count policy; nil selects the exponential
	// policy starting at 1.
	BackupK backup.KPolicy
	// BatchSize is the PBFT batch size inside Backup.
	BatchSize int
	// ViewChangeTimeout is PBFT's view-change timeout inside Backup.
	ViewChangeTimeout time.Duration
	// LowLoadAfter enables Chain's low-load optimization: when only one
	// client has been active for this long, Chain aborts so the composition
	// returns to Quorum (0 disables it).
	LowLoadAfter time.Duration
	// Feedback optionally receives R-Aliph client feedback at Quorum and
	// Chain replicas.
	Feedback host.FeedbackSink
}

// composeOptions maps Aliph options onto the composition API's options.
func (o Options) composeOptions() compose.Options {
	return compose.Options{
		BackupK:           o.BackupK,
		BatchSize:         o.BatchSize,
		ViewChangeTimeout: o.ViewChangeTimeout,
		LowLoadAfter:      o.LowLoadAfter,
		Feedback:          o.Feedback,
	}
}

// Composition compiles Aliph's schedule with the given options; pass the
// result to deploy.Config.Composition.
func Composition(opts Options) *compose.Composition {
	return compose.MustNew(SpecName, opts.composeOptions())
}

// ReplicaFactory returns the per-instance protocol factory for Aliph
// replicas.
func ReplicaFactory(cluster ids.Cluster, opts Options) host.ProtocolFactory {
	return Composition(opts).ReplicaFactory(cluster)
}

// InstanceFactory returns the client-side factory of the composition.
func InstanceFactory(env core.ClientEnv) core.InstanceFactory {
	return Composition(Options{}).InstanceFactory(env)
}

// NewClient creates an Aliph client: a composer starting at instance 1
// (Quorum).
func NewClient(env core.ClientEnv) (*core.Composer, error) {
	return Composition(Options{}).NewClient(env)
}
