package transport

import (
	"io"
	"sync/atomic"

	"abstractbft/internal/obs"
)

// TCPMetrics bundles the transport-layer series of the observability plane:
// frames and bytes in each direction, write-coalescing flush sizes, and the
// three drop/error paths (full send queue, unencodable payload, decode
// error). A nil *TCPMetrics (endpoint not instrumented) costs one nil check
// per record site.
type TCPMetrics struct {
	reg          *obs.Registry
	framesIn     *obs.Counter   // transport_frames_total{dir="in"}
	framesOut    *obs.Counter   // transport_frames_total{dir="out"}
	bytesIn      *obs.Counter   // transport_bytes_total{dir="in"}
	bytesOut     *obs.Counter   // transport_bytes_total{dir="out"}
	flushes      *obs.Counter   // transport_flushes_total
	flushBytes   *obs.Histogram // transport_flush_bytes (coalesced write size)
	queueDrops   *obs.Counter   // transport_send_queue_drops_total
	encodeDrops  *obs.Counter   // transport_unencodable_drops_total
	decodeErrors *obs.Counter   // transport_decode_errors_total
	packsIn      *obs.Counter   // transport_pack_payloads_total (expanded)
}

// NewTCPMetrics registers the transport series in r (nil r returns nil, the
// uninstrumented endpoint).
func NewTCPMetrics(r *obs.Registry) *TCPMetrics {
	if r == nil {
		return nil
	}
	return &TCPMetrics{
		reg:          r,
		framesIn:     r.Counter("transport_frames_total", "dir", "in"),
		framesOut:    r.Counter("transport_frames_total", "dir", "out"),
		bytesIn:      r.Counter("transport_bytes_total", "dir", "in"),
		bytesOut:     r.Counter("transport_bytes_total", "dir", "out"),
		flushes:      r.Counter("transport_flushes_total"),
		flushBytes:   r.Histogram("transport_flush_bytes", obs.SizeBuckets),
		queueDrops:   r.Counter("transport_send_queue_drops_total"),
		encodeDrops:  r.Counter("transport_unencodable_drops_total"),
		decodeErrors: r.Counter("transport_decode_errors_total"),
		packsIn:      r.Counter("transport_pack_payloads_total"),
	}
}

// SetMetrics instruments the endpoint. Call it before traffic flows (only
// connections created after the call are counted). It also registers
// scrape-time gauges over the endpoint's connection table — per-conn
// send-queue depth costs the hot path nothing this way.
func (t *TCP) SetMetrics(m *TCPMetrics) {
	if m == nil {
		return
	}
	t.metrics.Store(m)
	m.reg.GaugeFunc("transport_conns", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return float64(len(t.conns))
	})
	m.reg.GaugeFunc("transport_send_queue_depth_max", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		max := 0
		for _, c := range t.conns {
			if d := len(c.out); d > max {
				max = d
			}
		}
		return float64(max)
	})
}

// countingWriter counts bytes onto the wire: the running total feeds the
// transport_bytes_total{dir="out"} counter, and the writeLoop samples n
// around each flush to size the coalesced writes.
type countingWriter struct {
	w     io.Writer
	n     atomic.Uint64
	total *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.n.Add(uint64(n))
		cw.total.Add(uint64(n))
	}
	return n, err
}

// countingReader mirrors countingWriter for the inbound byte counter.
type countingReader struct {
	r     io.Reader
	total *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.total.Add(uint64(n))
	}
	return n, err
}
