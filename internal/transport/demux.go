package transport

import (
	"sync"

	"abstractbft/internal/ids"
)

// Demux fans one process's inbox out to several virtual endpoints so that a
// client can keep multiple invocations in flight concurrently: every incoming
// envelope is broadcast to all open subscriptions, and each invocation's
// receive loop filters the messages addressed to it (exactly as it already
// does on a private inbox). Sends pass straight through to the underlying
// endpoint.
type Demux struct {
	ep Endpoint

	mu       sync.Mutex
	subs     map[uint64]*demuxEndpoint
	nextID   uint64
	closed   bool
	stop     chan struct{}
	stopOnce sync.Once
}

// demuxQueueLen is the per-subscription buffer; a full subscription drops
// messages, preserving the fair-loss model.
const demuxQueueLen = 1024

// NewDemux starts demultiplexing the endpoint's inbox. The caller must not
// read ep.Inbox directly afterwards.
func NewDemux(ep Endpoint) *Demux {
	d := &Demux{ep: ep, subs: make(map[uint64]*demuxEndpoint), stop: make(chan struct{})}
	go d.run()
	return d
}

func (d *Demux) run() {
	defer d.closeSubs()
	for {
		select {
		case env, ok := <-d.ep.Inbox():
			if !ok {
				return
			}
			d.mu.Lock()
			for _, sub := range d.subs {
				select {
				case sub.in <- env:
				default:
					// Subscription backlogged: drop (fair-loss links).
				}
			}
			d.mu.Unlock()
		case <-d.stop:
			return
		}
	}
}

// closeSubs marks the demux closed and closes every subscription.
func (d *Demux) closeSubs() {
	d.mu.Lock()
	d.closed = true
	for id, sub := range d.subs {
		close(sub.in)
		delete(d.subs, id)
	}
	d.mu.Unlock()
}

// Close detaches the demux from the endpoint: the fan-out goroutine exits
// and every open subscription's inbox is closed. The underlying endpoint
// stays open for other users.
func (d *Demux) Close() { d.stopOnce.Do(func() { close(d.stop) }) }

// Open creates a virtual endpoint receiving a copy of every incoming
// envelope. Close the returned endpoint when the invocation completes to stop
// the copying.
func (d *Demux) Open() Endpoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	sub := &demuxEndpoint{d: d, id: d.nextID, in: make(chan Envelope, demuxQueueLen)}
	d.nextID++
	if d.closed {
		close(sub.in)
		return sub
	}
	d.subs[sub.id] = sub
	return sub
}

type demuxEndpoint struct {
	d  *Demux
	id uint64
	in chan Envelope
}

func (s *demuxEndpoint) ID() ids.ProcessID { return s.d.ep.ID() }

func (s *demuxEndpoint) Send(to ids.ProcessID, payload any) { s.d.ep.Send(to, payload) }

func (s *demuxEndpoint) Inbox() <-chan Envelope { return s.in }

// Close unsubscribes the virtual endpoint; the underlying endpoint stays
// open.
func (s *demuxEndpoint) Close() {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if _, ok := s.d.subs[s.id]; !ok {
		return
	}
	delete(s.d.subs, s.id)
	close(s.in)
}

var _ Endpoint = (*demuxEndpoint)(nil)
