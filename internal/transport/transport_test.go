package transport

import (
	"testing"
	"time"

	"abstractbft/internal/ids"
)

func recvWithTimeout(t *testing.T, ep Endpoint, d time.Duration) (Envelope, bool) {
	t.Helper()
	select {
	case env, ok := <-ep.Inbox():
		return env, ok
	case <-time.After(d):
		return Envelope{}, false
	}
}

func TestLocalDelivery(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	b := net.Endpoint(ids.Replica(1))
	a.Send(ids.Replica(1), "hello")
	env, ok := recvWithTimeout(t, b, time.Second)
	if !ok || env.Payload != "hello" || env.From != ids.Replica(0) {
		t.Fatalf("delivery failed: %+v ok=%v", env, ok)
	}
	msgs, _ := net.Stats()
	if msgs != 1 {
		t.Fatalf("stats report %d messages, want 1", msgs)
	}
}

func TestLocalLossAndFilters(t *testing.T) {
	net := NewLocal(Options{LossProbability: 1.0})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	b := net.Endpoint(ids.Replica(1))
	a.Send(ids.Replica(1), "dropped")
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatalf("message delivered despite 100%% loss")
	}

	net2 := NewLocal(Options{})
	defer net2.Close()
	c := net2.Endpoint(ids.Replica(0))
	d := net2.Endpoint(ids.Replica(1))
	net2.AddFilter(func(env Envelope) bool { return env.Payload != "blocked" })
	c.Send(ids.Replica(1), "blocked")
	c.Send(ids.Replica(1), "allowed")
	env, ok := recvWithTimeout(t, d, time.Second)
	if !ok || env.Payload != "allowed" {
		t.Fatalf("filter misbehaved: %+v", env)
	}
	net2.ClearFilters()
	c.Send(ids.Replica(1), "blocked")
	if env, ok := recvWithTimeout(t, d, time.Second); !ok || env.Payload != "blocked" {
		t.Fatalf("filter not cleared")
	}
}

func TestLocalPartitions(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	b := net.Endpoint(ids.Replica(1))
	net.Partition(ids.Replica(1), 1)
	a.Send(ids.Replica(1), "x")
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatalf("message crossed a partition")
	}
	net.Heal()
	a.Send(ids.Replica(1), "y")
	if env, ok := recvWithTimeout(t, b, time.Second); !ok || env.Payload != "y" {
		t.Fatalf("message not delivered after healing")
	}
}

func TestLocalDelay(t *testing.T) {
	net := NewLocal(Options{Delay: SymmetricDelay(30 * time.Millisecond)})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	b := net.Endpoint(ids.Replica(1))
	start := time.Now()
	a.Send(ids.Replica(1), "slow")
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatalf("delayed message never delivered")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("message delivered after %v, expected at least ~30ms", elapsed)
	}
}

func TestMulticast(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	src := net.Endpoint(ids.Client(0))
	dests := []ids.ProcessID{ids.Replica(0), ids.Replica(1), ids.Replica(2)}
	eps := make([]Endpoint, len(dests))
	for i, d := range dests {
		eps[i] = net.Endpoint(d)
	}
	Multicast(src, dests, 7)
	for i, ep := range eps {
		if env, ok := recvWithTimeout(t, ep, time.Second); !ok || env.Payload != 7 {
			t.Fatalf("destination %d did not receive the multicast", i)
		}
	}
}

func TestTCPTransport(t *testing.T) {
	addrs := map[ids.ProcessID]string{
		ids.Replica(0): "127.0.0.1:0",
	}
	a, err := NewTCP(ids.Replica(0), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs2 := map[ids.ProcessID]string{
		ids.Replica(0): a.Addr(),
		ids.Replica(1): "127.0.0.1:0",
	}
	b, err := NewTCP(ids.Replica(1), addrs2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	RegisterWireType("")
	b.Send(ids.Replica(0), "over-tcp")
	select {
	case env := <-a.Inbox():
		if env.Payload != "over-tcp" || env.From != ids.Replica(1) {
			t.Fatalf("unexpected envelope %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("TCP message not delivered")
	}
}
