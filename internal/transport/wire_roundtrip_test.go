package transport_test

// The wire registration audit: every message type that crosses a
// transport.Endpoint — protocol messages, batches, null-ops, the state
// transfer plane, and the sharded plane's mark and recovery control messages
// — must encode/decode through a real TCP stream under BOTH wire codecs (gob
// and the hand-rolled binary codec) and come back equal. A type missing its
// transport.RegisterWireType registration or its wirecodec tag arm (or
// carrying a field a codec cannot represent) fails here instead of silently
// breaking the multi-process path: the TCP writer drops envelopes whose
// encoding fails, so without this audit a forgotten registration shows up
// only as mysterious liveness loss in deployment.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/backup"
	"abstractbft/internal/chain"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
	"abstractbft/internal/pbft"
	"abstractbft/internal/quorum"
	"abstractbft/internal/shard"
	"abstractbft/internal/statesync"
	"abstractbft/internal/transport"
	"abstractbft/internal/transport/wirecodec"
	"abstractbft/internal/zlight"
)

// wireCodecs enumerates the codecs the audit runs against; nil selects the
// default (gob).
func wireCodecs() map[string]transport.Codec {
	return map[string]transport.Codec{
		"gob":    nil,
		"binary": wirecodec.Binary(),
	}
}

// newTCPPair builds two mutually addressed TCP endpoints on loopback using
// the given wire codec (nil = gob).
func newTCPPair(t *testing.T, codec transport.Codec) (*transport.TCP, *transport.TCP) {
	t.Helper()
	addrs := map[ids.ProcessID]string{
		ids.Replica(0): "127.0.0.1:0",
	}
	a, err := transport.NewTCPCodec(ids.Replica(0), addrs, nil, codec)
	if err != nil {
		t.Fatalf("endpoint a: %v", err)
	}
	addrs2 := map[ids.ProcessID]string{
		ids.Replica(0): a.Addr(),
		ids.Replica(1): "127.0.0.1:0",
	}
	b, err := transport.NewTCPCodec(ids.Replica(1), addrs2, nil, codec)
	if err != nil {
		t.Fatalf("endpoint b: %v", err)
	}
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	return a, b
}

// wirePayloads enumerates one fully populated instance of every message that
// crosses the wire. Slice fields are non-empty (gob decodes empty slices as
// nil, which would make the equality check ambiguous); pointer fields are
// set.
func wirePayloads() []any {
	req := msg.Request{Client: ids.Client(3), Timestamp: 7, Command: []byte("cmd-a")}
	req2 := msg.Request{Client: ids.Client(4), Timestamp: 9, Command: []byte("cmd-b")}
	nullOp := msg.Request{Client: ids.NullOp, Timestamp: 12}
	batch := msg.BatchOf(req, req2)
	dig := authn.Hash([]byte("digest"))
	mac := authn.MAC{1, 2, 3}
	auth := authn.Authenticator{Sender: ids.Client(3), Entries: []authn.AuthEntry{
		{Receiver: ids.Replica(0), MAC: mac},
		{Receiver: ids.Replica(1), MAC: authn.MAC{4}},
	}}
	ca := authn.ChainAuthenticator{Entries: []authn.ChainAuthEntry{
		{Signer: ids.Replica(0), Receiver: ids.Replica(1), MAC: mac},
	}}
	init := &core.InitHistory{
		From: 1,
		For:  2,
		Extract: history.ExtractResult{
			BaseSeq:    8,
			BaseDigest: dig,
			Suffix:     history.DigestHistory{dig, authn.Hash([]byte("d2"))},
		},
	}
	signed := core.SignedAbort{
		Abort: core.AbortMessage{Instance: 1, Replica: ids.Replica(2), Timestamp: 7, Next: 2},
		Sig:   authn.Signature("sig-bytes"),
	}

	// Traced variants: a head-sampled request (trace context stamped by the
	// client) and a batch hoisting it, so every envelope-bearing carrier of
	// requests and batches is audited with the trace block populated too.
	tctx := obs.TraceContext{TraceID: 0xabcdef0112345678, Parent: 0xabcdef0112345678}
	tracedReq := msg.Request{Client: ids.Client(5), Timestamp: 11, Command: []byte("cmd-t"), Trace: tctx}
	tracedBatch := msg.BatchOf(tracedReq, req2)

	return []any{
		// Request plane: per-protocol client and ordering messages, batched
		// and degenerate, plus a Mencius-style null-op inside an ORDER.
		&zlight.RequestMessage{Instance: 1, Req: req, Init: init, Auth: auth},
		&zlight.OrderMessage{Instance: 1, Batch: batch, Seq: 5, Auths: []authn.Authenticator{auth, auth}, PrimaryMAC: mac, Init: init},
		&zlight.OrderMessage{Instance: 3, Batch: msg.BatchOf(nullOp), Seq: 9, Auths: []authn.Authenticator{{Sender: ids.NullOp}}, PrimaryMAC: mac},
		&chain.Message{Instance: 2, Req: req, Seq: 4, HasSeq: true, ReplyDigest: dig, Reply: []byte("re"), HistoryDigest: dig, CA: ca, Init: init, Feedback: []uint64{1, 2}},
		&chain.BatchMessage{Instance: 2, Batch: batch, Seq: 6, ClientCAs: []authn.ChainAuthenticator{ca, ca}, ReplyDigests: []authn.Digest{dig, dig}, HistoryDigest: dig, CA: ca, Init: init},
		&quorum.RequestMessage{Instance: 1, Req: req, Init: init, Auth: auth},
		&quorum.BatchRequestMessage{Instance: 1, Batch: batch, Init: init, Auth: auth, Feedback: []uint64{3}},
		&backup.RequestMessage{Instance: 3, Req: req, Init: init, Auth: auth},
		&backup.WrappedMessage{Instance: 3, From: ids.Replica(1), Inner: &pbft.PrePrepare{View: 1, Seq: 2, Batch: []msg.Request{req, req2}, Digest: dig, MAC: mac}},

		// The inner PBFT engine's messages (Backup wraps them, but they are
		// registered and can cross raw as well).
		&pbft.Request{Req: req, Auth: auth},
		&pbft.PrePrepare{View: 1, Seq: 2, Batch: []msg.Request{req}, Digest: dig, MAC: mac},
		&pbft.Prepare{View: 1, Seq: 2, Digest: dig, Replica: ids.Replica(1), MAC: mac},
		&pbft.Commit{View: 1, Seq: 2, Digest: dig, Replica: ids.Replica(2), MAC: mac},
		&pbft.Reply{View: 1, Replica: ids.Replica(0), Client: ids.Client(3), Timestamp: 7, Result: []byte("r"), MAC: mac},
		&pbft.ViewChange{NewView: 2, Replica: ids.Replica(1), LastDelivered: 3, Prepared: []pbft.PreparedEntry{{Seq: 4, Digest: dig, Batch: []msg.Request{req}}}, Sig: authn.Signature("s")},
		&pbft.NewView{View: 2, ViewChanges: []pbft.ViewChange{{NewView: 2, Replica: ids.Replica(1), Sig: authn.Signature("s")}}, Proposals: []pbft.PrePrepare{{View: 2, Seq: 4, Digest: dig, MAC: mac}}},

		// The composition layer: panic/abort, checkpointing, body fetch, and
		// the shared speculative RESP.
		&core.PanicMessage{Instance: 1, Client: ids.Client(3), Timestamp: 7, Init: init},
		&core.AbortReply{Instance: 1, Timestamp: 7, Signed: signed},
		&core.CheckpointMessage{From: ids.Replica(1), AbstractID: 2, Counter: 3, StateDigest: dig},
		&core.FetchRequest{Instance: 1, From: ids.Replica(2), Digests: []authn.Digest{dig}},
		&core.FetchResponse{Instance: 1, From: ids.Replica(2), Requests: []msg.Request{req}},
		&core.RespMessage{Instance: 1, Replica: ids.Replica(0), Client: ids.Client(3), Timestamp: 7, Reply: []byte("re"), ReplyDigest: dig, HistoryDigest: dig, HistoryLen: 9, MAC: mac},

		// The state-transfer plane: FETCH-STATE and a STATE carrying a full
		// snapshot payload (application bytes, timestamp windows, reply
		// rings) plus the history suffix.
		&statesync.FetchState{Instance: 1, From: ids.Replica(3), Seq: 16, BodiesFrom: ids.Replica(0)},
		&statesync.State{
			Instance:   1,
			From:       ids.Replica(0),
			BodiesFrom: ids.Replica(0),
			Snap: statesync.NewSnapshot(16, dig, []byte("app-state"),
				[]statesync.ClientWindow{{Client: ids.Client(3), High: 7, Mask: 5}},
				[]statesync.ClientRing{{Client: ids.Client(3), Timestamps: []uint64{6, 7}, Replies: [][]byte{[]byte("a"), []byte("b")}}}),
			SuffixDigests:  history.DigestHistory{dig},
			SuffixRequests: []msg.Request{req},
		},

		// The sharded plane: marked traffic (protocol payloads and packs
		// wrapped per shard) and the node-level recovery control plane.
		&shard.Mark{Shard: 1, Payload: &zlight.OrderMessage{Instance: 1, Batch: batch, Seq: 5, Auths: []authn.Authenticator{auth, auth}, PrimaryMAC: mac}},
		&shard.Mark{Shard: 0, Payload: &statesync.FetchState{Instance: 1, From: ids.Replica(3), Seq: 8, BodiesFrom: ids.Replica(1)}},
		&shard.MergedQuery{From: ids.Replica(3), StateFrom: ids.Replica(0)},
		&shard.MergedState{From: ids.Replica(0), Seq: 32, Digest: dig, AppHash: dig, HasApp: true, App: []byte("merged-app")},

		// Trace-context propagation: the same carriers with sampled requests
		// and batches (flags-byte trace block on requests, high-bit count
		// marker on batches) must round-trip the context under both codecs.
		&zlight.RequestMessage{Instance: 1, Req: tracedReq, Init: init, Auth: auth},
		&zlight.OrderMessage{Instance: 1, Batch: tracedBatch, Seq: 5, Auths: []authn.Authenticator{auth}, PrimaryMAC: mac},
		&chain.Message{Instance: 2, Req: tracedReq, Seq: 4, HasSeq: true, ReplyDigest: dig, Reply: []byte("re"), HistoryDigest: dig, CA: ca},
		&chain.BatchMessage{Instance: 2, Batch: tracedBatch, Seq: 6, ClientCAs: []authn.ChainAuthenticator{ca, ca}, ReplyDigests: []authn.Digest{dig, dig}, HistoryDigest: dig, CA: ca},
		&quorum.RequestMessage{Instance: 1, Req: tracedReq, Auth: auth},
		&quorum.BatchRequestMessage{Instance: 1, Batch: tracedBatch, Auth: auth},
		&backup.RequestMessage{Instance: 3, Req: tracedReq, Auth: auth},
		&pbft.PrePrepare{View: 1, Seq: 2, Batch: []msg.Request{tracedReq, req}, Digest: dig, MAC: mac},
		&core.FetchResponse{Instance: 1, From: ids.Replica(2), Requests: []msg.Request{tracedReq}},
		&shard.Mark{Shard: 1, Payload: &zlight.OrderMessage{Instance: 1, Batch: tracedBatch, Seq: 5, Auths: []authn.Authenticator{auth}, PrimaryMAC: mac}},

		// The connection handshake control frames. They are audited here for
		// codec coverage (TestWireByteEquality and the abstractlint wirereg
		// gate); the TCP echo test skips them because an authenticated read
		// loop consumes handshake frames instead of delivering them.
		&transport.ConnChallenge{Nonce: []byte("nonce-0123456789")},
		&transport.ConnProof{Proof: mac},
	}
}

// handshakeControl reports whether a payload is consumed by the TCP read
// loop itself (never delivered to the inbox), so stream echo tests must skip
// it.
func handshakeControl(p any) bool {
	switch p.(type) {
	case *transport.ConnChallenge, *transport.ConnProof:
		return true
	}
	return false
}

// TestWireRoundTrips sends every wire message through a real TCP stream under
// each codec and asserts it arrives intact and equal.
func TestWireRoundTrips(t *testing.T) {
	for name, codec := range wireCodecs() {
		codec := codec
		t.Run(name, func(t *testing.T) {
			a, b := newTCPPair(t, codec)
			for i, payload := range wirePayloads() {
				payload := payload
				if handshakeControl(payload) {
					continue
				}
				t.Run(fmt.Sprintf("%02d_%T", i, payload), func(t *testing.T) {
					b.Send(ids.Replica(0), payload)
					select {
					case env, ok := <-a.Inbox():
						if !ok {
							t.Fatal("endpoint closed")
						}
						if !reflect.DeepEqual(env.Payload, payload) {
							t.Fatalf("round trip mutated the message:\nsent %#v\ngot  %#v", payload, env.Payload)
						}
					case <-time.After(10 * time.Second):
						t.Fatalf("message %T never arrived: dropped by the %s encoder (missing registration or tag arm?)", payload, name)
					}
				})
			}
		})
	}
}

// TestWireByteEquality asserts the binary codec's one-shot marshal of every
// audit payload decodes back equal and re-encodes to identical bytes (the
// encoding is canonical: no map iteration, no per-stream state).
func TestWireByteEquality(t *testing.T) {
	for i, payload := range wirePayloads() {
		payload := payload
		t.Run(fmt.Sprintf("%02d_%T", i, payload), func(t *testing.T) {
			first, err := wirecodec.MarshalWire(payload)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			decoded, err := wirecodec.UnmarshalWire(first)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(decoded, payload) {
				t.Fatalf("round trip mutated the message:\nsent %#v\ngot  %#v", payload, decoded)
			}
			second, err := wirecodec.MarshalWire(decoded)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("re-encoding is not byte-identical:\nfirst  %x\nsecond %x", first, second)
			}
		})
	}
}

// TestTracedEnvelopeStream round-trips envelope-level trace contexts through
// both stream codecs: a traced envelope's context must survive, and untraced
// envelopes before and after it must come back with a zero context (no bleed
// from a reused decoder).
func TestTracedEnvelopeStream(t *testing.T) {
	payload := &core.FetchRequest{Instance: 1, From: ids.Replica(2), Digests: []authn.Digest{authn.Hash([]byte("x"))}}
	envs := []transport.Envelope{
		{From: ids.Replica(1), To: ids.Replica(0), Payload: payload},
		{From: ids.Replica(1), To: ids.Replica(0), Payload: payload,
			Trace: obs.TraceContext{TraceID: 0x1122334455667788, Parent: 0x8877665544332211}},
		{From: ids.Replica(1), To: ids.Replica(0), Payload: payload},
	}
	for name, codec := range wireCodecs() {
		if codec == nil {
			codec = transport.GobCodec()
		}
		codec := codec
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			enc := codec.NewEncoder(&buf)
			for i := range envs {
				if err := enc.Encode(&envs[i]); err != nil {
					t.Fatalf("encode %d: %v", i, err)
				}
			}
			if err := enc.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			dec := codec.NewDecoder(&buf)
			for i, want := range envs {
				var got transport.Envelope
				if err := dec.Decode(&got); err != nil {
					t.Fatalf("decode %d: %v", i, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("envelope %d mutated:\nsent %#v\ngot  %#v", i, want, got)
				}
			}
		})
	}
}

// TestUntracedTraceCostsZeroWireBytes pins the tentpole's wire guarantee on
// the binary codec: requests, batches, and envelopes that carry no trace
// context must encode to exactly as many bytes as before tracing existed —
// the request flags byte sits where the old ReadOnly bool byte sat, the batch
// count keeps its plain u32 form, and the envelope header gains nothing. The
// traced forms pay exactly the documented premium (16 bytes on a request or
// batch, 18 on an envelope: the u16 marker plus two u64s).
func TestUntracedTraceCostsZeroWireBytes(t *testing.T) {
	tctx := obs.TraceContext{TraceID: 0xfeed, Parent: 0xbeef}
	plainReq := msg.Request{Client: ids.Client(3), Timestamp: 7, ReadOnly: true, Command: []byte("cmd")}
	tracedReq := plainReq
	tracedReq.Trace = tctx

	// Request: the pre-tracing encoding was id(4) + timestamp(8) + bool(1) +
	// command(4+len); the flags byte replaces the bool byte-for-byte.
	plain, err := wirecodec.MarshalWire(&quorum.RequestMessage{Instance: 1, Req: plainReq})
	if err != nil {
		t.Fatalf("marshal plain: %v", err)
	}
	// tag + instance + request (client + timestamp + flags byte + command) +
	// nil-init marker + empty authenticator (sender + entry count) + empty
	// feedback count.
	wantLen := 2 + 8 + (4 + 8 + 1 + 4 + len(plainReq.Command)) + 1 + (4 + 4) + 4
	if len(plain) != wantLen {
		t.Errorf("untraced request message: %d bytes, want %d (untraced requests must pay zero trace bytes)", len(plain), wantLen)
	}
	traced, err := wirecodec.MarshalWire(&quorum.RequestMessage{Instance: 1, Req: tracedReq})
	if err != nil {
		t.Fatalf("marshal traced: %v", err)
	}
	if len(traced) != len(plain)+16 {
		t.Errorf("traced request premium: %d bytes over %d, want exactly 16", len(traced)-len(plain), len(plain))
	}

	// Batch: the traced form pays 16 bytes for the hoisted context plus 16
	// for the traced member's own block; the untraced form pays nothing.
	req2 := msg.Request{Client: ids.Client(4), Timestamp: 9, Command: []byte("cmd-b")}
	plainBatch, err := wirecodec.MarshalWire(&quorum.BatchRequestMessage{Instance: 1, Batch: msg.BatchOf(plainReq, req2)})
	if err != nil {
		t.Fatalf("marshal plain batch: %v", err)
	}
	tracedBatch, err := wirecodec.MarshalWire(&quorum.BatchRequestMessage{Instance: 1, Batch: msg.BatchOf(tracedReq, req2)})
	if err != nil {
		t.Fatalf("marshal traced batch: %v", err)
	}
	if len(tracedBatch) != len(plainBatch)+32 {
		t.Errorf("traced batch premium: %d bytes over %d, want exactly 32", len(tracedBatch)-len(plainBatch), len(plainBatch))
	}

	// Envelope: stream-encode one untraced and one traced envelope of the
	// same payload; the untraced frame must cost header + payload exactly,
	// the traced one 18 bytes more.
	encode := func(env transport.Envelope) int {
		var buf bytes.Buffer
		enc := wirecodec.Binary().NewEncoder(&buf)
		if err := enc.Encode(&env); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		return buf.Len()
	}
	env := transport.Envelope{From: ids.Replica(1), To: ids.Replica(0), Payload: &quorum.RequestMessage{Instance: 1, Req: plainReq}}
	plainN := encode(env)
	if want := 4 + 4 + 4 + len(plain); plainN != want { // frame length prefix + from + to + payload
		t.Errorf("untraced envelope frame: %d bytes, want %d", plainN, want)
	}
	env.Trace = tctx
	if tracedN := encode(env); tracedN != plainN+18 {
		t.Errorf("traced envelope premium: %d bytes over %d, want exactly 18", tracedN-plainN, plainN)
	}
}

// TestPackedRoundTrip covers the write-coalescing pack: receivers must see
// the expanded protocol payloads, never the pack itself — including when a
// pack travels under a shard mark.
func TestPackedRoundTrip(t *testing.T) {
	for name, codec := range wireCodecs() {
		codec := codec
		t.Run(name, func(t *testing.T) {
			a, b := newTCPPair(t, codec)
			req := msg.Request{Client: ids.Client(3), Timestamp: 7, Command: []byte("cmd")}
			inner := []any{
				&core.FetchRequest{Instance: 1, From: ids.Replica(1), Digests: []authn.Digest{authn.Hash([]byte("x"))}},
				&core.FetchResponse{Instance: 1, From: ids.Replica(1), Requests: []msg.Request{req}},
			}
			transport.SendBatch(b, ids.Replica(0), inner)
			for i := 0; i < len(inner); i++ {
				select {
				case env, ok := <-a.Inbox():
					if !ok {
						t.Fatal("endpoint closed")
					}
					if !reflect.DeepEqual(env.Payload, inner[i]) {
						t.Fatalf("pack element %d mutated:\nsent %#v\ngot  %#v", i, inner[i], env.Payload)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("pack element %d never arrived", i)
				}
			}
		})
	}
}
