package transport

import (
	"context"
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/obs"
)

// RegisterWireType registers a payload type for gob encoding over the TCP
// transport. Protocol packages register their message types in init
// functions so that both the in-process and TCP transports can carry them.
// The binary codec (internal/transport/wirecodec) instead enumerates the
// closed set of wire types explicitly; adding a type there is checked by the
// round-trip audit in wire_roundtrip_test.go.
func RegisterWireType(v any) { gob.Register(v) }

func init() {
	// Packed is audited by TestPackedRoundTrip: receivers must observe the
	// unpacked payloads, so it cannot appear in the wirePayloads echo audit.
	RegisterWireType(&Packed{}) //wire:noaudit unpacked on receive; audited by TestPackedRoundTrip
	RegisterWireType(&ConnChallenge{})
	RegisterWireType(&ConnProof{})
}

// ConnChallenge is the first frame an authenticated acceptor sends on every
// accepted connection: a fresh random nonce the dialer must MAC to prove its
// claimed identity before the acceptor routes replies over the connection.
type ConnChallenge struct {
	Nonce []byte
}

// ConnProof answers a ConnChallenge: a MAC over the nonce under the pairwise
// key of (dialer, acceptor). The dialer's identity is the envelope's From
// field; the MAC pins it, because only the two key holders can produce it and
// the fresh nonce defeats replays.
type ConnProof struct {
	Proof authn.MAC
}

// connProofBytes is the domain-separated input of the handshake MAC.
func connProofBytes(nonce []byte) []byte {
	return append([]byte("tcp-conn-proof:"), nonce...)
}

// tcpConn is one outbound connection with write coalescing: senders enqueue
// envelopes on out, and a single writer goroutine drains the queue through
// the codec's stream encoder, flushing when the queue is momentarily empty or
// a short flush tick fires. A burst of messages to the same peer (a batch
// fan-out) therefore crosses the kernel as one write instead of one syscall
// per message, and under sustained load the tick bounds how long an encoded
// envelope can sit in the buffer.
type tcpConn struct {
	raw      net.Conn
	codec    Codec
	m        *TCPMetrics // nil on uninstrumented endpoints
	out      chan Envelope
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// tcpSendQueue is the per-connection outbound queue length.
const tcpSendQueue = 4096

// tcpFlushTick bounds the time an encoded envelope may wait in the writer's
// buffer while the queue stays non-empty (the flush-on-empty heuristic alone
// never flushes under a perfectly sustained producer).
const tcpFlushTick = time.Millisecond

func newTCPConn(raw net.Conn, codec Codec, m *TCPMetrics) *tcpConn {
	c := &tcpConn{
		raw:   raw,
		codec: codec,
		m:     m,
		out:   make(chan Envelope, tcpSendQueue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.writeLoop()
	return c
}

func (c *tcpConn) writeLoop() {
	defer close(c.done)
	defer c.raw.Close()
	var w io.Writer = c.raw
	var cw *countingWriter
	if c.m != nil {
		cw = &countingWriter{w: c.raw, total: c.m.bytesOut}
		w = cw
	}
	enc := c.codec.NewEncoder(w)
	// noteFlush sizes each coalesced write: the bytes the flush pushed onto
	// the wire since the previous one.
	var lastFlushed uint64
	noteFlush := func() {
		if cw == nil {
			return
		}
		if n := cw.n.Load(); n > lastFlushed {
			c.m.flushes.Inc()
			c.m.flushBytes.Observe(float64(n - lastFlushed))
			lastFlushed = n
		}
	}
	// The flush timer is armed only while encoded data sits unflushed, so
	// idle connections hold no ticking timer.
	timer := time.NewTimer(tcpFlushTick)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	dirty := false
	flush := func() bool {
		if err := enc.Flush(); err != nil {
			return false
		}
		noteFlush()
		if dirty {
			dirty = false
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		return true
	}
	for {
		select {
		case env := <-c.out:
			if err := enc.Encode(&env); err != nil {
				if errors.Is(err, ErrUnencodable) {
					// Only this envelope is unrepresentable; drop it
					// (fair-loss links) and keep the connection. Loud, because
					// a type missing from the binary codec's table shows up
					// exactly here.
					if c.m != nil {
						c.m.encodeDrops.Inc()
					}
					log.Printf("transport: dropping unencodable %T to %v (%v): %v",
						env.Payload, env.To, c.raw.RemoteAddr(), err)
					continue
				}
				return
			}
			if c.m != nil {
				c.m.framesOut.Inc()
			}
			// Coalesce: flush when no further messages are queued, so a burst
			// crosses the kernel as a single write; otherwise arm the flush
			// tick so buffered envelopes never wait longer than the tick.
			if len(c.out) == 0 {
				if !flush() {
					return
				}
			} else if !dirty {
				dirty = true
				timer.Reset(tcpFlushTick)
			}
		case <-timer.C:
			dirty = false
			if err := enc.Flush(); err != nil {
				return
			}
			noteFlush()
		case <-c.stop:
			if enc.Flush() == nil {
				noteFlush()
			}
			return
		}
	}
}

// enqueue hands an envelope to the writer. A full queue drops the message
// (fair-loss links); false reports a dead writer so the caller re-dials.
func (c *tcpConn) enqueue(env Envelope) bool {
	select {
	case <-c.done:
		return false
	default:
	}
	select {
	case c.out <- env:
	default:
		// Dropped under overload; the connection is still healthy.
		if c.m != nil {
			c.m.queueDrops.Inc()
		}
	}
	return true
}

func (c *tcpConn) close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		// Also close the socket: a writeLoop blocked inside a write syscall
		// (peer stopped reading) cannot observe the stop channel; failing
		// the write is the only way to unblock it and release the fd.
		c.raw.Close()
	})
}

// TCP is a TCP-based network for multi-process deployments. Every process
// listens on one address and dials peers lazily; connections are reused and
// writes are coalesced per connection.
type TCP struct {
	self  ids.ProcessID
	addrs map[ids.ProcessID]string
	// keys, when non-nil, enables the connection handshake: accepted
	// connections are challenged with a nonce, and reply routes toward
	// address-less peers (clients) are installed only after the dialer proves
	// its identity with a MAC over the nonce under the pairwise key. This
	// closes the reply-route squatting hole of the unauthenticated From
	// field (a liveness-only attack; protocol MACs protect safety).
	keys *authn.KeyStore
	// codec serializes envelopes on every connection of this endpoint. Both
	// sides of a connection must use the same codec; deployments agree on it
	// through the shared topology file.
	codec Codec

	mu     sync.Mutex
	conns  map[ids.ProcessID]*tcpConn
	ln     net.Listener
	closed bool

	// inMu guards the inbox against the Close race without serializing
	// delivery: readLoops hold it shared, Close exclusively.
	inMu     sync.RWMutex
	in       chan Envelope
	inClosed bool

	// proofMu guards proofSent: per-peer signals closed once this endpoint
	// has answered the peer's connection challenge (Prime waits on them).
	proofMu   sync.Mutex
	proofSent map[ids.ProcessID]chan struct{}

	// metrics instruments the endpoint when set (SetMetrics); atomic because
	// connections read it without the conns lock.
	metrics atomic.Pointer[TCPMetrics]

	// flight, when set (SetFlight), receives transport-level flight-recorder
	// events (today: decode errors that kill a connection); atomic for the
	// same reason as metrics.
	flight atomic.Pointer[obs.Flight]
}

// SetFlight attaches a flight recorder to the endpoint; transport anomalies
// (decode errors) are recorded as structured events alongside the metric
// counters.
func (t *TCP) SetFlight(f *obs.Flight) {
	if f == nil {
		return
	}
	t.flight.Store(f)
}

// NewTCP creates an unauthenticated TCP endpoint for process self listening
// on addrs[self]; addrs maps every process to its listen address. Reply
// routes are pinned by the envelope's unauthenticated From field; use
// NewTCPAuth in deployments.
func NewTCP(self ids.ProcessID, addrs map[ids.ProcessID]string) (*TCP, error) {
	return NewTCPAuth(self, addrs, nil)
}

// NewTCPAuth creates a TCP endpoint with the connection handshake enabled:
// accepted connections must answer a nonce challenge with a MAC under the
// pairwise key from keys before replies are routed over them. A nil keys
// value disables the handshake (NewTCP behaviour). The wire codec is gob.
func NewTCPAuth(self ids.ProcessID, addrs map[ids.ProcessID]string, keys *authn.KeyStore) (*TCP, error) {
	return NewTCPCodec(self, addrs, keys, nil)
}

// NewTCPCodec creates a TCP endpoint using the given wire codec; a nil codec
// selects gob. All endpoints of a deployment must use the same codec.
func NewTCPCodec(self ids.ProcessID, addrs map[ids.ProcessID]string, keys *authn.KeyStore, codec Codec) (*TCP, error) {
	if codec == nil {
		codec = GobCodec()
	}
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("transport: no address for %v", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		self:      self,
		addrs:     addrs,
		keys:      keys,
		codec:     codec,
		conns:     make(map[ids.ProcessID]*tcpConn),
		ln:        ln,
		in:        make(chan Envelope, 8192),
		proofSent: make(map[ids.ProcessID]chan struct{}),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the endpoint is listening on.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// ID implements Endpoint.
func (t *TCP) ID() ids.ProcessID { return t.self }

// Inbox implements Endpoint.
func (t *TCP) Inbox() <-chan Envelope { return t.in }

// Send implements Endpoint. Failures are silent (fair-loss links); a dead
// connection is discarded so a later send re-dials.
func (t *TCP) Send(to ids.ProcessID, payload any) {
	conn, err := t.conn(to)
	if err != nil {
		return
	}
	if !conn.enqueue(Envelope{From: t.self, To: to, Payload: payload}) {
		t.dropConn(to, conn)
	}
}

func (t *TCP) conn(to ids.ProcessID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[to]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: no address for %v", to)
	}
	t.mu.Unlock()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, fmt.Errorf("transport: closed")
	}
	if c, ok := t.conns[to]; ok {
		// Lost a dial race; use the existing connection.
		t.mu.Unlock()
		raw.Close()
		return c, nil
	}
	c := newTCPConn(raw, t.codec, t.metrics.Load())
	t.conns[to] = c
	t.mu.Unlock()
	// Responses come back on the same connection (processes without a listed
	// address — clients — cannot be dialed back).
	go t.readLoop(raw, c, nil, to)
	return c, nil
}

// noPeer marks a connection with no dialed peer (accepted connections).
const noPeer = ids.ProcessID(-1)

// registerConn installs a write path over a connection so that replies can be
// routed back to peers with no dialable address (clients behind the accept
// side). An existing healthy write path is kept — letting any connection
// displace (and close) another peer's live connection would hand Byzantine
// processes an active link-severing primitive the fair-loss model does not
// grant them. A write path whose writer already died is replaced; after a
// genuine client reconnect, the first failed write to the stale path clears
// it (Send drops it) and a later envelope on the new connection registers
// it. It reports whether the peer now routes over wconn, so callers keep
// retrying until their connection wins the route.
func (t *TCP) registerConn(peer ids.ProcessID, wconn *tcpConn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	if c, ok := t.conns[peer]; ok {
		if c == wconn {
			return true
		}
		select {
		case <-c.done:
			// Dead writer: fall through and replace it.
		default:
			return false
		}
		delete(t.conns, peer)
	}
	t.conns[peer] = wconn
	return true
}

func (t *TCP) dropConn(to ids.ProcessID, dead *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok && c == dead {
		c.close()
		delete(t.conns, to)
	}
}

// dropByRaw removes every registered write path over the given connection
// (called when its read side dies, so a later send re-dials).
func (t *TCP) dropByRaw(raw net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, c := range t.conns {
		if c.raw == raw {
			c.close()
			delete(t.conns, id)
		}
	}
}

func (t *TCP) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		// Every connection gets exactly one writer (one codec stream) created
		// up front; the acceptor challenges the dialer over it when the
		// handshake is enabled.
		wconn := newTCPConn(conn, t.codec, t.metrics.Load())
		var nonce []byte
		if t.keys != nil {
			nonce = make([]byte, 32)
			if _, err := rand.Read(nonce); err != nil {
				wconn.close()
				conn.Close()
				continue
			}
			wconn.enqueue(Envelope{From: t.self, Payload: &ConnChallenge{Nonce: nonce}})
		}
		go t.readLoop(conn, wconn, nonce, noPeer)
	}
}

// readLoop drains one connection. wconn is the connection's single writer;
// nonce is non-nil on accepted connections of an authenticated endpoint and
// holds the challenge the dialer must answer before this connection can win
// reply routes; dialed is the peer this endpoint dialed (noPeer for accepted
// connections).
func (t *TCP) readLoop(conn net.Conn, wconn *tcpConn, nonce []byte, dialed ids.ProcessID) {
	defer conn.Close()
	defer wconn.close()
	defer t.dropByRaw(conn)
	m := t.metrics.Load()
	var r io.Reader = conn
	if m != nil {
		r = &countingReader{r: conn, total: m.bytesIn}
	}
	dec := t.codec.NewDecoder(r)
	// registered caches which peers this connection already routes replies
	// for, so the global registration lock is taken once per peer rather
	// than once per message.
	registered := make(map[ids.ProcessID]bool)
	// proven is the peer that answered the challenge on this connection.
	proven := ids.ProcessID(-1)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			// EOFs and local closes are the normal ends of a connection; a
			// framing or codec error is not — it kills the connection (the
			// peer re-dials) and deserves a trace naming the peer, so
			// multi-process e2e logs stay attributable.
			if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, net.ErrClosed) {
				if m != nil {
					m.decodeErrors.Inc()
				}
				peer := "unproven peer"
				switch {
				case dialed != noPeer:
					peer = fmt.Sprintf("dialed peer %v", dialed)
				case proven >= 0:
					peer = fmt.Sprintf("proven peer %v", proven)
				}
				log.Printf("transport %v: closing connection to %s (%v) on decode error: %v",
					t.self, peer, conn.RemoteAddr(), err)
				t.flight.Load().Record("decode-error", -1,
					"%s (%v): %v", peer, conn.RemoteAddr(), err)
			}
			return
		}
		if m != nil {
			m.framesIn.Inc()
		}
		switch hs := env.Payload.(type) {
		case *ConnChallenge:
			// The acceptor challenges us: prove our identity with a MAC over
			// the nonce under the pairwise key shared with it. Only answer on
			// a connection we dialed, and only for the peer we dialed —
			// answering arbitrary challenges would turn this endpoint into a
			// MAC oracle (an attacker could forward another acceptor's nonce
			// here, harvest the proof, and replay it to squat our reply
			// route at that acceptor).
			if t.keys != nil && dialed != noPeer && env.From == dialed {
				wconn.enqueue(Envelope{From: t.self, To: env.From, Payload: &ConnProof{
					Proof: t.keys.MAC(t.self, env.From, connProofBytes(hs.Nonce)),
				}})
				// The proof is ordered ahead of every envelope enqueued after
				// this point, so the acceptor installs this endpoint's reply
				// route before processing them: signal Prime waiters.
				t.markProofSent(env.From)
			}
			continue
		case *ConnProof:
			if t.keys != nil && nonce != nil && proven < 0 {
				if t.keys.VerifyMAC(env.From, t.self, connProofBytes(nonce), hs.Proof) == nil {
					proven = env.From
					// Install the reply route right away for address-less
					// peers: their proof may be the only frame after the
					// initial request burst.
					if _, dialable := t.addrs[proven]; !dialable {
						registered[proven] = t.registerConn(proven, wconn)
					}
				}
			}
			continue
		}
		// Route replies back over this connection when the sender has no
		// dialable address (clients); keep retrying until this connection
		// wins the route (an older healthy connection is never displaced).
		// With the handshake enabled, only the proven peer may win routes —
		// an unauthenticated From cannot squat another client's replies.
		if _, dialable := t.addrs[env.From]; !dialable && !registered[env.From] {
			if t.keys == nil || (nonce != nil && env.From == proven) {
				registered[env.From] = t.registerConn(env.From, wconn)
			}
		}
		// Expand write-coalesced packs so inbox consumers only ever see
		// protocol payloads.
		if p, ok := env.Payload.(*Packed); ok {
			if m != nil {
				m.packsIn.Add(uint64(len(p.Payloads)))
			}
			for _, payload := range p.Payloads {
				if !t.deliverLocal(Envelope{From: env.From, To: env.To, Payload: payload, Trace: env.Trace}) {
					return
				}
			}
			continue
		}
		if !t.deliverLocal(env) {
			return
		}
	}
}

// deliverLocal enqueues an inbound envelope; the closed check and the send
// happen under the read side of the lock Close holds exclusively while
// closing the inbox, so a racing Close cannot make this send on a closed
// channel and concurrent readLoops do not serialize against each other. It
// reports false once the endpoint is closed.
func (t *TCP) deliverLocal(env Envelope) bool {
	t.inMu.RLock()
	defer t.inMu.RUnlock()
	if t.inClosed {
		return false
	}
	select {
	case t.in <- env:
	default:
	}
	return true
}

// proofSignal returns (lazily creating) the channel closed once this
// endpoint has answered peer's connection challenge.
func (t *TCP) proofSignal(peer ids.ProcessID) chan struct{} {
	t.proofMu.Lock()
	defer t.proofMu.Unlock()
	ch, ok := t.proofSent[peer]
	if !ok {
		ch = make(chan struct{})
		t.proofSent[peer] = ch
	}
	return ch
}

func (t *TCP) markProofSent(peer ids.ProcessID) {
	// Closed under proofMu: two connections can answer the same peer's
	// challenge concurrently (a redial racing a readLoop still draining the
	// old connection), and a bare check-then-close would double-close.
	t.proofMu.Lock()
	defer t.proofMu.Unlock()
	ch, ok := t.proofSent[peer]
	if !ok {
		ch = make(chan struct{})
		t.proofSent[peer] = ch
	}
	select {
	case <-ch:
	default:
		close(ch)
	}
}

// Prime dials the given peers and waits until this endpoint has answered
// each one's connection challenge. An address-less process (a client) whose
// first envelope raced ahead of its proof would have the replies to that
// envelope dropped at the acceptor (no reply route yet) and pay a full
// retransmission timeout; priming before the first real send makes the proof
// the first frame after the challenge, so the route exists before any
// request is processed. A no-op on unauthenticated endpoints.
func (t *TCP) Prime(ctx context.Context, peers []ids.ProcessID) error {
	if t.keys == nil {
		return nil
	}
	for _, p := range peers {
		if p == t.self {
			continue
		}
		// Retry dials until the deadline: a peer process may still be
		// binding its listen socket (restarts, rolling deploys).
		for {
			_, err := t.conn(p)
			if err == nil {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("transport: prime %v: %v (%w)", p, err, ctx.Err())
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
	for _, p := range peers {
		if p == t.self {
			continue
		}
		select {
		case <-t.proofSignal(p):
		case <-ctx.Done():
			return fmt.Errorf("transport: prime %v: %w", p, ctx.Err())
		}
	}
	return nil
}

// Close implements Endpoint.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[ids.ProcessID]*tcpConn)
	t.mu.Unlock()
	// Close the inbox under the exclusive side of the delivery lock, so no
	// readLoop can be between its closed-check and its send.
	t.inMu.Lock()
	t.inClosed = true
	close(t.in)
	t.inMu.Unlock()
	for _, c := range conns {
		c.close()
	}
	t.ln.Close()
}

var _ Endpoint = (*TCP)(nil)
