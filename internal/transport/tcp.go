package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"abstractbft/internal/ids"
)

// RegisterWireType registers a payload type for gob encoding over the TCP
// transport. Protocol packages register their message types in init
// functions so that both the in-process and TCP transports can carry them.
func RegisterWireType(v any) { gob.Register(v) }

// wireEnvelope is the on-the-wire representation of an Envelope.
type wireEnvelope struct {
	From    ids.ProcessID
	To      ids.ProcessID
	Payload any
}

// TCP is a TCP-based network for multi-process deployments. Every process
// listens on one address and dials peers lazily; connections are reused.
type TCP struct {
	self  ids.ProcessID
	addrs map[ids.ProcessID]string

	mu     sync.Mutex
	conns  map[ids.ProcessID]*gob.Encoder
	raw    map[ids.ProcessID]net.Conn
	ln     net.Listener
	in     chan Envelope
	closed bool
}

// NewTCP creates a TCP endpoint for process self listening on
// addrs[self]; addrs maps every process to its listen address.
func NewTCP(self ids.ProcessID, addrs map[ids.ProcessID]string) (*TCP, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("transport: no address for %v", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		self:  self,
		addrs: addrs,
		conns: make(map[ids.ProcessID]*gob.Encoder),
		raw:   make(map[ids.ProcessID]net.Conn),
		ln:    ln,
		in:    make(chan Envelope, 8192),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the endpoint is listening on.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// ID implements Endpoint.
func (t *TCP) ID() ids.ProcessID { return t.self }

// Inbox implements Endpoint.
func (t *TCP) Inbox() <-chan Envelope { return t.in }

// Send implements Endpoint. Failures are silent (fair-loss links); the
// connection is discarded so a later send re-dials.
func (t *TCP) Send(to ids.ProcessID, payload any) {
	enc, err := t.encoder(to)
	if err != nil {
		return
	}
	env := wireEnvelope{From: t.self, To: to, Payload: payload}
	if err := enc.Encode(&env); err != nil {
		t.dropConn(to)
	}
}

func (t *TCP) encoder(to ids.ProcessID) (*gob.Encoder, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("transport: closed")
	}
	if enc, ok := t.conns[to]; ok {
		return enc, nil
	}
	addr, ok := t.addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for %v", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(conn)
	t.conns[to] = enc
	t.raw[to] = conn
	return enc, nil
}

func (t *TCP) dropConn(to ids.ProcessID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.raw[to]; ok {
		c.Close()
	}
	delete(t.conns, to)
	delete(t.raw, to)
}

func (t *TCP) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var env wireEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.in <- Envelope(env):
		default:
		}
	}
}

// Close implements Endpoint.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	for _, c := range t.raw {
		c.Close()
	}
	t.mu.Unlock()
	t.ln.Close()
	close(t.in)
}

var _ Endpoint = (*TCP)(nil)
