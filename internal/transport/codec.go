package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io"
)

// Codec serializes envelopes onto a TCP connection. The TCP transport is
// codec-agnostic: the default remains gob (every payload type registered via
// RegisterWireType), while deployments select the hand-rolled binary codec
// (internal/transport/wirecodec) through the topology's "codec" knob.
type Codec interface {
	// Name identifies the codec in benchmark metadata and topology files.
	Name() string
	// NewEncoder wraps the write half of a connection. Implementations own
	// their buffering; the transport calls Flush at coalescing boundaries.
	NewEncoder(w io.Writer) StreamEncoder
	// NewDecoder wraps the read half of a connection.
	NewDecoder(r io.Reader) StreamDecoder
}

// StreamEncoder encodes a sequence of envelopes onto one connection.
type StreamEncoder interface {
	// Encode serializes one envelope. An error wrapping ErrUnencodable means
	// only this envelope could not be represented (the stream is still
	// healthy, the envelope is dropped); any other error is fatal to the
	// connection.
	Encode(env *Envelope) error
	// Flush writes out any buffered frames.
	Flush() error
}

// StreamDecoder decodes a sequence of envelopes from one connection.
type StreamDecoder interface {
	Decode(env *Envelope) error
}

// ErrUnencodable marks an envelope whose payload the codec cannot represent.
// The TCP writer drops such envelopes (fair-loss links) instead of killing
// the connection.
var ErrUnencodable = errors.New("transport: payload not encodable")

// gobCodec is the default codec: encoding/gob over a buffered writer, exactly
// the seed wire format.
type gobCodec struct{}

// GobCodec returns the gob wire codec.
func GobCodec() Codec { return gobCodec{} }

func (gobCodec) Name() string { return "gob" }

func (gobCodec) NewEncoder(w io.Writer) StreamEncoder {
	bw := bufio.NewWriterSize(w, 64*1024)
	return &gobEncoder{bw: bw, enc: gob.NewEncoder(bw)}
}

func (gobCodec) NewDecoder(r io.Reader) StreamDecoder {
	return &gobDecoder{dec: gob.NewDecoder(bufio.NewReaderSize(r, 64*1024))}
}

type gobEncoder struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

func (e *gobEncoder) Encode(env *Envelope) error { return e.enc.Encode(env) }
func (e *gobEncoder) Flush() error               { return e.bw.Flush() }

type gobDecoder struct {
	dec *gob.Decoder
}

func (d *gobDecoder) Decode(env *Envelope) error { return d.dec.Decode(env) }
