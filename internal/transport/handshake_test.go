package transport

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
)

// TestTCPHandshakePinsReplyRoute models the reply-route squatting attack: a
// Byzantine peer connects to a replica first, claiming a victim client's
// identity in its envelopes' From field. Without the handshake the replica
// would route the victim's replies over the attacker's connection; with the
// handshake only the peer that MACs the acceptor's nonce under the pairwise
// key wins the route, so the victim still receives its replies.
func TestTCPHandshakePinsReplyRoute(t *testing.T) {
	keys := authn.NewKeyStore("handshake-test")
	replica := ids.Replica(0)
	victim := ids.Client(0)
	attacker := ids.Client(1)

	addrs := map[ids.ProcessID]string{replica: "127.0.0.1:0"}
	server, err := NewTCPAuth(replica, addrs, keys)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	RegisterWireType("")

	// The attacker connects first and spoofs the victim's From. Its endpoint
	// has the real key store, but it proves as itself (the handshake MAC is
	// over the pairwise key of the *proving* identity, which it cannot forge
	// for the victim).
	attackerAddrs := map[ids.ProcessID]string{replica: server.Addr(), attacker: "127.0.0.1:0"}
	att, err := NewTCPAuth(attacker, attackerAddrs, keys)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Close()
	// Forge envelopes claiming to be the victim. Send repeatedly so the
	// squat attempt happens both before and after the handshake completes.
	for i := 0; i < 5; i++ {
		att.sendAs(victim, replica, "squat")
		time.Sleep(10 * time.Millisecond)
	}

	// The honest victim connects afterwards and invokes.
	victimAddrs := map[ids.ProcessID]string{replica: server.Addr(), victim: "127.0.0.1:0"}
	vic, err := NewTCPAuth(victim, victimAddrs, keys)
	if err != nil {
		t.Fatal(err)
	}
	defer vic.Close()
	vic.Send(replica, "request")

	// Drain the replica's inbox until the victim's request arrives.
	deadline := time.After(2 * time.Second)
	for seen := false; !seen; {
		select {
		case env := <-server.Inbox():
			if env.From == victim && env.Payload == "request" {
				seen = true
			}
		case <-deadline:
			t.Fatal("victim request not delivered")
		}
	}
	// Allow the victim's proof to land before the reply (the proof races the
	// first request on the connection).
	time.Sleep(50 * time.Millisecond)

	// The replica replies to the victim; it must arrive on the victim's
	// connection, not the attacker's.
	server.Send(victim, "reply")
	select {
	case env := <-vic.Inbox():
		if env.Payload != "reply" {
			t.Fatalf("victim received %v, want reply", env.Payload)
		}
	case env := <-att.Inbox():
		t.Fatalf("attacker received the victim's reply: %v", env.Payload)
	case <-time.After(2 * time.Second):
		t.Fatal("reply not delivered to the victim (route squatted or never registered)")
	}
}

// sendAs enqueues an envelope with a forged From field over the connection to
// dst (test-only attacker behaviour).
func (t *TCP) sendAs(from, dst ids.ProcessID, payload any) {
	conn, err := t.conn(dst)
	if err != nil {
		return
	}
	conn.enqueue(Envelope{From: from, To: dst, Payload: payload})
}

// TestTCPHandshakeNoProofOracle models the relay attack on the handshake
// itself: the attacker harvests a replica's challenge nonce, forwards it to
// a victim endpoint over a connection the attacker initiated, and hopes the
// victim MACs it (which the attacker could then replay to the replica to
// squat the victim's reply route). Endpoints must answer challenges only on
// connections they dialed themselves, for the peer they dialed.
func TestTCPHandshakeNoProofOracle(t *testing.T) {
	keys := authn.NewKeyStore("oracle-test")
	replica := ids.Replica(0)
	victim := ids.Client(0)

	// The victim listens (clients do, for symmetric deployments).
	victimAddrs := map[ids.ProcessID]string{victim: "127.0.0.1:0"}
	vic, err := NewTCPAuth(victim, victimAddrs, keys)
	if err != nil {
		t.Fatal(err)
	}
	defer vic.Close()

	// The attacker speaks raw gob on its own connection to the victim and
	// forwards a (fabricated) challenge claiming to come from the replica.
	raw, err := net.Dial("tcp", vic.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	enc := gob.NewEncoder(raw)
	dec := gob.NewDecoder(raw)
	nonce := make([]byte, 32)
	if err := enc.Encode(&Envelope{From: replica, To: victim, Payload: &ConnChallenge{Nonce: nonce}}); err != nil {
		t.Fatal(err)
	}

	// The victim's own challenge (it accepted our connection) may arrive;
	// a connProof from the victim must not.
	raw.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return // deadline or close: no proof leaked
		}
		if _, leaked := env.Payload.(*ConnProof); leaked {
			t.Fatal("victim answered a challenge on a connection it did not dial: MAC oracle")
		}
	}
}
