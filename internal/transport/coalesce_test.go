package transport

import (
	"testing"
	"time"

	"abstractbft/internal/ids"
)

func TestLocalSendBatchUnpacksAsOneWireMessage(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	b := net.Endpoint(ids.Replica(1))

	SendBatch(a, ids.Replica(1), []any{"one", "two", "three"})
	for _, want := range []string{"one", "two", "three"} {
		env, ok := recvWithTimeout(t, b, time.Second)
		if !ok || env.Payload != want || env.From != ids.Replica(0) {
			t.Fatalf("unpacked delivery failed: %+v ok=%v want %q", env, ok, want)
		}
	}
	// The whole pack crossed the network as a single wire message.
	msgs, _ := net.Stats()
	if msgs != 1 {
		t.Fatalf("stats report %d messages for one coalesced batch, want 1", msgs)
	}
}

func TestLocalSendBatchDegenerate(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	b := net.Endpoint(ids.Replica(1))

	SendBatch(a, ids.Replica(1), nil)
	SendBatch(a, ids.Replica(1), []any{"solo"})
	env, ok := recvWithTimeout(t, b, time.Second)
	if !ok || env.Payload != "solo" {
		t.Fatalf("degenerate batch delivery failed: %+v ok=%v", env, ok)
	}
	if _, packed := env.Payload.(*Packed); packed {
		t.Fatal("single payload must not be wrapped in Packed")
	}
}

// TestSendBatchSinglePayloadAllocs proves the degenerate fast path: a
// single-payload SendBatch must not allocate at all — in particular it must
// not build a Packed wrapper or a fresh payload slice.
func TestSendBatchSinglePayloadAllocs(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	a := net.Endpoint(ids.Replica(0))
	net.Endpoint(ids.Replica(1)) // receiver exists; its inbox dropping on full is fine

	payload := any("steady-state payload")
	single := []any{payload}
	if allocs := testing.AllocsPerRun(100, func() {
		SendBatch(a, ids.Replica(1), single)
	}); allocs > 0 {
		t.Fatalf("single-payload SendBatch allocates %.1f times per send, want 0", allocs)
	}
}

func TestTCPSendBatchUnpacks(t *testing.T) {
	addrs := map[ids.ProcessID]string{ids.Replica(0): "127.0.0.1:0"}
	a, err := NewTCP(ids.Replica(0), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs2 := map[ids.ProcessID]string{
		ids.Replica(0): a.Addr(),
		ids.Replica(1): "127.0.0.1:0",
	}
	b, err := NewTCP(ids.Replica(1), addrs2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	RegisterWireType("")
	// A burst of individual sends exercises the write-coalescing path, and a
	// SendBatch exercises receive-side unpacking.
	b.Send(ids.Replica(0), "burst-1")
	b.Send(ids.Replica(0), "burst-2")
	SendBatch(b, ids.Replica(0), []any{"packed-1", "packed-2"})
	got := map[string]bool{}
	for i := 0; i < 4; i++ {
		select {
		case env := <-a.Inbox():
			s, ok := env.Payload.(string)
			if !ok {
				t.Fatalf("unexpected payload %T", env.Payload)
			}
			got[s] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("message %d not delivered; got %v", i, got)
		}
	}
	for _, want := range []string{"burst-1", "burst-2", "packed-1", "packed-2"} {
		if !got[want] {
			t.Fatalf("missing %q after unpacking, got %v", want, got)
		}
	}
}

func TestDemuxBroadcastsToAllSubscriptions(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	sender := net.Endpoint(ids.Replica(0))
	client := net.Endpoint(ids.Client(0))
	d := NewDemux(client)

	s1 := d.Open()
	s2 := d.Open()
	if s1.ID() != ids.Client(0) {
		t.Fatalf("virtual endpoint has id %v, want %v", s1.ID(), ids.Client(0))
	}
	sender.Send(ids.Client(0), "fanout")
	for i, s := range []Endpoint{s1, s2} {
		env, ok := recvWithTimeout(t, s, time.Second)
		if !ok || env.Payload != "fanout" {
			t.Fatalf("subscription %d missed broadcast: %+v ok=%v", i, env, ok)
		}
	}

	// After closing, a subscription receives nothing further and the other
	// stays live.
	s1.Close()
	sender.Send(ids.Client(0), "after-close")
	if env, ok := recvWithTimeout(t, s2, time.Second); !ok || env.Payload != "after-close" {
		t.Fatalf("remaining subscription missed message: %+v ok=%v", env, ok)
	}
	if env, ok := recvWithTimeout(t, s1, 50*time.Millisecond); ok {
		t.Fatalf("closed subscription still received %+v", env)
	}
}

func TestDemuxSendPassesThrough(t *testing.T) {
	net := NewLocal(Options{})
	defer net.Close()
	replica := net.Endpoint(ids.Replica(0))
	client := net.Endpoint(ids.Client(0))
	d := NewDemux(client)
	sub := d.Open()
	defer sub.Close()
	sub.Send(ids.Replica(0), "up")
	env, ok := recvWithTimeout(t, replica, time.Second)
	if !ok || env.Payload != "up" || env.From != ids.Client(0) {
		t.Fatalf("send through virtual endpoint failed: %+v ok=%v", env, ok)
	}
}
