package wirecodec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"abstractbft/internal/transport"
)

const (
	// flushThreshold bounds frame aggregation: once a frame body reaches
	// this size the encoder writes it out even mid-burst, so one oversized
	// frame never monopolizes the stream and the receiver's frame buffer
	// stays small in steady state.
	flushThreshold = 128 * 1024
	// maxFrameSize is the decoder's sanity limit on a frame's length prefix.
	// Honest frames exceed flushThreshold only by one envelope (a snapshot
	// transfer); anything beyond this is a corrupted or hostile stream and
	// kills the connection instead of provoking a huge allocation.
	maxFrameSize = 256 * 1024 * 1024
	// frameHeader reserves space for the u32 length prefix at the start of
	// the encoder's buffer so a flush is a single Write (one syscall).
	frameHeader = 4
	// retainedBuf is the largest per-connection buffer kept across frames;
	// rare oversized frames (state transfers) do not pin their memory.
	retainedBuf = 1 << 20
)

// Binary returns the hand-rolled binary codec as a transport.Codec. All
// endpoints of a deployment must agree on the codec; deploy.Topology's
// "codec" field selects it cluster-wide.
func Binary() transport.Codec { return binaryCodec{} }

type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }

func (binaryCodec) NewEncoder(w io.Writer) transport.StreamEncoder {
	e := &streamEncoder{w: w}
	e.buf = e.getBuf()
	return e
}

func (binaryCodec) NewDecoder(r io.Reader) transport.StreamDecoder {
	return &streamDecoder{br: bufio.NewReaderSize(r, 64*1024)}
}

// bufPool recycles frame buffers across connections and one-shot marshals;
// within a connection the encoder additionally reuses its buffer across
// frames, so steady-state encoding allocates nothing.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, frameHeader, 4096)
		return &b
	},
}

// streamEncoder accumulates envelopes into one length-prefixed frame and
// writes it on Flush (or mid-burst once the frame reaches flushThreshold).
// A pipelined burst of envelopes therefore crosses the kernel as a single
// write carrying a single length prefix.
type streamEncoder struct {
	w   io.Writer
	buf []byte // frame under construction; buf[:frameHeader] is the length slot
}

//abstractbft:noalloc
func (e *streamEncoder) getBuf() []byte {
	b := *bufPool.Get().(*[]byte)
	return b[:frameHeader]
}

//abstractbft:noalloc
func (e *streamEncoder) Encode(env *transport.Envelope) error {
	mark := len(e.buf)
	b := appendU32(e.buf, uint32(int32(env.From)))
	b = appendU32(b, uint32(int32(env.To)))
	if env.Trace.Sampled() {
		// Envelope-level trace context: the tagTraced marker plus 16 bytes
		// between the header and the payload tag. Untraced envelopes (the
		// common case) skip the block entirely — zero extra wire bytes.
		b = appendU16(b, tagTraced)
		b = appendU64(b, env.Trace.TraceID)
		b = appendU64(b, env.Trace.Parent)
	}
	b, err := appendPayload(b, env.Payload, 0)
	if err != nil {
		// The envelope is unrepresentable; roll the frame back to the last
		// complete envelope and report. The stream itself is still healthy.
		e.buf = e.buf[:mark]
		return err
	}
	e.buf = b
	if len(e.buf) >= flushThreshold {
		return e.Flush()
	}
	return nil
}

//abstractbft:noalloc
func (e *streamEncoder) Flush() error {
	if len(e.buf) <= frameHeader {
		return nil
	}
	binary.BigEndian.PutUint32(e.buf[:frameHeader], uint32(len(e.buf)-frameHeader))
	_, err := e.w.Write(e.buf)
	if cap(e.buf) > retainedBuf {
		// An oversized frame (state transfer) grew the buffer; drop it to
		// the collector rather than pinning megabytes per idle connection.
		e.buf = e.getBuf()
	} else {
		e.buf = e.buf[:frameHeader]
	}
	return err
}

// streamDecoder reads length-prefixed frames into a reused buffer and decodes
// envelopes out of it; decoded payloads never alias the buffer.
type streamDecoder struct {
	br    *bufio.Reader
	frame []byte
	rd    reader
}

func (d *streamDecoder) Decode(env *transport.Envelope) error {
	for d.rd.err == nil && d.rd.rem() == 0 {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			continue
		}
		if n > maxFrameSize {
			return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
		}
		if cap(d.frame) < int(n) {
			d.frame = make([]byte, n)
		} else {
			d.frame = d.frame[:n]
		}
		if _, err := io.ReadFull(d.br, d.frame); err != nil {
			return err
		}
		d.rd = reader{buf: d.frame}
	}
	from := d.rd.id()
	to := d.rd.id()
	var traceID, traceParent uint64
	tag := d.rd.u16()
	if tag == tagTraced {
		traceID = d.rd.u64()
		traceParent = d.rd.u64()
		tag = d.rd.u16()
	}
	payload := decodeTagged(&d.rd, tag)
	if d.rd.err != nil {
		return d.rd.err
	}
	env.From, env.To, env.Payload = from, to, payload
	env.Trace.TraceID, env.Trace.Parent = 0, 0
	if traceID != 0 {
		env.Trace.TraceID, env.Trace.Parent = traceID, traceParent
	}
	return nil
}

// MarshalWire encodes a single payload in the tagged wire form (u16 tag +
// fields) into a fresh byte slice. It is the one-shot API used by tests,
// fuzzing, and benchmarks; the TCP path streams through Binary() instead.
//
//abstractbft:noalloc
func MarshalWire(p any) ([]byte, error) {
	scratch := bufPool.Get().(*[]byte)
	b, err := appendPayload((*scratch)[:0], p, 0)
	if err != nil {
		bufPool.Put(scratch)
		return nil, err
	}
	out := make([]byte, len(b)) //abstractbft:alloc-ok one-shot API contract: callers keep the slice
	copy(out, b)
	if cap(b) <= retainedBuf {
		*scratch = b
		bufPool.Put(scratch)
	}
	return out, nil
}

// UnmarshalWire decodes a single payload from its tagged wire form, erroring
// on truncated input, unknown tags, and trailing bytes.
func UnmarshalWire(data []byte) (any, error) {
	r := reader{buf: data}
	p := decodePayload(&r)
	if r.err != nil {
		return nil, r.err
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("wirecodec: %d trailing bytes after payload", r.rem())
	}
	return p, nil
}
