package wirecodec_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
	"abstractbft/internal/pbft"
	"abstractbft/internal/shard"
	"abstractbft/internal/statesync"
	"abstractbft/internal/transport"
	"abstractbft/internal/transport/wirecodec"
	"abstractbft/internal/zlight"
)

// samplePayloads is a representative subset of the wire-type closure used by
// the adversarial tests (the exhaustive closure is audited from the transport
// package's wire_roundtrip_test.go against both codecs).
func samplePayloads() []any {
	req := msg.Request{Client: ids.Client(3), Timestamp: 7, Command: []byte("cmd-a")}
	dig := authn.Hash([]byte("digest"))
	mac := authn.MAC{1, 2, 3}
	auth := authn.Authenticator{Sender: ids.Client(3), Entries: []authn.AuthEntry{
		{Receiver: ids.Replica(0), MAC: mac},
		{Receiver: ids.Replica(1), MAC: authn.MAC{4}},
	}}
	init := &core.InitHistory{
		From:    1,
		For:     2,
		Extract: history.ExtractResult{BaseSeq: 8, BaseDigest: dig, Suffix: history.DigestHistory{dig}},
		Proof: []core.SignedAbort{{
			Abort: core.AbortMessage{Instance: 1, Replica: ids.Replica(2), Timestamp: 7, Next: 2},
			Sig:   authn.Signature("sig"),
		}},
		Requests: []msg.Request{req},
	}
	// A traced request and batch exercise the flags-byte trace block and the
	// high-bit batch count marker in every corpus-driven test (truncation,
	// mutation fuzz, unknown-tag audit).
	tracedReq := msg.Request{Client: ids.Client(5), Timestamp: 11, Command: []byte("cmd-t"),
		Trace: obs.TraceContext{TraceID: 0xabcdef0112345678, Parent: 0xabcdef0112345678}}
	return []any{
		&zlight.RequestMessage{Instance: 1, Req: req, Init: init, Auth: auth},
		&zlight.OrderMessage{Instance: 1, Batch: msg.BatchOf(req), Seq: 5, Auths: []authn.Authenticator{auth}, PrimaryMAC: mac},
		&zlight.RequestMessage{Instance: 1, Req: tracedReq, Auth: auth},
		&zlight.OrderMessage{Instance: 2, Batch: msg.BatchOf(tracedReq, req), Seq: 6, Auths: []authn.Authenticator{auth}, PrimaryMAC: mac},
		&pbft.PrePrepare{View: 1, Seq: 2, Batch: []msg.Request{req}, Digest: dig, MAC: mac},
		&core.RespMessage{Instance: 1, Replica: ids.Replica(0), Client: ids.Client(3), Timestamp: 7, Reply: []byte("re"), ReplyDigest: dig, HistoryDigest: dig, HistoryLen: 9, MAC: mac},
		&statesync.State{
			Instance: 1, From: ids.Replica(0), BodiesFrom: ids.Replica(0),
			Snap: statesync.NewSnapshot(16, dig, []byte("app"),
				[]statesync.ClientWindow{{Client: ids.Client(3), High: 7, Mask: 5}},
				[]statesync.ClientRing{{Client: ids.Client(3), Timestamps: []uint64{6}, Replies: [][]byte{[]byte("a")}}}),
			SuffixDigests:  history.DigestHistory{dig},
			SuffixRequests: []msg.Request{req},
		},
		&shard.Mark{Shard: 1, Payload: &transport.Packed{Payloads: []any{
			&core.FetchRequest{Instance: 1, From: ids.Replica(2), Digests: []authn.Digest{dig}},
		}}},
		// The connection handshake control frames: the TCP read loop consumes
		// them instead of delivering to the inbox, so the byte-level corpus is
		// where they get round-trip, truncation, and mutation coverage.
		&transport.ConnChallenge{Nonce: []byte("nonce-0123456789")},
		&transport.ConnProof{Proof: mac},
	}
}

// TestTruncatedInputsErrorCleanly truncates every sample payload's encoding
// at every length: each prefix must fail with an error (never a panic, never
// a successful partial decode of different content).
func TestTruncatedInputsErrorCleanly(t *testing.T) {
	for _, p := range samplePayloads() {
		full, err := wirecodec.MarshalWire(p)
		if err != nil {
			t.Fatalf("marshal %T: %v", p, err)
		}
		for cut := 0; cut < len(full); cut++ {
			if _, err := wirecodec.UnmarshalWire(full[:cut]); err == nil {
				t.Fatalf("%T truncated to %d/%d bytes decoded successfully", p, cut, len(full))
			}
		}
	}
}

// TestOversizedLengthPrefix forges length prefixes far beyond the input and
// checks the decoder errors before allocating.
func TestOversizedLengthPrefix(t *testing.T) {
	// ConnChallenge is tag + u32-length-prefixed nonce; claim 4 GiB.
	buf := []byte{0, 2} // tagConnChallenge
	buf = binary.BigEndian.AppendUint32(buf, 0xFFFFFFF0)
	buf = append(buf, []byte("short")...)
	if _, err := wirecodec.UnmarshalWire(buf); err == nil {
		t.Fatal("oversized byte-string length prefix decoded successfully")
	}
	// Packed with a forged element count.
	buf = []byte{0, 1} // tagPacked
	buf = binary.BigEndian.AppendUint32(buf, 0x7FFFFFFF)
	if _, err := wirecodec.UnmarshalWire(buf); err == nil {
		t.Fatal("oversized element count decoded successfully")
	}
}

// TestUnknownTagErrors checks that unassigned type tags fail with
// ErrUnknownTag instead of panicking or guessing.
func TestUnknownTagErrors(t *testing.T) {
	for _, tag := range []uint16{0, 4, 9, 18, 27, 36, 42, 999, 0xFFFF} {
		buf := binary.BigEndian.AppendUint16(nil, tag)
		_, err := wirecodec.UnmarshalWire(buf)
		if !errors.Is(err, wirecodec.ErrUnknownTag) {
			t.Fatalf("tag %d: got %v, want ErrUnknownTag", tag, err)
		}
	}
}

// TestTrailingBytesError checks that UnmarshalWire rejects input with bytes
// after a valid payload (a frame boundary bug would otherwise hide there).
func TestTrailingBytesError(t *testing.T) {
	full, err := wirecodec.MarshalWire(&shard.MergedQuery{From: ids.Replica(3), StateFrom: ids.Replica(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wirecodec.UnmarshalWire(append(full, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestNestingDepthCapped checks both directions of the recursion cap: the
// encoder refuses to marshal payloads nested beyond the cap (reporting them
// unencodable, not killing the connection), and the decoder rejects crafted
// deeply nested input.
func TestNestingDepthCapped(t *testing.T) {
	var deep any = &shard.MergedQuery{From: 1, StateFrom: 2}
	for i := 0; i < 64; i++ {
		deep = &shard.Mark{Shard: 0, Payload: deep}
	}
	if _, err := wirecodec.MarshalWire(deep); !errors.Is(err, transport.ErrUnencodable) {
		t.Fatalf("deep marshal: got %v, want ErrUnencodable", err)
	}
	// Crafted bytes: 64 nested mark headers (tag 50 + shard u32).
	var buf []byte
	for i := 0; i < 64; i++ {
		buf = binary.BigEndian.AppendUint16(buf, 50)
		buf = binary.BigEndian.AppendUint32(buf, 0)
	}
	if _, err := wirecodec.UnmarshalWire(buf); !errors.Is(err, wirecodec.ErrDepth) {
		t.Fatalf("deep unmarshal: got %v, want ErrDepth", err)
	}
}

// TestStreamDecoderFrameLimit checks the stream decoder kills a connection
// whose frame length prefix exceeds the sanity limit instead of allocating.
func TestStreamDecoderFrameLimit(t *testing.T) {
	var wire []byte
	wire = binary.BigEndian.AppendUint32(wire, 0xFFFFFFFF)
	dec := wirecodec.Binary().NewDecoder(bytes.NewReader(wire))
	var env transport.Envelope
	if err := dec.Decode(&env); !errors.Is(err, wirecodec.ErrFrameTooBig) {
		t.Fatalf("got %v, want ErrFrameTooBig", err)
	}
}

// TestStreamRoundTrip pushes a burst of envelopes through the stream
// encoder/decoder pair and checks order and content survive the frame
// aggregation.
func TestStreamRoundTrip(t *testing.T) {
	codec := wirecodec.Binary()
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	payloads := samplePayloads()
	for i, p := range payloads {
		env := transport.Envelope{From: ids.Replica(1), To: ids.ProcessID(i), Payload: p}
		if err := enc.Encode(&env); err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := codec.NewDecoder(&buf)
	for i, p := range payloads {
		var env transport.Envelope
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if env.From != ids.Replica(1) || env.To != ids.ProcessID(i) {
			t.Fatalf("envelope %d header mutated: %+v", i, env)
		}
		if !reflect.DeepEqual(env.Payload, p) {
			t.Fatalf("envelope %d payload mutated:\nsent %#v\ngot  %#v", i, p, env.Payload)
		}
	}
}

// TestUnencodablePayloadKeepsStream checks that an unsupported payload type
// reports ErrUnencodable, rolls the frame back, and leaves the stream usable
// for subsequent envelopes.
func TestUnencodablePayloadKeepsStream(t *testing.T) {
	codec := wirecodec.Binary()
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	bad := transport.Envelope{From: 1, To: 2, Payload: "a string is not a wire type"}
	if err := enc.Encode(&bad); !errors.Is(err, transport.ErrUnencodable) {
		t.Fatalf("got %v, want ErrUnencodable", err)
	}
	good := transport.Envelope{From: 1, To: 2, Payload: &shard.MergedQuery{From: 1, StateFrom: 2}}
	if err := enc.Encode(&good); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := codec.NewDecoder(&buf)
	var env transport.Envelope
	if err := dec.Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Payload, good.Payload) {
		t.Fatalf("stream corrupted after unencodable payload: %#v", env.Payload)
	}
}
