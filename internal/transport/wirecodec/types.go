package wirecodec

import (
	"fmt"

	"abstractbft/internal/authn"
	"abstractbft/internal/backup"
	"abstractbft/internal/chain"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/msg"
	"abstractbft/internal/pbft"
	"abstractbft/internal/quorum"
	"abstractbft/internal/shard"
	"abstractbft/internal/statesync"
	"abstractbft/internal/transport"
	"abstractbft/internal/zlight"
)

// Wire type tags. The table is append-only: a tag, once assigned, never
// changes meaning, so benchmark trajectories and mixed-build test clusters
// stay comparable. Adding a type means: assign the next free tag in its
// block, add an arm to appendPayload and decodePayload, and add a populated
// instance to wirePayloads() in transport's wire_roundtrip_test.go — the
// audit fails until both codecs round-trip it.
const (
	// Transport-level types. tagTraced is not a payload type: it is the
	// envelope-level trace-context marker, read and written only by the stream
	// encoder/decoder between the envelope header and the payload tag (a
	// payload position holding tag 4 is still an unknown-tag error). Untraced
	// envelopes skip it entirely, so they pay zero extra wire bytes.
	tagPacked        uint16 = 1
	tagConnChallenge uint16 = 2
	tagConnProof     uint16 = 3
	tagTraced        uint16 = 4

	// Protocol request/ordering planes.
	tagZLightRequest uint16 = 10
	tagZLightOrder   uint16 = 11
	tagChainMessage  uint16 = 12
	tagChainBatch    uint16 = 13
	tagQuorumRequest uint16 = 14
	tagQuorumBatch   uint16 = 15
	tagBackupRequest uint16 = 16
	tagBackupWrapped uint16 = 17

	// The wrapped PBFT engine.
	tagPBFTRequest    uint16 = 20
	tagPBFTPrePrepare uint16 = 21
	tagPBFTPrepare    uint16 = 22
	tagPBFTCommit     uint16 = 23
	tagPBFTReply      uint16 = 24
	tagPBFTViewChange uint16 = 25
	tagPBFTNewView    uint16 = 26

	// The composition layer (panicking, checkpoints, fetch, RESP).
	tagPanic      uint16 = 30
	tagAbortReply uint16 = 31
	tagCheckpoint uint16 = 32
	tagFetchReq   uint16 = 33
	tagFetchResp  uint16 = 34
	tagResp       uint16 = 35

	// The state-transfer plane.
	tagFetchState uint16 = 40
	tagState      uint16 = 41

	// The sharded plane.
	tagMark        uint16 = 50
	tagMergedQuery uint16 = 51
	tagMergedState uint16 = 52
)

// Composite field helpers. Encoders append to the caller's buffer; decoders
// consume from the sticky-error reader.

// Request flags byte. Bit 0 carries ReadOnly in exactly the position the old
// bool byte used (an untraced request's encoding is byte-identical to the
// pre-tracing wire format); bit 1 marks a trace context, whose 16 bytes
// follow the flags byte only when set. Unknown bits are ignored on decode.
const (
	reqFlagReadOnly byte = 1 << 0
	reqFlagTraced   byte = 1 << 1
)

//abstractbft:noalloc
func appendRequest(b []byte, r msg.Request) []byte {
	b = appendID(b, r.Client)
	b = appendU64(b, r.Timestamp)
	var flags byte
	if r.ReadOnly {
		flags |= reqFlagReadOnly
	}
	if r.Trace.Sampled() {
		flags |= reqFlagTraced
	}
	b = appendU8(b, flags)
	if r.Trace.Sampled() {
		b = appendU64(b, r.Trace.TraceID)
		b = appendU64(b, r.Trace.Parent)
	}
	return appendBytes(b, r.Command)
}

func decodeRequest(r *reader) msg.Request {
	var out msg.Request
	out.Client = r.id()
	out.Timestamp = r.u64()
	flags := r.u8()
	out.ReadOnly = flags&reqFlagReadOnly != 0
	if flags&reqFlagTraced != 0 {
		tid, parent := r.u64(), r.u64()
		// A zero trace ID means unsampled; dropping the context here keeps
		// the codec canonical on its own output (re-marshalling an accepted
		// input always reproduces the decoded value).
		if tid != 0 {
			out.Trace.TraceID, out.Trace.Parent = tid, parent
		}
	}
	out.Command = r.bytes()
	return out
}

//abstractbft:noalloc
func appendRequests(b []byte, rs []msg.Request) []byte {
	b = appendU32(b, uint32(len(rs)))
	for _, req := range rs {
		b = appendRequest(b, req)
	}
	return b
}

func decodeRequests(r *reader) []msg.Request {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]msg.Request, 0, sliceCap(n, 17))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, decodeRequest(r))
	}
	if r.err != nil {
		return nil
	}
	return out
}

// batchTracedFlag is the high bit of a batch's element count: set when the
// batch carries a hoisted trace context (16 bytes following the count).
// Counts are validated against the remaining frame bytes, so an honest count
// can never reach the flag bit; an untraced batch encodes exactly as before.
const batchTracedFlag uint32 = 1 << 31

//abstractbft:noalloc
func appendBatch(b []byte, batch msg.Batch) []byte {
	if !batch.Trace.Sampled() {
		return appendRequests(b, batch.Requests)
	}
	b = appendU32(b, uint32(len(batch.Requests))|batchTracedFlag)
	b = appendU64(b, batch.Trace.TraceID)
	b = appendU64(b, batch.Trace.Parent)
	for _, req := range batch.Requests {
		b = appendRequest(b, req)
	}
	return b
}

func decodeBatch(r *reader) msg.Batch {
	var batch msg.Batch
	raw := r.u32()
	if r.err != nil {
		return batch
	}
	if raw&batchTracedFlag != 0 {
		raw &^= batchTracedFlag
		tid, parent := r.u64(), r.u64()
		if tid != 0 { // zero trace ID = unsampled; drop for canonical output
			batch.Trace.TraceID, batch.Trace.Parent = tid, parent
		}
	}
	// The count is validated only after the optional trace bytes are consumed,
	// mirroring reader.count's forged-count guard against what actually
	// remains in the frame.
	if int64(raw) > int64(r.rem()) {
		r.fail(fmt.Errorf("%w: %d elements in %d remaining bytes", ErrOversized, raw, r.rem()))
		return msg.Batch{}
	}
	n := int(raw)
	if n == 0 {
		return batch
	}
	batch.Requests = make([]msg.Request, 0, sliceCap(n, 17))
	for i := 0; i < n && r.err == nil; i++ {
		batch.Requests = append(batch.Requests, decodeRequest(r))
	}
	if r.err != nil {
		return msg.Batch{}
	}
	return batch
}

//abstractbft:noalloc
func appendAuth(b []byte, a authn.Authenticator) []byte {
	b = appendID(b, a.Sender)
	b = appendU32(b, uint32(len(a.Entries)))
	for _, e := range a.Entries {
		b = appendID(b, e.Receiver)
		b = appendMAC(b, e.MAC)
	}
	return b
}

func decodeAuth(r *reader) authn.Authenticator {
	var a authn.Authenticator
	a.Sender = r.id()
	n := r.count()
	if n == 0 {
		return a
	}
	a.Entries = make([]authn.AuthEntry, 0, sliceCap(n, 36))
	for i := 0; i < n && r.err == nil; i++ {
		a.Entries = append(a.Entries, authn.AuthEntry{Receiver: r.id(), MAC: r.mac()})
	}
	if r.err != nil {
		a.Entries = nil
	}
	return a
}

//abstractbft:noalloc
func appendAuths(b []byte, as []authn.Authenticator) []byte {
	b = appendU32(b, uint32(len(as)))
	for _, a := range as {
		b = appendAuth(b, a)
	}
	return b
}

func decodeAuths(r *reader) []authn.Authenticator {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]authn.Authenticator, 0, sliceCap(n, 8))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, decodeAuth(r))
	}
	if r.err != nil {
		return nil
	}
	return out
}

//abstractbft:noalloc
func appendChainAuth(b []byte, ca authn.ChainAuthenticator) []byte {
	b = appendU32(b, uint32(len(ca.Entries)))
	for _, e := range ca.Entries {
		b = appendID(b, e.Signer)
		b = appendID(b, e.Receiver)
		b = appendMAC(b, e.MAC)
	}
	return b
}

func decodeChainAuth(r *reader) authn.ChainAuthenticator {
	var ca authn.ChainAuthenticator
	n := r.count()
	if n == 0 {
		return ca
	}
	ca.Entries = make([]authn.ChainAuthEntry, 0, sliceCap(n, 40))
	for i := 0; i < n && r.err == nil; i++ {
		ca.Entries = append(ca.Entries, authn.ChainAuthEntry{Signer: r.id(), Receiver: r.id(), MAC: r.mac()})
	}
	if r.err != nil {
		ca.Entries = nil
	}
	return ca
}

//abstractbft:noalloc
func appendChainAuths(b []byte, cas []authn.ChainAuthenticator) []byte {
	b = appendU32(b, uint32(len(cas)))
	for _, ca := range cas {
		b = appendChainAuth(b, ca)
	}
	return b
}

func decodeChainAuths(r *reader) []authn.ChainAuthenticator {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]authn.ChainAuthenticator, 0, sliceCap(n, 4))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, decodeChainAuth(r))
	}
	if r.err != nil {
		return nil
	}
	return out
}

//abstractbft:noalloc
func appendDigests(b []byte, ds []authn.Digest) []byte {
	b = appendU32(b, uint32(len(ds)))
	for _, d := range ds {
		b = appendDigest(b, d)
	}
	return b
}

func decodeDigests(r *reader) []authn.Digest {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]authn.Digest, 0, sliceCap(n, authn.DigestSize))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.digest())
	}
	if r.err != nil {
		return nil
	}
	return out
}

//abstractbft:noalloc
func appendDigestHistory(b []byte, dh history.DigestHistory) []byte {
	return appendDigests(b, dh)
}

func decodeDigestHistory(r *reader) history.DigestHistory {
	ds := decodeDigests(r)
	if ds == nil {
		return nil
	}
	return history.DigestHistory(ds)
}

//abstractbft:noalloc
func appendExtract(b []byte, e history.ExtractResult) []byte {
	b = appendU64(b, e.BaseSeq)
	b = appendDigest(b, e.BaseDigest)
	return appendDigestHistory(b, e.Suffix)
}

func decodeExtract(r *reader) history.ExtractResult {
	var e history.ExtractResult
	e.BaseSeq = r.u64()
	e.BaseDigest = r.digest()
	e.Suffix = decodeDigestHistory(r)
	return e
}

//abstractbft:noalloc
func appendReport(b []byte, rep history.ReplicaReport) []byte {
	b = appendU64(b, rep.CheckpointSeq)
	b = appendDigest(b, rep.CheckpointDigest)
	return appendDigestHistory(b, rep.Suffix)
}

func decodeReport(r *reader) history.ReplicaReport {
	var rep history.ReplicaReport
	rep.CheckpointSeq = r.u64()
	rep.CheckpointDigest = r.digest()
	rep.Suffix = decodeDigestHistory(r)
	return rep
}

//abstractbft:noalloc
func appendAbort(b []byte, a core.AbortMessage) []byte {
	b = appendU64(b, uint64(a.Instance))
	b = appendID(b, a.Replica)
	b = appendU64(b, a.Timestamp)
	b = appendU64(b, uint64(a.Next))
	b = appendU32(b, a.Flags)
	return appendReport(b, a.Report)
}

func decodeAbort(r *reader) core.AbortMessage {
	var a core.AbortMessage
	a.Instance = core.InstanceID(r.u64())
	a.Replica = r.id()
	a.Timestamp = r.u64()
	a.Next = core.InstanceID(r.u64())
	a.Flags = r.u32()
	a.Report = decodeReport(r)
	return a
}

//abstractbft:noalloc
func appendSignedAbort(b []byte, s core.SignedAbort) []byte {
	b = appendAbort(b, s.Abort)
	return appendBytes(b, s.Sig)
}

func decodeSignedAbort(r *reader) core.SignedAbort {
	var s core.SignedAbort
	s.Abort = decodeAbort(r)
	if sig := r.bytes(); sig != nil {
		s.Sig = authn.Signature(sig)
	}
	return s
}

// appendInit encodes a nullable init history behind a presence byte.
//
//abstractbft:noalloc
func appendInit(b []byte, init *core.InitHistory) []byte {
	if init == nil {
		return appendU8(b, 0)
	}
	b = appendU8(b, 1)
	b = appendU64(b, uint64(init.From))
	b = appendU64(b, uint64(init.For))
	b = appendExtract(b, init.Extract)
	b = appendU32(b, uint32(len(init.Proof)))
	for _, s := range init.Proof {
		b = appendSignedAbort(b, s)
	}
	return appendRequests(b, init.Requests)
}

func decodeInit(r *reader) *core.InitHistory {
	if !r.bool() || r.err != nil {
		return nil
	}
	init := &core.InitHistory{}
	init.From = core.InstanceID(r.u64())
	init.For = core.InstanceID(r.u64())
	init.Extract = decodeExtract(r)
	n := r.count()
	if n > 0 {
		init.Proof = make([]core.SignedAbort, 0, sliceCap(n, 80))
		for i := 0; i < n && r.err == nil; i++ {
			init.Proof = append(init.Proof, decodeSignedAbort(r))
		}
	}
	init.Requests = decodeRequests(r)
	if r.err != nil {
		return nil
	}
	return init
}

//abstractbft:noalloc
func appendSnapshot(b []byte, s statesync.Snapshot) []byte {
	b = appendU64(b, s.Seq)
	b = appendDigest(b, s.HistDigest)
	b = appendDigest(b, s.AppDigest)
	b = appendBytes(b, s.AppState)
	b = appendU32(b, uint32(len(s.Windows)))
	for _, w := range s.Windows {
		b = appendID(b, w.Client)
		b = appendU64(b, w.High)
		b = appendU64(b, w.Mask)
	}
	b = appendU32(b, uint32(len(s.Rings)))
	for _, ring := range s.Rings {
		b = appendID(b, ring.Client)
		b = appendU64s(b, ring.Timestamps)
		b = appendU32(b, uint32(len(ring.Replies)))
		for _, rep := range ring.Replies {
			b = appendBytes(b, rep)
		}
	}
	return appendBool(b, s.Stripped)
}

func decodeSnapshot(r *reader) statesync.Snapshot {
	var s statesync.Snapshot
	s.Seq = r.u64()
	s.HistDigest = r.digest()
	s.AppDigest = r.digest()
	s.AppState = r.bytes()
	if n := r.count(); n > 0 {
		s.Windows = make([]statesync.ClientWindow, 0, sliceCap(n, 20))
		for i := 0; i < n && r.err == nil; i++ {
			s.Windows = append(s.Windows, statesync.ClientWindow{Client: r.id(), High: r.u64(), Mask: r.u64()})
		}
	}
	if n := r.count(); n > 0 {
		s.Rings = make([]statesync.ClientRing, 0, sliceCap(n, 12))
		for i := 0; i < n && r.err == nil; i++ {
			ring := statesync.ClientRing{Client: r.id(), Timestamps: r.u64s()}
			if m := r.count(); m > 0 {
				ring.Replies = make([][]byte, 0, sliceCap(m, 4))
				for j := 0; j < m && r.err == nil; j++ {
					ring.Replies = append(ring.Replies, r.bytes())
				}
			}
			s.Rings = append(s.Rings, ring)
		}
	}
	s.Stripped = r.bool()
	if r.err != nil {
		return statesync.Snapshot{}
	}
	return s
}

//abstractbft:noalloc
func appendPreparedEntries(b []byte, ps []pbft.PreparedEntry) []byte {
	b = appendU32(b, uint32(len(ps)))
	for _, p := range ps {
		b = appendU64(b, p.Seq)
		b = appendDigest(b, p.Digest)
		b = appendRequests(b, p.Batch)
	}
	return b
}

func decodePreparedEntries(r *reader) []pbft.PreparedEntry {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]pbft.PreparedEntry, 0, sliceCap(n, 44))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, pbft.PreparedEntry{Seq: r.u64(), Digest: r.digest(), Batch: decodeRequests(r)})
	}
	if r.err != nil {
		return nil
	}
	return out
}

//abstractbft:noalloc
func appendViewChange(b []byte, vc pbft.ViewChange) []byte {
	b = appendU64(b, vc.NewView)
	b = appendID(b, vc.Replica)
	b = appendU64(b, vc.LastDelivered)
	b = appendPreparedEntries(b, vc.Prepared)
	return appendBytes(b, vc.Sig)
}

func decodeViewChange(r *reader) pbft.ViewChange {
	var vc pbft.ViewChange
	vc.NewView = r.u64()
	vc.Replica = r.id()
	vc.LastDelivered = r.u64()
	vc.Prepared = decodePreparedEntries(r)
	if sig := r.bytes(); sig != nil {
		vc.Sig = authn.Signature(sig)
	}
	return vc
}

//abstractbft:noalloc
func appendPrePrepare(b []byte, pp pbft.PrePrepare) []byte {
	b = appendU64(b, pp.View)
	b = appendU64(b, pp.Seq)
	b = appendRequests(b, pp.Batch)
	b = appendDigest(b, pp.Digest)
	return appendMAC(b, pp.MAC)
}

func decodePrePrepare(r *reader) pbft.PrePrepare {
	var pp pbft.PrePrepare
	pp.View = r.u64()
	pp.Seq = r.u64()
	pp.Batch = decodeRequests(r)
	pp.Digest = r.digest()
	pp.MAC = r.mac()
	return pp
}

// appendPayload encodes one tagged payload. Unknown types report an error
// wrapping transport.ErrUnencodable so the TCP writer drops the envelope
// without killing the connection.
//
//abstractbft:noalloc
func appendPayload(b []byte, p any, depth int) ([]byte, error) {
	if depth > maxDepth {
		return b, fmt.Errorf("%w (%w)", ErrDepth, transport.ErrUnencodable) //abstractbft:alloc-ok error path, envelope is dropped
	}
	switch m := p.(type) {
	case *transport.Packed:
		b = appendU16(b, tagPacked)
		b = appendU32(b, uint32(len(m.Payloads)))
		for _, inner := range m.Payloads {
			var err error
			if b, err = appendPayload(b, inner, depth+1); err != nil {
				return b, err
			}
		}
		return b, nil
	case *transport.ConnChallenge:
		b = appendU16(b, tagConnChallenge)
		return appendBytes(b, m.Nonce), nil
	case *transport.ConnProof:
		b = appendU16(b, tagConnProof)
		return appendMAC(b, m.Proof), nil

	case *zlight.RequestMessage:
		b = appendU16(b, tagZLightRequest)
		b = appendU64(b, uint64(m.Instance))
		b = appendRequest(b, m.Req)
		b = appendInit(b, m.Init)
		return appendAuth(b, m.Auth), nil
	case *zlight.OrderMessage:
		b = appendU16(b, tagZLightOrder)
		b = appendU64(b, uint64(m.Instance))
		b = appendBatch(b, m.Batch)
		b = appendU64(b, m.Seq)
		b = appendAuths(b, m.Auths)
		b = appendMAC(b, m.PrimaryMAC)
		return appendInit(b, m.Init), nil
	case *chain.Message:
		b = appendU16(b, tagChainMessage)
		b = appendU64(b, uint64(m.Instance))
		b = appendRequest(b, m.Req)
		b = appendU64(b, m.Seq)
		b = appendBool(b, m.HasSeq)
		b = appendDigest(b, m.ReplyDigest)
		b = appendBytes(b, m.Reply)
		b = appendDigest(b, m.HistoryDigest)
		b = appendDigestHistory(b, m.HistoryDigests)
		b = appendChainAuth(b, m.CA)
		b = appendInit(b, m.Init)
		return appendU64s(b, m.Feedback), nil
	case *chain.BatchMessage:
		b = appendU16(b, tagChainBatch)
		b = appendU64(b, uint64(m.Instance))
		b = appendBatch(b, m.Batch)
		b = appendU64(b, m.Seq)
		b = appendChainAuths(b, m.ClientCAs)
		b = appendDigests(b, m.ReplyDigests)
		b = appendDigest(b, m.HistoryDigest)
		b = appendDigestHistory(b, m.HistoryDigests)
		b = appendChainAuth(b, m.CA)
		return appendInit(b, m.Init), nil
	case *quorum.RequestMessage:
		b = appendU16(b, tagQuorumRequest)
		b = appendU64(b, uint64(m.Instance))
		b = appendRequest(b, m.Req)
		b = appendInit(b, m.Init)
		b = appendAuth(b, m.Auth)
		return appendU64s(b, m.Feedback), nil
	case *quorum.BatchRequestMessage:
		b = appendU16(b, tagQuorumBatch)
		b = appendU64(b, uint64(m.Instance))
		b = appendBatch(b, m.Batch)
		b = appendInit(b, m.Init)
		b = appendAuth(b, m.Auth)
		return appendU64s(b, m.Feedback), nil
	case *backup.RequestMessage:
		b = appendU16(b, tagBackupRequest)
		b = appendU64(b, uint64(m.Instance))
		b = appendRequest(b, m.Req)
		b = appendInit(b, m.Init)
		return appendAuth(b, m.Auth), nil
	case *backup.WrappedMessage:
		b = appendU16(b, tagBackupWrapped)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.From)
		return appendPayload(b, m.Inner, depth+1)

	case *pbft.Request:
		b = appendU16(b, tagPBFTRequest)
		b = appendRequest(b, m.Req)
		return appendAuth(b, m.Auth), nil
	case *pbft.PrePrepare:
		b = appendU16(b, tagPBFTPrePrepare)
		return appendPrePrepare(b, *m), nil
	case *pbft.Prepare:
		b = appendU16(b, tagPBFTPrepare)
		b = appendU64(b, m.View)
		b = appendU64(b, m.Seq)
		b = appendDigest(b, m.Digest)
		b = appendID(b, m.Replica)
		return appendMAC(b, m.MAC), nil
	case *pbft.Commit:
		b = appendU16(b, tagPBFTCommit)
		b = appendU64(b, m.View)
		b = appendU64(b, m.Seq)
		b = appendDigest(b, m.Digest)
		b = appendID(b, m.Replica)
		return appendMAC(b, m.MAC), nil
	case *pbft.Reply:
		b = appendU16(b, tagPBFTReply)
		b = appendU64(b, m.View)
		b = appendID(b, m.Replica)
		b = appendID(b, m.Client)
		b = appendU64(b, m.Timestamp)
		b = appendBytes(b, m.Result)
		return appendMAC(b, m.MAC), nil
	case *pbft.ViewChange:
		b = appendU16(b, tagPBFTViewChange)
		return appendViewChange(b, *m), nil
	case *pbft.NewView:
		b = appendU16(b, tagPBFTNewView)
		b = appendU64(b, m.View)
		b = appendU32(b, uint32(len(m.ViewChanges)))
		for _, vc := range m.ViewChanges {
			b = appendViewChange(b, vc)
		}
		b = appendU32(b, uint32(len(m.Proposals)))
		for _, pp := range m.Proposals {
			b = appendPrePrepare(b, pp)
		}
		return b, nil

	case *core.PanicMessage:
		b = appendU16(b, tagPanic)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.Client)
		b = appendU64(b, m.Timestamp)
		return appendInit(b, m.Init), nil
	case *core.AbortReply:
		b = appendU16(b, tagAbortReply)
		b = appendU64(b, uint64(m.Instance))
		b = appendU64(b, m.Timestamp)
		return appendSignedAbort(b, m.Signed), nil
	case *core.CheckpointMessage:
		b = appendU16(b, tagCheckpoint)
		b = appendID(b, m.Instance)
		b = appendID(b, m.From)
		b = appendU64(b, uint64(m.AbstractID))
		b = appendU64(b, m.Counter)
		return appendDigest(b, m.StateDigest), nil
	case *core.FetchRequest:
		b = appendU16(b, tagFetchReq)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.From)
		return appendDigests(b, m.Digests), nil
	case *core.FetchResponse:
		b = appendU16(b, tagFetchResp)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.From)
		return appendRequests(b, m.Requests), nil
	case *core.RespMessage:
		b = appendU16(b, tagResp)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.Replica)
		b = appendID(b, m.Client)
		b = appendU64(b, m.Timestamp)
		b = appendBytes(b, m.Reply)
		b = appendDigest(b, m.ReplyDigest)
		b = appendDigest(b, m.HistoryDigest)
		b = appendU64(b, m.HistoryLen)
		b = appendDigestHistory(b, m.HistoryDigests)
		return appendMAC(b, m.MAC), nil

	case *statesync.FetchState:
		b = appendU16(b, tagFetchState)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.From)
		b = appendU64(b, m.Seq)
		return appendID(b, m.BodiesFrom), nil
	case *statesync.State:
		b = appendU16(b, tagState)
		b = appendU64(b, uint64(m.Instance))
		b = appendID(b, m.From)
		b = appendID(b, m.BodiesFrom)
		b = appendSnapshot(b, m.Snap)
		b = appendDigestHistory(b, m.SuffixDigests)
		return appendRequests(b, m.SuffixRequests), nil

	case *shard.Mark:
		b = appendU16(b, tagMark)
		b = appendU32(b, uint32(m.Shard))
		return appendPayload(b, m.Payload, depth+1)
	case *shard.MergedQuery:
		b = appendU16(b, tagMergedQuery)
		b = appendID(b, m.From)
		return appendID(b, m.StateFrom), nil
	case *shard.MergedState:
		b = appendU16(b, tagMergedState)
		b = appendID(b, m.From)
		b = appendU64(b, m.Seq)
		b = appendDigest(b, m.Digest)
		b = appendDigest(b, m.AppHash)
		b = appendBool(b, m.HasApp)
		return appendBytes(b, m.App), nil
	}
	return b, fmt.Errorf("wirecodec: unsupported payload type %T (%w)", p, transport.ErrUnencodable) //abstractbft:alloc-ok error path, envelope is dropped
}

// decodePayload decodes one tagged payload from the reader. On any error the
// reader's sticky error is set and nil is returned.
func decodePayload(r *reader) any {
	return decodeTagged(r, r.u16())
}

// decodeTagged decodes the payload body of an already-read tag: the stream
// decoder pre-reads the tag to peel off the optional envelope-level tagTraced
// prefix before dispatching here.
func decodeTagged(r *reader, tag uint16) any {
	if r.depth++; r.depth > maxDepth {
		r.fail(ErrDepth)
		return nil
	}
	defer func() { r.depth-- }()
	if r.err != nil {
		return nil
	}
	switch tag {
	case tagPacked:
		n := r.count()
		p := &transport.Packed{}
		if n > 0 {
			p.Payloads = make([]any, 0, sliceCap(n, 2))
			for i := 0; i < n && r.err == nil; i++ {
				p.Payloads = append(p.Payloads, decodePayload(r))
			}
		}
		return p
	case tagConnChallenge:
		return &transport.ConnChallenge{Nonce: r.bytes()}
	case tagConnProof:
		return &transport.ConnProof{Proof: r.mac()}

	case tagZLightRequest:
		m := &zlight.RequestMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Req = decodeRequest(r)
		m.Init = decodeInit(r)
		m.Auth = decodeAuth(r)
		return m
	case tagZLightOrder:
		m := &zlight.OrderMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Batch = decodeBatch(r)
		m.Seq = r.u64()
		m.Auths = decodeAuths(r)
		m.PrimaryMAC = r.mac()
		m.Init = decodeInit(r)
		return m
	case tagChainMessage:
		m := &chain.Message{}
		m.Instance = core.InstanceID(r.u64())
		m.Req = decodeRequest(r)
		m.Seq = r.u64()
		m.HasSeq = r.bool()
		m.ReplyDigest = r.digest()
		m.Reply = r.bytes()
		m.HistoryDigest = r.digest()
		m.HistoryDigests = decodeDigestHistory(r)
		m.CA = decodeChainAuth(r)
		m.Init = decodeInit(r)
		m.Feedback = r.u64s()
		return m
	case tagChainBatch:
		m := &chain.BatchMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Batch = decodeBatch(r)
		m.Seq = r.u64()
		m.ClientCAs = decodeChainAuths(r)
		m.ReplyDigests = decodeDigests(r)
		m.HistoryDigest = r.digest()
		m.HistoryDigests = decodeDigestHistory(r)
		m.CA = decodeChainAuth(r)
		m.Init = decodeInit(r)
		return m
	case tagQuorumRequest:
		m := &quorum.RequestMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Req = decodeRequest(r)
		m.Init = decodeInit(r)
		m.Auth = decodeAuth(r)
		m.Feedback = r.u64s()
		return m
	case tagQuorumBatch:
		m := &quorum.BatchRequestMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Batch = decodeBatch(r)
		m.Init = decodeInit(r)
		m.Auth = decodeAuth(r)
		m.Feedback = r.u64s()
		return m
	case tagBackupRequest:
		m := &backup.RequestMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Req = decodeRequest(r)
		m.Init = decodeInit(r)
		m.Auth = decodeAuth(r)
		return m
	case tagBackupWrapped:
		m := &backup.WrappedMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.From = r.id()
		m.Inner = decodePayload(r)
		return m

	case tagPBFTRequest:
		m := &pbft.Request{}
		m.Req = decodeRequest(r)
		m.Auth = decodeAuth(r)
		return m
	case tagPBFTPrePrepare:
		pp := decodePrePrepare(r)
		return &pp
	case tagPBFTPrepare:
		m := &pbft.Prepare{}
		m.View = r.u64()
		m.Seq = r.u64()
		m.Digest = r.digest()
		m.Replica = r.id()
		m.MAC = r.mac()
		return m
	case tagPBFTCommit:
		m := &pbft.Commit{}
		m.View = r.u64()
		m.Seq = r.u64()
		m.Digest = r.digest()
		m.Replica = r.id()
		m.MAC = r.mac()
		return m
	case tagPBFTReply:
		m := &pbft.Reply{}
		m.View = r.u64()
		m.Replica = r.id()
		m.Client = r.id()
		m.Timestamp = r.u64()
		m.Result = r.bytes()
		m.MAC = r.mac()
		return m
	case tagPBFTViewChange:
		vc := decodeViewChange(r)
		return &vc
	case tagPBFTNewView:
		m := &pbft.NewView{}
		m.View = r.u64()
		if n := r.count(); n > 0 {
			m.ViewChanges = make([]pbft.ViewChange, 0, sliceCap(n, 28))
			for i := 0; i < n && r.err == nil; i++ {
				m.ViewChanges = append(m.ViewChanges, decodeViewChange(r))
			}
		}
		if n := r.count(); n > 0 {
			m.Proposals = make([]pbft.PrePrepare, 0, sliceCap(n, 84))
			for i := 0; i < n && r.err == nil; i++ {
				m.Proposals = append(m.Proposals, decodePrePrepare(r))
			}
		}
		return m

	case tagPanic:
		m := &core.PanicMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Client = r.id()
		m.Timestamp = r.u64()
		m.Init = decodeInit(r)
		return m
	case tagAbortReply:
		m := &core.AbortReply{}
		m.Instance = core.InstanceID(r.u64())
		m.Timestamp = r.u64()
		m.Signed = decodeSignedAbort(r)
		return m
	case tagCheckpoint:
		m := &core.CheckpointMessage{}
		m.Instance = r.id()
		m.From = r.id()
		m.AbstractID = core.InstanceID(r.u64())
		m.Counter = r.u64()
		m.StateDigest = r.digest()
		return m
	case tagFetchReq:
		m := &core.FetchRequest{}
		m.Instance = core.InstanceID(r.u64())
		m.From = r.id()
		m.Digests = decodeDigests(r)
		return m
	case tagFetchResp:
		m := &core.FetchResponse{}
		m.Instance = core.InstanceID(r.u64())
		m.From = r.id()
		m.Requests = decodeRequests(r)
		return m
	case tagResp:
		m := &core.RespMessage{}
		m.Instance = core.InstanceID(r.u64())
		m.Replica = r.id()
		m.Client = r.id()
		m.Timestamp = r.u64()
		m.Reply = r.bytes()
		m.ReplyDigest = r.digest()
		m.HistoryDigest = r.digest()
		m.HistoryLen = r.u64()
		m.HistoryDigests = decodeDigestHistory(r)
		m.MAC = r.mac()
		return m

	case tagFetchState:
		m := &statesync.FetchState{}
		m.Instance = core.InstanceID(r.u64())
		m.From = r.id()
		m.Seq = r.u64()
		m.BodiesFrom = r.id()
		return m
	case tagState:
		m := &statesync.State{}
		m.Instance = core.InstanceID(r.u64())
		m.From = r.id()
		m.BodiesFrom = r.id()
		m.Snap = decodeSnapshot(r)
		m.SuffixDigests = decodeDigestHistory(r)
		m.SuffixRequests = decodeRequests(r)
		return m

	case tagMark:
		m := &shard.Mark{}
		m.Shard = int32(r.u32())
		m.Payload = decodePayload(r)
		return m
	case tagMergedQuery:
		m := &shard.MergedQuery{}
		m.From = r.id()
		m.StateFrom = r.id()
		return m
	case tagMergedState:
		m := &shard.MergedState{}
		m.From = r.id()
		m.Seq = r.u64()
		m.Digest = r.digest()
		m.AppHash = r.digest()
		m.HasApp = r.bool()
		m.App = r.bytes()
		return m
	}
	r.fail(fmt.Errorf("%w: %d", ErrUnknownTag, tag))
	return nil
}
