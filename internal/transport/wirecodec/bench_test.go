package wirecodec_test

import (
	"bytes"
	"io"
	"testing"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
	"abstractbft/internal/transport/wirecodec"
	"abstractbft/internal/zlight"
)

// benchEnvelope is the hot-path shape the benchmarks pin down: a batched
// ORDER message (16 requests of 64 bytes, one authenticator per request with
// 4 entries each), the message the primary multicasts once per batch.
func benchEnvelope() transport.Envelope {
	reqs := make([]msg.Request, 16)
	auths := make([]authn.Authenticator, 16)
	cmd := bytes.Repeat([]byte("x"), 64)
	for i := range reqs {
		reqs[i] = msg.Request{Client: ids.Client(i), Timestamp: uint64(100 + i), Command: cmd}
		entries := make([]authn.AuthEntry, 4)
		for j := range entries {
			entries[j] = authn.AuthEntry{Receiver: ids.Replica(j), MAC: authn.MAC{byte(i), byte(j)}}
		}
		auths[i] = authn.Authenticator{Sender: ids.Client(i), Entries: entries}
	}
	return transport.Envelope{
		From: ids.Replica(0),
		To:   ids.Replica(1),
		Payload: &zlight.OrderMessage{
			Instance:   1,
			Batch:      msg.Batch{Requests: reqs},
			Seq:        4096,
			Auths:      auths,
			PrimaryMAC: authn.MAC{1, 2, 3},
		},
	}
}

func benchmarkEncode(b *testing.B, codec transport.Codec) {
	env := benchEnvelope()
	enc := codec.NewEncoder(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(&env); err != nil {
			b.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecode(b *testing.B, codec transport.Codec) {
	env := benchEnvelope()
	// Chunked: pre-encode a block of envelopes with the timer stopped, then
	// decode it with the timer running. The per-chunk decoder construction
	// amortizes to noise.
	const chunk = 256
	var out transport.Envelope
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		n := chunk
		if rem := b.N - done; rem < n {
			n = rem
		}
		b.StopTimer()
		var buf bytes.Buffer
		enc := codec.NewEncoder(&buf)
		for i := 0; i < n; i++ {
			if err := enc.Encode(&env); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
		dec := codec.NewDecoder(&buf)
		b.StartTimer()
		for i := 0; i < n; i++ {
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = out
}

func BenchmarkEncodeBinary(b *testing.B) { benchmarkEncode(b, wirecodec.Binary()) }
func BenchmarkEncodeGob(b *testing.B)    { benchmarkEncode(b, transport.GobCodec()) }
func BenchmarkDecodeBinary(b *testing.B) { benchmarkDecode(b, wirecodec.Binary()) }
func BenchmarkDecodeGob(b *testing.B)    { benchmarkDecode(b, transport.GobCodec()) }

// BenchmarkEncodeBinaryUnpooled measures the one-shot MarshalWire path (a
// fresh output slice per message) against the pooled streaming path above.
func BenchmarkEncodeBinaryUnpooled(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wirecodec.MarshalWire(env.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeAllocBudget is the allocation regression gate CI runs: steady-
// state streaming encode of the batched ORDER envelope must not allocate at
// all, and decode must stay within a pinned budget (the decoded message's
// own slices plus small constant overhead).
func TestEncodeAllocBudget(t *testing.T) {
	env := benchEnvelope()
	enc := wirecodec.Binary().NewEncoder(io.Discard)
	// Warm the buffer pool and the encoder's frame buffer.
	for i := 0; i < 4; i++ {
		if err := enc.Encode(&env); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := enc.Encode(&env); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state encode allocates %.1f times per envelope, want 0", allocs)
	}
}

func TestDecodeAllocBudget(t *testing.T) {
	env := benchEnvelope()
	var buf bytes.Buffer
	enc := wirecodec.Binary().NewEncoder(&buf)
	if err := enc.Encode(&env); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// The budget pins the decoded message's own allocations: the payload
	// struct, 16 requests + commands, 16 authenticators with entry slices,
	// and constant decoder overhead. Regressions (per-field boxing, double
	// copies) blow well past it.
	const budget = 60
	allocs := testing.AllocsPerRun(200, func() {
		dec := wirecodec.Binary().NewDecoder(bytes.NewReader(frame))
		var out transport.Envelope
		if err := dec.Decode(&out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("decode allocates %.1f times per envelope, budget %d", allocs, budget)
	}
}
