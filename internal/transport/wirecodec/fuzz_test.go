package wirecodec_test

import (
	"reflect"
	"testing"

	"abstractbft/internal/transport/wirecodec"
)

// FuzzUnmarshalWire throws arbitrary bytes at the decoder. The properties:
// never panic, never allocate absurdly (the harness's memory limit enforces
// this), and any input that decodes successfully must re-marshal and decode
// to the same value (the codec is canonical on its own output).
//
// Run with: go test -fuzz=FuzzUnmarshalWire ./internal/transport/wirecodec
func FuzzUnmarshalWire(f *testing.F) {
	// Seed corpus: every sample payload's valid encoding, a few mutations,
	// and the adversarial shapes the unit tests pin down.
	for _, p := range samplePayloads() {
		b, err := wirecodec.MarshalWire(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 8 {
			f.Add(b[:len(b)/2])          // truncation
			f.Add(append(b[:8:8], b...)) // duplicated header
			mut := append([]byte(nil), b...)
			mut[len(mut)/2] ^= 0xFF
			f.Add(mut) // bit flip
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0xFF, 0xFF, 0xFF, 0xFF})      // pack with forged count
	f.Add([]byte{0, 2, 0xFF, 0xFF, 0xFF, 0xF0, 'x'}) // oversized byte string
	f.Add([]byte{0xFF, 0xFF})                        // unknown tag

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := wirecodec.UnmarshalWire(data)
		if err != nil {
			return
		}
		re, err := wirecodec.MarshalWire(p)
		if err != nil {
			t.Fatalf("decoded payload %T does not re-marshal: %v", p, err)
		}
		p2, err := wirecodec.UnmarshalWire(re)
		if err != nil {
			t.Fatalf("re-marshaled payload does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("decode/encode/decode not a fixpoint:\nfirst  %#v\nsecond %#v", p, p2)
		}
	})
}
