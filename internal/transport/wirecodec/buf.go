// Package wirecodec is the hand-rolled binary wire codec of the TCP plane:
// explicit, length-prefixed marshalling for the closed set of message types
// that cross a transport.Endpoint. It replaces gob on the hot path — no
// reflection, no per-stream type dictionaries, and near-zero steady-state
// allocations on encode — while the gob codec remains available behind the
// same transport.Codec interface for comparison and fallback.
//
// Wire format. A connection is a sequence of frames:
//
//	frame   := u32 length | body            (length = len(body), big endian)
//	body    := envelope+                    (one or more envelopes)
//	envelope:= i32 from | i32 to | payload
//	payload := u16 tag | fields             (tag from tags.go's table)
//
// Fields are fixed-width big-endian integers, single presence/boolean bytes,
// u32-length-prefixed byte strings, and u32-count-prefixed element sequences.
// Digests and MACs are raw 32-byte values. Nested `any` fields (shard marks,
// backup wraps, packs) recurse into payload with a depth cap.
//
// Every length and count is validated against the bytes remaining in the
// frame before any allocation, so truncated frames, oversized length
// prefixes, and unknown tags fail with a clean error — never a panic, and
// never a partially decoded envelope (decoding is all-or-nothing per frame).
package wirecodec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
)

// Decode errors. All decoder failures wrap one of these.
var (
	ErrTruncated   = errors.New("wirecodec: truncated input")
	ErrOversized   = errors.New("wirecodec: length prefix exceeds input")
	ErrUnknownTag  = errors.New("wirecodec: unknown type tag")
	ErrDepth       = errors.New("wirecodec: payload nesting too deep")
	ErrFrameTooBig = errors.New("wirecodec: frame exceeds size limit")
)

// maxDepth bounds recursion through nested `any` payloads (packs inside
// marks inside wraps); honest senders nest at most three levels.
const maxDepth = 16

// Append helpers: plain append-style writers over a caller-owned buffer.

//abstractbft:noalloc
func appendU8(b []byte, v byte) []byte { return append(b, v) }

//abstractbft:noalloc
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

//abstractbft:noalloc
func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

//abstractbft:noalloc
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

//abstractbft:noalloc
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

//abstractbft:noalloc
func appendID(b []byte, p ids.ProcessID) []byte { return appendU32(b, uint32(int32(p))) }

//abstractbft:noalloc
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

//abstractbft:noalloc
func appendDigest(b []byte, d authn.Digest) []byte { return append(b, d[:]...) }

//abstractbft:noalloc
func appendMAC(b []byte, m authn.MAC) []byte { return append(b, m[:]...) }

//abstractbft:noalloc
func appendU64s(b []byte, vs []uint64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, v)
	}
	return b
}

// reader decodes one frame with a sticky error: after the first failure every
// subsequent read returns zero values and the error is reported once at the
// envelope boundary, so per-field error plumbing is unnecessary and a failed
// decode can never hand back a partially valid payload.
type reader struct {
	buf   []byte
	off   int
	depth int
	err   error
}

func (r *reader) rem() int { return len(r.buf) - r.off }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take claims n bytes of the frame, failing cleanly when fewer remain.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.rem() {
		r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, r.rem()))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) id() ids.ProcessID { return ids.ProcessID(int32(r.u32())) }

// bytes reads a u32-length-prefixed byte string into a fresh slice (the
// frame buffer is recycled, so decoded payloads must not alias it). A zero
// length decodes to nil, matching gob's round-trip of empty slices.
func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(n) > int64(r.rem()) {
		r.fail(fmt.Errorf("%w: byte string of %d in %d remaining", ErrOversized, n, r.rem()))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.take(int(n)))
	return out
}

func (r *reader) digest() (d authn.Digest) {
	b := r.take(authn.DigestSize)
	if b != nil {
		copy(d[:], b)
	}
	return d
}

func (r *reader) mac() (m authn.MAC) {
	b := r.take(authn.MACSize)
	if b != nil {
		copy(m[:], b)
	}
	return m
}

// count reads a u32 element count and validates it against the remaining
// frame bytes (every element encodes to at least one byte), so a forged
// count cannot force a large allocation.
func (r *reader) count() int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n) > int64(r.rem()) {
		r.fail(fmt.Errorf("%w: %d elements in %d remaining bytes", ErrOversized, n, r.rem()))
		return 0
	}
	return int(n)
}

func (r *reader) u64s() []uint64 {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]uint64, 0, sliceCap(n, 8))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.u64())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// sliceCap bounds the initial capacity of a decoded slice: grow-by-append
// from a modest start, so a hostile count validated only against a minimum
// element size still cannot force a huge up-front allocation.
func sliceCap(n, elemSize int) int {
	const budget = 64 * 1024
	if max := budget / elemSize; n > max {
		return max
	}
	return n
}
