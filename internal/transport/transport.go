// Package transport provides the message-passing substrate of the system
// model (§2): a fully connected, asynchronous, unreliable network between
// clients and replicas with fair-loss links.
//
// Two implementations are provided:
//
//   - Local: an in-process network connecting goroutines through channels,
//     with configurable per-link latency, loss probability, partitions, and
//     arbitrary filters used for fault and attack injection.
//   - TCP (see tcp.go): a gob-encoded TCP transport for multi-process
//     deployments driven by cmd/replica and cmd/client.
package transport

import (
	"math/rand"
	"sync"
	"time"

	"abstractbft/internal/ids"
	"abstractbft/internal/obs"
)

// Envelope is a message in flight: a payload together with its source and
// destination.
type Envelope struct {
	From    ids.ProcessID
	To      ids.ProcessID
	Payload any
	// Trace is an optional envelope-level tracing context. The request plane
	// propagates trace contexts inside payloads (msg.Request.Trace), but
	// control messages without a request can stamp the envelope instead; both
	// wire codecs carry it, and an untraced envelope pays zero extra wire
	// bytes on the binary codec. Expanded pack elements inherit the pack
	// envelope's context.
	Trace obs.TraceContext
}

// Endpoint is one process's attachment to a network.
type Endpoint interface {
	// ID returns the identifier of the attached process.
	ID() ids.ProcessID
	// Send transmits payload to the destination process. Send never blocks;
	// messages may be dropped (fair-loss links).
	Send(to ids.ProcessID, payload any)
	// Inbox returns the channel on which incoming envelopes are delivered.
	Inbox() <-chan Envelope
	// Close detaches the endpoint; subsequent sends to it are dropped.
	Close()
}

// Filter inspects an envelope before delivery. Returning false drops the
// envelope. Filters are the hook used by fault and attack injection.
type Filter func(Envelope) bool

// Delayer returns the additional propagation delay for a message from one
// process to another.
type Delayer func(from, to ids.ProcessID, payload any) time.Duration

// Options configures a Local network.
type Options struct {
	// QueueLen is the per-endpoint inbox length; messages arriving at a full
	// inbox are dropped (modelling loss under overload). Defaults to 8192.
	QueueLen int
	// Delay, when non-nil, returns the propagation delay per message.
	Delay Delayer
	// LossProbability is the independent probability of dropping each
	// message (in [0,1)).
	LossProbability float64
	// Seed seeds the loss-model random generator; 0 selects a fixed seed so
	// runs are reproducible by default.
	Seed int64
}

// Local is an in-process network.
type Local struct {
	opts Options

	mu        sync.RWMutex
	endpoints map[ids.ProcessID]*localEndpoint
	filters   []Filter
	parts     map[ids.ProcessID]int // partition id per process; 0 = default partition
	rng       *rand.Rand
	rngMu     sync.Mutex
	closed    bool

	msgCount uint64
	byteEst  uint64
	sizer    func(any) int
}

// NewLocal creates an in-process network with the given options.
func NewLocal(opts Options) *Local {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 8192
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	return &Local{
		opts:      opts,
		endpoints: make(map[ids.ProcessID]*localEndpoint),
		parts:     make(map[ids.ProcessID]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Endpoint attaches (or returns the existing attachment of) process p.
func (n *Local) Endpoint(p ids.ProcessID) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[p]; ok {
		return ep
	}
	ep := &localEndpoint{
		net: n,
		id:  p,
		in:  make(chan Envelope, n.opts.QueueLen),
	}
	n.endpoints[p] = ep
	return ep
}

// ResetEndpoint detaches process p's current endpoint (if any) and attaches
// a fresh one in its place: the crash-restart harness gives a restarted
// replica a clean inbox under its old identity, exactly like a process
// coming back up on the same address.
func (n *Local) ResetEndpoint(p ids.ProcessID) Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.endpoints[p]; ok {
		old.closeLocked()
	}
	ep := &localEndpoint{
		net: n,
		id:  p,
		in:  make(chan Envelope, n.opts.QueueLen),
	}
	n.endpoints[p] = ep
	return ep
}

// AddFilter installs a delivery filter. Filters run in installation order;
// the first filter returning false drops the message.
func (n *Local) AddFilter(f Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.filters = append(n.filters, f)
}

// ClearFilters removes all installed filters.
func (n *Local) ClearFilters() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.filters = nil
}

// Partition places process p in the given partition. Messages are delivered
// only between processes in the same partition. All processes start in
// partition 0.
func (n *Local) Partition(p ids.ProcessID, partition int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[p] = partition
}

// Heal returns every process to partition 0.
func (n *Local) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts = make(map[ids.ProcessID]int)
}

// SetSizer installs a function estimating the wire size of payloads, used for
// traffic accounting in benchmarks.
func (n *Local) SetSizer(f func(any) int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sizer = f
}

// Stats returns the number of messages delivered and the estimated bytes.
func (n *Local) Stats() (messages, bytes uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.msgCount, n.byteEst
}

// Close shuts the network down; all endpoints stop receiving.
func (n *Local) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, ep := range n.endpoints {
		ep.closeLocked()
	}
}

func (n *Local) deliver(env Envelope) {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return
	}
	dst, ok := n.endpoints[env.To]
	filters := n.filters
	samePart := n.parts[env.From] == n.parts[env.To]
	loss := n.opts.LossProbability
	delay := n.opts.Delay
	sizer := n.sizer
	n.mu.RUnlock()

	if !ok || !samePart {
		return
	}
	for _, f := range filters {
		if !f(env) {
			return
		}
	}
	if loss > 0 {
		n.rngMu.Lock()
		drop := n.rng.Float64() < loss
		n.rngMu.Unlock()
		if drop {
			return
		}
	}

	n.mu.Lock()
	if !n.closed {
		n.msgCount++
		if sizer != nil {
			n.byteEst += uint64(sizer(env.Payload))
		}
	}
	n.mu.Unlock()

	if delay != nil {
		if d := delay(env.From, env.To, env.Payload); d > 0 {
			time.AfterFunc(d, func() { dst.enqueueUnpacked(env) })
			return
		}
	}
	dst.enqueueUnpacked(env)
}

type localEndpoint struct {
	net *Local
	id  ids.ProcessID

	mu     sync.Mutex
	in     chan Envelope
	closed bool
}

func (e *localEndpoint) ID() ids.ProcessID { return e.id }

func (e *localEndpoint) Send(to ids.ProcessID, payload any) {
	e.net.deliver(Envelope{From: e.id, To: to, Payload: payload})
}

func (e *localEndpoint) Inbox() <-chan Envelope { return e.in }

// enqueueUnpacked delivers an envelope, expanding write-coalesced packs into
// individual envelopes so inbox consumers only ever see protocol payloads.
func (e *localEndpoint) enqueueUnpacked(env Envelope) {
	if p, ok := env.Payload.(*Packed); ok {
		for _, payload := range p.Payloads {
			e.enqueue(Envelope{From: env.From, To: env.To, Payload: payload, Trace: env.Trace})
		}
		return
	}
	e.enqueue(env)
}

func (e *localEndpoint) enqueue(env Envelope) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.in <- env:
	default:
		// Inbox full: drop, modelling loss under overload.
	}
}

func (e *localEndpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeInner()
}

func (e *localEndpoint) closeLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeInner()
}

func (e *localEndpoint) closeInner() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.in)
}

// Multicast sends the payload from the endpoint to every destination in tos.
func Multicast(ep Endpoint, tos []ids.ProcessID, payload any) {
	for _, to := range tos {
		ep.Send(to, payload)
	}
}

// Packed carries several payloads destined to one process as a single wire
// envelope (write coalescing): the network treats the pack as one message
// (one queue slot, one loss/filter decision, one TCP frame) and unpacks it
// into individual envelopes on the receiving side, so inbox consumers never
// see it.
type Packed struct {
	Payloads []any
}

// SendBatch transmits several payloads to one destination as a single
// envelope. A batch of one (or zero) payloads degenerates to a plain Send.
//
//abstractbft:noalloc
func SendBatch(ep Endpoint, to ids.ProcessID, payloads []any) {
	switch len(payloads) {
	case 0:
	case 1:
		ep.Send(to, payloads[0])
	default:
		ep.Send(to, &Packed{Payloads: payloads})
	}
}

// SymmetricDelay returns a Delayer applying the same one-way delay to every
// link; it models the bounded delay Δ of synchronous periods.
func SymmetricDelay(d time.Duration) Delayer {
	return func(ids.ProcessID, ids.ProcessID, any) time.Duration { return d }
}
