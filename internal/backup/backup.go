// Package backup implements Backup (§4.3), the Abstract instance with strong
// progress that composed protocols fall back to when the optimistic instances
// abort: it wraps a total-order (BFT) protocol — PBFT by default, Aardvark in
// R-Aliph — and commits exactly k requests before aborting every subsequent
// one, where k grows exponentially across Backup instances to guarantee the
// liveness of the composition.
package backup

import (
	"encoding/binary"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/pbft"
	"abstractbft/internal/transport"
)

// KPolicy decides how many requests a Backup instance commits before
// aborting. backupIndex is the 0-based count of Backup instances that
// preceded this one in the composition; lowLoad reports whether the init
// history carried Chain's low-load flag.
type KPolicy func(backupIndex int, lowLoad bool) uint64

// ExponentialK returns the paper's default policy: k = initial * 2^index,
// capped at max, flattened to 1 when the previous instance aborted because of
// low load (so the composition returns to Quorum after a single request).
func ExponentialK(initial, max uint64) KPolicy {
	if initial == 0 {
		initial = 1
	}
	if max == 0 {
		max = 1 << 20
	}
	return func(backupIndex int, lowLoad bool) uint64 {
		if lowLoad {
			return 1
		}
		k := initial
		for i := 0; i < backupIndex && k < max; i++ {
			k *= 2
		}
		if k > max {
			k = max
		}
		return k
	}
}

// FixedK always commits exactly k requests (used by the fault-behaviour
// experiment of Fig. 14 to contrast with the exponential policy).
func FixedK(k uint64) KPolicy {
	if k == 0 {
		k = 1
	}
	return func(int, bool) uint64 { return k }
}

// RequestMessage is the client request of a Backup instance: it is sent to
// every replica so each can submit it to the underlying ordering protocol.
type RequestMessage struct {
	Instance core.InstanceID
	Req      msg.Request
	Init     *core.InitHistory
	Auth     authn.Authenticator
}

// AbstractInstance implements core.InstanceMessage.
func (m *RequestMessage) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *RequestMessage) CarriedInit() *core.InitHistory { return m.Init }

// WrappedMessage carries a message of the underlying ordering protocol,
// tagged with the Backup instance it belongs to so replica hosts can route
// it.
type WrappedMessage struct {
	Instance core.InstanceID
	From     ids.ProcessID
	Inner    any
}

// AbstractInstance implements core.InstanceMessage.
func (m *WrappedMessage) AbstractInstance() core.InstanceID { return m.Instance }

// AuthBytes is the data clients authenticate for Backup requests.
func AuthBytes(instance core.InstanceID, req msg.Request) []byte {
	var buf [8 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	d := req.Digest()
	copy(buf[8:], d[:])
	return buf[:]
}

func init() {
	transport.RegisterWireType(&RequestMessage{})
	transport.RegisterWireType(&WrappedMessage{})
}

// Orderer is the total-order protocol Backup wraps. The PBFT engine satisfies
// it; Aardvark provides its own implementation with robust primary rotation.
type Orderer interface {
	// SubmitRequest hands a client request to the ordering protocol.
	SubmitRequest(req msg.Request)
	// HandleMessage processes an ordering-protocol message.
	HandleMessage(from ids.ProcessID, m any)
	// Tick drives the ordering protocol's timers.
	Tick()
}

// OrdererFactory builds the ordering engine for one Backup instance. send
// transmits ordering-protocol messages (already wrapped for routing); deliver
// must be called with each ordered batch, in order.
type OrdererFactory func(h *host.Host, inst core.InstanceID, send func(to ids.ProcessID, m any), deliver func([]msg.Request)) Orderer

// PBFTOrderer returns an OrdererFactory building a plain PBFT engine with the
// given batch size and view-change timeout.
func PBFTOrderer(batchSize int, viewChangeTimeout time.Duration) OrdererFactory {
	return func(h *host.Host, inst core.InstanceID, send func(to ids.ProcessID, m any), deliver func([]msg.Request)) Orderer {
		return pbft.NewEngine(pbft.EngineConfig{
			Cluster:           h.Cluster(),
			Replica:           h.ID(),
			Keys:              h.Keys(),
			Send:              send,
			Deliver:           deliver,
			BatchSize:         batchSize,
			ViewChangeTimeout: viewChangeTimeout,
			Ops:               h.Ops(),
		})
	}
}

// ReplicaConfig configures the Backup replicas of a composition.
type ReplicaConfig struct {
	// K decides how many requests each Backup instance commits.
	K KPolicy
	// BackupIndex maps an instance number to the 0-based index of the
	// Backup instance within the composition (how many Backup instances
	// preceded it); it parameterizes the exponential K policy.
	BackupIndex func(core.InstanceID) int
	// Orderer builds the wrapped ordering protocol (PBFT by default).
	Orderer OrdererFactory
}

// Replica implements the Backup functionality on one replica for one
// Abstract instance.
type Replica struct {
	h   *host.Host
	st  *host.InstanceState
	cfg ReplicaConfig

	orderer   Orderer
	k         uint64
	committed uint64
}

// NewReplica returns a host.ProtocolFactory creating Backup replicas.
func NewReplica(cfg ReplicaConfig) host.ProtocolFactory {
	if cfg.K == nil {
		cfg.K = ExponentialK(1, 1<<20)
	}
	if cfg.BackupIndex == nil {
		cfg.BackupIndex = func(id core.InstanceID) int { return int(id / 2) }
	}
	if cfg.Orderer == nil {
		cfg.Orderer = PBFTOrderer(8, 500*time.Millisecond)
	}
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		r := &Replica{h: h, st: st, cfg: cfg}
		r.k = cfg.K(cfg.BackupIndex(st.ID), st.InitLowLoad)
		send := func(to ids.ProcessID, m any) {
			h.Send(to, &WrappedMessage{Instance: st.ID, From: h.ID(), Inner: m})
		}
		r.orderer = cfg.Orderer(h, st.ID, send, r.deliver)
		return r
	}
}

// K returns the number of requests this Backup instance commits before
// aborting (exposed for tests).
func (r *Replica) K() uint64 { return r.k }

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	switch t := m.(type) {
	case *RequestMessage:
		r.onRequest(from, t)
	case *WrappedMessage:
		r.orderer.HandleMessage(t.From, t.Inner)
	}
}

// ProtocolTick implements host.Ticker, driving the ordering protocol's
// timers (view changes).
func (r *Replica) ProtocolTick() {
	if r.st.Stopped {
		return
	}
	r.orderer.Tick()
}

// onRequest verifies the client's authenticator and submits the request to
// the underlying ordering protocol.
func (r *Replica) onRequest(from ids.ProcessID, m *RequestMessage) {
	if err := r.h.VerifyClientAuth(m.Auth, AuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) || r.h.AppliedStale(m.Req.Client, m.Req.Timestamp) {
		// Retransmission per the instance window or the host's applied
		// window (the cross-instance at-most-once gate): resend the cached
		// reply (or the abort if the instance already stopped).
		if r.st.Stopped {
			signed := r.h.SignedAbortFor(r.st)
			r.h.Send(m.Req.Client, &core.AbortReply{Instance: r.st.ID, Timestamp: m.Req.Timestamp, Signed: signed})
			return
		}
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, true)
			r.h.Send(m.Req.Client, resp)
		}
		return
	}
	if r.st.Stopped {
		// The instance already committed its k requests: return the signed
		// abort immediately rather than waiting for the client to panic.
		signed := r.h.SignedAbortFor(r.st)
		r.h.Send(m.Req.Client, &core.AbortReply{Instance: r.st.ID, Timestamp: m.Req.Timestamp, Signed: signed})
		return
	}
	r.h.StoreRequest(m.Req)
	r.orderer.SubmitRequest(m.Req)
}

// deliver consumes the total order produced by the wrapped protocol: the
// first k requests are committed (logged, executed, replied), every
// subsequent request aborts.
func (r *Replica) deliver(batch []msg.Request) {
	for _, req := range batch {
		if r.st.Contains(req.Digest()) {
			continue
		}
		if r.committed >= r.k || r.st.Stopped {
			r.h.StopInstance(r.st)
			signed := r.h.SignedAbortFor(r.st)
			r.h.Send(req.Client, &core.AbortReply{Instance: r.st.ID, Timestamp: req.Timestamp, Signed: signed})
			continue
		}
		if !r.st.TimestampFresh(req.Client, req.Timestamp) {
			continue
		}
		if _, ok := r.h.Log(r.st, req); !ok {
			continue
		}
		reply := r.h.Execute(r.st, req)
		r.committed++
		resp := r.h.BuildResp(r.st, req, reply, true)
		r.h.Send(req.Client, resp)
		if r.h.ID() == r.h.Cluster().Head() {
			r.h.Ops().CountRequest()
		}
		if r.committed >= r.k {
			// The k-th request has been committed: stop and abort everything
			// that follows.
			r.h.StopInstance(r.st)
		}
	}
}

var _ host.ProtocolReplica = (*Replica)(nil)
var _ host.Ticker = (*Replica)(nil)
