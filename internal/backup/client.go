package backup

import (
	"context"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// StopOnPanic implements host.PanicResistant: Backup's progress property is
// to commit exactly k requests, so client panics never stop it.
func (r *Replica) StopOnPanic() bool { return false }

// Client is the client-side handle of one Backup instance.
type Client struct {
	env core.ClientEnv
	id  core.InstanceID
}

// NewClient creates a Backup instance client.
func NewClient(env core.ClientEnv, id core.InstanceID) *Client {
	return &Client{env: env, id: id}
}

// ID implements core.Instance.
func (c *Client) ID() core.InstanceID { return c.id }

// Invoke implements core.Instance: the request is sent to every replica,
// ordered by the wrapped BFT protocol, and the client commits on f+1
// matching replies or aborts on 2f+1 matching signed ABORT messages.
func (c *Client) Invoke(ctx context.Context, req msg.Request, init *core.InitHistory) (core.Outcome, error) {
	if c.env.Checker != nil {
		c.env.Checker.RecordInvoke(req)
		c.env.Checker.RecordInit(c.id, init)
	}
	auth := c.env.Keys.NewAuthenticator(c.env.ID, c.env.Cluster.Replicas(), AuthBytes(c.id, req))
	c.env.Ops.CountMACGen(c.env.ID, auth.NumMACs())
	m := &RequestMessage{Instance: c.id, Req: req, Init: init, Auth: auth}
	send := func() { transport.Multicast(c.env.Endpoint, c.env.Cluster.Replicas(), m) }
	send()

	type voteKey struct {
		reply   authn.Digest
		history authn.Digest
	}
	type bucket struct {
		replicas map[ids.ProcessID]bool
		reply    []byte
		digests  []authn.Digest
	}
	votes := make(map[voteKey]*bucket)
	collector := core.NewAbortCollector(c.env.Cluster, c.env.Keys, c.id)

	retry := time.NewTicker(c.env.Timer(10))
	defer retry.Stop()

	for {
		select {
		case <-ctx.Done():
			return core.Outcome{}, ctx.Err()
		case <-retry.C:
			send()
		case env, ok := <-c.env.Endpoint.Inbox():
			if !ok {
				return core.Outcome{}, core.ErrStopped
			}
			switch t := env.Payload.(type) {
			case *core.RespMessage:
				if t.Instance != c.id || t.Timestamp != req.Timestamp || t.Client != c.env.ID {
					continue
				}
				c.env.Ops.CountMACVerify(c.env.ID, 1)
				if err := c.env.Keys.VerifyMAC(t.Replica, c.env.ID, t.MACBytes(), t.MAC); err != nil {
					continue
				}
				key := voteKey{reply: t.ReplyDigest, history: t.HistoryDigest}
				b := votes[key]
				if b == nil {
					b = &bucket{replicas: make(map[ids.ProcessID]bool)}
					votes[key] = b
				}
				b.replicas[t.Replica] = true
				if b.reply == nil && authn.Hash(t.Reply) == t.ReplyDigest {
					b.reply = append([]byte{}, t.Reply...)
				}
				if len(t.HistoryDigests) > 0 {
					b.digests = t.HistoryDigests
				}
				if len(b.replicas) >= c.env.Cluster.WeakQuorum() && b.reply != nil {
					out := core.Outcome{Committed: true, Reply: b.reply, CommitHistory: b.digests}
					if c.env.Checker != nil {
						c.env.Checker.RecordCommit(c.id, req, b.reply, b.digests)
					}
					return out, nil
				}
			case *core.AbortReply:
				if t.Instance != c.id {
					continue
				}
				c.env.Ops.CountSigVerify(c.env.ID)
				if !collector.Add(t.Signed) || !collector.Ready() {
					continue
				}
				ind, err := collector.Build([]msg.Request{req})
				if err != nil {
					continue
				}
				if c.env.Checker != nil {
					c.env.Checker.RecordAbort(c.id, req, ind.Init.Extract.Suffix)
				}
				return core.Outcome{Committed: false, Abort: &ind}, nil
			}
		}
	}
}

var _ core.Instance = (*Client)(nil)
