package statesync

// DefaultStoreCapacity is the number of recent snapshots a replica retains.
// Keeping a small window (rather than only the latest) lets a responder serve
// FETCH-STATE requests pinned below the newest boundary — a fetcher aligning
// with an adopted base checkpoint or a restored merge boundary.
const DefaultStoreCapacity = 4

// Store retains the most recent snapshots of one replica, ordered by the
// position they cover. It is not synchronized: the host mutates it under its
// own lock.
type Store struct {
	capacity int
	snaps    []Snapshot // ascending Seq
	// floor pins the newest snapshot at or below it against capacity
	// eviction: a consumer (the sharded plane's merged mirror) still needs a
	// boundary that far back, however many newer boundaries were captured.
	floor uint64
}

// NewStore returns a store retaining up to capacity snapshots
// (DefaultStoreCapacity when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{capacity: capacity}
}

// Add records a snapshot, evicting beyond the capacity: normally the
// oldest, but the newest snapshot at or below the floor stays pinned.
// Snapshots are taken at monotonically increasing boundaries; a duplicate or
// out-of-order Seq is ignored.
func (s *Store) Add(sn Snapshot) {
	if n := len(s.snaps); n > 0 && sn.Seq <= s.snaps[n-1].Seq {
		return
	}
	s.snaps = append(s.snaps, sn)
	for len(s.snaps) > s.capacity {
		i := 0
		if s.snaps[0].Seq <= s.floor && (len(s.snaps) < 2 || s.snaps[1].Seq > s.floor) {
			// snaps[0] is the newest boundary still covering the floor: evict
			// the next-oldest instead.
			i = 1
		}
		s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
	}
}

// SetFloor pins the newest snapshot at or below seq against eviction.
func (s *Store) SetFloor(seq uint64) { s.floor = seq }

// At returns the snapshot covering exactly seq.
func (s *Store) At(seq uint64) (Snapshot, bool) {
	for _, sn := range s.snaps {
		if sn.Seq == seq {
			return sn, true
		}
	}
	return Snapshot{}, false
}

// LatestAtOrBelow returns the newest snapshot covering at most seq.
func (s *Store) LatestAtOrBelow(seq uint64) (Snapshot, bool) {
	for i := len(s.snaps) - 1; i >= 0; i-- {
		if s.snaps[i].Seq <= seq {
			return s.snaps[i], true
		}
	}
	return Snapshot{}, false
}

// Latest returns the newest snapshot.
func (s *Store) Latest() (Snapshot, bool) {
	if len(s.snaps) == 0 {
		return Snapshot{}, false
	}
	return s.snaps[len(s.snaps)-1], true
}

// DropAbove removes snapshots covering more than seq: a speculative tail
// containing a checkpoint boundary was rolled back, so the snapshots taken
// inside it describe state that never committed.
func (s *Store) DropAbove(seq uint64) {
	keep := s.snaps[:0]
	for _, sn := range s.snaps {
		if sn.Seq <= seq {
			keep = append(keep, sn)
		}
	}
	for i := len(keep); i < len(s.snaps); i++ {
		s.snaps[i] = Snapshot{}
	}
	s.snaps = keep
}

// PruneBelow drops snapshots covering less than seq (garbage collection once
// a newer checkpoint is stable everywhere).
func (s *Store) PruneBelow(seq uint64) {
	keep := s.snaps[:0]
	for _, sn := range s.snaps {
		if sn.Seq >= seq {
			keep = append(keep, sn)
		}
	}
	for i := len(keep); i < len(s.snaps); i++ {
		s.snaps[i] = Snapshot{}
	}
	s.snaps = keep
}

// Len returns the number of retained snapshots.
func (s *Store) Len() int { return len(s.snaps) }
