package statesync

import (
	"testing"

	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func testReq(ts uint64) msg.Request {
	return msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte{byte(ts)}}
}

// testState builds an honest STATE response: a snapshot whose digests are
// internally consistent plus the given suffix requests.
func testState(from ids.ProcessID, seq uint64, appState []byte, suffix []msg.Request) *State {
	st := &State{
		Instance: 1,
		From:     from,
		Snap:     NewSnapshot(seq, authn.Hash([]byte{byte(seq)}), appState, nil, nil),
	}
	for _, r := range suffix {
		st.SuffixDigests = append(st.SuffixDigests, r.Digest())
		st.SuffixRequests = append(st.SuffixRequests, r)
	}
	return st
}

func TestStoreRetentionAndLookup(t *testing.T) {
	s := NewStore(2)
	for _, seq := range []uint64{8, 16, 24} {
		s.Add(Snapshot{Seq: seq})
	}
	if s.Len() != 2 {
		t.Fatalf("retained %d snapshots, want 2", s.Len())
	}
	if _, ok := s.At(8); ok {
		t.Fatal("oldest snapshot should have been evicted")
	}
	if sn, ok := s.LatestAtOrBelow(20); !ok || sn.Seq != 16 {
		t.Fatalf("LatestAtOrBelow(20) = %v, %v", sn.Seq, ok)
	}
	if sn, ok := s.Latest(); !ok || sn.Seq != 24 {
		t.Fatalf("Latest = %v, %v", sn.Seq, ok)
	}
	s.Add(Snapshot{Seq: 16}) // out of order: ignored
	if sn, _ := s.Latest(); sn.Seq != 24 {
		t.Fatal("out-of-order Add replaced the latest snapshot")
	}
	s.PruneBelow(24)
	if s.Len() != 1 {
		t.Fatalf("prune kept %d snapshots", s.Len())
	}
	s.DropAbove(8)
	if s.Len() != 0 {
		t.Fatal("DropAbove kept a rolled-back snapshot")
	}
}

// TestCollectorRequiresAgreement: a single response (even an honest one) is
// not enough; f+1 matching snapshot identities are.
func TestCollectorRequiresAgreement(t *testing.T) {
	col := NewCollector(1)
	appState := []byte("state-at-16")
	if err := col.Add(testState(ids.Replica(0), 16, appState, nil)); err != nil {
		t.Fatalf("add: %v", err)
	}
	if _, ok := col.Result(); ok {
		t.Fatal("one vote must not reach agreement at f=1")
	}
	// A duplicate from the same replica must not count twice.
	col.Add(testState(ids.Replica(0), 16, appState, nil))
	if _, ok := col.Result(); ok {
		t.Fatal("repeated votes from one replica must not reach agreement")
	}
	if err := col.Add(&State{From: ids.Client(3)}); err == nil {
		t.Fatal("client responses must be rejected")
	}
	col.Add(testState(ids.Replica(1), 16, appState, nil))
	a, ok := col.Result()
	if !ok || a.Snap.Seq != 16 || string(a.Snap.AppState) != "state-at-16" {
		t.Fatalf("agreement not reached: %+v, %v", a, ok)
	}
}

// TestCollectorRejectsLyingSnapshotPeer: a Byzantine peer that claims the
// agreed digests but ships forged snapshot bytes must not have its bytes
// adopted, and a Byzantine minority claiming a different (higher) snapshot
// must not win however attractive its offer.
func TestCollectorRejectsLyingSnapshotPeer(t *testing.T) {
	appState := []byte("honest-state")
	honest := testState(ids.Replica(1), 16, appState, nil)

	// Liar 1: agrees on the snapshot identity but sends forged bytes.
	forged := testState(ids.Replica(0), 16, appState, nil)
	forged.Snap.AppState = []byte("forged-state")

	// Liar 2: claims a higher snapshot nobody corroborates.
	alone := testState(ids.Replica(2), 64, []byte("made-up"), nil)

	col := NewCollector(1)
	col.Add(forged)
	col.Add(alone)
	if _, ok := col.Result(); ok {
		t.Fatal("forged + uncorroborated responses must not reach agreement")
	}
	col.Add(honest)
	a, ok := col.Result()
	if !ok {
		t.Fatal("agreement should be reached once the honest peer answers")
	}
	if a.Snap.Seq != 16 {
		t.Fatalf("adopted seq %d, want the corroborated 16", a.Snap.Seq)
	}
	if string(a.Snap.AppState) != "honest-state" {
		t.Fatalf("adopted bytes %q from the lying peer", a.Snap.AppState)
	}
	if a.Snap.PayloadDigest() != a.Snap.AppDigest {
		t.Fatal("adopted payload does not hash to the agreed digest")
	}
}

// TestCollectorSuffixExtraction: the suffix beyond the snapshot is adopted
// position by position under f+1 *explicit* agreement — a response whose
// snapshot merely covers a position does not vote for it (an implicit vote
// would let one Byzantine explicit vote forge an entry) — and bodies are
// matched to agreed digests (a lying body is dropped).
func TestCollectorSuffixExtraction(t *testing.T) {
	appState := []byte("state")
	reqs := []msg.Request{testReq(1), testReq(2), testReq(3)}

	a := testState(ids.Replica(0), 16, appState, reqs)
	b := testState(ids.Replica(1), 16, appState, reqs[:2]) // shorter suffix
	// A third response with a higher snapshot covering positions 16..19: it
	// must NOT count as agreement for them.
	c := testState(ids.Replica(2), 20, []byte("later"), nil)
	// b also ships a body that matches no agreed digest: it must be dropped.
	b.SuffixRequests = append(b.SuffixRequests, testReq(99))

	col := NewCollector(1)
	col.Add(a)
	col.Add(b)
	col.Add(c)
	got, ok := col.Result()
	if !ok {
		t.Fatal("agreement not reached")
	}
	if got.Snap.Seq != 16 {
		t.Fatalf("adopted seq %d, want 16", got.Snap.Seq)
	}
	// Positions 16,17 have explicit votes from a+b. Position 18 has only
	// a's explicit vote (c covers it implicitly, which must not count —
	// otherwise a alone could forge the entry).
	if len(got.Suffix) != 2 {
		t.Fatalf("suffix %d entries, want 2", len(got.Suffix))
	}
	for i, r := range reqs[:2] {
		if got.Suffix[i] != r.Digest() {
			t.Fatalf("suffix digest %d mismatch", i)
		}
		body, ok := got.Bodies[r.Digest()]
		if !ok || !body.Equal(r) {
			t.Fatalf("body %d missing or wrong", i)
		}
	}
	if _, ok := got.Bodies[testReq(99).Digest()]; ok {
		t.Fatal("unagreed body adopted")
	}
	if got.End() != 18 {
		t.Fatalf("End() = %d, want 18", got.End())
	}
}

// TestCollectorSuffixForgeryResisted: one Byzantine explicit vote plus an
// honest higher snapshot must not push a forged suffix entry (and body)
// past the threshold.
func TestCollectorSuffixForgeryResisted(t *testing.T) {
	appState := []byte("state")
	honest1 := testState(ids.Replica(0), 16, appState, nil) // empty suffix
	honest2 := testState(ids.Replica(1), 16, appState, nil)
	higher := testState(ids.Replica(2), 24, []byte("later"), nil)
	forger := testState(ids.Replica(3), 16, appState, []msg.Request{testReq(66)})

	col := NewCollector(1)
	col.Add(honest1)
	col.Add(honest2)
	col.Add(higher)
	col.Add(forger)
	got, ok := col.Result()
	if !ok {
		t.Fatal("agreement not reached")
	}
	if len(got.Suffix) != 0 {
		t.Fatalf("forged suffix entry adopted (%d entries)", len(got.Suffix))
	}
	if len(got.Bodies) != 0 {
		t.Fatal("forged body adopted")
	}
}

// TestCollectorDigestFirstHandshake: digest-only responses (the non-
// designated peers of the digest-first handshake) count toward agreement but
// carry nothing to adopt; the transfer completes once the one designated
// peer ships a payload matching the agreed digest, and NeedPayload tells the
// fetcher to rotate the designation until then.
func TestCollectorDigestFirstHandshake(t *testing.T) {
	appState := []byte("state-at-16")
	full := testState(ids.Replica(0), 16, appState, []msg.Request{testReq(1)})
	digestOnly1 := testState(ids.Replica(1), 16, appState, []msg.Request{testReq(1)})
	digestOnly1.Snap = digestOnly1.Snap.StripPayload()
	digestOnly2 := testState(ids.Replica(2), 16, appState, []msg.Request{testReq(1)})
	digestOnly2.Snap = digestOnly2.Snap.StripPayload()

	col := NewCollector(1)
	col.Add(digestOnly1)
	col.Add(digestOnly2)
	if _, ok := col.Result(); ok {
		t.Fatal("digest-only agreement must not be adopted without a payload")
	}
	if !col.NeedPayload() {
		t.Fatal("NeedPayload must report the agreed-but-unshipped snapshot")
	}
	col.Add(full)
	a, ok := col.Result()
	if !ok || string(a.Snap.AppState) != "state-at-16" {
		t.Fatalf("transfer did not complete after the designated payload: %+v, %v", a, ok)
	}
	if len(a.Suffix) != 1 {
		t.Fatalf("suffix lost under digest-first responses: %d entries", len(a.Suffix))
	}
}

// TestCollectorDigestFirstLyingDesignated: a designated peer shipping bytes
// that do not hash to the agreed digest must not be adopted; NeedPayload
// drives re-designation, and an honest payload then completes the transfer.
func TestCollectorDigestFirstLyingDesignated(t *testing.T) {
	appState := []byte("honest")
	liar := testState(ids.Replica(0), 16, appState, nil)
	liar.Snap.AppState = []byte("forged")
	digestOnly := testState(ids.Replica(1), 16, appState, nil)
	digestOnly.Snap = digestOnly.Snap.StripPayload()

	col := NewCollector(1)
	col.Add(liar)
	col.Add(digestOnly)
	if _, ok := col.Result(); ok {
		t.Fatal("forged payload adopted")
	}
	if !col.NeedPayload() {
		t.Fatal("NeedPayload must flag the hash mismatch")
	}
	honest := testState(ids.Replica(2), 16, appState, nil)
	col.Add(honest)
	a, ok := col.Result()
	if !ok || string(a.Snap.AppState) != "honest" {
		t.Fatalf("honest re-ship not adopted: %+v, %v", a, ok)
	}
}

// TestCollectorKeepsPayloadAcrossReplacement: after the designation rotates,
// the previously designated peer answers digest-only; its newer response
// must not erase the payload it already shipped.
func TestCollectorKeepsPayloadAcrossReplacement(t *testing.T) {
	appState := []byte("state-at-16")
	full := testState(ids.Replica(0), 16, appState, nil)
	again := testState(ids.Replica(0), 16, appState, nil)
	again.Snap = again.Snap.StripPayload()

	col := NewCollector(1)
	col.Add(full)
	col.Add(again)
	digestOnly := testState(ids.Replica(1), 16, appState, nil)
	digestOnly.Snap = digestOnly.Snap.StripPayload()
	col.Add(digestOnly)
	a, ok := col.Result()
	if !ok || string(a.Snap.AppState) != "state-at-16" {
		t.Fatalf("payload erased by digest-only replacement: %+v, %v", a, ok)
	}
}

// TestCollectorExpectAtOrBelow: a pinned transfer ignores higher snapshots
// even when f+1 agree on them (the fetcher needs the gap below its base
// checkpoint filled, not skipped).
func TestCollectorExpectAtOrBelow(t *testing.T) {
	appState := []byte("state")
	col := NewCollector(1)
	col.ExpectAtOrBelow(16)
	col.Add(testState(ids.Replica(0), 24, appState, nil))
	col.Add(testState(ids.Replica(1), 24, appState, nil))
	if _, ok := col.Result(); ok {
		t.Fatal("snapshot above the pin must not be adopted")
	}
	col.Add(testState(ids.Replica(2), 16, appState, nil))
	col.Add(testState(ids.Replica(3), 16, appState, nil))
	a, ok := col.Result()
	if !ok || a.Snap.Seq != 16 {
		t.Fatalf("pinned agreement failed: %+v, %v", a, ok)
	}
}
