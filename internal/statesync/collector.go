package statesync

import (
	"fmt"

	"abstractbft/internal/authn"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// Adopted is the outcome of a completed state transfer: the agreed snapshot
// (AppState verified against the agreed AppDigest), the agreed suffix digests
// beyond it, and the request bodies matching those digests.
type Adopted struct {
	// Snap is the accepted snapshot; IsZero when the cluster has no stable
	// checkpoint yet (catch-up is suffix-only from the genesis state).
	Snap Snapshot
	// Suffix holds the f+1-agreed digests for positions Snap.Seq,
	// Snap.Seq+1, ...; it stops at the first position without agreement.
	Suffix history.DigestHistory
	// Bodies maps suffix digests to their verified request bodies (a body is
	// included only when its digest appears in Suffix).
	Bodies map[authn.Digest]msg.Request
}

// End returns the absolute position after the last agreed suffix entry.
func (a *Adopted) End() uint64 { return a.Snap.Seq + uint64(len(a.Suffix)) }

// Collector aggregates STATE responses until f+1 replicas agree on a
// snapshot. One response per replica is kept (newer responses replace older
// ones), so a Byzantine peer cannot stuff the vote by repeating itself.
type Collector struct {
	f int
	// expectSeq, when non-zero, pins the accepted snapshot to positions at or
	// below it (the fetcher is filling a gap below a known boundary; a
	// higher snapshot, however well-agreed, would leave the gap open).
	expectSeq uint64
	responses map[ids.ProcessID]*State
	// needPayload records, per Result evaluation, that an f+1-agreed
	// snapshot exists whose payload no response supplied (or the supplied
	// bytes failed the hash check): the fetcher should re-ask with a
	// different designated payload shipper.
	needPayload bool
}

// NeedPayload reports whether the last Result call found an f+1-agreed
// snapshot that could not be adopted only because its payload is missing or
// failed verification. The fetcher reacts by rotating the designated
// responder of the digest-first handshake.
func (c *Collector) NeedPayload() bool { return c.needPayload }

// NewCollector returns a collector that accepts a snapshot vouched for by
// f+1 distinct replicas.
func NewCollector(f int) *Collector {
	return &Collector{f: f, responses: make(map[ids.ProcessID]*State)}
}

// ExpectAtOrBelow pins acceptance to snapshots covering at most seq.
func (c *Collector) ExpectAtOrBelow(seq uint64) { c.expectSeq = seq }

// Add records one replica's STATE response. Responses from clients are
// rejected; a replica's newer response replaces its older one — except that
// a digest-only response never erases an already-received payload for the
// same snapshot identity (the digest-first handshake rotates the designated
// payload shipper, so a peer legitimately answers digest-only after having
// shipped the payload).
func (c *Collector) Add(resp *State) error {
	if resp == nil || !resp.From.IsReplica() {
		return fmt.Errorf("statesync: response from non-replica")
	}
	if uint64(len(resp.SuffixDigests)) > maxSuffix {
		return fmt.Errorf("statesync: suffix of %d digests exceeds bound", len(resp.SuffixDigests))
	}
	if old, ok := c.responses[resp.From]; ok &&
		old.Snap.Seq == resp.Snap.Seq &&
		old.Snap.HistDigest == resp.Snap.HistDigest &&
		old.Snap.AppDigest == resp.Snap.AppDigest &&
		old.Snap.HasPayload() && !resp.Snap.HasPayload() {
		merged := *resp
		merged.Snap.AppState = old.Snap.AppState
		merged.Snap.Windows = old.Snap.Windows
		merged.Snap.Stripped = false
		resp = &merged
	}
	c.responses[resp.From] = resp
	return nil
}

// maxSuffix bounds the per-response suffix so a Byzantine peer cannot force
// unbounded allocation; honest suffixes are bounded by the uncheckpointed
// backlog, far below this.
const maxSuffix = 1 << 20

// Responses returns the number of distinct replicas heard from.
func (c *Collector) Responses() int { return len(c.responses) }

// snapKey is the identity a snapshot group agrees on.
type snapKey struct {
	seq  uint64
	hist authn.Digest
	app  authn.Digest
}

// Result returns the adopted state once f+1 distinct replicas agree on a
// snapshot identity and at least one of them supplied bytes matching the
// agreed AppDigest. It prefers the highest agreed snapshot (within the
// ExpectAtOrBelow pin, when set). The suffix beyond the snapshot is extracted
// position by position, each requiring f+1 explicit digest votes so at least
// one correct replica vouches for every adopted entry.
func (c *Collector) Result() (*Adopted, bool) {
	groups := make(map[snapKey][]*State)
	for _, r := range c.responses {
		if c.expectSeq > 0 && r.Snap.Seq > c.expectSeq {
			continue
		}
		k := snapKey{seq: r.Snap.Seq, hist: r.Snap.HistDigest, app: r.Snap.AppDigest}
		groups[k] = append(groups[k], r)
	}
	var best *Snapshot
	found := false
	c.needPayload = false
	for k, members := range groups {
		if len(members) < c.f+1 {
			continue
		}
		// The group agreed on the digests; trust the payload (bytes and
		// windows) only from a member whose serialization actually hashes to
		// the agreed AppDigest (a lying member of an honest group sends a
		// forged payload; digest-only members vouch for the identity but
		// carry nothing to adopt).
		supplied := false
		for _, m := range members {
			if k.seq == 0 || (m.Snap.HasPayload() && m.Snap.PayloadDigest() == k.app) {
				supplied = true
				if !found || k.seq > best.Seq {
					sn := m.Snap
					best = &sn
					found = true
				}
				break
			}
		}
		if !supplied && (!found || k.seq > best.Seq) {
			// f+1 replicas vouch for a snapshot nobody shipped (yet): the
			// fetcher should designate another member of the group.
			c.needPayload = true
		}
	}
	if !found {
		return nil, false
	}

	adopted := &Adopted{Snap: *best, Bodies: make(map[authn.Digest]msg.Request)}
	// Extract the agreed suffix: position pos is adopted only when f+1
	// responses vouch for one digest explicitly. Unlike abort-history
	// extraction, snapshot coverage (pos < resp.Snap.Seq) does NOT count as
	// implicit agreement here: an implicit vote would combine with a single
	// Byzantine explicit vote to push a forged digest (and body) past the
	// threshold. The f+1 members of the winning snapshot group all carry
	// explicit suffixes from the adopted boundary, so honest extraction
	// still reaches the live backlog.
	for pos := best.Seq; ; pos++ {
		votes := make(map[authn.Digest]int)
		for _, r := range c.responses {
			if pos >= r.Snap.Seq && pos-r.Snap.Seq < uint64(len(r.SuffixDigests)) {
				votes[r.SuffixDigests[pos-r.Snap.Seq]]++
			}
		}
		var winner authn.Digest
		bestVotes := 0
		ok := false
		for dg, n := range votes {
			if n >= c.f+1 && n > bestVotes {
				winner = dg
				bestVotes = n
				ok = true
			}
		}
		if !ok {
			break
		}
		adopted.Suffix = append(adopted.Suffix, winner)
	}

	// Bodies self-verify: keep those whose digest appears in the agreed
	// suffix.
	want := make(map[authn.Digest]bool, len(adopted.Suffix))
	for _, d := range adopted.Suffix {
		want[d] = true
	}
	for _, r := range c.responses {
		for _, req := range r.SuffixRequests {
			if d := req.Digest(); want[d] {
				adopted.Bodies[d] = req.Clone()
			}
		}
	}
	return adopted, true
}
