// Package statesync implements the checkpoint state-transfer and recovery
// plane: serialized application snapshots taken at checkpoint boundaries, the
// FETCH-STATE/STATE transfer protocol a lagging or freshly restarted replica
// uses to catch up from its peers, and the f+1 digest-agreement rule under
// which transferred state is accepted.
//
// The paper's lightweight checkpoint subprotocol (§4.2.4) agrees on stable
// checkpoint digests but never materializes the state behind them: histories
// grow without bound and a replica that missed the requests below an adopted
// base checkpoint can never fill the gap. This package closes that loop:
//
//   - Snapshot captures the serialized application state at a checkpoint
//     boundary, keyed by the position it covers and the digest chain of the
//     request history up to it.
//   - Store retains the most recent snapshots on every replica; the host
//     garbage-collects logged requests and digest prefixes below the last
//     stable checkpoint once a snapshot covers them, bounding memory for
//     long runs.
//   - FetchState/State are the transfer messages (FETCH-STATE and STATE);
//     they work over any transport.Endpoint and are gob-registered for the
//     TCP transport.
//   - Collector aggregates STATE responses and accepts a snapshot only when
//     f+1 replicas agree on (Seq, HistDigest, AppDigest) — at least one
//     correct replica then vouches for the state — and the serialized bytes
//     actually hash to the agreed AppDigest, so a lying peer inside an
//     honest group cannot substitute a forged state.
package statesync

import (
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// Snapshot is the serialized replica state at one checkpoint boundary.
type Snapshot struct {
	// Seq is the absolute number of requests the snapshot covers: the
	// application state is the result of executing the first Seq requests of
	// the (merged) history.
	Seq uint64
	// HistDigest is the digest chain fold over the request digests of the
	// covered prefix — the value the lightweight checkpoint subprotocol
	// agrees on at this boundary.
	HistDigest authn.Digest
	// AppDigest is the digest of AppState (authn.Hash over the serialized
	// bytes); transfer acceptance agrees on it before trusting AppState.
	AppDigest authn.Digest
	// AppState is the serialized application state
	// (app.Application.Snapshot).
	AppState []byte
}

// IsZero reports whether the snapshot is the genesis snapshot (nothing
// executed, no state to restore).
func (s Snapshot) IsZero() bool { return s.Seq == 0 }

// FetchState is the FETCH-STATE message: a lagging or restarted replica asks
// a peer for its snapshot and the history suffix beyond it.
type FetchState struct {
	// Instance selects the Abstract instance whose history the suffix should
	// come from; 0 asks for the responder's active instance.
	Instance core.InstanceID
	// From is the fetching replica.
	From ids.ProcessID
	// Seq, when non-zero, asks for the responder's snapshot at the highest
	// checkpoint boundary at or below Seq (a replica filling positions below
	// an adopted base checkpoint, or aligning with a restored merge
	// boundary); 0 asks for the snapshot at the responder's last stable
	// checkpoint.
	Seq uint64
}

// State is the STATE message answering a FetchState: the responder's
// snapshot plus the history suffix (digests and the request bodies it knows)
// from the snapshot position to the end of its applied history.
type State struct {
	// Instance is the instance the suffix belongs to.
	Instance core.InstanceID
	// From is the responding replica.
	From ids.ProcessID
	// Snap is the responder's snapshot; the zero snapshot (Seq 0) means the
	// responder has no stable checkpoint yet and the suffix starts at the
	// beginning of the history.
	Snap Snapshot
	// SuffixDigests holds the digests of the requests applied after
	// Snap.Seq, in history order: the request at absolute position
	// Snap.Seq+i has digest SuffixDigests[i].
	SuffixDigests history.DigestHistory
	// SuffixRequests carries the request bodies the responder knows for the
	// suffix positions; the fetcher matches them to the agreed digests, so
	// order and completeness are not trusted.
	SuffixRequests []msg.Request
}

func init() {
	transport.RegisterWireType(&FetchState{})
	transport.RegisterWireType(&State{})
}
