// Package statesync implements the checkpoint state-transfer and recovery
// plane: serialized application snapshots taken at checkpoint boundaries, the
// FETCH-STATE/STATE transfer protocol a lagging or freshly restarted replica
// uses to catch up from its peers, and the f+1 digest-agreement rule under
// which transferred state is accepted.
//
// The paper's lightweight checkpoint subprotocol (§4.2.4) agrees on stable
// checkpoint digests but never materializes the state behind them: histories
// grow without bound and a replica that missed the requests below an adopted
// base checkpoint can never fill the gap. This package closes that loop:
//
//   - Snapshot captures the serialized application state at a checkpoint
//     boundary, keyed by the position it covers and the digest chain of the
//     request history up to it.
//   - Store retains the most recent snapshots on every replica; the host
//     garbage-collects logged requests and digest prefixes below the last
//     stable checkpoint once a snapshot covers them, bounding memory for
//     long runs.
//   - FetchState/State are the transfer messages (FETCH-STATE and STATE);
//     they work over any transport.Endpoint and are gob-registered for the
//     TCP transport.
//   - Collector aggregates STATE responses and accepts a snapshot only when
//     f+1 replicas agree on (Seq, HistDigest, AppDigest) — at least one
//     correct replica then vouches for the state — and the serialized bytes
//     actually hash to the agreed AppDigest, so a lying peer inside an
//     honest group cannot substitute a forged state.
package statesync

import (
	"encoding/binary"
	"sort"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// ClientWindow is one client's timestamp-window high-water mark at a
// checkpoint boundary: the highest request timestamp of the client in the
// covered prefix, plus the bitmask of lower window timestamps that also
// appear (bit d set means High-d was applied). Snapshots carry these so a
// restarted replica rejects retransmissions of requests from below the
// adopted boundary — without them, a client retransmitting such a request
// would get it re-executed, diverging the restored history.
type ClientWindow struct {
	Client ids.ProcessID
	High   uint64
	Mask   uint64
}

// ClientRing is one client's reply-cache contents at a checkpoint boundary:
// the (timestamp, reply) pairs of the client's last timestamp-window-width
// executed requests in the covered prefix. Snapshots carry these so a
// restarted replica serves retransmissions of pre-snapshot requests from
// cache like its live peers do — without them, the one replica with an empty
// ring starves the all-replica commit rule and pushes the retransmitting
// client into the panicking machinery (and a re-execution on the next
// instance). Ring contents are a deterministic function of the applied
// request sequence, so replicas that executed the same prefix agree on them,
// and they are covered by the snapshot's AppDigest.
type ClientRing struct {
	Client ids.ProcessID
	// Timestamps and Replies are parallel, sorted by timestamp.
	Timestamps []uint64
	Replies    [][]byte
}

// EncodeRings serializes reply rings canonically (sorted by client, entries
// sorted by timestamp, fixed-width length prefixes) so equal ring sets fold
// into equal snapshot digests across replicas.
func EncodeRings(rs []ClientRing) []byte {
	sorted := append([]ClientRing(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Client < sorted[j].Client })
	size := 4
	for _, r := range sorted {
		size += 8 + 12*len(r.Timestamps)
		for _, reply := range r.Replies {
			size += len(reply)
		}
	}
	buf := make([]byte, 0, size)
	var n [8]byte
	binary.BigEndian.PutUint32(n[:4], uint32(len(sorted)))
	buf = append(buf, n[:4]...)
	for _, r := range sorted {
		binary.BigEndian.PutUint32(n[:4], uint32(r.Client))
		buf = append(buf, n[:4]...)
		binary.BigEndian.PutUint32(n[:4], uint32(len(r.Timestamps)))
		buf = append(buf, n[:4]...)
		for i, ts := range r.Timestamps {
			binary.BigEndian.PutUint64(n[:], ts)
			buf = append(buf, n[:]...)
			var reply []byte
			if i < len(r.Replies) {
				reply = r.Replies[i]
			}
			binary.BigEndian.PutUint32(n[:4], uint32(len(reply)))
			buf = append(buf, n[:4]...)
			buf = append(buf, reply...)
		}
	}
	return buf
}

// EncodeWindows serializes windows canonically (sorted by client, fixed-width
// big-endian fields) so equal window sets serialize identically across
// replicas and can be folded into the snapshot's agreed digest.
func EncodeWindows(ws []ClientWindow) []byte {
	sorted := append([]ClientWindow(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Client < sorted[j].Client })
	buf := make([]byte, 4, 4+20*len(sorted))
	binary.BigEndian.PutUint32(buf, uint32(len(sorted)))
	var rec [20]byte
	for _, w := range sorted {
		binary.BigEndian.PutUint32(rec[:4], uint32(w.Client))
		binary.BigEndian.PutUint64(rec[4:12], w.High)
		binary.BigEndian.PutUint64(rec[12:], w.Mask)
		buf = append(buf, rec[:]...)
	}
	return buf
}

// Snapshot is the serialized replica state at one checkpoint boundary.
type Snapshot struct {
	// Seq is the absolute number of requests the snapshot covers: the
	// application state is the result of executing the first Seq requests of
	// the (merged) history.
	Seq uint64
	// HistDigest is the digest chain fold over the request digests of the
	// covered prefix — the value the lightweight checkpoint subprotocol
	// agrees on at this boundary.
	HistDigest authn.Digest
	// AppDigest is the digest of the snapshot payload (PayloadDigest over
	// AppState and Windows); transfer acceptance agrees on it before
	// trusting either.
	AppDigest authn.Digest
	// AppState is the serialized application state
	// (app.Application.Snapshot).
	AppState []byte
	// Windows are the per-client timestamp-window high-water marks of the
	// covered prefix. They are a deterministic function of the applied
	// request sequence, so replicas that executed the same prefix agree on
	// them, and they are covered by AppDigest, so a Byzantine responder
	// cannot deny service to chosen clients by forging high marks.
	Windows []ClientWindow
	// Rings are the per-client reply-cache contents of the covered prefix
	// (deterministic and digest-covered like Windows); a restarted replica
	// restores them so retransmissions of pre-snapshot requests are served
	// from cache instead of starving the all-replica commit rule.
	Rings []ClientRing
	// Stripped marks a digest-only copy of the snapshot (the non-designated
	// responders of the digest-first handshake): the identity fields vouch
	// for the payload without carrying it. An explicit flag — rather than
	// len(AppState) — because an application may legitimately serialize to
	// zero bytes.
	Stripped bool
}

// NewSnapshot assembles a snapshot, computing the payload digest over the
// serialized application state and the canonical window and ring encodings.
func NewSnapshot(seq uint64, histDigest authn.Digest, appState []byte, windows []ClientWindow, rings []ClientRing) Snapshot {
	s := Snapshot{Seq: seq, HistDigest: histDigest, AppState: appState, Windows: windows, Rings: rings}
	s.AppDigest = s.PayloadDigest()
	return s
}

// PayloadDigest returns the digest of the snapshot's transferable payload:
// the serialized application bytes and the canonical window and ring
// encodings. It is the value f+1 replicas must agree on (as AppDigest)
// before the payload of any single responder is trusted.
func (s Snapshot) PayloadDigest() authn.Digest {
	return authn.HashAll(s.AppState, EncodeWindows(s.Windows), EncodeRings(s.Rings))
}

// IsZero reports whether the snapshot is the genesis snapshot (nothing
// executed, no state to restore).
func (s Snapshot) IsZero() bool { return s.Seq == 0 }

// HasPayload reports whether the snapshot carries its transferable payload
// (digest-only responses of the digest-first handshake do not).
func (s Snapshot) HasPayload() bool { return !s.Stripped }

// StripPayload returns the snapshot's identity without the payload: the
// digest-first handshake has every non-designated responder vouch with
// (Seq, HistDigest, AppDigest) alone, so a FETCH-STATE costs the cluster one
// payload transfer instead of 3f.
func (s Snapshot) StripPayload() Snapshot {
	s.AppState = nil
	s.Windows = nil
	s.Rings = nil
	s.Stripped = true
	return s
}

// FetchState is the FETCH-STATE message: a lagging or restarted replica asks
// a peer for its snapshot and the history suffix beyond it.
type FetchState struct {
	// Instance selects the Abstract instance whose history the suffix should
	// come from; 0 asks for the responder's active instance.
	Instance core.InstanceID
	// From is the fetching replica.
	From ids.ProcessID
	// Seq, when non-zero, asks for the responder's snapshot at the highest
	// checkpoint boundary at or below Seq (a replica filling positions below
	// an adopted base checkpoint, or aligning with a restored merge
	// boundary); 0 asks for the snapshot at the responder's last stable
	// checkpoint.
	Seq uint64
	// BodiesFrom designates the one replica asked to ship the snapshot
	// payload (serialized application state and timestamp windows); every
	// other responder answers with digests only, so the transfer costs
	// O(state size) instead of O(3f × state size). The fetcher rotates the
	// designation on retry — and immediately on a payload hash mismatch —
	// so a crashed or lying designated peer only delays the transfer.
	BodiesFrom ids.ProcessID
}

// State is the STATE message answering a FetchState: the responder's
// snapshot plus the history suffix (digests and the request bodies it knows)
// from the snapshot position to the end of its applied history.
type State struct {
	// Instance is the instance the suffix belongs to.
	Instance core.InstanceID
	// From is the responding replica.
	From ids.ProcessID
	// BodiesFrom echoes the designation of the FETCH-STATE being answered,
	// so the fetcher can tell a designated payload answer from a stale
	// digest-only response of a freshly designated peer (designations rotate
	// while responses are in flight).
	BodiesFrom ids.ProcessID
	// Snap is the responder's snapshot; the zero snapshot (Seq 0) means the
	// responder has no stable checkpoint yet and the suffix starts at the
	// beginning of the history.
	Snap Snapshot
	// SuffixDigests holds the digests of the requests applied after
	// Snap.Seq, in history order: the request at absolute position
	// Snap.Seq+i has digest SuffixDigests[i].
	SuffixDigests history.DigestHistory
	// SuffixRequests carries the request bodies the responder knows for the
	// suffix positions; the fetcher matches them to the agreed digests, so
	// order and completeness are not trusted.
	SuffixRequests []msg.Request
}

func init() {
	transport.RegisterWireType(&FetchState{})
	transport.RegisterWireType(&State{})
}
