// Package obs is the runtime observability plane of the replica stack: a
// low-overhead in-process metrics registry (atomic counters, gauges, and
// fixed-bucket histograms — no locks and no allocations on the record fast
// path), a Prometheus-text exposition writer, a JSON snapshot API for
// benchmark harnesses, and a sampled request-lifecycle tracer.
//
// Design rules, in order of importance:
//
//   - Recording must be free enough to leave on in production: Counter.Add,
//     Gauge.Set, and Histogram.Observe are single atomic operations (plus a
//     short bounds scan for histograms) with zero heap allocations, enforced
//     by TestRecordAllocBudget the same way the wirecodec pins its encode
//     path.
//   - Labels are baked into the series at registration time, never rendered
//     per record. A hot path that needs per-shard series registers one metric
//     per shard up front and indexes into them.
//   - Every metric type no-ops on a nil receiver, and a nil *Registry hands
//     out nil metrics, so instrumented code needs no "is observability on"
//     branches and the no-op configuration is the natural baseline for
//     overhead measurements.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil counter (no-op), so
// uninstrumented deployments pay one predictable branch.
//
//abstractbft:noalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
//
//abstractbft:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Safe on a nil gauge.
//
//abstractbft:noalloc
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease). Safe on a nil gauge.
//
//abstractbft:noalloc
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation counts per upper bound
// plus a running sum and count. Bounds are set at registration and never
// change, so Observe is a short scan plus three atomic updates.
type Histogram struct {
	bounds []float64       // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one value. Safe on a nil histogram.
//
//abstractbft:noalloc
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
//
//abstractbft:noalloc
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Default bucket bounds. Latency buckets cover 100µs to 10s; size buckets
// cover a TCP flush from a lone envelope to a saturated coalesce window;
// count buckets cover batch fills up to far beyond the default MaxBatch.
var (
	LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	SizeBuckets    = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	CountBuckets   = []float64{1, 2, 4, 8, 16, 32, 64, 128}
)

// metric kinds.
const (
	kindCounter = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series: a metric plus its baked-in labels.
type series struct {
	family string // metric name without labels
	labels string // rendered `k="v",k2="v2"` or ""
	kind   int
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

func (s *series) key() string {
	if s.labels == "" {
		return s.family
	}
	return s.family + "{" + s.labels + "}"
}

// Registry holds the registered series of one process (or one replica, for
// in-process multi-replica harnesses). Registration takes a lock; recording
// on the returned metrics does not. A nil *Registry returns nil metrics from
// every constructor, turning the entire instrumentation into no-ops.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	kinds  map[string]int // family -> kind, to reject type confusion
	bounds map[string][]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:  make(map[string]*series),
		kinds:  make(map[string]int),
		bounds: make(map[string][]float64),
	}
}

// renderLabels validates and renders label pairs ("k", "v", ...) in the given
// order. Registration-time work only.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	return b.String()
}

// register returns the existing series for (family, labels) or installs a new
// one; registering the same family under two kinds is a programming error.
func (r *Registry) register(family string, labels []string, kind int) *series {
	s := &series{family: family, labels: renderLabels(labels), kind: kind}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.kinds[family]; ok && have != kind {
		panic(fmt.Sprintf("obs: metric %q registered as two different types", family))
	}
	r.kinds[family] = kind
	if have, ok := r.byKey[s.key()]; ok {
		return have
	}
	r.byKey[s.key()] = s
	return s
}

// Counter returns (registering on first use) the counter series with the
// given name and label pairs. Nil registry returns a nil, no-op counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, labels, kindCounter)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns (registering on first use) the gauge series with the given
// name and label pairs. Nil registry returns a nil, no-op gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, labels, kindGauge)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape time
// (queue depths, map sizes): the hot path pays nothing, the scrape pays fn.
// Re-registering the same series replaces the function. No-op on nil.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, labels, kindGaugeFunc)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the histogram series with the
// given name, bucket bounds (nil selects LatencyBuckets), and label pairs.
// All series of one family share the first-registered bounds. Nil registry
// returns a nil, no-op histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, labels, kindHistogram)
	r.mu.Lock()
	if have, ok := r.bounds[name]; ok {
		bounds = have
	} else {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		r.bounds[name] = bounds
	}
	if s.hist == nil {
		s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	h := s.hist
	r.mu.Unlock()
	return h
}

// snapshotSeries returns a stable-ordered copy of the registered series.
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.byKey))
	for _, s := range r.byKey {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered series in the Prometheus text
// exposition format, grouped by family with # TYPE headers, families and
// series in lexical order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, s := range r.snapshotSeries() {
		if s.family != lastFamily {
			typ := "counter"
			switch s.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.family, typ)
			lastFamily = s.family
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", s.key(), s.ctr.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", s.key(), s.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", s.key(), formatFloat(s.fn()))
		case kindHistogram:
			h := s.hist
			sep := ""
			if s.labels != "" {
				sep = s.labels + ","
			}
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", s.family, sep, formatFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", s.family, sep, cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.family, braced(s.labels), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.family, braced(s.labels), h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// BucketCount is one cumulative histogram bucket of a snapshot.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the JSON form of one histogram series.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry, keyed by
// full series id (name plus rendered labels). Benchmark harnesses embed it in
// their BENCH reports so external throughput rows carry the plane's internal
// counters, and the /metrics.json endpoint serves it to tooling.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered series. Nil registry returns the zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	for _, s := range r.snapshotSeries() {
		switch s.kind {
		case kindCounter:
			if snap.Counters == nil {
				snap.Counters = make(map[string]uint64)
			}
			snap.Counters[s.key()] = s.ctr.Value()
		case kindGauge:
			if snap.Gauges == nil {
				snap.Gauges = make(map[string]float64)
			}
			snap.Gauges[s.key()] = float64(s.gauge.Value())
		case kindGaugeFunc:
			if snap.Gauges == nil {
				snap.Gauges = make(map[string]float64)
			}
			snap.Gauges[s.key()] = s.fn()
		case kindHistogram:
			if snap.Histograms == nil {
				snap.Histograms = make(map[string]HistogramSnapshot)
			}
			h := s.hist
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				hs.Buckets = append(hs.Buckets, BucketCount{LE: bound, Count: cum})
			}
			snap.Histograms[s.key()] = hs
		}
	}
	return snap
}
