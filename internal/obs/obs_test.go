package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecordAllocBudget pins the record fast path at zero heap allocations,
// the same hard gate the wirecodec keeps on its encode path. If counters,
// gauges, histograms, or the tracer start allocating per record, the
// observability plane is no longer free to leave on and this test fails.
func TestRecordAllocBudget(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "shard", "0")
	g := r.Gauge("test_depth")
	h := r.Histogram("test_latency_seconds", nil)
	tr := NewTracer(r, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Observe(0.0042)
		h.ObserveDuration(3 * time.Millisecond)
		if tr.Sample() {
			tr.Observe(StageOrder, 250*time.Microsecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("record fast path allocated %v allocs/op, want 0", allocs)
	}

	// The nil (disabled) plane must also be allocation-free: it is the
	// baseline of the overhead benchmark.
	var nr *Registry
	nc := nr.Counter("x")
	nh := nr.Histogram("y", nil)
	var ntr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nh.Observe(1)
		if ntr.Sample() {
			ntr.Observe(StageReply, time.Millisecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("no-op path allocated %v allocs/op, want 0", allocs)
	}
}

// TestTraceUnsampledAllocBudget is the distributed-tracing allocation gate:
// the unsampled span path — the one every request crosses when the head
// sampler at the client did not pick it — must be allocation-free, on a live
// tracer with a span ring attached, on a sampling miss, and on the nil
// (tracing disabled) tracer. The sampled path may allocate (it is rate-bound
// by the head sampler), but the common path must stay free to leave on.
func TestTraceUnsampledAllocBudget(t *testing.T) {
	r := NewRegistry()
	ring := NewSpanRing("alloc-test", 64)
	tr := NewTracerRing(r, 1<<30, ring) // effectively never head-samples
	start := time.Now()
	var unsampled TraceContext
	allocs := testing.AllocsPerRun(1000, func() {
		if tc := tr.NewTrace(); tc.Sampled() {
			t.Fatal("sampler hit at rate 1<<30")
		}
		tr.Record(unsampled, StageExecute, 0, start, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("unsampled trace path allocated %v allocs/op, want 0", allocs)
	}

	var ntr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		if tc := ntr.NewTrace(); tc.Sampled() {
			t.Fatal("nil tracer sampled")
		}
		ntr.Record(unsampled, StageExecute, 0, start, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer trace path allocated %v allocs/op, want 0", allocs)
	}

	// The sampled path must land its span in the ring without growing it
	// (preallocated storage), and ring recording itself stays bounded.
	tr2 := NewTracerRing(r, 1, ring)
	tc := tr2.NewTrace()
	if !tc.Sampled() {
		t.Fatal("rate-1 tracer did not sample")
	}
	tr2.Record(tc, StageExecute, 1, start, time.Millisecond)
	spans := ring.Snapshot()
	if len(spans) == 0 {
		t.Fatal("sampled span not recorded in the ring")
	}
	got := spans[len(spans)-1]
	if got.TraceID != tc.TraceID || got.Stage != "execute" || got.Process != "alloc-test" || got.Shard != 1 {
		t.Fatalf("recorded span = %+v, want trace %d stage execute process alloc-test shard 1", got, tc.TraceID)
	}
}

// TestConcurrentHammer exercises registration and recording from many
// goroutines at once; run under -race it proves the hot path needs no locks.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_ops_total")
			h := r.Histogram("hammer_seconds", nil)
			g := r.Gauge("hammer_depth")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Set(int64(i))
				if i%100 == 0 {
					// Concurrent scrapes must not disturb recording.
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_ops_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestPrometheusExpositionGolden locks down the text format byte-for-byte.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("plane_requests_total", "shard", "0").Add(7)
	r.Counter("plane_requests_total", "shard", "1").Add(3)
	r.Gauge("plane_depth").Set(-2)
	r.GaugeFunc("plane_conns", func() float64 { return 4 })
	h := r.Histogram("plane_latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE plane_conns gauge
plane_conns 4
# TYPE plane_depth gauge
plane_depth -2
# TYPE plane_latency_seconds histogram
plane_latency_seconds_bucket{le="0.001"} 1
plane_latency_seconds_bucket{le="0.01"} 2
plane_latency_seconds_bucket{le="+Inf"} 3
plane_latency_seconds_sum 5.0055
plane_latency_seconds_count 3
# TYPE plane_requests_total counter
plane_requests_total{shard="0"} 7
plane_requests_total{shard="1"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestRegistryIdempotent: registering the same series twice returns the same
// metric, so several sub-hosts sharing a registry aggregate into one series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "k", "v")
	b := r.Counter("same_total", "k", "v")
	if a != b {
		t.Fatal("same series registered twice returned distinct counters")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("value = %d, want 2", a.Value())
	}
	h1 := r.Histogram("same_seconds", []float64{1, 2})
	h2 := r.Histogram("same_seconds", nil) // bounds fixed by first registration
	if h1 != h2 {
		t.Fatal("same histogram series returned distinct histograms")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total").Add(9)
	r.Gauge("snap_gauge").Set(5)
	r.Histogram("snap_seconds", []float64{0.5}).Observe(0.1)
	snap := r.Snapshot()
	if snap.Counters["snap_total"] != 9 {
		t.Fatalf("counter snapshot = %d", snap.Counters["snap_total"])
	}
	if snap.Gauges["snap_gauge"] != 5 {
		t.Fatalf("gauge snapshot = %v", snap.Gauges["snap_gauge"])
	}
	hs := snap.Histograms["snap_seconds"]
	if hs.Count != 1 || hs.Sum != 0.1 || len(hs.Buckets) != 1 || hs.Buckets[0].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestTracerSampling(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, 10)
	sampled := 0
	for i := 0; i < 1000; i++ {
		if tr.Sample() {
			sampled++
			tr.Observe(StageMerge, time.Millisecond)
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 1000 at rate 10, want 100", sampled)
	}
	if got := r.Histogram("trace_stage_seconds", nil, "stage", "merge").Count(); got != 100 {
		t.Fatalf("merge stage count = %d, want 100", got)
	}
	if tr := NewTracer(nil, 10); tr != nil {
		t.Fatal("tracer over nil registry should be nil")
	}
	if tr := NewTracer(r, 0); tr != nil {
		t.Fatal("tracer with rate 0 should be nil")
	}
}

// TestServeHTTP spins up the front door on an ephemeral port and scrapes
// both endpoints.
func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(11)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "served_total 11") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["served_total"] != 11 {
		t.Fatalf("/metrics.json counter = %d, want 11", snap.Counters["served_total"])
	}
}
