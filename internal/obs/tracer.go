package obs

import (
	"sync/atomic"
	"time"
)

// Request lifecycle stages, in pipeline order. A traced request is timed
// through: client Send covers the whole send→commit round trip (the root
// span), while on the replica side Assemble covers enqueue→batch-cut, Order
// covers batch-cut→logged, Execute covers logged→applied, Merge covers
// logged→merged into the cross-shard total order, and Reply marks the
// speculative RESP leaving the replica (a point event). StageSend sits at the
// end of the block so the pre-existing stage numbering (and every registered
// trace_stage_seconds series) is unchanged.
const (
	StageAssemble = iota
	StageOrder
	StageExecute
	StageMerge
	StageReply
	StageSend
	numStages
)

var stageNames = [numStages]string{"assemble", "order", "execute", "merge", "reply", "send"}

// StageName returns the exposition name of a lifecycle stage ("" when out of
// range).
func StageName(stage int) string {
	if stage < 0 || stage >= numStages {
		return ""
	}
	return stageNames[stage]
}

// Tracer is the per-process tracing front end. It makes the head-sampling
// decision (one in every N new traces, decided once at the client via
// NewTrace) and records per-stage durations for propagated trace contexts:
// into histograms registered as trace_stage_seconds{stage="..."} and — when
// the tracer carries a SpanRing — into the ring served at
// /debug/traces.json. The sampling decision is one atomic add; recording for
// an unsampled context is one integer compare — both allocation-free, so the
// tracer stays enabled under load.
//
// A nil *Tracer never samples and ignores observations, so instrumented code
// calls it unconditionally.
type Tracer struct {
	every  uint64
	n      atomic.Uint64
	stages [numStages]*Histogram
	spans  *SpanRing
}

// NewTracer builds a tracer that samples one in every `every` decisions,
// recording stage durations into r (histograms only — no span ring). Returns
// nil (a disabled tracer) if r is nil or every <= 0.
func NewTracer(r *Registry, every int) *Tracer {
	return NewTracerRing(r, every, nil)
}

// NewTracerRing builds a tracer that additionally records every span of a
// sampled trace into the given ring (nil ring = histograms only). Returns nil
// if r is nil or every <= 0.
func NewTracerRing(r *Registry, every int, spans *SpanRing) *Tracer {
	if r == nil || every <= 0 {
		return nil
	}
	t := &Tracer{every: uint64(every), spans: spans}
	for s := 0; s < numStages; s++ {
		t.stages[s] = r.Histogram("trace_stage_seconds", LatencyBuckets, "stage", stageNames[s])
	}
	return t
}

// Spans returns the tracer's span ring (nil without one).
func (t *Tracer) Spans() *SpanRing {
	if t == nil {
		return nil
	}
	return t.spans
}

// Sample reports whether the caller should trace the current request.
// Retained for process-local sampling decisions; wire-propagated tracing uses
// NewTrace instead, so the whole cluster follows the client's one decision.
//
//abstractbft:noalloc
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.n.Add(1)%t.every == 0
}

// NewTrace makes the head-sampling decision for one new request and, when it
// samples, allocates a fresh trace: the returned context has a nonzero
// TraceID and Parent 0 (the root). An unsampled decision returns the zero
// context at the cost of one atomic add — the 0 allocs/op hot path.
//
// The caller (the client) records its own root span by passing the returned
// context to Record, and stamps requests with {TraceID, Parent: TraceID} so
// downstream spans parent under the root.
//
//abstractbft:noalloc
func (t *Tracer) NewTrace() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	if t.n.Add(1)%t.every != 0 {
		return TraceContext{}
	}
	return TraceContext{TraceID: newID()}
}

// Observe records the duration of one lifecycle stage for a sampled request
// (histogram only; no span). Retained for process-local call sites.
//
//abstractbft:noalloc
func (t *Tracer) Observe(stage int, d time.Duration) {
	if t == nil || stage < 0 || stage >= numStages {
		return
	}
	t.stages[stage].ObserveDuration(d)
}

// Record records one lifecycle stage of a propagated trace context: the stage
// histogram (skipped for zero-duration point events, which would only pollute
// the latency distribution) plus a span in the ring when the tracer has one.
// A context with Parent 0 records the trace's root span (span ID = trace ID);
// any other context records a child of ctx.Parent. Unsampled contexts return
// after one compare with zero allocations.
//
//abstractbft:noalloc
func (t *Tracer) Record(ctx TraceContext, stage, shard int, start time.Time, d time.Duration) {
	if t == nil || !ctx.Sampled() || stage < 0 || stage >= numStages {
		return
	}
	if d > 0 {
		t.stages[stage].ObserveDuration(d)
	}
	if t.spans == nil {
		return
	}
	sp := Span{
		TraceID:    ctx.TraceID,
		Shard:      shard,
		Stage:      stageNames[stage],
		Start:      start.UnixNano(),
		DurationNs: int64(d),
	}
	if ctx.Parent == 0 {
		sp.SpanID = ctx.TraceID
	} else {
		sp.SpanID = newID()
		sp.Parent = ctx.Parent
	}
	t.spans.add(sp)
}
