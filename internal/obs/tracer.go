package obs

import (
	"sync/atomic"
	"time"
)

// Request lifecycle stages, in pipeline order. A traced request is timed
// through: client send → (Reply covers the whole round trip), while on the
// replica side Assemble covers enqueue→batch-cut, Order covers
// batch-cut→logged, Execute covers logged→applied, and Merge covers
// logged→merged into the cross-shard total order.
const (
	StageAssemble = iota
	StageOrder
	StageExecute
	StageMerge
	StageReply
	numStages
)

var stageNames = [numStages]string{"assemble", "order", "execute", "merge", "reply"}

// Tracer samples request lifecycles at a fixed rate (one in every N
// decisions) and records per-stage durations into histograms registered as
// trace_stage_seconds{stage="..."}. The sampling decision is one atomic add;
// recording a stage is one histogram observe — both allocation-free, so the
// tracer can stay enabled under load.
//
// A nil *Tracer never samples and ignores observations, so instrumented code
// calls it unconditionally.
type Tracer struct {
	every  uint64
	n      atomic.Uint64
	stages [numStages]*Histogram
}

// NewTracer builds a tracer that samples one in every `every` decisions,
// recording stage durations into r. Returns nil (a disabled tracer) if r is
// nil or every <= 0.
func NewTracer(r *Registry, every int) *Tracer {
	if r == nil || every <= 0 {
		return nil
	}
	t := &Tracer{every: uint64(every)}
	for s := 0; s < numStages; s++ {
		t.stages[s] = r.Histogram("trace_stage_seconds", LatencyBuckets, "stage", stageNames[s])
	}
	return t
}

// Sample reports whether the caller should trace the current request.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.n.Add(1)%t.every == 0
}

// Observe records the duration of one lifecycle stage for a sampled request.
func (t *Tracer) Observe(stage int, d time.Duration) {
	if t == nil || stage < 0 || stage >= numStages {
		return
	}
	t.stages[stage].ObserveDuration(d)
}
