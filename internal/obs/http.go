package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the observability front door of one process: a plain net/http
// server exposing the registry as Prometheus text at /metrics and as a JSON
// snapshot at /metrics.json, plus — when configured — the distributed-tracing
// span ring at /debug/traces.json, the protocol flight recorder at
// /debug/flight.json, and the opt-in net/http/pprof handlers under
// /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServeConfig selects what the observability server exposes.
type ServeConfig struct {
	// Registry backs /metrics and /metrics.json (nil serves empty documents).
	Registry *Registry
	// Spans backs /debug/traces.json (nil serves an empty dump).
	Spans *SpanRing
	// Flight backs /debug/flight.json (nil serves an empty dump).
	Flight *Flight
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/. Off by
	// default: profiling endpoints can stall the process (CPU profiles block
	// for their duration) and belong behind an explicit operator opt-in.
	Pprof bool
}

// shutdownGrace is how long Shutdown waits for in-flight scrapes to finish
// before falling back to a hard Close. Scrapes are small; a scraper that
// cannot finish within this window is stuck, not slow.
const shutdownGrace = 2 * time.Second

// Serve starts the metrics-only front door on addr: the pre-tracing
// signature, kept for call sites that only have a registry.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeObs(addr, ServeConfig{Registry: r})
}

// ServeObs starts listening on addr (host:port; port 0 picks an ephemeral
// port) and serves the configured observability documents until Shutdown or
// Close. The listener is bound synchronously so a returned *Server is
// immediately scrapeable via Addr.
func ServeObs(addr string, cfg ServeConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	writeJSON := func(w http.ResponseWriter, doc any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, cfg.Registry.Snapshot())
	})
	mux.HandleFunc("/debug/traces.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, cfg.Spans.Dump())
	})
	mux.HandleFunc("/debug/flight.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, cfg.Flight.Dump())
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully: the listener closes immediately, but
// in-flight scrapes get shutdownGrace to finish their response instead of
// being cut mid-write. A scrape still running at the deadline is dropped by
// the hard Close fallback.
func (s *Server) Shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Close stops the server immediately (in-flight scrapes are dropped) and
// releases the port. Prefer Shutdown outside of tests and fatal paths.
func (s *Server) Close() error { return s.srv.Close() }
