package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Server is the /metrics front door of one process: a plain net/http server
// exposing the registry as Prometheus text at /metrics and as a JSON
// snapshot at /metrics.json.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts listening on addr (host:port; port 0 picks an ephemeral port)
// and serves the registry until Close. The listener is bound synchronously so
// a returned *Server is immediately scrapeable via Addr.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
