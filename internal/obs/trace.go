package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext is the compact distributed-tracing header propagated on the
// wire with a request: the trace identifier (zero = unsampled, so the
// untraced hot path is one integer compare) and the span the receiver should
// parent its own spans under. The sampling decision is made exactly once, at
// the client (head sampling via Tracer.NewTrace); every process downstream
// records spans if and only if the context it received is sampled, so one
// request's spans share one trace ID across process boundaries.
type TraceContext struct {
	TraceID uint64
	Parent  uint64
}

// Sampled reports whether the context belongs to a sampled trace. The zero
// TraceContext is unsampled, so unstamped requests carry "no trace" at no
// cost.
func (c TraceContext) Sampled() bool { return c.TraceID != 0 }

// idCounter generates process-unique trace and span IDs: a monotone counter
// seeded from crypto/rand, so two processes (or two incarnations of one
// process) do not collide on low IDs. IDs are never zero — zero means
// unsampled.
var idCounter atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idCounter.Store(binary.BigEndian.Uint64(seed[:]))
	} else {
		idCounter.Store(0x9e3779b97f4a7c15)
	}
}

// newID returns a fresh nonzero trace/span identifier.
func newID() uint64 {
	for {
		if id := idCounter.Add(1); id != 0 {
			return id
		}
	}
}

// Span is one recorded stage of a sampled request on one process: the trace
// it belongs to, its own span ID and parent, the process and shard that
// recorded it, the lifecycle stage name, and the wall-clock window. A span
// with zero duration is a point event (e.g. the reply send).
type Span struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent,omitempty"`
	Process string `json:"process"`
	Shard   int    `json:"shard"`
	Stage   string `json:"stage"`
	// Start is the span's start wall time in Unix nanoseconds; DurationNs its
	// length. Clocks are per-process, so cross-process ordering within a
	// stitched trace is approximate — good enough to attribute time, not to
	// prove causality.
	Start      int64 `json:"start_unix_nano"`
	DurationNs int64 `json:"duration_ns"`
}

// SpanRing is a bounded, process-tagged ring buffer of recorded spans: the
// per-process storage behind /debug/traces.json. Recording takes one short
// mutex hold and writes into preallocated storage; the ring keeps the newest
// Cap spans. A nil *SpanRing drops spans, so span-capable code paths need no
// "is tracing on" branches.
type SpanRing struct {
	mu      sync.Mutex
	process string
	buf     []Span
	n       uint64 // total spans ever added
}

// DefaultSpanRingSize is the default per-process span capacity: enough to
// hold the spans of hundreds of sampled requests without unbounded growth.
const DefaultSpanRingSize = 4096

// NewSpanRing builds a span ring tagged with the recording process's name
// (e.g. "replica-2", "client"); capacity <= 0 selects DefaultSpanRingSize.
func NewSpanRing(process string, capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanRingSize
	}
	return &SpanRing{process: process, buf: make([]Span, 0, capacity)}
}

// Process returns the ring's process tag ("" on a nil ring).
func (r *SpanRing) Process() string {
	if r == nil {
		return ""
	}
	return r.process
}

// add records one span, evicting the oldest when full. Safe on a nil ring.
//
//abstractbft:noalloc
func (r *SpanRing) add(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sp.Process = r.process
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, sp)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = sp
	}
	r.n++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first. Safe on a nil ring.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		start := r.n % uint64(cap(r.buf))
		out = append(out, r.buf[start:]...)
		out = append(out, r.buf[:start]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// TraceDump is the JSON document served at /debug/traces.json: the process
// tag plus its retained spans.
type TraceDump struct {
	Process string `json:"process"`
	Total   uint64 `json:"total_spans"`
	Spans   []Span `json:"spans"`
}

// Dump captures the ring as a serializable document. Safe on a nil ring.
func (r *SpanRing) Dump() TraceDump {
	if r == nil {
		return TraceDump{}
	}
	spans := r.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	return TraceDump{Process: r.process, Total: r.n, Spans: spans}
}

// nowUnixNano is the wall clock used to stamp spans and flight events.
func nowUnixNano() int64 { return time.Now().UnixNano() }

// FlightEvent is one entry of the protocol flight recorder: a
// sequence-stamped structured event (instance switch, abort, checkpoint, GC,
// statesync phase, recovery re-agreement, decode-error drop). Seq orders
// events within one process even when wall clocks jitter.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_unix_nano"`
	Kind   string `json:"kind"`
	Shard  int    `json:"shard"`
	Detail string `json:"detail,omitempty"`
}

// Flight is the protocol flight recorder: a fixed-size ring of structured
// events, the black box read after a Byzantine scenario. Events are recorded
// off the hot path (instance switches, aborts, checkpoints, state transfers —
// all rare), so recording may format strings; a nil *Flight drops events and
// skips the formatting entirely.
type Flight struct {
	mu      sync.Mutex
	process string
	buf     []FlightEvent
	seq     uint64
}

// DefaultFlightSize is the default flight-recorder capacity.
const DefaultFlightSize = 1024

// NewFlight builds a flight recorder tagged with the process name; capacity
// <= 0 selects DefaultFlightSize.
func NewFlight(process string, capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightSize
	}
	return &Flight{process: process, buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event with a formatted detail string, evicting the
// oldest when full. Safe on a nil recorder (the formatting is skipped too).
func (f *Flight) Record(kind string, shard int, format string, args ...any) {
	if f == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	ev := FlightEvent{TimeNs: nowUnixNano(), Kind: kind, Shard: shard, Detail: detail}
	f.mu.Lock()
	ev.Seq = f.seq
	f.seq++
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[ev.Seq%uint64(cap(f.buf))] = ev
	}
	f.mu.Unlock()
}

// Snapshot returns the retained events in sequence order. Safe on nil.
func (f *Flight) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) == cap(f.buf) {
		start := f.seq % uint64(cap(f.buf))
		out = append(out, f.buf[start:]...)
		out = append(out, f.buf[:start]...)
	} else {
		out = append(out, f.buf...)
	}
	return out
}

// FlightDump is the JSON document served at /debug/flight.json.
type FlightDump struct {
	Process string        `json:"process"`
	Total   uint64        `json:"total_events"`
	Events  []FlightEvent `json:"events"`
}

// Dump captures the recorder as a serializable document. Safe on nil.
func (f *Flight) Dump() FlightDump {
	if f == nil {
		return FlightDump{}
	}
	events := f.Snapshot()
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightDump{Process: f.process, Total: f.seq, Events: events}
}
