// Package app defines the replicated application layer: the state machine
// that every replica executes and whose replies are returned to clients.
//
// Three applications are provided:
//
//   - Null: the microbenchmark application used throughout the paper's
//     evaluation (x/y benchmarks); it ignores the request payload and returns
//     a reply of a configured size.
//   - KVStore: a deterministic key-value store used by the examples and the
//     linearizability tests.
//   - Counter: a minimal counter application used by unit tests.
package app

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"abstractbft/internal/authn"
)

// Application is a deterministic state machine. Execute applies a command
// and returns the application-level reply; Snapshot serializes the full
// application state (used by the checkpoint state-transfer plane,
// internal/statesync); Restore replaces the state from a Snapshot-produced
// serialization; Clone returns an independent copy with the same state (used
// when initializing a new Abstract instance replica from the state of the
// previous one).
//
// Snapshot must be deterministic: two applications that executed the same
// command sequence serialize to identical bytes, so StateDigest values agree
// across replicas.
type Application interface {
	Execute(command []byte) []byte
	Snapshot() []byte
	Restore(data []byte) error
	Clone() Application
}

// StateDigest returns the collision-resistant digest of an application's
// serialized state: the value replicas agree on (f+1 matching digests) before
// a transferred snapshot is accepted.
func StateDigest(a Application) authn.Digest { return authn.Hash(a.Snapshot()) }

// Null is the microbenchmark application: every command returns a fixed-size
// zero-filled reply.
type Null struct {
	// ReplySize is the size in bytes of every reply (the y of an x/y
	// benchmark).
	ReplySize int
	executed  uint64
}

// NewNull returns a Null application producing replies of replySize bytes.
func NewNull(replySize int) *Null { return &Null{ReplySize: replySize} }

// Execute implements Application.
func (n *Null) Execute(command []byte) []byte {
	n.executed++
	return make([]byte, n.ReplySize)
}

// Snapshot implements Application; the state is just the execution count and
// the reply size.
func (n *Null) Snapshot() []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[:8], n.executed)
	binary.BigEndian.PutUint64(buf[8:], uint64(n.ReplySize))
	return buf
}

// Restore implements Application.
func (n *Null) Restore(data []byte) error {
	if len(data) != 16 {
		return fmt.Errorf("app: null snapshot must be 16 bytes, have %d", len(data))
	}
	n.executed = binary.BigEndian.Uint64(data[:8])
	n.ReplySize = int(binary.BigEndian.Uint64(data[8:]))
	return nil
}

// Clone implements Application.
func (n *Null) Clone() Application { return &Null{ReplySize: n.ReplySize, executed: n.executed} }

// Executed returns the number of commands executed.
func (n *Null) Executed() uint64 { return n.executed }

// KVStore is a deterministic key-value store. Commands are encoded with
// EncodeKVPut / EncodeKVGet / EncodeKVDelete.
type KVStore struct {
	data map[string]string
}

// NewKVStore returns an empty key-value store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string]string)} }

// KV command opcodes.
const (
	kvPut byte = iota + 1
	kvGet
	kvDelete
)

// EncodeKVPut encodes a put command.
func EncodeKVPut(key, value string) []byte {
	return encodeKV(kvPut, key, value)
}

// EncodeKVGet encodes a get command.
func EncodeKVGet(key string) []byte { return encodeKV(kvGet, key, "") }

// EncodeKVDelete encodes a delete command.
func EncodeKVDelete(key string) []byte { return encodeKV(kvDelete, key, "") }

func encodeKV(op byte, key, value string) []byte {
	var buf bytes.Buffer
	buf.WriteByte(op)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(key)))
	buf.Write(l[:])
	buf.WriteString(key)
	binary.BigEndian.PutUint32(l[:], uint32(len(value)))
	buf.Write(l[:])
	buf.WriteString(value)
	return buf.Bytes()
}

func decodeKV(cmd []byte) (op byte, key, value string, err error) {
	if len(cmd) < 9 {
		return 0, "", "", fmt.Errorf("app: kv command too short (%d bytes)", len(cmd))
	}
	op = cmd[0]
	klen := binary.BigEndian.Uint32(cmd[1:5])
	rest := cmd[5:]
	if uint32(len(rest)) < klen+4 {
		return 0, "", "", fmt.Errorf("app: kv command truncated key")
	}
	key = string(rest[:klen])
	rest = rest[klen:]
	vlen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) < vlen {
		return 0, "", "", fmt.Errorf("app: kv command truncated value")
	}
	value = string(rest[:vlen])
	return op, key, value, nil
}

// KVKey extracts the key of an encoded KV command, so key-partitioned
// deployments (the sharded ordering plane) can route every operation on one
// key — put, get, delete alike — to the same partition. It reports false for
// malformed commands.
func KVKey(cmd []byte) (string, bool) {
	_, key, _, err := decodeKV(cmd)
	if err != nil {
		return "", false
	}
	return key, true
}

// Execute implements Application. Replies are "OK" for writes, the value (or
// empty) for reads, and "ERR: ..." for malformed commands.
func (s *KVStore) Execute(command []byte) []byte {
	op, key, value, err := decodeKV(command)
	if err != nil {
		return []byte("ERR: " + err.Error())
	}
	switch op {
	case kvPut:
		s.data[key] = value
		return []byte("OK")
	case kvGet:
		return []byte(s.data[key])
	case kvDelete:
		delete(s.data, key)
		return []byte("OK")
	default:
		return []byte(fmt.Sprintf("ERR: unknown op %d", op))
	}
}

// Snapshot implements Application: the sorted key/value pairs, each encoded
// with the KV length-prefixed layout, so equal stores serialize identically.
func (s *KVStore) Snapshot() []byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(keys)))
	buf.Write(l[:])
	for _, k := range keys {
		binary.BigEndian.PutUint32(l[:], uint32(len(k)))
		buf.Write(l[:])
		buf.WriteString(k)
		binary.BigEndian.PutUint32(l[:], uint32(len(s.data[k])))
		buf.Write(l[:])
		buf.WriteString(s.data[k])
	}
	return buf.Bytes()
}

// Restore implements Application.
func (s *KVStore) Restore(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("app: kv snapshot too short (%d bytes)", len(data))
	}
	n := binary.BigEndian.Uint32(data[:4])
	rest := data[4:]
	out := make(map[string]string, n)
	readString := func() (string, error) {
		if len(rest) < 4 {
			return "", fmt.Errorf("app: kv snapshot truncated")
		}
		l := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < l {
			return "", fmt.Errorf("app: kv snapshot truncated")
		}
		v := string(rest[:l])
		rest = rest[l:]
		return v, nil
	}
	for i := uint32(0); i < n; i++ {
		k, err := readString()
		if err != nil {
			return err
		}
		v, err := readString()
		if err != nil {
			return err
		}
		out[k] = v
	}
	if len(rest) != 0 {
		return fmt.Errorf("app: kv snapshot has %d trailing bytes", len(rest))
	}
	s.data = out
	return nil
}

// Clone implements Application.
func (s *KVStore) Clone() Application {
	c := NewKVStore()
	for k, v := range s.data {
		c.data[k] = v
	}
	return c
}

// Get returns the current value of key directly (bypassing replication);
// used by tests to inspect replica state.
func (s *KVStore) Get(key string) string { return s.data[key] }

// Len returns the number of keys stored.
func (s *KVStore) Len() int { return len(s.data) }

// Counter is a minimal application: every command increments a counter and
// the reply is the new value, big-endian encoded.
type Counter struct {
	value uint64
}

// NewCounter returns a zeroed counter application.
func NewCounter() *Counter { return &Counter{} }

// Execute implements Application.
func (c *Counter) Execute(command []byte) []byte {
	c.value++
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.value)
	return buf[:]
}

// Snapshot implements Application.
func (c *Counter) Snapshot() []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, c.value)
	return buf
}

// Restore implements Application.
func (c *Counter) Restore(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("app: counter snapshot must be 8 bytes, have %d", len(data))
	}
	c.value = binary.BigEndian.Uint64(data)
	return nil
}

// Clone implements Application.
func (c *Counter) Clone() Application { return &Counter{value: c.value} }

// Value returns the current counter value.
func (c *Counter) Value() uint64 { return c.value }
