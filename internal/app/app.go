// Package app defines the replicated application layer: the state machine
// that every replica executes and whose replies are returned to clients.
//
// Three applications are provided:
//
//   - Null: the microbenchmark application used throughout the paper's
//     evaluation (x/y benchmarks); it ignores the request payload and returns
//     a reply of a configured size.
//   - KVStore: a deterministic key-value store used by the examples and the
//     linearizability tests.
//   - Counter: a minimal counter application used by unit tests.
package app

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"abstractbft/internal/authn"
)

// Application is a deterministic state machine. Execute applies a command
// and returns the application-level reply; Snapshot returns a digest of the
// current state (used by checkpoints); Clone returns an independent copy with
// the same state (used when initializing a new Abstract instance replica from
// the state of the previous one).
type Application interface {
	Execute(command []byte) []byte
	Snapshot() authn.Digest
	Clone() Application
}

// Null is the microbenchmark application: every command returns a fixed-size
// zero-filled reply.
type Null struct {
	// ReplySize is the size in bytes of every reply (the y of an x/y
	// benchmark).
	ReplySize int
	executed  uint64
}

// NewNull returns a Null application producing replies of replySize bytes.
func NewNull(replySize int) *Null { return &Null{ReplySize: replySize} }

// Execute implements Application.
func (n *Null) Execute(command []byte) []byte {
	n.executed++
	return make([]byte, n.ReplySize)
}

// Snapshot implements Application; the state is just the execution count.
func (n *Null) Snapshot() authn.Digest {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], n.executed)
	binary.BigEndian.PutUint64(buf[8:], uint64(n.ReplySize))
	return authn.Hash(buf[:])
}

// Clone implements Application.
func (n *Null) Clone() Application { return &Null{ReplySize: n.ReplySize, executed: n.executed} }

// Executed returns the number of commands executed.
func (n *Null) Executed() uint64 { return n.executed }

// KVStore is a deterministic key-value store. Commands are encoded with
// EncodeKVPut / EncodeKVGet / EncodeKVDelete.
type KVStore struct {
	data map[string]string
}

// NewKVStore returns an empty key-value store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string]string)} }

// KV command opcodes.
const (
	kvPut byte = iota + 1
	kvGet
	kvDelete
)

// EncodeKVPut encodes a put command.
func EncodeKVPut(key, value string) []byte {
	return encodeKV(kvPut, key, value)
}

// EncodeKVGet encodes a get command.
func EncodeKVGet(key string) []byte { return encodeKV(kvGet, key, "") }

// EncodeKVDelete encodes a delete command.
func EncodeKVDelete(key string) []byte { return encodeKV(kvDelete, key, "") }

func encodeKV(op byte, key, value string) []byte {
	var buf bytes.Buffer
	buf.WriteByte(op)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(key)))
	buf.Write(l[:])
	buf.WriteString(key)
	binary.BigEndian.PutUint32(l[:], uint32(len(value)))
	buf.Write(l[:])
	buf.WriteString(value)
	return buf.Bytes()
}

func decodeKV(cmd []byte) (op byte, key, value string, err error) {
	if len(cmd) < 9 {
		return 0, "", "", fmt.Errorf("app: kv command too short (%d bytes)", len(cmd))
	}
	op = cmd[0]
	klen := binary.BigEndian.Uint32(cmd[1:5])
	rest := cmd[5:]
	if uint32(len(rest)) < klen+4 {
		return 0, "", "", fmt.Errorf("app: kv command truncated key")
	}
	key = string(rest[:klen])
	rest = rest[klen:]
	vlen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) < vlen {
		return 0, "", "", fmt.Errorf("app: kv command truncated value")
	}
	value = string(rest[:vlen])
	return op, key, value, nil
}

// KVKey extracts the key of an encoded KV command, so key-partitioned
// deployments (the sharded ordering plane) can route every operation on one
// key — put, get, delete alike — to the same partition. It reports false for
// malformed commands.
func KVKey(cmd []byte) (string, bool) {
	_, key, _, err := decodeKV(cmd)
	if err != nil {
		return "", false
	}
	return key, true
}

// Execute implements Application. Replies are "OK" for writes, the value (or
// empty) for reads, and "ERR: ..." for malformed commands.
func (s *KVStore) Execute(command []byte) []byte {
	op, key, value, err := decodeKV(command)
	if err != nil {
		return []byte("ERR: " + err.Error())
	}
	switch op {
	case kvPut:
		s.data[key] = value
		return []byte("OK")
	case kvGet:
		return []byte(s.data[key])
	case kvDelete:
		delete(s.data, key)
		return []byte("OK")
	default:
		return []byte(fmt.Sprintf("ERR: unknown op %d", op))
	}
}

// Snapshot implements Application: a digest over the sorted key/value pairs.
func (s *KVStore) Snapshot() authn.Digest {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		parts = append(parts, []byte(k), []byte(s.data[k]))
	}
	return authn.HashAll(parts...)
}

// Clone implements Application.
func (s *KVStore) Clone() Application {
	c := NewKVStore()
	for k, v := range s.data {
		c.data[k] = v
	}
	return c
}

// Get returns the current value of key directly (bypassing replication);
// used by tests to inspect replica state.
func (s *KVStore) Get(key string) string { return s.data[key] }

// Len returns the number of keys stored.
func (s *KVStore) Len() int { return len(s.data) }

// Counter is a minimal application: every command increments a counter and
// the reply is the new value, big-endian encoded.
type Counter struct {
	value uint64
}

// NewCounter returns a zeroed counter application.
func NewCounter() *Counter { return &Counter{} }

// Execute implements Application.
func (c *Counter) Execute(command []byte) []byte {
	c.value++
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.value)
	return buf[:]
}

// Snapshot implements Application.
func (c *Counter) Snapshot() authn.Digest {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.value)
	return authn.Hash(buf[:])
}

// Clone implements Application.
func (c *Counter) Clone() Application { return &Counter{value: c.value} }

// Value returns the current counter value.
func (c *Counter) Value() uint64 { return c.value }
