package app

import (
	"bytes"
	"testing"
)

func TestNullApplication(t *testing.T) {
	n := NewNull(16)
	reply := n.Execute([]byte("anything"))
	if len(reply) != 16 {
		t.Fatalf("reply size %d, want 16", len(reply))
	}
	before := n.Snapshot()
	n.Execute(nil)
	if bytes.Equal(n.Snapshot(), before) {
		t.Fatalf("snapshot should change as commands execute")
	}
	clone := n.Clone().(*Null)
	if clone.Executed() != n.Executed() {
		t.Fatalf("clone diverges from the original")
	}
}

func TestKVStore(t *testing.T) {
	kv := NewKVStore()
	if got := kv.Execute(EncodeKVPut("k", "v")); string(got) != "OK" {
		t.Fatalf("put reply %q", got)
	}
	if got := kv.Execute(EncodeKVGet("k")); string(got) != "v" {
		t.Fatalf("get reply %q", got)
	}
	if got := kv.Execute(EncodeKVGet("missing")); len(got) != 0 {
		t.Fatalf("missing key reply %q", got)
	}
	snapshotWithK := kv.Snapshot()
	clone := kv.Clone().(*KVStore)
	if clone.Get("k") != "v" || clone.Len() != 1 {
		t.Fatalf("clone state wrong")
	}
	kv.Execute(EncodeKVDelete("k"))
	if kv.Get("k") != "" || kv.Len() != 0 {
		t.Fatalf("delete did not remove the key")
	}
	if bytes.Equal(kv.Snapshot(), snapshotWithK) {
		t.Fatalf("snapshot should change after delete")
	}
	// Clone must be unaffected by the delete on the original.
	if clone.Get("k") != "v" {
		t.Fatalf("clone shares state with the original")
	}
	if got := kv.Execute([]byte{1, 2}); !bytes.HasPrefix(got, []byte("ERR")) {
		t.Fatalf("malformed command reply %q", got)
	}
}

func TestKVStoreDeterminism(t *testing.T) {
	a, b := NewKVStore(), NewKVStore()
	cmds := [][]byte{
		EncodeKVPut("x", "1"), EncodeKVPut("y", "2"), EncodeKVDelete("x"), EncodeKVPut("z", "3"),
	}
	for _, c := range cmds {
		ra := a.Execute(c)
		rb := b.Execute(c)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("same command produced different replies")
		}
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatalf("same command sequence produced different snapshots")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	kv := NewKVStore()
	kv.Execute(EncodeKVPut("a", "1"))
	kv.Execute(EncodeKVPut("b", "2"))
	n := NewNull(32)
	n.Execute(nil)
	n.Execute(nil)
	c := NewCounter()
	c.Execute(nil)
	fresh := []Application{NewKVStore(), NewNull(0), NewCounter()}
	for i, a := range []Application{kv, n, c} {
		if err := fresh[i].Restore(a.Snapshot()); err != nil {
			t.Fatalf("restore %T: %v", a, err)
		}
		if StateDigest(fresh[i]) != StateDigest(a) {
			t.Fatalf("%T: restored state digest diverges", a)
		}
	}
	if got := fresh[0].(*KVStore).Get("b"); got != "2" {
		t.Fatalf("restored kv value %q, want 2", got)
	}
	if got := fresh[1].(*Null).ReplySize; got != 32 {
		t.Fatalf("restored null reply size %d, want 32", got)
	}
	if got := fresh[2].(*Counter).Value(); got != 1 {
		t.Fatalf("restored counter %d, want 1", got)
	}
	for _, a := range fresh {
		if err := a.Restore([]byte{1}); err == nil {
			t.Fatalf("%T: truncated snapshot accepted", a)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Execute(nil)
	c.Execute(nil)
	if c.Value() != 2 {
		t.Fatalf("counter value %d, want 2", c.Value())
	}
	clone := c.Clone().(*Counter)
	clone.Execute(nil)
	if c.Value() != 2 || clone.Value() != 3 {
		t.Fatalf("clone shares state")
	}
	if bytes.Equal(c.Snapshot(), clone.Snapshot()) {
		t.Fatalf("different states share a snapshot")
	}
}
