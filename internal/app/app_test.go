package app

import (
	"bytes"
	"testing"
)

func TestNullApplication(t *testing.T) {
	n := NewNull(16)
	reply := n.Execute([]byte("anything"))
	if len(reply) != 16 {
		t.Fatalf("reply size %d, want 16", len(reply))
	}
	before := n.Snapshot()
	n.Execute(nil)
	if n.Snapshot() == before {
		t.Fatalf("snapshot should change as commands execute")
	}
	clone := n.Clone().(*Null)
	if clone.Executed() != n.Executed() {
		t.Fatalf("clone diverges from the original")
	}
}

func TestKVStore(t *testing.T) {
	kv := NewKVStore()
	if got := kv.Execute(EncodeKVPut("k", "v")); string(got) != "OK" {
		t.Fatalf("put reply %q", got)
	}
	if got := kv.Execute(EncodeKVGet("k")); string(got) != "v" {
		t.Fatalf("get reply %q", got)
	}
	if got := kv.Execute(EncodeKVGet("missing")); len(got) != 0 {
		t.Fatalf("missing key reply %q", got)
	}
	snapshotWithK := kv.Snapshot()
	clone := kv.Clone().(*KVStore)
	if clone.Get("k") != "v" || clone.Len() != 1 {
		t.Fatalf("clone state wrong")
	}
	kv.Execute(EncodeKVDelete("k"))
	if kv.Get("k") != "" || kv.Len() != 0 {
		t.Fatalf("delete did not remove the key")
	}
	if kv.Snapshot() == snapshotWithK {
		t.Fatalf("snapshot should change after delete")
	}
	// Clone must be unaffected by the delete on the original.
	if clone.Get("k") != "v" {
		t.Fatalf("clone shares state with the original")
	}
	if got := kv.Execute([]byte{1, 2}); !bytes.HasPrefix(got, []byte("ERR")) {
		t.Fatalf("malformed command reply %q", got)
	}
}

func TestKVStoreDeterminism(t *testing.T) {
	a, b := NewKVStore(), NewKVStore()
	cmds := [][]byte{
		EncodeKVPut("x", "1"), EncodeKVPut("y", "2"), EncodeKVDelete("x"), EncodeKVPut("z", "3"),
	}
	for _, c := range cmds {
		ra := a.Execute(c)
		rb := b.Execute(c)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("same command produced different replies")
		}
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("same command sequence produced different snapshots")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Execute(nil)
	c.Execute(nil)
	if c.Value() != 2 {
		t.Fatalf("counter value %d, want 2", c.Value())
	}
	clone := c.Clone().(*Counter)
	clone.Execute(nil)
	if c.Value() != 2 || clone.Value() != 3 {
		t.Fatalf("clone shares state")
	}
	if c.Snapshot() == clone.Snapshot() {
		t.Fatalf("different states share a snapshot")
	}
}
