// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.6, §5.4, §6): each experiment produces the same rows or
// series the paper reports, computed from the calibrated performance model
// (internal/perfmodel) whose protocol cost profiles are validated against the
// real implementations by the test suite and the benchmarks in bench_test.go.
//
// EXPERIMENTS.md records, per experiment, the paper-reported values next to
// the values these functions produce.
package experiments

import (
	"fmt"
	"sort"

	"abstractbft/internal/attack"
	"abstractbft/internal/perfmodel"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Format renders the table as plain text.
func (t Table) Format() string {
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, row := range t.Rows {
		out += line(row)
	}
	if t.Notes != "" {
		out += "-- " + t.Notes + "\n"
	}
	return out
}

// Runner evaluates experiments against a performance model.
type Runner struct {
	Model *perfmodel.Model
}

// NewRunner returns a runner over the default calibrated testbed.
func NewRunner() *Runner { return &Runner{Model: perfmodel.New()} }

// All returns every experiment in the paper's order.
func (r *Runner) All() []Table {
	return []Table{
		r.Table1(), r.Table2(), r.Fig5(), r.Fig8(), r.Fig9(), r.Fig10(), r.Fig11(),
		r.Fig12(), r.Fig13(), r.Fig14(), r.Fig15(), r.Table3(), r.Table4(), r.Table5(),
		r.Fig17(), r.Fig18(),
	}
}

// ByID returns the experiment with the given identifier.
func (r *Runner) ByID(id string) (Table, bool) {
	for _, t := range r.All() {
		if t.ID == id {
			return t, true
		}
	}
	return Table{}, false
}

// IDs lists the available experiment identifiers.
func (r *Runner) IDs() []string {
	var out []string
	for _, t := range r.All() {
		out = append(out, t.ID)
	}
	sort.Strings(out)
	return out
}

// Table1 reproduces Table I: replicas, MAC operations at the bottleneck
// replica, and one-way delays on the critical path.
func (r *Runner) Table1() Table {
	f := 1
	b := 10.0
	rows := [][]string{}
	for _, p := range []perfmodel.Protocol{perfmodel.PBFT, perfmodel.QU, perfmodel.HQ, perfmodel.Zyzzyva, perfmodel.Aliph} {
		c := perfmodel.CharacteristicsOf(p, f, b)
		rows = append(rows, []string{
			string(p),
			fmt.Sprintf("%d", c.Replicas),
			fmt.Sprintf("%.2f", c.BottleneckMACs),
			fmt.Sprintf("%d", minCriticalPath(p, c)),
		})
	}
	return Table{
		ID:     "table1",
		Title:  "Characteristics of state-of-the-art BFT protocols (f=1, batch=10)",
		Header: []string{"protocol", "replicas", "MAC ops @ bottleneck", "1-way delays"},
		Rows:   rows,
		Notes:  "Aliph reports its contention-free critical path (Quorum: 2 delays) and Chain's bottleneck MAC count 1+(2f+1)/b.",
	}
}

func minCriticalPath(p perfmodel.Protocol, c perfmodel.Characteristics) int {
	// Aliph's latency-critical path is Quorum's (2 delays), even though
	// Chain, used under contention, has a longer pipeline.
	if p == perfmodel.Aliph || p == perfmodel.RAliph {
		return 2
	}
	return c.OneWayDelays
}

// Table2 reproduces Table II: the latency improvement of Aliph over Q/U,
// Zyzzyva, and PBFT for the 0/0, 4/0, and 0/4 benchmarks without contention,
// for f = 1..3.
func (r *Runner) Table2() Table {
	type bench struct {
		name       string
		req, reply float64
	}
	benches := []bench{{"0/0", 0, 0}, {"4/0", 4, 0}, {"0/4", 0, 4}}
	rows := [][]string{}
	for _, other := range []perfmodel.Protocol{perfmodel.QU, perfmodel.Zyzzyva, perfmodel.PBFT} {
		row := []string{string(other)}
		for _, b := range benches {
			for f := 1; f <= 3; f++ {
				aliph := r.Model.Latency(perfmodel.Workload{Protocol: perfmodel.Aliph, F: f, Clients: 1, RequestKB: b.req, ReplyKB: b.reply})
				o := r.Model.Latency(perfmodel.Workload{Protocol: other, F: f, Clients: 1, RequestKB: b.req, ReplyKB: b.reply})
				improve := (o - aliph) / o * 100
				row = append(row, fmt.Sprintf("%.1f%%", improve))
			}
		}
		rows = append(rows, row)
	}
	header := []string{"vs"}
	for _, b := range benches {
		for f := 1; f <= 3; f++ {
			header = append(header, fmt.Sprintf("%s f=%d", b.name, f))
		}
	}
	return Table{
		ID:     "table2",
		Title:  "Latency improvement of Aliph without contention",
		Header: header,
		Rows:   rows,
	}
}

// Fig5 reproduces Figure 5: AZyzzyva switching time as a function of the
// history size, with and without missing requests.
func (r *Runner) Fig5() Table {
	rows := [][]string{}
	for _, h := range []int{0, 50, 100, 150, 200, 250} {
		rows = append(rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.1f ms", r.Model.SwitchingTime(h, 1, 0)),
			fmt.Sprintf("%.1f ms", r.Model.SwitchingTime(h, 1, 0.3)),
		})
	}
	return Table{
		ID:     "fig5",
		Title:  "Switching time vs history size (1 kB requests, f=1)",
		Header: []string{"history (requests)", "no missing requests", "30% missing requests"},
		Rows:   rows,
	}
}

func (r *Runner) throughputFigure(id, title string, reqKB, repKB float64, clients []int, protos []perfmodel.Protocol, clientMcast bool) Table {
	rows := [][]string{}
	for _, n := range clients {
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range protos {
			w := perfmodel.Workload{Protocol: p, F: 1, Clients: n, RequestKB: reqKB, ReplyKB: repKB, Contention: n > 1, ClientMcast: clientMcast}
			row = append(row, fmt.Sprintf("%.0f", r.Model.PeakThroughput(w)))
		}
		rows = append(rows, row)
	}
	header := []string{"clients"}
	for _, p := range protos {
		header = append(header, string(p)+" (req/s)")
	}
	return Table{ID: id, Title: title, Header: header, Rows: rows}
}

// Fig8 reproduces Figure 8: throughput of the 0/0 benchmark, f=1.
func (r *Runner) Fig8() Table {
	return r.throughputFigure("fig8", "Throughput, 0/0 benchmark (f=1)",
		0, 0, []int{1, 5, 10, 20, 40, 60, 80, 120, 160, 200},
		[]perfmodel.Protocol{perfmodel.Aliph, perfmodel.Zyzzyva, perfmodel.ZyzzyvaNoBatch, perfmodel.PBFT}, false)
}

// Fig9 reproduces Figure 9: response time versus throughput, 0/0 benchmark.
func (r *Runner) Fig9() Table {
	rows := [][]string{}
	for _, n := range []int{1, 5, 10, 20, 40, 80, 120, 160, 200} {
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range []perfmodel.Protocol{perfmodel.Aliph, perfmodel.Zyzzyva, perfmodel.PBFT} {
			w := perfmodel.Workload{Protocol: p, F: 1, Clients: n, Contention: n > 1}
			row = append(row, fmt.Sprintf("%.0f req/s @ %.2f ms", r.Model.PeakThroughput(w), r.Model.ResponseTime(w)/1000))
		}
		rows = append(rows, row)
	}
	return Table{
		ID:     "fig9",
		Title:  "Response time vs throughput, 0/0 benchmark (f=1)",
		Header: []string{"clients", "Aliph", "Zyzzyva", "PBFT"},
		Rows:   rows,
	}
}

// Fig10 reproduces Figure 10: throughput of the 0/4 benchmark, f=1.
func (r *Runner) Fig10() Table {
	return r.throughputFigure("fig10", "Throughput, 0/4 benchmark (f=1, client multicast)",
		0, 4, []int{1, 5, 10, 15, 20, 30, 40, 60, 80},
		[]perfmodel.Protocol{perfmodel.Aliph, perfmodel.Zyzzyva, perfmodel.PBFT}, true)
}

// Fig11 reproduces Figure 11: throughput of the 4/0 benchmark, f=1.
func (r *Runner) Fig11() Table {
	t := r.throughputFigure("fig11", "Throughput, 4/0 benchmark (f=1)",
		4, 0, []int{1, 2, 3, 5, 10, 20, 40, 80},
		[]perfmodel.Protocol{perfmodel.Aliph, perfmodel.Zyzzyva, perfmodel.PBFT}, false)
	t.Notes = "IP-multicast loss with 4 kB requests collapses PBFT/Zyzzyva; Chain's TCP pipeline keeps Aliph's throughput (~360% higher at the peak)."
	return t
}

// Fig12 reproduces Figure 12: peak throughput as a function of request size.
func (r *Runner) Fig12() Table {
	rows := [][]string{}
	for _, kb := range []float64{0, 0.0625, 0.125, 0.25, 0.5, 1, 2, 4, 8} {
		row := []string{fmt.Sprintf("%.0f B", kb*1024)}
		for _, p := range []perfmodel.Protocol{perfmodel.Aliph, perfmodel.Zyzzyva, perfmodel.PBFT} {
			w := perfmodel.Workload{Protocol: p, F: 1, Clients: 120, RequestKB: kb, Contention: true}
			row = append(row, fmt.Sprintf("%.0f", r.Model.PeakThroughput(w)))
		}
		rows = append(rows, row)
	}
	return Table{
		ID:     "fig12",
		Title:  "Peak throughput vs request size (f=1)",
		Header: []string{"request size", "Aliph (req/s)", "Zyzzyva (req/s)", "PBFT (req/s)"},
		Rows:   rows,
	}
}

// Fig13 reproduces Figure 13: Aliph fault scalability (4/0 benchmark).
func (r *Runner) Fig13() Table {
	rows := [][]string{}
	for _, n := range []int{1, 5, 10, 20, 40, 80, 120} {
		row := []string{fmt.Sprintf("%d", n)}
		for f := 1; f <= 3; f++ {
			w := perfmodel.Workload{Protocol: perfmodel.Aliph, F: f, Clients: n, RequestKB: 4, Contention: n > 1}
			row = append(row, fmt.Sprintf("%.0f", r.Model.PeakThroughput(w)))
		}
		rows = append(rows, row)
	}
	return Table{
		ID:     "fig13",
		Title:  "Aliph throughput for f=1..3 (4/0 benchmark)",
		Header: []string{"clients", "f=1 (req/s)", "f=2 (req/s)", "f=3 (req/s)"},
		Rows:   rows,
		Notes:  "Peak throughput at f=3 stays within a few percent of f=1; more clients are needed to fill the longer pipeline.",
	}
}

// Fig14 reproduces Figure 14: Aliph's behaviour when one replica crashes for
// 10 seconds, with k=1 versus exponentially growing k.
func (r *Runner) Fig14() Table {
	peak := r.Model.PeakThroughput(perfmodel.Workload{Protocol: perfmodel.Aliph, F: 1, Clients: 1})
	backupPeak := r.Model.PeakThroughput(perfmodel.Workload{Protocol: perfmodel.PBFT, F: 1, Clients: 1})
	switchCost := 0.025 // seconds per switch to Backup
	rows := [][]string{}
	for t := 0.0; t <= 20; t++ {
		crashed := t >= 2 && t < 12
		fixedK := peak
		expK := peak
		if crashed {
			// With k=1, every single request pays a switch to Backup.
			fixedK = 1 / (switchCost + 1/backupPeak)
			// With exponential k the switching cost is amortized over
			// 2^i requests; after a few seconds it is negligible.
			amort := switchCost / float64(uint64(1)<<uint(int(t-2)+1))
			expK = 1 / (amort + 1/backupPeak)
		} else if t >= 12 && t < 14 {
			// After recovery the exponential strategy remains in Backup until
			// the large k is exhausted.
			expK = backupPeak
		}
		rows = append(rows, []string{fmt.Sprintf("%.0f s", t), fmt.Sprintf("%.0f", fixedK), fmt.Sprintf("%.0f", expK)})
	}
	return Table{
		ID:     "fig14",
		Title:  "Aliph under a replica crash (t=2s..12s): throughput over time",
		Header: []string{"time", "k=1 (req/s)", "exponential k (req/s)"},
		Rows:   rows,
		Notes:  "With k=1 every request pays a full switch through Backup; with exponential k Backup amortizes switching and throughput recovers, at the cost of staying in Backup briefly after the replica returns.",
	}
}

// Fig15 reproduces Figure 15: the dynamic workload (ramp, spike, ramp-down).
func (r *Runner) Fig15() Table {
	phases := []struct {
		name    string
		clients int
		reqKB   float64
	}{
		{"1 client", 1, 0.5}, {"2 clients", 2, 0.5}, {"5 clients", 5, 0.5}, {"10 clients", 10, 1},
		{"spike: 30 clients", 30, 1}, {"10 clients", 10, 1}, {"5 clients", 5, 0.5}, {"1 client", 1, 0.5},
	}
	rows := [][]string{}
	for _, ph := range phases {
		aliph := perfmodel.Workload{Protocol: perfmodel.Aliph, F: 1, Clients: ph.clients, RequestKB: ph.reqKB, Contention: ph.clients > 1}
		chain := perfmodel.Workload{Protocol: perfmodel.Chain, F: 1, Clients: ph.clients, RequestKB: ph.reqKB, Contention: true}
		zyz := perfmodel.Workload{Protocol: perfmodel.Zyzzyva, F: 1, Clients: ph.clients, RequestKB: ph.reqKB, Contention: ph.clients > 1}
		rows = append(rows, []string{
			ph.name,
			fmt.Sprintf("%.0f", r.Model.PeakThroughput(aliph)),
			fmt.Sprintf("%.0f", r.Model.PeakThroughput(zyz)),
			fmt.Sprintf("%.0f", r.Model.PeakThroughput(chain)),
		})
	}
	return Table{
		ID:     "fig15",
		Title:  "Dynamic workload: throughput per phase",
		Header: []string{"phase", "Aliph (req/s)", "Zyzzyva (req/s)", "Chain (req/s)"},
		Rows:   rows,
		Notes:  "Aliph uses Quorum at low load (beating both), Chain under the spike (about 3x Zyzzyva), and switches back to Quorum when the load drops.",
	}
}

// Table3 reproduces Table III: Aliph's peak throughput under attack.
func (r *Runner) Table3() Table {
	return r.attackTable("table3", "Aliph under attack (0/0 benchmark)", []perfmodel.Protocol{perfmodel.Aliph})
}

// Table4 reproduces Table IV: the robust baselines under attack.
func (r *Runner) Table4() Table {
	return r.attackTable("table4", "Robust protocols under attack (0/0 benchmark)",
		[]perfmodel.Protocol{perfmodel.Spinning, perfmodel.Prime, perfmodel.Aardvark})
}

func (r *Runner) attackTable(id, title string, protos []perfmodel.Protocol) Table {
	rows := [][]string{}
	for _, p := range protos {
		row := []string{string(p)}
		base := r.Model.UnderAttack(p, 1, 100, attack.ScenarioNone)
		for _, s := range attack.AllScenarios() {
			v := r.Model.UnderAttack(p, 1, 100, s)
			if s == attack.ScenarioNone {
				row = append(row, fmt.Sprintf("%.0f", v))
			} else {
				row = append(row, fmt.Sprintf("%.0f (%+.1f%%)", v, (v-base)/base*100))
			}
		}
		rows = append(rows, row)
	}
	header := []string{"protocol"}
	for _, s := range attack.AllScenarios() {
		header = append(header, string(s))
	}
	return Table{ID: id, Title: title, Header: header, Rows: rows}
}

// Table5 reproduces Table V: R-Aliph's worst-case switching time under
// attack.
func (r *Runner) Table5() Table {
	row := []string{"R-Aliph"}
	for _, s := range attack.AllScenarios() {
		row = append(row, fmt.Sprintf("%.2f ms", r.Model.RAliphSwitchingTime(s)))
	}
	header := []string{"protocol"}
	for _, s := range attack.AllScenarios() {
		header = append(header, string(s))
	}
	return Table{
		ID:     "table5",
		Title:  "R-Aliph worst-case switching time",
		Header: header,
		Rows:   [][]string{row},
		Notes:  "Switching is replica-initiated over isolated channels, so attacks change it only marginally.",
	}
}

// Fig17 reproduces Figure 17: R-Aliph's throughput decrease relative to Aliph
// as a function of the request size.
func (r *Runner) Fig17() Table {
	rows := [][]string{}
	for _, kb := range []float64{0, 0.5, 1, 2, 4, 6, 8, 10} {
		over := r.Model.RAliphOverhead(kb) * 100
		rows = append(rows, []string{fmt.Sprintf("%.1f kB", kb), fmt.Sprintf("%.1f%%", over)})
	}
	return Table{
		ID:     "fig17",
		Title:  "R-Aliph throughput decrease vs Aliph",
		Header: []string{"request size", "throughput decrease"},
		Rows:   rows,
		Notes:  "The overhead of client feedback messages stays below 6% and shrinks with the request size.",
	}
}

// Fig18 reproduces Figure 18: R-Aliph's timeline under the processing-delay
// attack.
func (r *Runner) Fig18() Table {
	aardvark := r.Model.UnderAttack(perfmodel.Aardvark, 1, 100, attack.ScenarioNone)
	aardvarkDelay := r.Model.UnderAttack(perfmodel.Aardvark, 1, 100, attack.ScenarioProcessingDelay)
	chain := r.Model.PeakThroughput(perfmodel.Workload{Protocol: perfmodel.Chain, F: 1, Clients: 100, Contention: true})
	chain *= 1 - r.Model.RAliphOverhead(0)
	rows := [][]string{
		{"0-55 s", "Backup (Aardvark)", fmt.Sprintf("%.0f", aardvark), "no attack; expectation computed here"},
		{"55 s", "Quorum", "0", "contention: Quorum aborts immediately"},
		{"55-114 s", "Chain", fmt.Sprintf("%.0f", chain), "well above the expectation"},
		{"114 s", "Chain under attack", "detected in ~7 ms", "head delays ordering by 10 ms"},
		{"114-187 s", "Backup (Aardvark)", fmt.Sprintf("%.0f", aardvarkDelay), "about -21%: rotating primaries evict the slow one"},
		{"187 s", "Quorum / Chain", "0", "re-probed, abort: attack still active"},
		{"187+ s", "Backup (Aardvark)", fmt.Sprintf("%.0f", aardvarkDelay), "remains on the robust backup"},
	}
	return Table{
		ID:     "fig18",
		Title:  "R-Aliph under a 10 ms processing-delay attack: timeline",
		Header: []string{"time", "active instance", "throughput (req/s)", "notes"},
		Rows:   rows,
	}
}
