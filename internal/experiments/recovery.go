package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
	"abstractbft/internal/workload"
)

// RecoveryConfig drives the live crash-restart measurement over the
// in-process ZLight (AZyzzyva) plane with a replicated KV store: a burst of
// traffic builds stable checkpoints (and garbage-collects the history below
// them), one replica is then crash-restarted with all of its in-memory state
// gone, and the statesync plane must bring it back — the pre-crash request
// bodies no longer exist anywhere, so only the snapshot transfer can. A
// second burst afterwards proves the restarted replica truly rejoined:
// ZLight commits require matching RESPs from all 3f+1 replicas, so phase-2
// commits certify digest convergence end to end.
type RecoveryConfig struct {
	// Clients is the number of closed-loop clients per burst (default 8).
	Clients int
	// Duration is the measured window per burst (default 1s).
	Duration time.Duration
	// CheckpointInterval is CHK for the run (default 64, small enough that
	// short windows cross several checkpoints).
	CheckpointInterval int
	// CatchupTimeout bounds how long the restarted replica may take to
	// converge (default 10s).
	CatchupTimeout time.Duration
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 64
	}
	if c.CatchupTimeout <= 0 {
		c.CatchupTimeout = 10 * time.Second
	}
	return c
}

// RecoveryRow is the measured outcome of one crash-restart run.
type RecoveryRow struct {
	// Phase1Committed is the number of requests committed before the crash.
	Phase1Committed uint64 `json:"phase1_committed"`
	// SnapshotSeq is the position of the snapshot the restarted replica
	// adopted (its applied-history trim point after the transfer).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SuffixLen is the number of requests the restarted replica re-executed
	// beyond the snapshot to reach the live replicas.
	SuffixLen uint64 `json:"suffix_len"`
	// CatchupMs is the wall-clock time from the restart until the replica's
	// applied state (sequence and digest chain) matched a live replica.
	CatchupMs float64 `json:"catchup_ms"`
	// Converged records that the applied digest chains matched exactly.
	Converged bool `json:"converged"`
	// Phase2Committed and Phase2RPS measure the burst after recovery: ZLight
	// commits need all 3f+1 replicas, so these prove the restarted replica
	// serves consistent RESPs again.
	Phase2Committed uint64  `json:"phase2_committed"`
	Phase2RPS       float64 `json:"phase2_rps"`
}

// MeasureRecovery runs the crash-restart scenario once and reports the row.
func MeasureRecovery(ctx context.Context, cfg RecoveryConfig) (RecoveryRow, error) {
	cfg = cfg.withDefaults()
	cluster, err := deploy.New(deploy.Config{
		F:                  1,
		NewApp:             func() app.Application { return app.NewKVStore() },
		Composition:        compose.MustNew("azyzzyva", compose.Options{}),
		Delta:              200 * time.Millisecond,
		CheckpointInterval: cfg.CheckpointInterval,
	})
	if err != nil {
		return RecoveryRow{}, err
	}
	defer cluster.Stop()

	row := RecoveryRow{}
	// Each burst runs closed-loop clients issuing real KV puts, so the
	// snapshot transfer carries genuine application state.
	burst := func(phase int) (workload.Result, error) {
		return workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{
			Clients:  cfg.Clients,
			Duration: cfg.Duration,
		}, func(i int) (workload.Invoker, ids.ProcessID, error) {
			id := phase*cfg.Clients + i
			client, err := cluster.NewClient(id)
			if err != nil {
				return nil, 0, err
			}
			return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
				req.Command = app.EncodeKVPut(fmt.Sprintf("c%d-k%d", id, req.Timestamp%64), fmt.Sprintf("v%d", req.Timestamp))
				return client.Invoke(ctx, req)
			}), ids.Client(id), nil
		})
	}

	res1, err := burst(0)
	if err != nil {
		return row, fmt.Errorf("experiments: pre-crash burst: %w", err)
	}
	row.Phase1Committed = res1.Committed

	// Crash-restart replica 3: its history, application, and snapshots are
	// gone; the history below the stable checkpoint was garbage-collected on
	// the live replicas, so only the snapshot transfer can restore it.
	liveSeq, _ := cluster.Host(0).AppliedState()
	start := time.Now()
	restarted := cluster.RestartReplica(3)
	deadline := time.Now().Add(cfg.CatchupTimeout)
	for {
		seq, dig := restarted.AppliedState()
		refSeq, refDig := cluster.Host(0).AppliedState()
		if !restarted.Syncing() && seq >= liveSeq && seq == refSeq && dig == refDig {
			row.CatchupMs = float64(time.Since(start).Microseconds()) / 1000
			row.Converged = true
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return row, fmt.Errorf("experiments: restarted replica did not converge (applied %d, live %d)", seq, refSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, appliedDigests, _, _ := restarted.GCStats()
	finalSeq, _ := restarted.AppliedState()
	row.SnapshotSeq = finalSeq - uint64(appliedDigests)
	row.SuffixLen = uint64(appliedDigests)

	res2, err := burst(1)
	if err != nil {
		return row, fmt.Errorf("experiments: post-recovery burst: %w", err)
	}
	row.Phase2Committed = res2.Committed
	row.Phase2RPS = res2.ThroughputOps()
	return row, nil
}

// GCRow is one measured memory row: the same direct-driven request sequence
// with garbage collection on versus off.
type GCRow struct {
	GC       bool `json:"gc"`
	Requests int  `json:"requests"`
	// HeapGrowthBytes is the live-heap growth across the run (after a forced
	// runtime GC on both ends), the flat-vs-linear acceptance signal.
	HeapGrowthBytes int64 `json:"heap_growth_bytes"`
	// BytesPerRequest is HeapGrowthBytes / Requests.
	BytesPerRequest float64 `json:"bytes_per_request"`
	// RetainedDigests / RetainedBodies / Snapshots are the replica's storage
	// counters at the end of the run (host.GCStats).
	RetainedDigests int `json:"retained_digests"`
	RetainedBodies  int `json:"retained_bodies"`
	Snapshots       int `json:"snapshots"`
}

// MeasureHistoryGC drives one replica host directly (no network, no crypto —
// a single-replica cluster whose checkpoints stabilize on the spot) through
// `requests` logged-and-executed requests and measures the retained storage
// with garbage collection on or off. With GC on, history digests, request
// bodies, and heap growth stay bounded by the checkpoint interval regardless
// of run length; with GC off they grow linearly.
func MeasureHistoryGC(requests int, disableGC bool) (GCRow, error) {
	row := GCRow{GC: !disableGC, Requests: requests}
	net := transport.NewLocal(transport.Options{})
	defer net.Close()
	h := host.New(host.Config{
		Cluster:  ids.NewCluster(0),
		Replica:  ids.Replica(0),
		Keys:     authn.NewKeyStore("gc-bench"),
		App:      app.NewKVStore(),
		Endpoint: net.Endpoint(ids.Replica(0)),
		NewProtocol: func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
			return nopProtocol{}
		},
		CheckpointInterval: 128,
		DisableGC:          disableGC,
	})
	st := h.Bootstrap()
	if st == nil {
		return row, fmt.Errorf("experiments: bootstrap failed")
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const batchSize = 16
	payload := []byte("value-payload-for-gc-bench")
	ts := uint64(0)
	for done := 0; done < requests; {
		n := batchSize
		if requests-done < n {
			n = requests - done
		}
		batch := msg.Batch{Requests: make([]msg.Request, n)}
		for i := 0; i < n; i++ {
			ts++
			batch.Requests[i] = msg.Request{
				Client:    ids.Client(0),
				Timestamp: ts,
				Command:   app.EncodeKVPut(fmt.Sprintf("key-%d", ts%512), string(payload)),
			}
		}
		ok := false
		h.Locked(func() {
			if _, logged := h.LogBatch(st, batch); logged {
				h.ExecuteBatch(st, batch)
				ok = true
			}
		})
		if !ok {
			return row, fmt.Errorf("experiments: log rejected at %d", done)
		}
		done += n
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	row.HeapGrowthBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if requests > 0 {
		row.BytesPerRequest = float64(row.HeapGrowthBytes) / float64(requests)
	}
	row.RetainedDigests, _, row.RetainedBodies, row.Snapshots = h.GCStats()
	return row, nil
}

type nopProtocol struct{}

func (nopProtocol) Handle(from ids.ProcessID, m any) {}

// RecoveryTable formats a recovery row for human consumption.
func RecoveryTable(row RecoveryRow, gcRows []GCRow) Table {
	t := Table{
		ID:     "recovery",
		Title:  "Crash-restart recovery via statesync + history GC memory profile",
		Header: []string{"metric", "value"},
		Notes:  "Recovery: replica 3 restarted with empty state; pre-crash bodies are GC'd cluster-wide, so only the snapshot transfer can restore it. GC rows: direct-driven host, live-heap growth across the run.",
	}
	t.Rows = append(t.Rows,
		[]string{"phase1 committed", fmt.Sprintf("%d", row.Phase1Committed)},
		[]string{"snapshot seq adopted", fmt.Sprintf("%d", row.SnapshotSeq)},
		[]string{"suffix re-executed", fmt.Sprintf("%d", row.SuffixLen)},
		[]string{"catch-up", fmt.Sprintf("%.1f ms", row.CatchupMs)},
		[]string{"converged", fmt.Sprintf("%v", row.Converged)},
		[]string{"phase2 committed", fmt.Sprintf("%d (%.0f req/s)", row.Phase2Committed, row.Phase2RPS)},
	)
	for _, g := range gcRows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("heap growth, GC=%v, %d reqs", g.GC, g.Requests),
			fmt.Sprintf("%.1f B/req (digests %d, bodies %d, snaps %d)", g.BytesPerRequest, g.RetainedDigests, g.RetainedBodies, g.Snapshots),
		})
	}
	return t
}
