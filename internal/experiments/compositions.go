package experiments

import (
	"context"
	"fmt"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/workload"
)

// DefaultCompositionSpecs is the composition matrix the benchmark sweeps:
// the paper's two static compositions plus schedules that existed only as
// DSL strings until the declarative composition API — no package implements
// them, they are compiled straight from the registry.
var DefaultCompositionSpecs = []string{
	"aliph",
	"azyzzyva",
	"zlight-chain-backup",
	"chain-backup",
	"quorum-backup",
	// The standalone always-progress baseline: the backup engine without the
	// k-bound, a backup-only deployment that never switches.
	"pbft",
}

// CompositionsConfig drives the composition-matrix measurement: the same
// closed-loop workload is run once per switching schedule, so the rows of
// one run are directly comparable across compositions (the spirit of the
// chained-BFT evaluation matrices).
type CompositionsConfig struct {
	// Specs are the schedules to sweep, each a registered name or a DSL
	// string (default DefaultCompositionSpecs).
	Specs []string
	// Clients is the number of concurrent closed-loop clients (default 6 —
	// enough contention that contention-intolerant head stages abort and the
	// schedule actually switches).
	Clients int
	// Duration is the measured window per composition (default 1s).
	Duration time.Duration
	// RequestSize is the request payload in bytes (default 0).
	RequestSize int
}

func (c CompositionsConfig) withDefaults() CompositionsConfig {
	if len(c.Specs) == 0 {
		c.Specs = DefaultCompositionSpecs
	}
	if c.Clients <= 0 {
		c.Clients = 6
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	return c
}

// CompositionRow is the measured outcome for one switching schedule.
type CompositionRow struct {
	// Name is the registered schedule name ("" for ad-hoc DSL specs).
	Name string `json:"name,omitempty"`
	// Composition is the schedule in DSL form.
	Composition string `json:"composition"`
	// Committed/Errors/ThroughputRPS/latency summarize the closed-loop run.
	Committed     uint64  `json:"committed"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// Switches is the total number of instance switches the clients
	// performed: evidence the schedule was exercised beyond its first stage
	// (0 when the head stage tolerates the workload).
	Switches uint64 `json:"switches"`
	// FinalInstance and FinalProtocol describe the highest instance any
	// client ended the window on and the stage it runs.
	FinalInstance uint64 `json:"final_instance"`
	FinalProtocol string `json:"final_protocol"`
}

// MeasureCompositions runs the closed-loop workload once per schedule and
// reports one row per composition. Every schedule is compiled from the
// registry via the DSL — the measurement code knows nothing about which
// protocols it is composing.
func MeasureCompositions(ctx context.Context, cfg CompositionsConfig) ([]CompositionRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]CompositionRow, 0, len(cfg.Specs))
	for _, dsl := range cfg.Specs {
		row, err := measureOneComposition(ctx, cfg, dsl)
		if err != nil {
			return rows, fmt.Errorf("experiments: composition %q: %w", dsl, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureOneComposition(ctx context.Context, cfg CompositionsConfig, dsl string) (CompositionRow, error) {
	spec, err := compose.Parse(dsl)
	if err != nil {
		return CompositionRow{}, err
	}
	comp, err := compose.New(spec, compose.Options{})
	if err != nil {
		return CompositionRow{}, err
	}
	cluster, err := deploy.New(deploy.Config{
		F:           1,
		NewApp:      func() app.Application { return app.NewNull(0) },
		Composition: comp,
		Delta:       100 * time.Millisecond,
	})
	if err != nil {
		return CompositionRow{}, err
	}
	defer cluster.Stop()

	var clients []*core.Composer
	res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{
		Clients:     cfg.Clients,
		Duration:    cfg.Duration,
		RequestSize: cfg.RequestSize,
	}, func(i int) (workload.Invoker, ids.ProcessID, error) {
		client, err := cluster.NewClient(i)
		if err != nil {
			return nil, 0, err
		}
		clients = append(clients, client)
		return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
			return client.Invoke(ctx, req)
		}), ids.Client(i), nil
	})
	if err != nil {
		return CompositionRow{}, err
	}
	row := CompositionRow{
		Name:          spec.Name,
		Composition:   spec.String(),
		Committed:     res.Committed,
		Errors:        res.Errors,
		ThroughputRPS: res.ThroughputOps(),
		P50Ms:         float64(res.Latency.Percentile(50).Microseconds()) / 1000,
		P99Ms:         float64(res.Latency.Percentile(99).Microseconds()) / 1000,
		FinalInstance: 1,
	}
	for _, c := range clients {
		row.Switches += c.Switches()
		if inst := uint64(c.ActiveInstance()); inst > row.FinalInstance {
			row.FinalInstance = inst
		}
	}
	row.FinalProtocol = comp.ProtocolOf(core.InstanceID(row.FinalInstance))
	return row, nil
}

// CompositionsTable formats measured composition rows in the experiment
// table format, for human consumption next to the paper's tables.
func CompositionsTable(rows []CompositionRow) Table {
	t := Table{
		ID:     "compositions",
		Title:  "Measured throughput/latency per switching schedule (live in-process clusters)",
		Header: []string{"composition", "committed", "req/s", "p50 ms", "p99 ms", "switches", "final"},
		Notes:  "Real implementation, 0/0 microbenchmark; each row compiled from the registry via the Spec DSL.",
	}
	for _, r := range rows {
		name := r.Composition
		if r.Name != "" {
			name = fmt.Sprintf("%s (%s)", r.Name, r.Composition)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%.0f", r.ThroughputRPS),
			fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%.2f", r.P99Ms),
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%s@%d", r.FinalProtocol, r.FinalInstance),
		})
	}
	return t
}
