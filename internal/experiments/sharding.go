package experiments

import (
	"context"
	"fmt"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
	"abstractbft/internal/workload"
)

// ShardingConfig drives a live sharding measurement over the in-process
// ZLight (AZyzzyva) plane: the same keyed closed-loop workload is run once
// per shard count, so the rows of one run are directly comparable. Shards=1
// exercises the sharded plane in its degenerate configuration, which routes
// exactly like the single-instance path (one leader, one batcher).
type ShardingConfig struct {
	// ShardCounts are the shard counts to sweep (default 1, 4).
	ShardCounts []int
	// Clients is the number of concurrent closed-loop clients (default 24).
	Clients int
	// Pipeline is the per-client pipeline depth (default 4, so one client
	// keeps several shards busy at once).
	Pipeline int
	// Duration is the measured window per shard count (default 1s).
	Duration time.Duration
	// RequestSize is the request payload in bytes, excluding the 8-byte key
	// prefix (default 0).
	RequestSize int
	// KeySpace is the number of distinct keys (default 16× the largest
	// shard count, so hashing spreads evenly).
	KeySpace int
	// MaxBatch is the per-shard batch assembler size (default 16).
	MaxBatch int
	// ReplicaService, when positive, models each replica's per-message
	// service time (host.SetProcessingDelay): every sub-host serializes its
	// message handling at 1/ReplicaService messages per second, as a replica
	// on its own machine would. The in-process cluster shares one machine,
	// so raw rows measure the shared-CPU ceiling; modeled rows make leader
	//*capacity* the measured resource, which is what sharding multiplies (S
	// leaders instead of one). Zero disables the model.
	ReplicaService time.Duration
}

func (c ShardingConfig) withDefaults() ShardingConfig {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 4}
	}
	if c.Clients <= 0 {
		c.Clients = 24
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.KeySpace <= 0 {
		maxShards := 1
		for _, s := range c.ShardCounts {
			if s > maxShards {
				maxShards = s
			}
		}
		c.KeySpace = 16 * maxShards
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	return c
}

// ShardingRow is the measured outcome for one shard count.
type ShardingRow struct {
	Shards        int     `json:"shards"`
	Committed     uint64  `json:"committed"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// MergedSeqMin is the smallest merged global sequence across replicas at
	// the end of the window: evidence the asynchronous execution stage kept
	// consuming the ordered spans off the critical path.
	MergedSeqMin uint64 `json:"merged_seq_min"`
}

// MeasureSharding runs the keyed closed-loop workload once per shard count
// over the sharded ZLight plane and reports throughput and latency per
// configuration. It measures the real implementation end to end: per-shard
// batch assembly and ORDER fan-out under S rotated leaders, speculative
// execution, RESP commit rule, and the asynchronous cross-shard merge.
func MeasureSharding(ctx context.Context, cfg ShardingConfig) ([]ShardingRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]ShardingRow, 0, len(cfg.ShardCounts))
	for _, shards := range cfg.ShardCounts {
		row, err := measureOneShardCount(ctx, cfg, shards)
		if err != nil {
			return rows, fmt.Errorf("experiments: shards=%d: %w", shards, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureOneShardCount(ctx context.Context, cfg ShardingConfig, shards int) (ShardingRow, error) {
	cluster, err := deploy.NewSharded(deploy.Config{
		F:            1,
		NewApp:       func() app.Application { return app.NewNull(0) },
		Composition:  compose.MustNew("azyzzyva", compose.Options{}),
		Delta:        100 * time.Millisecond,
		Batch:        host.BatchPolicy{MaxBatch: cfg.MaxBatch},
		Shards:       shards,
		KeyExtractor: shard.PrefixKeyExtractor(8),
	})
	if err != nil {
		return ShardingRow{}, err
	}
	defer cluster.Stop()
	if cfg.ReplicaService > 0 {
		for _, n := range cluster.Nodes {
			for _, h := range n.Hosts {
				h.SetProcessingDelay(cfg.ReplicaService)
			}
		}
	}

	var clients []*shard.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	var pipeline *core.PipelineOptions
	if cfg.Pipeline > 1 {
		pipeline = &core.PipelineOptions{Depth: cfg.Pipeline}
	}
	res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{
		Clients:     cfg.Clients,
		Duration:    cfg.Duration,
		RequestSize: cfg.RequestSize,
		Pipeline:    cfg.Pipeline,
		KeySpace:    cfg.KeySpace,
	}, func(i int) (workload.Invoker, ids.ProcessID, error) {
		client, err := cluster.NewClient(i, pipeline)
		if err != nil {
			return nil, 0, err
		}
		clients = append(clients, client)
		return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
			return client.Invoke(ctx, req)
		}), ids.Client(i), nil
	})
	if err != nil {
		return ShardingRow{}, err
	}
	row := ShardingRow{
		Shards:        shards,
		Committed:     res.Committed,
		Errors:        res.Errors,
		ThroughputRPS: res.ThroughputOps(),
		P50Ms:         float64(res.Latency.Percentile(0.50).Microseconds()) / 1000,
		P99Ms:         float64(res.Latency.Percentile(0.99).Microseconds()) / 1000,
	}
	for i, n := range cluster.Nodes {
		seq := n.Exec.MergedSeq()
		if i == 0 || seq < row.MergedSeqMin {
			row.MergedSeqMin = seq
		}
	}
	return row, nil
}

// ShardingTable formats measured sharding rows in the experiment table
// format, for human consumption next to the paper's tables.
func ShardingTable(rows []ShardingRow) Table {
	t := Table{
		ID:     "sharding",
		Title:  "Measured ZLight throughput/latency vs shard count (live in-process sharded plane)",
		Header: []string{"shards", "committed", "req/s", "p50 ms", "p99 ms", "merged(min)"},
		Notes:  "Real implementation, keyed 0/0 microbenchmark; rows of one run are directly comparable.",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%.0f", r.ThroughputRPS),
			fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%.2f", r.P99Ms),
			fmt.Sprintf("%d", r.MergedSeqMin),
		})
	}
	return t
}
