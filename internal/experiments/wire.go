package experiments

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
	"testing"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
	"abstractbft/internal/transport/wirecodec"
	"abstractbft/internal/zlight"
)

// WireConfig drives the wire-plane micro-matrix: codec encode/decode cost
// (gob vs the hand-rolled binary codec, pooled streaming vs one-shot
// marshal), MAC-vector strategies (per-receiver full-data MACs vs hash-once
// digest MACs, fresh vs pooled HMAC states), and an end-to-end envelope
// round-trip rate over a real loopback TCP connection per codec.
type WireConfig struct {
	// BatchSize is the number of requests in the representative batched ORDER
	// message the micro rows measure (default 16).
	BatchSize int
	// CommandSize is each request's command payload size (default 64).
	CommandSize int
	// Receivers is the MAC vector width — one entry per replica (default 4,
	// the f=1 cluster).
	Receivers int
	// Duration is the measured window of the end-to-end TCP phase per codec
	// (default 2s).
	Duration time.Duration
	// Pipeline is the number of outstanding round trips in the end-to-end
	// phase (default 64).
	Pipeline int
}

func (c WireConfig) withDefaults() WireConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.CommandSize <= 0 {
		c.CommandSize = 64
	}
	if c.Receivers <= 0 {
		c.Receivers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 64
	}
	return c
}

// WireMicroRow is one measured micro-benchmark configuration.
type WireMicroRow struct {
	// Op is "encode" or "decode"; Variant names the measured configuration
	// (codec + buffer strategy, or the MAC strategy).
	Op          string  `json:"op"`
	Variant     string  `json:"variant"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// WireE2ERow is the end-to-end loopback TCP phase of one codec.
type WireE2ERow struct {
	Codec         string  `json:"codec"`
	RoundTrips    uint64  `json:"round_trips"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// WireResult is the schema of BENCH_wire.json's result field.
type WireResult struct {
	BatchSize   int `json:"batch_size"`
	CommandSize int `json:"command_size"`
	Receivers   int `json:"mac_receivers"`
	// Micro are the codec and MAC micro rows (testing.B under the hood).
	Micro []WireMicroRow `json:"micro"`
	// E2E are the loopback TCP round-trip rates per codec.
	E2E []WireE2ERow `json:"e2e"`
	// EncodeSpeedup and DecodeSpeedup are gob ns/op over binary ns/op for the
	// pooled streaming paths (the TCP writer's configuration).
	EncodeSpeedup float64 `json:"encode_speedup_gob_over_binary"`
	DecodeSpeedup float64 `json:"decode_speedup_gob_over_binary"`
}

// wireEnvelope builds the representative hot-path envelope: a batched ORDER
// multicast with one client authenticator per request.
func wireEnvelope(cfg WireConfig) transport.Envelope {
	cmd := bytes.Repeat([]byte("x"), cfg.CommandSize)
	reqs := make([]msg.Request, cfg.BatchSize)
	auths := make([]authn.Authenticator, cfg.BatchSize)
	for i := range reqs {
		reqs[i] = msg.Request{Client: ids.Client(i), Timestamp: uint64(1000 + i), Command: cmd}
		entries := make([]authn.AuthEntry, cfg.Receivers)
		for j := range entries {
			entries[j] = authn.AuthEntry{Receiver: ids.Replica(j), MAC: authn.MAC{byte(i), byte(j)}}
		}
		auths[i] = authn.Authenticator{Sender: ids.Client(i), Entries: entries}
	}
	return transport.Envelope{
		From: ids.Replica(0),
		To:   ids.Replica(1),
		Payload: &zlight.OrderMessage{
			Instance:   1,
			Batch:      msg.Batch{Requests: reqs},
			Seq:        1 << 33, // past u32 range, so width bugs cannot hide
			Auths:      auths,
			PrimaryMAC: authn.MAC{1, 2, 3},
		},
	}
}

func microRow(op, variant string, f func(b *testing.B)) WireMicroRow {
	r := testing.Benchmark(f)
	return WireMicroRow{
		Op:          op,
		Variant:     variant,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func encodeRow(variant string, codec transport.Codec, env transport.Envelope) WireMicroRow {
	return microRow("encode", variant, func(b *testing.B) {
		enc := codec.NewEncoder(io.Discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&env); err != nil {
				b.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func decodeRow(variant string, codec transport.Codec, env transport.Envelope) WireMicroRow {
	return microRow("decode", variant, func(b *testing.B) {
		const chunk = 256
		var out transport.Envelope
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += chunk {
			n := chunk
			if rem := b.N - done; rem < n {
				n = rem
			}
			b.StopTimer()
			var buf bytes.Buffer
			enc := codec.NewEncoder(&buf)
			for i := 0; i < n; i++ {
				if err := enc.Encode(&env); err != nil {
					b.Fatal(err)
				}
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
			dec := codec.NewDecoder(&buf)
			b.StartTimer()
			for i := 0; i < n; i++ {
				if err := dec.Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// macRows measures the authenticator strategies over the batch's concatenated
// command bytes: the legacy per-receiver full-data MAC loop (O(n·|data|)
// hashing), the hash-once digest path NewAuthenticator uses now (O(|data| +
// n·32)), and the cost of a fresh HMAC construction per MAC as a baseline for
// the pooled states inside the key store.
func macRows(cfg WireConfig, data []byte) []WireMicroRow {
	ks := authn.NewKeyStore("wire-bench")
	sender := ids.Client(0)
	receivers := make([]ids.ProcessID, cfg.Receivers)
	for i := range receivers {
		receivers[i] = ids.Replica(i)
	}
	rows := []WireMicroRow{
		microRow("mac", "full-data-per-receiver", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range receivers {
					_ = ks.MAC(sender, r, data)
				}
			}
		}),
		microRow("mac", "hash-once-digest (pooled hmac)", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ks.NewAuthenticator(sender, receivers, data)
			}
		}),
		microRow("mac", "fresh-hmac-state-per-mac", func(b *testing.B) {
			key := []byte("0123456789abcdef0123456789abcdef")
			d := authn.Hash(data)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for range receivers {
					h := hmac.New(sha256.New, key)
					h.Write(d[:])
					h.Sum(nil)
				}
			}
		}),
	}
	return rows
}

// measureE2E pumps request/response round trips through two real TCP
// endpoints on loopback with the given codec: one side echoes a small RESP
// for every batched ORDER envelope it receives, the driver keeps
// cfg.Pipeline round trips outstanding. The resulting rate is the wire
// plane's envelope round-trip capacity — framing, coalescing, handshake, and
// kernel included, protocol logic excluded.
func measureE2E(ctx context.Context, cfg WireConfig, name string, codec transport.Codec) (WireE2ERow, error) {
	row := WireE2ERow{Codec: name}
	keys := authn.NewKeyStore("wire-bench")
	addrsA := map[ids.ProcessID]string{ids.Replica(0): "127.0.0.1:0"}
	a, err := transport.NewTCPCodec(ids.Replica(0), addrsA, keys, codec)
	if err != nil {
		return row, err
	}
	defer a.Close()
	addrsB := map[ids.ProcessID]string{ids.Replica(0): a.Addr(), ids.Replica(1): "127.0.0.1:0"}
	b, err := transport.NewTCPCodec(ids.Replica(1), addrsB, keys, codec)
	if err != nil {
		return row, err
	}
	defer b.Close()
	if err := b.Prime(ctx, []ids.ProcessID{ids.Replica(0)}); err != nil {
		return row, err
	}

	req := wireEnvelope(cfg).Payload
	// Echo side: a small RESP per ORDER — the reply shape a client-visible
	// commit needs, so the measured round trip carries one big and one small
	// envelope like the real request path.
	resp := &core.RespMessage{
		Instance:      1,
		Replica:       ids.Replica(0),
		Client:        ids.Replica(1),
		Timestamp:     1,
		Reply:         []byte("ok"),
		ReplyDigest:   authn.Hash([]byte("ok")),
		HistoryDigest: authn.Hash([]byte("h")),
		HistoryLen:    1,
	}
	go func() {
		for env := range a.Inbox() {
			if _, ok := env.Payload.(*zlight.OrderMessage); ok {
				a.Send(env.From, resp)
			}
		}
	}()

	deadline := time.After(cfg.Duration)
	var done uint64
	start := time.Now()
	for i := 0; i < cfg.Pipeline; i++ {
		b.Send(ids.Replica(0), req)
	}
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ctx.Done():
			break loop
		case _, ok := <-b.Inbox():
			if !ok {
				break loop
			}
			done++
			b.Send(ids.Replica(0), req)
		}
	}
	elapsed := time.Since(start)
	row.RoundTrips = done
	if elapsed > 0 {
		row.ThroughputRPS = float64(done) / elapsed.Seconds()
	}
	return row, nil
}

// MeasureWire runs the wire micro-matrix.
func MeasureWire(ctx context.Context, cfg WireConfig) (WireResult, error) {
	cfg = cfg.withDefaults()
	res := WireResult{BatchSize: cfg.BatchSize, CommandSize: cfg.CommandSize, Receivers: cfg.Receivers}
	env := wireEnvelope(cfg)

	gob := transport.GobCodec()
	bin := wirecodec.Binary()
	encGob := encodeRow("gob (streaming)", gob, env)
	encBin := encodeRow("binary (pooled streaming)", bin, env)
	encOneShot := microRow("encode", "binary (one-shot marshal, unpooled output)", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wirecodec.MarshalWire(env.Payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	decGob := decodeRow("gob (streaming)", gob, env)
	decBin := decodeRow("binary (pooled streaming)", bin, env)
	res.Micro = append(res.Micro, encGob, encBin, encOneShot, decGob, decBin)

	macData := bytes.Repeat([]byte("y"), cfg.BatchSize*cfg.CommandSize)
	res.Micro = append(res.Micro, macRows(cfg, macData)...)

	if encBin.NsPerOp > 0 {
		res.EncodeSpeedup = encGob.NsPerOp / encBin.NsPerOp
	}
	if decBin.NsPerOp > 0 {
		res.DecodeSpeedup = decGob.NsPerOp / decBin.NsPerOp
	}

	for _, c := range []struct {
		name  string
		codec transport.Codec
	}{{"gob", gob}, {"binary", bin}} {
		row, err := measureE2E(ctx, cfg, c.name, c.codec)
		if err != nil {
			return res, fmt.Errorf("experiments: wire e2e %s: %w", c.name, err)
		}
		res.E2E = append(res.E2E, row)
	}
	return res, nil
}

// WireTable formats the micro-matrix.
func WireTable(res WireResult) Table {
	t := Table{
		ID:     "wire",
		Title:  fmt.Sprintf("Wire plane micro-matrix (batch=%d, cmd=%dB, %d MAC receivers)", res.BatchSize, res.CommandSize, res.Receivers),
		Header: []string{"op", "variant", "ns/op", "allocs/op", "B/op"},
		Notes: fmt.Sprintf("Encode speedup gob→binary %.1fx, decode %.1fx (pooled streaming paths).",
			res.EncodeSpeedup, res.DecodeSpeedup),
	}
	for _, r := range res.Micro {
		t.Rows = append(t.Rows, []string{
			r.Op, r.Variant,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp),
		})
	}
	for _, e := range res.E2E {
		t.Rows = append(t.Rows, []string{
			"e2e-tcp", e.Codec,
			fmt.Sprintf("%.0f rps", e.ThroughputRPS),
			"-", "-",
		})
	}
	return t
}
