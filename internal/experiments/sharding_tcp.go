package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/proccluster"
	"abstractbft/internal/workload"
)

// ShardingTCPConfig drives the multi-process sharded measurement: a
// 4-replica sharded KV cluster as real cmd/replica OS processes on loopback
// TCP (spawned through internal/proccluster), a keyed closed-loop workload
// through real shard clients, a SIGKILL of one replica process mid-run, and
// a -recover restart. It is the deployment-fidelity counterpart of
// MeasureSharding/MeasureRecovery: same protocols, but across real process
// and socket boundaries.
type ShardingTCPConfig struct {
	// Shards is the number of parallel ordering shards (default 2).
	Shards int
	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Pipeline is the per-shard client pipeline depth (default 2).
	Pipeline int
	// Duration is the measured window per phase (default 1s).
	Duration time.Duration
	// KeySpace is the number of distinct KV keys (default 64).
	KeySpace int
	// Dir is the working directory for binaries, topology, and logs
	// (default: a fresh temp dir).
	Dir string
	// Codec is the wire codec the deployment frames its TCP streams with
	// ("binary" or "gob"; empty = the topology default, binary).
	Codec string
}

func (c ShardingTCPConfig) withDefaults() ShardingTCPConfig {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 2
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 64
	}
	return c
}

// ShardingTCPRow is one measured phase of the process-level run.
type ShardingTCPRow struct {
	// Phase is "pre-crash" (all four replica processes live) or
	// "post-restart" (after the SIGKILL + -recover cycle).
	Phase string `json:"phase"`
	// Codec records the wire codec the phase ran over, so benchmark
	// trajectories across codec changes stay attributable.
	Codec         string  `json:"codec"`
	Committed     uint64  `json:"committed"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// ShardingTCPResult is the outcome of one process-level run.
type ShardingTCPResult struct {
	Shards int `json:"shards"`
	// Codec is the wire codec of the whole run (also recorded per row).
	Codec string `json:"codec"`
	// Rows are the pre-crash and post-restart workload windows; committing
	// at a comparable rate after the restart is the acceptance signal that
	// the recovered process serves at full rate again (per-shard ZLight
	// commits need all 3f+1 replicas, so every post-restart commit includes
	// the restarted one).
	Rows []ShardingTCPRow `json:"rows"`
	// CatchUpMs is the time from restarting the killed replica process (with
	// -recover) to the first committed request — boundary collection, merged
	// restore, per-shard FETCH-STATE transfer over TCP, and the resumed
	// all-replica commit path included.
	CatchUpMs float64 `json:"catch_up_ms"`
	// PostOverPre is the post-restart / pre-crash throughput ratio.
	PostOverPre float64 `json:"post_over_pre_throughput"`
}

// MeasureShardingTCP runs the process-level sharded deployment end to end
// and measures it. The replica plane runs as real OS processes; the workload
// clients run in-process over real TCP (they are indistinguishable from
// cmd/client processes at the replicas).
func MeasureShardingTCP(ctx context.Context, cfg ShardingTCPConfig) (ShardingTCPResult, error) {
	cfg = cfg.withDefaults()
	topo := topologyForBench(cfg)
	codecName := topo.Codec
	if codecName == "" {
		codecName = "binary"
	}
	res := ShardingTCPResult{Shards: cfg.Shards, Codec: codecName}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "abstractbft-sharding-tcp")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
	}
	cluster, err := proccluster.Start(proccluster.Config{
		Dir:      dir,
		Topology: topo,
	})
	if err != nil {
		return res, err
	}
	defer cluster.StopAll()

	runPhase := func(phase string, firstClient int) (ShardingTCPRow, error) {
		var eps []interface{ Close() }
		defer func() {
			for _, ep := range eps {
				ep.Close()
			}
		}()
		wres, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{
			Clients:   cfg.Clients,
			Duration:  cfg.Duration,
			Pipeline:  cfg.Pipeline,
			CommandOf: workload.KVPutCommandOf(0, cfg.KeySpace),
		}, func(i int) (workload.Invoker, ids.ProcessID, error) {
			ep, v, err := cluster.NewVerifier(firstClient+i, cfg.Pipeline)
			if err != nil {
				return nil, 0, err
			}
			eps = append(eps, ep, v)
			return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
				return v.Client.Invoke(ctx, req)
			}), v.ID, nil
		})
		if err != nil {
			return ShardingTCPRow{}, fmt.Errorf("experiments: %s window: %w", phase, err)
		}
		return ShardingTCPRow{
			Phase:         phase,
			Codec:         codecName,
			Committed:     wres.Committed,
			Errors:        wres.Errors,
			ThroughputRPS: wres.ThroughputOps(),
			P50Ms:         float64(wres.Latency.Percentile(0.50).Microseconds()) / 1000,
			P99Ms:         float64(wres.Latency.Percentile(0.99).Microseconds()) / 1000,
		}, nil
	}

	pre, err := runPhase("pre-crash", 0)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, pre)

	// SIGKILL one replica process and restart it with -recover; the catch-up
	// time is measured to the first commit a probe client gets (which needs
	// all 3f+1 replicas, the restarted process included).
	if err := cluster.KillReplica(3); err != nil {
		return res, err
	}
	restartAt := time.Now()
	if err := cluster.StartReplica(3, true); err != nil {
		return res, err
	}
	probeEp, probe, err := cluster.NewVerifier(900, 0)
	if err != nil {
		return res, err
	}
	probeCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	_, err = probe.Put(probeCtx, "catch-up-probe", "committed")
	cancel()
	probe.Close()
	probeEp.Close()
	if err != nil {
		return res, fmt.Errorf("experiments: no commit after restart: %w", err)
	}
	res.CatchUpMs = float64(time.Since(restartAt).Microseconds()) / 1000

	post, err := runPhase("post-restart", cfg.Clients)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, post)
	if pre.ThroughputRPS > 0 {
		res.PostOverPre = post.ThroughputRPS / pre.ThroughputRPS
	}
	return res, nil
}

// topologyForBench is the deployment the measurement runs: sharded KV over
// authenticated TCP with short checkpoints (so the restart goes through real
// snapshot transfer) and a client delta generous enough that the
// kill-to-recover window stalls clients instead of switching instances.
func topologyForBench(cfg ShardingTCPConfig) deploy.Topology {
	return deploy.Topology{
		F:                  1,
		Shards:             cfg.Shards,
		Composition:        "azyzzyva",
		KeyExtractor:       "kv",
		App:                "kv",
		ShardEpoch:         1,
		CheckpointInterval: 8,
		DeltaMs:            3000,
		Pipeline:           cfg.Pipeline,
		Codec:              cfg.Codec,
	}
}

// ShardingTCPTable formats the process-level rows.
func ShardingTCPTable(res ShardingTCPResult) Table {
	t := Table{
		ID:     "sharding-tcp",
		Title:  fmt.Sprintf("Multi-process sharded KV over TCP (shards=%d, codec=%s, real cmd/replica processes, SIGKILL + -recover)", res.Shards, res.Codec),
		Header: []string{"phase", "codec", "committed", "req/s", "p50 ms", "p99 ms"},
		Notes:  fmt.Sprintf("Crash-restart catch-up %.1f ms to first post-restart commit; post/pre throughput %.2fx.", res.CatchUpMs, res.PostOverPre),
	}
	for _, r := range res.Rows {
		t.Rows = append(t.Rows, []string{
			r.Phase,
			r.Codec,
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%.0f", r.ThroughputRPS),
			fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%.2f", r.P99Ms),
		})
	}
	return t
}
