package experiments

import (
	"context"
	"fmt"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/obs"
	"abstractbft/internal/workload"
)

// MetricsOverheadConfig drives the observability-overhead measurement: the
// same closed-loop workload runs alternately against an uninstrumented
// cluster (nil registry — the metric hot paths reduce to one nil check) and a
// fully instrumented one (registry plus lifecycle tracer), so the reported
// overhead isolates the cost of recording itself.
type MetricsOverheadConfig struct {
	// Spec is the switching schedule to measure under (default
	// "quorum-backup" — the quorum fast path is the latency-critical hot path
	// instrumentation must not tax).
	Spec string
	// Clients is the number of concurrent closed-loop clients (default 4).
	Clients int
	// Duration is the measured window per run (default 1s).
	Duration time.Duration
	// Reps is how many times each mode runs; the best run of each mode is
	// compared, since scheduling noise only ever slows a run down (default 3).
	Reps int
	// TraceSampleRate is the instrumented runs' lifecycle-tracer rate
	// (default 128, matching the deployment default).
	TraceSampleRate int
}

func (c MetricsOverheadConfig) withDefaults() MetricsOverheadConfig {
	if c.Spec == "" {
		c.Spec = "quorum-backup"
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.TraceSampleRate <= 0 {
		c.TraceSampleRate = 128
	}
	return c
}

// MetricsOverheadRow is the measured cost of the observability plane on the
// in-process quorum path, alongside the instrumented run's own internal
// counters (the registry snapshot benchrunner records next to external
// throughput).
type MetricsOverheadRow struct {
	Composition string `json:"composition"`
	// BaselineRPS and InstrumentedRPS are the best runs of each mode.
	BaselineRPS     float64 `json:"baseline_rps"`
	InstrumentedRPS float64 `json:"instrumented_rps"`
	// OverheadPct is (baseline-instrumented)/baseline*100 (negative = the
	// instrumented run was faster, i.e. the difference is noise).
	OverheadPct float64 `json:"overhead_pct"`
	// Counters is the instrumented best run's internal counter snapshot.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// MeasureMetricsOverhead measures the observability plane's hot-path cost:
// Reps runs per mode, alternating, best-vs-best.
func MeasureMetricsOverhead(ctx context.Context, cfg MetricsOverheadConfig) (MetricsOverheadRow, error) {
	cfg = cfg.withDefaults()
	row := MetricsOverheadRow{Composition: cfg.Spec}
	for i := 0; i < cfg.Reps; i++ {
		base, _, err := runOverheadOnce(ctx, cfg, false)
		if err != nil {
			return row, fmt.Errorf("experiments: overhead baseline: %w", err)
		}
		inst, snap, err := runOverheadOnce(ctx, cfg, true)
		if err != nil {
			return row, fmt.Errorf("experiments: overhead instrumented: %w", err)
		}
		if base > row.BaselineRPS {
			row.BaselineRPS = base
		}
		if inst > row.InstrumentedRPS {
			row.InstrumentedRPS = inst
			row.Counters = snap.Counters
		}
	}
	if row.BaselineRPS > 0 {
		row.OverheadPct = (row.BaselineRPS - row.InstrumentedRPS) / row.BaselineRPS * 100
	}
	return row, nil
}

// runOverheadOnce runs the closed-loop workload once against a fresh cluster,
// instrumented or not, and returns the throughput (and, when instrumented,
// the registry snapshot at the end of the run).
func runOverheadOnce(ctx context.Context, cfg MetricsOverheadConfig, instrumented bool) (float64, obs.Snapshot, error) {
	comp, err := compose.New(compose.MustParse(cfg.Spec), compose.Options{})
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	var reg *obs.Registry
	// clientTracer makes the head-sampling decision the real client makes:
	// one request in every TraceSampleRate gets a trace context stamped on it,
	// so the instrumented run pays the full traced path — the per-request
	// sampling check, the wire trace block, and the replica-side span records.
	var clientTracer *obs.Tracer
	if instrumented {
		reg = obs.NewRegistry()
		clientTracer = obs.NewTracer(reg, cfg.TraceSampleRate)
	}
	cluster, err := deploy.New(deploy.Config{
		F:           1,
		NewApp:      func() app.Application { return app.NewNull(0) },
		Composition: comp,
		Delta:       100 * time.Millisecond,
		Metrics:     reg,
		Tracer:      obs.NewTracer(reg, cfg.TraceSampleRate),
	})
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	defer cluster.Stop()

	res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{
		Clients:  cfg.Clients,
		Duration: cfg.Duration,
	}, func(i int) (workload.Invoker, ids.ProcessID, error) {
		client, err := cluster.NewClient(i)
		if err != nil {
			return nil, 0, err
		}
		return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
			if tc := clientTracer.NewTrace(); tc.Sampled() {
				req.Trace = obs.TraceContext{TraceID: tc.TraceID, Parent: tc.TraceID}
				start := time.Now()
				out, err := client.Invoke(ctx, req)
				clientTracer.Record(tc, obs.StageSend, 0, start, time.Since(start))
				return out, err
			}
			return client.Invoke(ctx, req)
		}), ids.Client(i), nil
	})
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	var snap obs.Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	}
	return res.ThroughputOps(), snap, nil
}
