package experiments

import (
	"context"
	"fmt"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/workload"
)

// BatchingConfig drives a live batching measurement over the in-process
// ZLight (AZyzzyva) cluster: the same closed-loop workload is run once per
// batch size, so the rows of one run are directly comparable.
type BatchingConfig struct {
	// BatchSizes are the MaxBatch values to sweep (default 1, 16, 64).
	BatchSizes []int
	// Clients is the number of concurrent closed-loop clients (default 24).
	Clients int
	// Pipeline is the per-client pipeline depth (default 1).
	Pipeline int
	// Duration is the measured window per batch size (default 1s).
	Duration time.Duration
	// RequestSize is the request payload in bytes (default 0, the 0/0
	// microbenchmark).
	RequestSize int
}

func (c BatchingConfig) withDefaults() BatchingConfig {
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{1, 16, 64}
	}
	if c.Clients <= 0 {
		c.Clients = 24
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	return c
}

// BatchingRow is the measured outcome for one batch size.
type BatchingRow struct {
	MaxBatch      int     `json:"max_batch"`
	Committed     uint64  `json:"committed"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// MeasureBatching runs the closed-loop ZLight workload once per batch size
// and reports throughput and latency per configuration. It measures the real
// implementation end to end (client authenticators, batch assembly, ORDER
// fan-out, speculative execution, RESP commit rule), not the performance
// model.
func MeasureBatching(ctx context.Context, cfg BatchingConfig) ([]BatchingRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]BatchingRow, 0, len(cfg.BatchSizes))
	for _, maxBatch := range cfg.BatchSizes {
		row, err := measureOneBatchSize(ctx, cfg, maxBatch)
		if err != nil {
			return rows, fmt.Errorf("experiments: batch size %d: %w", maxBatch, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureOneBatchSize(ctx context.Context, cfg BatchingConfig, maxBatch int) (BatchingRow, error) {
	cluster, err := deploy.New(deploy.Config{
		F:           1,
		NewApp:      func() app.Application { return app.NewNull(0) },
		Composition: compose.MustNew("azyzzyva", compose.Options{}),
		Delta:       100 * time.Millisecond,
		Batch:       host.BatchPolicy{MaxBatch: maxBatch},
	})
	if err != nil {
		return BatchingRow{}, err
	}
	defer cluster.Stop()

	var pipelined []*core.PipelinedComposer
	defer func() {
		for _, c := range pipelined {
			c.Close()
		}
	}()
	res, err := workload.RunClosedLoop(ctx, workload.ClosedLoopConfig{
		Clients:     cfg.Clients,
		Duration:    cfg.Duration,
		RequestSize: cfg.RequestSize,
		Pipeline:    cfg.Pipeline,
	}, func(i int) (workload.Invoker, ids.ProcessID, error) {
		id := ids.Client(i)
		if cfg.Pipeline > 1 {
			client, err := cluster.NewPipelinedClient(i, core.PipelineOptions{Depth: cfg.Pipeline})
			if err != nil {
				return nil, 0, err
			}
			pipelined = append(pipelined, client)
			return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
				return client.Invoke(ctx, req)
			}), id, nil
		}
		client, err := cluster.NewClient(i)
		if err != nil {
			return nil, 0, err
		}
		return workload.InvokerFunc(func(ctx context.Context, req msg.Request) ([]byte, error) {
			return client.Invoke(ctx, req)
		}), id, nil
	})
	if err != nil {
		return BatchingRow{}, err
	}
	return BatchingRow{
		MaxBatch:      maxBatch,
		Committed:     res.Committed,
		Errors:        res.Errors,
		ThroughputRPS: res.ThroughputOps(),
		P50Ms:         float64(res.Latency.Percentile(0.50).Microseconds()) / 1000,
		P99Ms:         float64(res.Latency.Percentile(0.99).Microseconds()) / 1000,
	}, nil
}

// BatchingTable formats measured batching rows in the experiment table
// format, for human consumption next to the paper's tables.
func BatchingTable(rows []BatchingRow) Table {
	t := Table{
		ID:     "batching",
		Title:  "Measured ZLight throughput/latency vs batch size (live in-process cluster)",
		Header: []string{"MaxBatch", "committed", "req/s", "p50 ms", "p99 ms"},
		Notes:  "Real implementation, 0/0 microbenchmark; rows of one run are directly comparable.",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.MaxBatch),
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%.0f", r.ThroughputRPS),
			fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%.2f", r.P99Ms),
		})
	}
	return t
}
