package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsProduceRows(t *testing.T) {
	r := NewRunner()
	all := r.All()
	if len(all) != 16 {
		t.Fatalf("expected 16 experiments (every table and figure), got %d", len(all))
	}
	seen := map[string]bool{}
	for _, tab := range all {
		if tab.ID == "" || tab.Title == "" {
			t.Errorf("experiment with empty id/title: %+v", tab)
		}
		if seen[tab.ID] {
			t.Errorf("duplicate experiment id %s", tab.ID)
		}
		seen[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("experiment %s: row width %d != header width %d", tab.ID, len(row), len(tab.Header))
			}
		}
		if out := tab.Format(); !strings.Contains(out, tab.ID) {
			t.Errorf("formatted output of %s does not mention its id", tab.ID)
		}
	}
	for _, id := range []string{"table1", "table2", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table3", "table4", "table5", "fig17", "fig18"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	r := NewRunner()
	if _, ok := r.ByID("fig11"); !ok {
		t.Fatalf("fig11 not found")
	}
	if _, ok := r.ByID("nope"); ok {
		t.Fatalf("unknown experiment found")
	}
	if len(r.IDs()) != 16 {
		t.Fatalf("IDs() returned %d entries", len(r.IDs()))
	}
}

func TestTable2AllImprovementsPositive(t *testing.T) {
	tab := NewRunner().Table2()
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatalf("cell %q not a percentage: %v", cell, err)
			}
			if v <= 0 {
				t.Errorf("Aliph latency improvement %q is not positive (protocol %s)", cell, row[0])
			}
		}
	}
}

func TestFig11AliphDominatesWithLargeRequests(t *testing.T) {
	tab := NewRunner().Fig11()
	last := tab.Rows[len(tab.Rows)-1]
	aliph, _ := strconv.ParseFloat(last[1], 64)
	zyz, _ := strconv.ParseFloat(last[2], 64)
	pbft, _ := strconv.ParseFloat(last[3], 64)
	if aliph < 2.5*zyz || aliph < 2.5*pbft {
		t.Errorf("4/0 peak: Aliph %v should be well above Zyzzyva %v and PBFT %v", aliph, zyz, pbft)
	}
}

func TestTable4AardvarkDegradesLeast(t *testing.T) {
	tab := NewRunner().Table4()
	// Rows: Spinning, Prime, Aardvark; columns: protocol, none, then attacks.
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.Fields(cell)[0], 64)
		return v
	}
	var aardvark, spinning []float64
	for _, row := range tab.Rows {
		vals := make([]float64, 0, len(row)-1)
		for _, c := range row[1:] {
			vals = append(vals, parse(c))
		}
		switch row[0] {
		case "Aardvark":
			aardvark = vals
		case "Spinning":
			spinning = vals
		}
	}
	if len(aardvark) == 0 || len(spinning) == 0 {
		t.Fatalf("missing rows in table4")
	}
	for i := 1; i < len(aardvark); i++ {
		ratioA := aardvark[i] / aardvark[0]
		ratioS := spinning[i] / spinning[0]
		if ratioA < ratioS {
			t.Errorf("attack column %d: Aardvark retains %.2f of its throughput, Spinning %.2f — Aardvark should degrade least", i, ratioA, ratioS)
		}
	}
}
