// Package e2e holds the process-level end-to-end tests: real cmd/replica and
// cmd/client OS processes on loopback TCP, driven through the same binaries
// and topology files an operator deploys. This is the deployment fidelity the
// in-process harnesses cannot give — separate address spaces, real sockets
// with the connection handshake, SIGKILL crashes, and -recover rejoins.
package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/deploy"
	"abstractbft/internal/obs"
	"abstractbft/internal/obsctl"
	"abstractbft/internal/proccluster"
)

// dumpLogs attaches every process log to the test output (failure
// diagnostics).
func dumpLogs(t *testing.T, cluster *proccluster.Cluster) {
	t.Helper()
	entries, _ := os.ReadDir(cluster.Dir)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".log") {
			continue
		}
		data, _ := os.ReadFile(cluster.Dir + "/" + e.Name())
		t.Logf("=== %s ===\n%s", e.Name(), data)
	}
}

// sharedBins builds the replica/client binaries once per test process.
var (
	binOnce    sync.Once
	binDir     string
	replicaBin string
	clientBin  string
	binErr     error
)

func buildBins(t *testing.T) (string, string) {
	t.Helper()
	binOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "abstractbft-e2e-bin")
		if binErr != nil {
			return
		}
		replicaBin, clientBin, binErr = proccluster.BuildBinaries(binDir)
	})
	if binErr != nil {
		t.Fatalf("building binaries: %v", binErr)
	}
	return replicaBin, clientBin
}

// testTopology is the 4-replica sharded KV deployment the process tests run:
// two shards (so the crash-restart exercises the multi-shard pin race),
// short checkpoints (so recovery goes through real snapshot transfer), and a
// client delta generous enough that the kill-to-recover window stalls
// clients instead of panicking them into instance switches.
func testTopology() deploy.Topology {
	return deploy.Topology{
		F:                  1,
		Shards:             2,
		Composition:        "azyzzyva",
		KeyExtractor:       "kv",
		App:                "kv",
		ShardEpoch:         1,
		CheckpointInterval: 8,
		// The kill-to-recovered window (a second or two, more on a loaded CI
		// box) must stay well inside the clients' panic timers, or the
		// composition switches instances mid-outage and the run degrades
		// through Backup k-cycles instead of resuming at full rate.
		DeltaMs:  8000,
		Pipeline: 2,
		// Head-sample every request: the stitched-trace assertions below need
		// deterministic span coverage, and the e2e workload is tiny.
		TraceSampleRate: 1,
	}
}

func startCluster(t *testing.T) *proccluster.Cluster {
	t.Helper()
	rb, cb := buildBins(t)
	cluster, err := proccluster.Start(proccluster.Config{
		Dir:        t.TempDir(),
		Topology:   testTopology(),
		ReplicaBin: rb,
		ClientBin:  cb,
	})
	if err != nil {
		t.Fatalf("starting process cluster: %v", err)
	}
	t.Cleanup(cluster.StopAll)
	return cluster
}

// clientPorts reserves a listen-port base for one cmd/client process so
// concurrent tests do not collide on the default base.
func clientPorts(t *testing.T, n int) int {
	t.Helper()
	ports, err := proccluster.FreePorts(n)
	if err != nil {
		t.Fatalf("reserving client ports: %v", err)
	}
	return ports[0]
}

// TestProcessShardedClusterSmoke is the -short-friendly smoke: a 4-replica
// sharded KV cluster as real OS processes over authenticated TCP, a real
// cmd/client process committing a keyed workload against it, and an in-test
// verifier reading a written key back.
func TestProcessShardedClusterSmoke(t *testing.T) {
	cluster := startCluster(t)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	out, err := cluster.RunClient(ctx, "-clients", "2", "-requests", "40",
		"-listen-base", fmt.Sprint(clientPorts(t, 2)))
	if err != nil {
		t.Fatalf("client process failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "committed 80 requests") {
		t.Fatalf("client process did not commit the full workload:\n%s", out)
	}

	ep, v, err := cluster.NewVerifier(90, 0)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ep.Close()
	defer v.Close()
	// Head-sample the verifier's requests (rate 1 from the test topology):
	// each put/get below stamps a trace context that rides the wire, so the
	// replica processes record spans for it in their own address spaces.
	spans := obs.NewSpanRing("verifier-90", 0)
	v.Client.SetTracer(obs.NewTracerRing(obs.NewRegistry(), cluster.Topo.TraceRate(), spans))
	if _, err := v.Put(ctx, "smoke", "works"); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, _, err := v.Get(ctx, "smoke")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got != "works" {
		t.Fatalf("get returned %q, want %q", got, "works")
	}

	// Observability front door: every replica process serves Prometheus text
	// on its topology-assigned metrics address, and a cluster that just
	// committed a workload must show non-zero core series from every layer.
	for _, series := range []string{
		"host_logged_requests_total",
		"transport_frames_total",
		"shard_merged_requests_total",
		"authn_mac_ops_total",
		"compose_active_protocol",
	} {
		if err := assertSeriesNonZero(cluster.MetricsAddr(0), series); err != nil {
			dumpLogs(t, cluster)
			t.Fatalf("replica 0 /metrics: %v", err)
		}
	}
	// The JSON snapshot front door serves the same registry.
	snap, err := fetchSnapshot(cluster.MetricsAddr(0))
	if err != nil {
		t.Fatalf("replica 0 /metrics.json: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatalf("replica 0 /metrics.json returned no counters")
	}

	// Distributed tracing, stitched cluster-wide: scrape every replica
	// process's span ring over HTTP, add the in-test verifier's own ring (the
	// cmd/client process has already exited), and stitch. At least one trace
	// must span three or more OS processes — the verifier plus two replicas —
	// proving the context propagated across real sockets.
	dumps := scrapeCluster(cluster)
	dumps = append(dumps, obsctl.ProcessDump{Addr: "in-test", Process: "verifier-90", Traces: spans.Dump()})
	traces := obsctl.Stitch(dumps)
	if len(traces) == 0 {
		dumpLogs(t, cluster)
		t.Fatalf("no stitched traces: verifier ring %d spans", len(spans.Snapshot()))
	}
	var wide *obsctl.Trace
	for _, tr := range traces {
		if tr.Covers(3) && tr.HasStage("send") && tr.HasStage("execute") {
			wide = tr
			break
		}
	}
	if wide == nil {
		var b strings.Builder
		obsctl.WriteTraces(&b, traces, 10)
		t.Fatalf("no trace spans 3+ processes with send+execute stages:\n%s", b.String())
	}

	// The protocol flight recorder: a run that committed checkpoints must
	// have recorded events on every replica's black box.
	for i, d := range dumps[:cluster.Topo.Cluster().N] {
		if d.Err != nil {
			t.Fatalf("replica %d flight scrape: %v", i, d.Err)
		}
		if len(d.Flight.Events) == 0 {
			t.Fatalf("replica %d flight recorder is empty after a checkpointing run", i)
		}
	}

	// The health plane obsctl renders: no replica may diverge from the f+1
	// majority on active protocol, and the quiesced cluster agrees on applied
	// sequence within the scrape slack.
	healths := obsctl.HealthAll(dumps[:cluster.Topo.Cluster().N])
	if flags := obsctl.Divergence(healths, cluster.Topo.F, 64); len(flags) != 0 {
		var b strings.Builder
		obsctl.WriteHealthTable(&b, healths)
		t.Fatalf("healthy cluster flagged as diverged: %v\n%s", flags, b.String())
	}
}

// scrapeCluster scrapes every replica's observability front door.
func scrapeCluster(cluster *proccluster.Cluster) []obsctl.ProcessDump {
	n := cluster.Topo.Cluster().N
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = cluster.MetricsAddr(i)
	}
	return obsctl.ScrapeAll(addrs, 5*time.Second)
}

// assertSeriesNonZero scrapes http://addr/metrics and checks that at least
// one sample of the family has a non-zero value.
func assertSeriesNonZero(addr, family string) error {
	if addr == "" {
		return fmt.Errorf("no metrics address assigned")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, family) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		found = true
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil && v != 0 {
			return nil
		}
	}
	if !found {
		return fmt.Errorf("series %s absent from exposition:\n%s", family, body)
	}
	return fmt.Errorf("series %s present but all samples are zero:\n%s", family, body)
}

// fetchSnapshot reads the JSON snapshot endpoint.
func fetchSnapshot(addr string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// TestProcessShardedCrashRestart is the crash-restart e2e over real
// processes: a keyed KV workload runs through a cmd/client process while one
// replica process is SIGKILLed mid-run and restarted with -recover. The
// restarted process must collect the f+1-agreed merged boundary from its
// peers, state-sync every shard over TCP, and serve commits again — and
// because per-shard ZLight commits require matching RESPs from all 3f+1
// replicas, every post-restart commit certifies the restarted process's
// digest convergence end to end. The test also asserts cached-reply
// correctness across the restart: a retransmission of a pre-kill request
// must return the original reply even after the key was overwritten.
func TestProcessShardedCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash-restart e2e is skipped in -short mode")
	}
	cluster := startCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	ep, v, err := cluster.NewVerifier(90, 0)
	if err != nil {
		t.Fatalf("verifier: %v", err)
	}
	defer ep.Close()
	defer v.Close()
	spans := obs.NewSpanRing("verifier-90", 0)
	v.Client.SetTracer(obs.NewTracerRing(obs.NewRegistry(), cluster.Topo.TraceRate(), spans))

	// Pre-kill state: a canary key and a committed read whose reply the
	// cluster must later serve from cache.
	if _, err := v.Put(ctx, "canary", "before-crash"); err != nil {
		t.Fatalf("pre-kill put: %v", err)
	}
	cachedVal, cachedTS, err := v.Get(ctx, "canary")
	if err != nil {
		t.Fatalf("pre-kill get: %v", err)
	}
	if cachedVal != "before-crash" {
		t.Fatalf("pre-kill get returned %q", cachedVal)
	}

	// Background workload through a real cmd/client process. It keeps
	// committing while the replica is down (stalling, not failing, thanks to
	// the generous delta) and must finish with every request committed.
	workload, err := cluster.StartClient("-clients", "2", "-requests", "3000",
		"-listen-base", fmt.Sprint(clientPorts(t, 2)))
	if err != nil {
		t.Fatalf("starting workload client: %v", err)
	}

	// SIGKILL replica 3 mid-run and restart it with -recover.
	time.Sleep(1500 * time.Millisecond)
	if err := cluster.KillReplica(3); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := cluster.StartReplica(3, true); err != nil {
		t.Fatalf("restart: %v", err)
	}

	// Convergence: a commit requires all 3f+1 replicas, so the first
	// successful post-restart put proves the restarted process caught up via
	// the statesync transfer and answers with converged digests. Each probe
	// gets a budget covering several panic/switch cycles — a shorter one
	// would abandon invocations mid-switch and livelock the composer through
	// ever-higher instances.
	probeDeadline := time.Now().Add(100 * time.Second)
	for {
		probeCtx, probeCancel := context.WithTimeout(ctx, 30*time.Second)
		_, err := v.Put(probeCtx, "post-restart", "committed")
		probeCancel()
		if err == nil {
			break
		}
		if time.Now().After(probeDeadline) {
			dumpLogs(t, cluster)
			t.Fatalf("no commit after restart: %v", err)
		}
	}

	// Flight-recorder acceptance, scraped NOW: the restarted replica just
	// state-synced, so its (fresh) flight ring still holds the
	// statesync-start/adopt events near its head. Scraping at test end would
	// race the 3000-request workload's checkpoint/GC events evicting them
	// from the bounded ring.
	sawStatesync := false
	for i, d := range scrapeCluster(cluster) {
		if d.Err != nil {
			t.Fatalf("replica %d flight scrape: %v", i, d.Err)
		}
		for _, e := range d.Flight.Events {
			if strings.HasPrefix(e.Kind, "statesync") {
				sawStatesync = true
			}
		}
	}
	if !sawStatesync {
		dumpLogs(t, cluster)
		t.Fatal("no replica's flight recorder captured the statesync recovery")
	}

	// The workload process must finish every request (exit status 0).
	done := make(chan error, 1)
	go func() { done <- workload.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			log, _ := os.ReadFile(workload.LogPath)
			t.Fatalf("workload client: %v\n%s", err, log)
		}
	case <-time.After(240 * time.Second):
		workload.Kill()
		log, _ := os.ReadFile(workload.LogPath)
		dumpLogs(t, cluster)
		t.Fatalf("workload client did not finish\n%s", log)
	}

	// Cached-reply correctness across the restart: overwrite the canary,
	// then retransmit the pre-kill read at its original timestamp. The reply
	// rings (restored on the recovered replica via the snapshot's timestamp
	// windows and reply caches of the live ones) must serve the original
	// value, not re-execute the read against the new state.
	if _, err := v.Put(ctx, "canary", "after-restart"); err != nil {
		t.Fatalf("overwrite put: %v", err)
	}
	reCtx, reCancel := context.WithTimeout(ctx, 30*time.Second)
	replay, err := v.Reinvoke(reCtx, cachedTS, app.EncodeKVGet("canary"))
	reCancel()
	if err != nil {
		t.Fatalf("retransmission of pre-kill get: %v", err)
	}
	if string(replay) != "before-crash" {
		for s := 0; s < cluster.Topo.ShardCount(); s++ {
			t.Logf("shard %d: active instance %d, %d switches", s, v.Client.ActiveInstance(s), v.Client.Switches(s))
		}
		dumpLogs(t, cluster)
		t.Fatalf("retransmitted get returned %q, want the cached %q", replay, "before-crash")
	}

	// Fresh reads still see the latest committed state.
	got, _, err := v.Get(ctx, "canary")
	if err != nil {
		t.Fatalf("post-restart get: %v", err)
	}
	if got != "after-restart" {
		t.Fatalf("post-restart get returned %q, want %q", got, "after-restart")
	}

	// Stitched-trace acceptance: the post-restart traffic above was
	// head-sampled, so scraping the recovered cluster and stitching with the
	// verifier's ring must yield a single trace ID that crossed from the
	// client into at least two replica processes and covered the full request
	// lifecycle — send (client), order (primary), execute, merge, and the
	// reply point event.
	dumps := scrapeCluster(cluster)
	dumps = append(dumps, obsctl.ProcessDump{Addr: "in-test", Process: "verifier-90", Traces: spans.Dump()})
	traces := obsctl.Stitch(dumps)
	stages := []string{"send", "order", "execute", "merge", "reply"}
	var full *obsctl.Trace
	for _, tr := range traces {
		if !tr.Covers(3) {
			continue
		}
		ok := true
		for _, s := range stages {
			if !tr.HasStage(s) {
				ok = false
				break
			}
		}
		if ok {
			full = tr
			break
		}
	}
	if full == nil {
		var b strings.Builder
		obsctl.WriteTraces(&b, traces, 10)
		dumpLogs(t, cluster)
		t.Fatalf("no stitched trace covers 3+ processes with stages %v:\n%s", stages, b.String())
	}
}
