// Package perfmodel is the calibrated performance model of the paper's
// testbed (a 17-machine Gigabit-Ethernet cluster with 1.66 GHz bi-processor
// nodes, UMAC MACs and MD5 digests) used to regenerate the shape of every
// table and figure of the evaluation. The absolute numbers of the paper
// depend on 2010 hardware; what the model reproduces — and what the paper's
// arguments rest on — are the protocol-level costs: the number of one-way
// message delays on the critical path, the number of MAC operations at the
// bottleneck replica, batching, the pipeline pattern of Chain, IP-multicast
// loss with large payloads, and the robustness mechanisms' overheads.
//
// The real protocol implementations in this repository are measured by the
// test suite and the testing.B benchmarks; the model is what converts their
// per-request cost profiles into cluster-scale throughput/latency curves
// comparable with the paper's figures.
package perfmodel

import (
	"math"
)

// Testbed holds the calibration constants of the modelled cluster.
type Testbed struct {
	// OneWayLatency is the one-way network latency between two machines.
	OneWayLatencyUS float64
	// MACCostUS is the CPU cost of one MAC generation/verification (UMAC).
	MACCostUS float64
	// DigestCostUSPerKB is the CPU cost of digesting one kilobyte (MD5).
	DigestCostUSPerKB float64
	// PerMessageCPUUS is the fixed CPU cost of sending or receiving one
	// message (syscalls, marshalling).
	PerMessageCPUUS float64
	// BandwidthMBps is the usable point-to-point bandwidth in MB/s.
	BandwidthMBps float64
	// MulticastLossBase is the loss probability of IP multicast with large
	// payloads (drives the PBFT/Zyzzyva collapse in the 4/0 benchmark).
	MulticastLossBase float64
	// MaxBatch is the maximum batching factor of primary-based protocols.
	MaxBatch float64
}

// DefaultTestbed returns constants calibrated so the common-case numbers land
// in the region the paper reports (tens of thousands of 0/0 requests per
// second, sub-millisecond latencies on a LAN).
func DefaultTestbed() Testbed {
	return Testbed{
		OneWayLatencyUS:   80,
		MACCostUS:         1.5,
		DigestCostUSPerKB: 3.0,
		PerMessageCPUUS:   6.0,
		BandwidthMBps:     110,
		MulticastLossBase: 0.015,
		MaxBatch:          16,
	}
}

// Protocol identifies a modelled protocol.
type Protocol string

// Modelled protocols.
const (
	PBFT           Protocol = "PBFT"
	Zyzzyva        Protocol = "Zyzzyva"
	ZyzzyvaNoBatch Protocol = "Zyzzyva-nb"
	QU             Protocol = "Q/U"
	HQ             Protocol = "HQ"
	Quorum         Protocol = "Quorum"
	Chain          Protocol = "Chain"
	Aliph          Protocol = "Aliph"
	RAliph         Protocol = "R-Aliph"
	Aardvark       Protocol = "Aardvark"
	Spinning       Protocol = "Spinning"
	Prime          Protocol = "Prime"
)

// Characteristics are the analytic properties reported in Table I.
type Characteristics struct {
	Replicas        int
	BottleneckMACs  float64
	OneWayDelays    int
	UsesIPMulticast bool
	Batches         bool
	// PipelineDepth > 0 marks pipeline protocols (Chain): the bottleneck
	// processes one send and one receive per request regardless of n.
	PipelineDepth int
}

// CharacteristicsOf returns Table I's rows (plus the robust protocols) for a
// given f and batching factor b.
func CharacteristicsOf(p Protocol, f int, b float64) Characteristics {
	if b < 1 {
		b = 1
	}
	ff := float64(f)
	switch p {
	case PBFT:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2 + (8*ff)/b, OneWayDelays: 4, UsesIPMulticast: true, Batches: true}
	case Zyzzyva:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2 + (3*ff)/b, OneWayDelays: 3, UsesIPMulticast: true, Batches: true}
	case ZyzzyvaNoBatch:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2 + 3*ff, OneWayDelays: 3, UsesIPMulticast: true}
	case QU:
		return Characteristics{Replicas: 5*f + 1, BottleneckMACs: 2 + 4*ff, OneWayDelays: 2}
	case HQ:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2 + 4*ff, OneWayDelays: 4}
	case Quorum:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2, OneWayDelays: 2}
	case Chain, Aliph, RAliph:
		// 1 + (2f+1)/b MAC operations at the bottleneck (the f+1-st replica).
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 1 + (2*ff+1)/b, OneWayDelays: 3*f + 2, Batches: true, PipelineDepth: 3*f + 1}
	case Aardvark:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 3 + (10*ff)/b, OneWayDelays: 4, Batches: true}
	case Spinning:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2.5 + (9*ff)/b, OneWayDelays: 4, UsesIPMulticast: true, Batches: true}
	case Prime:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 4 + (12*ff)/b, OneWayDelays: 6, Batches: true}
	default:
		return Characteristics{Replicas: 3*f + 1, BottleneckMACs: 2, OneWayDelays: 4}
	}
}

// Workload describes one modelled run.
type Workload struct {
	Protocol    Protocol
	F           int
	Clients     int
	RequestKB   float64
	ReplyKB     float64
	Contention  bool
	ClientMcast bool
}

// Model evaluates workloads against a testbed.
type Model struct {
	T Testbed
}

// New returns a model over the default testbed.
func New() *Model { return &Model{T: DefaultTestbed()} }

// effectiveProtocol resolves Aliph/R-Aliph to the sub-protocol that is active
// under the given workload (Quorum without contention, Chain with it).
func effectiveProtocol(w Workload) Protocol {
	switch w.Protocol {
	case Aliph, RAliph:
		if w.Contention {
			return Chain
		}
		return Quorum
	default:
		return w.Protocol
	}
}

// batchFactor models request batching: primaries batch more aggressively as
// the number of concurrent clients grows.
func (m *Model) batchFactor(p Protocol, clients int) float64 {
	c := CharacteristicsOf(p, 1, 1)
	if !c.Batches || clients <= 1 {
		return 1
	}
	b := float64(clients) / 2
	if b > m.T.MaxBatch {
		b = m.T.MaxBatch
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Latency returns the no-contention request latency in microseconds for one
// client (Table II and the latency-vs-throughput curves).
func (m *Model) Latency(w Workload) float64 {
	p := effectiveProtocol(w)
	c := CharacteristicsOf(p, w.F, 1)
	reqWire := (w.RequestKB * 1024) / (m.T.BandwidthMBps * 1.048576) // µs to push the payload on one link
	repWire := (w.ReplyKB * 1024) / (m.T.BandwidthMBps * 1.048576)
	network := float64(c.OneWayDelays)*m.T.OneWayLatencyUS + reqWire + repWire

	// CPU on the critical path: the client's MACs towards the replicas, the
	// bottleneck replica's MACs, digesting the payloads, and fixed
	// per-message costs proportional to the number of protocol messages the
	// critical path crosses.
	clientMACs := float64(c.Replicas)
	if p == Chain {
		clientMACs = float64(w.F + 1)
	}
	cpu := (clientMACs+c.BottleneckMACs)*m.T.MACCostUS +
		(w.RequestKB+w.ReplyKB)*m.T.DigestCostUSPerKB +
		float64(c.OneWayDelays)*m.T.PerMessageCPUUS
	return network + cpu
}

// PeakThroughput returns the saturated throughput (requests per second) of
// the protocol under contention from many closed-loop clients.
func (m *Model) PeakThroughput(w Workload) float64 {
	p := effectiveProtocol(w)
	b := m.batchFactor(p, w.Clients)
	c := CharacteristicsOf(p, w.F, b)

	// CPU capacity of the bottleneck replica.
	perReqCPU := c.BottleneckMACs*m.T.MACCostUS +
		(w.RequestKB+w.ReplyKB)*m.T.DigestCostUSPerKB +
		m.T.PerMessageCPUUS*m.messagesAtBottleneck(p, w.F, b)
	cpuCap := 1e6 / perReqCPU

	// Network capacity of the bottleneck link/NIC.
	bytesPerReq := m.bytesAtBottleneck(p, w, b)
	netCap := (m.T.BandwidthMBps * 1e6) / math.Max(bytesPerReq, 1)

	// IP multicast of large requests loses packets; the available prototypes
	// recover poorly, collapsing PBFT/Zyzzyva throughput in the 4/0
	// benchmark (§5.4.2).
	if c.UsesIPMulticast && w.RequestKB >= 1 {
		loss := m.T.MulticastLossBase * w.RequestKB * 12
		if w.ClientMcast {
			loss *= 1.6
		}
		if loss > 0.96 {
			loss = 0.96
		}
		cpuCap *= 1 - loss
		netCap *= 1 - loss
	}

	cap_ := math.Min(cpuCap, netCap)

	// Closed-loop interactive law: n clients each with one outstanding
	// request cannot exceed n/latency.
	lat := m.Latency(w) / 1e6 // seconds
	offered := float64(w.Clients) / lat
	if offered < cap_ {
		return offered
	}
	return cap_
}

// ResponseTime returns the closed-loop response time (µs) of a run with the
// given number of clients (Fig. 9): the base latency plus queueing once the
// offered load approaches the capacity.
func (m *Model) ResponseTime(w Workload) float64 {
	lat := m.Latency(w)
	tput := m.PeakThroughput(w)
	if tput <= 0 {
		return math.Inf(1)
	}
	// Little's law: N = X * R  =>  R = N / X.
	r := float64(w.Clients) / tput * 1e6
	if r < lat {
		return lat
	}
	return r
}

// messagesAtBottleneck estimates how many protocol messages the bottleneck
// replica sends plus receives per request (amortized under batching).
func (m *Model) messagesAtBottleneck(p Protocol, f int, b float64) float64 {
	n := float64(3*f + 1)
	switch p {
	case Quorum:
		return 2
	case Chain:
		return 2 // pipeline: one receive from the predecessor, one send to the successor
	case QU:
		return 2
	case Zyzzyva, ZyzzyvaNoBatch:
		// One client request received and one reply sent per request; the
		// ordering messages to the other replicas amortize under batching.
		return 2 + (n+1)/b
	case PBFT, Aardvark, Spinning:
		return 2 + (3*n)/b
	case Prime:
		return 2 + (4*n)/b
	default:
		return 2 + (3*n)/b
	}
}

// bytesAtBottleneck estimates the bytes the bottleneck NIC moves per request.
func (m *Model) bytesAtBottleneck(p Protocol, w Workload, b float64) float64 {
	req := w.RequestKB * 1024
	rep := w.ReplyKB * 1024
	hdr := 120.0
	n := float64(3*w.F + 1)
	switch p {
	case Quorum, QU:
		return req + rep + 2*hdr
	case Chain:
		// The bottleneck replica receives the request once and forwards it
		// once; replies flow only from the tail.
		return 2*(req+hdr) + rep/n
	case Zyzzyva, ZyzzyvaNoBatch:
		if w.ClientMcast {
			return req + rep + (n+1)*hdr/b
		}
		return (n+1)*req + rep + (n+1)*hdr/b
	case PBFT, Aardvark, Spinning, Prime:
		if w.ClientMcast {
			return req + rep + 3*n*hdr/b
		}
		return n*req + rep + 3*n*hdr/b
	default:
		return n*req + rep + 3*n*hdr/b
	}
}
