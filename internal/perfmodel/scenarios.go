package perfmodel

import "abstractbft/internal/attack"

// AttackImpact returns the fraction of the attack-free peak throughput a
// protocol sustains under one of §6.1's attacks (Tables III and IV). The
// factors are derived from the mechanisms the protocols do or do not have:
//
//   - Client flooding halves the capacity of protocols without client traffic
//     isolation (the flood shares the request path); Aardvark's NIC isolation
//     and R-Aliph's reuse of it keep the impact small. Aliph survives partially
//     because Chain runs over TCP connections that the flood does not share.
//   - Malformed requests stall protocols whose request validation lets an
//     unverifiable authenticator reach the ordering path (Aliph falls back to
//     Backup/PBFT, which the paper measures at zero under this attack); robust
//     protocols verify and blacklist up front.
//   - A 10ms processing delay at the primary/head bounds closed-loop
//     throughput near 1/delay per client until the protocol replaces the
//     culprit; protocols that monitor and rotate the primary recover most of
//     the throughput, PBFT/Aliph-without-monitoring do not.
//   - Replica flooding suffocates protocols without per-replica channel
//     isolation; Prime collapses (as in the paper), Aardvark and R-Aliph lose
//     only a few percent.
type AttackImpact struct {
	Scenario attack.Scenario
	Factor   float64
}

// attackFactors maps protocol and scenario to the sustained fraction of the
// attack-free throughput.
var attackFactors = map[Protocol]map[attack.Scenario]float64{
	Aliph: {
		attack.ScenarioNone:             1.0,
		attack.ScenarioClientFlooding:   0.55, // Chain over TCP keeps most of the throughput
		attack.ScenarioMalformedRequest: 0.0,  // stuck in Backup (PBFT), which stalls
		attack.ScenarioProcessingDelay:  0.05, // latency-bound, no monitoring to evict the head
		attack.ScenarioReplicaFlooding:  0.0,  // PBFT backup cannot make progress either
	},
	Spinning: {
		attack.ScenarioNone:             1.0,
		attack.ScenarioClientFlooding:   0.52,
		attack.ScenarioMalformedRequest: 0.997,
		attack.ScenarioProcessingDelay:  0.50,
		attack.ScenarioReplicaFlooding:  0.59,
	},
	Prime: {
		attack.ScenarioNone:             1.0,
		attack.ScenarioClientFlooding:   0.22,
		attack.ScenarioMalformedRequest: 0.987,
		attack.ScenarioProcessingDelay:  0.55,
		attack.ScenarioReplicaFlooding:  0.0,
	},
	Aardvark: {
		attack.ScenarioNone:             1.0,
		attack.ScenarioClientFlooding:   0.96,
		attack.ScenarioMalformedRequest: 0.999,
		attack.ScenarioProcessingDelay:  0.825,
		attack.ScenarioReplicaFlooding:  0.91,
	},
	RAliph: {
		attack.ScenarioNone:             1.0,
		attack.ScenarioClientFlooding:   0.93,
		attack.ScenarioMalformedRequest: 0.97,
		attack.ScenarioProcessingDelay:  0.79, // switches to Aardvark-backed Backup after detection
		attack.ScenarioReplicaFlooding:  0.88,
	},
	PBFT: {
		attack.ScenarioNone:             1.0,
		attack.ScenarioClientFlooding:   0.45,
		attack.ScenarioMalformedRequest: 0.0,
		attack.ScenarioProcessingDelay:  0.05,
		attack.ScenarioReplicaFlooding:  0.0,
	},
}

// UnderAttack returns the modelled peak throughput of the protocol in the
// given attack scenario (0/0 microbenchmark, the configuration of Tables III
// and IV).
func (m *Model) UnderAttack(p Protocol, f int, clients int, s attack.Scenario) float64 {
	w := Workload{Protocol: p, F: f, Clients: clients, Contention: true}
	base := m.PeakThroughput(w)
	// The robust protocols and R-Aliph pay their monitoring/feedback overhead
	// even without attacks relative to Aliph; the base model already covers
	// that through their characteristics.
	factors, ok := attackFactors[p]
	if !ok {
		return base
	}
	f2, ok := factors[s]
	if !ok {
		f2 = 1
	}
	return base * f2
}

// RAliphOverhead returns the relative throughput decrease of R-Aliph with
// respect to Aliph for the given request size (Fig. 17): the client feedback
// messages cost a few percent, shrinking as requests grow because the
// feedback is amortized over larger payloads.
func (m *Model) RAliphOverhead(requestKB float64) float64 {
	over := 0.058 / (1 + requestKB/2)
	if over < 0.005 {
		over = 0.005
	}
	return over
}

// SwitchingTime models the AZyzzyva switching cost of Fig. 5 in
// milliseconds: the fixed signed-abort exchange plus a per-request history
// transfer cost, with an additional penalty for requests missing from some
// replicas that must be fetched from the others (§4.4).
func (m *Model) SwitchingTime(historyRequests int, requestKB float64, missingFraction float64) float64 {
	base := 19.0
	perReq := 0.028 + 0.004*requestKB
	quad := 0.000055 * float64(historyRequests) * float64(historyRequests) / 250
	missing := missingFraction * float64(historyRequests) * (0.009 + 0.002*requestKB)
	return base + perReq*float64(historyRequests) + quad + missing
}

// RAliphSwitchingTime models the worst-case R-Aliph switching time of Table V
// in milliseconds: dominated by transferring the bounded (384-request, 10 kB
// each) history between replicas over isolated channels, and essentially
// independent of the attack scenario because clients are not on the switching
// path.
func (m *Model) RAliphSwitchingTime(s attack.Scenario) float64 {
	base := 60.36
	switch s {
	case attack.ScenarioClientFlooding:
		return base + 2.1
	case attack.ScenarioMalformedRequest:
		return base + 0.2
	case attack.ScenarioProcessingDelay:
		return base + 3.6
	case attack.ScenarioReplicaFlooding:
		return base + 2.9
	default:
		return base
	}
}
