package perfmodel

import (
	"testing"

	"abstractbft/internal/attack"
)

func TestTable1Characteristics(t *testing.T) {
	// Table I formulas at f=1.
	b := 10.0
	cases := []struct {
		p        Protocol
		replicas int
		macs     float64
		delays   int
	}{
		{PBFT, 4, 2 + 8.0/b, 4},
		{QU, 6, 6, 2},
		{HQ, 4, 6, 4},
		{Zyzzyva, 4, 2 + 3.0/b, 3},
		{Quorum, 4, 2, 2},
		{Chain, 4, 1 + 3.0/b, 5},
	}
	for _, c := range cases {
		got := CharacteristicsOf(c.p, 1, b)
		if got.Replicas != c.replicas {
			t.Errorf("%s replicas = %d, want %d", c.p, got.Replicas, c.replicas)
		}
		if got.BottleneckMACs != c.macs {
			t.Errorf("%s bottleneck MACs = %v, want %v", c.p, got.BottleneckMACs, c.macs)
		}
		if got.OneWayDelays != c.delays {
			t.Errorf("%s delays = %d, want %d", c.p, got.OneWayDelays, c.delays)
		}
	}
}

func TestChainMACOpsTendToOne(t *testing.T) {
	for _, b := range []float64{1, 2, 8, 64, 1024} {
		c := CharacteristicsOf(Chain, 1, b)
		if c.BottleneckMACs < 1 {
			t.Fatalf("bottleneck MACs below 1: %v", c.BottleneckMACs)
		}
	}
	if got := CharacteristicsOf(Chain, 1, 1e9).BottleneckMACs; got > 1.001 {
		t.Errorf("Chain bottleneck MACs should tend to 1 with large batches, got %v", got)
	}
	// This contradicts the claimed lower bound of 2 that PBFT/Zyzzyva obey.
	if got := CharacteristicsOf(Zyzzyva, 1, 1e9).BottleneckMACs; got < 2 {
		t.Errorf("Zyzzyva bottleneck MACs should not go below 2, got %v", got)
	}
}

func TestLatencyOrderingWithoutContention(t *testing.T) {
	m := New()
	for f := 1; f <= 3; f++ {
		for _, bench := range []struct{ req, rep float64 }{{0, 0}, {4, 0}, {0, 4}} {
			aliph := m.Latency(Workload{Protocol: Aliph, F: f, Clients: 1, RequestKB: bench.req, ReplyKB: bench.rep})
			for _, p := range []Protocol{QU, Zyzzyva, PBFT} {
				other := m.Latency(Workload{Protocol: p, F: f, Clients: 1, RequestKB: bench.req, ReplyKB: bench.rep})
				if aliph >= other {
					t.Errorf("f=%d %v/%v: Aliph latency %.1f not below %s latency %.1f", f, bench.req, bench.rep, aliph, p, other)
				}
			}
		}
	}
	// PBFT must be the slowest of the three baselines (4 delays).
	if m.Latency(Workload{Protocol: PBFT, F: 1, Clients: 1}) <= m.Latency(Workload{Protocol: Zyzzyva, F: 1, Clients: 1}) {
		t.Errorf("PBFT should have higher latency than Zyzzyva")
	}
}

func TestThroughputCrossoverFig8(t *testing.T) {
	m := New()
	// Few clients: Zyzzyva at least as good as Aliph; many clients: Aliph
	// higher, by roughly 15-35% at the peak (paper: 21%).
	few := Workload{Protocol: Aliph, F: 1, Clients: 5, Contention: true}
	fewZ := Workload{Protocol: Zyzzyva, F: 1, Clients: 5, Contention: true}
	if m.PeakThroughput(few) > m.PeakThroughput(fewZ)*1.15 {
		t.Errorf("with few clients Aliph should not be far above Zyzzyva")
	}
	many := Workload{Protocol: Aliph, F: 1, Clients: 200, Contention: true}
	manyZ := Workload{Protocol: Zyzzyva, F: 1, Clients: 200, Contention: true}
	ratio := m.PeakThroughput(many) / m.PeakThroughput(manyZ)
	if ratio < 1.1 || ratio > 1.6 {
		t.Errorf("Aliph/Zyzzyva peak ratio = %.2f, want roughly 1.2 (paper: +21%%)", ratio)
	}
}

func TestFig11LargeRequestsFavorAliph(t *testing.T) {
	m := New()
	aliph := m.PeakThroughput(Workload{Protocol: Aliph, F: 1, Clients: 80, RequestKB: 4, Contention: true})
	zyz := m.PeakThroughput(Workload{Protocol: Zyzzyva, F: 1, Clients: 80, RequestKB: 4, Contention: true})
	ratio := aliph / zyz
	if ratio < 2.5 {
		t.Errorf("4/0 benchmark: Aliph/Zyzzyva = %.2f, want >= 2.5 (paper: ~4.6x)", ratio)
	}
}

func TestFaultScalabilityFig13(t *testing.T) {
	m := New()
	p1 := m.PeakThroughput(Workload{Protocol: Aliph, F: 1, Clients: 120, RequestKB: 4, Contention: true})
	p3 := m.PeakThroughput(Workload{Protocol: Aliph, F: 3, Clients: 120, RequestKB: 4, Contention: true})
	drop := (p1 - p3) / p1
	if drop < 0 || drop > 0.15 {
		t.Errorf("peak throughput drop from f=1 to f=3 is %.1f%%, want a small positive value", drop*100)
	}
}

func TestAttackFactorsShape(t *testing.T) {
	m := New()
	// Aardvark must degrade least; Aliph must collapse under malformed
	// requests and replica flooding; Prime must collapse under replica
	// flooding.
	for _, s := range []attack.Scenario{attack.ScenarioClientFlooding, attack.ScenarioProcessingDelay, attack.ScenarioReplicaFlooding} {
		aard := m.UnderAttack(Aardvark, 1, 100, s) / m.UnderAttack(Aardvark, 1, 100, attack.ScenarioNone)
		for _, p := range []Protocol{Spinning, Prime, Aliph} {
			other := m.UnderAttack(p, 1, 100, s) / m.UnderAttack(p, 1, 100, attack.ScenarioNone)
			if aard < other {
				t.Errorf("under %s Aardvark retains %.2f, %s retains %.2f: Aardvark should degrade least", s, aard, p, other)
			}
		}
	}
	if m.UnderAttack(Aliph, 1, 100, attack.ScenarioMalformedRequest) != 0 {
		t.Errorf("Aliph under malformed requests should drop to zero")
	}
	if m.UnderAttack(Prime, 1, 100, attack.ScenarioReplicaFlooding) != 0 {
		t.Errorf("Prime under replica flooding should drop to zero")
	}
	// R-Aliph without attack must be within ~6% of Aliph (Fig. 17) and far
	// better than Aliph under attack.
	if m.RAliphOverhead(0) > 0.06 {
		t.Errorf("R-Aliph overhead at 0kB = %.3f, want <= 0.06", m.RAliphOverhead(0))
	}
	if m.RAliphOverhead(4) >= m.RAliphOverhead(0) {
		t.Errorf("R-Aliph overhead should shrink with request size")
	}
	ral := m.UnderAttack(RAliph, 1, 100, attack.ScenarioProcessingDelay)
	al := m.UnderAttack(Aliph, 1, 100, attack.ScenarioProcessingDelay)
	if ral <= al {
		t.Errorf("R-Aliph under the delay attack (%.0f) should far exceed Aliph (%.0f)", ral, al)
	}
}

func TestSwitchingTimeFig5(t *testing.T) {
	m := New()
	lo := m.SwitchingTime(0, 1, 0)
	hi := m.SwitchingTime(250, 1, 0)
	if lo < 15 || lo > 25 {
		t.Errorf("empty-history switching time %.1f ms outside the expected band", lo)
	}
	if hi < 25 || hi > 35 {
		t.Errorf("250-request switching time %.1f ms outside the expected band", hi)
	}
	if m.SwitchingTime(250, 1, 0.3) <= hi {
		t.Errorf("missing requests must increase the switching time")
	}
	// Growth is monotone.
	prev := 0.0
	for h := 0; h <= 250; h += 50 {
		v := m.SwitchingTime(h, 1, 0)
		if v < prev {
			t.Fatalf("switching time not monotone at history %d", h)
		}
		prev = v
	}
}

func TestRAliphSwitchingTable5(t *testing.T) {
	m := New()
	base := m.RAliphSwitchingTime(attack.ScenarioNone)
	for _, s := range attack.AllScenarios() {
		v := m.RAliphSwitchingTime(s)
		if v < base || v > base*1.1 {
			t.Errorf("switching time under %s = %.2f ms should be within 10%% of the attack-free %.2f ms", s, v, base)
		}
	}
}

func TestResponseTimeMonotoneInClients(t *testing.T) {
	m := New()
	prev := 0.0
	for _, n := range []int{1, 10, 50, 100, 200, 400} {
		r := m.ResponseTime(Workload{Protocol: Aliph, F: 1, Clients: n, Contention: n > 1})
		if r < prev*0.7 {
			t.Fatalf("response time dropped sharply from %.0f to %.0f at %d clients", prev, r, n)
		}
		prev = r
	}
}
