// Package authn provides the cryptographic substrate used by all protocols in
// this repository: message digests, pairwise MACs, MAC authenticators
// (vectors of MACs, one per recipient), the Chain Authenticators introduced by
// the Chain protocol, and digital signatures.
//
// Keys are derived deterministically from a cluster-wide secret and the pair
// of process identifiers, mirroring the usual BFT deployment assumption that
// every pair of processes shares a symmetric key established out of band.
// Signing keys are Ed25519 key pairs derived from the same secret; the public
// keys of all processes are known to everyone.
package authn

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"abstractbft/internal/ids"
	"abstractbft/internal/obs"
)

// DigestSize is the size in bytes of message digests.
const DigestSize = sha256.Size

// MACSize is the size in bytes of a message authentication code.
const MACSize = 32

// Digest is a collision-resistant hash of a message.
type Digest [DigestSize]byte

// Hash computes the digest of data.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// HashAll computes the digest of the concatenation of the given byte slices,
// with length prefixes so that the encoding is unambiguous.
func HashAll(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// String renders a short hexadecimal prefix of the digest.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// IsZero reports whether the digest is the zero value.
func (d Digest) IsZero() bool { return d == Digest{} }

// MAC is a message authentication code computed under a pairwise key.
type MAC [MACSize]byte

// Errors returned by verification routines.
var (
	ErrBadMAC       = errors.New("authn: MAC verification failed")
	ErrBadSignature = errors.New("authn: signature verification failed")
	ErrNoEntry      = errors.New("authn: authenticator has no entry for receiver")
)

// KeyStore derives and caches the symmetric pairwise keys and the Ed25519
// signing keys of every process. A single KeyStore models the collection of
// keys held by all processes; per-process views are not enforced because the
// repository's Byzantine behaviours are modelled explicitly by the attack
// package rather than by key compromise.
type KeyStore struct {
	secret []byte

	mu      sync.RWMutex
	pairKey map[pairKeyID][]byte
	macPool map[pairKeyID]*sync.Pool
	signKey map[ids.ProcessID]ed25519.PrivateKey
	pubKey  map[ids.ProcessID]ed25519.PublicKey

	// met instruments MAC operations and the HMAC-state pool when set
	// (SetMetrics); atomic because MAC callers never hold ks.mu.
	met atomic.Pointer[keyMetrics]
}

// keyMetrics holds the authn series: total MAC computations (MAC, VerifyMAC,
// authenticators, and chain MACs all funnel through macWith) and the
// digest-MAC state pool's effectiveness (gets vs. misses — a miss pays the
// full hmac.New key schedule, a hit only a Reset).
type keyMetrics struct {
	macOps     *obs.Counter // authn_mac_ops_total
	poolGets   *obs.Counter // authn_hmac_pool_gets_total
	poolMisses *obs.Counter // authn_hmac_pool_misses_total
}

// SetMetrics instruments the key store's MAC fast path against r. Safe to
// call at any time; metric recording is one atomic pointer load per MAC.
func (ks *KeyStore) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	ks.met.Store(&keyMetrics{
		macOps:     r.Counter("authn_mac_ops_total"),
		poolGets:   r.Counter("authn_hmac_pool_gets_total"),
		poolMisses: r.Counter("authn_hmac_pool_misses_total"),
	})
}

type pairKeyID struct {
	a, b ids.ProcessID
}

// NewKeyStore creates a key store from a cluster-wide secret. Two key stores
// created from the same secret derive identical keys, which allows separate
// processes (or test harness components) to agree on keys without exchanging
// them.
func NewKeyStore(secret string) *KeyStore {
	return &KeyStore{
		secret:  []byte(secret),
		pairKey: make(map[pairKeyID][]byte),
		macPool: make(map[pairKeyID]*sync.Pool),
		signKey: make(map[ids.ProcessID]ed25519.PrivateKey),
		pubKey:  make(map[ids.ProcessID]ed25519.PublicKey),
	}
}

func normalizePair(p, q ids.ProcessID) pairKeyID {
	if p > q {
		p, q = q, p
	}
	return pairKeyID{a: p, b: q}
}

// pairwiseKey returns the symmetric key shared between processes p and q.
func (ks *KeyStore) pairwiseKey(p, q ids.ProcessID) []byte {
	id := normalizePair(p, q)
	ks.mu.RLock()
	k, ok := ks.pairKey[id]
	ks.mu.RUnlock()
	if ok {
		return k
	}
	mac := hmac.New(sha256.New, ks.secret)
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(id.a))
	binary.BigEndian.PutUint32(buf[4:], uint32(id.b))
	mac.Write([]byte("pairwise"))
	mac.Write(buf[:])
	k = mac.Sum(nil)
	ks.mu.Lock()
	ks.pairKey[id] = k
	ks.mu.Unlock()
	return k
}

// hmacState returns a reset HMAC state for the pair (p, q) from a per-pair
// pool, together with the pool to return it to. Pooling matters on the hot
// path: hmac.New hashes the key into the two block-sized pads on every call,
// while Reset restores the precomputed inner state, so a pooled MAC costs one
// short SHA-256 pass instead of three.
func (ks *KeyStore) hmacState(p, q ids.ProcessID) (hash.Hash, *sync.Pool) {
	id := normalizePair(p, q)
	ks.mu.RLock()
	pool := ks.macPool[id]
	ks.mu.RUnlock()
	if pool == nil {
		key := ks.pairwiseKey(p, q)
		ks.mu.Lock()
		if pool = ks.macPool[id]; pool == nil {
			pool = &sync.Pool{New: func() any {
				if m := ks.met.Load(); m != nil {
					m.poolMisses.Inc()
				}
				return hmac.New(sha256.New, key)
			}}
			ks.macPool[id] = pool
		}
		ks.mu.Unlock()
	}
	if m := ks.met.Load(); m != nil {
		m.poolGets.Inc()
	}
	h := pool.Get().(hash.Hash)
	h.Reset()
	return h, pool
}

// MAC input domains: raw MACs cover the caller's bytes directly; digest MACs
// (authenticators, chain authenticators) cover a precomputed message digest so
// the message is hashed once per send instead of once per receiver. The domain
// byte sits inside the MAC input, so the two kinds can never be confused even
// for adversarially chosen raw data.
const (
	macDomainRaw    = 0x00
	macDomainDigest = 0x01
)

func (ks *KeyStore) macWith(sender, receiver ids.ProcessID, domain byte, data []byte) MAC {
	if m := ks.met.Load(); m != nil {
		m.macOps.Inc()
	}
	h, pool := ks.hmacState(sender, receiver)
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(sender))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(receiver))
	hdr[8] = domain
	h.Write(hdr[:])
	h.Write(data)
	var m MAC
	h.Sum(m[:0])
	pool.Put(h)
	return m
}

// MAC computes the MAC of data under the key shared by sender and receiver.
func (ks *KeyStore) MAC(sender, receiver ids.ProcessID, data []byte) MAC {
	return ks.macWith(sender, receiver, macDomainRaw, data)
}

// macOverDigest computes the digest-domain MAC over a message digest.
func (ks *KeyStore) macOverDigest(sender, receiver ids.ProcessID, d Digest) MAC {
	return ks.macWith(sender, receiver, macDomainDigest, d[:])
}

// VerifyMAC checks that m authenticates data between sender and receiver.
func (ks *KeyStore) VerifyMAC(sender, receiver ids.ProcessID, data []byte, m MAC) error {
	want := ks.MAC(sender, receiver, data)
	if !hmac.Equal(want[:], m[:]) {
		return ErrBadMAC
	}
	return nil
}

// signingKey returns (lazily deriving) the Ed25519 private key of process p.
func (ks *KeyStore) signingKey(p ids.ProcessID) ed25519.PrivateKey {
	ks.mu.RLock()
	k, ok := ks.signKey[p]
	ks.mu.RUnlock()
	if ok {
		return k
	}
	seedMAC := hmac.New(sha256.New, ks.secret)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(p))
	seedMAC.Write([]byte("sign"))
	seedMAC.Write(buf[:])
	seed := seedMAC.Sum(nil)[:ed25519.SeedSize]
	priv := ed25519.NewKeyFromSeed(seed)
	ks.mu.Lock()
	ks.signKey[p] = priv
	ks.pubKey[p] = priv.Public().(ed25519.PublicKey)
	ks.mu.Unlock()
	return priv
}

// PublicKey returns the Ed25519 public key of process p.
func (ks *KeyStore) PublicKey(p ids.ProcessID) ed25519.PublicKey {
	ks.signingKey(p)
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.pubKey[p]
}

// Signature is a digital signature over a message digest.
type Signature []byte

// Sign produces process p's signature over data.
func (ks *KeyStore) Sign(p ids.ProcessID, data []byte) Signature {
	d := Hash(data)
	return ed25519.Sign(ks.signingKey(p), d[:])
}

// VerifySignature checks process p's signature over data.
func (ks *KeyStore) VerifySignature(p ids.ProcessID, data []byte, sig Signature) error {
	d := Hash(data)
	if !ed25519.Verify(ks.PublicKey(p), d[:], sig) {
		return ErrBadSignature
	}
	return nil
}

// AuthEntry is a single MAC entry of an authenticator, addressed to Receiver.
type AuthEntry struct {
	Receiver ids.ProcessID
	MAC      MAC
}

// Authenticator is a vector of MACs generated by Sender, one entry per
// receiver, authenticating the same message for multiple recipients
// (Castro & Liskov's MAC authenticators).
type Authenticator struct {
	Sender  ids.ProcessID
	Entries []AuthEntry
}

// NewAuthenticator computes an authenticator from sender to the given
// receivers over data. The message is hashed once and each entry MACs the
// digest, so generating a vector of n MACs costs O(|data| + n·DigestSize)
// instead of O(n·|data|). An entry addressed to the sender itself carries a
// zero MAC that Verify short-circuits: a process never needs cryptographic
// evidence about its own messages, and skipping the self-MAC is safe because
// the worst a forged self-entry can cause is an abort (liveness), never a
// wrong commit.
func (ks *KeyStore) NewAuthenticator(sender ids.ProcessID, receivers []ids.ProcessID, data []byte) Authenticator {
	d := Hash(data)
	a := Authenticator{Sender: sender, Entries: make([]AuthEntry, 0, len(receivers))}
	for _, r := range receivers {
		if r == sender {
			a.Entries = append(a.Entries, AuthEntry{Receiver: r})
			continue
		}
		a.Entries = append(a.Entries, AuthEntry{Receiver: r, MAC: ks.macOverDigest(sender, r, d)})
	}
	return a
}

// Entry returns the MAC entry addressed to receiver, if present.
func (a Authenticator) Entry(receiver ids.ProcessID) (MAC, bool) {
	for _, e := range a.Entries {
		if e.Receiver == receiver {
			return e.MAC, true
		}
	}
	return MAC{}, false
}

// Verify checks the authenticator entry addressed to receiver against data.
// A receiver that is also the sender accepts its own (zero) entry without
// cryptographic work; see NewAuthenticator.
func (ks *KeyStore) Verify(a Authenticator, receiver ids.ProcessID, data []byte) error {
	m, ok := a.Entry(receiver)
	if !ok {
		return ErrNoEntry
	}
	if receiver == a.Sender {
		return nil
	}
	want := ks.macOverDigest(a.Sender, receiver, Hash(data))
	if !hmac.Equal(want[:], m[:]) {
		return ErrBadMAC
	}
	return nil
}

// NumMACs returns the number of MAC entries in the authenticator; used by the
// MAC-operation accounting in benchmarks.
func (a Authenticator) NumMACs() int { return len(a.Entries) }

// ChainAuthenticator is the lightweight authenticator used by the Chain
// protocol (§5.3): the generating process produces at most f+1 MACs, one per
// member of its successor set, and forwards along the chain any MACs it
// received that are destined to processes in its own successor set.
type ChainAuthenticator struct {
	// Entries holds, per (signer, receiver) pair, the MAC the signer
	// generated for the receiver.
	Entries []ChainAuthEntry
}

// ChainAuthEntry is one MAC of a chain authenticator.
type ChainAuthEntry struct {
	Signer   ids.ProcessID
	Receiver ids.ProcessID
	MAC      MAC
}

// AppendChainMACs appends sender's MACs for each receiver in successors over
// data to the chain authenticator and returns the updated value. As with MAC
// authenticators, the data is hashed once and each entry MACs the digest.
func (ks *KeyStore) AppendChainMACs(ca ChainAuthenticator, sender ids.ProcessID, successors []ids.ProcessID, data []byte) ChainAuthenticator {
	d := Hash(data)
	for _, r := range successors {
		ca.Entries = append(ca.Entries, ChainAuthEntry{Signer: sender, Receiver: r, MAC: ks.macOverDigest(sender, r, d)})
	}
	return ca
}

// VerifyChain checks that the chain authenticator contains, for the given
// receiver, a valid MAC from every process in predecessors over data. The
// data is hashed once and each predecessor's entry is checked against the
// digest-domain MAC.
func (ks *KeyStore) VerifyChain(ca ChainAuthenticator, receiver ids.ProcessID, predecessors []ids.ProcessID, data []byte) error {
	d := Hash(data)
	for _, p := range predecessors {
		found := false
		for _, e := range ca.Entries {
			if e.Signer == p && e.Receiver == receiver {
				want := ks.macOverDigest(p, receiver, d)
				if !hmac.Equal(want[:], e.MAC[:]) {
					return fmt.Errorf("authn: chain authenticator entry from %v: %w", p, ErrBadMAC)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("authn: chain authenticator missing MAC from %v for %v: %w", p, receiver, ErrNoEntry)
		}
	}
	return nil
}

// PruneChain removes entries that are not destined to any process in keep,
// modelling the forwarding rule of Chain in which a replica only propagates
// the MACs useful to its successors.
func PruneChain(ca ChainAuthenticator, keep []ids.ProcessID) ChainAuthenticator {
	out := ChainAuthenticator{}
	for _, e := range ca.Entries {
		for _, k := range keep {
			if e.Receiver == k {
				out.Entries = append(out.Entries, e)
				break
			}
		}
	}
	return out
}
