package authn

import (
	"bytes"
	"testing"
	"testing/quick"

	"abstractbft/internal/ids"
)

func TestMACRoundTrip(t *testing.T) {
	ks := NewKeyStore("secret")
	data := []byte("hello world")
	m := ks.MAC(ids.Replica(0), ids.Client(3), data)
	if err := ks.VerifyMAC(ids.Replica(0), ids.Client(3), data, m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := ks.VerifyMAC(ids.Replica(1), ids.Client(3), data, m); err == nil {
		t.Fatalf("MAC verified with wrong sender")
	}
	if err := ks.VerifyMAC(ids.Replica(0), ids.Client(3), []byte("tampered"), m); err == nil {
		t.Fatalf("MAC verified over tampered data")
	}
}

func TestMACDeterministicAcrossStores(t *testing.T) {
	a := NewKeyStore("shared")
	b := NewKeyStore("shared")
	data := []byte("payload")
	if a.MAC(ids.Replica(1), ids.Replica(2), data) != b.MAC(ids.Replica(1), ids.Replica(2), data) {
		t.Fatalf("key stores with the same secret derive different MACs")
	}
	c := NewKeyStore("other")
	if a.MAC(ids.Replica(1), ids.Replica(2), data) == c.MAC(ids.Replica(1), ids.Replica(2), data) {
		t.Fatalf("key stores with different secrets derive identical MACs")
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	ks := NewKeyStore("secret")
	data := []byte("abort history")
	sig := ks.Sign(ids.Replica(2), data)
	if err := ks.VerifySignature(ids.Replica(2), data, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := ks.VerifySignature(ids.Replica(1), data, sig); err == nil {
		t.Fatalf("signature verified with wrong signer")
	}
	if err := ks.VerifySignature(ids.Replica(2), []byte("other"), sig); err == nil {
		t.Fatalf("signature verified over different data")
	}
}

func TestAuthenticator(t *testing.T) {
	ks := NewKeyStore("secret")
	cluster := ids.NewCluster(1)
	data := []byte("req")
	a := ks.NewAuthenticator(ids.Client(0), cluster.Replicas(), data)
	if a.NumMACs() != cluster.N {
		t.Fatalf("authenticator has %d entries, want %d", a.NumMACs(), cluster.N)
	}
	for _, r := range cluster.Replicas() {
		if err := ks.Verify(a, r, data); err != nil {
			t.Fatalf("entry for %v: %v", r, err)
		}
	}
	if err := ks.Verify(a, ids.Replica(99), data); err == nil {
		t.Fatalf("verification succeeded for a receiver without an entry")
	}
}

func TestChainAuthenticator(t *testing.T) {
	ks := NewKeyStore("secret")
	cluster := ids.NewCluster(1)
	data := []byte("chained")
	client := ids.Client(0)

	ca := ChainAuthenticator{}
	ca = ks.AppendChainMACs(ca, client, cluster.ChainSuccessorSet(client), data)
	// The head (r0) and r1 must be able to verify the client's MAC.
	for _, r := range cluster.ChainSuccessorSet(client) {
		if err := ks.VerifyChain(ca, r, []ids.ProcessID{client}, data); err != nil {
			t.Fatalf("replica %v cannot verify the client MAC: %v", r, err)
		}
	}
	// A replica outside the client's successor set has no entry.
	if err := ks.VerifyChain(ca, ids.Replica(3), []ids.ProcessID{client}, data); err == nil {
		t.Fatalf("replica outside the successor set verified the client MAC")
	}

	// Head appends its own MACs; r1 must verify both client and head.
	ca = ks.AppendChainMACs(ca, ids.Replica(0), cluster.ChainSuccessorSet(ids.Replica(0)), data)
	if err := ks.VerifyChain(ca, ids.Replica(1), []ids.ProcessID{client, ids.Replica(0)}, data); err != nil {
		t.Fatalf("r1 verification: %v", err)
	}

	// Pruning keeps only entries destined to the retained processes.
	pruned := PruneChain(ca, []ids.ProcessID{ids.Replica(2)})
	for _, e := range pruned.Entries {
		if e.Receiver != ids.Replica(2) {
			t.Fatalf("pruned CA retains entry for %v", e.Receiver)
		}
	}
}

func TestChainAuthenticatorMACCount(t *testing.T) {
	// Chain authenticators must require at most f+1 MACs per generating
	// process (the property §5.3 relies on).
	ks := NewKeyStore("secret")
	for f := 1; f <= 3; f++ {
		cluster := ids.NewCluster(f)
		for _, p := range append(cluster.Replicas(), ids.Client(0)) {
			succ := cluster.ChainSuccessorSet(p)
			limit := f + 1
			if p.IsReplica() && int(p) >= 2*f {
				// The last replicas also authenticate towards the client, so
				// their in-protocol MAC count is (replicas after them) + 1.
				limit = cluster.N - int(p)
			}
			ca := ks.AppendChainMACs(ChainAuthenticator{}, p, succ, []byte("x"))
			if len(ca.Entries) > limit {
				t.Errorf("f=%d: process %v generates %d MACs, want at most %d", f, p, len(ca.Entries), limit)
			}
		}
	}
}

func TestHashAllUnambiguous(t *testing.T) {
	// Length prefixes must prevent concatenation ambiguity.
	if HashAll([]byte("ab"), []byte("c")) == HashAll([]byte("a"), []byte("bc")) {
		t.Fatalf("HashAll is ambiguous across part boundaries")
	}
	if HashAll() == HashAll([]byte{}) {
		t.Fatalf("HashAll of zero parts equals HashAll of one empty part")
	}
}

func TestHashProperties(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return Hash(a) == Hash(b)
		}
		return Hash(a) != Hash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACQuick(t *testing.T) {
	ks := NewKeyStore("secret")
	f := func(data []byte, sender, receiver uint8) bool {
		s := ids.Replica(int(sender % 4))
		r := ids.Client(int(receiver % 4))
		m := ks.MAC(s, r, data)
		return ks.VerifyMAC(s, r, data, m) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpCounter(t *testing.T) {
	c := NewOpCounter()
	c.CountMACGen(ids.Replica(0), 3)
	c.CountMACVerify(ids.Replica(0), 2)
	c.CountMACGen(ids.Replica(1), 1)
	c.CountMACGen(ids.Client(0), 100) // client ops must not count as bottleneck
	c.CountRequest()
	c.CountRequest()
	if got := c.MACOps(ids.Replica(0)); got != 5 {
		t.Errorf("MACOps(r0) = %d, want 5", got)
	}
	if got := c.Requests(); got != 2 {
		t.Errorf("Requests = %d, want 2", got)
	}
	if got := c.BottleneckMACOpsPerRequest(); got != 2.5 {
		t.Errorf("BottleneckMACOpsPerRequest = %v, want 2.5", got)
	}
	var nilCounter *OpCounter
	nilCounter.CountMACGen(ids.Replica(0), 1) // must not panic
	if nilCounter.BottleneckMACOpsPerRequest() != 0 {
		t.Errorf("nil counter should report 0")
	}
}
