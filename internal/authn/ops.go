package authn

import (
	"sync"

	"abstractbft/internal/ids"
)

// OpCounter records the number of cryptographic operations performed on
// behalf of each process. The paper's Table I and the Chain analysis (§5.3)
// argue about the number of MAC operations at the bottleneck replica; tests
// and the ablation benchmarks use an OpCounter to measure those counts on the
// actual implementations.
type OpCounter struct {
	mu       sync.Mutex
	macGen   map[ids.ProcessID]uint64
	macVer   map[ids.ProcessID]uint64
	sigGen   map[ids.ProcessID]uint64
	sigVer   map[ids.ProcessID]uint64
	requests uint64
}

// NewOpCounter returns an empty operation counter.
func NewOpCounter() *OpCounter {
	return &OpCounter{
		macGen: make(map[ids.ProcessID]uint64),
		macVer: make(map[ids.ProcessID]uint64),
		sigGen: make(map[ids.ProcessID]uint64),
		sigVer: make(map[ids.ProcessID]uint64),
	}
}

// CountMACGen records that p generated n MACs.
func (c *OpCounter) CountMACGen(p ids.ProcessID, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.macGen[p] += uint64(n)
	c.mu.Unlock()
}

// CountMACVerify records that p verified n MACs.
func (c *OpCounter) CountMACVerify(p ids.ProcessID, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.macVer[p] += uint64(n)
	c.mu.Unlock()
}

// CountSigGen records that p produced a signature.
func (c *OpCounter) CountSigGen(p ids.ProcessID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sigGen[p]++
	c.mu.Unlock()
}

// CountSigVerify records that p verified a signature.
func (c *OpCounter) CountSigVerify(p ids.ProcessID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sigVer[p]++
	c.mu.Unlock()
}

// CountRequest records that one client request was committed; per-request
// averages divide by this count.
func (c *OpCounter) CountRequest() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
}

// MACOps returns the total MAC operations (generation + verification)
// attributed to process p.
func (c *OpCounter) MACOps(p ids.ProcessID) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.macGen[p] + c.macVer[p]
}

// Requests returns the number of committed requests recorded.
func (c *OpCounter) Requests() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

// BottleneckMACOpsPerRequest returns the maximum, over all replica processes
// observed, of MAC operations per committed request. It returns 0 when no
// requests were recorded.
func (c *OpCounter) BottleneckMACOpsPerRequest() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.requests == 0 {
		return 0
	}
	var max uint64
	for p, g := range c.macGen {
		if !p.IsReplica() {
			continue
		}
		total := g + c.macVer[p]
		if total > max {
			max = total
		}
	}
	for p, v := range c.macVer {
		if !p.IsReplica() {
			continue
		}
		if _, seen := c.macGen[p]; seen {
			continue
		}
		if v > max {
			max = v
		}
	}
	return float64(max) / float64(c.requests)
}
