// Package zyzzyva implements the Zyzzyva baseline (Kotla et al.) the paper
// compares against: a monolithic speculative BFT protocol. The client sends
// its request to the primary, which orders it to all replicas; replicas
// speculatively execute and reply. The client commits after one phase when
// all 3f+1 replies match (three one-way delays); with only 2f+1 matching
// replies it completes a second phase by broadcasting a commit certificate.
//
// The view-change subprotocol — the part whose interaction with speculation
// makes Zyzzyva notoriously hard to get right, and which Abstract makes
// unnecessary — is not reproduced; the baseline exists to measure the
// common-case behaviour the paper's figures compare (with and without
// batching), and the fault-handling comparison is carried by AZyzzyva/Aliph.
package zyzzyva

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// RequestMessage is the client's request to the primary.
type RequestMessage struct {
	Req  msg.Request
	Auth authn.Authenticator
}

// OrderRequest is the primary's ordering message (OR) carrying a batch.
type OrderRequest struct {
	View  uint64
	Seq   uint64
	Batch []msg.Request
	// HistoryDigest is the primary's history digest up to and including this
	// batch.
	HistoryDigest authn.Digest
	MAC           authn.MAC
	ClientAuth    []authn.Authenticator
}

// SpecResponse is a replica's speculative reply.
type SpecResponse struct {
	View          uint64
	Seq           uint64
	Replica       ids.ProcessID
	Client        ids.ProcessID
	Timestamp     uint64
	HistoryDigest authn.Digest
	Result        []byte
	ResultDigest  authn.Digest
	MAC           authn.MAC
}

// CommitCertificate is sent by a client that gathered only 2f+1 matching
// speculative responses; replicas acknowledge it, completing the two-phase
// path.
type CommitCertificate struct {
	Client        ids.ProcessID
	Timestamp     uint64
	Seq           uint64
	HistoryDigest authn.Digest
	Replicas      []ids.ProcessID
	Auth          authn.Authenticator
}

// LocalCommit is a replica's acknowledgement of a commit certificate.
type LocalCommit struct {
	Replica   ids.ProcessID
	Client    ids.ProcessID
	Timestamp uint64
	MAC       authn.MAC
}

// Zyzzyva runs in-process only (perf-model experiments); its messages are
// deliberately absent from the binary tag table and the TCP audit.
func init() {
	transport.RegisterWireType(&RequestMessage{})    //wire:gobonly
	transport.RegisterWireType(&OrderRequest{})      //wire:gobonly
	transport.RegisterWireType(&SpecResponse{})      //wire:gobonly
	transport.RegisterWireType(&CommitCertificate{}) //wire:gobonly
	transport.RegisterWireType(&LocalCommit{})       //wire:gobonly
}

func specRespMACBytes(m *SpecResponse) []byte {
	buf := make([]byte, 28+2*authn.DigestSize)
	binary.BigEndian.PutUint64(buf[0:8], m.View)
	binary.BigEndian.PutUint64(buf[8:16], m.Seq)
	binary.BigEndian.PutUint32(buf[16:20], uint32(m.Replica))
	binary.BigEndian.PutUint64(buf[20:28], m.Timestamp)
	copy(buf[28:], m.HistoryDigest[:])
	copy(buf[28+authn.DigestSize:], m.ResultDigest[:])
	return buf
}

func orderMACBytes(view, seq uint64, hd authn.Digest) []byte {
	buf := make([]byte, 16+authn.DigestSize)
	binary.BigEndian.PutUint64(buf[0:8], view)
	binary.BigEndian.PutUint64(buf[8:16], seq)
	copy(buf[16:], hd[:])
	return buf
}

func requestAuthBytes(req msg.Request) []byte {
	d := req.Digest()
	return d[:]
}

// ReplicaConfig configures a Zyzzyva replica.
type ReplicaConfig struct {
	Cluster   ids.Cluster
	Replica   ids.ProcessID
	Keys      *authn.KeyStore
	App       app.Application
	Endpoint  transport.Endpoint
	BatchSize int
	// BatchDelay is how long the primary waits to fill a batch before
	// ordering what it has (0 orders immediately).
	BatchDelay time.Duration
	Ops        *authn.OpCounter
}

// Replica is a Zyzzyva replica (common case only).
type Replica struct {
	cfg ReplicaConfig

	mu           sync.Mutex
	view         uint64
	seq          uint64
	history      authn.Digest
	lastTS       map[ids.ProcessID]uint64
	lastResponse map[ids.ProcessID]*SpecResponse
	pendingBatch []msg.Request
	pendingAuth  []authn.Authenticator
	lastFlush    time.Time
	crashed      bool
	delay        time.Duration

	stopCh chan struct{}
	doneCh chan struct{}
}

// NewReplica creates a Zyzzyva replica; call Start to launch it.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	return &Replica{
		cfg:          cfg,
		lastTS:       make(map[ids.ProcessID]uint64),
		lastResponse: make(map[ids.ProcessID]*SpecResponse),
		stopCh:       make(chan struct{}),
		doneCh:       make(chan struct{}),
	}
}

// Start launches the replica's event loop.
func (r *Replica) Start() { go r.run() }

// Stop terminates the replica.
func (r *Replica) Stop() {
	close(r.stopCh)
	<-r.doneCh
}

// SetCrashed makes the replica drop all messages.
func (r *Replica) SetCrashed(c bool) {
	r.mu.Lock()
	r.crashed = c
	r.mu.Unlock()
}

// SetProcessingDelay injects an artificial per-message processing delay.
func (r *Replica) SetProcessingDelay(d time.Duration) {
	r.mu.Lock()
	r.delay = d
	r.mu.Unlock()
}

func (r *Replica) isPrimary() bool { return r.cfg.Cluster.Primary(r.view) == r.cfg.Replica }

func (r *Replica) run() {
	defer close(r.doneCh)
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-ticker.C:
			r.mu.Lock()
			if r.isPrimary() && len(r.pendingBatch) > 0 && (r.cfg.BatchDelay <= 0 || time.Since(r.lastFlush) >= r.cfg.BatchDelay) {
				r.flushBatchLocked()
			}
			r.mu.Unlock()
		case env, ok := <-r.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			r.handle(env.From, env.Payload)
		}
	}
}

func (r *Replica) handle(from ids.ProcessID, payload any) {
	r.mu.Lock()
	crashed, delay := r.crashed, r.delay
	r.mu.Unlock()
	if crashed {
		return
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch m := payload.(type) {
	case *RequestMessage:
		r.onRequest(m)
	case *OrderRequest:
		r.onOrder(from, m)
	case *CommitCertificate:
		r.onCommitCertificate(m)
	}
}

// onRequest queues a client request at the primary.
func (r *Replica) onRequest(m *RequestMessage) {
	if !r.isPrimary() {
		return
	}
	r.cfg.Ops.CountMACVerify(r.cfg.Replica, 1)
	if err := r.cfg.Keys.Verify(m.Auth, r.cfg.Replica, requestAuthBytes(m.Req)); err != nil {
		return
	}
	if m.Req.Timestamp <= r.lastTS[m.Req.Client] {
		if resp := r.lastResponse[m.Req.Client]; resp != nil && resp.Timestamp == m.Req.Timestamp {
			r.cfg.Endpoint.Send(m.Req.Client, resp)
		}
		return
	}
	r.pendingBatch = append(r.pendingBatch, m.Req)
	r.pendingAuth = append(r.pendingAuth, m.Auth)
	if len(r.pendingBatch) >= r.cfg.BatchSize {
		r.flushBatchLocked()
	}
}

// flushBatchLocked orders the pending batch to all replicas and executes it
// locally.
func (r *Replica) flushBatchLocked() {
	batch := r.pendingBatch
	auths := r.pendingAuth
	r.pendingBatch = nil
	r.pendingAuth = nil
	r.lastFlush = time.Now()

	r.seq++
	r.history = authn.HashAll(r.history[:], batchDigestBytes(batch))
	for _, other := range r.cfg.Cluster.Replicas() {
		if other == r.cfg.Replica {
			continue
		}
		or := &OrderRequest{
			View:          r.view,
			Seq:           r.seq,
			Batch:         batch,
			HistoryDigest: r.history,
			ClientAuth:    auths,
		}
		or.MAC = r.cfg.Keys.MAC(r.cfg.Replica, other, orderMACBytes(r.view, r.seq, r.history))
		r.cfg.Ops.CountMACGen(r.cfg.Replica, 1)
		r.cfg.Endpoint.Send(other, or)
	}
	r.executeBatchLocked(batch)
}

// onOrder speculatively executes the primary's batch at a backup replica.
func (r *Replica) onOrder(from ids.ProcessID, m *OrderRequest) {
	if from != r.cfg.Cluster.Primary(r.view) {
		return
	}
	r.cfg.Ops.CountMACVerify(r.cfg.Replica, 1)
	if err := r.cfg.Keys.VerifyMAC(from, r.cfg.Replica, orderMACBytes(m.View, m.Seq, m.HistoryDigest), m.MAC); err != nil {
		return
	}
	if m.Seq != r.seq+1 {
		return
	}
	// Verify the clients' authenticator entries for this replica.
	for i := range m.ClientAuth {
		r.cfg.Ops.CountMACVerify(r.cfg.Replica, 1)
		if i < len(m.Batch) {
			if err := r.cfg.Keys.Verify(m.ClientAuth[i], r.cfg.Replica, requestAuthBytes(m.Batch[i])); err != nil {
				return
			}
		}
	}
	r.seq = m.Seq
	r.history = m.HistoryDigest
	r.executeBatchLocked(m.Batch)
}

// executeBatchLocked speculatively executes a batch and replies to clients.
func (r *Replica) executeBatchLocked(batch []msg.Request) {
	for _, req := range batch {
		if req.Timestamp <= r.lastTS[req.Client] {
			continue
		}
		r.lastTS[req.Client] = req.Timestamp
		result := r.cfg.App.Execute(req.Command)
		resp := &SpecResponse{
			View:          r.view,
			Seq:           r.seq,
			Replica:       r.cfg.Replica,
			Client:        req.Client,
			Timestamp:     req.Timestamp,
			HistoryDigest: r.history,
			Result:        result,
			ResultDigest:  authn.Hash(result),
		}
		resp.MAC = r.cfg.Keys.MAC(r.cfg.Replica, req.Client, specRespMACBytes(resp))
		r.cfg.Ops.CountMACGen(r.cfg.Replica, 1)
		r.lastResponse[req.Client] = resp
		r.cfg.Endpoint.Send(req.Client, resp)
		if r.isPrimary() {
			r.cfg.Ops.CountRequest()
		}
	}
}

// onCommitCertificate acknowledges a client's commit certificate (two-phase
// path).
func (r *Replica) onCommitCertificate(m *CommitCertificate) {
	r.cfg.Ops.CountMACVerify(r.cfg.Replica, 1)
	if err := r.cfg.Keys.Verify(m.Auth, r.cfg.Replica, commitCertBytes(m)); err != nil {
		return
	}
	lc := &LocalCommit{Replica: r.cfg.Replica, Client: m.Client, Timestamp: m.Timestamp}
	lc.MAC = r.cfg.Keys.MAC(r.cfg.Replica, m.Client, localCommitBytes(lc))
	r.cfg.Ops.CountMACGen(r.cfg.Replica, 1)
	r.cfg.Endpoint.Send(m.Client, lc)
}

func commitCertBytes(m *CommitCertificate) []byte {
	buf := make([]byte, 20+authn.DigestSize)
	binary.BigEndian.PutUint32(buf[0:4], uint32(m.Client))
	binary.BigEndian.PutUint64(buf[4:12], m.Timestamp)
	binary.BigEndian.PutUint64(buf[12:20], m.Seq)
	copy(buf[20:], m.HistoryDigest[:])
	return buf
}

func localCommitBytes(m *LocalCommit) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint32(buf[0:4], uint32(m.Replica))
	binary.BigEndian.PutUint32(buf[4:8], uint32(m.Client))
	binary.BigEndian.PutUint64(buf[8:16], m.Timestamp)
	return buf
}

func batchDigestBytes(batch []msg.Request) []byte {
	d := make([]byte, 0, len(batch)*authn.DigestSize)
	for _, r := range batch {
		rd := r.Digest()
		d = append(d, rd[:]...)
	}
	return d
}

// ClientConfig configures a Zyzzyva client.
type ClientConfig struct {
	Cluster  ids.Cluster
	Keys     *authn.KeyStore
	ID       ids.ProcessID
	Endpoint transport.Endpoint
	// FastTimeout is how long the client waits for all 3f+1 speculative
	// replies before falling back to the two-phase path.
	FastTimeout time.Duration
	// TotalTimeout bounds a whole invocation.
	TotalTimeout time.Duration
	Ops          *authn.OpCounter
}

// Client is a Zyzzyva client.
type Client struct {
	cfg ClientConfig
}

// NewClient creates a Zyzzyva client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.FastTimeout <= 0 {
		cfg.FastTimeout = 50 * time.Millisecond
	}
	if cfg.TotalTimeout <= 0 {
		cfg.TotalTimeout = 5 * time.Second
	}
	return &Client{cfg: cfg}
}

// Invoke submits a request and blocks until it commits on the fast path
// (3f+1 matching speculative replies) or the two-phase path (2f+1 matching
// replies plus 2f+1 local commits).
func (c *Client) Invoke(ctx context.Context, req msg.Request) ([]byte, error) {
	auth := c.cfg.Keys.NewAuthenticator(c.cfg.ID, c.cfg.Cluster.Replicas(), requestAuthBytes(req))
	c.cfg.Ops.CountMACGen(c.cfg.ID, auth.NumMACs())
	m := &RequestMessage{Req: req, Auth: auth}
	primary := c.cfg.Cluster.Primary(0)
	c.cfg.Endpoint.Send(primary, m)

	type key struct {
		hist   authn.Digest
		result authn.Digest
	}
	votes := make(map[key]map[ids.ProcessID]*SpecResponse)
	fast := time.NewTimer(c.cfg.FastTimeout)
	defer fast.Stop()
	total := time.NewTimer(c.cfg.TotalTimeout)
	defer total.Stop()
	certSent := false
	commits := make(map[ids.ProcessID]bool)
	var chosen *SpecResponse

	maybeCert := func() {
		if certSent {
			return
		}
		for k, vs := range votes {
			if len(vs) >= c.cfg.Cluster.Quorum() {
				var replicas []ids.ProcessID
				var any *SpecResponse
				for r, v := range vs {
					replicas = append(replicas, r)
					any = v
				}
				cert := &CommitCertificate{
					Client:        c.cfg.ID,
					Timestamp:     req.Timestamp,
					Seq:           any.Seq,
					HistoryDigest: k.hist,
					Replicas:      replicas,
				}
				cert.Auth = c.cfg.Keys.NewAuthenticator(c.cfg.ID, c.cfg.Cluster.Replicas(), commitCertBytes(cert))
				c.cfg.Ops.CountMACGen(c.cfg.ID, cert.Auth.NumMACs())
				transport.Multicast(c.cfg.Endpoint, c.cfg.Cluster.Replicas(), cert)
				certSent = true
				chosen = any
				return
			}
		}
	}

	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-total.C:
			// Retransmit and restart the fast timer: the baseline has no
			// view change, so this only covers message loss.
			c.cfg.Endpoint.Send(primary, m)
			total.Reset(c.cfg.TotalTimeout)
		case <-fast.C:
			maybeCert()
		case env, ok := <-c.cfg.Endpoint.Inbox():
			if !ok {
				return nil, fmt.Errorf("zyzzyva: client endpoint closed")
			}
			switch t := env.Payload.(type) {
			case *SpecResponse:
				if t.Client != c.cfg.ID || t.Timestamp != req.Timestamp {
					continue
				}
				c.cfg.Ops.CountMACVerify(c.cfg.ID, 1)
				if err := c.cfg.Keys.VerifyMAC(t.Replica, c.cfg.ID, specRespMACBytes(t), t.MAC); err != nil {
					continue
				}
				k := key{hist: t.HistoryDigest, result: t.ResultDigest}
				if votes[k] == nil {
					votes[k] = make(map[ids.ProcessID]*SpecResponse)
				}
				votes[k][t.Replica] = t
				if len(votes[k]) == c.cfg.Cluster.N {
					return t.Result, nil
				}
			case *LocalCommit:
				if t.Client != c.cfg.ID || t.Timestamp != req.Timestamp || !certSent {
					continue
				}
				c.cfg.Ops.CountMACVerify(c.cfg.ID, 1)
				if err := c.cfg.Keys.VerifyMAC(t.Replica, c.cfg.ID, localCommitBytes(t), t.MAC); err != nil {
					continue
				}
				commits[t.Replica] = true
				if len(commits) >= c.cfg.Cluster.Quorum() && chosen != nil {
					return chosen.Result, nil
				}
			}
		}
	}
}
