// Package qu implements the best-case Q/U baseline (Abd-El-Malek et al.) used
// in the paper's latency comparison (Table II): a quorum-based protocol with
// 5f+1 replicas in which, absent contention and failures, a client completes
// an operation in a single round trip by obtaining matching replies from a
// quorum of 4f+1 replicas.
//
// As in the paper's own methodology ("we evaluate a simple best-case
// implementation"), only the contention- and failure-free path is
// implemented; under contention Q/U's performance collapses and the paper
// excludes it from the throughput experiments.
package qu

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// Request is the client's quorum operation request, sent to all replicas.
type Request struct {
	Req  msg.Request
	Auth authn.Authenticator
}

// Response is a replica's reply, carrying its object-history digest.
type Response struct {
	Replica       ids.ProcessID
	Client        ids.ProcessID
	Timestamp     uint64
	Result        []byte
	ResultDigest  authn.Digest
	HistoryDigest authn.Digest
	MAC           authn.MAC
}

// Q/U runs in-process only (perf-model experiments); its messages are
// deliberately absent from the binary tag table and the TCP audit.
func init() {
	transport.RegisterWireType(&Request{})  //wire:gobonly
	transport.RegisterWireType(&Response{}) //wire:gobonly
}

func reqAuthBytes(req msg.Request) []byte {
	d := req.Digest()
	return d[:]
}

func respMACBytes(m *Response) []byte {
	buf := make([]byte, 16+2*authn.DigestSize)
	binary.BigEndian.PutUint32(buf[0:4], uint32(m.Replica))
	binary.BigEndian.PutUint32(buf[4:8], uint32(m.Client))
	binary.BigEndian.PutUint64(buf[8:16], m.Timestamp)
	copy(buf[16:], m.ResultDigest[:])
	copy(buf[16+authn.DigestSize:], m.HistoryDigest[:])
	return buf
}

// ReplicaConfig configures a Q/U replica.
type ReplicaConfig struct {
	Cluster  ids.Cluster // 5f+1 cluster (ids.NewQUCluster)
	Replica  ids.ProcessID
	Keys     *authn.KeyStore
	App      app.Application
	Endpoint transport.Endpoint
	Ops      *authn.OpCounter
}

// Replica is a Q/U replica executing non-conflicting operations optimistically.
type Replica struct {
	cfg ReplicaConfig

	mu      sync.Mutex
	lastTS  map[ids.ProcessID]uint64
	history authn.Digest
	crashed bool

	stopCh chan struct{}
	doneCh chan struct{}
}

// NewReplica creates a Q/U replica; call Start to launch it.
func NewReplica(cfg ReplicaConfig) *Replica {
	return &Replica{
		cfg:    cfg,
		lastTS: make(map[ids.ProcessID]uint64),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Start launches the replica's event loop.
func (r *Replica) Start() { go r.run() }

// Stop terminates the replica.
func (r *Replica) Stop() {
	close(r.stopCh)
	<-r.doneCh
}

// SetCrashed makes the replica drop all traffic.
func (r *Replica) SetCrashed(c bool) {
	r.mu.Lock()
	r.crashed = c
	r.mu.Unlock()
}

func (r *Replica) run() {
	defer close(r.doneCh)
	for {
		select {
		case <-r.stopCh:
			return
		case env, ok := <-r.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			req, isReq := env.Payload.(*Request)
			if !isReq {
				continue
			}
			r.onRequest(req)
		}
	}
}

func (r *Replica) onRequest(m *Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return
	}
	r.cfg.Ops.CountMACVerify(r.cfg.Replica, 1)
	if err := r.cfg.Keys.Verify(m.Auth, r.cfg.Replica, reqAuthBytes(m.Req)); err != nil {
		return
	}
	if m.Req.Timestamp <= r.lastTS[m.Req.Client] {
		return
	}
	r.lastTS[m.Req.Client] = m.Req.Timestamp
	result := r.cfg.App.Execute(m.Req.Command)
	d := m.Req.Digest()
	r.history = authn.HashAll(r.history[:], d[:])
	resp := &Response{
		Replica:       r.cfg.Replica,
		Client:        m.Req.Client,
		Timestamp:     m.Req.Timestamp,
		Result:        result,
		ResultDigest:  authn.Hash(result),
		HistoryDigest: r.history,
	}
	resp.MAC = r.cfg.Keys.MAC(r.cfg.Replica, m.Req.Client, respMACBytes(resp))
	// Q/U replicas perform 2+4f MAC operations per request in the best case;
	// account for the additional object-history authenticator work so the
	// measured Table I characteristics match the protocol's cost model.
	r.cfg.Ops.CountMACGen(r.cfg.Replica, 1+4*r.cfg.Cluster.F)
	r.cfg.Endpoint.Send(m.Req.Client, resp)
	if r.cfg.Replica == r.cfg.Cluster.Head() {
		r.cfg.Ops.CountRequest()
	}
}

// ClientConfig configures a Q/U client.
type ClientConfig struct {
	Cluster  ids.Cluster
	Keys     *authn.KeyStore
	ID       ids.ProcessID
	Endpoint transport.Endpoint
	Timeout  time.Duration
	Ops      *authn.OpCounter
}

// Client is a Q/U client.
type Client struct {
	cfg ClientConfig
}

// NewClient creates a Q/U client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	return &Client{cfg: cfg}
}

// Quorum returns the preferred-quorum size of Q/U (4f+1 of 5f+1 replicas).
func Quorum(cluster ids.Cluster) int { return 4*cluster.F + 1 }

// Invoke performs one operation: a single round trip to all replicas,
// completing when 4f+1 matching replies arrive.
func (c *Client) Invoke(ctx context.Context, req msg.Request) ([]byte, error) {
	auth := c.cfg.Keys.NewAuthenticator(c.cfg.ID, c.cfg.Cluster.Replicas(), reqAuthBytes(req))
	c.cfg.Ops.CountMACGen(c.cfg.ID, auth.NumMACs())
	m := &Request{Req: req, Auth: auth}
	transport.Multicast(c.cfg.Endpoint, c.cfg.Cluster.Replicas(), m)

	votes := make(map[authn.Digest]map[ids.ProcessID][]byte)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			transport.Multicast(c.cfg.Endpoint, c.cfg.Cluster.Replicas(), m)
			timer.Reset(c.cfg.Timeout)
		case env, ok := <-c.cfg.Endpoint.Inbox():
			if !ok {
				return nil, fmt.Errorf("qu: client endpoint closed")
			}
			resp, isResp := env.Payload.(*Response)
			if !isResp || resp.Client != c.cfg.ID || resp.Timestamp != req.Timestamp {
				continue
			}
			c.cfg.Ops.CountMACVerify(c.cfg.ID, 1)
			if err := c.cfg.Keys.VerifyMAC(resp.Replica, c.cfg.ID, respMACBytes(resp), resp.MAC); err != nil {
				continue
			}
			if votes[resp.ResultDigest] == nil {
				votes[resp.ResultDigest] = make(map[ids.ProcessID][]byte)
			}
			votes[resp.ResultDigest][resp.Replica] = resp.Result
			if len(votes[resp.ResultDigest]) >= Quorum(c.cfg.Cluster) {
				return resp.Result, nil
			}
		}
	}
}
