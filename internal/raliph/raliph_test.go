package raliph_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/raliph"
)

func newRAliph(t *testing.T, checker *core.SpecChecker, opts raliph.Options) (*deploy.Cluster, *raliph.Registry) {
	t.Helper()
	cluster, registry, err := raliph.Deploy(deploy.Config{
		F:                   1,
		NewApp:              func() app.Application { return app.NewCounter() },
		Delta:               25 * time.Millisecond,
		TickInterval:        10 * time.Millisecond,
		InstrumentHistories: true,
		Checker:             checker,
	}, opts)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(cluster.Stop)
	return cluster, registry
}

// TestRAliphCommonCase: without attacks R-Aliph behaves like Aliph — a single
// client commits through Quorum without switching.
func TestRAliphCommonCase(t *testing.T) {
	checker := core.NewSpecChecker()
	cluster, registry := newRAliph(t, checker, raliph.Options{Monitor: raliph.MonitorConfig{Window: 200 * time.Millisecond}})
	client, err := registry.NewClient(cluster.ClientEnv(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for ts := uint64(1); ts <= 30; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("r")}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
	}
	if client.Switches() != 0 {
		t.Errorf("attack-free single-client run switched %d times, want 0", client.Switches())
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

// TestRAliphSurvivesProcessingDelayAttack: a Byzantine head delays every
// message; the service must keep committing (through switching to the
// Aardvark-backed Backup) and the monitors may initiate switches themselves.
func TestRAliphSurvivesProcessingDelayAttack(t *testing.T) {
	checker := core.NewSpecChecker()
	// Keep replica-initiated switching out of the liveness path of this test
	// (a very high expectation floor disables throughput-triggered switches);
	// the attack is survived through the composition's ordinary switching to
	// the Aardvark-backed Backup.
	cluster, registry := newRAliph(t, checker, raliph.Options{
		Monitor: raliph.MonitorConfig{Window: 400 * time.Millisecond, MinExpectation: 1e12},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Warm up without the attack so expectations form.
	warm, err := registry.NewClient(cluster.ClientEnv(0))
	if err != nil {
		t.Fatal(err)
	}
	for ts := uint64(1); ts <= 10; ts++ {
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: []byte("w")}
		if _, err := warm.Invoke(ctx, req); err != nil {
			t.Fatalf("warmup invoke %d: %v", ts, err)
		}
	}

	// Attack: the head delays processing of every message.
	cluster.Host(0).SetProcessingDelay(time.Millisecond)

	client, err := registry.NewClient(cluster.ClientEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for ts := uint64(1); ts <= 10; ts++ {
		req := msg.Request{Client: ids.Client(1), Timestamp: ts, Command: []byte(fmt.Sprintf("a%d", ts))}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d under attack: %v", ts, err)
		}
		committed++
	}
	if committed != 10 {
		t.Fatalf("only %d requests committed under attack", committed)
	}
	if errs := checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

func TestSwitcherClientID(t *testing.T) {
	id := raliph.SwitcherClientID(ids.Replica(2))
	if !id.IsClient() {
		t.Fatalf("switcher identity %v is not a client id", id)
	}
	if raliph.SwitcherClientID(ids.Replica(1)) == raliph.SwitcherClientID(ids.Replica(2)) {
		t.Fatalf("switcher identities collide")
	}
}
