// Package raliph implements R-Aliph (§6.3), the robust variant of Aliph: the
// same Quorum → Chain → Backup composition, hardened so that Byzantine
// clients and replicas cannot destroy its performance:
//
//   - Principle P1: Backup runs on top of Aardvark instead of plain PBFT.
//   - Principle P2: Quorum and Chain replicas monitor the throughput they
//     sustain (using commit feedback piggybacked by clients) and compare it
//     against the expectation computed while Backup (Aardvark) was running;
//     an underperforming instance is abandoned.
//   - Principle P3: replicas track client feedback to detect unfair request
//     treatment and abandon the instance when they observe it.
//   - Principle P4: switching is initiated by replicas themselves (a replica
//     invokes a noop request and immediately panics), the uncheckpointed
//     history is bounded, and per-peer channels are policed, so Byzantine
//     clients cannot delay a switch.
package raliph

import (
	"sync"
	"time"

	"abstractbft/internal/aardvark"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// MonitorConfig tunes the R-Aliph replica-side monitoring.
type MonitorConfig struct {
	// Window is the period over which sustained throughput is evaluated.
	Window time.Duration
	// MinExpectation is the floor below which the expectation is ignored
	// (avoids switching storms while the system warms up).
	MinExpectation float64
	// FairnessThreshold is the number of later-logged requests that may be
	// confirmed committed while an earlier request of another client is
	// still pending before the replica declares unfairness.
	FairnessThreshold int
	// FeedbackEvery is how many committed requests a client batches into one
	// feedback message (5 in the paper's prototype).
	FeedbackEvery int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Window <= 0 {
		c.Window = 300 * time.Millisecond
	}
	if c.MinExpectation <= 0 {
		c.MinExpectation = 1
	}
	if c.FairnessThreshold <= 0 {
		c.FairnessThreshold = 4
	}
	if c.FeedbackEvery <= 0 {
		c.FeedbackEvery = 5
	}
	return c
}

// Monitor is the per-replica R-Aliph watchdog: it consumes client feedback
// (host.FeedbackSink), observes instance activity (host.Observer), compares
// sustained throughput against the Aardvark expectation, checks fairness, and
// initiates switching when the current speculative instance must be
// abandoned.
type Monitor struct {
	cfg  MonitorConfig
	h    *host.Host
	sw   *switcher
	self ids.ProcessID

	mu sync.Mutex
	// expectation is the requests/second the current speculative instance
	// must sustain (from the last Backup/Aardvark run).
	expectation float64
	// window state.
	windowStart    time.Time
	committedCount uint64
	loggedCount    uint64
	// fairness: per client, the earliest logged-but-unconfirmed request and
	// the number of later requests confirmed since.
	pending map[ids.ProcessID]*pendingReq
	// activeInstance is the highest instance observed.
	activeInstance core.InstanceID
	// switches counts replica-initiated switches (observability).
	switches uint64
	// unhappy marks that a switch for the current instance is under way.
	unhappyFor core.InstanceID
}

type pendingReq struct {
	pos            uint64
	laterConfirmed int
}

// NewMonitor creates the monitor for one replica host; Attach must be called
// once the host exists.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), pending: make(map[ids.ProcessID]*pendingReq)}
}

// Attach wires the monitor to its replica host.
func (m *Monitor) Attach(h *host.Host, sw *switcher) {
	m.h = h
	m.sw = sw
	m.self = h.ID()
}

// Switches returns the number of replica-initiated switches.
func (m *Monitor) Switches() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.switches
}

// Expectation returns the current throughput expectation (requests/second).
func (m *Monitor) Expectation() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expectation
}

// RegisterExpectation records the expectation source of a Backup instance
// (Aardvark's monitor); called when a Backup instance is created.
func (m *Monitor) RegisterExpectation(inst core.InstanceID, src aardvark.ExpectationSource) {
	go func() {
		// Sample the expectation periodically while the Backup instance is
		// active; the last observed value carries over to the speculative
		// instances that follow.
		ticker := time.NewTicker(m.cfg.Window)
		defer ticker.Stop()
		for range ticker.C {
			m.mu.Lock()
			if m.activeInstance > inst {
				m.mu.Unlock()
				return
			}
			if e := src.Expectation(); e > m.expectation {
				m.expectation = e
			}
			m.mu.Unlock()
		}
	}()
}

// ClientFeedback implements host.FeedbackSink: clients report the timestamps
// of requests they committed and issued.
func (m *Monitor) ClientFeedback(replica ids.ProcessID, client ids.ProcessID, committed []uint64, issued []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.committedCount += uint64(len(committed))
	// Fairness: a confirmation for any client counts as progress that
	// later-logged requests of other clients overtook the pending ones.
	for other, p := range m.pending {
		if other == client {
			continue
		}
		p.laterConfirmed += len(committed)
	}
	if p, ok := m.pending[client]; ok && len(committed) > 0 {
		// The client's own pending request has been served.
		delete(m.pending, client)
		_ = p
	}
}

// RequestLogged implements host.Observer.
func (m *Monitor) RequestLogged(inst core.InstanceID, req msg.Request, pos uint64) {
	if req.Client == m.self || !req.Client.IsClient() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loggedCount++
	if _, ok := m.pending[req.Client]; !ok {
		m.pending[req.Client] = &pendingReq{pos: pos}
	}
}

// InstanceStopped implements host.Observer.
func (m *Monitor) InstanceStopped(inst core.InstanceID) {}

// InstanceActivated implements host.Observer.
func (m *Monitor) InstanceActivated(inst core.InstanceID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if inst > m.activeInstance {
		m.activeInstance = inst
		m.windowStart = time.Time{}
		m.committedCount = 0
		m.loggedCount = 0
		m.pending = make(map[ids.ProcessID]*pendingReq)
	}
}

// Tick evaluates the current window; the replica host's protocol tick calls
// it through the R-Aliph replica wrapper.
func (m *Monitor) Tick(current core.InstanceID, isSpeculative bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !isSpeculative || current < m.activeInstance || m.unhappyFor >= current {
		return
	}
	now := time.Now()
	if m.windowStart.IsZero() {
		m.windowStart = now
		m.committedCount = 0
		m.loggedCount = 0
		return
	}
	// Fairness check runs continuously.
	for _, p := range m.pending {
		if p.laterConfirmed >= m.cfg.FairnessThreshold {
			m.becomeUnhappyLocked(current)
			return
		}
	}
	if now.Sub(m.windowStart) < m.cfg.Window {
		return
	}
	rate := float64(m.committedCount) / now.Sub(m.windowStart).Seconds()
	demand := m.loggedCount > 0
	m.windowStart = now
	m.committedCount = 0
	m.loggedCount = 0
	if !demand {
		return
	}
	if m.expectation > m.cfg.MinExpectation && rate < m.expectation {
		m.becomeUnhappyLocked(current)
	}
}

// becomeUnhappyLocked stops the current instance and initiates a
// replica-driven switch.
func (m *Monitor) becomeUnhappyLocked(current core.InstanceID) {
	m.unhappyFor = current
	m.switches++
	sw := m.sw
	if sw != nil {
		go sw.InitiateSwitch(current)
	}
}
