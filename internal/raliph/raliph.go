package raliph

import (
	"context"
	"sync"
	"time"

	"abstractbft/internal/aardvark"
	"abstractbft/internal/aliph"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// Options configures R-Aliph.
type Options struct {
	// Aliph holds the composition parameters shared with plain Aliph.
	Aliph aliph.Options
	// Monitor tunes throughput/fairness monitoring.
	Monitor MonitorConfig
	// Aardvark tunes the Backup orderer's primary monitoring.
	Aardvark aardvark.MonitorConfig
	// MaxUncheckpointed bounds the uncheckpointed history per replica
	// (Principle P4); the paper's prototype uses 384.
	MaxUncheckpointed int
	// SwitchTimeout bounds a replica-initiated switch attempt.
	SwitchTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxUncheckpointed <= 0 {
		o.MaxUncheckpointed = 384
	}
	if o.SwitchTimeout <= 0 {
		o.SwitchTimeout = 5 * time.Second
	}
	return o
}

// Registry wires the per-replica monitors and switchers of an R-Aliph
// deployment. Create it first, pass its hooks into deploy.Config, then call
// Bind on the running cluster.
type Registry struct {
	opts Options
	comp *compose.Composition

	mu        sync.Mutex
	monitors  map[ids.ProcessID]*Monitor
	switchers map[ids.ProcessID]*switcher
}

// NewRegistry creates an empty registry.
func NewRegistry(opts Options) *Registry {
	r := &Registry{
		opts:      opts.withDefaults(),
		monitors:  make(map[ids.ProcessID]*Monitor),
		switchers: make(map[ids.ProcessID]*switcher),
	}
	r.comp = r.composition()
	return r
}

// composition compiles R-Aliph as a declarative value: Aliph's schedule with
// the feedback sink dispatching to per-replica monitors, Aardvark as the
// strong stages' orderer, and every protocol replica wrapped so the monitor
// is driven from its tick. The speculative flag (Quorum, Chain) falls out of
// the descriptor's progress predicate instead of a hardcoded role map.
func (r *Registry) composition() *compose.Composition {
	opts := r.opts
	// The Aardvark orderer needs the resolved values up front; resolve them
	// from the composition API's defaults so orderer and Backup stages can
	// never run mismatched parameters.
	batchSize := opts.Aliph.BatchSize
	if batchSize <= 0 {
		batchSize = compose.DefaultBatchSize
	}
	vcTimeout := opts.Aliph.ViewChangeTimeout
	if vcTimeout <= 0 {
		vcTimeout = compose.DefaultViewChangeTimeout
	}
	return compose.MustNew(aliph.SpecName, compose.Options{
		BackupK:           opts.Aliph.BackupK,
		BatchSize:         batchSize,
		ViewChangeTimeout: vcTimeout,
		LowLoadAfter:      opts.Aliph.LowLoadAfter,
		Feedback:          &dispatchingSink{registry: r},
		Orderer: aardvark.Orderer(batchSize, vcTimeout, opts.Aardvark,
			func(inst core.InstanceID, src aardvark.ExpectationSource) {
				// Register the Aardvark expectation with every monitor; each
				// replica only runs one orderer per Backup instance, so the
				// registration reaches the right monitor through its host.
				r.mu.Lock()
				defer r.mu.Unlock()
				for _, m := range r.monitors {
					m.RegisterExpectation(inst, src)
				}
			}),
		WrapReplica: func(inner host.ProtocolReplica, h *host.Host, st *host.InstanceState, d *compose.Descriptor) host.ProtocolReplica {
			return &monitoredReplica{
				inner:       inner,
				monitor:     r.MonitorFor(h.ID()),
				instance:    st.ID,
				speculative: !d.Strong(),
			}
		},
	})
}

// Observer implements the deploy.Config.Observer hook: it creates (or
// returns) the monitor of the given replica.
func (r *Registry) Observer(rep ids.ProcessID, h *host.Host) host.Observer {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.monitors[rep]
	if !ok {
		m = NewMonitor(r.opts.Monitor)
		r.monitors[rep] = m
	}
	m.Attach(h, r.switchers[rep])
	return m
}

// MonitorFor returns the monitor of a replica (nil if unknown).
func (r *Registry) MonitorFor(rep ids.ProcessID) *Monitor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.monitors[rep]
}

// SwitchDurations returns the most recent replica-initiated switch duration
// per replica (Table V).
func (r *Registry) SwitchDurations() map[ids.ProcessID]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.ProcessID]time.Duration, len(r.switchers))
	for rep, sw := range r.switchers {
		out[rep] = sw.LastSwitchDuration()
	}
	return out
}

// ReplicaFactory returns the per-instance protocol factory for R-Aliph
// replicas: Quorum and Chain with feedback-based monitoring, Backup over
// Aardvark — all derived from the compiled composition.
func (r *Registry) ReplicaFactory(cluster ids.Cluster) host.ProtocolFactory {
	return r.comp.ReplicaFactory(cluster)
}

// dispatchingSink forwards feedback to the monitor of the replica that
// received it.
type dispatchingSink struct {
	registry *Registry
}

// ClientFeedback implements host.FeedbackSink.
func (d *dispatchingSink) ClientFeedback(replica ids.ProcessID, client ids.ProcessID, committed []uint64, issued []uint64) {
	if m := d.registry.MonitorFor(replica); m != nil {
		m.ClientFeedback(replica, client, committed, issued)
	}
}

// monitoredReplica wraps a role replica, driving the R-Aliph monitor from the
// protocol tick and delegating everything else.
type monitoredReplica struct {
	inner       host.ProtocolReplica
	monitor     *Monitor
	instance    core.InstanceID
	speculative bool
}

// Handle implements host.ProtocolReplica.
func (m *monitoredReplica) Handle(from ids.ProcessID, payload any) { m.inner.Handle(from, payload) }

// ProtocolTick implements host.Ticker.
func (m *monitoredReplica) ProtocolTick() {
	if t, ok := m.inner.(host.Ticker); ok {
		t.ProtocolTick()
	}
	if m.monitor != nil {
		m.monitor.Tick(m.instance, m.speculative)
	}
}

// StopOnPanic forwards Backup's panic resistance.
func (m *monitoredReplica) StopOnPanic() bool {
	if p, ok := m.inner.(host.PanicResistant); ok {
		return p.StopOnPanic()
	}
	return true
}

// InstanceFactory returns the client-side factory: the composition's
// instances wrapped so that commit feedback is piggybacked on the
// feedback-capable stages (Quorum, Chain).
func (r *Registry) InstanceFactory(env core.ClientEnv) core.InstanceFactory {
	fb := &clientFeedback{every: r.opts.Monitor.withDefaults().FeedbackEvery}
	base := r.comp.InstanceFactory(env)
	return func(id core.InstanceID) (core.Instance, error) {
		inner, err := base(id)
		if err != nil {
			return nil, err
		}
		return &feedbackInstance{inner: inner, fb: fb}, nil
	}
}

// NewClient creates an R-Aliph client.
func (r *Registry) NewClient(env core.ClientEnv) (*core.Composer, error) {
	return core.NewComposer(r.InstanceFactory(env), 1)
}

// clientFeedback accumulates committed request timestamps to piggyback on the
// next requests.
type clientFeedback struct {
	mu      sync.Mutex
	pending []uint64
	every   int
	count   int
}

func (f *clientFeedback) recordCommit(ts uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	if f.every <= 1 || f.count%f.every == 0 {
		f.pending = append(f.pending, ts)
	}
}

func (f *clientFeedback) take() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.pending
	f.pending = nil
	return out
}

// feedbackInstance wraps an Aliph instance client, attaching feedback to
// Quorum and Chain invocations and recording commits.
type feedbackInstance struct {
	inner core.Instance
	fb    *clientFeedback
}

// ID implements core.Instance.
func (f *feedbackInstance) ID() core.InstanceID { return f.inner.ID() }

// Invoke implements core.Instance.
func (f *feedbackInstance) Invoke(ctx context.Context, req msg.Request, init *core.InitHistory) (core.Outcome, error) {
	if fc, ok := f.inner.(core.FeedbackCarrier); ok {
		fc.SetPendingFeedback(f.fb.take())
	}
	out, err := f.inner.Invoke(ctx, req, init)
	if err == nil && out.Committed {
		f.fb.recordCommit(req.Timestamp)
	}
	return out, err
}

// Bind attaches switchers (replica-as-client endpoints) to a running cluster
// built through deploy.New; it must be called before traffic that could
// require replica-initiated switching.
func (r *Registry) Bind(c *deploy.Cluster) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, h := range c.Hosts {
		rep := ids.Replica(i)
		ep := c.Net.Endpoint(SwitcherClientID(rep))
		sw := newSwitcher(h, c.Keys, ep, 25*time.Millisecond, r.opts.SwitchTimeout)
		r.switchers[rep] = sw
		if m := r.monitors[rep]; m != nil {
			m.Attach(h, sw)
		}
	}
}

// Deploy builds a complete in-process R-Aliph cluster: it creates the
// registry, the deployment, and binds the switchers.
func Deploy(cfg deploy.Config, opts Options) (*deploy.Cluster, *Registry, error) {
	reg := NewRegistry(opts)
	cfg.NewReplicaFactory = func(cluster ids.Cluster) host.ProtocolFactory { return reg.ReplicaFactory(cluster) }
	cfg.NewInstanceFactory = reg.InstanceFactory
	cfg.Observer = reg.Observer
	if cfg.MaxUncheckpointed == 0 {
		cfg.MaxUncheckpointed = opts.withDefaults().MaxUncheckpointed
	}
	cluster, err := deploy.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	reg.Bind(cluster)
	return cluster, reg, nil
}
