package raliph

import (
	"sync"
	"time"

	"abstractbft/internal/aliph"
	"abstractbft/internal/authn"
	"abstractbft/internal/backup"
	"abstractbft/internal/chain"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/quorum"
	"abstractbft/internal/transport"
)

// SwitcherClientID returns the client identity a replica uses when it acts as
// a client to perform replica-initiated switching (Principle P4): the replica
// invokes a noop request and immediately panics, so switching does not depend
// on application clients.
func SwitcherClientID(replica ids.ProcessID) ids.ProcessID {
	return ids.Client(1_000_000 + int(replica))
}

// switcher performs replica-initiated switching for one replica.
type switcher struct {
	h        *host.Host
	cluster  ids.Cluster
	keys     *authn.KeyStore
	id       ids.ProcessID // the switcher's client identity
	endpoint transport.Endpoint
	retry    time.Duration
	timeout  time.Duration

	mu           sync.Mutex
	nextTS       uint64
	lastDuration time.Duration
	switches     uint64
}

func newSwitcher(h *host.Host, keys *authn.KeyStore, endpoint transport.Endpoint, retry, timeout time.Duration) *switcher {
	if retry <= 0 {
		retry = 25 * time.Millisecond
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &switcher{
		h:        h,
		cluster:  h.Cluster(),
		keys:     keys,
		id:       SwitcherClientID(h.ID()),
		endpoint: endpoint,
		retry:    retry,
		timeout:  timeout,
	}
}

// LastSwitchDuration returns the duration of the most recent replica-initiated
// switch (Table V measures its worst case).
func (s *switcher) LastSwitchDuration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastDuration
}

// Switches returns how many switches this replica initiated.
func (s *switcher) Switches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// InitiateSwitch abandons the given instance: the replica stops it locally,
// panics it on every replica (acting as a client), collects 2f+1 signed
// ABORT messages, and activates the next instance with the resulting init
// history and a noop request.
func (s *switcher) InitiateSwitch(current core.InstanceID) {
	start := time.Now()
	// Stop the instance locally so it aborts subsequent requests even before
	// other replicas receive the panic. (InstanceStateFor takes the host lock
	// itself, so it must not be nested inside Locked.)
	s.h.StopInstanceByID(current)

	s.mu.Lock()
	s.nextTS++
	ts := s.nextTS
	s.mu.Unlock()

	panicMsg := &core.PanicMessage{Instance: current, Client: s.id, Timestamp: ts}
	sendPanic := func() {
		for _, r := range s.cluster.Replicas() {
			s.endpoint.Send(r, panicMsg)
		}
	}
	sendPanic()

	collector := core.NewAbortCollector(s.cluster, s.keys, current)
	deadline := time.NewTimer(s.timeout)
	defer deadline.Stop()
	retry := time.NewTicker(s.retry)
	defer retry.Stop()

	for !collector.Ready() {
		select {
		case <-deadline.C:
			return
		case <-retry.C:
			sendPanic()
		case env, ok := <-s.endpoint.Inbox():
			if !ok {
				return
			}
			if reply, isAbort := env.Payload.(*core.AbortReply); isAbort && reply.Instance == current {
				collector.Add(reply.Signed)
			}
		}
	}

	noop := msg.Request{Client: s.id, Timestamp: ts, Command: nil}
	ind, err := collector.Build([]msg.Request{noop})
	if err != nil {
		return
	}
	s.activateNext(ind, noop)

	s.mu.Lock()
	s.lastDuration = time.Since(start)
	s.switches++
	s.mu.Unlock()
}

// activateNext sends the first invocation of the next instance, carrying the
// init history, so every replica initializes it without client involvement.
func (s *switcher) activateNext(ind core.AbortIndication, noop msg.Request) {
	next := ind.Next
	init := &ind.Init
	switch aliph.RoleOf(next) {
	case aliph.RoleQuorum:
		auth := s.keys.NewAuthenticator(s.id, s.cluster.Replicas(), quorum.AuthBytes(next, noop))
		m := &quorum.RequestMessage{Instance: next, Req: noop, Init: init, Auth: auth}
		transport.Multicast(s.endpoint, s.cluster.Replicas(), m)
	case aliph.RoleChain:
		ca := s.keys.AppendChainMACs(authn.ChainAuthenticator{}, s.id, s.cluster.ChainSuccessorSet(s.id), chain.ClientAuthBytes(next, noop))
		m := &chain.Message{Instance: next, Req: noop, CA: ca, Init: init}
		s.endpoint.Send(s.cluster.Head(), m)
	default:
		auth := s.keys.NewAuthenticator(s.id, s.cluster.Replicas(), backup.AuthBytes(next, noop))
		m := &backup.RequestMessage{Instance: next, Req: noop, Init: init, Auth: auth}
		transport.Multicast(s.endpoint, s.cluster.Replicas(), m)
	}
}
