// Package prime implements the Prime robust BFT baseline (Amir et al.) used
// in the robustness comparison of §6.2. Prime's defining mechanisms are
// (1) pre-ordering: clients may send requests to any replica and replicas
// exchange the requests they receive, so every replica knows the set of
// requests the primary is expected to order, and (2) rate monitoring: the
// primary must order known requests within a delay derived from measured
// round-trip times, otherwise it is replaced.
//
// The implementation reuses the PBFT engine: request exchange is realized by
// forwarding client requests to all replicas, and the expected-ordering-delay
// check maps onto a (tighter) view-change timeout driven by the engine's
// known-but-unordered request tracking.
package prime

import (
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/ids"
	"abstractbft/internal/pbft"
	"abstractbft/internal/transport"
)

// ReplicaConfig configures a standalone Prime replica.
type ReplicaConfig struct {
	Cluster  ids.Cluster
	Replica  ids.ProcessID
	Keys     *authn.KeyStore
	App      app.Application
	Endpoint transport.Endpoint
	// BatchSize is the ordering batch size.
	BatchSize int
	// ExpectedOrderingDelay is the maximum time the primary may take to
	// order a request every replica knows about before it is replaced
	// (Prime derives it from measured round-trip times; here it is a
	// configuration parameter of the deployment).
	ExpectedOrderingDelay time.Duration
	Ops                   *authn.OpCounter
}

// NewReplica builds a standalone Prime replica.
func NewReplica(cfg ReplicaConfig) *pbft.Replica {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.ExpectedOrderingDelay <= 0 {
		cfg.ExpectedOrderingDelay = 150 * time.Millisecond
	}
	endpoint := cfg.Endpoint
	cluster := cfg.Cluster
	self := cfg.Replica
	forwarded := make(map[uint64]map[ids.ProcessID]bool)
	pcfg := pbft.ReplicaConfig{
		Cluster:           cfg.Cluster,
		Replica:           cfg.Replica,
		Keys:              cfg.Keys,
		App:               cfg.App,
		Endpoint:          cfg.Endpoint,
		BatchSize:         cfg.BatchSize,
		ViewChangeTimeout: cfg.ExpectedOrderingDelay,
		Ops:               cfg.Ops,
		RequestFilter: func(from ids.ProcessID, req *pbft.Request) bool {
			// Pre-ordering: a request received directly from a client is
			// forwarded once to every other replica so all replicas expect
			// the primary to order it.
			if from.IsClient() {
				seen := forwarded[req.Req.Timestamp]
				if seen == nil {
					seen = make(map[ids.ProcessID]bool)
					forwarded[req.Req.Timestamp] = seen
				}
				if !seen[req.Req.Client] {
					seen[req.Req.Client] = true
					for _, other := range cluster.Replicas() {
						if other != self {
							endpoint.Send(other, req)
						}
					}
				}
			}
			return true
		},
	}
	return pbft.NewReplica(pcfg)
}

// NewClient creates a client for the standalone Prime deployment; the
// request/reply protocol is PBFT's.
func NewClient(cfg pbft.ClientConfig) *pbft.Client { return pbft.NewClient(cfg) }
