package deploy

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/obs"
	"abstractbft/internal/shard"
	"abstractbft/internal/transport"
	"abstractbft/internal/transport/wirecodec"
)

// Topology describes a multi-process sharded deployment: one JSON file
// shared by every cmd/replica and cmd/client process of a cluster, so the
// replica plane and its clients cannot diverge on addresses, shard count,
// composition, or key routing. It is the process-boundary analogue of the
// in-process Config.
type Topology struct {
	// F is the number of tolerated Byzantine replicas (n = 3f+1).
	F int `json:"f"`
	// Replicas are the replica listen addresses, in replica order (exactly
	// 3f+1 of them).
	Replicas []string `json:"replicas"`
	// Shards is the number of parallel ordering shards (0 or 1 = one shard).
	Shards int `json:"shards,omitempty"`
	// Composition is the switching schedule in Spec DSL form or a registered
	// name (e.g. "azyzzyva", "quorum,chain,backup", "pbft"); empty selects
	// "azyzzyva".
	Composition string `json:"composition,omitempty"`
	// KeyExtractor selects the shard-routing key extractor: "prefix8" (the
	// keyed workload's 8-byte big-endian prefix), "kv" (the key of encoded
	// KV commands), or "full" (the whole command). Empty follows the app:
	// "kv" for the KV store (whose encoded commands all share the same first
	// bytes, so prefix8 would collapse them onto one shard), "prefix8"
	// otherwise.
	KeyExtractor string `json:"key_extractor,omitempty"`
	// App is the replicated application: "kv" (default), "counter", or
	// "null".
	App string `json:"app,omitempty"`
	// ReplySize is the null application's reply payload size.
	ReplySize int `json:"reply_size,omitempty"`
	// Secret seeds the deterministic pairwise key derivation of the cluster.
	Secret string `json:"secret,omitempty"`
	// ShardEpoch is the execution stage's merge round length (0 =
	// shard.DefaultEpoch).
	ShardEpoch int `json:"shard_epoch,omitempty"`
	// CheckpointInterval is CHK (0 = default 128, negative = disabled).
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
	// MaxBatch is the per-shard batch assembler size (0 = default 16, 1 =
	// per-request path).
	MaxBatch int `json:"max_batch,omitempty"`
	// TimestampWindow is the replica-side per-client timestamp window width
	// (0 = default 64).
	TimestampWindow int `json:"timestamp_window,omitempty"`
	// DeltaMs is the clients' synchrony bound in milliseconds (0 = 500ms —
	// generous by default so a crash-restart window stalls clients instead
	// of panicking them into an instance switch).
	DeltaMs int `json:"delta_ms,omitempty"`
	// Pipeline is the clients' default per-shard pipeline depth (0 or 1 =
	// strict invoke-then-wait).
	Pipeline int `json:"pipeline,omitempty"`
	// Codec selects the wire codec every process of the cluster frames its
	// TCP streams with: "binary" (default — the hand-rolled zero-alloc codec)
	// or "gob" (the reflective stdlib codec, kept as an opt-out). All
	// endpoints of one deployment must agree; the shared topology file is
	// what enforces that.
	Codec string `json:"codec,omitempty"`
	// MetricsAddrs are the replicas' observability listen addresses, in
	// replica order (either empty — metrics off — or exactly one per
	// replica). Each replica serves Prometheus text at /metrics and a JSON
	// snapshot at /metrics.json on its address.
	MetricsAddrs []string `json:"metrics_addrs,omitempty"`
	// TraceSampleRate head-samples one request lifecycle out of every N at the
	// client when metrics are enabled: the sampled request is stamped with a
	// trace context that rides the wire, so every process of the cluster
	// records spans for the same one-in-N requests (0 = default 128, negative
	// = tracing off).
	TraceSampleRate int `json:"trace_sample_rate,omitempty"`
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ on every
	// process's observability address. Off by default: profiling endpoints
	// can stall a process and belong behind an explicit operator opt-in.
	Pprof bool `json:"pprof,omitempty"`
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("deploy: topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("deploy: topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, fmt.Errorf("deploy: topology %s: %w", path, err)
	}
	return t, nil
}

// WriteFile writes the topology as indented JSON (harnesses share one file
// between the replica and client processes they spawn).
func (t Topology) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks the topology for structural errors: the replica count must
// match 3f+1 and every enumerated field must name a known variant.
func (t Topology) Validate() error {
	cluster := ids.NewCluster(t.F)
	if err := cluster.Validate(); err != nil {
		return err
	}
	if len(t.Replicas) != cluster.N {
		return fmt.Errorf("need %d replica addresses for f=%d, got %d", cluster.N, t.F, len(t.Replicas))
	}
	if _, err := t.Compile(); err != nil {
		return err
	}
	if _, err := t.Extractor(); err != nil {
		return err
	}
	switch t.App {
	case "", "kv", "counter", "null":
	default:
		return fmt.Errorf("unknown app %q (kv, counter, or null)", t.App)
	}
	if _, err := t.WireCodec(); err != nil {
		return err
	}
	if len(t.MetricsAddrs) != 0 && len(t.MetricsAddrs) != cluster.N {
		return fmt.Errorf("need 0 or %d metrics addresses for f=%d, got %d", cluster.N, t.F, len(t.MetricsAddrs))
	}
	return nil
}

// MetricsAddr returns the observability listen address of replica self
// (empty when the topology leaves metrics off).
func (t Topology) MetricsAddr(self ids.ProcessID) string {
	i := int(self)
	if i < 0 || i >= len(t.MetricsAddrs) {
		return ""
	}
	return t.MetricsAddrs[i]
}

// TraceRate resolves the effective lifecycle-tracer sample rate (0 when
// tracing is off).
func (t Topology) TraceRate() int {
	if t.TraceSampleRate < 0 {
		return 0
	}
	if t.TraceSampleRate == 0 {
		return 128
	}
	return t.TraceSampleRate
}

// WireCodec resolves the topology's wire codec (empty = binary).
func (t Topology) WireCodec() (transport.Codec, error) {
	switch t.Codec {
	case "", "binary":
		return wirecodec.Binary(), nil
	case "gob":
		return transport.GobCodec(), nil
	default:
		return nil, fmt.Errorf("unknown codec %q (binary or gob)", t.Codec)
	}
}

// NewReplicaEndpoint builds the authenticated TCP endpoint of replica self,
// framed with the topology's wire codec. cmd/replica and the process
// harnesses share this, so the cluster cannot end up with mixed codecs.
func (t Topology) NewReplicaEndpoint(self ids.ProcessID) (*transport.TCP, error) {
	codec, err := t.WireCodec()
	if err != nil {
		return nil, err
	}
	return transport.NewTCPCodec(self, t.AddrMap(), t.Keys(), codec)
}

// Cluster returns the replica group the topology describes.
func (t Topology) Cluster() ids.Cluster { return ids.NewCluster(t.F) }

// AddrMap maps every replica to its listen address.
func (t Topology) AddrMap() map[ids.ProcessID]string {
	m := make(map[ids.ProcessID]string, len(t.Replicas))
	for i, a := range t.Replicas {
		m[ids.Replica(i)] = a
	}
	return m
}

// Keys derives the cluster's key store from the shared secret.
func (t Topology) Keys() *authn.KeyStore {
	secret := t.Secret
	if secret == "" {
		secret = "abstract-bft"
	}
	return authn.NewKeyStore(secret)
}

// Compile compiles the topology's composition DSL.
func (t Topology) Compile() (*compose.Composition, error) {
	dsl := t.Composition
	if dsl == "" {
		dsl = "azyzzyva"
	}
	spec, err := compose.Parse(dsl)
	if err != nil {
		return nil, err
	}
	return compose.New(spec, compose.Options{})
}

// ExtractorName resolves the effective key-extractor name (the default
// follows the application — see the KeyExtractor field). Workload generators
// key their commands off this, so routing and generation cannot disagree.
func (t Topology) ExtractorName() string {
	if t.KeyExtractor != "" {
		return t.KeyExtractor
	}
	if t.App == "" || t.App == "kv" {
		return "kv"
	}
	return "prefix8"
}

// Extractor returns the shard-routing key extractor the topology names.
func (t Topology) Extractor() (shard.KeyExtractor, error) {
	switch t.ExtractorName() {
	case "prefix8":
		return shard.PrefixKeyExtractor(8), nil
	case "kv":
		return shard.KVKeyExtractor, nil
	case "full":
		return shard.FullCommandKey, nil
	default:
		return nil, fmt.Errorf("unknown key extractor %q (prefix8, kv, or full)", t.KeyExtractor)
	}
}

// NewApp returns the application constructor of the topology.
func (t Topology) NewApp() func() app.Application {
	switch t.App {
	case "counter":
		return func() app.Application { return app.NewCounter() }
	case "null":
		size := t.ReplySize
		return func() app.Application { return app.NewNull(size) }
	default:
		return func() app.Application { return app.NewKVStore() }
	}
}

// Delta returns the clients' synchrony bound.
func (t Topology) Delta() time.Duration {
	if t.DeltaMs > 0 {
		return time.Duration(t.DeltaMs) * time.Millisecond
	}
	return 500 * time.Millisecond
}

// ShardCount returns the effective shard count (at least 1).
func (t Topology) ShardCount() int {
	if t.Shards < 1 {
		return 1
	}
	return t.Shards
}

// NewNode builds the sharded replica node of process self over the given
// endpoint — the exact configuration cmd/replica runs, assembled here so the
// process harnesses and the binary cannot diverge. A non-nil registry
// instruments every layer of the node (plus a lifecycle tracer at the
// topology's sample rate); nil leaves the plane uninstrumented. Start (or
// RecoverFromPeers, for a crash-restarted process) must be called on the
// result.
func (t Topology) NewNode(self ids.ProcessID, ep transport.Endpoint, logger *log.Logger, reg *obs.Registry) (*shard.Node, error) {
	return t.NewNodeObs(self, ep, logger, reg, nil, nil)
}

// NewNodeObs builds the same node as NewNode with the full observability
// plane attached: spans, when non-nil, collects the spans of client-sampled
// traces (served at /debug/traces.json), and flight, when non-nil, records
// the node's protocol events (served at /debug/flight.json).
func (t Topology) NewNodeObs(self ids.ProcessID, ep transport.Endpoint, logger *log.Logger, reg *obs.Registry, spans *obs.SpanRing, flight *obs.Flight) (*shard.Node, error) {
	comp, err := t.Compile()
	if err != nil {
		return nil, err
	}
	keys := t.Keys()
	keys.SetMetrics(reg)
	return shard.NewNode(shard.NodeConfig{
		Shards:   t.ShardCount(),
		Cluster:  t.Cluster(),
		Replica:  self,
		Keys:     keys,
		Endpoint: ep,
		NewApp:   t.NewApp(),
		NewProtocol: func(sh int, cl ids.Cluster) host.ProtocolFactory {
			return comp.ReplicaFactory(cl)
		},
		Batch:              host.BatchPolicy{MaxBatch: t.MaxBatch},
		TimestampWindow:    t.TimestampWindow,
		Epoch:              t.ShardEpoch,
		CheckpointInterval: t.CheckpointInterval,
		Logger:             logger,
		Metrics:            reg,
		Tracer:             obs.NewTracerRing(reg, t.TraceRate(), spans),
		Flight:             flight,
		ProtocolName:       comp.ProtocolOf,
	}), nil
}

// DialClient builds a primed TCP client endpoint plus the keyed sharded
// client on top of it: the endpoint listens on listenAddr, completes the
// connection-proof exchange with every replica before the first request (so
// no reply is dropped at an un-proven reply route), and is closed on any
// error. cmd/client and the process harnesses share this, so the client-side
// construction cannot drift between them.
func (t Topology) DialClient(ctx context.Context, id ids.ProcessID, listenAddr string, depth int) (*transport.TCP, *shard.Client, error) {
	addrs := t.AddrMap()
	addrs[id] = listenAddr
	codec, err := t.WireCodec()
	if err != nil {
		return nil, nil, err
	}
	ep, err := transport.NewTCPCodec(id, addrs, t.Keys(), codec)
	if err != nil {
		return nil, nil, err
	}
	if err := ep.Prime(ctx, t.Cluster().Replicas()); err != nil {
		ep.Close()
		return nil, nil, err
	}
	client, err := t.NewShardClient(id, ep, depth)
	if err != nil {
		ep.Close()
		return nil, nil, err
	}
	return ep, client, nil
}

// NewShardClient builds the keyed sharded client of the given identity over
// the endpoint: per-shard composers derived from the topology's composition
// (pipelined when depth > 1), routed by the topology's key extractor.
func (t Topology) NewShardClient(id ids.ProcessID, ep transport.Endpoint, depth int) (*shard.Client, error) {
	comp, err := t.Compile()
	if err != nil {
		return nil, err
	}
	extract, err := t.Extractor()
	if err != nil {
		return nil, err
	}
	env := core.ClientEnv{
		Cluster:       t.Cluster(),
		Keys:          t.Keys(),
		ID:            id,
		Endpoint:      ep,
		Delta:         t.Delta(),
		RetryInterval: t.Delta() * 2,
	}
	var pipeline *core.PipelineOptions
	if depth <= 0 {
		depth = t.Pipeline
	}
	if depth > 1 {
		pipeline = &core.PipelineOptions{Depth: depth}
	}
	return shard.NewClient(shard.ClientConfig{
		Shards:             t.ShardCount(),
		Extract:            extract,
		Env:                env,
		NewInstanceFactory: comp.InstanceFactory,
		Pipeline:           pipeline,
	})
}
