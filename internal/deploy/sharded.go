package deploy

import (
	"context"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/shard"
	"abstractbft/internal/transport"
)

// Sharded is a running in-process deployment of the sharded multi-leader
// ordering plane: every replica runs cfg.Shards parallel composition
// replicas (one per shard, each with a rotated leader assignment) plus the
// asynchronous execution stage merging the shards' ordered spans.
type Sharded struct {
	cfg     Config
	Cluster ids.Cluster
	Keys    *authn.KeyStore
	Net     *transport.Local
	Nodes   []*shard.Node

	nextClient int
}

// NewSharded builds and starts a sharded cluster. The same protocol
// factories as New apply, instantiated once per shard over the shard's
// rotated cluster.
func NewSharded(cfg Config) (*Sharded, error) {
	if err := cfg.resolveProtocol(); err != nil {
		return nil, err
	}
	if cfg.NewApp == nil {
		cfg.NewApp = func() app.Application { return app.NewNull(0) }
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 25 * time.Millisecond
	}
	if cfg.Secret == "" {
		cfg.Secret = "abstract-bft"
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.KeyExtractor == nil {
		cfg.KeyExtractor = shard.PrefixKeyExtractor(8)
	}
	cluster := ids.NewCluster(cfg.F)
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	s := &Sharded{
		cfg:     cfg,
		Cluster: cluster,
		Keys:    authn.NewKeyStore(cfg.Secret),
		Net:     transport.NewLocal(cfg.Network),
	}
	for i := 0; i < cluster.N; i++ {
		s.Nodes = append(s.Nodes, s.buildNode(ids.Replica(i)))
	}
	for _, n := range s.Nodes {
		n.Start()
	}
	return s, nil
}

// buildNode assembles one replica node of the plane (shared by the initial
// deployment and crash-restarts).
func (s *Sharded) buildNode(r ids.ProcessID) *shard.Node {
	cfg := s.cfg
	return shard.NewNode(shard.NodeConfig{
		Shards:   cfg.Shards,
		Cluster:  s.Cluster,
		Replica:  r,
		Keys:     s.Keys,
		Endpoint: s.Net.Endpoint(r),
		NewApp:   cfg.NewApp,
		NewProtocol: func(sh int, cl ids.Cluster) host.ProtocolFactory {
			return cfg.NewReplicaFactory(cl)
		},
		Batch:                cfg.Batch,
		TimestampWindow:      cfg.TimestampWindow,
		Epoch:                cfg.ShardEpoch,
		NullOpInterval:       cfg.ShardNullOpInterval,
		RecoverRetryInterval: cfg.RecoverRetryInterval,
		CheckpointInterval:   cfg.CheckpointInterval,
		DisableGC:            cfg.DisableGC,
		MaxUncheckpointed:    cfg.MaxUncheckpointed,
		InstrumentHistories:  cfg.InstrumentHistories,
		TickInterval:         cfg.TickInterval,
		Ops:                  cfg.Ops,
		Metrics:              cfg.Metrics,
		Tracer:               cfg.Tracer,
		ProtocolName:         cfg.protocolName(),
	})
}

// RestartNode crash-restarts replica node i: the old node is stopped and
// discarded, and a fresh node comes up under the same identity and rejoins
// through the same network recovery plane the multi-process deployment uses
// (shard.Node.RecoverFromPeers): it collects an f+1-agreed merged boundary
// from the live peers over the wire (votes keyed by merged sequence, merged
// digest, and the hash of the serialized merged application, accumulated
// across collection rounds so a plane moving under traffic still converges),
// restores the merged mirror there, and state-syncs every per-shard sub-host
// pinned at or below the boundary so the mirror's suffix feeds without a
// gap. The per-shard transfers complete asynchronously under the
// re-agreement monitor (poll Node.Syncing). It fails when no f+1 agreement
// forms within Config.RecoverTimeout (fewer than f+1 live peers).
func (s *Sharded) RestartNode(i int) (*shard.Node, error) {
	old := s.Nodes[i]
	old.Stop()
	s.Net.ResetEndpoint(ids.Replica(i))
	n := s.buildNode(ids.Replica(i))
	s.Nodes[i] = n
	timeout := s.cfg.RecoverTimeout
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := n.RecoverFromPeers(ctx); err != nil {
		return n, err
	}
	return n, nil
}

// Stop shuts down every node and the network.
func (s *Sharded) Stop() {
	for _, n := range s.Nodes {
		n.Stop()
	}
	s.Net.Close()
}

// Node returns the i-th replica node.
func (s *Sharded) Node(i int) *shard.Node { return s.Nodes[i] }

// Shards returns the shard count of the plane.
func (s *Sharded) Shards() int { return s.cfg.Shards }

// Lead returns the replica leading shard sh.
func (s *Sharded) Lead(sh int) ids.ProcessID { return shard.Lead(s.Cluster, sh) }

// clientEnv builds the client environment for the i-th client.
func (s *Sharded) clientEnv(i int) core.ClientEnv {
	id := ids.Client(i)
	return core.ClientEnv{
		Cluster:       s.Cluster,
		Keys:          s.Keys,
		ID:            id,
		Endpoint:      s.Net.Endpoint(id),
		Delta:         s.cfg.Delta,
		RetryInterval: s.cfg.Delta * 2,
		Ops:           s.cfg.Ops,
		Checker:       s.cfg.Checker,
	}
}

// NewClient creates a sharded client with the given index; pipeline may be
// nil for strict invoke-then-wait per shard.
func (s *Sharded) NewClient(i int, pipeline *core.PipelineOptions) (*shard.Client, error) {
	return shard.NewClient(shard.ClientConfig{
		Shards:             s.cfg.Shards,
		Extract:            s.cfg.KeyExtractor,
		Env:                s.clientEnv(i),
		NewInstanceFactory: s.cfg.NewInstanceFactory,
		Pipeline:           pipeline,
	})
}

// NextClient creates a sharded client with the next unused client index.
func (s *Sharded) NextClient(pipeline *core.PipelineOptions) (*shard.Client, error) {
	i := s.nextClient
	s.nextClient++
	return s.NewClient(i, pipeline)
}
