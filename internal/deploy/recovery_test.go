package deploy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

// newRecoveryKV builds a plain (unsharded) ZLight KV cluster with a small
// checkpoint interval so short runs cross several boundaries and GC runs.
func newRecoveryKV(t *testing.T) *Cluster {
	t.Helper()
	cluster, err := New(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory: azyzzyva.InstanceFactory,
		Delta:              50 * time.Millisecond,
		CheckpointInterval: 8,
		Batch:              host.BatchPolicy{MaxBatch: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(cluster.Stop)
	return cluster
}

// waitConverged polls until the restarted host's applied state matches the
// reference host exactly.
func waitConverged(t *testing.T, restarted, ref *host.Host, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		seq, dig := restarted.AppliedState()
		refSeq, refDig := ref.AppliedState()
		if !restarted.Syncing() && seq == refSeq && dig == refDig && seq > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica did not converge: applied %d (ref %d)", seq, refSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashRestartCatchUp is the crash-restart e2e: a replica is killed
// mid-run and restarted with empty state. The live replicas have
// garbage-collected the request bodies below their stable checkpoint, so
// only the FETCH-STATE/STATE snapshot transfer can restore it; afterwards it
// must serve commits again (ZLight needs matching RESPs from all 3f+1
// replicas, so post-restart commits certify digest convergence end to end).
func TestCrashRestartCatchUp(t *testing.T) {
	cluster := newRecoveryKV(t)
	client, err := cluster.NextClient()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ts uint64
	put := func(k, v string) {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, v)}); err != nil {
			t.Fatalf("put %s at ts %d: %v", k, ts, err)
		}
	}
	for i := 0; i < 40; i++ {
		put(fmt.Sprintf("key-%d", i%16), fmt.Sprintf("v%d", i))
	}

	// GC must have run on the live replicas: the stable checkpoint covers
	// at least one interval and bodies below it are gone.
	stableSeq, trimmed := cluster.Host(0).CheckpointStatus()
	if stableSeq == 0 {
		t.Fatal("no stable checkpoint before the crash")
	}
	if trimmed == 0 {
		t.Fatal("live replicas did not garbage-collect below the stable checkpoint")
	}

	restarted := cluster.RestartReplica(3)
	waitConverged(t, restarted, cluster.Host(0), 10*time.Second)

	// The replica must have restored from a snapshot, not a from-zero
	// replay: the bodies below the stable checkpoint no longer exist.
	seq, _ := restarted.AppliedState()
	_, appliedDigests, _, _ := restarted.GCStats()
	if snapshotSeq := seq - uint64(appliedDigests); snapshotSeq == 0 {
		t.Fatal("restarted replica replayed from zero instead of adopting a snapshot")
	}
	// Its application state matches a live replica bit for bit.
	if got := restarted.Application().(*app.KVStore).Get("key-3"); got == "" {
		t.Fatal("restored KV store is missing pre-crash state")
	}
	want := cluster.Host(0).Application().(*app.KVStore)
	have := restarted.Application().(*app.KVStore)
	if want.Len() != have.Len() {
		t.Fatalf("restored store has %d keys, live store %d", have.Len(), want.Len())
	}

	// Post-restart commits prove the replica serves consistent RESPs again.
	for i := 0; i < 20; i++ {
		put(fmt.Sprintf("after-%d", i), "x")
	}
	if got := restarted.Application().(*app.KVStore).Get("after-19"); got != "x" {
		t.Fatalf("restarted replica did not execute post-restart traffic: %q", got)
	}
}

// TestShardedNodeRestart is the sharded crash-restart e2e: a whole node (all
// per-shard sub-hosts plus the merged mirror) is killed and restarted. It
// adopts the f+1-agreed merged boundary, state-syncs every shard, and
// converges to the same MergedSeq/MergedDigest and application state as the
// live replicas.
func TestShardedNodeRestart(t *testing.T) {
	cluster, err := NewSharded(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory: azyzzyva.InstanceFactory,
		Delta:              50 * time.Millisecond,
		Shards:             2,
		KeyExtractor:       shard.KVKeyExtractor,
		ShardEpoch:         1,
		CheckpointInterval: 8,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(cluster.Stop)
	client, err := cluster.NextClient(nil)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ts uint64
	put := func(k, v string) {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, v)}); err != nil {
			t.Fatalf("put %s at ts %d: %v", k, ts, err)
		}
	}
	for i := 0; i < 48; i++ {
		put(fmt.Sprintf("key-%d", i%24), fmt.Sprintf("v%d", i))
	}

	// Let the merged mirrors settle at one common boundary across nodes
	// (the merge is asynchronous).
	waitMergedEqual := func(nodes []*shard.Node, timeout time.Duration) (uint64, bool) {
		deadline := time.Now().Add(timeout)
		for {
			seq0, dig0, _ := nodes[0].Exec.MergedSnapshot()
			equal := seq0 > 0
			for _, n := range nodes[1:] {
				seq, dig, _ := n.Exec.MergedSnapshot()
				if seq != seq0 || dig != dig0 {
					equal = false
				}
			}
			if equal {
				return seq0, true
			}
			if time.Now().After(deadline) {
				return seq0, false
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	preSeq, ok := waitMergedEqual(cluster.Nodes, 5*time.Second)
	if !ok {
		t.Fatalf("live nodes did not settle on one merged boundary (node0 at %d)", preSeq)
	}

	restarted, err := cluster.RestartNode(3)
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	// Every sub-host must state-sync and the restored merged mirror must
	// match the live ones.
	deadline := time.Now().Add(10 * time.Second)
	for {
		syncing := false
		for _, h := range restarted.Hosts {
			if h.Syncing() {
				syncing = true
			}
		}
		if !syncing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted node still state-syncing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := waitMergedEqual(cluster.Nodes, 5*time.Second); !ok {
		t.Fatal("restarted node's merged mirror did not converge")
	}

	// Post-restart traffic commits (per-shard ZLight needs all 3f+1
	// replicas) and the merged mirrors keep agreeing.
	for i := 0; i < 24; i++ {
		put(fmt.Sprintf("key-%d", i%24), fmt.Sprintf("w%d", i))
	}
	if _, ok := waitMergedEqual(cluster.Nodes, 5*time.Second); !ok {
		t.Fatal("merged mirrors diverged after post-restart traffic")
	}
	seq3, dig3, app3 := restarted.Exec.MergedSnapshot()
	seq0, dig0, app0 := cluster.Nodes[0].Exec.MergedSnapshot()
	if seq3 != seq0 || dig3 != dig0 {
		t.Fatalf("merged state diverged: %d vs %d", seq3, seq0)
	}
	if string(app3) != string(app0) {
		t.Fatal("merged application state diverged")
	}
}
