package deploy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

// newRecoveryKV builds a plain (unsharded) ZLight KV cluster with a small
// checkpoint interval so short runs cross several boundaries and GC runs.
func newRecoveryKV(t *testing.T) *Cluster {
	t.Helper()
	cluster, err := New(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory: azyzzyva.InstanceFactory,
		Delta:              50 * time.Millisecond,
		CheckpointInterval: 8,
		Batch:              host.BatchPolicy{MaxBatch: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(cluster.Stop)
	return cluster
}

// waitConverged polls until the restarted host's applied state matches the
// reference host exactly.
func waitConverged(t *testing.T, restarted, ref *host.Host, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		seq, dig := restarted.AppliedState()
		refSeq, refDig := ref.AppliedState()
		if !restarted.Syncing() && seq == refSeq && dig == refDig && seq > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica did not converge: applied %d (ref %d)", seq, refSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRestartWithCrashedDesignatedPeer: the digest-first handshake asks one
// designated peer for the snapshot payload. When that peer is crashed, the
// digest-only majority still agrees but ships nothing; the retry rotation
// must re-designate a live peer and complete the transfer.
func TestRestartWithCrashedDesignatedPeer(t *testing.T) {
	cluster := newRecoveryKV(t)
	client, err := cluster.NextClient()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ts uint64
	for i := 0; i < 32; i++ {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(fmt.Sprintf("k%d", i%8), "v")}); err != nil {
			t.Fatalf("put %d: %v", ts, err)
		}
	}
	// Replica 0 is the restarted replica 3's first designated payload
	// shipper (OtherReplicas order). Crash it before the restart.
	cluster.Host(0).SetCrashed(true)
	restarted := cluster.RestartReplica(3)
	waitConverged(t, restarted, cluster.Host(1), 15*time.Second)
}

// TestRestartRestoresTimestampWindows: adopted snapshots must carry the
// per-client timestamp-window high-water marks. The suffix bodies of a state
// transfer only rebuild the marks above the snapshot boundary, so without
// the windows in the snapshot payload a client retransmitting a request from
// below the adopted boundary would be accepted as fresh and re-executed on
// the restarted replica — a history-divergence risk.
func TestRestartRestoresTimestampWindows(t *testing.T) {
	cluster := newRecoveryKV(t)
	client, err := cluster.NextClient()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 24 requests over CHK=8: several checkpoint boundaries, and every
	// timestamp stays well inside the 64-wide window below the final
	// high-water mark (the regime where only the transferred marks can
	// reject a below-boundary retransmission).
	const total = 24
	for ts := uint64(1); ts <= total; ts++ {
		cmd := app.EncodeKVPut(fmt.Sprintf("key-%d", ts%8), fmt.Sprintf("v%d", ts))
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: cmd}); err != nil {
			t.Fatalf("put at ts %d: %v", ts, err)
		}
	}

	restarted := cluster.RestartReplica(2)
	waitConverged(t, restarted, cluster.Host(0), 10*time.Second)

	// The transfer restored from a snapshot: bodies below its boundary were
	// never shipped, so the marks for those timestamps can only have come
	// from the snapshot's window payload.
	seq, _ := restarted.AppliedState()
	_, appliedDigests, _, _ := restarted.GCStats()
	boundary := seq - uint64(appliedDigests)
	if boundary == 0 {
		t.Fatal("restarted replica replayed from zero; the test needs a snapshot adoption")
	}
	for ts := uint64(1); ts <= total; ts++ {
		if restarted.TimestampFreshFor(ids.Client(0), ts) {
			t.Errorf("timestamp %d (snapshot boundary %d) is fresh on the restarted replica: a retransmission would re-execute", ts, boundary)
		}
	}
}

// TestCrashRestartCatchUp is the crash-restart e2e: a replica is killed
// mid-run and restarted with empty state. The live replicas have
// garbage-collected the request bodies below their stable checkpoint, so
// only the FETCH-STATE/STATE snapshot transfer can restore it; afterwards it
// must serve commits again (ZLight needs matching RESPs from all 3f+1
// replicas, so post-restart commits certify digest convergence end to end).
func TestCrashRestartCatchUp(t *testing.T) {
	cluster := newRecoveryKV(t)
	client, err := cluster.NextClient()
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ts uint64
	put := func(k, v string) {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, v)}); err != nil {
			t.Fatalf("put %s at ts %d: %v", k, ts, err)
		}
	}
	for i := 0; i < 40; i++ {
		put(fmt.Sprintf("key-%d", i%16), fmt.Sprintf("v%d", i))
	}

	// GC must have run on the live replicas: the stable checkpoint covers
	// at least one interval and bodies below it are gone.
	stableSeq, trimmed := cluster.Host(0).CheckpointStatus()
	if stableSeq == 0 {
		t.Fatal("no stable checkpoint before the crash")
	}
	if trimmed == 0 {
		t.Fatal("live replicas did not garbage-collect below the stable checkpoint")
	}

	restarted := cluster.RestartReplica(3)
	waitConverged(t, restarted, cluster.Host(0), 10*time.Second)

	// The replica must have restored from a snapshot, not a from-zero
	// replay: the bodies below the stable checkpoint no longer exist.
	seq, _ := restarted.AppliedState()
	_, appliedDigests, _, _ := restarted.GCStats()
	if snapshotSeq := seq - uint64(appliedDigests); snapshotSeq == 0 {
		t.Fatal("restarted replica replayed from zero instead of adopting a snapshot")
	}
	// Its application state matches a live replica bit for bit.
	if got := restarted.Application().(*app.KVStore).Get("key-3"); got == "" {
		t.Fatal("restored KV store is missing pre-crash state")
	}
	want := cluster.Host(0).Application().(*app.KVStore)
	have := restarted.Application().(*app.KVStore)
	if want.Len() != have.Len() {
		t.Fatalf("restored store has %d keys, live store %d", have.Len(), want.Len())
	}

	// Post-restart commits prove the replica serves consistent RESPs again.
	for i := 0; i < 20; i++ {
		put(fmt.Sprintf("after-%d", i), "x")
	}
	if got := restarted.Application().(*app.KVStore).Get("after-19"); got != "x" {
		t.Fatalf("restarted replica did not execute post-restart traffic: %q", got)
	}
}

// TestShardedNodeRestart is the sharded crash-restart e2e: a whole node (all
// per-shard sub-hosts plus the merged mirror) is killed and restarted. It
// adopts the f+1-agreed merged boundary, state-syncs every shard, and
// converges to the same MergedSeq/MergedDigest and application state as the
// live replicas.
func TestShardedNodeRestart(t *testing.T) {
	cluster, err := NewSharded(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory: azyzzyva.InstanceFactory,
		Delta:              50 * time.Millisecond,
		Shards:             2,
		KeyExtractor:       shard.KVKeyExtractor,
		ShardEpoch:         1,
		CheckpointInterval: 8,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(cluster.Stop)
	client, err := cluster.NextClient(nil)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ts uint64
	put := func(k, v string) {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, v)}); err != nil {
			t.Fatalf("put %s at ts %d: %v", k, ts, err)
		}
	}
	for i := 0; i < 48; i++ {
		put(fmt.Sprintf("key-%d", i%24), fmt.Sprintf("v%d", i))
	}

	// Let the merged mirrors settle at one common boundary across nodes
	// (the merge is asynchronous).
	waitMergedEqual := func(nodes []*shard.Node, timeout time.Duration) (uint64, bool) {
		deadline := time.Now().Add(timeout)
		for {
			seq0, dig0, _ := nodes[0].Exec.MergedSnapshot()
			equal := seq0 > 0
			for _, n := range nodes[1:] {
				seq, dig, _ := n.Exec.MergedSnapshot()
				if seq != seq0 || dig != dig0 {
					equal = false
				}
			}
			if equal {
				return seq0, true
			}
			if time.Now().After(deadline) {
				return seq0, false
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	preSeq, ok := waitMergedEqual(cluster.Nodes, 5*time.Second)
	if !ok {
		t.Fatalf("live nodes did not settle on one merged boundary (node0 at %d)", preSeq)
	}

	restarted, err := cluster.RestartNode(3)
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	// Every sub-host must state-sync and the restored merged mirror must
	// match the live ones.
	deadline := time.Now().Add(10 * time.Second)
	for {
		syncing := false
		for _, h := range restarted.Hosts {
			if h.Syncing() {
				syncing = true
			}
		}
		if !syncing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted node still state-syncing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := waitMergedEqual(cluster.Nodes, 5*time.Second); !ok {
		t.Fatal("restarted node's merged mirror did not converge")
	}

	// Post-restart traffic commits (per-shard ZLight needs all 3f+1
	// replicas) and the merged mirrors keep agreeing.
	for i := 0; i < 24; i++ {
		put(fmt.Sprintf("key-%d", i%24), fmt.Sprintf("w%d", i))
	}
	if _, ok := waitMergedEqual(cluster.Nodes, 5*time.Second); !ok {
		t.Fatal("merged mirrors diverged after post-restart traffic")
	}
	seq3, dig3, app3 := restarted.Exec.MergedSnapshot()
	seq0, dig0, app0 := cluster.Nodes[0].Exec.MergedSnapshot()
	if seq3 != seq0 || dig3 != dig0 {
		t.Fatalf("merged state diverged: %d vs %d", seq3, seq0)
	}
	if string(app3) != string(app0) {
		t.Fatal("merged application state diverged")
	}
}
