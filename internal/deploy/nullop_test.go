package deploy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

// TestIdleShardNullOpsAdvanceMerge drives traffic at exactly one shard of a
// two-shard plane: without Mencius-style null-ops the cross-shard merge
// would stall forever on the idle shard's empty epoch; with them the idle
// shard's leader fills its positions, every replica's merged sequence covers
// the busy shard's traffic, and the merged mirrors still agree — while the
// idle shard's application (null-ops execute nothing) and the clients (no
// replies for null-ops) never notice.
func TestIdleShardNullOpsAdvanceMerge(t *testing.T) {
	cluster, err := NewSharded(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory:  azyzzyva.InstanceFactory,
		Delta:               50 * time.Millisecond,
		Shards:              2,
		KeyExtractor:        shard.KVKeyExtractor,
		ShardEpoch:          2,
		ShardNullOpInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(cluster.Stop)
	client, err := cluster.NextClient(nil)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Find keys that all hash to one shard (the other stays idle).
	busy := -1
	var keys []string
	for i := 0; len(keys) < 8; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := client.ShardFor(msg.Request{Command: app.EncodeKVPut(k, "x")})
		if busy == -1 {
			busy = s
		}
		if s == busy {
			keys = append(keys, k)
		}
	}
	idle := 1 - busy

	var ts uint64
	for i, k := range keys {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: app.EncodeKVPut(k, fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}

	// The merge must advance past the busy shard's traffic on every replica
	// even though the idle shard got none: null-ops fill its epochs.
	want := uint64(len(keys))
	deadline := time.Now().Add(5 * time.Second)
	for {
		allThere := true
		for _, n := range cluster.Nodes {
			if n.Exec.MergedSeq() < want {
				allThere = false
			}
		}
		if allThere {
			break
		}
		if time.Now().After(deadline) {
			for i, n := range cluster.Nodes {
				t.Logf("replica %d merged %d", i, n.Exec.MergedSeq())
			}
			t.Fatalf("merge stalled below %d despite null-ops", want)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Merged mirrors agree across replicas (equal length => equal digest),
	// and the idle shard's application executed nothing.
	var digests []authn.Digest
	var seqs []uint64
	for _, n := range cluster.Nodes {
		seq, dig, _ := n.Exec.MergedSnapshot()
		seqs = append(seqs, seq)
		digests = append(digests, dig)
	}
	for i := 1; i < len(digests); i++ {
		if seqs[i] == seqs[0] && digests[i] != digests[0] {
			t.Fatalf("replica %d merged digest diverged", i)
		}
	}
	for _, n := range cluster.Nodes {
		if got := n.Host(idle).Application().(*app.KVStore).Len(); got != 0 {
			t.Fatalf("idle shard executed %d commands (null-ops must execute nothing)", got)
		}
		if merged := n.Exec.MergedApp().(*app.KVStore); merged.Len() > len(keys) {
			t.Fatalf("merged mirror grew %d keys from null-ops", merged.Len())
		}
	}
}
