package deploy

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

func newShardedKV(t *testing.T, shards int) *Sharded {
	t.Helper()
	cluster, err := NewSharded(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory: azyzzyva.InstanceFactory,
		Delta:              20 * time.Millisecond,
		Shards:             shards,
		KeyExtractor:       shard.KVKeyExtractor,
		ShardEpoch:         1,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(cluster.Stop)
	return cluster
}

// TestShardedKVEndToEnd drives a 2-shard plane over a KV store: per-key
// sequences stay linearizable (each key is ordered by one shard), different
// keys actually use different shards and leaders, and the asynchronous
// execution stage of every replica converges to the same merged sequence.
func TestShardedKVEndToEnd(t *testing.T) {
	cluster := newShardedKV(t, 2)
	client, err := cluster.NextClient(nil)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	shardCounts := make(map[int]int)
	var ts uint64
	invoke := func(cmd []byte) []byte {
		ts++
		req := msg.Request{Client: ids.Client(0), Timestamp: ts, Command: cmd}
		shardCounts[client.ShardFor(req)]++
		reply, err := client.Invoke(ctx, req)
		if err != nil {
			t.Fatalf("invoke ts=%d: %v", ts, err)
		}
		return reply
	}

	// Per-key linearizable sequence: put v1, read v1, put v2, read v2.
	for i, k := range keys {
		invoke(app.EncodeKVPut(k, fmt.Sprintf("v1-%d", i)))
		if got := invoke(app.EncodeKVGet(k)); string(got) != fmt.Sprintf("v1-%d", i) {
			t.Fatalf("key %s: read %q after first put", k, got)
		}
		invoke(app.EncodeKVPut(k, fmt.Sprintf("v2-%d", i)))
		if got := invoke(app.EncodeKVGet(k)); string(got) != fmt.Sprintf("v2-%d", i) {
			t.Fatalf("key %s: read %q after second put", k, got)
		}
	}
	if len(shardCounts) < 2 {
		t.Fatalf("all keys hashed to one shard (%v); pick different key names", shardCounts)
	}
	// No aborts in the failure-free run: every shard still on instance 1.
	for s := 0; s < cluster.Shards(); s++ {
		if client.Switches(s) != 0 {
			t.Fatalf("shard %d switched instances in the failure-free case", s)
		}
	}
	// The two shards have different leaders.
	if cluster.Lead(0) == cluster.Lead(1) {
		t.Fatalf("both shards led by %v", cluster.Lead(0))
	}

	// Every replica's execution stage converges to the same merged prefix:
	// with epoch 1, min(requests per shard) full rounds merge.
	min := shardCounts[0]
	if shardCounts[1] < min {
		min = shardCounts[1]
	}
	want := uint64(2 * min)
	deadline := time.Now().Add(5 * time.Second)
	for {
		allThere := true
		for _, n := range cluster.Nodes {
			if n.Exec.MergedSeq() < want {
				allThere = false
			}
		}
		if allThere || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var digests []authn.Digest
	for i, n := range cluster.Nodes {
		if got := n.Exec.MergedSeq(); got < want {
			t.Fatalf("replica %d merged %d requests, want at least %d", i, got, want)
		}
		digests = append(digests, n.Exec.MergedDigest())
	}
	// Digests are comparable when the merged lengths match; all replicas see
	// the same per-shard histories, so they end at the same length.
	for i := 1; i < len(digests); i++ {
		if cluster.Nodes[i].Exec.MergedSeq() == cluster.Nodes[0].Exec.MergedSeq() && digests[i] != digests[0] {
			t.Fatalf("replica %d merged digest diverged from replica 0", i)
		}
	}
}

// TestShardedAbortIndependence stops one shard's instance on every replica
// and expects that shard's composition to switch instances while the other
// shard keeps committing on instance 1 — per-shard abort/switch independence.
func TestShardedAbortIndependence(t *testing.T) {
	cluster := newShardedKV(t, 2)
	client, err := cluster.NextClient(nil)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Find one key per shard.
	keyFor := make(map[int]string)
	for i := 0; len(keyFor) < 2; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := client.ShardFor(msg.Request{Command: app.EncodeKVPut(k, "x")})
		if _, ok := keyFor[s]; !ok {
			keyFor[s] = k
		}
	}

	var ts uint64
	invoke := func(cmd []byte) {
		ts++
		if _, err := client.Invoke(ctx, msg.Request{Client: ids.Client(0), Timestamp: ts, Command: cmd}); err != nil {
			t.Fatalf("invoke ts=%d: %v", ts, err)
		}
	}
	invoke(app.EncodeKVPut(keyFor[0], "before"))
	invoke(app.EncodeKVPut(keyFor[1], "before"))

	// Stop shard 1's instance 1 on every replica (the replica-side abort).
	for _, n := range cluster.Nodes {
		n.Host(1).StopInstanceByID(1)
	}

	// Shard 1 must recover by switching instances; shard 0 must not notice.
	invoke(app.EncodeKVPut(keyFor[1], "after-switch"))
	if client.ActiveInstance(1) <= 1 {
		t.Fatalf("shard 1 still on instance %d after its instance was stopped", client.ActiveInstance(1))
	}
	invoke(app.EncodeKVPut(keyFor[0], "after"))
	if got := client.ActiveInstance(0); got != 1 {
		t.Fatalf("shard 0 switched to instance %d although only shard 1 was stopped", got)
	}
	if client.Switches(0) != 0 {
		t.Fatal("shard 0 performed switches although only shard 1 was stopped")
	}

	// The merged mirrors re-sync across the switch: the adopted history
	// replaced shard 1's speculative tail in every executor (HistoryReset +
	// re-feed), so all replicas converge to one merged boundary and digest.
	deadline := time.Now().Add(5 * time.Second)
	for {
		seq0, dig0, _ := cluster.Nodes[0].Exec.MergedSnapshot()
		equal := seq0 > 0
		for _, n := range cluster.Nodes[1:] {
			seq, dig, _ := n.Exec.MergedSnapshot()
			if seq != seq0 || dig != dig0 {
				equal = false
			}
		}
		if equal {
			break
		}
		if time.Now().After(deadline) {
			for i, n := range cluster.Nodes {
				seq, dig, _ := n.Exec.MergedSnapshot()
				t.Logf("replica %d merged %d digest %x", i, seq, dig[:4])
			}
			t.Fatal("merged mirrors did not converge after the instance switch")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShardedConcurrentClientsRace exercises the asynchronous execution
// stage under concurrency (run with -race): pipelined sharded clients invoke
// keyed requests across shards while the merged state is read concurrently.
func TestShardedConcurrentClientsRace(t *testing.T) {
	cluster := newShardedKV(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients, perClient = 3, 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		client, err := cluster.NextClient(&core.PipelineOptions{Depth: 4})
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
		defer client.Close()
		id := ids.Client(c)
		wg.Add(1)
		go func(client *shard.Client, c int) {
			defer wg.Done()
			for i := 1; i <= perClient; i++ {
				cmd := app.EncodeKVPut(fmt.Sprintf("c%d-k%d", c, i%4), "v")
				if _, err := client.Invoke(ctx, msg.Request{Client: id, Timestamp: uint64(i), Command: cmd}); err != nil {
					t.Errorf("client %d invoke %d: %v", c, i, err)
					return
				}
			}
		}(client, c)
	}
	// Concurrent reads of the merged state while ordering is in flight.
	stopPoll := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			for _, n := range cluster.Nodes {
				n.Exec.MergedSeq()
				n.Exec.MergedDigest()
				n.Exec.MergedApp()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stopPoll)
	pollWg.Wait()
}
