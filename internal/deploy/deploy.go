// Package deploy assembles in-process clusters of the composed protocols
// (AZyzzyva, Aliph, R-Aliph) and provides clients bound to them. Examples,
// integration tests, the workload harness, and the benchmark suite all build
// their clusters through this package; multi-process deployments use the same
// building blocks over the TCP transport in cmd/replica and cmd/client.
package deploy

import (
	"fmt"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/compose"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/obs"
	"abstractbft/internal/shard"
	"abstractbft/internal/transport"
)

// Config describes an in-process cluster.
type Config struct {
	// F is the number of tolerated Byzantine replicas (n = 3f+1).
	F int
	// NewApp builds the application replica instances execute; nil selects a
	// null application with empty replies.
	NewApp func() app.Application
	// Composition is the declarative protocol composition the cluster runs:
	// replica and client factories are both derived from it, so they cannot
	// diverge. Build one with compose.New / compose.MustNew (e.g.
	// compose.MustNew("quorum,chain,backup", compose.Options{}) is Aliph).
	Composition *compose.Composition
	// NewReplicaFactory builds the per-instance protocol factory directly
	// (legacy escape hatch for hand-rolled factories; leave nil when
	// Composition is set).
	NewReplicaFactory func(cluster ids.Cluster) host.ProtocolFactory
	// NewInstanceFactory builds the client-side instance factory directly
	// (legacy escape hatch; leave nil when Composition is set).
	NewInstanceFactory func(env core.ClientEnv) core.InstanceFactory
	// Delta is the synchrony bound used for client timers.
	Delta time.Duration
	// Batch configures the replica-side request batch assembler (ZLight's
	// primary, Chain's head). The zero value selects the defaults; set
	// MaxBatch to 1 to disable batching.
	Batch host.BatchPolicy
	// TimestampWindow is the replica-side per-client timestamp window width
	// (0 = default 64, 1 = strict increasing timestamps).
	TimestampWindow int
	// Shards is the number of parallel ordering shards for NewSharded
	// (0 or 1 = a single shard; plain New ignores it).
	Shards int
	// KeyExtractor maps requests to application keys for shard routing; nil
	// selects shard.PrefixKeyExtractor(8), matching the keyed workload
	// generators (falling back to the whole command for shorter ones).
	KeyExtractor shard.KeyExtractor
	// ShardEpoch is the execution stage's cross-shard merge round length
	// (0 = shard.DefaultEpoch).
	ShardEpoch int
	// Network configures the in-process transport (loss, delay, queueing).
	Network transport.Options
	// CheckpointInterval is CHK (0 = default 128, negative = disabled).
	CheckpointInterval int
	// DisableGC keeps whole histories and request bodies in memory for the
	// lifetime of every replica (the pre-statesync behaviour); by default
	// replicas garbage-collect below their last stable checkpoint.
	DisableGC bool
	// ShardNullOpInterval is the sharded plane's idle-shard null-op probe
	// period (0 = shard.DefaultNullOpInterval, negative = disabled).
	ShardNullOpInterval time.Duration
	// RecoverRetryInterval is the sharded recovery plane's poll period:
	// merged-boundary collection rounds and the re-agreement retry that
	// re-pins a pruned pinned sync (0 = shard.DefaultRecoverRetryInterval).
	RecoverRetryInterval time.Duration
	// RecoverTimeout bounds how long RestartNode waits for an f+1-agreed
	// merged boundary among the live peers (0 = 15s).
	RecoverTimeout time.Duration
	// MaxUncheckpointed bounds the uncheckpointed history (R-Aliph).
	MaxUncheckpointed int
	// InstrumentHistories enables the specification checker instrumentation.
	InstrumentHistories bool
	// Checker optionally records client events for the specification
	// checker.
	Checker *core.SpecChecker
	// Ops optionally counts cryptographic operations across the cluster.
	Ops *authn.OpCounter
	// Secret seeds the deterministic key derivation.
	Secret string
	// TickInterval is the replica protocol tick (view-change timers).
	TickInterval time.Duration
	// Observer is installed on every replica host (R-Aliph monitoring,
	// tests). The function receives the replica identifier and returns the
	// observer for that replica (nil for none).
	Observer func(r ids.ProcessID, h *host.Host) host.Observer
	// Metrics, when non-nil, instruments every replica of the cluster into
	// one shared registry (per-replica series aggregate; sharded planes label
	// by shard). Nil keeps the hot paths on the no-op metric path.
	Metrics *obs.Registry
	// Tracer, when non-nil, samples request lifecycles across the replicas.
	Tracer *obs.Tracer
}

// protocolName derives the instance-protocol naming function for the
// compose_active_protocol gauge (nil without a declared Composition).
func (cfg *Config) protocolName() func(core.InstanceID) string {
	if cfg.Composition == nil {
		return nil
	}
	return cfg.Composition.ProtocolOf
}

// Cluster is a running in-process deployment.
type Cluster struct {
	cfg     Config
	Cluster ids.Cluster
	Keys    *authn.KeyStore
	Net     *transport.Local
	Hosts   []*host.Host

	nextClient int
}

// resolveProtocol derives the protocol factories from cfg.Composition (the
// declarative path) or validates the legacy factory pair. Setting both is a
// configuration bug — the legacy factories would silently win over (or
// diverge from) the declared composition — and is rejected with a
// descriptive error.
func (cfg *Config) resolveProtocol() error {
	legacy := cfg.NewReplicaFactory != nil || cfg.NewInstanceFactory != nil
	if cfg.Composition != nil && legacy {
		return fmt.Errorf("deploy: both Composition (%s) and legacy NewReplicaFactory/NewInstanceFactory are set; declare the protocol once — drop the factory pair or the Composition", cfg.Composition)
	}
	if cfg.Composition != nil {
		comp := cfg.Composition
		cfg.NewReplicaFactory = comp.ReplicaFactory
		cfg.NewInstanceFactory = comp.InstanceFactory
		return nil
	}
	if cfg.NewReplicaFactory == nil || cfg.NewInstanceFactory == nil {
		return fmt.Errorf("deploy: no protocol configured; set Composition (or both legacy factories)")
	}
	return nil
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.resolveProtocol(); err != nil {
		return nil, err
	}
	if cfg.NewApp == nil {
		cfg.NewApp = func() app.Application { return app.NewNull(0) }
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 25 * time.Millisecond
	}
	if cfg.Secret == "" {
		cfg.Secret = "abstract-bft"
	}
	cluster := ids.NewCluster(cfg.F)
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		Cluster: cluster,
		Keys:    authn.NewKeyStore(cfg.Secret),
		Net:     transport.NewLocal(cfg.Network),
	}
	factory := cfg.NewReplicaFactory(cluster)
	for i := 0; i < cluster.N; i++ {
		r := ids.Replica(i)
		h := host.New(host.Config{
			Cluster:             cluster,
			Replica:             r,
			Keys:                c.Keys,
			App:                 cfg.NewApp(),
			Endpoint:            c.Net.Endpoint(r),
			FirstInstance:       1,
			NewProtocol:         factory,
			Batch:               cfg.Batch,
			TimestampWindow:     cfg.TimestampWindow,
			CheckpointInterval:  cfg.CheckpointInterval,
			DisableGC:           cfg.DisableGC,
			MaxUncheckpointed:   cfg.MaxUncheckpointed,
			InstrumentHistories: cfg.InstrumentHistories,
			Ops:                 cfg.Ops,
			TickInterval:        cfg.TickInterval,
			Metrics:             cfg.Metrics,
			Tracer:              cfg.Tracer,
			ProtocolName:        cfg.protocolName(),
		})
		if cfg.Observer != nil {
			if obs := cfg.Observer(r, h); obs != nil {
				h.SetObserver(obs)
			}
		}
		c.Hosts = append(c.Hosts, h)
	}
	for _, h := range c.Hosts {
		h.Start()
	}
	return c, nil
}

// RestartReplica crash-restarts replica i: the old host is stopped and
// discarded (its history, application state, and snapshots die with it), a
// fresh host comes up under the same identity with an empty application and
// a clean endpoint, and state-syncs from its peers — the FETCH-STATE/STATE
// transfer restores the application snapshot at the cluster's stable
// checkpoint plus the history suffix beyond it, accepted only under f+1
// digest agreement. The returned host replaces Hosts[i]; catch-up completes
// asynchronously (poll Host.Syncing / Host.AppliedState).
func (c *Cluster) RestartReplica(i int) *host.Host {
	old := c.Hosts[i]
	old.Stop()
	r := ids.Replica(i)
	h := host.New(host.Config{
		Cluster:             c.Cluster,
		Replica:             r,
		Keys:                c.Keys,
		App:                 c.cfg.NewApp(),
		Endpoint:            c.Net.ResetEndpoint(r),
		FirstInstance:       1,
		NewProtocol:         c.cfg.NewReplicaFactory(c.Cluster),
		Batch:               c.cfg.Batch,
		TimestampWindow:     c.cfg.TimestampWindow,
		CheckpointInterval:  c.cfg.CheckpointInterval,
		DisableGC:           c.cfg.DisableGC,
		MaxUncheckpointed:   c.cfg.MaxUncheckpointed,
		InstrumentHistories: c.cfg.InstrumentHistories,
		Ops:                 c.cfg.Ops,
		TickInterval:        c.cfg.TickInterval,
		Metrics:             c.cfg.Metrics,
		Tracer:              c.cfg.Tracer,
		ProtocolName:        c.cfg.protocolName(),
	})
	if c.cfg.Observer != nil {
		if obs := c.cfg.Observer(r, h); obs != nil {
			h.SetObserver(obs)
		}
	}
	c.Hosts[i] = h
	h.Start()
	h.SyncState(0)
	return h
}

// Stop shuts down every replica and the network.
func (c *Cluster) Stop() {
	for _, h := range c.Hosts {
		h.Stop()
	}
	c.Net.Close()
}

// Host returns the i-th replica host.
func (c *Cluster) Host(i int) *host.Host { return c.Hosts[i] }

// ClientEnv builds the client environment for the i-th client.
func (c *Cluster) ClientEnv(i int) core.ClientEnv {
	id := ids.Client(i)
	return core.ClientEnv{
		Cluster:       c.Cluster,
		Keys:          c.Keys,
		ID:            id,
		Endpoint:      c.Net.Endpoint(id),
		Delta:         c.cfg.Delta,
		RetryInterval: c.cfg.Delta * 2,
		Ops:           c.cfg.Ops,
		Checker:       c.cfg.Checker,
	}
}

// NewClient creates a composed-protocol client with the given index.
func (c *Cluster) NewClient(i int) (*core.Composer, error) {
	env := c.ClientEnv(i)
	return core.NewComposer(c.cfg.NewInstanceFactory(env), 1)
}

// NextClient creates a client with the next unused client index.
func (c *Cluster) NextClient() (*core.Composer, error) {
	i := c.nextClient
	c.nextClient++
	return c.NewClient(i)
}

// NewPipelinedClient creates a pipelining composed-protocol client with the
// given index: up to opts.Depth invocations stay in flight concurrently, and
// instances supporting batched invocation (Quorum) coalesce queued
// invocations into one batch message.
func (c *Cluster) NewPipelinedClient(i int, opts core.PipelineOptions) (*core.PipelinedComposer, error) {
	env := c.ClientEnv(i)
	return core.NewPipelinedComposer(env, c.cfg.NewInstanceFactory, 1, opts)
}
