package deploy_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abstractbft/internal/aliph"
	"abstractbft/internal/app"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/core"
	"abstractbft/internal/deploy"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

func newCluster(t *testing.T, factory func(ids.Cluster) host.ProtocolFactory, instances func(core.ClientEnv) core.InstanceFactory) *deploy.Cluster {
	t.Helper()
	c, err := deploy.New(deploy.Config{
		F:                  1,
		NewApp:             func() app.Application { return app.NewKVStore() },
		NewReplicaFactory:  factory,
		NewInstanceFactory: instances,
		Delta:              50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

// runPipelined drives one pipelined client with depth concurrent streams
// sharing a timestamp counter, and asserts every request commits.
func runPipelined(t *testing.T, client *core.PipelinedComposer, depth, total int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ts atomic.Uint64
	var wg sync.WaitGroup
	errCh := make(chan error, depth)
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := ts.Add(1)
				if n > uint64(total) {
					return
				}
				req := msg.Request{Client: ids.Client(0), Timestamp: n, Command: app.EncodeKVPut(fmt.Sprintf("k%d", n), "v")}
				if _, err := client.Invoke(ctx, req); err != nil {
					errCh <- fmt.Errorf("invoke %d: %w", n, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestPipelinedClientQuorumBatchesInFlight pipelines invocations over Aliph's
// Quorum instance, where in-flight requests coalesce into client-side batch
// messages. Concurrent invocations of one client may race the per-client
// timestamp ordering; the composition must still commit every request
// (possibly after switching instances), never lose or duplicate one.
func TestPipelinedClientQuorumBatchesInFlight(t *testing.T) {
	c := newCluster(t, func(cl ids.Cluster) host.ProtocolFactory {
		return aliph.ReplicaFactory(cl, aliph.Options{})
	}, aliph.InstanceFactory)
	client, err := c.NewPipelinedClient(0, core.PipelineOptions{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	runPipelined(t, client, 4, 40)
}

// TestPipelinedClientZLight pipelines invocations over AZyzzyva's ZLight
// instance (no client-side batching; the primary's assembler batches across
// the in-flight requests instead).
func TestPipelinedClientZLight(t *testing.T) {
	c := newCluster(t, func(cl ids.Cluster) host.ProtocolFactory {
		return azyzzyva.ReplicaFactory(cl, azyzzyva.Options{})
	}, azyzzyva.InstanceFactory)
	client, err := c.NewPipelinedClient(0, core.PipelineOptions{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	runPipelined(t, client, 4, 40)
}

// TestPipelinedClientDepthOneMatchesComposer checks the degenerate pipeline
// (depth 1): strict invoke-then-wait, equivalent to the plain Composer.
func TestPipelinedClientDepthOneMatchesComposer(t *testing.T) {
	c := newCluster(t, func(cl ids.Cluster) host.ProtocolFactory {
		return aliph.ReplicaFactory(cl, aliph.Options{})
	}, aliph.InstanceFactory)
	client, err := c.NewPipelinedClient(0, core.PipelineOptions{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	runPipelined(t, client, 1, 15)
	if client.Switches() != 0 {
		t.Fatalf("sequential single client switched instances %d times, want 0", client.Switches())
	}
}
