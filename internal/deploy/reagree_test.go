package deploy

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/azyzzyva"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/shard"
)

// TestRestartNodeWithoutQuorumFailsCleanly: when fewer than f+1 live peers
// can vouch for a merged boundary, RestartNode must fail within
// RecoverTimeout — and the never-started replacement node must still stop
// cleanly (host.Stop used to block forever on an event loop that never ran).
func TestRestartNodeWithoutQuorumFailsCleanly(t *testing.T) {
	cluster, err := NewSharded(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory:   azyzzyva.InstanceFactory,
		Shards:               2,
		RecoverTimeout:       400 * time.Millisecond,
		RecoverRetryInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	// Kill every peer, so no f+1 agreement can form for the restart.
	for i := 0; i < 3; i++ {
		cluster.Nodes[i].Stop()
	}
	if _, err := cluster.RestartNode(3); err == nil {
		t.Fatal("RestartNode succeeded with no live peers")
	}
	// The failed (never-started) node and the network must tear down without
	// deadlocking.
	done := make(chan struct{})
	go func() {
		cluster.Nodes[3].Stop()
		cluster.Net.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stopping the failed restart node deadlocked")
	}
}

// TestPinnedSyncReagreementUnderTraffic is the regression test for the
// automatic re-agreement retry: a restarted sharded node pins its per-shard
// state syncs at the merged boundary collected at restart time, but live
// peers' GC retention floors advance with their own merged mirrors, so under
// continuous traffic the pinned snapshot can be pruned before f+1 answers
// land — and without the retry the pinned sync stalls forever.
//
// The test makes the prune deterministic: it collects a merged boundary,
// stops a node, drives traffic until every live peer's retention floor has
// advanced far past that boundary (the pinned snapshot is then provably
// pruned), and only then recovers a fresh node pinned at the stale boundary
// — with traffic still flowing. Only the re-agreement monitor (re-collect a
// newer f+1-agreed boundary over the control plane, re-restore the merged
// mirror, re-pin the syncs) lets the node converge; verified failing with
// the monitor disabled.
func TestPinnedSyncReagreementUnderTraffic(t *testing.T) {
	cluster, err := NewSharded(Config{
		F:      1,
		NewApp: func() app.Application { return app.NewKVStore() },
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return azyzzyva.ReplicaFactory(c, azyzzyva.Options{})
		},
		NewInstanceFactory: azyzzyva.InstanceFactory,
		// Generous delta: the recovering replica's absence stalls clients
		// instead of panicking them into instance switches.
		Delta:                2 * time.Second,
		Shards:               2,
		KeyExtractor:         shard.KVKeyExtractor,
		ShardEpoch:           1,
		CheckpointInterval:   4,
		RecoverRetryInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(cluster.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Continuous keyed traffic from two clients for the whole test.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		client, err := cluster.NewClient(c, nil)
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
		wg.Add(1)
		go func(c int, client *shard.Client) {
			defer wg.Done()
			defer client.Close()
			var ts uint64
			for !stop.Load() {
				ts++
				req := msg.Request{
					Client:    ids.Client(c),
					Timestamp: ts,
					Command:   app.EncodeKVPut(fmt.Sprintf("key-%d-%d", c, ts%32), "v"),
				}
				if _, err := client.Invoke(ctx, req); err != nil {
					return
				}
			}
		}(c, client)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	// Grab an early merged boundary as the soon-to-be-stale pin.
	var staleSeq uint64
	var staleDig [32]byte
	var staleApp []byte
	deadline := time.Now().Add(20 * time.Second)
	for {
		seq, dig, appBytes := cluster.Nodes[3].Exec.MergedSnapshot()
		if seq > 0 {
			staleSeq, staleDig, staleApp = seq, dig, appBytes
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plane never merged anything")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Let every live peer's retention floor advance far past the stale
	// boundary (full-speed traffic, all nodes up): once each per-shard
	// merged floor exceeds the stale per-shard pin by several checkpoint
	// retention spans (CheckpointInterval=4 × SnapshotRetain=4, with slack),
	// the snapshot at the pin is pruned on every peer and a sync pinned
	// there can never complete.
	stalePerShard := staleSeq / uint64(cluster.cfg.Shards)
	target := stalePerShard + 64
	deadline = time.Now().Add(60 * time.Second)
	for {
		advanced := true
		for _, n := range cluster.Nodes {
			for s := 0; s < cluster.cfg.Shards; s++ {
				if n.Exec.MergedFloor(s) < target {
					advanced = false
				}
			}
		}
		if advanced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retention floors did not advance past the stale pin")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Crash node 3 and recover a fresh one pinned at the stale (pruned)
	// boundary, with traffic still flowing. Recover starts the re-agreement
	// monitor; the stalled pins must re-collect a newer f+1-agreed boundary
	// over the control plane and re-pin until the transfers complete.
	cluster.Nodes[3].Stop()
	cluster.Net.ResetEndpoint(ids.Replica(3))
	n := cluster.buildNode(ids.Replica(3))
	cluster.Nodes[3] = n
	if err := n.Recover(staleSeq, staleDig, staleApp); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	deadline = time.Now().Add(60 * time.Second)
	for n.Syncing() {
		if time.Now().After(deadline) {
			t.Fatal("pinned sync stalled: the re-agreement retry never re-pinned it (pruned boundary)")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Quiesce and check full convergence of the merged mirrors.
	stop.Store(true)
	wg.Wait()
	deadline = time.Now().Add(30 * time.Second)
	for {
		seq0, dig0, _ := cluster.Nodes[0].Exec.MergedSnapshot()
		seq3, dig3, _ := n.Exec.MergedSnapshot()
		if seq0 > staleSeq && seq0 == seq3 && dig0 == dig3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted node did not converge: %d vs %d", seq3, seq0)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
