package deploy

import (
	"strings"
	"testing"

	"abstractbft/internal/compose"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
)

// TestConfigRejectsAmbiguousProtocol: declaring the protocol twice — a
// Composition plus the legacy factory pair — is a configuration bug and must
// fail with a descriptive error, not silently prefer one side.
func TestConfigRejectsAmbiguousProtocol(t *testing.T) {
	comp := compose.MustNew("azyzzyva", compose.Options{})
	cfg := Config{
		F:           1,
		Composition: comp,
		NewReplicaFactory: func(c ids.Cluster) host.ProtocolFactory {
			return comp.ReplicaFactory(c)
		},
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "both Composition") {
		t.Fatalf("New with both Composition and legacy factories: err = %v, want descriptive rejection", err)
	}
	if _, err := NewSharded(cfg); err == nil || !strings.Contains(err.Error(), "both Composition") {
		t.Fatalf("NewSharded with both: err = %v", err)
	}
	if _, err := New(Config{F: 1}); err == nil || !strings.Contains(err.Error(), "no protocol") {
		t.Fatalf("New with no protocol: err = %v", err)
	}
}
