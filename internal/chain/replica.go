package chain

import (
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
)

// ReplicaConfig configures the Chain replicas of a composed protocol.
type ReplicaConfig struct {
	// LowLoadAfter enables Aliph's low-load optimization: when a single
	// client has been the only active one for this long, the replica stops
	// the instance (setting core.AbortFlagLowLoad) so the composition can
	// switch back to Quorum through a one-request Backup. Zero disables it.
	LowLoadAfter time.Duration
	// Feedback optionally receives R-Aliph client feedback piggybacked on
	// CHAIN messages.
	Feedback host.FeedbackSink
}

// Replica implements the Chain pipeline steps (C2/C3) at one position of the
// chain order.
type Replica struct {
	h   *host.Host
	st  *host.InstanceState
	cfg ReplicaConfig

	// index is this replica's position in the chain order.
	index int
	// pending buffers messages that arrived ahead of the next expected
	// sequence number.
	pending map[uint64]*Message

	// low-load tracking.
	activeClient   ids.ProcessID
	lastClientSeen time.Time
	sawAnyRequest  bool
}

// NewReplica returns a host.ProtocolFactory creating Chain replicas.
func NewReplica(cfg ReplicaConfig) host.ProtocolFactory {
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		return &Replica{
			h:       h,
			st:      st,
			cfg:     cfg,
			index:   int(h.ID()),
			pending: make(map[uint64]*Message),
		}
	}
}

// isHead reports whether this replica is the head of the chain.
func (r *Replica) isHead() bool { return r.index == 0 }

// isTail reports whether this replica is the tail of the chain.
func (r *Replica) isTail() bool { return r.index == r.h.Cluster().N-1 }

// executes reports whether this replica is one of the last f+1 replicas,
// which execute requests and authenticate replies.
func (r *Replica) executes() bool { return r.index >= 2*r.h.Cluster().F }

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	cm, ok := m.(*Message)
	if !ok {
		return
	}
	if r.cfg.Feedback != nil && len(cm.Feedback) > 0 && r.isHead() {
		r.cfg.Feedback.ClientFeedback(r.h.ID(), cm.Req.Client, cm.Feedback, []uint64{cm.Req.Timestamp})
	}
	if r.st.Stopped {
		return
	}
	if r.isHead() && !cm.HasSeq {
		r.onClientRequest(from, cm)
		return
	}
	r.onForwarded(from, cm)
}

// onClientRequest implements Step C2 at the head: verify the client MAC,
// assign a sequence number, log, and forward down the chain.
func (r *Replica) onClientRequest(from ids.ProcessID, m *Message) {
	if !from.IsClient() || from != m.Req.Client {
		return
	}
	r.h.Ops().CountMACVerify(r.h.ID(), 1)
	if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{m.Req.Client}, ClientAuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	r.trackLoad(m.Req.Client)
	if r.st.Stopped {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) {
		// Duplicate: forward with the duplicate flag semantics (no new
		// position) so the tail can resend the cached reply.
		r.forwardDuplicate(m)
		return
	}
	pos, ok := r.h.Log(r.st, m.Req)
	if !ok {
		return
	}
	out := *m
	out.Seq = pos
	out.HasSeq = true
	if r.executes() {
		reply := r.h.Execute(r.st, m.Req)
		r.fillExecution(&out, reply)
	}
	r.forward(&out)
	r.h.Ops().CountRequest()
}

// onForwarded implements Step C3 at every non-head position (and handles
// retransmitted/duplicate traffic at the head).
func (r *Replica) onForwarded(from ids.ProcessID, m *Message) {
	pred, hasPred := r.h.Cluster().ChainPredecessor(r.h.ID())
	if hasPred && from != pred {
		return
	}
	if !m.HasSeq {
		return
	}
	if err := r.verifyPredecessors(m); err != nil {
		return
	}
	r.trackLoad(m.Req.Client)
	if r.st.Stopped {
		return
	}
	if m.Seq > r.st.AbsLen() {
		r.pending[m.Seq] = m
		return
	}
	if m.Seq < r.st.AbsLen() || !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) {
		r.forwardDuplicate(m)
		return
	}
	r.process(m)
	r.drainPending()
}

// process logs (and for the last f+1 replicas executes) one in-order message
// and forwards it.
func (r *Replica) process(m *Message) {
	if _, ok := r.h.Log(r.st, m.Req); !ok {
		return
	}
	out := *m
	if r.executes() {
		reply := r.h.Execute(r.st, m.Req)
		r.fillExecution(&out, reply)
	}
	r.forward(&out)
}

func (r *Replica) drainPending() {
	for {
		next, ok := r.pending[r.st.AbsLen()]
		if !ok || r.st.Stopped {
			return
		}
		delete(r.pending, r.st.AbsLen())
		if !r.st.TimestampFresh(next.Req.Client, next.Req.Timestamp) {
			r.forwardDuplicate(next)
			continue
		}
		r.process(next)
	}
}

// fillExecution sets the reply and history fields a last-f+1 replica is
// responsible for.
func (r *Replica) fillExecution(out *Message, reply []byte) {
	out.ReplyDigest = authn.Hash(reply)
	out.HistoryDigest = r.st.HistoryDigest()
	if r.isTail() {
		out.Reply = reply
		if r.h.InstrumentHistories() {
			out.HistoryDigests = r.st.Digests.Clone()
		}
	} else {
		out.Reply = nil
	}
}

// forwardDuplicate pushes an already-logged request down the chain so the
// tail can resend the cached reply; nothing is logged or executed again.
func (r *Replica) forwardDuplicate(m *Message) {
	out := *m
	if r.executes() {
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			r.fillExecution(&out, reply)
		}
	}
	r.forward(&out)
}

// forward appends this replica's chain-authenticator MACs and sends the
// message to the successor (or to the client when this is the tail).
func (r *Replica) forward(out *Message) {
	successors := r.h.Cluster().ChainSuccessorSet(r.h.ID())
	data := r.authBytesFor(r.h.ID(), out)
	// Prune entries that are no longer needed downstream, then append ours.
	keep := append([]ids.ProcessID{}, successors...)
	for j := r.index + 1; j < r.h.Cluster().N; j++ {
		keep = append(keep, ids.Replica(j))
	}
	keep = append(keep, out.Req.Client)
	out.CA = authn.PruneChain(out.CA, keep)
	out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), successors, data)
	r.h.Ops().CountMACGen(r.h.ID(), len(successors))
	if r.executes() && !r.isTail() {
		// Replicas after position 2f also authenticate towards the client.
		out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), []ids.ProcessID{out.Req.Client}, data)
		r.h.Ops().CountMACGen(r.h.ID(), 1)
	}
	if r.isTail() {
		out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), []ids.ProcessID{out.Req.Client}, data)
		r.h.Ops().CountMACGen(r.h.ID(), 1)
		r.h.Send(out.Req.Client, out)
		return
	}
	succ, _ := r.h.Cluster().ChainSuccessor(r.h.ID())
	r.h.Send(succ, out)
}

// authBytesFor returns the bytes process p authenticates for the given
// message, which depend on p's position in the chain: the client signs the
// request and instance, the first 2f replicas additionally sign the sequence
// number, and the last f+1 replicas also sign the reply and history digests.
func (r *Replica) authBytesFor(p ids.ProcessID, m *Message) []byte {
	cl := r.h.Cluster()
	switch {
	case p.IsClient():
		return ClientAuthBytes(m.Instance, m.Req)
	case int(p) < 2*cl.F:
		return OrderAuthBytes(m.Instance, m.Req, m.Seq)
	default:
		return TailAuthBytes(m.Instance, m.Req, m.Seq, m.ReplyDigest, m.HistoryDigest)
	}
}

// verifyPredecessors checks the chain-authenticator MACs from every process
// in this replica's predecessor set.
func (r *Replica) verifyPredecessors(m *Message) error {
	cl := r.h.Cluster()
	preds := cl.ChainPredecessorSet(r.h.ID())
	// The client belongs to the predecessor set of the first f+1 replicas.
	if r.index < cl.F+1 {
		if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{m.Req.Client}, ClientAuthBytes(m.Instance, m.Req)); err != nil {
			r.h.Ops().CountMACVerify(r.h.ID(), 1)
			return err
		}
		r.h.Ops().CountMACVerify(r.h.ID(), 1)
	}
	for _, p := range preds {
		data := r.authBytesFor(p, m)
		r.h.Ops().CountMACVerify(r.h.ID(), 1)
		if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{p}, data); err != nil {
			return err
		}
	}
	return nil
}

// trackLoad implements the low-load detection used by Aliph: when only one
// client has been active for LowLoadAfter, the replica stops the instance
// with the low-load abort flag so the composition can return to Quorum.
func (r *Replica) trackLoad(client ids.ProcessID) {
	if r.cfg.LowLoadAfter <= 0 {
		return
	}
	now := time.Now()
	if !r.sawAnyRequest || client != r.activeClient {
		r.activeClient = client
		r.lastClientSeen = now
		r.sawAnyRequest = true
		return
	}
	if now.Sub(r.lastClientSeen) >= r.cfg.LowLoadAfter {
		r.st.AbortFlags |= core.AbortFlagLowLoad
		r.h.StopInstance(r.st)
	}
}

var _ host.ProtocolReplica = (*Replica)(nil)
