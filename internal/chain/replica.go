package chain

import (
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
)

// ReplicaConfig configures the Chain replicas of a composed protocol.
type ReplicaConfig struct {
	// LowLoadAfter enables Aliph's low-load optimization: when a single
	// client has been the only active one for this long, the replica stops
	// the instance (setting core.AbortFlagLowLoad) so the composition can
	// switch back to Quorum through a one-request Backup. Zero disables it.
	LowLoadAfter time.Duration
	// Feedback optionally receives R-Aliph client feedback piggybacked on
	// CHAIN messages.
	Feedback host.FeedbackSink
}

// Replica implements the Chain pipeline steps (C2/C3) at one position of the
// chain order. The head coalesces client requests into batches under the
// host's batch policy; a batch travels down the chain as one BatchMessage
// with one set of replica-hop MACs, and the tail fans per-request replies
// back out to the clients.
type Replica struct {
	h   *host.Host
	st  *host.InstanceState
	cfg ReplicaConfig

	// index is this replica's position in the chain order.
	index int
	// batcher coalesces client requests at the head (Step C2).
	batcher *host.Batcher
	// pending buffers legacy single-request messages that arrived ahead of
	// the next expected sequence number.
	pending map[uint64]*Message
	// pendingBatch buffers batches that arrived ahead of the next expected
	// sequence number.
	pendingBatch map[uint64]*BatchMessage

	// low-load tracking.
	activeClient   ids.ProcessID
	lastClientSeen time.Time
	sawAnyRequest  bool
}

// NewReplica returns a host.ProtocolFactory creating Chain replicas.
func NewReplica(cfg ReplicaConfig) host.ProtocolFactory {
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		r := &Replica{
			h:            h,
			st:           st,
			cfg:          cfg,
			index:        h.Cluster().Pos(h.ID()),
			pending:      make(map[uint64]*Message),
			pendingBatch: make(map[uint64]*BatchMessage),
		}
		r.batcher = h.NewBatcher(r.orderBatch)
		return r
	}
}

// isHead reports whether this replica is the head of the chain.
func (r *Replica) isHead() bool { return r.index == 0 }

// isTail reports whether this replica is the tail of the chain.
func (r *Replica) isTail() bool { return r.index == r.h.Cluster().N-1 }

// executes reports whether this replica is one of the last f+1 replicas,
// which execute requests and authenticate replies.
func (r *Replica) executes() bool { return r.index >= 2*r.h.Cluster().F }

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	switch t := m.(type) {
	case *Message:
		r.handleSingle(from, t)
	case *BatchMessage:
		r.onBatchForwarded(from, t)
	}
}

// handleSingle processes a legacy single-request CHAIN message: a client
// request at the head (which feeds the batch assembler) or a retransmitted /
// duplicate message travelling the chain.
func (r *Replica) handleSingle(from ids.ProcessID, cm *Message) {
	if r.cfg.Feedback != nil && len(cm.Feedback) > 0 && r.isHead() {
		r.cfg.Feedback.ClientFeedback(r.h.ID(), cm.Req.Client, cm.Feedback, []uint64{cm.Req.Timestamp})
	}
	if r.st.Stopped {
		return
	}
	if r.isHead() && !cm.HasSeq {
		r.onClientRequest(from, cm)
		return
	}
	r.onForwarded(from, cm)
}

// onClientRequest implements Step C2 at the head: verify the client MAC and
// hand the request to the batch assembler, which flushes whole batches into
// orderBatch under the size/delay policy.
func (r *Replica) onClientRequest(from ids.ProcessID, m *Message) {
	if !from.IsClient() || from != m.Req.Client {
		return
	}
	r.h.Ops().CountMACVerify(r.h.ID(), 1)
	if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{m.Req.Client}, ClientAuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	r.trackLoad(m.Req.Client)
	if r.st.Stopped {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) || r.h.AppliedStale(m.Req.Client, m.Req.Timestamp) {
		// Duplicate (per the instance window, or per the host's applied
		// window for requests committed before this instance's init history
		// reaches): forward with the duplicate flag semantics (no new
		// position) so the tail can resend the cached reply.
		r.forwardDuplicate(m)
		return
	}
	r.batcher.Add(host.BatchItem{Req: m.Req, CA: m.CA, Init: m.Init})
}

// orderBatch implements Step C2 for one flushed batch (head only): assign a
// sequence-number span, log the whole batch as one history append, and send
// it down the chain as a single BatchMessage.
func (r *Replica) orderBatch(items []host.BatchItem) {
	if !r.isHead() || r.st.Stopped {
		return
	}
	fresh, batch, _ := host.FilterFreshItems(r.st, items)
	if batch.Len() == 0 {
		return
	}
	start, ok := r.h.LogBatch(r.st, batch)
	if !ok {
		return
	}
	out := &BatchMessage{Instance: r.st.ID, Batch: batch, Seq: start}
	downstream := r.downstreamReplicas()
	for _, it := range fresh {
		keep := append(append([]ids.ProcessID{}, downstream...), it.Req.Client)
		out.ClientCAs = append(out.ClientCAs, authn.PruneChain(it.CA, keep))
		if out.Init == nil && it.Init != nil {
			out.Init = it.Init
		}
	}
	var replies [][]byte
	if r.executes() {
		replies = r.h.ExecuteBatch(r.st, batch)
		r.fillBatchExecution(out, replies)
	}
	for range batch.Requests {
		r.h.Ops().CountRequest()
	}
	if r.isTail() {
		r.replyBatch(out, replies)
		return
	}
	r.forwardBatch(out, batch.Digest())
}

// onBatchForwarded implements Step C3 for a batch at every non-head position:
// verify the predecessor-set MACs over the batch, log and (for the last f+1
// replicas) execute the whole batch, and forward it (the tail fans replies
// out to the clients).
func (r *Replica) onBatchForwarded(from ids.ProcessID, m *BatchMessage) {
	if r.isHead() || r.st.Stopped {
		return
	}
	pred, hasPred := r.h.Cluster().ChainPredecessor(r.h.ID())
	if !hasPred || from != pred {
		return
	}
	if m.Batch.Len() == 0 || len(m.ClientCAs) != m.Batch.Len() {
		return
	}
	// Compute the batch digest once per hop; it feeds every batch-level MAC
	// verified and generated below.
	bd := m.Batch.Digest()
	if err := r.verifyBatchPredecessors(m, bd); err != nil {
		return
	}
	for _, req := range m.Batch.Requests {
		r.trackLoad(req.Client)
	}
	if r.st.Stopped {
		return
	}
	if m.Seq > r.st.AbsLen() {
		// Bounded buffering: the bound is on buffered *requests*, not map
		// entries, so a Byzantine head cannot grow the reorder buffer
		// without limit; dropped batches surface as loss.
		if r.pendingRequests()+m.Batch.Len() <= maxPendingRequests {
			r.pendingBatch[m.Seq] = m
		}
		return
	}
	if m.Seq < r.st.AbsLen() {
		// Duplicate delivery of an already-logged batch (a TCP retransmission
		// or a recovering predecessor): re-forward it with cached replies
		// instead of dropping, so a client whose original reply was lost
		// commits without going through the panicking machinery. Nothing is
		// logged or executed again.
		r.forwardDuplicateBatch(m, bd)
		return
	}
	r.processBatch(m, bd)
	r.drainPending()
}

// processBatch logs (and for the last f+1 replicas executes) one in-order
// batch and forwards it.
func (r *Replica) processBatch(m *BatchMessage, bd authn.Digest) {
	// A correct head never re-orders a logged request nor repeats one inside
	// a batch, so any stale entry marks Byzantine traffic and the whole
	// batch is dropped (the per-entry ClientCAs/seq alignment would break
	// under partial logging anyway).
	if _, stale := r.st.FilterFreshBatch(m.Batch); len(stale) > 0 {
		return
	}
	if _, ok := r.h.LogBatch(r.st, m.Batch); !ok {
		return
	}
	out := *m
	out.ClientCAs = append([]authn.ChainAuthenticator(nil), m.ClientCAs...)
	var replies [][]byte
	if r.executes() {
		replies = r.h.ExecuteBatch(r.st, m.Batch)
		r.fillBatchExecution(&out, replies)
	}
	if r.isTail() {
		r.replyBatch(&out, replies)
		return
	}
	r.forwardBatch(&out, bd)
}

// forwardDuplicateBatch pushes an already-logged batch down the chain serving
// replies from the per-client cache, so the tail can resend every reply of
// the batch. The chain links are FIFO, so each hop processes the duplicate at
// the same history state and the executing replicas' MACs cover identical
// tail bytes. Best effort: when any reply was already evicted from the cache
// (the client issued a newer request since), the duplicate is dropped and the
// affected clients recover through the panicking machinery as before.
func (r *Replica) forwardDuplicateBatch(m *BatchMessage, bd authn.Digest) {
	out := *m
	out.ClientCAs = append([]authn.ChainAuthenticator(nil), m.ClientCAs...)
	var replies [][]byte
	if r.executes() {
		replies = make([][]byte, m.Batch.Len())
		for i, req := range m.Batch.Requests {
			reply, ok := r.h.CachedReply(req.Client, req.Timestamp)
			if !ok {
				return
			}
			replies[i] = reply
		}
		r.fillBatchExecution(&out, replies)
	}
	if r.isTail() {
		r.replyBatch(&out, replies)
		return
	}
	r.forwardBatch(&out, bd)
}

// fillBatchExecution sets the reply and history fields an executing replica
// is responsible for, and appends this replica's per-request MAC toward each
// client (the only per-request MACs left on the batched path).
func (r *Replica) fillBatchExecution(out *BatchMessage, replies [][]byte) {
	out.ReplyDigests = make([]authn.Digest, len(replies))
	for i, reply := range replies {
		out.ReplyDigests[i] = authn.Hash(reply)
	}
	out.HistoryDigest = r.st.HistoryDigest()
	for i, req := range out.Batch.Requests {
		data := TailAuthBytes(out.Instance, req, out.Seq+uint64(i), out.ReplyDigests[i], out.HistoryDigest)
		out.ClientCAs[i] = r.h.Keys().AppendChainMACs(out.ClientCAs[i], r.h.ID(), []ids.ProcessID{req.Client}, data)
		r.h.Ops().CountMACGen(r.h.ID(), 1)
	}
}

// replyBatch fans a processed batch back out to the clients: one legacy
// Message per request, carrying the full reply and the chain-authenticator
// entries of the last f+1 replicas, so Step C4 at the client is unchanged.
func (r *Replica) replyBatch(out *BatchMessage, replies [][]byte) {
	byClient := make(map[ids.ProcessID][]any, len(out.Batch.Requests))
	for i, req := range out.Batch.Requests {
		reply := &Message{
			Instance:      out.Instance,
			Req:           req,
			Seq:           out.Seq + uint64(i),
			HasSeq:        true,
			ReplyDigest:   out.ReplyDigests[i],
			Reply:         replies[i],
			HistoryDigest: out.HistoryDigest,
			CA:            out.ClientCAs[i],
		}
		if r.h.InstrumentHistories() {
			reply.HistoryDigests = r.st.Digests.Clone()
		}
		byClient[req.Client] = append(byClient[req.Client], reply)
	}
	// A pipelining client's replies cross the wire as one coalesced
	// envelope, as in ZLight's and Quorum's fan-out.
	for client, replies := range byClient {
		r.h.SendBatch(client, replies)
	}
}

// forwardBatch appends this replica's batch-level chain-authenticator MACs
// and sends the batch to the successor. bd is the precomputed batch digest.
func (r *Replica) forwardBatch(out *BatchMessage, bd authn.Digest) {
	successors := r.h.Cluster().ChainSuccessorSet(r.h.ID())
	downstream := r.downstreamReplicas()
	out.CA = authn.PruneChain(out.CA, downstream)
	out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), successors, r.batchAuthBytesFor(r.h.ID(), out, bd))
	r.h.Ops().CountMACGen(r.h.ID(), len(successors))
	for i, req := range out.Batch.Requests {
		keep := append(append([]ids.ProcessID{}, downstream...), req.Client)
		out.ClientCAs[i] = authn.PruneChain(out.ClientCAs[i], keep)
	}
	succ, _ := r.h.Cluster().ChainSuccessor(r.h.ID())
	r.h.Send(succ, out)
}

// downstreamReplicas returns the replicas after this one in chain order.
func (r *Replica) downstreamReplicas() []ids.ProcessID {
	var out []ids.ProcessID
	for j := r.index + 1; j < r.h.Cluster().N; j++ {
		out = append(out, r.h.Cluster().AtPos(j))
	}
	return out
}

// batchAuthBytesFor returns the batch-level bytes process p authenticates,
// which depend on p's position in the chain: the first 2f replicas sign the
// sequence span and batch digest, the last f+1 replicas also sign the reply
// and history digests. bd is the precomputed batch digest.
func (r *Replica) batchAuthBytesFor(p ids.ProcessID, m *BatchMessage, bd authn.Digest) []byte {
	if r.h.Cluster().Pos(p) < 2*r.h.Cluster().F {
		return batchOrderAuthBytes(m.Instance, bd, m.Seq)
	}
	return batchTailAuthBytes(m.Instance, bd, m.Seq, m.ReplyDigests, m.HistoryDigest)
}

// verifyBatchPredecessors checks the batch-level MACs from every replica in
// this replica's predecessor set, and (at the first f+1 positions) each
// client's per-request MAC. bd is the precomputed batch digest.
func (r *Replica) verifyBatchPredecessors(m *BatchMessage, bd authn.Digest) error {
	cl := r.h.Cluster()
	if r.index < cl.F+1 {
		for i, req := range m.Batch.Requests {
			r.h.Ops().CountMACVerify(r.h.ID(), 1)
			if err := r.h.Keys().VerifyChain(m.ClientCAs[i], r.h.ID(), []ids.ProcessID{req.Client}, ClientAuthBytes(m.Instance, req)); err != nil {
				return err
			}
		}
	}
	// Predecessors fall into two byte classes (order bytes for the first 2f
	// replicas, tail bytes for the rest); compute each at most once rather
	// than re-hashing the batch per predecessor.
	var orderBytes, tailBytes []byte
	for _, p := range cl.ChainPredecessorSet(r.h.ID()) {
		var data []byte
		if cl.Pos(p) < 2*cl.F {
			if orderBytes == nil {
				orderBytes = batchOrderAuthBytes(m.Instance, bd, m.Seq)
			}
			data = orderBytes
		} else {
			if tailBytes == nil {
				tailBytes = batchTailAuthBytes(m.Instance, bd, m.Seq, m.ReplyDigests, m.HistoryDigest)
			}
			data = tailBytes
		}
		r.h.Ops().CountMACVerify(r.h.ID(), 1)
		if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{p}, data); err != nil {
			return err
		}
	}
	return nil
}

// onForwarded handles legacy single-request traffic at non-head positions:
// retransmitted or duplicate messages whose position is already logged; the
// tail resends the cached reply. Fresh ordering travels as BatchMessage.
func (r *Replica) onForwarded(from ids.ProcessID, m *Message) {
	pred, hasPred := r.h.Cluster().ChainPredecessor(r.h.ID())
	if hasPred && from != pred {
		return
	}
	if !m.HasSeq {
		return
	}
	if err := r.verifyPredecessors(m); err != nil {
		return
	}
	r.trackLoad(m.Req.Client)
	if r.st.Stopped {
		return
	}
	if m.Seq > r.st.AbsLen() {
		if r.pendingRequests()+1 <= maxPendingRequests {
			r.pending[m.Seq] = m
		}
		return
	}
	if m.Seq < r.st.AbsLen() || !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) {
		r.forwardDuplicate(m)
		return
	}
	r.process(m)
	r.drainPending()
}

// process logs (and for the last f+1 replicas executes) one in-order legacy
// message and forwards it.
func (r *Replica) process(m *Message) {
	if _, ok := r.h.Log(r.st, m.Req); !ok {
		return
	}
	out := *m
	if r.executes() {
		reply := r.h.Execute(r.st, m.Req)
		r.fillExecution(&out, reply)
	}
	r.forward(&out)
}

// maxPendingRequests bounds the total requests buffered out of order per
// instance (across both the batch and legacy buffers).
const maxPendingRequests = 1024

// pendingRequests returns the number of requests currently buffered out of
// order; the buffers are small (bounded by maxPendingRequests), so summing
// on demand is cheap.
func (r *Replica) pendingRequests() int {
	n := len(r.pending)
	for _, m := range r.pendingBatch {
		n += m.Batch.Len()
	}
	return n
}

func (r *Replica) drainPending() {
	for {
		if r.st.Stopped {
			return
		}
		// Evict spans overtaken by the history (they can never match the
		// exact next position again) from both buffers, so stale entries
		// cannot exhaust the caps.
		for seq := range r.pendingBatch {
			if seq < r.st.AbsLen() {
				delete(r.pendingBatch, seq)
			}
		}
		for seq := range r.pending {
			if seq < r.st.AbsLen() {
				delete(r.pending, seq)
			}
		}
		if next, ok := r.pendingBatch[r.st.AbsLen()]; ok {
			delete(r.pendingBatch, next.Seq)
			r.processBatch(next, next.Batch.Digest())
			continue
		}
		next, ok := r.pending[r.st.AbsLen()]
		if !ok {
			return
		}
		delete(r.pending, r.st.AbsLen())
		if !r.st.TimestampFresh(next.Req.Client, next.Req.Timestamp) {
			r.forwardDuplicate(next)
			continue
		}
		r.process(next)
	}
}

// fillExecution sets the reply and history fields a last-f+1 replica is
// responsible for on a legacy message.
func (r *Replica) fillExecution(out *Message, reply []byte) {
	out.ReplyDigest = authn.Hash(reply)
	out.HistoryDigest = r.st.HistoryDigest()
	if r.isTail() {
		out.Reply = reply
		if r.h.InstrumentHistories() {
			out.HistoryDigests = r.st.Digests.Clone()
		}
	} else {
		out.Reply = nil
	}
}

// forwardDuplicate pushes an already-logged request down the chain so the
// tail can resend the cached reply; nothing is logged or executed again.
func (r *Replica) forwardDuplicate(m *Message) {
	out := *m
	if r.executes() {
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			r.fillExecution(&out, reply)
		}
	}
	r.forward(&out)
}

// forward appends this replica's chain-authenticator MACs and sends the
// legacy message to the successor (or to the client when this is the tail).
func (r *Replica) forward(out *Message) {
	successors := r.h.Cluster().ChainSuccessorSet(r.h.ID())
	data := r.authBytesFor(r.h.ID(), out)
	// Prune entries that are no longer needed downstream, then append ours.
	keep := append([]ids.ProcessID{}, successors...)
	keep = append(keep, r.downstreamReplicas()...)
	keep = append(keep, out.Req.Client)
	out.CA = authn.PruneChain(out.CA, keep)
	out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), successors, data)
	r.h.Ops().CountMACGen(r.h.ID(), len(successors))
	if r.executes() && !r.isTail() {
		// Replicas after position 2f also authenticate towards the client.
		out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), []ids.ProcessID{out.Req.Client}, data)
		r.h.Ops().CountMACGen(r.h.ID(), 1)
	}
	if r.isTail() {
		out.CA = r.h.Keys().AppendChainMACs(out.CA, r.h.ID(), []ids.ProcessID{out.Req.Client}, data)
		r.h.Ops().CountMACGen(r.h.ID(), 1)
		r.h.Send(out.Req.Client, out)
		return
	}
	succ, _ := r.h.Cluster().ChainSuccessor(r.h.ID())
	r.h.Send(succ, out)
}

// authBytesFor returns the bytes process p authenticates for a legacy
// message, which depend on p's position in the chain: the client signs the
// request and instance, the first 2f replicas additionally sign the sequence
// number, and the last f+1 replicas also sign the reply and history digests.
func (r *Replica) authBytesFor(p ids.ProcessID, m *Message) []byte {
	cl := r.h.Cluster()
	switch {
	case p.IsClient():
		return ClientAuthBytes(m.Instance, m.Req)
	case cl.Pos(p) < 2*cl.F:
		return OrderAuthBytes(m.Instance, m.Req, m.Seq)
	default:
		return TailAuthBytes(m.Instance, m.Req, m.Seq, m.ReplyDigest, m.HistoryDigest)
	}
}

// verifyPredecessors checks the chain-authenticator MACs from every process
// in this replica's predecessor set on a legacy message.
func (r *Replica) verifyPredecessors(m *Message) error {
	cl := r.h.Cluster()
	preds := cl.ChainPredecessorSet(r.h.ID())
	// The client belongs to the predecessor set of the first f+1 replicas.
	if r.index < cl.F+1 {
		if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{m.Req.Client}, ClientAuthBytes(m.Instance, m.Req)); err != nil {
			r.h.Ops().CountMACVerify(r.h.ID(), 1)
			return err
		}
		r.h.Ops().CountMACVerify(r.h.ID(), 1)
	}
	for _, p := range preds {
		data := r.authBytesFor(p, m)
		r.h.Ops().CountMACVerify(r.h.ID(), 1)
		if err := r.h.Keys().VerifyChain(m.CA, r.h.ID(), []ids.ProcessID{p}, data); err != nil {
			return err
		}
	}
	return nil
}

// trackLoad implements the low-load detection used by Aliph: when only one
// client has been active for LowLoadAfter, the replica stops the instance
// with the low-load abort flag so the composition can return to Quorum.
func (r *Replica) trackLoad(client ids.ProcessID) {
	if r.cfg.LowLoadAfter <= 0 {
		return
	}
	now := time.Now()
	if !r.sawAnyRequest || client != r.activeClient {
		r.activeClient = client
		r.lastClientSeen = now
		r.sawAnyRequest = true
		return
	}
	if now.Sub(r.lastClientSeen) >= r.cfg.LowLoadAfter {
		r.st.AbortFlags |= core.AbortFlagLowLoad
		r.h.StopInstance(r.st)
	}
}

var _ host.ProtocolReplica = (*Replica)(nil)
