package chain

import (
	"context"
	"time"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// Client is the client-side handle of one Chain instance.
type Client struct {
	env core.ClientEnv
	id  core.InstanceID
	// PendingFeedback is attached to the next CHAIN request (R-Aliph).
	PendingFeedback []uint64
}

// NewClient creates a Chain instance client.
func NewClient(env core.ClientEnv, id core.InstanceID) *Client {
	return &Client{env: env, id: id}
}

// ID implements core.Instance.
func (c *Client) ID() core.InstanceID { return c.id }

// SetPendingFeedback implements core.FeedbackCarrier.
func (c *Client) SetPendingFeedback(committed []uint64) { c.PendingFeedback = committed }

// Invoke implements core.Instance: Step C1 (send the request to the head with
// a chain authenticator for the first f+1 replicas, arm an (n+1)Δ timer) and
// Step C4 (commit on a tail reply authenticated by the last f+1 replicas);
// the panicking mechanism otherwise.
func (c *Client) Invoke(ctx context.Context, req msg.Request, init *core.InitHistory) (core.Outcome, error) {
	if c.env.Checker != nil {
		c.env.Checker.RecordInvoke(req)
		c.env.Checker.RecordInit(c.id, init)
	}
	cl := c.env.Cluster
	ca := authn.ChainAuthenticator{}
	succ := cl.ChainSuccessorSet(c.env.ID)
	ca = c.env.Keys.AppendChainMACs(ca, c.env.ID, succ, ClientAuthBytes(c.id, req))
	c.env.Ops.CountMACGen(c.env.ID, len(succ))
	m := &Message{Instance: c.id, Req: req, CA: ca, Init: init, Feedback: c.PendingFeedback}
	c.PendingFeedback = nil
	c.env.Endpoint.Send(cl.Head(), m)

	out, committed, err := c.awaitTailReply(ctx, req)
	if err != nil {
		return core.Outcome{}, err
	}
	if committed {
		return out, nil
	}
	return core.PanicAndAbort(ctx, c.env, c.id, req, init)
}

// awaitTailReply waits for the tail's CHAIN message and verifies the chain
// authenticator MACs of the last f+1 replicas.
func (c *Client) awaitTailReply(ctx context.Context, req msg.Request) (core.Outcome, bool, error) {
	cl := c.env.Cluster
	timer := time.NewTimer(c.env.Timer(cl.N + 1))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return core.Outcome{}, false, ctx.Err()
		case <-timer.C:
			return core.Outcome{}, false, nil
		case env, ok := <-c.env.Endpoint.Inbox():
			if !ok {
				return core.Outcome{}, false, core.ErrStopped
			}
			m, isChain := env.Payload.(*Message)
			if !isChain || m.Instance != c.id || m.Req.ID() != req.ID() || !m.HasSeq {
				continue
			}
			if authn.Hash(m.Reply) != m.ReplyDigest {
				continue
			}
			if !c.verifyTailMACs(m) {
				continue
			}
			out := core.Outcome{Committed: true, Reply: append([]byte(nil), m.Reply...), CommitHistory: m.HistoryDigests.Clone()}
			if c.env.Checker != nil {
				c.env.Checker.RecordCommit(c.id, req, out.Reply, out.CommitHistory)
			}
			return out, true, nil
		}
	}
}

// verifyTailMACs checks the MACs of the last f+1 replicas over the reply,
// history digest, instance, and request.
func (c *Client) verifyTailMACs(m *Message) bool {
	cl := c.env.Cluster
	data := TailAuthBytes(c.id, m.Req, m.Seq, m.ReplyDigest, m.HistoryDigest)
	var last []ids.ProcessID
	last = append(last, cl.LastReplicas()...)
	c.env.Ops.CountMACVerify(c.env.ID, len(last))
	return c.env.Keys.VerifyChain(m.CA, c.env.ID, last, data) == nil
}

var _ core.Instance = (*Client)(nil)
