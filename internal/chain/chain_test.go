package chain

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

type testCluster struct {
	cluster ids.Cluster
	keys    *authn.KeyStore
	net     *transport.Local
	hosts   []*host.Host
	checker *core.SpecChecker
}

func newTestCluster(t *testing.T, f int, policy host.BatchPolicy) *testCluster {
	t.Helper()
	tc := &testCluster{
		cluster: ids.NewCluster(f),
		keys:    authn.NewKeyStore("chain-test"),
		net:     transport.NewLocal(transport.Options{}),
		checker: core.NewSpecChecker(),
	}
	for i := 0; i < tc.cluster.N; i++ {
		r := ids.Replica(i)
		h := host.New(host.Config{
			Cluster:             tc.cluster,
			Replica:             r,
			Keys:                tc.keys,
			App:                 app.NewCounter(),
			Endpoint:            tc.net.Endpoint(r),
			FirstInstance:       1,
			NewProtocol:         NewReplica(ReplicaConfig{}),
			InstrumentHistories: true,
			Batch:               policy,
		})
		h.Start()
		tc.hosts = append(tc.hosts, h)
	}
	t.Cleanup(func() {
		for _, h := range tc.hosts {
			h.Stop()
		}
		tc.net.Close()
	})
	return tc
}

func (tc *testCluster) clientEnv(i int) core.ClientEnv {
	id := ids.Client(i)
	return core.ClientEnv{
		Cluster:       tc.cluster,
		Keys:          tc.keys,
		ID:            id,
		Endpoint:      tc.net.Endpoint(id),
		Delta:         20 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
		Checker:       tc.checker,
	}
}

// TestChainCommitsInCommonCase drives the full pipeline — head batch
// assembly, batch-level chain-authenticator generation and verification at
// every hop, tail fan-out — with a single sequential client (degenerate
// one-request batches under the delay trigger).
func TestChainCommitsInCommonCase(t *testing.T) {
	tc := newTestCluster(t, 1, host.BatchPolicy{})
	env := tc.clientEnv(0)
	client := NewClient(env, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const total = 15
	for ts := uint64(1); ts <= total; ts++ {
		req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("c-%d", ts))}
		out, err := client.Invoke(ctx, req, nil)
		if err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
		if !out.Committed {
			t.Fatalf("request %d aborted in the common case", ts)
		}
		if len(out.Reply) == 0 {
			t.Fatalf("request %d committed with empty reply", ts)
		}
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
	// Every replica logs all requests; the last f+1 execute them.
	deadline := time.Now().Add(2 * time.Second)
	tail := tc.hosts[tc.cluster.N-1]
	for tail.AppliedRequests() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := tail.AppliedRequests(); got != total {
		t.Errorf("tail applied %d requests, want %d", got, total)
	}
	for _, h := range tc.hosts {
		st := h.InstanceStateFor(1)
		for st.AbsLen() < total && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := st.AbsLen(); got != total {
			t.Errorf("replica %v logged %d requests, want %d", h.ID(), got, total)
		}
	}
}

// TestChainBatchedConcurrentClients forces multi-request batches through a
// wide assembler window: one BatchMessage per batch traverses the chain with
// batch-level MACs, and the tail fans per-client replies back out. The
// specification checker validates commit ordering across the whole run.
func TestChainBatchedConcurrentClients(t *testing.T) {
	tc := newTestCluster(t, 1, host.BatchPolicy{MaxBatch: 8, MaxDelay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	const clients = 6
	const perClient = 12
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := tc.clientEnv(i)
			client := NewClient(env, 1)
			for ts := uint64(1); ts <= perClient; ts++ {
				req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("c%d-%d", i, ts))}
				out, err := client.Invoke(ctx, req, nil)
				if err != nil {
					errCh <- fmt.Errorf("client %d invoke %d: %w", i, ts, err)
					return
				}
				if !out.Committed {
					errCh <- fmt.Errorf("client %d request %d aborted", i, ts)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

// TestChainBatchDuplicateTimestampWithinOneWindow retransmits a request into
// the same assembler window at the head: the batch must order it once and
// the client must still commit.
func TestChainBatchDuplicateTimestampWithinOneWindow(t *testing.T) {
	tc := newTestCluster(t, 1, host.BatchPolicy{MaxBatch: 64, MaxDelay: 20 * time.Millisecond})
	env := tc.clientEnv(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	req := msg.Request{Client: env.ID, Timestamp: 1, Command: []byte("dup")}
	ca := authn.ChainAuthenticator{}
	succ := env.Cluster.ChainSuccessorSet(env.ID)
	ca = env.Keys.AppendChainMACs(ca, env.ID, succ, ClientAuthBytes(1, req))
	m := &Message{Instance: 1, Req: req, CA: ca}
	env.Endpoint.Send(env.Cluster.Head(), m)
	env.Endpoint.Send(env.Cluster.Head(), m)

	// Await the tail reply through the client-side verification path.
	client := NewClient(env, 1)
	out, committed, err := client.awaitTailReply(ctx, req)
	if err != nil {
		t.Fatalf("await tail reply: %v", err)
	}
	if !committed || !out.Committed {
		t.Fatal("request did not commit")
	}
	deadline := time.Now().Add(2 * time.Second)
	tail := tc.hosts[tc.cluster.N-1]
	for tail.AppliedRequests() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := tail.AppliedRequests(); got != 1 {
		t.Errorf("tail applied %d requests, want exactly 1", got)
	}
}

// TestChainDuplicateBatchServesCachedReplies replays a mid-chain BatchMessage
// (modelling a TCP retransmission) after the request committed, and expects
// the chain to re-forward it with cached replies so the tail resends the
// reply to the client — instead of dropping the duplicate and forcing the
// client through the panicking machinery. Nothing may be executed twice.
func TestChainDuplicateBatchServesCachedReplies(t *testing.T) {
	tc := newTestCluster(t, 1, host.BatchPolicy{MaxBatch: 1})
	env := tc.clientEnv(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Capture the head's BatchMessage to its successor.
	var mu sync.Mutex
	var captured *BatchMessage
	head := tc.cluster.Head()
	succ, _ := tc.cluster.ChainSuccessor(head)
	tc.net.AddFilter(func(env transport.Envelope) bool {
		if bm, ok := env.Payload.(*BatchMessage); ok && env.From == head && env.To == succ {
			mu.Lock()
			if captured == nil {
				captured = bm
			}
			mu.Unlock()
		}
		return true
	})

	client := NewClient(env, 1)
	req := msg.Request{Client: env.ID, Timestamp: 1, Command: []byte("once")}
	out, err := client.Invoke(ctx, req, nil)
	if err != nil || !out.Committed {
		t.Fatalf("invoke: committed=%v err=%v", out.Committed, err)
	}
	mu.Lock()
	dup := captured
	mu.Unlock()
	if dup == nil {
		t.Fatal("no BatchMessage captured between head and successor")
	}

	// Replay the captured batch into the successor, as a retransmitting head
	// would, and expect a fresh tail reply for the already-committed request.
	tc.net.Endpoint(head).Send(succ, dup)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no cached tail reply after duplicate batch delivery")
		}
		select {
		case envl := <-env.Endpoint.Inbox():
			m, ok := envl.Payload.(*Message)
			if !ok || !m.HasSeq || m.Req.ID() != req.ID() {
				continue
			}
			if authn.Hash(m.Reply) != m.ReplyDigest {
				t.Fatal("cached tail reply digest mismatch")
			}
			if !client.verifyTailMACs(m) {
				t.Fatal("cached tail reply MACs do not verify")
			}
			// The duplicate must not have been executed again anywhere.
			for i, h := range tc.hosts {
				if tc.cluster.Pos(ids.Replica(i)) >= 2*tc.cluster.F && h.AppliedRequests() != 1 {
					t.Fatalf("replica %d applied %d requests, want 1", i, h.AppliedRequests())
				}
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}
