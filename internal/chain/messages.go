// Package chain implements Chain, the high-throughput Abstract instance used
// by Aliph (§5.3): replicas are organized in a pipeline (the chain order), a
// request travels from the head to the tail gathering chain-authenticator
// MACs, only the last f+1 replicas execute requests, and the tail replies to
// the client. Chain authenticators make the number of MAC operations at the
// bottleneck replica tend to 1 under batching.
//
// Chain guarantees progress when there are no server/link failures and no
// Byzantine clients (the same progress property as ZLight).
package chain

import (
	"encoding/binary"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// Message is the CHAIN message that travels along the pipeline (Steps C1–C4).
// The client creates it with its chain authenticator; every replica verifies
// the MACs of its predecessor set, updates the fields its position is
// responsible for, prunes and extends the chain authenticator, and forwards
// the message to its successor (the tail forwards it to the client).
type Message struct {
	Instance core.InstanceID
	Req      msg.Request
	// Seq is the position assigned by the head; zero before the head
	// processes the message.
	Seq uint64
	// HasSeq distinguishes an unassigned sequence number from position 0.
	HasSeq bool
	// ReplyDigest is D(reply), set by the last f+1 replicas.
	ReplyDigest authn.Digest
	// Reply is the full application reply, set only by the tail.
	Reply []byte
	// HistoryDigest is D(LH_j) of the last replicas.
	HistoryDigest authn.Digest
	// HistoryDigests optionally carries the full digest history
	// (instrumented test runs only).
	HistoryDigests history.DigestHistory
	// CA is the chain authenticator accumulated along the pipeline.
	CA authn.ChainAuthenticator
	// Init carries the init history on the client's first invocation.
	Init *core.InitHistory
	// Feedback piggybacks R-Aliph client feedback (committed request
	// timestamps followed by issued request timestamps).
	Feedback []uint64
}

// AbstractInstance implements core.InstanceMessage.
func (m *Message) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *Message) CarriedInit() *core.InitHistory { return m.Init }

// BatchMessage is the batched CHAIN message travelling between replicas: the
// head coalesces client requests under the host's batch policy and forwards
// the whole batch down the pipeline, each replica authenticating the batch to
// its successor set with one set of MACs instead of one per request. The tail
// fans the batch back out as one legacy Message per client, so the client
// protocol (Step C1/C4) is unchanged.
type BatchMessage struct {
	Instance core.InstanceID
	// Batch holds the ordered requests; request i occupies position Seq+i.
	Batch msg.Batch
	// Seq is the absolute position assigned by the head to Batch.Requests[0].
	Seq uint64
	// ClientCAs accumulates, per request, the chain-authenticator entries
	// involving that request's client: the client's MACs toward the first
	// f+1 replicas on the way in, and each executing replica's MAC toward
	// the client on the way out.
	ClientCAs []authn.ChainAuthenticator
	// ReplyDigests holds D(reply) per request, set by the last f+1 replicas.
	ReplyDigests []authn.Digest
	// HistoryDigest is D(LH_j) of the executing replicas after the whole
	// batch is appended.
	HistoryDigest authn.Digest
	// HistoryDigests optionally carries the full digest history
	// (instrumented test runs only).
	HistoryDigests history.DigestHistory
	// CA is the replica-hop chain authenticator over batch-level bytes.
	CA authn.ChainAuthenticator
	// Init forwards an init history so uninitialized replicas can
	// initialize.
	Init *core.InitHistory
}

// AbstractInstance implements core.InstanceMessage.
func (m *BatchMessage) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *BatchMessage) CarriedInit() *core.InitHistory { return m.Init }

// ClientAuthBytes returns the bytes the client authenticates towards the
// first f+1 replicas: the instance and the request digest (the client does
// not know the sequence number).
func ClientAuthBytes(instance core.InstanceID, req msg.Request) []byte {
	var buf [8 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	d := req.Digest()
	copy(buf[8:], d[:])
	return buf[:]
}

// OrderAuthBytes returns the bytes authenticated by the first 2f replicas:
// instance, request digest, and the sequence number assigned by the head.
func OrderAuthBytes(instance core.InstanceID, req msg.Request, seq uint64) []byte {
	var buf [16 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	d := req.Digest()
	copy(buf[16:], d[:])
	return buf[:]
}

// TailAuthBytes returns the bytes authenticated by the last f+1 replicas
// (and verified by the client): instance, request digest, sequence number,
// reply digest, and local-history digest.
func TailAuthBytes(instance core.InstanceID, req msg.Request, seq uint64, replyDigest, historyDigest authn.Digest) []byte {
	buf := make([]byte, 16+3*authn.DigestSize)
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	d := req.Digest()
	copy(buf[16:], d[:])
	copy(buf[16+authn.DigestSize:], replyDigest[:])
	copy(buf[16+2*authn.DigestSize:], historyDigest[:])
	return buf
}

// batchOrderAuthBytes returns the batch-level bytes authenticated by the
// first 2f replicas: instance, the position of the batch's first request, and
// the batch digest (computed once per hop by the caller).
func batchOrderAuthBytes(instance core.InstanceID, batchDigest authn.Digest, seq uint64) []byte {
	var buf [16 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	copy(buf[16:], batchDigest[:])
	return buf[:]
}

// batchTailAuthBytes returns the batch-level bytes authenticated by the last
// f+1 replicas toward their replica successors: instance, sequence, batch
// digest (computed once per hop by the caller), the fold of the per-request
// reply digests, and the post-batch local-history digest.
func batchTailAuthBytes(instance core.InstanceID, batchDigest authn.Digest, seq uint64, replyDigests []authn.Digest, historyDigest authn.Digest) []byte {
	parts := make([][]byte, 0, len(replyDigests))
	for i := range replyDigests {
		parts = append(parts, replyDigests[i][:])
	}
	repliesDigest := authn.HashAll(parts...)
	buf := make([]byte, 16+3*authn.DigestSize)
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	copy(buf[16:], batchDigest[:])
	copy(buf[16+authn.DigestSize:], repliesDigest[:])
	copy(buf[16+2*authn.DigestSize:], historyDigest[:])
	return buf
}

func init() {
	transport.RegisterWireType(&Message{})
	transport.RegisterWireType(&BatchMessage{})
}
