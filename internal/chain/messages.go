// Package chain implements Chain, the high-throughput Abstract instance used
// by Aliph (§5.3): replicas are organized in a pipeline (the chain order), a
// request travels from the head to the tail gathering chain-authenticator
// MACs, only the last f+1 replicas execute requests, and the tail replies to
// the client. Chain authenticators make the number of MAC operations at the
// bottleneck replica tend to 1 under batching.
//
// Chain guarantees progress when there are no server/link failures and no
// Byzantine clients (the same progress property as ZLight).
package chain

import (
	"encoding/binary"

	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/history"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// Message is the CHAIN message that travels along the pipeline (Steps C1–C4).
// The client creates it with its chain authenticator; every replica verifies
// the MACs of its predecessor set, updates the fields its position is
// responsible for, prunes and extends the chain authenticator, and forwards
// the message to its successor (the tail forwards it to the client).
type Message struct {
	Instance core.InstanceID
	Req      msg.Request
	// Seq is the position assigned by the head; zero before the head
	// processes the message.
	Seq uint64
	// HasSeq distinguishes an unassigned sequence number from position 0.
	HasSeq bool
	// ReplyDigest is D(reply), set by the last f+1 replicas.
	ReplyDigest authn.Digest
	// Reply is the full application reply, set only by the tail.
	Reply []byte
	// HistoryDigest is D(LH_j) of the last replicas.
	HistoryDigest authn.Digest
	// HistoryDigests optionally carries the full digest history
	// (instrumented test runs only).
	HistoryDigests history.DigestHistory
	// CA is the chain authenticator accumulated along the pipeline.
	CA authn.ChainAuthenticator
	// Init carries the init history on the client's first invocation.
	Init *core.InitHistory
	// Feedback piggybacks R-Aliph client feedback (committed request
	// timestamps followed by issued request timestamps).
	Feedback []uint64
}

// AbstractInstance implements core.InstanceMessage.
func (m *Message) AbstractInstance() core.InstanceID { return m.Instance }

// CarriedInit implements core.InitCarrier.
func (m *Message) CarriedInit() *core.InitHistory { return m.Init }

// ClientAuthBytes returns the bytes the client authenticates towards the
// first f+1 replicas: the instance and the request digest (the client does
// not know the sequence number).
func ClientAuthBytes(instance core.InstanceID, req msg.Request) []byte {
	var buf [8 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	d := req.Digest()
	copy(buf[8:], d[:])
	return buf[:]
}

// OrderAuthBytes returns the bytes authenticated by the first 2f replicas:
// instance, request digest, and the sequence number assigned by the head.
func OrderAuthBytes(instance core.InstanceID, req msg.Request, seq uint64) []byte {
	var buf [16 + authn.DigestSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	d := req.Digest()
	copy(buf[16:], d[:])
	return buf[:]
}

// TailAuthBytes returns the bytes authenticated by the last f+1 replicas
// (and verified by the client): instance, request digest, sequence number,
// reply digest, and local-history digest.
func TailAuthBytes(instance core.InstanceID, req msg.Request, seq uint64, replyDigest, historyDigest authn.Digest) []byte {
	buf := make([]byte, 16+3*authn.DigestSize)
	binary.BigEndian.PutUint64(buf[:8], uint64(instance))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	d := req.Digest()
	copy(buf[16:], d[:])
	copy(buf[16+authn.DigestSize:], replyDigest[:])
	copy(buf[16+2*authn.DigestSize:], historyDigest[:])
	return buf
}

func init() {
	transport.RegisterWireType(&Message{})
}
