package zlight

import (
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
)

// Replica implements the ZLight common-case steps on one replica for one
// Abstract instance. The shared panicking, checkpointing, and initialization
// machinery lives in the host package.
type Replica struct {
	h  *host.Host
	st *host.InstanceState
	// primary is the fixed primary of this instance (the first replica).
	primary ids.ProcessID
	// clientMACFailed is set when a client authenticator entry fails to
	// verify; the replica then stops executing Step Z3 in this instance
	// (per the specification of Step Z3).
	clientMACFailed bool
	// pending buffers ORDER messages received ahead of the next expected
	// sequence number (reordered delivery) until the gap is filled.
	pending map[uint64]*OrderMessage
	// lastOrder caches, per client, the last ORDER the primary issued so
	// that client retransmissions re-trigger replies from the backups.
	lastOrder map[ids.ProcessID]*OrderMessage
}

// NewReplica returns a host.ProtocolFactory creating ZLight replicas.
func NewReplica() host.ProtocolFactory {
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		return &Replica{
			h:         h,
			st:        st,
			primary:   h.Cluster().Head(),
			pending:   make(map[uint64]*OrderMessage),
			lastOrder: make(map[ids.ProcessID]*OrderMessage),
		}
	}
}

// IsPrimary reports whether this replica is the instance's primary.
func (r *Replica) IsPrimary() bool { return r.h.ID() == r.primary }

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	switch t := m.(type) {
	case *RequestMessage:
		r.onRequest(from, t)
	case *OrderMessage:
		r.onOrder(from, t)
	}
}

// onRequest implements Step Z2 (primary only): assign a sequence number,
// order the request to the other replicas, and speculatively execute it.
func (r *Replica) onRequest(from ids.ProcessID, m *RequestMessage) {
	if !r.IsPrimary() || r.st.Stopped {
		return
	}
	if m.Req.Client != from && from.IsClient() {
		return
	}
	if err := r.h.VerifyClientAuth(m.Auth, AuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) {
		// Retransmission of the last request: resend the cached reply and
		// re-order so the backups reply again as well.
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, true)
			r.h.Send(m.Req.Client, resp)
			if last := r.lastOrder[m.Req.Client]; last != nil && last.Req.Timestamp == m.Req.Timestamp {
				for _, other := range r.h.OtherReplicas() {
					order := *last
					order.PrimaryMAC = r.h.MACFor(other, OrderBytes(r.st.ID, order.Req, order.Seq))
					r.h.Send(other, &order)
				}
			}
		}
		return
	}

	pos, ok := r.h.Log(r.st, m.Req)
	if !ok {
		return
	}
	// Forward the order to the other replicas with the client's
	// authenticator so each can verify its own entry (Step Z2).
	for _, other := range r.h.OtherReplicas() {
		order := &OrderMessage{
			Instance:   r.st.ID,
			Req:        m.Req,
			Seq:        pos,
			ClientAuth: m.Auth,
			PrimaryMAC: r.h.MACFor(other, OrderBytes(r.st.ID, m.Req, pos)),
			Init:       m.Init,
		}
		r.h.Send(other, order)
		r.lastOrder[m.Req.Client] = order
	}
	// The primary speculatively executes and replies like any replica
	// (Step Z3); it is the designated replica sending the full reply.
	reply := r.h.Execute(r.st, m.Req)
	resp := r.h.BuildResp(r.st, m.Req, reply, true)
	r.h.Send(m.Req.Client, resp)
	r.h.Ops().CountRequest()
}

// onOrder implements Step Z3 (backup replicas): verify the primary and client
// MACs, check the sequence number, then log, execute, and reply.
func (r *Replica) onOrder(from ids.ProcessID, m *OrderMessage) {
	if r.st.Stopped || r.clientMACFailed {
		return
	}
	if from != r.primary {
		return
	}
	if err := r.h.VerifyMACFrom(r.primary, OrderBytes(r.st.ID, m.Req, m.Seq), m.PrimaryMAC); err != nil {
		return
	}
	if err := r.h.VerifyClientAuth(m.ClientAuth, AuthBytes(r.st.ID, m.Req)); err != nil {
		// Step Z3: a failed client MAC stops this replica from executing
		// Step Z3 for the rest of the instance; the client will eventually
		// panic and the instance will switch.
		r.clientMACFailed = true
		return
	}
	if m.Seq > r.st.AbsLen() {
		// Reordered delivery: buffer until the gap is filled.
		r.pending[m.Seq] = m
		return
	}
	if m.Seq < r.st.AbsLen() {
		// Already processed (duplicate or retransmission).
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, false)
			r.h.Send(m.Req.Client, resp)
		}
		return
	}
	r.process(m)
	r.drainPending()
}

// process logs, speculatively executes, and replies to one in-order ORDER.
func (r *Replica) process(m *OrderMessage) {
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) {
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, false)
			r.h.Send(m.Req.Client, resp)
		}
		return
	}
	if _, ok := r.h.Log(r.st, m.Req); !ok {
		return
	}
	reply := r.h.Execute(r.st, m.Req)
	resp := r.h.BuildResp(r.st, m.Req, reply, false)
	r.h.Send(m.Req.Client, resp)
}

// drainPending processes buffered ORDER messages that have become in-order.
func (r *Replica) drainPending() {
	for {
		next, ok := r.pending[r.st.AbsLen()]
		if !ok || r.st.Stopped {
			return
		}
		delete(r.pending, r.st.AbsLen())
		r.process(next)
	}
}
