package zlight

import (
	"abstractbft/internal/authn"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
)

// Replica implements the ZLight common-case steps on one replica for one
// Abstract instance. The shared panicking, checkpointing, initialization, and
// batch-assembly machinery lives in the host package.
type Replica struct {
	h  *host.Host
	st *host.InstanceState
	// primary is the fixed primary of this instance (the first replica).
	primary ids.ProcessID
	// batcher coalesces client requests at the primary (Step Z2).
	batcher *host.Batcher
	// clientMACFailed is set when a client authenticator entry fails to
	// verify; the replica then stops executing Step Z3 in this instance
	// (per the specification of Step Z3).
	clientMACFailed bool
	// pending buffers ORDER messages received ahead of the next expected
	// sequence number (reordered delivery) until the gap is filled.
	pending map[uint64]*OrderMessage
	// lastOrder caches, per client, the last ORDER that contained a request
	// of that client so client retransmissions re-trigger replies from the
	// backups.
	lastOrder map[ids.ProcessID]*OrderMessage
}

// NewReplica returns a host.ProtocolFactory creating ZLight replicas.
func NewReplica() host.ProtocolFactory {
	return func(h *host.Host, st *host.InstanceState) host.ProtocolReplica {
		r := &Replica{
			h:         h,
			st:        st,
			primary:   h.Cluster().Head(),
			pending:   make(map[uint64]*OrderMessage),
			lastOrder: make(map[ids.ProcessID]*OrderMessage),
		}
		r.batcher = h.NewBatcher(r.orderBatch)
		return r
	}
}

// IsPrimary reports whether this replica is the instance's primary.
func (r *Replica) IsPrimary() bool { return r.h.ID() == r.primary }

// Handle implements host.ProtocolReplica.
func (r *Replica) Handle(from ids.ProcessID, m any) {
	switch t := m.(type) {
	case *RequestMessage:
		r.onRequest(from, t)
	case *OrderMessage:
		r.onOrder(from, t)
	}
}

// onRequest implements Step Z1→Z2 at the primary: verify the client's
// authenticator entry and hand the request to the batch assembler; the
// assembler flushes a whole batch into orderBatch under the size/delay
// policy (immediately when batching is disabled).
func (r *Replica) onRequest(from ids.ProcessID, m *RequestMessage) {
	if !r.IsPrimary() || r.st.Stopped {
		return
	}
	if m.Req.Client != from && from.IsClient() {
		return
	}
	// The authenticator must be the invoking client's own (Sender is
	// attacker-chosen otherwise).
	if m.Auth.Sender != m.Req.Client {
		return
	}
	if err := r.h.VerifyClientAuth(m.Auth, AuthBytes(r.st.ID, m.Req)); err != nil {
		return
	}
	if !r.st.TimestampFresh(m.Req.Client, m.Req.Timestamp) || r.h.AppliedStale(m.Req.Client, m.Req.Timestamp) {
		// Retransmission (the instance window, or — across instance switches
		// whose init histories don't reach back that far — the host's applied
		// window, says the request already executed): resend the cached reply
		// and re-order so the backups reply again as well — but only when the
		// cached ORDER actually covers this timestamp, so a stale
		// retransmission cannot re-multicast a whole unrelated batch.
		if reply, ok := r.h.CachedReply(m.Req.Client, m.Req.Timestamp); ok {
			resp := r.h.BuildResp(r.st, m.Req, reply, true)
			r.h.Send(m.Req.Client, resp)
			if last := r.lastOrder[m.Req.Client]; last != nil && batchContains(last.Batch, m.Req.Client, m.Req.Timestamp) {
				r.multicastOrder(last)
			}
		}
		return
	}
	r.batcher.Add(host.BatchItem{Req: m.Req, Auth: m.Auth, Init: m.Init})
}

// orderBatch implements Step Z2 for one flushed batch (primary only): assign
// a sequence-number span, log the whole batch as one history append, order it
// to the other replicas with a single primary MAC, and speculatively execute
// the batch, fanning one RESP per request back to the clients.
func (r *Replica) orderBatch(items []host.BatchItem) {
	if !r.IsPrimary() || r.st.Stopped {
		return
	}
	// Re-filter staleness: a request may have been retransmitted and ordered
	// while this one waited in the assembler.
	fresh, batch, stale := host.FilterFreshItems(r.st, items)
	for _, it := range stale {
		if reply, ok := r.h.CachedReply(it.Req.Client, it.Req.Timestamp); ok {
			r.h.Send(it.Req.Client, r.h.BuildResp(r.st, it.Req, reply, true))
		}
	}
	if batch.Len() == 0 {
		return
	}
	start, ok := r.h.LogBatch(r.st, batch)
	if !ok {
		return
	}
	order := &OrderMessage{Instance: r.st.ID, Batch: batch, Seq: start}
	for _, it := range fresh {
		order.Auths = append(order.Auths, it.Auth)
		if order.Init == nil && it.Init != nil {
			order.Init = it.Init
		}
	}
	for _, it := range fresh {
		r.lastOrder[it.Req.Client] = order
	}
	r.multicastOrder(order)
	// The primary speculatively executes and replies like any replica
	// (Step Z3); it is the designated replica sending the full reply.
	replies := r.h.ExecuteBatch(r.st, batch)
	r.fanOutResps(batch, replies, true)
	for range batch.Requests {
		r.h.Ops().CountRequest()
	}
}

// fanOutResps sends one RESP per request of a batch, coalescing the RESPs of
// each client into a single wire envelope (pipelining clients have several
// requests per batch). Null operations have no client and get no reply.
func (r *Replica) fanOutResps(batch msg.Batch, replies [][]byte, designated bool) {
	byClient := make(map[ids.ProcessID][]any, len(batch.Requests))
	for i, req := range batch.Requests {
		if req.Client == ids.NullOp {
			continue
		}
		byClient[req.Client] = append(byClient[req.Client], r.h.BuildResp(r.st, req, replies[i], designated))
	}
	for client, resps := range byClient {
		r.h.SendBatch(client, resps)
	}
}

// OrderNullOp implements host.NullOpOrderer (primary only): it orders one
// Mencius-style null operation — a request from the reserved ids.NullOp
// identity with an empty command and the next history position as its
// timestamp — so an idle shard's history advances and the sharded plane's
// cross-shard merge rounds complete without waiting on it. Real buffered
// traffic takes precedence; backups verify no client authenticator for it
// (there is no client), execute nothing, and reply to nobody.
func (r *Replica) OrderNullOp() bool {
	if !r.IsPrimary() || r.st.Stopped || !r.st.Initialized || r.batcher.Pending() > 0 {
		return false
	}
	ts := r.st.AbsLen() + 1
	if !r.st.TimestampFresh(ids.NullOp, ts) {
		return false
	}
	req := msg.Request{Client: ids.NullOp, Timestamp: ts}
	batch := msg.BatchOf(req)
	start, ok := r.h.LogBatch(r.st, batch)
	if !ok {
		return false
	}
	order := &OrderMessage{
		Instance: r.st.ID,
		Batch:    batch,
		Seq:      start,
		Auths:    []authn.Authenticator{{Sender: ids.NullOp}},
	}
	r.multicastOrder(order)
	r.h.ExecuteBatch(r.st, batch)
	return true
}

// multicastOrder sends an ORDER to every backup, re-MACing the batch for each
// destination (one MAC per destination per batch).
func (r *Replica) multicastOrder(m *OrderMessage) {
	data := OrderBytes(r.st.ID, m.Batch, m.Seq)
	for _, other := range r.h.OtherReplicas() {
		order := *m
		order.PrimaryMAC = r.h.MACFor(other, data)
		r.h.Send(other, &order)
	}
}

// onOrder implements Step Z3 (backup replicas): verify the primary's batch
// MAC and every client's authenticator entry, check the sequence span, then
// log, execute, and reply per request.
func (r *Replica) onOrder(from ids.ProcessID, m *OrderMessage) {
	if r.st.Stopped || r.clientMACFailed {
		return
	}
	if from != r.primary || m.Batch.Len() == 0 || len(m.Auths) != m.Batch.Len() {
		return
	}
	if err := r.h.VerifyMACFrom(r.primary, OrderBytes(r.st.ID, m.Batch, m.Seq), m.PrimaryMAC); err != nil {
		return
	}
	if m.Seq+uint64(m.Batch.Len()) <= r.st.AbsLen() {
		// Already processed (duplicate or retransmission): resend cached
		// replies without re-verifying every client authenticator.
		for _, req := range m.Batch.Requests {
			if reply, ok := r.h.CachedReply(req.Client, req.Timestamp); ok {
				r.h.Send(req.Client, r.h.BuildResp(r.st, req, reply, false))
			}
		}
		return
	}
	for i, req := range m.Batch.Requests {
		// Null operations carry no client authenticator: there is no client.
		// Only the empty command is acceptable under the null identity, so a
		// Byzantine primary cannot smuggle an unauthenticated real command.
		if req.Client == ids.NullOp {
			if len(req.Command) != 0 || m.Auths[i].Sender != ids.NullOp {
				r.clientMACFailed = true
				return
			}
			continue
		}
		// The forwarded authenticator must be the request's client's own.
		if m.Auths[i].Sender != req.Client {
			r.clientMACFailed = true
			return
		}
		if err := r.h.VerifyClientAuth(m.Auths[i], AuthBytes(r.st.ID, req)); err != nil {
			// Step Z3: a failed client MAC stops this replica from executing
			// Step Z3 for the rest of the instance; the client will
			// eventually panic and the instance will switch.
			r.clientMACFailed = true
			return
		}
	}
	if m.Seq > r.st.AbsLen() {
		// Reordered delivery: buffer until the gap is filled. The buffer
		// bounds the total buffered *requests* so a Byzantine primary cannot
		// grow it without limit; a dropped ORDER surfaces as loss and the
		// client panics.
		if r.pendingRequests()+m.Batch.Len() <= maxPendingOrders {
			r.pending[m.Seq] = m
		}
		return
	}
	r.process(m)
	r.drainPending()
}

// maxPendingOrders bounds the total requests buffered out of order per
// instance.
const maxPendingOrders = 1024

// pendingRequests returns the number of requests currently buffered out of
// order.
func (r *Replica) pendingRequests() int {
	n := 0
	for _, m := range r.pending {
		n += m.Batch.Len()
	}
	return n
}

// batchContains reports whether the batch holds a request with the given
// client and timestamp.
func batchContains(b msg.Batch, client ids.ProcessID, ts uint64) bool {
	for _, req := range b.Requests {
		if req.Client == client && req.Timestamp == ts {
			return true
		}
	}
	return false
}

// process logs, speculatively executes, and replies to one in-order ORDER
// batch.
func (r *Replica) process(m *OrderMessage) {
	batch, stale := r.st.FilterFreshBatch(m.Batch)
	for _, req := range stale {
		if reply, ok := r.h.CachedReply(req.Client, req.Timestamp); ok {
			r.h.Send(req.Client, r.h.BuildResp(r.st, req, reply, false))
		}
	}
	if batch.Len() == 0 {
		return
	}
	if _, ok := r.h.LogBatch(r.st, batch); !ok {
		return
	}
	replies := r.h.ExecuteBatch(r.st, batch)
	r.fanOutResps(batch, replies, false)
}

// drainPending processes buffered ORDER batches that have become in-order,
// and evicts entries whose span was overtaken (a partially-stale batch can
// advance the history into the middle of a buffered span, which then can
// never match exactly).
func (r *Replica) drainPending() {
	for {
		if r.st.Stopped {
			return
		}
		for seq := range r.pending {
			if seq < r.st.AbsLen() {
				delete(r.pending, seq)
			}
		}
		next, ok := r.pending[r.st.AbsLen()]
		if !ok {
			return
		}
		delete(r.pending, r.st.AbsLen())
		r.process(next)
	}
}
