package zlight

import (
	"context"

	"abstractbft/internal/core"
	"abstractbft/internal/msg"
)

// Client is the client-side handle of one ZLight instance.
type Client struct {
	env core.ClientEnv
	id  core.InstanceID
}

// NewClient creates a ZLight instance client.
func NewClient(env core.ClientEnv, id core.InstanceID) *Client {
	return &Client{env: env, id: id}
}

// ID implements core.Instance.
func (c *Client) ID() core.InstanceID { return c.id }

// Invoke implements core.Instance: Step Z1 (send the request to the primary
// and arm a 3Δ timer), Step Z4 (commit on 3f+1 identical speculative
// replies), and the panicking mechanism otherwise.
func (c *Client) Invoke(ctx context.Context, req msg.Request, init *core.InitHistory) (core.Outcome, error) {
	if c.env.Checker != nil {
		c.env.Checker.RecordInvoke(req)
		c.env.Checker.RecordInit(c.id, init)
	}
	auth := c.env.Keys.NewAuthenticator(c.env.ID, c.env.Cluster.Replicas(), AuthBytes(c.id, req))
	c.env.Ops.CountMACGen(c.env.ID, auth.NumMACs())
	m := &RequestMessage{Instance: c.id, Req: req, Init: init, Auth: auth}
	c.env.Endpoint.Send(c.env.Cluster.Head(), m)

	out, committed, err := core.AwaitSpeculativeCommit(ctx, c.env, c.id, req, c.env.Timer(3))
	if err != nil {
		return core.Outcome{}, err
	}
	if committed {
		return out, nil
	}
	return core.PanicAndAbort(ctx, c.env, c.id, req, init)
}

var _ core.Instance = (*Client)(nil)
