package zlight

import (
	"context"
	"fmt"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// testCluster spins up a ZLight-only cluster over an in-process network.
type testCluster struct {
	cluster ids.Cluster
	keys    *authn.KeyStore
	net     *transport.Local
	hosts   []*host.Host
	checker *core.SpecChecker
}

func newTestCluster(t *testing.T, f int) *testCluster {
	t.Helper()
	tc := &testCluster{
		cluster: ids.NewCluster(f),
		keys:    authn.NewKeyStore("zlight-test"),
		net:     transport.NewLocal(transport.Options{}),
		checker: core.NewSpecChecker(),
	}
	for i := 0; i < tc.cluster.N; i++ {
		r := ids.Replica(i)
		h := host.New(host.Config{
			Cluster:             tc.cluster,
			Replica:             r,
			Keys:                tc.keys,
			App:                 app.NewCounter(),
			Endpoint:            tc.net.Endpoint(r),
			FirstInstance:       1,
			NewProtocol:         NewReplica(),
			InstrumentHistories: true,
		})
		h.Start()
		tc.hosts = append(tc.hosts, h)
	}
	t.Cleanup(func() {
		for _, h := range tc.hosts {
			h.Stop()
		}
		tc.net.Close()
	})
	return tc
}

func (tc *testCluster) clientEnv(i int) core.ClientEnv {
	id := ids.Client(i)
	return core.ClientEnv{
		Cluster:       tc.cluster,
		Keys:          tc.keys,
		ID:            id,
		Endpoint:      tc.net.Endpoint(id),
		Delta:         20 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
		Checker:       tc.checker,
	}
}

func TestZLightCommitsInCommonCase(t *testing.T) {
	tc := newTestCluster(t, 1)
	env := tc.clientEnv(0)
	client := NewClient(env, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for ts := uint64(1); ts <= 20; ts++ {
		req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("cmd-%d", ts))}
		out, err := client.Invoke(ctx, req, nil)
		if err != nil {
			t.Fatalf("invoke %d: %v", ts, err)
		}
		if !out.Committed {
			t.Fatalf("request %d aborted in the common case", ts)
		}
		if len(out.Reply) == 0 {
			t.Fatalf("request %d committed with empty reply", ts)
		}
	}

	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}

	// Every replica must have executed all 20 requests.
	deadline := time.Now().Add(2 * time.Second)
	for _, h := range tc.hosts {
		for h.AppliedRequests() < 20 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := h.AppliedRequests(); got != 20 {
			t.Errorf("replica %v applied %d requests, want 20", h.ID(), got)
		}
	}
}

func TestZLightMultipleClientsCommit(t *testing.T) {
	tc := newTestCluster(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	const clients = 4
	const perClient = 10
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			env := tc.clientEnv(i)
			client := NewClient(env, 1)
			for ts := uint64(1); ts <= perClient; ts++ {
				req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("c%d-%d", i, ts))}
				out, err := client.Invoke(ctx, req, nil)
				if err != nil {
					errCh <- fmt.Errorf("client %d invoke %d: %w", i, ts, err)
					return
				}
				if !out.Committed {
					errCh <- fmt.Errorf("client %d request %d aborted", i, ts)
					return
				}
			}
			errCh <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

func TestZLightAbortsWhenReplicaCrashes(t *testing.T) {
	tc := newTestCluster(t, 1)
	env := tc.clientEnv(0)
	client := NewClient(env, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Commit a few requests first.
	for ts := uint64(1); ts <= 3; ts++ {
		req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte("ok")}
		out, err := client.Invoke(ctx, req, nil)
		if err != nil || !out.Committed {
			t.Fatalf("setup invoke %d failed: %v committed=%v", ts, err, out.Committed)
		}
	}

	// Crash one backup replica: speculative commitment now impossible.
	tc.hosts[3].SetCrashed(true)

	req := msg.Request{Client: env.ID, Timestamp: 4, Command: []byte("will-abort")}
	out, err := client.Invoke(ctx, req, nil)
	if err != nil {
		t.Fatalf("invoke under crash: %v", err)
	}
	if out.Committed {
		t.Fatalf("request committed despite a crashed replica and 3f+1 commit rule")
	}
	if out.Abort == nil || out.Abort.Next != 2 {
		t.Fatalf("abort indication missing or wrong next instance: %+v", out.Abort)
	}
	// The abort history must contain the three committed requests.
	if got := len(out.Abort.Init.Extract.Suffix); got < 3 {
		t.Fatalf("abort history has %d entries, want at least 3", got)
	}
	// The init history must verify against the cluster keys.
	if err := core.VerifyInitHistory(tc.keys, tc.cluster, 2, &out.Abort.Init); err != nil {
		t.Fatalf("init history does not verify: %v", err)
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

func TestZLightDuplicateTimestampRejected(t *testing.T) {
	tc := newTestCluster(t, 1)
	env := tc.clientEnv(0)
	client := NewClient(env, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	req := msg.Request{Client: env.ID, Timestamp: 1, Command: []byte("a")}
	if out, err := client.Invoke(ctx, req, nil); err != nil || !out.Committed {
		t.Fatalf("first invoke failed: %v", err)
	}
	// Re-invoking the same timestamp returns the cached reply rather than
	// executing twice.
	out, err := client.Invoke(ctx, req, nil)
	if err != nil {
		t.Fatalf("duplicate invoke: %v", err)
	}
	if !out.Committed {
		t.Fatalf("duplicate invoke aborted")
	}
	if tc.hosts[0].AppliedRequests() != 1 {
		t.Fatalf("duplicate request executed twice: applied=%d", tc.hosts[0].AppliedRequests())
	}
}
