package zlight

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"abstractbft/internal/app"
	"abstractbft/internal/authn"
	"abstractbft/internal/core"
	"abstractbft/internal/host"
	"abstractbft/internal/ids"
	"abstractbft/internal/msg"
	"abstractbft/internal/transport"
)

// newBatchTestCluster spins up a ZLight cluster with an explicit batch
// policy.
func newBatchTestCluster(t *testing.T, f int, policy host.BatchPolicy) *testCluster {
	t.Helper()
	tc := &testCluster{
		cluster: ids.NewCluster(f),
		keys:    authn.NewKeyStore("zlight-test"),
		net:     transport.NewLocal(transport.Options{}),
		checker: core.NewSpecChecker(),
	}
	for i := 0; i < tc.cluster.N; i++ {
		r := ids.Replica(i)
		h := host.New(host.Config{
			Cluster:             tc.cluster,
			Replica:             r,
			Keys:                tc.keys,
			App:                 app.NewCounter(),
			Endpoint:            tc.net.Endpoint(r),
			FirstInstance:       1,
			NewProtocol:         NewReplica(),
			InstrumentHistories: true,
			Batch:               policy,
		})
		h.Start()
		tc.hosts = append(tc.hosts, h)
	}
	t.Cleanup(func() {
		for _, h := range tc.hosts {
			h.Stop()
		}
		tc.net.Close()
	})
	return tc
}

// TestZLightBatchSizeOneMatchesUnbatchedSemantics runs the common case with
// batching disabled (MaxBatch=1): every request must commit with the same
// per-request semantics as the historical unbatched path, and the
// specification checker must hold.
func TestZLightBatchSizeOneMatchesUnbatchedSemantics(t *testing.T) {
	tc := newBatchTestCluster(t, 1, host.BatchPolicy{MaxBatch: 1})
	env := tc.clientEnv(0)
	client := NewClient(env, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for ts := uint64(1); ts <= 10; ts++ {
		req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("u-%d", ts))}
		out, err := client.Invoke(ctx, req, nil)
		if err != nil || !out.Committed {
			t.Fatalf("invoke %d: err=%v committed=%v", ts, err, out.Committed)
		}
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, h := range tc.hosts {
		for h.AppliedRequests() < 10 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := h.AppliedRequests(); got != 10 {
			t.Errorf("replica %v applied %d requests, want 10", h.ID(), got)
		}
	}
}

// TestZLightBatchedConcurrentClients drives concurrent clients into a wide
// assembler window so multi-request batches actually form, and checks the
// Abstract specification over the full run.
func TestZLightBatchedConcurrentClients(t *testing.T) {
	tc := newBatchTestCluster(t, 1, host.BatchPolicy{MaxBatch: 8, MaxDelay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	const clients = 8
	const perClient = 15
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := tc.clientEnv(i)
			client := NewClient(env, 1)
			for ts := uint64(1); ts <= perClient; ts++ {
				req := msg.Request{Client: env.ID, Timestamp: ts, Command: []byte(fmt.Sprintf("c%d-%d", i, ts))}
				out, err := client.Invoke(ctx, req, nil)
				if err != nil {
					errCh <- fmt.Errorf("client %d invoke %d: %w", i, ts, err)
					return
				}
				if !out.Committed {
					errCh <- fmt.Errorf("client %d request %d aborted", i, ts)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if errs := tc.checker.Check(); len(errs) > 0 {
		t.Fatalf("specification violations: %v", errs)
	}
}

// TestZLightDuplicateTimestampWithinOneWindow retransmits a request inside
// the assembler's delay window: the batch assembler must order it once, every
// replica must execute it once, and the client must still commit.
func TestZLightDuplicateTimestampWithinOneWindow(t *testing.T) {
	tc := newBatchTestCluster(t, 1, host.BatchPolicy{MaxBatch: 64, MaxDelay: 20 * time.Millisecond})
	env := tc.clientEnv(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	req := msg.Request{Client: env.ID, Timestamp: 1, Command: []byte("dup")}
	auth := env.Keys.NewAuthenticator(env.ID, env.Cluster.Replicas(), AuthBytes(1, req))
	m := &RequestMessage{Instance: 1, Req: req, Auth: auth}
	// Two copies of the same REQ land in the same assembler window.
	env.Endpoint.Send(env.Cluster.Head(), m)
	env.Endpoint.Send(env.Cluster.Head(), m)

	out, committed, err := core.AwaitSpeculativeCommit(ctx, env, 1, req, 5*time.Second)
	if err != nil {
		t.Fatalf("await commit: %v", err)
	}
	if !committed || !out.Committed {
		t.Fatalf("request did not commit speculatively")
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, h := range tc.hosts {
		for h.AppliedRequests() < 1 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := h.AppliedRequests(); got != 1 {
			t.Errorf("replica %v applied %d requests, want exactly 1", h.ID(), got)
		}
	}
}
